package core

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleMeasurement returns a self-consistent measurement: CAMAT1 is the
// Eq. (4) recursion of the L1 parameters and CAMAT2, so the Eq. (12) and
// Eq. (13) stall expressions agree exactly.
func sampleMeasurement() Measurement {
	m := Measurement{
		CPIexe:       0.8,
		Fmem:         0.4,
		OverlapRatio: 0.3,
		CAMAT2:       15,
		CAMAT3:       60,
		MR1:          0.10,
		MR2:          0.30,
		PMR1:         0.04,
		H1:           3,
		CH1:          2,
		PAMP1:        12,
		AMP1:         18,
		Cm1:          3,
		CM1:          1.5,
	}
	m.CAMAT1 = RecursiveCAMAT(m.H1, m.CH1, m.PMR1, m.Eta1(), m.CAMAT2)
	return m
}

func TestLPMRFormulas(t *testing.T) {
	m := sampleMeasurement()
	if got, want := m.LPMR1(), m.CAMAT1*m.Fmem/m.CPIexe; math.Abs(got-want) > 1e-12 {
		t.Fatalf("LPMR1 = %v want %v", got, want)
	}
	if got, want := m.LPMR2(), m.CAMAT2*m.Fmem*m.MR1/m.CPIexe; math.Abs(got-want) > 1e-12 {
		t.Fatalf("LPMR2 = %v want %v", got, want)
	}
	if got, want := m.LPMR3(), m.CAMAT3*m.Fmem*m.MR1*m.MR2/m.CPIexe; math.Abs(got-want) > 1e-12 {
		t.Fatalf("LPMR3 = %v want %v", got, want)
	}
}

func TestLPMRZeroCPIexe(t *testing.T) {
	var m Measurement
	if m.LPMR1() != 0 || m.LPMR2() != 0 || m.LPMR3() != 0 {
		t.Fatal("zero CPIexe must yield zero LPMRs, not NaN")
	}
}

func TestStallEq7EqualsEq12(t *testing.T) {
	// Eq. (12) is Eq. (7) rewritten through Eq. (9); they must agree for
	// any inputs.
	f := func(cpi, fmem, ov, camat1 float64) bool {
		m := Measurement{
			CPIexe:       math.Mod(math.Abs(cpi), 10) + 0.1,
			Fmem:         math.Mod(math.Abs(fmem), 1),
			OverlapRatio: math.Mod(math.Abs(ov), 1),
			CAMAT1:       math.Mod(math.Abs(camat1), 100),
		}
		return math.Abs(m.StallEq7()-m.StallEq12()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStallEq13MatchesEq12OnConsistentMeasurement(t *testing.T) {
	m := sampleMeasurement()
	if d := math.Abs(m.StallEq12() - m.StallEq13()); d > 1e-9 {
		t.Fatalf("Eq12 %.9f vs Eq13 %.9f (diff %g)", m.StallEq12(), m.StallEq13(), d)
	}
}

func TestStallEq13MatchesEq12Property(t *testing.T) {
	f := func(h1, ch1, pmr1frac, mrScale, pamp1, amp1, cm1c, cm1p, camat2, cpi, fmem, ov float64) bool {
		abs := func(x, cap float64) float64 { return math.Mod(math.Abs(x), cap) + 0.01 }
		m := Measurement{
			CPIexe:       abs(cpi, 5),
			Fmem:         math.Mod(math.Abs(fmem), 1),
			OverlapRatio: math.Mod(math.Abs(ov), 1),
			CAMAT2:       abs(camat2, 200),
			H1:           abs(h1, 10),
			CH1:          abs(ch1, 8),
			PAMP1:        abs(pamp1, 100),
			AMP1:         abs(amp1, 100),
			Cm1:          abs(cm1c, 16),
			CM1:          abs(cm1p, 16),
		}
		m.PMR1 = math.Mod(math.Abs(pmr1frac), 1)
		// MR1 >= PMR1 (pure misses are a subset).
		m.MR1 = m.PMR1 + math.Mod(math.Abs(mrScale), 1-m.PMR1+1e-9)
		if m.MR1 <= 0 {
			return true
		}
		m.CAMAT1 = RecursiveCAMAT(m.H1, m.CH1, m.PMR1, m.Eta1(), m.CAMAT2)
		return math.Abs(m.StallEq12()-m.StallEq13()) < 1e-6*(1+m.StallEq12())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestT1MeetsStallTarget(t *testing.T) {
	// If LPMR1 == T1(Δ), the modelled stall is exactly Δ% of CPIexe.
	m := sampleMeasurement()
	for _, delta := range []float64{1, 10} {
		t1 := m.T1(delta)
		scaled := m
		scaled.CAMAT1 = t1 * m.CPIexe / m.Fmem // force LPMR1 == T1
		if math.Abs(scaled.LPMR1()-t1) > 1e-9 {
			t.Fatalf("setup: LPMR1 %v != T1 %v", scaled.LPMR1(), t1)
		}
		want := delta / 100 * m.CPIexe
		if got := scaled.StallEq12(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("delta %v%%: stall %v, want %v", delta, got, want)
		}
	}
}

func TestT2MeetsStallTarget(t *testing.T) {
	// If LPMR2 == T2(Δ) (holding the L1-local term fixed), Eq. (13)
	// evaluates to Δ% of CPIexe.
	m := sampleMeasurement()
	for _, delta := range []float64{1, 10} {
		t2, ok := m.T2(delta)
		if !ok {
			t.Fatal("T2 unexpectedly vacuous")
		}
		scaled := m
		scaled.CAMAT2 = t2 * m.CPIexe / (m.Fmem * m.MR1) // force LPMR2 == T2
		want := delta / 100 * m.CPIexe
		if got := scaled.StallEq13(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("delta %v%%: Eq13 stall %v, want %v", delta, got, want)
		}
	}
}

func TestT2VacuousWhenEtaZero(t *testing.T) {
	m := sampleMeasurement()
	m.AMP1 = 0 // no misses: η = 0, the L2 condition cannot bind
	if _, ok := m.T2(1); ok {
		t.Fatal("T2 should be vacuous with zero eta")
	}
}

func TestEtaDecomposition(t *testing.T) {
	m := sampleMeasurement()
	want := m.Eta1() * m.PMR1 / m.MR1
	if math.Abs(m.Eta()-want) > 1e-12 {
		t.Fatalf("eta = %v want %v", m.Eta(), want)
	}
	if m.Eta() <= 0 || m.Eta() >= 1 {
		t.Fatalf("sample eta = %v, expected in (0,1) per the paper", m.Eta())
	}
}

func TestEtaZeroMR(t *testing.T) {
	m := sampleMeasurement()
	m.MR1 = 0
	if m.Eta() != 0 {
		t.Fatal("eta with zero MR1 must be 0")
	}
}

func TestHigherOverlapLowersStallAndRaisesT1(t *testing.T) {
	m := sampleMeasurement()
	lo, hi := m, m
	lo.OverlapRatio, hi.OverlapRatio = 0.1, 0.9
	if lo.StallEq12() <= hi.StallEq12() {
		t.Fatal("more overlap must reduce stall")
	}
	if lo.T1(1) >= hi.T1(1) {
		t.Fatal("more overlap must relax T1")
	}
}

func TestMeasurementString(t *testing.T) {
	if sampleMeasurement().String() == "" {
		t.Fatal("empty string")
	}
}
