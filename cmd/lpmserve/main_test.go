package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"lpm/internal/ctrl"
	"lpm/internal/fabric"
	"lpm/internal/obs"
)

// syncWriter shares a buffer between the server goroutine and the
// test's polling reads.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) string() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// startServe runs the CLI in-process and returns its base URL plus a
// shutdown func that cancels the serve context and waits for exit.
func startServe(t *testing.T, args []string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncWriter{}
	errb := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, args, out, errb)
	}()
	var addr string
	for i := 0; i < 500 && addr == ""; i++ {
		time.Sleep(10 * time.Millisecond)
		for _, line := range strings.Split(out.string(), "\n") {
			if i := strings.Index(line, "on http://"); i >= 0 {
				addr = strings.TrimSpace(line[i+len("on http://"):])
			}
		}
	}
	if addr == "" {
		cancel()
		t.Fatalf("server address never printed:\nstdout: %s\nstderr: %s", out.string(), errb.string())
	}
	return "http://" + addr, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			t.Fatalf("lpmserve did not exit after cancellation\nstderr: %s", errb.string())
			return nil
		}
	}
}

// TestServeRunLifecycle drives the control plane end to end over HTTP:
// submit a small real simulation, watch it to done, pull its result and
// the fleet metrics, and shut down cleanly.
func TestServeRunLifecycle(t *testing.T) {
	url, shutdown := startServe(t, []string{"-addr", "127.0.0.1:0", "-grace", "5s", "-log", "json"})

	resp, err := http.Post(url+"/api/v1/runs", "application/json",
		strings.NewReader(`{"workload":"403.gcc","tenant":"acme","instructions":2000,"warmup":3000,"ts_window":512}`))
	if err != nil {
		t.Fatalf("POST runs: %v", err)
	}
	var st ctrl.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	if st.ID != "r-1" || st.API != ctrl.APIVersion {
		t.Fatalf("submit status: %+v", st)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State != ctrl.StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("run never finished: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err := http.Get(url + "/api/v1/runs/r-1")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == ctrl.StateFailed {
			t.Fatalf("run failed: %+v", st)
		}
	}
	if st.Windows == 0 {
		t.Fatalf("finished run published no timeline windows: %+v", st)
	}

	resp, err = http.Get(url + "/api/v1/runs/r-1/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"lpm-report/v2"`) || !strings.Contains(string(body), "403.gcc") {
		t.Fatalf("result document: %.400s", body)
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fleet, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"lpm_ctrl_runs_done 1",
		`run="r-1",tenant="acme"`,
	} {
		if !strings.Contains(string(fleet), want) {
			t.Fatalf("fleet /metrics lacks %q:\n%.2000s", want, fleet)
		}
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeShardedFleetMetrics starts the control plane with a fabric
// coordinator attached, joins one in-process worker, and checks the
// coordinator's telemetry shows up on the fleet endpoint.
func TestServeShardedFleetMetrics(t *testing.T) {
	dir := t.TempDir()
	addrFile := dir + "/coord.addr"
	url, shutdown := startServe(t, []string{
		"-addr", "127.0.0.1:0", "-grace", "5s",
		"-shard", "127.0.0.1:0", "-shard-addr-file", addrFile,
	})

	// Join a worker so fabric.workers lands at 1 on the fleet scrape.
	coordAddr := waitFile(t, addrFile)
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan error, 1)
	go func() {
		wdone <- fabric.RunWorker(wctx, coordAddr, fabric.WorkerOptions{
			Slots: 1, DialRetry: 5 * time.Second,
			Obs: fabric.NewWorkerTelemetry(obs.NewRegistry()),
		})
	}()
	defer func() { wcancel(); <-wdone }()

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		fleet, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(fleet), `lpm_fabric_workers{component="fabric"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fabric telemetry never reached the fleet endpoint:\n%.2000s", fleet)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// waitFile polls until path exists and returns its trimmed contents.
func waitFile(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return strings.TrimSpace(string(b))
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never appeared", path)
	return ""
}

// TestServeFlagErrors pins CLI error paths.
func TestServeFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-nosuchflag"}, &out, &errb); err == nil {
		t.Fatal("unknown flag did not error")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bogus"}, &out, &errb); err == nil {
		t.Fatal("bad listen address did not error")
	}
}
