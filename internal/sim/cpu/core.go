// Package cpu models an out-of-order core at cycle granularity for the
// LPM reproduction, standing in for GEM5's detailed O3 CPU. What matters
// for LPM is faithfully generating the *concurrency-limited memory request
// stream* and accounting stall/overlap cycles:
//
//   - the issue width bounds dispatch and wakeup bandwidth,
//   - the instruction window (IW) bounds instructions simultaneously
//     pending execution, limiting memory-level parallelism,
//   - the reorder buffer (ROB) bounds total in-flight instructions and
//     forces in-order retirement, so a stalled memory op at its head
//     blocks the core — the data stall of Eq. (5),
//   - register dependences (including dependent/pointer-chasing loads)
//     serialise execution,
//   - the load/store queue bounds outstanding memory accesses.
//
// These are precisely the per-core parameters the paper's Table I sweeps
// (pipeline issue width, IW size, ROB size) plus the structures that feed
// C_H and C_M at the L1.
package cpu

import (
	"fmt"

	"lpm/internal/obs"
	"lpm/internal/trace"
)

// MemPort is the core's view of its L1 data cache. Access returns false
// when the request cannot be accepted this cycle (backpressure); done
// fires during a later cycle when the data is available.
type MemPort interface {
	Access(cycle uint64, addr uint64, write bool, done func(cycle uint64)) bool
}

// Config describes one core.
type Config struct {
	// Name labels the core in reports.
	Name string
	// IssueWidth is the dispatch/issue bandwidth per cycle (the paper's
	// "pipeline issue width").
	IssueWidth int
	// CommitWidth is the retire bandwidth per cycle; 0 means IssueWidth.
	CommitWidth int
	// ROBSize bounds in-flight (dispatched, unretired) instructions.
	ROBSize int
	// IWSize bounds dispatched-but-incomplete instructions (the
	// scheduler window).
	IWSize int
	// LSQSize bounds outstanding memory accesses; 0 means IWSize.
	LSQSize int
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("cpu: config has no name")
	case c.IssueWidth <= 0:
		return fmt.Errorf("cpu %s: issue width %d", c.Name, c.IssueWidth)
	case c.ROBSize <= 0:
		return fmt.Errorf("cpu %s: ROB size %d", c.Name, c.ROBSize)
	case c.IWSize <= 0:
		return fmt.Errorf("cpu %s: IW size %d", c.Name, c.IWSize)
	case c.CommitWidth < 0 || c.LSQSize < 0:
		return fmt.Errorf("cpu %s: negative width", c.Name)
	}
	return nil
}

// entry state.
const (
	stDispatched = iota // in ROB, waiting for operands or a port
	stExecuting         // latency counting down / memory outstanding
	stDone              // complete, awaiting in-order retirement
)

// robEntry is one in-flight instruction.
type robEntry struct {
	in      trace.Instr
	seq     uint64
	state   uint8
	readyAt uint64 // completion cycle for compute ops
}

// Stats accumulates core counters.
type Stats struct {
	// Cycles counts core ticks; Instructions counts retirements.
	Cycles       uint64
	Instructions uint64
	// MemInstructions counts retired loads+stores.
	MemInstructions uint64
	// StallCycles counts cycles with zero retirements while the ROB was
	// non-empty; MemStallCycles is the subset where the ROB head was an
	// incomplete memory access — the paper's data stall time.
	StallCycles    uint64
	MemStallCycles uint64
	// EmptyCycles counts cycles with an empty ROB (startup only, in
	// practice).
	EmptyCycles uint64
	// MemActiveCycles counts cycles with >= 1 outstanding memory access;
	// OverlapCycles is the subset where computation also progressed
	// (a compute op executing or an instruction retired).
	MemActiveCycles uint64
	OverlapCycles   uint64
	// LSQFullEvents and RejectedAccesses count structural stalls at the
	// memory interface.
	LSQFullEvents    uint64
	RejectedAccesses uint64
}

// Sub returns the counter-wise difference s - o, for windowed deltas of
// cumulative counters (o must be an earlier snapshot of the same core).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Cycles:           s.Cycles - o.Cycles,
		Instructions:     s.Instructions - o.Instructions,
		MemInstructions:  s.MemInstructions - o.MemInstructions,
		StallCycles:      s.StallCycles - o.StallCycles,
		MemStallCycles:   s.MemStallCycles - o.MemStallCycles,
		EmptyCycles:      s.EmptyCycles - o.EmptyCycles,
		MemActiveCycles:  s.MemActiveCycles - o.MemActiveCycles,
		OverlapCycles:    s.OverlapCycles - o.OverlapCycles,
		LSQFullEvents:    s.LSQFullEvents - o.LSQFullEvents,
		RejectedAccesses: s.RejectedAccesses - o.RejectedAccesses,
	}
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Fmem returns the fraction of retired instructions accessing memory
// (the paper's f_mem).
func (s Stats) Fmem() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.MemInstructions) / float64(s.Instructions)
}

// OverlapRatio returns the computation/memory overlap ratio of Eq. (8):
// overlapped cycles over total memory access cycles.
func (s Stats) OverlapRatio() float64 {
	if s.MemActiveCycles == 0 {
		return 0
	}
	return float64(s.OverlapCycles) / float64(s.MemActiveCycles)
}

// DataStallPerInstr returns measured memory stall cycles per retired
// instruction — the quantity Eq. (12)/(13) model.
func (s Stats) DataStallPerInstr() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.MemStallCycles) / float64(s.Instructions)
}

// CycleClass classifies what a core did in its most recent Tick — the
// per-cycle input of the time-series stall attribution. The chip refines
// CycleMemStall into a per-layer bucket using the hierarchy's occupancy
// probes.
type CycleClass uint8

// Cycle classes, set by Tick.
const (
	// CycleOff: the core is halted and drained; it did not consume the
	// cycle (attributed as empty time by the chip).
	CycleOff CycleClass = iota
	// CycleBusy: at least one instruction retired.
	CycleBusy
	// CycleEmpty: zero retirements with an empty ROB.
	CycleEmpty
	// CycleComputeStall: zero retirements, non-memory (or completed)
	// instruction at ROB head.
	CycleComputeStall
	// CycleMemStall: zero retirements, incomplete memory access at ROB
	// head — the data-stall cycle of Eq. (5).
	CycleMemStall
)

// Core is a cycle-driven out-of-order core. Create with New, then call
// Tick once per cycle before the caches.
type Core struct {
	cfg Config
	gen trace.Generator
	mem MemPort

	rob     []robEntry
	head    int
	count   int
	headSeq uint64 // seq of rob[head]
	nextSeq uint64

	inIW   int // dispatched but not complete
	inLSQ  int // memory accesses outstanding
	halted bool

	st        Stats
	lastClass CycleClass
	ob        *coreObs
}

// coreObs holds the core's registry handles (nil when unobserved).
type coreObs struct {
	instructions, cycles, stalls, memStalls, lsqFull, rejected *obs.Counter
	ipc                                                        *obs.Gauge
	robOcc                                                     *obs.Histogram
}

// AttachObs registers this core's metrics under prefix (e.g. "cpu.0") in
// r. A nil registry leaves the core unobserved.
func (c *Core) AttachObs(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	n := c.cfg.ROBSize + 1
	if n > 32 {
		n = 32
	}
	c.ob = &coreObs{
		instructions: r.Counter(prefix + ".instructions"),
		cycles:       r.Counter(prefix + ".cycles"),
		stalls:       r.Counter(prefix + ".stalls"),
		memStalls:    r.Counter(prefix + ".mem_stalls"),
		lsqFull:      r.Counter(prefix + ".lsq_full"),
		rejected:     r.Counter(prefix + ".rejected_accesses"),
		ipc:          r.Gauge(prefix + ".ipc"),
		robOcc:       r.Histogram(prefix+".rob_occupancy", 0, float64(c.cfg.ROBSize+1), n),
	}
}

// PublishObs copies the accumulated Stats into the attached registry;
// call before snapshotting. No-op when unobserved.
func (c *Core) PublishObs() {
	if c.ob == nil {
		return
	}
	c.ob.instructions.Set(c.st.Instructions)
	c.ob.cycles.Set(c.st.Cycles)
	c.ob.stalls.Set(c.st.StallCycles)
	c.ob.memStalls.Set(c.st.MemStallCycles)
	c.ob.lsqFull.Set(c.st.LSQFullEvents)
	c.ob.rejected.Set(c.st.RejectedAccesses)
	c.ob.ipc.Set(c.st.IPC())
}

// New builds a core running gen against mem. It panics on invalid
// configuration.
func New(cfg Config, gen trace.Generator, mem MemPort) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.CommitWidth == 0 {
		cfg.CommitWidth = cfg.IssueWidth
	}
	if cfg.LSQSize == 0 {
		cfg.LSQSize = cfg.IWSize
	}
	return &Core{cfg: cfg, gen: gen, mem: mem, rob: make([]robEntry, cfg.ROBSize)}
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Stats returns the counters.
func (c *Core) Stats() Stats { return c.st }

// ResetCounters zeroes the counters while keeping pipeline state.
func (c *Core) ResetCounters() { c.st = Stats{} }

// Retired returns the retired instruction count.
func (c *Core) Retired() uint64 { return c.st.Instructions }

// Halt stops fetching new instructions; in-flight ones drain.
func (c *Core) Halt() { c.halted = true }

// Halted reports whether the core has stopped fetching.
func (c *Core) Halted() bool { return c.halted }

// Busy reports whether instructions are still in flight.
func (c *Core) Busy() bool { return c.count > 0 }

// LastClass returns the classification of the core's most recent cycle
// (CycleOff before the first Tick or once drained).
func (c *Core) LastClass() CycleClass { return c.lastClass }

// ROBOccupancy returns the current in-flight instruction count, the
// time-series ROB occupancy probe.
func (c *Core) ROBOccupancy() int { return c.count }

// IWOccupancy returns the dispatched-but-incomplete instruction count,
// the instruction-window occupancy probe.
func (c *Core) IWOccupancy() int { return c.inIW }

// at returns the ROB entry holding seq; the caller guarantees it is in
// flight.
func (c *Core) at(seq uint64) *robEntry {
	idx := (c.head + int(seq-c.headSeq)) % len(c.rob)
	return &c.rob[idx]
}

// depReady reports whether e's register dependence is satisfied.
func (c *Core) depReady(e *robEntry) bool {
	if e.in.Dep == 0 || uint64(e.in.Dep) > e.seq {
		return true // no producer, or it would precede the stream
	}
	dep := e.seq - uint64(e.in.Dep)
	if dep < c.headSeq {
		return true // producer already retired
	}
	return c.at(dep).state == stDone
}

// Tick advances the core one cycle.
func (c *Core) Tick(cycle uint64) {
	if c.halted && c.count == 0 {
		c.lastClass = CycleOff
		return // fully drained: the core is off, time no longer accrues
	}
	c.st.Cycles++

	// 1. Complete compute ops whose latency expired. (Memory ops complete
	// via the cache callback.)
	computeExecuting := false
	for i := 0; i < c.count; i++ {
		e := &c.rob[(c.head+i)%len(c.rob)]
		if e.state != stExecuting {
			continue
		}
		if e.in.Kind == trace.Compute {
			if e.readyAt <= cycle {
				e.state = stDone
				c.inIW--
			} else {
				computeExecuting = true
			}
		}
	}

	// 2. Retire in order.
	retired := 0
	for retired < c.cfg.CommitWidth && c.count > 0 {
		e := &c.rob[c.head]
		if e.state != stDone {
			break
		}
		if e.in.Kind.IsMem() {
			c.st.MemInstructions++
		}
		c.head = (c.head + 1) % len(c.rob)
		c.headSeq++
		c.count--
		retired++
		c.st.Instructions++
	}

	// 3. Issue ready instructions to execution, oldest first.
	issued := 0
	for i := 0; i < c.count && issued < c.cfg.IssueWidth; i++ {
		e := &c.rob[(c.head+i)%len(c.rob)]
		if e.state != stDispatched || !c.depReady(e) {
			continue
		}
		if e.in.Kind == trace.Compute {
			e.state = stExecuting
			e.readyAt = cycle + uint64(e.in.Lat)
			issued++
			computeExecuting = true
			continue
		}
		// Memory operation: needs an LSQ slot and L1 acceptance.
		if c.inLSQ >= c.cfg.LSQSize {
			c.st.LSQFullEvents++
			continue
		}
		ee := e
		if !c.mem.Access(cycle, e.in.Addr, e.in.Kind == trace.Store, func(uint64) {
			ee.state = stDone
			c.inIW--
			c.inLSQ--
		}) {
			c.st.RejectedAccesses++
			continue
		}
		e.state = stExecuting
		c.inLSQ++
		issued++
	}

	// 4. Fetch/dispatch new instructions.
	if !c.halted {
		for d := 0; d < c.cfg.IssueWidth; d++ {
			if c.count >= c.cfg.ROBSize || c.inIW >= c.cfg.IWSize {
				break
			}
			tail := (c.head + c.count) % len(c.rob)
			c.rob[tail] = robEntry{in: c.gen.Next(), seq: c.nextSeq, state: stDispatched}
			c.nextSeq++
			c.count++
			c.inIW++
		}
	}

	// 5. Cycle accounting.
	if retired > 0 {
		c.lastClass = CycleBusy
	} else if c.count == 0 {
		c.st.EmptyCycles++
		c.lastClass = CycleEmpty
	} else {
		c.st.StallCycles++
		c.lastClass = CycleComputeStall
		head := &c.rob[c.head]
		if head.in.Kind.IsMem() && head.state != stDone {
			c.st.MemStallCycles++
			c.lastClass = CycleMemStall
		}
	}
	if c.inLSQ > 0 {
		c.st.MemActiveCycles++
		if computeExecuting || retired > 0 {
			c.st.OverlapCycles++
		}
	}
	if c.ob != nil {
		c.ob.robOcc.Observe(float64(c.count))
	}
}
