package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"lpm"
)

// The smoke tests exercise the report CLI in-process: the cheap text
// experiments, the versioned JSON document (with per-layer snapshots
// under -observe), and the error paths.

func TestRunTextFig1(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "fig1"}, &out, &errb); err != nil {
		t.Fatalf("run: %v\n%s", err, errb.String())
	}
	for _, want := range []string{"==== fig1 ====", "C-AMAT", "Eq. 3 check"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("fig1 report lacks %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONFig1(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-json", "-experiment", "fig1"}, &out, &errb); err != nil {
		t.Fatalf("run: %v\n%s", err, errb.String())
	}
	var rep lpm.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != lpm.ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, lpm.ReportSchema)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "fig1" || rep.Experiments[0].Fig1 == nil {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	if rep.Experiments[0].Fig1.Measured.CAMAT != 1.6 {
		t.Fatalf("fig1 measured C-AMAT = %v, want 1.6", rep.Experiments[0].Fig1.Measured.CAMAT)
	}
}

func TestRunJSONTable1Observed(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-json", "-quick", "-observe", "-experiment", "table1"}, &out, &errb); err != nil {
		t.Fatalf("run: %v\n%s", err, errb.String())
	}
	var rep lpm.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Experiments) != 1 || len(rep.Experiments[0].Table1) != 5 {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	for _, row := range rep.Experiments[0].Table1 {
		if row.Layers == nil || len(row.Layers.Metrics) == 0 {
			t.Fatalf("row %s: -observe produced no per-layer snapshot", row.Name)
		}
		if row.Layers.Counter("l1.0.accesses") == 0 {
			t.Fatalf("row %s: snapshot recorded zero L1 accesses", row.Name)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-json", "-experiment", "nonsense"}, &out, &errb); err == nil {
		t.Fatal("unknown experiment did not error in JSON mode")
	}
	if err := run(context.Background(), []string{"-nosuchflag"}, &out, &errb); err == nil {
		t.Fatal("unknown flag did not error")
	}
	// In text mode an unknown experiment simply selects nothing; that is
	// the historical behaviour and must not start failing.
	out.Reset()
	if err := run(context.Background(), []string{"-experiment", "nonsense"}, &out, &errb); err != nil {
		t.Fatalf("text mode with unknown experiment errored: %v", err)
	}
	if strings.Contains(out.String(), "====") {
		t.Fatalf("unknown experiment ran something:\n%s", out.String())
	}
}
