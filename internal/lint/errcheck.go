package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerErrcheck is the errcheck-lite rule: in the CLIs (cmd/...) and
// the root-package report builders, an io/encoding write whose error is
// silently dropped hides truncated output — a CLI piped into `head`
// gets EPIPE, keeps "succeeding", and exits 0 with a partial report.
// Errors must be checked; a deliberate drop is spelled `_ = call(...)`
// so the discard is visible in review.
//
// Two idioms stay legal: deferred Close/Flush (the usual best-effort
// teardown) and fmt.Fprint* to a stderr-named writer (diagnostics are
// best-effort by design).
//
// internal/cliutil is in scope alongside the CLIs: it owns the atomic
// temp-file+rename writes, where a dropped Rename, Close, or Sync error
// silently publishes a torn or unsynced file.
//
// internal/fabric is in scope for the same reason on the network side:
// it owns the sweep fabric's wire path, where a dropped net.Conn Write
// or Close error means a coordinator or worker keeps trusting a dead
// link — a torn frame's remainder silently never leaves the process.
var analyzerErrcheck = &Analyzer{
	Name:  "errcheck",
	Doc:   "flag dropped errors from io/encoding writes in the CLIs, cliutil, fabric, and report builders",
	Paths: []string{"cmd", "internal/cliutil", "internal/fabric", "."},
	Run:   runErrcheck,
}

// errcheckPkgs are the call-by-package rules: package path → function
// name prefixes whose dropped error is flagged.
var errcheckPkgs = map[string][]string{
	"fmt":             {"Fprint", "Print"},
	"io":              {"Copy", "WriteString", "ReadFull", "ReadAll"},
	"os":              {"WriteFile", "Mkdir", "MkdirAll", "Remove", "Rename", "Chdir"},
	"bufio":           {},
	"encoding/json":   {},
	"encoding/csv":    {},
	"encoding/binary": {},
	"encoding/gob":    {},
}

// errcheckMethods are the call-by-method-name rules, package
// independent: byte sinks and teardown whose error reports data loss.
var errcheckMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "ReadFrom": true, "Encode": true, "Flush": true,
	"Close": true, "Sync": true,
}

func runErrcheck(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(*ast.DeferStmt); ok {
				return false // deferred best-effort teardown is legal
			}
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := droppedErrCall(info, call); name != "" {
				p.Reportf(call.Pos(),
					"%s returns an error that is dropped; check it or discard explicitly with `_ = %s(...)`",
					name, name)
			}
			return true
		})
	}
}

// droppedErrCall returns a display name when the call's error result is
// being dropped and the callee falls under the errcheck rules, "" when
// the statement is fine.
func droppedErrCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return ""
	}
	if sig.Recv() != nil {
		if errcheckMethods[fn.Name()] {
			return recvTypeName(sig) + "." + fn.Name()
		}
		return ""
	}
	prefixes, ok := errcheckPkgs[fn.Pkg().Path()]
	if !ok {
		return ""
	}
	if len(prefixes) == 0 {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	for _, pre := range prefixes {
		if strings.HasPrefix(fn.Name(), pre) {
			if fn.Pkg().Path() == "fmt" && writerIsStderr(call) {
				return ""
			}
			return fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return ""
}

// lastResultIsError reports whether the signature's final result is the
// built-in error type.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	named, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// writerIsStderr recognises fmt.Fprint*(os.Stderr, ...) and writers
// named stderr: diagnostics to the error stream are best-effort.
func writerIsStderr(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	switch a := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		return strings.EqualFold(a.Name, "stderr")
	case *ast.SelectorExpr:
		return a.Sel.Name == "Stderr"
	}
	return false
}
