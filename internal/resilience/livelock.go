package resilience

import (
	"fmt"

	"lpm/internal/obs/timeseries"
)

// LivelockError reports that a simulation made no forward progress —
// no committed instruction and no retired memory request — across a
// full watchdog budget of cycles. It carries the diagnostic bundle the
// chip captured at detection time so an error cell in a report is
// debuggable without re-running the workload.
type LivelockError struct {
	// Workload names the stuck configuration/workload, when known.
	Workload string `json:"workload,omitempty"`
	// Cycle is the chip cycle at detection.
	Cycle uint64 `json:"cycle"`
	// Budget is the watchdog's no-progress cycle budget that elapsed.
	Budget uint64 `json:"budget"`
	// Retired holds each core's retired-instruction count at detection
	// (idle slots report 0).
	Retired []uint64 `json:"retired,omitempty"`
	// Stalls is the per-core stall attribution accumulated over the
	// stuck window — which layer each core's dead cycles were charged
	// to.
	Stalls []timeseries.StallTree `json:"stalls,omitempty"`
	// Occupancy snapshots the queue depths at detection: per-L1 MSHRs,
	// shared-cache MSHRs, NoC pending, DRAM bank queue and in-flight
	// counts, keyed by the probe names the timeline uses
	// (l1.0.mshr_occupancy, dram.queue_depth, ...).
	Occupancy map[string]uint64 `json:"occupancy,omitempty"`
	// Window is the last closed timeline window before detection, when
	// the chip had a sampler attached.
	Window *timeseries.Window `json:"window,omitempty"`
}

// Error implements error with a one-line summary; the bundle travels in
// the struct for callers that errors.As their way to it.
func (e *LivelockError) Error() string {
	return fmt.Sprintf("livelock: no forward progress for %d cycles (workload %q, cycle %d)",
		e.Budget, e.Workload, e.Cycle)
}
