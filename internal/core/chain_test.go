package core

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleChain() Chain {
	return Chain{
		CPIexe: 0.5,
		Fmem:   0.4,
		Layers: []Layer{
			{Name: "L1", CAMAT: 2, MR: 0.1},
			{Name: "L2", CAMAT: 15, MR: 0.3},
			{Name: "L3", CAMAT: 40, MR: 0.5},
			{Name: "MM", CAMAT: 120},
		},
	}
}

func TestChainValidate(t *testing.T) {
	if err := sampleChain().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Chain){
		func(c *Chain) { c.CPIexe = 0 },
		func(c *Chain) { c.Fmem = 1.5 },
		func(c *Chain) { c.Layers = nil },
		func(c *Chain) { c.Layers[1].CAMAT = -1 },
		func(c *Chain) { c.Layers[0].MR = 2 },
	}
	for i, mut := range bads {
		c := sampleChain()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// The bottom layer's MR is ignored, even if out of range.
	c := sampleChain()
	c.Layers[len(c.Layers)-1].MR = 9
	if err := c.Validate(); err != nil {
		t.Errorf("bottom-layer MR should be ignored: %v", err)
	}
}

func TestChainMatchesThreeLayerFormulas(t *testing.T) {
	m := sampleMeasurement()
	ch := ChainFromMeasurement(m)
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ch.LPMR(0)-m.LPMR1()) > 1e-12 {
		t.Fatalf("LPMR(0) %v vs LPMR1 %v", ch.LPMR(0), m.LPMR1())
	}
	if math.Abs(ch.LPMR(1)-m.LPMR2()) > 1e-12 {
		t.Fatalf("LPMR(1) %v vs LPMR2 %v", ch.LPMR(1), m.LPMR2())
	}
	if math.Abs(ch.LPMR(2)-m.LPMR3()) > 1e-12 {
		t.Fatalf("LPMR(2) %v vs LPMR3 %v", ch.LPMR(2), m.LPMR3())
	}
}

func TestChainFourLevels(t *testing.T) {
	c := sampleChain()
	// LPMR(3) = 120 * 0.4 * 0.1*0.3*0.5 / 0.5
	want := 120 * 0.4 * 0.1 * 0.3 * 0.5 / 0.5
	if got := c.LPMR(3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LPMR(3) = %v, want %v", got, want)
	}
	rs := c.LPMRs()
	if len(rs) != 4 {
		t.Fatalf("LPMRs len %d", len(rs))
	}
}

func TestChainOutOfRange(t *testing.T) {
	c := sampleChain()
	if c.LPMR(-1) != 0 || c.LPMR(99) != 0 {
		t.Fatal("out-of-range LPMR should be 0")
	}
}

func TestBottleneckLayer(t *testing.T) {
	c := sampleChain()
	// LPMRs: L1: 2*0.8=1.6; L2: 15*0.8*0.1=1.2; L3: 40*0.8*0.03=0.96;
	// MM: 120*0.8*0.015=1.44. Max is L1.
	if got := c.BottleneckLayer(); got != 0 {
		t.Fatalf("bottleneck = %d (%v)", got, c.LPMRs())
	}
	c.Layers[2].CAMAT = 500 // L3 now dominates
	if got := c.BottleneckLayer(); got != 2 {
		t.Fatalf("bottleneck = %d (%v)", got, c.LPMRs())
	}
}

func TestSensitivitiesMatchFiniteDifferences(t *testing.T) {
	f := func(h, ch, pmr, pamp, cm float64) bool {
		abs := func(x, cap float64) float64 { return math.Mod(math.Abs(x), cap) + 0.05 }
		c := CAMAT{
			H:    abs(h, 10),
			CH:   abs(ch, 8),
			PMR:  math.Mod(math.Abs(pmr), 1),
			PAMP: abs(pamp, 100),
			CM:   abs(cm, 8),
		}
		s := Sensitivities(c)
		const eps = 1e-6
		fd := func(mut func(*CAMAT, float64)) float64 {
			up, dn := c, c
			mut(&up, eps)
			mut(&dn, -eps)
			return (up.Value() - dn.Value()) / (2 * eps)
		}
		checks := []struct{ got, want float64 }{
			{s.DH, fd(func(x *CAMAT, d float64) { x.H += d })},
			{s.DCH, fd(func(x *CAMAT, d float64) { x.CH += d })},
			{s.DPMR, fd(func(x *CAMAT, d float64) { x.PMR += d })},
			{s.DPAMP, fd(func(x *CAMAT, d float64) { x.PAMP += d })},
			{s.DCM, fd(func(x *CAMAT, d float64) { x.CM += d })},
		}
		for _, chk := range checks {
			scale := math.Max(1, math.Abs(chk.want))
			if math.Abs(chk.got-chk.want)/scale > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSensitivitySigns(t *testing.T) {
	s := Sensitivities(CAMAT{H: 3, CH: 2, PMR: 0.1, PAMP: 20, CM: 2})
	if s.DH <= 0 || s.DPMR <= 0 || s.DPAMP <= 0 {
		t.Fatal("H/pMR/pAMP derivatives must be positive")
	}
	if s.DCH >= 0 || s.DCM >= 0 {
		t.Fatal("concurrency derivatives must be negative")
	}
}

func TestBestLeverPicksDominantTerm(t *testing.T) {
	// Hit-dominated: the hit term H/CH dwarfs the miss term, so the best
	// 1% lever is H or CH.
	hitHeavy := CAMAT{H: 3, CH: 1, PMR: 0.001, PAMP: 2, CM: 4}
	if lever := BestLever(hitHeavy); lever != "H" && lever != "CH" {
		t.Fatalf("hit-heavy lever = %s", lever)
	}
	// Miss-dominated: pure misses dwarf the hit term.
	missHeavy := CAMAT{H: 1, CH: 4, PMR: 0.5, PAMP: 200, CM: 1}
	if lever := BestLever(missHeavy); lever == "H" || lever == "CH" {
		t.Fatalf("miss-heavy lever = %s", lever)
	}
}

func TestBestLeverZeroGuards(t *testing.T) {
	// Degenerate all-zero parameters must not panic or return empty.
	if BestLever(CAMAT{}) == "" {
		t.Fatal("empty lever")
	}
}
