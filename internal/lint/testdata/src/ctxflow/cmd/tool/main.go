// Command tool is the ctxflow fixture's entry-point case: minting a
// root context is main's job — but shadowing is wrong everywhere.
package main

import "context"

func main() {
	ctx := context.Background() // legal: the process entry point owns the root
	_ = run(ctx)
}

func run(ctx context.Context) error {
	ctx2 := context.Background() // want "shadows the context.Context this function already receives"
	<-ctx2.Done()
	return nil
}
