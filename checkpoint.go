package lpm

// Durable checkpoint/resume for the simulation-backed drivers. The unit
// of persistence is the named memo cache: every simulation result the
// run produced, keyed by its content fingerprint. Because the drivers
// are deterministic given their inputs, reseeding the caches and
// replaying the walk reproduces the uninterrupted run bit-for-bit — the
// checkpoint does not need to encode control-flow position, only the
// expensive work already done.

import (
	"encoding/json"
	"fmt"

	"lpm/internal/parallel"
	"lpm/internal/resilience"
)

// CheckpointSchema versions the checkpoint payload (the envelope framing
// is versioned separately by resilience's magic).
const CheckpointSchema = "lpm-checkpoint/v1"

// Checkpoint is the JSON payload carried inside a resilience envelope.
type Checkpoint struct {
	// Schema is CheckpointSchema.
	Schema string `json:"schema"`
	// Tool names the producing command.
	Tool string `json:"tool"`
	// Key fingerprints the run configuration (workload, scale, flags).
	// LoadMemoCheckpoint refuses a mismatched key: seeding caches from a
	// different configuration would silently corrupt results.
	Key string `json:"key"`
	// Memos maps memo-cache names to their encoded snapshots.
	Memos map[string]json.RawMessage `json:"memos"`
}

// SaveMemoCheckpoint atomically persists every named memo cache to path,
// stamped with the run key. Safe to call repeatedly (e.g. after every
// evaluation); each call rewrites the file via temp-file+rename, so a
// kill at any instant leaves either the previous checkpoint or the new
// one, never a torn file.
func SaveMemoCheckpoint(path, tool, key string) error {
	memos, err := parallel.ExportMemos()
	if err != nil {
		return fmt.Errorf("checkpoint: export memos: %w", err)
	}
	ck := Checkpoint{Schema: CheckpointSchema, Tool: tool, Key: key, Memos: memos}
	return resilience.SaveCheckpoint(path, ck)
}

// LoadMemoCheckpoint reads a checkpoint and seeds the named memo caches
// from it, after validating the envelope, schema, and run key. A missing
// file is reported via the underlying os error (check with
// errors.Is(err, fs.ErrNotExist) to treat it as a cold start).
func LoadMemoCheckpoint(path, key string) (*Checkpoint, error) {
	var ck Checkpoint
	if err := resilience.LoadCheckpoint(path, &ck); err != nil {
		return nil, err
	}
	if ck.Schema != CheckpointSchema {
		return nil, fmt.Errorf("checkpoint %s: unsupported schema %q (want %s)", path, ck.Schema, CheckpointSchema)
	}
	if ck.Key != key {
		return nil, fmt.Errorf("checkpoint %s: run key mismatch: file has %q, this run is %q (delete the checkpoint or match the flags that produced it)", path, ck.Key, key)
	}
	if err := parallel.ImportMemos(ck.Memos); err != nil {
		return nil, fmt.Errorf("checkpoint %s: seed memos: %w", path, err)
	}
	return &ck, nil
}
