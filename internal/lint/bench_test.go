package lint

import (
	"testing"
	"time"
)

// moduleRootDir is the repository root relative to this package — the
// module the benchmark and the warm-cache pin lint.
const moduleRootDir = "../.."

// BenchmarkLintModule times a full-suite lint of the repository module.
// One warm-up run fills the content-keyed load cache so the measured
// iterations report the steady-state (warm) cost — the latency `make
// lint` pays on a no-change re-run within one process.
func BenchmarkLintModule(b *testing.B) {
	if _, err := Run(Config{Dir: moduleRootDir}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Dir: moduleRootDir}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWarmCacheSpeedup pins the content-keyed load cache's value: a
// no-change re-run of the full suite must hit the cache for every
// package (zero fresh loads) and finish at least 2x faster than the
// cold run. Deliberately not parallel: it resets the process-global
// cache and times wall-clock.
func TestWarmCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("cold module lint re-type-checks the stdlib; skipped under -short")
	}
	resetLoadCacheForTest()

	start := time.Now()
	if _, err := Run(Config{Dir: moduleRootDir}); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	hits0, loads0 := cacheState().counters()

	start = time.Now()
	if _, err := Run(Config{Dir: moduleRootDir}); err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)
	hits1, loads1 := cacheState().counters()

	// loads counts package visits, hits cache hits; visits minus hits is
	// the number of fresh type-checks each run paid.
	if fresh := (loads1 - loads0) - (hits1 - hits0); fresh != 0 {
		t.Errorf("warm run type-checked %d packages fresh, want 0 (all cache hits)", fresh)
	}
	if hits1 == hits0 {
		t.Error("warm run recorded no cache hits")
	}
	t.Logf("cold %v, warm %v (%.1fx)", cold, warm, float64(cold)/float64(warm))
	if 2*warm > cold {
		t.Errorf("warm lint %v is not >=2x faster than cold %v", warm, cold)
	}
}
