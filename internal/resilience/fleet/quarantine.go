package fleet

// Circuit-breaker quarantine. Workers accumulate strikes — timeouts,
// health ejections, cross-validation divergence — and trip into
// quarantine at a threshold; a quarantined worker's handshakes are
// refused until a probation window of coordinator ticks has passed.
// Cross-validation divergence is instant quarantine: a worker that
// returned a different answer for the same pure granule is lying, and
// one lie is one too many.
//
// Like HealthTracker, a Quarantine has no internal lock: the
// coordinator owns it under its scheduling mutex, and the journal
// snapshot/restore hooks let a resumed coordinator carry quarantine
// decisions across a kill -9.

import "sort"

// QuarantinePolicy sets the breaker thresholds.
type QuarantinePolicy struct {
	// TripAfter is the strike count that trips the breaker. Zero or
	// negative disables strike-based quarantine (divergence still trips).
	TripAfter int
	// Probation is the tick count a tripped worker stays blocked.
	// Zero means quarantine is permanent for the life of the sweep.
	Probation uint64
}

// DefaultQuarantinePolicy: three strikes, 400-tick (~10s at the default
// 25ms tick) probation.
func DefaultQuarantinePolicy() QuarantinePolicy {
	return QuarantinePolicy{TripAfter: 3, Probation: 400}
}

// Quarantine tracks strikes and active quarantine windows by worker
// name.
type Quarantine struct {
	policy  QuarantinePolicy
	strikes map[string]int
	// until maps a quarantined worker to the tick at which probation
	// ends; permanent() sentinels never expire.
	until map[string]uint64
}

const permanentQuarantine = ^uint64(0)

// NewQuarantine returns a breaker with the given policy.
func NewQuarantine(policy QuarantinePolicy) *Quarantine {
	return &Quarantine{
		policy:  policy,
		strikes: make(map[string]int),
		until:   make(map[string]uint64),
	}
}

// Strike records one fault against the named worker at tick now and
// reports whether it tripped the breaker (transitioned into
// quarantine on this strike).
func (q *Quarantine) Strike(name string, now uint64) bool {
	if q == nil {
		return false
	}
	q.strikes[name]++
	if q.policy.TripAfter <= 0 || q.strikes[name] < q.policy.TripAfter {
		return false
	}
	if q.blockedAt(name, now) {
		return false
	}
	q.block(name, now)
	return true
}

// QuarantineNow trips the breaker immediately (cross-validation caught
// the worker lying). Reports whether this call newly quarantined it.
func (q *Quarantine) QuarantineNow(name string, now uint64) bool {
	if q == nil {
		return false
	}
	q.strikes[name] = q.policy.TripAfter
	if q.blockedAt(name, now) {
		return false
	}
	q.block(name, now)
	return true
}

func (q *Quarantine) block(name string, now uint64) {
	if q.policy.Probation == 0 {
		q.until[name] = permanentQuarantine
		return
	}
	q.until[name] = now + q.policy.Probation
}

func (q *Quarantine) blockedAt(name string, now uint64) bool {
	until, ok := q.until[name]
	if !ok {
		return false
	}
	return until == permanentQuarantine || now < until
}

// Blocked reports whether the named worker is quarantined at tick now.
// An expired probation readmits the worker as a side effect, with its
// strike count reset to zero — readmission is a clean slate.
func (q *Quarantine) Blocked(name string, now uint64) bool {
	if q == nil {
		return false
	}
	until, ok := q.until[name]
	if !ok {
		return false
	}
	if until != permanentQuarantine && now >= until {
		delete(q.until, name)
		q.strikes[name] = 0
		return false
	}
	return true
}

// Admit is the handshake gate: ok reports whether the named worker may
// join at tick now, and readmitted whether this very call ended its
// probation (the caller wants to log/journal that exactly once).
func (q *Quarantine) Admit(name string, now uint64) (ok, readmitted bool) {
	if q == nil {
		return true, false
	}
	_, wasBlocked := q.until[name]
	blocked := q.Blocked(name, now)
	return !blocked, wasBlocked && !blocked
}

// Strikes returns the current strike count for the named worker.
func (q *Quarantine) Strikes(name string) int {
	if q == nil {
		return 0
	}
	return q.strikes[name]
}

// Snapshot returns the names currently quarantined (for journaling).
func (q *Quarantine) Snapshot() []string {
	if q == nil {
		return nil
	}
	names := make([]string, 0, len(q.until))
	for name := range q.until {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Restore re-quarantines the named workers with a fresh probation
// window starting at tick now. A resumed coordinator cannot know how
// much of the old probation had elapsed (its tick clock restarted), so
// the conservative choice is to restart it.
func (q *Quarantine) Restore(names []string, now uint64) {
	if q == nil {
		return
	}
	for _, name := range names {
		q.strikes[name] = q.policy.TripAfter
		q.block(name, now)
	}
}
