// Package sched implements the paper's case study II: scheduling a
// multiprogrammed workload onto the heterogeneous-L1 (NUCA) 16-core CMP
// of Fig. 5. It provides the two baseline policies used in practice
// (Random and Round-Robin), the paper's LPM-guided NUCA-aware scheduling
// algorithm (NUCA-SA) in fine- and coarse-grained variants, and the
// harmonic weighted speedup (Hsp) evaluation of Fig. 8.
package sched

import (
	"context"
	"fmt"

	"lpm/internal/fabric"
	"lpm/internal/parallel"
	"lpm/internal/trace"
)

// ProfileTable records each workload's standalone memory behaviour on
// every available private-L1 size: the APC_1 (L1 supply rate, Fig. 6) and
// APC_2 (L2 demand, Fig. 7) observed when the workload runs alone. The
// NUCA-SA scheduler consumes it; the Fig. 6/7 reproductions print it.
type ProfileTable struct {
	// Sizes are the L1 capacities profiled, ascending.
	Sizes []uint64
	// Workloads are the profile names, in input order.
	Workloads []string
	// APC1[w][s] is workload w's L1 accesses per memory-active cycle at
	// size index s.
	APC1 map[string][]float64
	// APC2[w][s] is the matching L2 demand rate.
	APC2 map[string][]float64
	// IPC[w][s] is the standalone IPC, used for Hsp normalisation.
	IPC map[string][]float64
}

// ProfileOptions control profiling runs.
type ProfileOptions struct {
	// Instructions per run; 0 means 20000.
	Instructions uint64
	// Warmup instructions discarded before measuring; 0 means
	// 3*Instructions.
	Warmup uint64
	// MaxCycles bounds each run; 0 means (Warmup+Instructions)*600.
	MaxCycles uint64
	// WarmupFast runs the warm-up in the functional tier (see
	// explore.HardwareTarget.WarmupFast); it is part of the memo key via
	// the options fingerprint.
	WarmupFast bool
}

func (o ProfileOptions) normalise() ProfileOptions {
	if o.Instructions == 0 {
		o.Instructions = 20000
	}
	if o.Warmup == 0 {
		o.Warmup = 3 * o.Instructions
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = (o.Warmup + o.Instructions) * 600
	}
	return o
}

// BuildProfileTable measures every workload alone on a single-core chip
// at every L1 size in sizes. This is the paper's per-application
// profiling pass (its Fig. 6 and Fig. 7 data). The len(names)*len(sizes)
// runs are independent, so they fan out over the parallel runner; each
// run builds its own generator and chip, and results land back in input
// order.
func BuildProfileTable(ctx context.Context, names []string, sizes []uint64, opt ProfileOptions) (*ProfileTable, error) {
	opt = opt.normalise()
	t := &ProfileTable{
		Sizes:     append([]uint64(nil), sizes...),
		Workloads: append([]string(nil), names...),
		APC1:      make(map[string][]float64, len(names)),
		APC2:      make(map[string][]float64, len(names)),
		IPC:       make(map[string][]float64, len(names)),
	}
	type job struct {
		prof trace.Profile
		size uint64
	}
	jobs := make([]job, 0, len(names)*len(sizes))
	for _, name := range names {
		prof, err := trace.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		for _, size := range sizes {
			jobs = append(jobs, job{prof: prof, size: size})
		}
	}
	results, err := parallel.MapCtx(ctx, jobs, func(ctx context.Context, j job) ([3]float64, error) {
		apc1, apc2, ipc, err := profileOne(ctx, j.prof, j.size, opt)
		return [3]float64{apc1, apc2, ipc}, err
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		a1 := make([]float64, len(sizes))
		a2 := make([]float64, len(sizes))
		ipc := make([]float64, len(sizes))
		for si := range sizes {
			r := results[ni*len(sizes)+si]
			a1[si], a2[si], ipc[si] = r[0], r[1], r[2]
		}
		t.APC1[name] = a1
		t.APC2[name] = a2
		t.IPC[name] = ipc
	}
	return t, nil
}

// profileMemo shares profiling runs across drivers and benchmark
// iterations: Fig. 6, Fig. 7, and the scheduler evaluations all profile
// the same (workload, L1 size, options) tuples. The name makes it
// persist through ExportMemos for checkpoint/resume.
var profileMemo = parallel.NewNamedMemo[[3]float64]("sched.profile")

// profileOne runs one workload alone at one L1 size on the NUCA reference
// platform and returns (APC1, APC2, IPC) of the measured window. The body
// is RunProfileSpec, in-process or dispatched over the sweep fabric;
// either way the result fills the same memo entry.
func profileOne(ctx context.Context, prof trace.Profile, l1Size uint64, opt ProfileOptions) (apc1, apc2, ipc float64, err error) {
	spec := ProfileSpec{Profile: prof, L1Size: l1Size, Opt: opt.normalise()}
	key := spec.MemoKey()
	r, err := profileMemo.DoCtx(ctx, key, func(ctx context.Context) ([3]float64, error) {
		var out [3]float64
		if sharded, err := fabric.Compute(ctx, ProfileKind, key, spec, &out); sharded {
			return out, err
		}
		return RunProfileSpec(ctx, spec)
	})
	return r[0], r[1], r[2], err
}

// sizeIndex locates size in t.Sizes.
func (t *ProfileTable) sizeIndex(size uint64) (int, error) {
	for i, s := range t.Sizes {
		if s == size {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sched: size %d not profiled", size)
}

// RequiredSize returns the smallest profiled L1 size whose APC1 is within
// tolFrac of the workload's best APC1 — the paper's "optimal memory
// performance with minimum amount of resource".
func (t *ProfileTable) RequiredSize(name string, tolFrac float64) (uint64, error) {
	a1, ok := t.APC1[name]
	if !ok {
		return 0, fmt.Errorf("sched: workload %q not profiled", name)
	}
	best := 0.0
	for _, v := range a1 {
		if v > best {
			best = v
		}
	}
	for i, v := range a1 {
		if v >= best*(1-tolFrac) {
			return t.Sizes[i], nil
		}
	}
	return t.Sizes[len(t.Sizes)-1], nil
}
