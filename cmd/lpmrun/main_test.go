package main

import (
	"bytes"
	"strings"
	"testing"
)

// The smoke tests drive run() in-process at tiny simulation budgets:
// they pin the CLI contract (flags parse, reports print, errors return)
// without the cost of a real measurement run.

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("run -list: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "403.gcc") {
		t.Fatalf("-list output lacks built-in workloads:\n%s", out.String())
	}
}

func TestRunReport(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-workload", "403.gcc", "-instructions", "2000", "-warmup", "3000"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run: %v\n%s", err, errb.String())
	}
	for _, want := range []string{"workload   403.gcc", "LPMR1=", "data stall per instruction"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report lacks %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "metrics (snapshot") {
		t.Fatalf("metrics printed without -metrics:\n%s", out.String())
	}
}

func TestRunMetrics(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-workload", "403.gcc", "-instructions", "2000", "-warmup", "3000", "-metrics"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run -metrics: %v\n%s", err, errb.String())
	}
	for _, want := range []string{"metrics (snapshot v", "l1.0.accesses", "cpu.0.rob_occupancy", "dram.reads"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-metrics output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-workload", "no.such"}, &out, &errb); err == nil {
		t.Fatal("unknown workload did not error")
	}
	if err := run([]string{"-nosuchflag"}, &out, &errb); err == nil {
		t.Fatal("unknown flag did not error")
	}
}
