// Package work registers the fixture's granule handlers: one pure, and
// one for every impurity class the analyzer reports.
package work

import (
	"context"
	"os"
	"time"

	"lpm/internal/fabric"
)

// table is mutable package state outside the sanctioned packages.
var table = map[string]int{"a": 1}

func init() {
	fabric.RegisterKind("pure", func(ctx context.Context, spec []byte) ([]byte, error) {
		return run(ctx, spec) // pure: spec in, result out
	})
	fabric.RegisterKind("cached", func(ctx context.Context, spec []byte) ([]byte, error) {
		// The fabric-owned memo is sanctioned.
		if v, ok := fabric.CacheGet(string(spec)); ok {
			return v, nil
		}
		return spec, nil
	})
	fabric.RegisterKind("clocky", func(ctx context.Context, spec []byte) ([]byte, error) {
		_ = time.Now() // want "time.Now reads the wall clock in fabric handler for kind \"clocky\""
		return spec, nil
	})
	n := 3
	fabric.RegisterKind("closure", func(ctx context.Context, spec []byte) ([]byte, error) {
		if n > 0 { // want "captures variable \"n\" from its enclosing scope"
			return spec, nil
		}
		return nil, nil
	})
	fabric.RegisterKind("global", handleGlobal)
	fabric.RegisterKind("deep", func(ctx context.Context, spec []byte) ([]byte, error) {
		return deep(spec) // the impurity is two frames down; the finding carries the chain
	})
	var fn fabric.Executor = run
	fn = wrap(fn)
	fabric.RegisterKind("dynamic", fn) // want "not statically resolvable"
}

// handleGlobal reads mutable package state: named handlers are checked
// the same as literals.
func handleGlobal(ctx context.Context, spec []byte) ([]byte, error) {
	if table["a"] > 0 { // want "uses package-level variable table in fabric handler for kind \"global\""
		return spec, nil
	}
	return nil, nil
}

// run is the pure workhorse.
func run(ctx context.Context, spec []byte) ([]byte, error) {
	out := make([]byte, len(spec))
	copy(out, spec)
	return out, nil
}

// wrap makes fn unresolvable statically.
func wrap(fn fabric.Executor) fabric.Executor { return fn }

// deep and sub put the impurity at chain depth two.
func deep(spec []byte) ([]byte, error) { return sub(spec) }

func sub(spec []byte) ([]byte, error) {
	f, err := os.Open("calibration.json") // want "calls os.Open in fabric handler for kind \"deep\""
	if err != nil {
		return nil, err
	}
	_ = f.Close() // want "calls os.Close in fabric handler for kind \"deep\""
	return spec, nil
}
