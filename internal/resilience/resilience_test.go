package resilience

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lpm/internal/faultinject"
)

func TestAbortRoundTrip(t *testing.T) {
	base := errors.New("cancelled mid-measure")
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = Recover(r)
			}
		}()
		panic(Abort{Err: base})
	}()
	if !errors.Is(err, base) {
		t.Fatalf("recovered %v, want the carried error", err)
	}
}

func TestRecoverRepanicsForeignValues(t *testing.T) {
	defer func() {
		if r := recover(); r != "genuine bug" {
			t.Fatalf("recovered %v, want the original panic value", r)
		}
	}()
	func() {
		defer func() { _ = Recover(recover()) }()
		panic("genuine bug")
	}()
	t.Fatal("foreign panic was swallowed")
}

func TestLivelockErrorViaAbort(t *testing.T) {
	ll := &LivelockError{Workload: "429.mcf", Cycle: 123456, Budget: 1000,
		Occupancy: map[string]uint64{"dram.queue_depth": 7}}
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = Recover(r)
			}
		}()
		panic(Abort{Err: fmt.Errorf("workload 429.mcf: %w", ll)})
	}()
	var got *LivelockError
	if !errors.As(err, &got) {
		t.Fatalf("errors.As failed on %v", err)
	}
	if got.Occupancy["dram.queue_depth"] != 7 {
		t.Fatalf("diagnostic bundle lost: %+v", got)
	}
	if !strings.Contains(got.Error(), "429.mcf") || !strings.Contains(got.Error(), "1000") {
		t.Fatalf("summary %q lacks workload/budget", got.Error())
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	type state struct {
		Frontier []int              `json:"frontier"`
		Memo     map[string]float64 `json:"memo"`
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	in := state{Frontier: []int{3, 1, 4}, Memo: map[string]float64{"a": 0.1234567890123456}}
	if err := SaveCheckpoint(path, in); err != nil {
		t.Fatal(err)
	}
	var out state
	if err := LoadCheckpoint(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.Memo["a"] != in.Memo["a"] || len(out.Frontier) != 3 {
		t.Fatalf("round trip lost data: %+v", out)
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	err := LoadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt"), &struct{}{})
	if !os.IsNotExist(err) {
		t.Fatalf("missing file err = %v, want IsNotExist", err)
	}
}

// TestDecodeEnvelopeRejectsDamage feeds the decoder every damage class
// the chaos harness produces: truncation at several depths, a flipped
// bit anywhere, a bad magic, and an absurd declared length. All must be
// rejected with ErrCorruptCheckpoint and a specific message.
func TestDecodeEnvelopeRejectsDamage(t *testing.T) {
	good := EncodeEnvelope([]byte(`{"frontier":[1,2,3],"memo":{"k":1.5}}`))
	if _, err := DecodeEnvelope(good); err != nil {
		t.Fatalf("pristine envelope rejected: %v", err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "header"},
		{"header-only", good[:10], "header"},
		{"truncated-payload", good[:len(good)-5], "payload bytes"},
		{"extra-bytes", append(append([]byte(nil), good...), 'x'), "payload bytes"},
		{"bad-magic", append([]byte("NOTLPM00"), good[8:]...), "magic"},
		{"flipped-bit", faultinject.FlipBit(good, 42), ""},
		{"huge-length", func() []byte {
			d := append([]byte(nil), good...)
			d[8], d[9], d[10], d[11] = 0xff, 0xff, 0xff, 0xff
			return d
		}(), "cap"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeEnvelope(c.data)
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err %q lacks %q", err, c.want)
			}
		})
	}
}

func TestLoadCheckpointRejectsBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, EncodeEnvelope([]byte("{not json")), 0o644); err != nil {
		t.Fatal(err)
	}
	err := LoadCheckpoint(path, &struct{}{})
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("bad JSON err = %v", err)
	}
}

func TestSaveCheckpointInjectedFault(t *testing.T) {
	restore := faultinject.Arm(faultinject.NewPlan(1,
		faultinject.Rule{Point: "resilience.checkpoint.save", Msg: "killed"}))
	defer restore()
	path := filepath.Join(t.TempDir(), "x.ckpt")
	if err := SaveCheckpoint(path, 42); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed save left a file behind")
	}
}
