package lpm

// This file defines the machine-readable run output: versioned JSON
// documents mirroring the experiment harnesses, consumed by
// `lpmreport -json` and `lpmexplore -json` so downstream tooling can
// diff runs. The text reports remain the human-facing view; the JSON
// schema is the stable contract (bump the schema string on any
// incompatible shape change).

import (
	"context"
	"encoding/json"
	"fmt"

	"lpm/internal/obs"
	"lpm/internal/obs/timeseries"
)

// Report schema identifiers.
const (
	// ReportSchema versions the lpmreport -json document. v2 adds the
	// "timeline" experiment (windowed C-AMAT/LPMR series with stall
	// attribution); every v1 field is unchanged, so v1 documents remain
	// decodable — see DecodeReport.
	ReportSchema = "lpm-report/v2"
	// ReportSchemaV1 is the previous report schema, still accepted by
	// DecodeReport.
	ReportSchemaV1 = "lpm-report/v1"
	// ExploreSchema versions the lpmexplore -json document.
	ExploreSchema = "lpm-explore/v1"
)

// IntervalSeed is the fixed Monte Carlo seed of the interval study, the
// only stochastic input of the report; it is recorded in the document so
// two reports are comparable.
const IntervalSeed = 42

// Report is the versioned document `lpmreport -json` emits.
type Report struct {
	// Schema is ReportSchema.
	Schema string `json:"schema"`
	// Tool names the producing command.
	Tool string `json:"tool"`
	// Scale records the simulation budgets used.
	Scale Scale `json:"scale"`
	// Seed is the interval study's Monte Carlo seed (the simulations
	// themselves are deterministic).
	Seed uint64 `json:"seed"`
	// Experiments holds one entry per experiment run, in request order.
	Experiments []ExperimentReport `json:"experiments"`
	// Partial is true when the run was interrupted (signal or context
	// cancellation) before every requested experiment finished. Completed
	// and Aborted then list the experiment keys on each side of the cut;
	// an interrupted experiment appears in both Experiments (with
	// whatever cells finished) and Aborted. Uninterrupted documents omit
	// all three fields, so the schema string is unchanged.
	Partial   bool     `json:"partial,omitempty"`
	Completed []string `json:"completed,omitempty"`
	Aborted   []string `json:"aborted,omitempty"`
}

// ExperimentReport is one experiment's data; exactly one payload field
// is non-empty, keyed by Name.
type ExperimentReport struct {
	// Name is the experiment key (fig1, table1, casestudy1, fig67, fig8,
	// interval, identities, timeline).
	Name string `json:"name"`
	// Err records an experiment-level failure; the payload fields are
	// then empty. Per-cell failures stay inside the payloads instead
	// (e.g. Table1JSON.Err), leaving the healthy cells intact.
	Err string `json:"err,omitempty"`

	Fig1       *Fig1JSON        `json:"fig1,omitempty"`
	Table1     []Table1JSON     `json:"table1,omitempty"`
	CaseStudy1 []CaseStudyJSON  `json:"casestudy1,omitempty"`
	Fig67      *Fig67JSON       `json:"fig67,omitempty"`
	Fig8       []Fig8Row        `json:"fig8,omitempty"`
	Interval   []IntervalRow    `json:"interval,omitempty"`
	Identities []IdentityReport `json:"identities,omitempty"`
	Timeline   []TimelineJSON   `json:"timeline,omitempty"`
}

// TimelineJSON is one configuration's windowed time series (schema v2).
type TimelineJSON struct {
	// Name and Point identify the Table I configuration measured.
	Name  string `json:"name"`
	Point string `json:"point"`
	// CPIexe is the perfect-cache CPI the per-window LPMRs divide by.
	CPIexe float64 `json:"cpi_exe"`
	// Series is the windowed C-AMAT/LPMR timeline with per-core stall
	// attribution.
	Series *timeseries.Series `json:"series"`
	// Err marks a failed cell; Series is then nil.
	Err string `json:"err,omitempty"`
}

// Fig1JSON carries the Fig. 1 worked example, paper vs measured.
type Fig1JSON struct {
	Paper    Fig1Paper `json:"paper"`
	Measured Fig1Paper `json:"measured"`
	// InvAPC is 1/APC, the Eq. (3) cross-check against C-AMAT.
	InvAPC float64 `json:"inv_apc"`
}

// Table1JSON is one Table I row with derived quantities evaluated.
type Table1JSON struct {
	// Name is the configuration label A..E; Point its rendering.
	Name  string `json:"name"`
	Point string `json:"point"`
	// LPMR and PaperLPMR are measured vs paper-reported LPMR1/2/3.
	LPMR      [3]float64 `json:"lpmr"`
	PaperLPMR [3]float64 `json:"paper_lpmr"`
	IPC       float64    `json:"ipc"`
	CPIexe    float64    `json:"cpi_exe"`
	Eta       float64    `json:"eta"`
	// StallModel is Eq. (12); StallMeasured the simulator ground truth.
	StallModel    float64 `json:"stall_model"`
	StallMeasured float64 `json:"stall_measured"`
	// Layers is the per-layer metrics snapshot (nil unless the report
	// ran with observability enabled).
	Layers *obs.Snapshot `json:"layers,omitempty"`
	// Err marks a failed cell (cancelled or livelocked); the metric
	// fields are then zero.
	Err string `json:"err,omitempty"`
}

// CaseStudyJSON summarises one grain's LPM-guided exploration.
type CaseStudyJSON struct {
	Grain       string  `json:"grain"`
	Steps       int     `json:"steps"`
	Evaluations int     `json:"evaluations"`
	SpaceSize   int     `json:"space_size"`
	FinalPoint  string  `json:"final_point"`
	FinalCost   float64 `json:"final_cost"`
	FinalLPMR1  float64 `json:"final_lpmr1"`
	FinalStall  float64 `json:"final_stall"`
	Converged   bool    `json:"converged"`
	MetTarget   bool    `json:"met_target"`
}

// Fig67JSON carries the Fig. 6/7 profiling table.
type Fig67JSON struct {
	// Sizes are the profiled L1 capacities in bytes, ascending.
	Sizes []uint64 `json:"sizes"`
	// Workloads lists profile names in table order.
	Workloads []string `json:"workloads"`
	// APC1, APC2 and IPC are indexed [workload][size index].
	APC1 map[string][]float64 `json:"apc1"`
	APC2 map[string][]float64 `json:"apc2"`
	IPC  map[string][]float64 `json:"ipc"`
}

// ReportOptions parameterise BuildReport.
type ReportOptions struct {
	// Scale sets the simulation budgets (zero value: FullScale).
	Scale Scale
	// Experiments selects which experiments run; nil or empty means all.
	Experiments []string
	// Observe enables per-layer metrics snapshots on the Table I rows.
	Observe bool
	// IntervalSamples overrides the interval study's Monte Carlo sample
	// count (0 = default).
	IntervalSamples int
}

// ReportExperiments lists the valid experiment keys in run order.
func ReportExperiments() []string {
	return []string{"fig1", "table1", "casestudy1", "fig67", "fig8", "interval", "identities", "timeline"}
}

// MaxReportSize bounds the documents DecodeReport accepts. Real reports
// are a few megabytes at most; anything near the cap is corrupt or
// hostile input, and refusing it keeps the decoder from ballooning on a
// damaged file.
const MaxReportSize = 256 << 20

// DecodeReport parses a JSON report document, accepting both the current
// schema and v1 (which simply lacks the timeline payload). Unknown or
// missing schema strings are an error: a silent best-effort decode would
// make report diffs meaningless. Empty, truncated, and oversized inputs
// get distinct errors so an interrupted write is diagnosable.
func DecodeReport(data []byte) (*Report, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("decode report: empty input (interrupted write?)")
	}
	if len(data) > MaxReportSize {
		return nil, fmt.Errorf("decode report: %d bytes exceeds %d byte cap", len(data), MaxReportSize)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("decode report: %w", err)
	}
	switch rep.Schema {
	case ReportSchema, ReportSchemaV1:
		return &rep, nil
	case "":
		return nil, fmt.Errorf("decode report: missing schema field")
	default:
		return nil, fmt.Errorf("decode report: unsupported schema %q (supported: %s, %s)",
			rep.Schema, ReportSchema, ReportSchemaV1)
	}
}

// BuildReport runs the selected experiments and assembles the versioned
// JSON document.
func BuildReport(opts ReportOptions) (*Report, error) {
	//lint:ignore ctxflow ctx-less compat wrapper; BuildReportCtx is the interruptible form
	return BuildReportCtx(context.Background(), opts)
}

// BuildReportCtx is the interruptible form of BuildReport. When ctx is
// cancelled mid-run the function still returns a valid, decodable
// document: Partial is set, Completed lists the experiments that
// finished, and Aborted lists the interrupted one (whose partial cells
// are kept) plus everything not yet started. Deterministic per-cell
// failures (livelocks, simulator faults) never abort the document — they
// land in the matching payload's Err field and the run continues.
// Unknown experiment names remain a hard error.
func BuildReportCtx(ctx context.Context, opts ReportOptions) (*Report, error) {
	s := opts.Scale
	if s == (Scale{}) {
		s = FullScale()
	}
	want := opts.Experiments
	if len(want) == 0 {
		want = ReportExperiments()
	}
	rep := &Report{Schema: ReportSchema, Tool: "lpmreport", Scale: s, Seed: IntervalSeed}
	var completed []string
	abort := func(i int) {
		rep.Partial = true
		rep.Completed = completed
		rep.Aborted = append(rep.Aborted, want[i:]...)
	}
	for i, name := range want {
		if ctx.Err() != nil {
			abort(i)
			break
		}
		er, err := buildExperiment(ctx, name, s, opts)
		if err != nil {
			if !validExperiment(name) {
				return nil, err
			}
			// A cancellation that surfaced as the experiment's error (for
			// example through casestudy1's sequential walk) aborts; any
			// other failure is deterministic and becomes a recorded cell.
			if ctx.Err() != nil {
				rep.Experiments = append(rep.Experiments, er)
				abort(i)
				break
			}
			er.Err = err.Error()
		}
		rep.Experiments = append(rep.Experiments, er)
		if ctx.Err() != nil {
			// Cancelled mid-experiment: the payload holds whatever cells
			// finished, so keep it but list the experiment as aborted.
			abort(i)
			break
		}
		completed = append(completed, name)
	}
	return rep, nil
}

// validExperiment reports whether name is a known experiment key.
func validExperiment(name string) bool {
	for _, n := range ReportExperiments() {
		if n == name {
			return true
		}
	}
	return false
}

// buildExperiment runs one experiment and assembles its report entry.
// Per-cell failures are recorded inside the payload; the returned error
// covers unknown names and whole-experiment failures (and may accompany
// a partially filled entry).
func buildExperiment(ctx context.Context, name string, s Scale, opts ReportOptions) (ExperimentReport, error) {
	er := ExperimentReport{Name: name}
	switch name {
	case "fig1":
		p := Fig1()
		er.Fig1 = &Fig1JSON{
			Paper: Fig1Reference(),
			Measured: Fig1Paper{
				CAMAT: p.CAMAT(), AMAT: p.AMAT(), CH: p.CH(),
				CM: p.CM(), PAMP: p.PAMP(), PMR: p.PMR(),
			},
		}
		if apc := p.APC(); apc > 0 {
			er.Fig1.InvAPC = 1 / apc
		}
	case "table1":
		for _, r := range Table1Ctx(ctx, s, opts.Observe) {
			if r.Err != "" {
				er.Table1 = append(er.Table1, Table1JSON{
					Name: r.Name, Point: r.Point.String(),
					PaperLPMR: r.PaperLPMR, Err: r.Err,
				})
				continue
			}
			er.Table1 = append(er.Table1, Table1JSON{
				Name:          r.Name,
				Point:         r.Point.String(),
				LPMR:          [3]float64{r.M.LPMR1(), r.M.LPMR2(), r.M.LPMR3()},
				PaperLPMR:     r.PaperLPMR,
				IPC:           r.M.IPC,
				CPIexe:        r.M.CPIexe,
				Eta:           r.M.Eta(),
				StallModel:    r.M.StallEq12(),
				StallMeasured: r.M.MeasuredStall,
				Layers:        r.M.Obs,
			})
		}
	case "casestudy1":
		for _, g := range []Grain{CoarseGrain, FineGrain} {
			res, err := CaseStudyICtx(ctx, g, s)
			if err != nil {
				return er, fmt.Errorf("casestudy1 %s: %w", g.String(), err)
			}
			er.CaseStudy1 = append(er.CaseStudy1, CaseStudyJSON{
				Grain:       g.String(),
				Steps:       len(res.Algorithm.Steps),
				Evaluations: res.Evaluations,
				SpaceSize:   res.SpaceSize,
				FinalPoint:  res.Final.String(),
				FinalCost:   res.Final.Cost(),
				FinalLPMR1:  res.Algorithm.Final.LPMR1(),
				FinalStall:  res.Algorithm.Final.MeasuredStall,
				Converged:   res.Algorithm.Converged,
				MetTarget:   res.Algorithm.MetTarget,
			})
		}
	case "fig67":
		res, err := Fig67Ctx(ctx, s)
		if err != nil {
			return er, fmt.Errorf("fig67: %w", err)
		}
		t := res.Table
		er.Fig67 = &Fig67JSON{
			Sizes: t.Sizes, Workloads: t.Workloads,
			APC1: t.APC1, APC2: t.APC2, IPC: t.IPC,
		}
	case "fig8":
		rows, err := Fig8Ctx(ctx, s)
		if err != nil {
			return er, fmt.Errorf("fig8: %w", err)
		}
		er.Fig8 = rows
	case "interval":
		er.Interval = IntervalStudy(opts.IntervalSamples)
	case "identities":
		er.Identities = IdentitiesCtx(ctx, s)
	case "timeline":
		for _, r := range TimelineStudyCtx(ctx, s) {
			if r.Err != "" {
				er.Timeline = append(er.Timeline, TimelineJSON{
					Name: r.Name, Point: r.Point.String(), Err: r.Err,
				})
				continue
			}
			er.Timeline = append(er.Timeline, TimelineJSON{
				Name:   r.Name,
				Point:  r.Point.String(),
				CPIexe: r.M.CPIexe,
				Series: r.M.Timeline,
			})
		}
	default:
		return er, fmt.Errorf("unknown experiment %q (valid: %v)", name, ReportExperiments())
	}
	return er, nil
}

// ExploreReport is the versioned document `lpmexplore -json` emits.
type ExploreReport struct {
	// Schema is ExploreSchema.
	Schema string `json:"schema"`
	// Workload, Grain and Start record the run's inputs.
	Workload string `json:"workload"`
	Grain    string `json:"grain"`
	Start    string `json:"start"`
	// Warmup and Window are the per-evaluation instruction budgets.
	Warmup uint64 `json:"warmup"`
	Window uint64 `json:"window"`
	// SpaceSize is the full design-space cardinality; Evaluations the
	// simulations actually run.
	SpaceSize   int `json:"space_size"`
	Evaluations int `json:"evaluations"`
	// Steps traces the algorithm walk.
	Steps []ExploreStep `json:"steps"`
	// FinalPoint and FinalCost describe the configuration reached.
	FinalPoint string  `json:"final_point"`
	FinalCost  float64 `json:"final_cost"`
	// Final is the last measurement (carrying a Layers snapshot when
	// the run observed).
	Final     Measurement `json:"final"`
	Converged bool        `json:"converged"`
	MetTarget bool        `json:"met_target"`
	// Partial is true when the walk was interrupted before finishing;
	// Steps then holds the completed prefix and Error records why
	// (typically the context cancellation or a livelock diagnostic).
	// Uninterrupted documents omit both fields.
	Partial bool   `json:"partial,omitempty"`
	Error   string `json:"error,omitempty"`
}

// ExploreStep is one algorithm iteration in the JSON trace.
type ExploreStep struct {
	Case    string     `json:"case"`
	LPMR    [3]float64 `json:"lpmr"`
	T1      float64    `json:"t1"`
	T2      float64    `json:"t2"`
	T2Valid bool       `json:"t2_valid"`
	Stall   float64    `json:"stall"`
}

// NewExploreReport assembles the lpmexplore JSON document from a
// completed run.
func NewExploreReport(workload, grain, start string, tgt *HardwareTarget, res Result, final DesignPoint) *ExploreReport {
	rep := &ExploreReport{
		Schema:      ExploreSchema,
		Workload:    workload,
		Grain:       grain,
		Start:       start,
		Warmup:      tgt.Warmup,
		Window:      tgt.Instructions,
		SpaceSize:   tgt.Space.Size(),
		Evaluations: tgt.Evaluations(),
		FinalPoint:  final.String(),
		FinalCost:   final.Cost(),
		Final:       res.Final,
		Converged:   res.Converged,
		MetTarget:   res.MetTarget,
	}
	for _, st := range res.Steps {
		rep.Steps = append(rep.Steps, ExploreStep{
			Case:    st.Case.String(),
			LPMR:    [3]float64{st.Before.LPMR1(), st.Before.LPMR2(), st.Before.LPMR3()},
			T1:      st.T1,
			T2:      st.T2,
			T2Valid: st.T2Valid,
			Stall:   st.Before.MeasuredStall,
		})
	}
	return rep
}
