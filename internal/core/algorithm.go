package core

import (
	"fmt"
)

// Grain selects the optimization strictness of §IV: fine-grained targets
// data stall <= 1% of pure computing time, coarse-grained 10%.
type Grain uint8

// Optimization grains.
const (
	// FineGrain is the paper's "1%" condition.
	FineGrain Grain = iota
	// CoarseGrain is the relaxed "10%" condition.
	CoarseGrain
)

// DeltaPct returns the stall target as a percentage of pure computing
// time.
func (g Grain) DeltaPct() float64 {
	if g == CoarseGrain {
		return 10
	}
	return 1
}

// String implements fmt.Stringer.
func (g Grain) String() string {
	if g == CoarseGrain {
		return "coarse(10%)"
	}
	return "fine(1%)"
}

// Target is the system the LPM algorithm optimizes: hardware knobs on a
// reconfigurable architecture (case study I), a scheduling assignment
// (case study II), or anything else that can re-measure itself.
type Target interface {
	// Measure returns the current interval's measurement.
	Measure() Measurement
	// OptimizeL1 applies one step that improves layer-1 matching
	// (e.g. more ports/IW/ROB/issue width). It reports false when the
	// design space is exhausted in that direction.
	OptimizeL1() bool
	// OptimizeL2 applies one step improving layer-2 matching
	// (e.g. more MSHRs, L2 banking/interleaving).
	OptimizeL2() bool
	// ReduceOverprovision withdraws one step of hardware parallelism,
	// reporting false when nothing can be reduced.
	ReduceOverprovision() bool
}

// Case identifies which branch of the Fig. 3 algorithm acted.
type Case uint8

// Algorithm cases, per Fig. 3.
const (
	// CaseBoth optimizes L1 and L2 together (LPMR1 > T1 and LPMR2 > T2).
	CaseBoth Case = iota + 1
	// CaseL1Only optimizes only L1 (LPMR1 > T1, LPMR2 <= T2).
	CaseL1Only
	// CaseReduce trims overprovisioned hardware (LPMR1 + δ < T1).
	CaseReduce
	// CaseDone terminates (T1 >= LPMR1 >= T1 - δ).
	CaseDone
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseBoth:
		return "I(optimize L1+L2)"
	case CaseL1Only:
		return "II(optimize L1)"
	case CaseReduce:
		return "III(reduce overprovision)"
	case CaseDone:
		return "IV(done)"
	default:
		return fmt.Sprintf("Case(%d)", uint8(c))
	}
}

// Step records one iteration of the algorithm for reporting.
type Step struct {
	// Case is the branch taken.
	Case Case
	// Before is the measurement that drove the decision.
	Before Measurement
	// T1, T2 are the thresholds used; T2Valid is false when η≈0 made the
	// L2 condition vacuous.
	T1, T2  float64
	T2Valid bool
}

// Result summarises an algorithm run.
type Result struct {
	// Steps is the per-iteration trace.
	Steps []Step
	// Final is the last measurement taken.
	Final Measurement
	// Converged reports whether the run ended in Case IV (or could no
	// longer improve) rather than by exhausting MaxSteps.
	Converged bool
	// MetTarget reports whether the final LPMR1 satisfies T1.
	MetTarget bool
}

// AlgorithmConfig parameterises Run.
type AlgorithmConfig struct {
	// Grain selects the 1% or 10% stall target.
	Grain Grain
	// SlackFrac is δ expressed as a fraction of T1 (the paper's case
	// study II uses δ = 50% of T1). Zero disables the overprovision-
	// reduction branch.
	SlackFrac float64
	// MaxSteps bounds iterations; 0 means 64.
	MaxSteps int
	// DisableReduce skips Case III even with slack set (ablation).
	DisableReduce bool
}

// Run executes the LPMR-reduction algorithm of Fig. 3 against t. The
// algorithm measures, derives thresholds, and dispatches among the four
// cases until convergence or step exhaustion.
func Run(t Target, cfg AlgorithmConfig) Result {
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 64
	}
	var res Result
	delta := cfg.Grain.DeltaPct()

	for len(res.Steps) < maxSteps {
		m := t.Measure()
		res.Final = m
		t1 := m.T1(delta)
		t2, t2ok := m.T2(delta)
		lpmr1, lpmr2 := m.LPMR1(), m.LPMR2()
		slack := cfg.SlackFrac * t1

		step := Step{Before: m, T1: t1, T2: t2, T2Valid: t2ok}
		switch {
		case lpmr1 > t1 && t2ok && lpmr2 > t2:
			// Case I: both layers mismatch.
			step.Case = CaseBoth
			res.Steps = append(res.Steps, step)
			okL1 := t.OptimizeL1()
			okL2 := t.OptimizeL2()
			if !okL1 && !okL2 {
				res.Converged = true
				res.MetTarget = false
				return res
			}
		case lpmr1 > t1:
			// Case II: only the L1 layer mismatches.
			step.Case = CaseL1Only
			res.Steps = append(res.Steps, step)
			if !t.OptimizeL1() {
				res.Converged = true
				res.MetTarget = false
				return res
			}
		case !cfg.DisableReduce && slack > 0 && lpmr1+slack < t1:
			// Case III: hardware overprovisioned beyond δ.
			step.Case = CaseReduce
			res.Steps = append(res.Steps, step)
			if !t.ReduceOverprovision() {
				res.Converged = true
				res.MetTarget = true
				res.Final = t.Measure()
				return res
			}
		default:
			// Case IV: T1 >= LPMR1 >= T1-δ (or reduction disabled).
			step.Case = CaseDone
			res.Steps = append(res.Steps, step)
			res.Converged = true
			res.MetTarget = true
			return res
		}
	}
	m := t.Measure()
	res.Final = m
	res.MetTarget = m.LPMR1() <= m.T1(delta)
	return res
}
