package sched

import (
	"context"
	"fmt"

	"lpm/internal/fabric"
	"lpm/internal/parallel"
	"lpm/internal/sim/chip"
	"lpm/internal/stats"
	"lpm/internal/trace"
)

// EvalOptions control an Hsp evaluation run. The shared run uses a fixed
// cycle window with every program live throughout (constant contention),
// the standard multiprogram methodology; per-program IPC is measured over
// the window.
type EvalOptions struct {
	// WindowCycles is the measured window length; 0 means 120000.
	WindowCycles uint64
	// WarmupCycles are discarded before the window; 0 means
	// WindowCycles/2.
	WarmupCycles uint64
	// WarmupFast replaces the cycle-driven warm-up with the same number
	// of functional-tier rounds (one instruction per core per round) —
	// cheap hierarchy warming for policy sweeps. Joins the standalone-IPC
	// memo key.
	WarmupFast bool
	// AloneIPC, when non-nil, supplies precomputed standalone IPCs
	// (indexed like workloads); otherwise they are measured on a
	// reference core with the largest group's L1.
	AloneIPC []float64
}

func (o EvalOptions) normalise() EvalOptions {
	if o.WindowCycles == 0 {
		o.WindowCycles = 120000
	}
	if o.WarmupCycles == 0 {
		o.WarmupCycles = o.WindowCycles / 2
	}
	return o
}

// Evaluation is the outcome of one scheduled run.
type Evaluation struct {
	// Scheduler is the policy name.
	Scheduler string
	// Assignment is the placement evaluated.
	Assignment Assignment
	// IPCShared[w] is workload w's IPC in the shared run.
	IPCShared []float64
	// IPCAlone[w] is the standalone reference IPC.
	IPCAlone []float64
	// Hsp is the harmonic weighted speedup (Fig. 8's metric).
	Hsp float64
	// Cycles is the length of the measured window.
	Cycles uint64
}

// aloneMemo shares standalone-IPC runs across drivers: Fig. 8, lpmsched,
// and the scheduler benchmarks all measure the same reference runs. The
// name makes it persist through ExportMemos for checkpoint/resume.
var aloneMemo = parallel.NewNamedMemo[float64]("sched.alone")

// AloneIPCs measures each workload's standalone IPC on a reference core
// whose L1 is the largest NUCA size, using exactly the same fixed-cycle
// warmup/window protocol as the shared runs so the weighted speedups
// compare like with like. The result is the denominator of the weighted
// speedups; it is scheduling-invariant. The per-workload runs are
// independent simulations, so they fan out over the parallel runner and
// are memoised on the (profile, reference size, window) fingerprint.
func AloneIPCs(ctx context.Context, workloads []string, groupSizes []uint64, opt EvalOptions) ([]float64, error) {
	opt = opt.normalise()
	ref := groupSizes[len(groupSizes)-1]
	return parallel.MapCtx(ctx, workloads, func(ctx context.Context, name string) (float64, error) {
		prof, err := trace.ProfileByName(name)
		if err != nil {
			return 0, err
		}
		spec := AloneSpec{
			Profile:      prof,
			RefL1:        ref,
			WindowCycles: opt.WindowCycles,
			WarmupCycles: opt.WarmupCycles,
			WarmupFast:   opt.WarmupFast,
		}
		key := spec.MemoKey()
		return aloneMemo.DoCtx(ctx, key, func(ctx context.Context) (float64, error) {
			var out float64
			if sharded, err := fabric.Compute(ctx, AloneKind, key, spec, &out); sharded {
				return out, err
			}
			return RunAloneSpec(ctx, spec)
		})
	})
}

// warmChip discards the warm-up period: cycle-accurately by default, or
// as functional-tier rounds under WarmupFast (same count, one
// instruction per core per round).
func warmChip(ch *chip.Chip, opt EvalOptions) {
	if opt.WarmupFast {
		ch.SetTier(chip.TierFunctional)
		ch.RunFunctional(opt.WarmupCycles)
		ch.SetTier(chip.TierDetailed)
		return
	}
	ch.RunCycles(opt.WarmupCycles)
}

// Evaluate runs the workloads under the given assignment on the Fig. 5
// NUCA chip and returns the Hsp evaluation.
func Evaluate(ctx context.Context, s Scheduler, workloads []string, groupSizes []uint64, opt EvalOptions) (*Evaluation, error) {
	opt = opt.normalise()
	asg, err := s.Assign(workloads, groupSizes)
	if err != nil {
		return nil, err
	}
	if err := asg.Validate(len(workloads)); err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}

	gens := make([]trace.Generator, len(asg))
	for core, w := range asg {
		if w == -1 {
			continue
		}
		prof, err := trace.ProfileByName(workloads[w])
		if err != nil {
			return nil, err
		}
		gens[core] = trace.NewSynthetic(prof)
	}
	cfg := nucaConfig(gens, groupSizes)
	ch := chip.New(cfg)
	ch.SetContext(ctx)
	warmChip(ch, opt)
	ch.ResetCounters()
	start := ch.Now()
	ch.RunCycles(opt.WindowCycles)
	if err := ch.Err(); err != nil {
		return nil, fmt.Errorf("evaluate %s: %w", s.Name(), err)
	}
	r := ch.Snapshot()

	ipcShared := make([]float64, len(workloads))
	for core, w := range asg {
		if w == -1 {
			continue
		}
		ipcShared[w] = r.Cores[core].CPU.IPC()
	}

	alone := opt.AloneIPC
	if alone == nil {
		alone, err = AloneIPCs(ctx, workloads, groupSizes, opt)
		if err != nil {
			return nil, err
		}
	}

	return &Evaluation{
		Scheduler:  s.Name(),
		Assignment: asg,
		IPCShared:  ipcShared,
		IPCAlone:   alone,
		Hsp:        stats.Hsp(ipcShared, alone),
		Cycles:     ch.Now() - start,
	}, nil
}

// nucaConfig builds a NUCA chip for arbitrary group sizes (the standard
// Fig. 5 geometry when groupSizes == chip.NUCAGroupSizes[:]).
func nucaConfig(gens []trace.Generator, groupSizes []uint64) chip.Config {
	if len(groupSizes) == len(chip.NUCAGroupSizes) {
		std := true
		for i, s := range groupSizes {
			if s != chip.NUCAGroupSizes[i] {
				std = false
				break
			}
		}
		if std {
			return chip.NUCA16(gens)
		}
	}
	cfg := chip.NUCA16(gens)
	for i := range cfg.Cores {
		g := i / chip.NUCAGroupCores
		if g < len(groupSizes) {
			cfg.Cores[i].L1 = chip.DefaultL1(fmt.Sprintf("L1D-%d", i), groupSizes[g])
		}
	}
	return cfg
}
