package timeseries

// StallTree is the top-down stall attribution for one core over one
// window: every core cycle is charged to exactly one bucket, so the
// bucket sum equals the window length — a conservation law the tests
// enforce on every Table 1 workload.
//
// The decomposition follows the paper's top-down reading of Eq. (7):
// cycles are first split by what the core did (retired / had nothing /
// stalled), and stall cycles are then attributed to the deepest layer
// that was actually holding the oldest memory operation back at that
// cycle — the same "who is the bottleneck *now*" question the LPMRs
// answer in aggregate.
type StallTree struct {
	// Busy cycles retired at least one instruction.
	Busy uint64 `json:"busy"`
	// Empty cycles had an empty ROB (trace drained or front-end starved).
	Empty uint64 `json:"empty"`
	// Compute cycles stalled on a non-memory instruction at ROB head
	// (dependency chains, structural hazards).
	Compute uint64 `json:"compute"`

	// The remaining buckets split memory-stall cycles by mechanism,
	// deepest responsible layer first.

	// L1Hit charges stalls where L1 had no outstanding miss: the head
	// access is in its hit phase, so insufficient hit concurrency
	// (ports, pipeline depth) is the limiter.
	L1Hit uint64 `json:"l1_hit"`
	// L1Miss charges stalls where the miss is outstanding at L1 but no
	// deeper layer is occupied — L1 miss handling itself (MSHR dwell,
	// fill latency) is the limiter.
	L1Miss uint64 `json:"l1_miss"`
	// L2Miss / L3Miss charge stalls to the deepest on-chip cache still
	// working a miss.
	L2Miss uint64 `json:"l2_miss"`
	L3Miss uint64 `json:"l3_miss"`
	// NoC charges stalls where the interconnect holds the request.
	NoC uint64 `json:"noc"`
	// DRAMQueue charges stalls where the request sits in a bank queue
	// (waiting for the bank/bus); DRAMService where DRAM is actively
	// servicing it (row activation, burst transfer).
	DRAMQueue   uint64 `json:"dram_queue"`
	DRAMService uint64 `json:"dram_service"`
	// Other collects memory-stall cycles no probe claimed (e.g. the
	// boundary cycle where a fill is in flight between layers).
	Other uint64 `json:"other"`
}

// Total returns the sum of all buckets; conservation requires it to
// equal the window's cycle count for every core.
func (t StallTree) Total() uint64 {
	return t.Busy + t.Empty + t.Compute +
		t.L1Hit + t.L1Miss + t.L2Miss + t.L3Miss +
		t.NoC + t.DRAMQueue + t.DRAMService + t.Other
}

// MemStall returns the memory-attributed stall cycles.
func (t StallTree) MemStall() uint64 {
	return t.L1Hit + t.L1Miss + t.L2Miss + t.L3Miss +
		t.NoC + t.DRAMQueue + t.DRAMService + t.Other
}

// Add accumulates o into t (window merging and cross-core aggregation).
func (t *StallTree) Add(o StallTree) {
	if t == nil {
		return
	}
	t.Busy += o.Busy
	t.Empty += o.Empty
	t.Compute += o.Compute
	t.L1Hit += o.L1Hit
	t.L1Miss += o.L1Miss
	t.L2Miss += o.L2Miss
	t.L3Miss += o.L3Miss
	t.NoC += o.NoC
	t.DRAMQueue += o.DRAMQueue
	t.DRAMService += o.DRAMService
	t.Other += o.Other
}

// Bucket classification codes, produced once per core per cycle by the
// chip's attribution pass and folded into the tree with Charge.
const (
	ClassBusy = iota
	ClassEmpty
	ClassCompute
	ClassL1Hit
	ClassL1Miss
	ClassL2Miss
	ClassL3Miss
	ClassNoC
	ClassDRAMQueue
	ClassDRAMService
	ClassOther
	numClasses
)

// Charge adds one cycle to the bucket identified by class; unknown
// codes land in Other so conservation cannot be violated by a bad code.
func (t *StallTree) Charge(class int) {
	if t == nil {
		return
	}
	switch class {
	case ClassBusy:
		t.Busy++
	case ClassEmpty:
		t.Empty++
	case ClassCompute:
		t.Compute++
	case ClassL1Hit:
		t.L1Hit++
	case ClassL1Miss:
		t.L1Miss++
	case ClassL2Miss:
		t.L2Miss++
	case ClassL3Miss:
		t.L3Miss++
	case ClassNoC:
		t.NoC++
	case ClassDRAMQueue:
		t.DRAMQueue++
	case ClassDRAMService:
		t.DRAMService++
	default:
		t.Other++
	}
}

// ChargeN adds n cycles to the bucket identified by class — the
// fast-forward bulk form of Charge, used when a run of quiescent cycles
// all classify identically.
func (t *StallTree) ChargeN(class int, n uint64) {
	if t == nil {
		return
	}
	switch class {
	case ClassBusy:
		t.Busy += n
	case ClassEmpty:
		t.Empty += n
	case ClassCompute:
		t.Compute += n
	case ClassL1Hit:
		t.L1Hit += n
	case ClassL1Miss:
		t.L1Miss += n
	case ClassL2Miss:
		t.L2Miss += n
	case ClassL3Miss:
		t.L3Miss += n
	case ClassNoC:
		t.NoC += n
	case ClassDRAMQueue:
		t.DRAMQueue += n
	case ClassDRAMService:
		t.DRAMService += n
	default:
		t.Other += n
	}
}
