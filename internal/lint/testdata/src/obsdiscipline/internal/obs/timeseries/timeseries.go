// Package timeseries is a miniature of the windowed sampler: enough
// surface for the probe-name and nil-guard rules in the subpackage.
package timeseries

// Sampler accumulates cycle windows.
type Sampler struct {
	probes []string
	n      int
}

// Track registers a named probe.
func (s *Sampler) Track(name string, fn func() float64) {
	if s == nil {
		return
	}
	s.probes = append(s.probes, name)
	_ = fn
}

// Tick advances the sampler. It dereferences the receiver without the
// guard, so a nil sampler panics here.
func (s *Sampler) Tick(cycle uint64) { // want "exported obs method Tick dereferences its receiver"
	s.n++
	_ = cycle
}

// Flush closes the open window.
func (s *Sampler) Flush(cycle uint64) {
	if s == nil {
		return
	}
	s.n = 0
	_ = cycle
}
