package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunCleanRepo is the end-to-end gate: lpmlint over the real module
// must exit clean (the make/CI lint step depends on this).
func TestRunCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-C", "../..", "./..."}, &out, &errBuf); err != nil {
		t.Fatalf("lpmlint on the repo: %v\nstdout:\n%sstderr:\n%s", err, out.String(), errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

// TestRunFindings drives the CLI against a fixture tree and checks the
// findings exit path and output format.
func TestRunFindings(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run(context.Background(), []string{"-C", "../../internal/lint/testdata/src/errcheck", "-enable", "errcheck", "./..."}, &out, &errBuf)
	if !errors.Is(err, errFindings) {
		t.Fatalf("err = %v, want errFindings\nstdout:\n%s", err, out.String())
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.Contains(first, ": [errcheck] ") {
		t.Errorf("first line %q does not match file:line:col: [analyzer] message", first)
	}
	if !strings.Contains(errBuf.String(), "finding(s)") {
		t.Errorf("stderr %q lacks the findings summary", errBuf.String())
	}
}

// TestRunPathRestriction checks positional package patterns reach the
// driver: the cmd subtree of the fixture has exactly 3 findings.
func TestRunPathRestriction(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run(context.Background(), []string{"-C", "../../internal/lint/testdata/src/errcheck", "-enable", "errcheck", "cmd/..."}, &out, &errBuf)
	if !errors.Is(err, errFindings) {
		t.Fatalf("err = %v, want errFindings", err)
	}
	if n := strings.Count(out.String(), "[errcheck]"); n != 3 {
		t.Errorf("got %d findings under cmd/..., want 3:\n%s", n, out.String())
	}
}

func TestList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"determinism", "maporder", "floateq", "obsdiscipline", "errcheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks analyzer %q", name)
		}
	}
}

func TestUnknownAnalyzerFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run(context.Background(), []string{"-C", "../..", "-enable", "nosuch", "./..."}, &out, &errBuf)
	if err == nil || errors.Is(err, errFindings) {
		t.Fatalf("err = %v, want a usage error", err)
	}
}

func TestArgPaths(t *testing.T) {
	if got, err := argPaths([]string{"./..."}); err != nil || got != nil {
		t.Errorf("argPaths(./...) = %v, %v; want nil, nil", got, err)
	}
	got, err := argPaths([]string{"internal/sim/...", "cmd"})
	if err != nil || len(got) != 2 || got[0] != "internal/sim" || got[1] != "cmd" {
		t.Errorf("argPaths = %v, %v", got, err)
	}
	if _, err := argPaths([]string{"internal", "-enable"}); err == nil {
		t.Error("trailing flag accepted, want error")
	}
}
