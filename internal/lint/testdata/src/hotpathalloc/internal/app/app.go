// Package app is outside internal/sim: its Tick is not a root even
// though the name matches.
package app

// Job has a hook-shaped method in the wrong subtree.
type Job struct{ out []int }

// Tick allocates and stays silent: only internal/sim methods seed the
// walk.
func (j *Job) Tick(cycle uint64) {
	j.out = make([]int, 4)
}
