package timeseries

import (
	"sync"

	"lpm/internal/obs"
)

// Live is the synchronised hand-off between the (single-goroutine)
// simulation and concurrent readers — the substrate of lpmrun's -serve
// mode. The simulator publishes each closed window and the latest
// metrics snapshot; HTTP handlers read consistent copies under the
// lock. This is the only concurrency-aware type in the observability
// layer: samplers and registries stay unsynchronised and goroutines
// stay out of internal/sim (enforced by lpmlint).
//
// The nil *Live is valid and ignores every call, so wiring it through
// OnWindow costs nothing when serving is off.
type Live struct {
	mu       sync.Mutex
	series   Series
	byIndex  map[int]int // window index -> position in series.Windows
	snapshot *obs.Snapshot
	done     bool
}

// NewLive returns an empty live publisher.
func NewLive() *Live {
	return &Live{byIndex: make(map[int]int)}
}

// Publish records a closed (or re-merged) window. Re-publishing an
// index replaces the previous version — adaptive samplers re-emit a
// window each time a merge extends it.
func (l *Live) Publish(w Window) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if pos, ok := l.byIndex[w.Index]; ok {
		l.series.Windows[pos] = w
		return
	}
	l.byIndex[w.Index] = len(l.series.Windows)
	l.series.Windows = append(l.series.Windows, w)
}

// PublishSnapshot records the latest aggregate metrics snapshot.
func (l *Live) PublishSnapshot(s *obs.Snapshot) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.snapshot = s
}

// SetMeta stamps the series header (width/adaptive) so Timeline copies
// carry the sampler's configuration.
func (l *Live) SetMeta(width uint64, adaptive bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.series.Version = SeriesVersion
	l.series.Width = width
	l.series.Adaptive = adaptive
}

// Finish marks the run complete (reported by Timeline consumers).
func (l *Live) Finish() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.done = true
}

// Timeline returns a consistent copy of the published series and
// whether the run has finished.
func (l *Live) Timeline() (Series, bool) {
	if l == nil {
		return Series{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.series
	s.Windows = append([]Window(nil), l.series.Windows...)
	return s, l.done
}

// Snapshot returns the last published metrics snapshot (nil if none).
func (l *Live) Snapshot() *obs.Snapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshot
}
