package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapCtxCancellationSkipsQueuedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(1) // serial: cancellation inside job 1 must skip 2..9
	var ran atomic.Int32
	results := MapPoolResults(ctx, p, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 1 {
				cancel()
			}
			return i * i, nil
		})
	if got := ran.Load(); got != 2 {
		t.Fatalf("%d jobs ran, want 2", got)
	}
	for i, r := range results {
		switch {
		case i <= 1:
			if !r.Ran || r.Err != nil || r.Val != i*i {
				t.Fatalf("job %d: %+v, want completed", i, r)
			}
		default:
			if r.Ran || !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("job %d: %+v, want skipped with Canceled", i, r)
			}
		}
	}
}

func TestMapResultsIsolatesFailures(t *testing.T) {
	sentinel := errors.New("cell failed")
	results := MapResults(context.Background(), []int{0, 1, 2, 3},
		func(_ context.Context, i int) (string, error) {
			switch i {
			case 1:
				return "", sentinel
			case 2:
				panic(fmt.Errorf("wrapped: %w", sentinel))
			}
			return fmt.Sprintf("ok%d", i), nil
		})
	if results[0].Val != "ok0" || results[3].Val != "ok3" {
		t.Fatalf("healthy cells lost: %+v", results)
	}
	if !errors.Is(results[1].Err, sentinel) {
		t.Fatalf("error cell: %v", results[1].Err)
	}
	// The panic carried an error value: %w wrapping must keep the chain
	// intact so errors.Is/As reach structured errors.
	if !errors.Is(results[2].Err, sentinel) {
		t.Fatalf("panicked cell lost the error chain: %v", results[2].Err)
	}
	if !results[2].Ran {
		t.Fatal("panicked job not marked Ran")
	}
}

func TestMapCtxFirstErrorSemantics(t *testing.T) {
	e := errors.New("boom")
	out, err := MapCtx(context.Background(), []int{1, 2, 3},
		func(_ context.Context, i int) (int, error) {
			if i == 2 {
				return 0, e
			}
			return i, nil
		})
	if !errors.Is(err, e) {
		t.Fatalf("err = %v", err)
	}
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("out = %v", out)
	}
}

func TestDoCtxDropsCancelledEntries(t *testing.T) {
	m := NewMemo[int]()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.DoCtx(ctx, "k", func(ctx context.Context) (int, error) {
		return 0, ctx.Err()
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if m.Len() != 0 {
		t.Fatal("cancelled entry was memoised")
	}
	// A fresh context recomputes and memoises.
	v, err := m.DoCtx(context.Background(), "k", func(context.Context) (int, error) { return 7, nil })
	if v != 7 || err != nil {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if m.Len() != 1 {
		t.Fatal("successful retry not memoised")
	}
	// Deterministic failures stay memoised.
	det := errors.New("deterministic failure")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := m.DoCtx(context.Background(), "fail", func(context.Context) (int, error) {
			calls++
			return 0, det
		})
		if !errors.Is(err, det) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("deterministic failure recomputed %d times", calls)
	}
}

func TestMemoSnapshotSeed(t *testing.T) {
	m := NewMemo[float64]()
	if _, err := m.Do("good", func() (float64, error) { return 1.5, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Do("bad", func() (float64, error) { return 0, errors.New("x") }); err == nil {
		t.Fatal("want error")
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap["good"] != 1.5 {
		t.Fatalf("snapshot = %v, want only the successful entry", snap)
	}
	m2 := NewMemo[float64]()
	m2.Seed(snap)
	v, err := m2.Do("good", func() (float64, error) {
		t.Fatal("seeded key recomputed")
		return 0, nil
	})
	if v != 1.5 || err != nil {
		t.Fatalf("seeded Do = %v, %v", v, err)
	}
}

func TestExportImportMemos(t *testing.T) {
	// Distinct names per test run are unnecessary: the registry is
	// process-global, so use names unlikely to collide with production
	// memos.
	a := NewNamedMemo[int]("test.export.a")
	if _, err := a.Do("k1", func() (int, error) { return 41, nil }); err != nil {
		t.Fatal(err)
	}
	snap, err := ExportMemos()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["test.export.a"]; !ok {
		t.Fatalf("export lacks named memo: %v", snap)
	}
	a.Reset()
	if err := ImportMemos(snap); err != nil {
		t.Fatal(err)
	}
	v, err := a.Do("k1", func() (int, error) {
		t.Fatal("imported key recomputed")
		return 0, nil
	})
	if v != 41 || err != nil {
		t.Fatalf("after import: %v, %v", v, err)
	}
	// Unknown names in the snapshot are ignored.
	snap["test.export.ghost"] = []byte(`{"k":1}`)
	if err := ImportMemos(snap); err != nil {
		t.Fatal(err)
	}
}
