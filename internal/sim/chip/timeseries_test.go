package chip

import (
	"testing"

	"lpm/internal/obs/timeseries"
	"lpm/internal/sim/noc"
	"lpm/internal/trace"
)

// checkConservation asserts the stall-attribution conservation law on
// every window: per core, the bucket sum equals the window length; and
// the windows tile the sampled cycle range without gaps or overlaps.
func checkConservation(t *testing.T, ser timeseries.Series, cores int) {
	t.Helper()
	if len(ser.Windows) == 0 {
		t.Fatal("sampler produced no windows")
	}
	for i, w := range ser.Windows {
		if w.End <= w.Start {
			t.Fatalf("window %d empty: [%d,%d)", i, w.Start, w.End)
		}
		if i > 0 && w.Start != ser.Windows[i-1].End {
			t.Fatalf("window %d not contiguous: starts %d, previous ends %d",
				i, w.Start, ser.Windows[i-1].End)
		}
		if len(w.Stall) != cores {
			t.Fatalf("window %d has %d stall trees, want %d", i, len(w.Stall), cores)
		}
		for ci, st := range w.Stall {
			if got, want := st.Total(), w.Cycles(); got != want {
				t.Errorf("window %d core %d: stall buckets sum to %d, window is %d cycles (%+v)",
					i, ci, got, want, st)
			}
		}
	}
}

func TestTimeseriesStallConservationSingleCore(t *testing.T) {
	ch := New(SingleCore("429.mcf"))
	s := ch.EnableTimeseries(timeseries.Config{Width: 512, CPIexe: 0.5})
	start := ch.Now()
	cycles, done := ch.Run(20000, 2_000_000)
	if !done {
		t.Fatalf("did not retire in %d cycles", cycles)
	}
	ch.FlushTimeseries()
	ser := s.Series()
	checkConservation(t, ser, 1)
	if got := ser.TotalCycles(); got != ch.Now()-start {
		t.Fatalf("series covers %d cycles, run took %d", got, ch.Now()-start)
	}
	// A memory-bound workload must charge some cycles to memory stalls.
	agg := timeseries.StallTree{}
	var busy uint64
	for _, w := range ser.Windows {
		st := w.AggregateStall()
		agg.Add(st)
		busy += st.Busy
	}
	if agg.MemStall() == 0 {
		t.Error("429.mcf charged zero cycles to memory stall buckets")
	}
	if busy == 0 {
		t.Error("no busy cycles attributed")
	}
	// Per-window LPMR1 must be populated with CPIexe configured.
	anyLPMR := false
	for _, v := range ser.LPMR1Series() {
		if v > 0 {
			anyLPMR = true
		}
	}
	if !anyLPMR {
		t.Error("no window has LPMR1 > 0")
	}
}

func TestTimeseriesConservationWithNoCAndL3(t *testing.T) {
	cfg := NUCA16([]trace.Generator{
		trace.NewSynthetic(trace.MustProfile("429.mcf")),
		trace.NewSynthetic(trace.MustProfile("410.bwaves")),
		nil,
		trace.NewSynthetic(trace.MustProfile("444.namd")),
	})
	n := noc.Default(16)
	cfg.NoC = &n
	l3 := DefaultL2("L3", 8*MB)
	l3.Name = "L3"
	cfg.L3 = &l3
	ch := New(cfg)
	s := ch.EnableTimeseries(timeseries.Config{Width: 1000})
	start := ch.Now()
	ch.Run(4000, 1_000_000)
	ch.FlushTimeseries()
	ser := s.Series()
	checkConservation(t, ser, 16)
	if got := ser.TotalCycles(); got != ch.Now()-start {
		t.Fatalf("series covers %d cycles, run took %d", got, ch.Now()-start)
	}
	// The NoC sample must be present on a chip with a router.
	if ser.Windows[0].NoC == nil {
		t.Fatal("NoC sample missing on a NoC chip")
	}
	// Cache levels: 16 L1s + L2 + L3.
	if got := len(ser.Windows[0].Cache); got != 18 {
		t.Fatalf("window carries %d cache samples, want 18", got)
	}
}

func TestTimeseriesResetCountersRebasesWindows(t *testing.T) {
	ch := New(SingleCore("410.bwaves"))
	s := ch.EnableTimeseries(timeseries.Config{Width: 256})
	ch.RunUntilRetired(5000, 1_000_000)
	ch.ResetCounters()
	afterReset := ch.Now()
	ch.Run(10000, 1_000_000)
	ch.FlushTimeseries()
	ser := s.Series()
	checkConservation(t, ser, 1)
	// Windows closed after the reset must not see negative (wrapped)
	// deltas: instruction counts stay sane.
	for _, w := range ser.Windows {
		if w.Start < afterReset {
			continue
		}
		if w.CPU[0].Instructions > w.Cycles()*64 {
			t.Fatalf("window [%d,%d) reports absurd instruction delta %d (baseline not rebased?)",
				w.Start, w.End, w.CPU[0].Instructions)
		}
	}
}

func TestTimeseriesAdaptiveConservation(t *testing.T) {
	ch := New(SingleCore("403.gcc"))
	s := ch.EnableTimeseries(timeseries.Config{Width: 256, Adaptive: true, CPIexe: 0.5})
	start := ch.Now()
	ch.Run(15000, 2_000_000)
	ch.FlushTimeseries()
	ser := s.Series()
	checkConservation(t, ser, 1)
	if got := ser.TotalCycles(); got != ch.Now()-start {
		t.Fatalf("adaptive series covers %d cycles, run took %d", got, ch.Now()-start)
	}
	for i, w := range ser.Windows {
		if w.Phase < 0 {
			t.Fatalf("adaptive window %d has no phase id", i)
		}
	}
}

func TestTimeseriesProbesPublished(t *testing.T) {
	ch := New(SingleCore("410.bwaves"))
	s := ch.EnableTimeseries(timeseries.Config{Width: 128})
	ch.Run(2000, 500_000)
	ch.FlushTimeseries()
	w := s.Series().Windows[0]
	want := map[string]bool{
		"cpu.0.rob_occupancy": false,
		"cpu.0.iw_occupancy":  false,
		"l1.0.mshr_occupancy": false,
		"l2.mshr_occupancy":   false,
		"dram.queue_depth":    false,
	}
	for _, p := range w.Probes {
		if _, ok := want[p.Name]; ok {
			want[p.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("probe %q not sampled (got %+v)", name, w.Probes)
		}
	}
}

func TestEnableTimeseriesIdempotentAndNilOff(t *testing.T) {
	ch := New(SingleCore("410.bwaves"))
	if ch.Timeseries() != nil {
		t.Fatal("sampler present before EnableTimeseries")
	}
	ch.FlushTimeseries() // must be a no-op, not a panic
	s1 := ch.EnableTimeseries(timeseries.Config{Width: 64})
	s2 := ch.EnableTimeseries(timeseries.Config{Width: 1024})
	if s1 != s2 {
		t.Fatal("EnableTimeseries not idempotent")
	}
	if ch.Timeseries() != s1 {
		t.Fatal("Timeseries accessor disagrees")
	}
}
