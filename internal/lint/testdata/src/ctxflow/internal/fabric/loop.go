// Package fabric is the ctxflow fixture's blocking-loop case: every
// loop shape the fabric rule distinguishes appears once.
package fabric

import (
	"context"
	"net"
)

// pump selects on ctx.Done alongside its channel: legal.
func pump(ctx context.Context, ch chan int) {
	for {
		select {
		case v := <-ch:
			_ = v
		case <-ctx.Done():
			return
		}
	}
}

// run uses a closed-signal chan struct{} instead of a context: also a
// cancellation path.
func run(ch chan int, closed chan struct{}) {
	for {
		select {
		case v := <-ch:
			_ = v
		case <-closed:
			return
		}
	}
}

// drain blocks on a naked receive with no way out.
func drain(ch chan int) {
	for {
		v := <-ch // want "blocking channel receive in a fabric loop"
		_ = v
	}
}

// feed blocks on a naked send with no way out.
func feed(ch chan int) {
	for i := 0; ; i++ {
		ch <- i // want "blocking channel send in a fabric loop"
	}
}

// shuffle's select blocks but no case is a cancellation.
func shuffle(a chan int) {
	for {
		select { // want "blocking select in a fabric loop has no cancellation case"
		case v := <-a:
			_ = v
		}
	}
}

// consume ranges over the channel: ends when the producer closes it.
func consume(ch chan int) {
	for v := range ch {
		_ = v
	}
}

// poll's select has a default: non-blocking, legal without a
// cancellation case.
func poll(ch chan int) {
	for i := 0; i < 10; i++ {
		select {
		case v := <-ch:
			_ = v
		default:
		}
	}
}

// ReadFrame blocks on the connection until the peer sends (or the conn
// is closed out from under it).
func ReadFrame(c net.Conn) (byte, error) {
	var buf [1]byte
	_, err := c.Read(buf[:])
	return buf[0], err
}

// readLoop has no watcher to unblock the read.
func readLoop(c net.Conn) error {
	for {
		b, err := ReadFrame(c) // want "blocking ReadFrame in a fabric loop"
		if err != nil {
			return err
		}
		_ = b
	}
}

// watchedLoop pairs the same read with a suppression documenting its
// out-of-band unblock (the in-tree pattern).
func watchedLoop(ctx context.Context, c net.Conn) error {
	stop := context.AfterFunc(ctx, func() { _ = c.Close() })
	defer stop()
	for {
		//lint:ignore ctxflow the AfterFunc above closes the conn on cancellation, failing this read
		b, err := ReadFrame(c)
		if err != nil {
			return err
		}
		_ = b
	}
}
