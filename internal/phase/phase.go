// Package phase implements lightweight online phase detection for the
// LPM reproduction. The paper's observation 3 (§I) — "programs have
// periodic behaviors, and their data access patterns are predictable;
// with a set of lightweight counters, we are able to deploy proper
// optimization techniques to timely adapt" — is the premise of the
// online LPM algorithm. This package provides the missing machinery:
//
//   - Signature: an interval's behaviour vector, built from the same
//     counters the C-AMAT analyzer already maintains;
//   - Detector: an online classifier that matches each new interval
//     against known phases (by normalised Manhattan distance) and opens
//     a new phase when nothing matches — in the spirit of SimPoint-style
//     phase classification, but cheap enough to run every interval;
//   - Tracker: detects phase *changes*, the trigger for re-running the
//     LPM algorithm, and remembers the best configuration per phase.
package phase

import (
	"fmt"
	"math"
)

// Signature is one measurement interval's behaviour vector. Any
// non-negative features work as long as their meaning is stable across
// intervals; FromLPM builds the standard one.
type Signature []float64

// FromLPM builds the standard signature from LPM-relevant interval
// measurements: memory intensity, L1 miss rate, pure-miss rate, hit and
// pure-miss concurrency, and IPC.
func FromLPM(fmem, mr1, pmr1, ch, cm, ipc float64) Signature {
	return Signature{fmem, mr1, pmr1, ch, cm, ipc}
}

// Distance returns the normalised Manhattan distance between two
// signatures in [0, 1]-ish range: per-dimension |a-b|/(|a|+|b|),
// averaged. Dissimilar lengths are maximally distant.
func (s Signature) Distance(o Signature) float64 {
	if len(s) != len(o) || len(s) == 0 {
		return 1
	}
	total := 0.0
	for i := range s {
		den := math.Abs(s[i]) + math.Abs(o[i])
		if den == 0 {
			continue // both zero: identical in this dimension
		}
		total += math.Abs(s[i]-o[i]) / den
	}
	return total / float64(len(s))
}

// clone copies a signature.
func (s Signature) clone() Signature { return append(Signature(nil), s...) }

// phaseState is one known phase's running centroid.
type phaseState struct {
	centroid Signature
	count    uint64
}

// observe folds a new member signature into the centroid.
func (p *phaseState) observe(s Signature) {
	p.count++
	w := 1 / float64(p.count)
	for i := range p.centroid {
		p.centroid[i] += (s[i] - p.centroid[i]) * w
	}
}

// Detector classifies interval signatures into phases online.
type Detector struct {
	// Threshold is the maximum distance at which an interval still
	// belongs to an existing phase; larger values merge behaviour more
	// aggressively. Zero means 0.10.
	Threshold float64
	// MaxPhases bounds the table (oldest-by-membership phase is merged
	// into its nearest neighbour beyond this); zero means 32.
	MaxPhases int

	phases []phaseState
}

// NewDetector returns a detector with the given threshold (0 for the
// default 0.10).
func NewDetector(threshold float64) *Detector {
	return &Detector{Threshold: threshold}
}

func (d *Detector) threshold() float64 {
	if d.Threshold <= 0 {
		return 0.10
	}
	return d.Threshold
}

func (d *Detector) maxPhases() int {
	if d.MaxPhases <= 0 {
		return 32
	}
	return d.MaxPhases
}

// Phases returns the number of phases known so far.
func (d *Detector) Phases() int { return len(d.phases) }

// Classify assigns the signature to a phase, creating a new phase when
// nothing is within the threshold, and returns the phase id.
func (d *Detector) Classify(s Signature) int {
	best, bestD := -1, math.Inf(1)
	for i := range d.phases {
		if dist := d.phases[i].centroid.Distance(s); dist < bestD {
			best, bestD = i, dist
		}
	}
	if best >= 0 && bestD <= d.threshold() {
		d.phases[best].observe(s)
		return best
	}
	if len(d.phases) >= d.maxPhases() {
		// Table full: absorb into the nearest existing phase.
		d.phases[best].observe(s)
		return best
	}
	d.phases = append(d.phases, phaseState{centroid: s.clone(), count: 1})
	return len(d.phases) - 1
}

// Centroid returns a copy of phase id's centroid (nil if unknown).
func (d *Detector) Centroid(id int) Signature {
	if id < 0 || id >= len(d.phases) {
		return nil
	}
	return d.phases[id].centroid.clone()
}

// Tracker combines a Detector with change detection and a per-phase
// configuration memory: the full online-adaptation loop around the LPM
// algorithm. Config values are opaque to the tracker (e.g. an
// explore.Point).
type Tracker struct {
	det     *Detector
	last    int
	started bool
	configs map[int]interface{}
	// Changes counts phase transitions observed.
	Changes uint64
	// Intervals counts signatures observed.
	Intervals uint64
}

// NewTracker wraps a detector (nil for defaults).
func NewTracker(det *Detector) *Tracker {
	if det == nil {
		det = NewDetector(0)
	}
	return &Tracker{det: det, configs: make(map[int]interface{})}
}

// Observe classifies the interval and reports (phase id, whether this is
// a phase CHANGE relative to the previous interval). The first interval
// is not a change.
func (t *Tracker) Observe(s Signature) (id int, changed bool) {
	t.Intervals++
	id = t.det.Classify(s)
	if t.started && id != t.last {
		t.Changes++
		changed = true
	}
	t.started = true
	t.last = id
	return id, changed
}

// Remember stores the best-known configuration for a phase; Recall
// retrieves it (nil if none). Together they realise the "adapt
// immediately on re-entering a known phase" optimisation: the LPM
// algorithm only has to run for genuinely new phases.
func (t *Tracker) Remember(id int, cfg interface{}) { t.configs[id] = cfg }

// Recall returns the stored configuration for a phase.
func (t *Tracker) Recall(id int) interface{} { return t.configs[id] }

// Phases returns the number of distinct phases seen.
func (t *Tracker) Phases() int { return t.det.Phases() }

// String summarises the tracker.
func (t *Tracker) String() string {
	return fmt.Sprintf("phases=%d intervals=%d changes=%d", t.Phases(), t.Intervals, t.Changes)
}
