package resilience

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzCheckpointDecode hammers the envelope decoder with arbitrary
// bytes: it must never panic, never allocate from an attacker-declared
// length, and must accept exactly the frames EncodeEnvelope produces.
// The seed corpus spans the realistic damage classes (valid frame,
// truncations, header-only, bad magic, oversize claim).
func FuzzCheckpointDecode(f *testing.F) {
	valid := EncodeEnvelope([]byte(`{"frontier":[0,1],"memo":{"a":1.25}}`))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:checkpointHeaderSize])
	f.Add([]byte{})
	f.Add([]byte("LPMCKPT1"))
	f.Add(append([]byte("XXXXXXXX"), valid[8:]...))
	huge := append([]byte(nil), valid...)
	for i := 8; i < 16; i++ {
		huge[i] = 0xff
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		// Accepted frames must re-encode to the identical bytes: the
		// envelope is canonical, so decode∘encode is the identity.
		if !bytes.Equal(EncodeEnvelope(payload), data) {
			t.Fatalf("accepted frame is not canonical: %x", data)
		}
	})
}

// FuzzCheckpointJSON round-trips arbitrary JSON payloads through
// Save/Load semantics at the byte level (marshal → envelope → decode →
// unmarshal) so the full path shares the fuzzer's coverage.
func FuzzCheckpointJSON(f *testing.F) {
	f.Add(`{"k":1.5}`)
	f.Add(`[1,2,3]`)
	f.Add(`"x"`)
	f.Fuzz(func(t *testing.T, s string) {
		var v any
		if json.Unmarshal([]byte(s), &v) != nil {
			return
		}
		payload, err := json.Marshal(v)
		if err != nil {
			return
		}
		got, err := DecodeEnvelope(EncodeEnvelope(payload))
		if err != nil {
			t.Fatalf("self-encoded frame rejected: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload mutated in transit")
		}
	})
}
