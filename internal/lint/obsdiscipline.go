package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// analyzerObsDiscipline enforces the observability layer's contracts:
//
//  1. Metric names passed to the internal/obs Registry
//     (Counter/Gauge/Histogram) must be compile-time string constants
//     or end in a constant suffix (`prefix + ".hits"`), tracer event
//     names (Tracer.Emit) must be constants, and time-series probe
//     names (timeseries Sampler.Track) follow the same
//     constant-suffix rule, so snapshots and timelines stay stable,
//     greppable and name-sorted across runs.
//  2. Exported pointer-receiver methods in internal/obs (the
//     timeseries subpackage included) that touch receiver state must
//     open with the nil-receiver guard — the zero-cost off path every
//     simulator component relies on.
//  3. The simulation substrate (internal/sim, internal/core) must not
//     spawn goroutines: a Registry is unsynchronised and owned by one
//     simulation goroutine; concurrency belongs in internal/parallel.
var analyzerObsDiscipline = &Analyzer{
	Name: "obsdiscipline",
	Doc:  "metric/trace names must be constant(-suffixed); obs handles keep the nil-receiver fast path; no goroutines inside the simulator",
	Run:  runObsDiscipline,
}

func runObsDiscipline(p *Pass) {
	checkMetricNames(p)
	if matchAny(p.Pkg.Rel, []string{"internal/obs"}) {
		checkNilGuards(p, func(string) bool { return true })
	}
	// The fabric and control-plane telemetry probe sets promise the
	// same nil-receiver off switch the obs registry does; only those
	// types carry the contract there, not the coordinators themselves.
	if matchAny(p.Pkg.Rel, []string{"internal/fabric", "internal/ctrl"}) {
		checkNilGuards(p, func(recv string) bool {
			return strings.HasSuffix(recv, "Telemetry") || recv == "ReprobeSet"
		})
	}
	if matchAny(p.Pkg.Rel, []string{"internal/sim", "internal/core"}) {
		checkNoGoroutines(p)
	}
}

// checkMetricNames verifies every registry/tracer name argument.
func checkMetricNames(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkgPath := fn.Pkg().Path()
			if !strings.HasSuffix(pkgPath, "internal/obs") && !strings.HasSuffix(pkgPath, "internal/obs/timeseries") {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			recv := recvTypeName(sig)
			switch {
			case recv == "Sampler" && fn.Name() == "Track":
				if len(call.Args) > 0 && !constSuffixedName(info, call.Args[0]) {
					p.Reportf(call.Args[0].Pos(),
						"probe name passed to Sampler.Track must be a string constant or end in a constant suffix (prefix + \".name\"); dynamic names destabilise timeline probe ordering")
				}
			case recv == "Registry" && (fn.Name() == "Counter" || fn.Name() == "Gauge" || fn.Name() == "Histogram"):
				if len(call.Args) > 0 && !constSuffixedName(info, call.Args[0]) {
					p.Reportf(call.Args[0].Pos(),
						"metric name passed to Registry.%s must be a string constant or end in a constant suffix (prefix + \".name\"); dynamic names destabilise snapshot ordering",
						fn.Name())
				}
			case recv == "Tracer" && fn.Name() == "Emit":
				if len(call.Args) > 1 && !isStringConst(info, call.Args[1]) {
					p.Reportf(call.Args[1].Pos(),
						"event name passed to Tracer.Emit must be a string constant; dynamic event kinds break trace consumers")
				}
			}
			return true
		})
	}
}

// recvTypeName returns the receiver's named-type name, dereferencing a
// pointer receiver.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// isStringConst reports whether e is a compile-time string constant.
func isStringConst(info *types.Info, e ast.Expr) bool {
	tv := info.Types[e]
	return tv.Value != nil && tv.Value.Kind() == constant.String
}

// constSuffixedName accepts a full string constant, or a concatenation
// whose final operand is a string constant — the `prefix + ".hits"`
// idiom where only the instance prefix (cpu.0, l1.3) is dynamic.
func constSuffixedName(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if isStringConst(info, e) {
		return true
	}
	be, ok := e.(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return false
	}
	return isStringConst(info, be.Y)
}

// checkNilGuards enforces rule 2: every exported pointer-receiver
// method on a type selected by wantType must open with the nil-receiver
// guard when it touches receiver state.
func checkNilGuards(p *Pass, wantType func(recvType string) bool) {
	for _, f := range p.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			if !wantType(recvDeclTypeName(fd)) {
				continue
			}
			recvName, isPtr := recvInfo(fd)
			if !isPtr || recvName == "" || recvName == "_" {
				continue
			}
			if !touchesReceiverState(p.Pkg.Info, fd, recvName) {
				continue // pure delegation; the callee guards
			}
			if !startsWithNilGuard(fd.Body, recvName) {
				p.Reportf(fd.Name.Pos(),
					"exported obs method %s dereferences its receiver without the nil-receiver guard; the first statement must be `if %s == nil`/`!= nil` so disabled observability stays zero-cost",
					fd.Name.Name, recvName)
			}
		}
	}
}

// recvDeclTypeName returns the declared receiver type's name from the
// AST ("Telemetry" for `func (t *Telemetry) ...`), or "" when it is not
// a plain (possibly pointered) identifier.
func recvDeclTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// recvInfo extracts the receiver identifier name and pointer-ness.
func recvInfo(fd *ast.FuncDecl) (name string, ptr bool) {
	if len(fd.Recv.List) == 0 {
		return "", false
	}
	field := fd.Recv.List[0]
	if _, ok := field.Type.(*ast.StarExpr); !ok {
		return "", false
	}
	if len(field.Names) == 0 {
		return "", true
	}
	return field.Names[0].Name, true
}

// touchesReceiverState reports whether the method selects a field on
// the receiver (a dereference that would panic on nil).
func touchesReceiverState(info *types.Info, fd *ast.FuncDecl, recv string) bool {
	touches := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || id.Name != recv {
			return true
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			touches = true
		}
		return true
	})
	return touches
}

// startsWithNilGuard reports whether the body's first statement is an
// if with a `recv == nil` or `recv != nil` condition.
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok {
		return false
	}
	be, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && isRecv(be.Y))
}

// checkNoGoroutines enforces rule 3.
func checkNoGoroutines(p *Pass) {
	for _, f := range p.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(),
					"goroutine spawned inside the simulation substrate; the obs registry and sim state are single-goroutine by contract — hoist concurrency to internal/parallel")
			}
			return true
		})
	}
}
