// Quickstart: simulate one workload on a single-core chip, read the
// C-AMAT parameters the analyzer measured at each layer, and evaluate the
// LPM model — layered matching ratios, thresholds, and the data stall
// prediction — in about thirty lines of code.
package main

import (
	"fmt"
	"log"

	"lpm"
)

func main() {
	// 1. Pick a built-in SPEC CPU2006-like workload.
	const workload = "403.gcc"
	gen, err := lpm.NewWorkload(workload)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Calibrate CPI_exe (Eq. 5): the core's cycles per instruction
	// under a perfect cache.
	cfg := lpm.SingleCore(workload)
	cpiExe := lpm.MeasureCPIexe(cfg.Cores[0].CPU, gen, 3, 20000)

	// 3. Build the chip and run: warm up, reset counters, measure.
	chip := lpm.NewChip(cfg)
	chip.RunUntilRetired(60000, 50_000_000)
	chip.ResetCounters()
	chip.Run(80000, 50_000_000)

	// 4. Read the measurement: all C-AMAT parameters at L1/L2, the memory
	// APC, and the core's stall/overlap counters.
	m := chip.Measure(0, cpiExe)

	fmt.Printf("workload: %s\n", workload)
	fmt.Printf("C-AMAT1 = %.3f   C-AMAT2 = %.3f   (AMAT would ignore concurrency)\n",
		m.CAMAT1, m.CAMAT2)
	fmt.Printf("%s   eta = %.4f\n", lpm.FormatLPMR(m), m.Eta())
	fmt.Printf("thresholds: T1(1%%) = %.3f, T1(10%%) = %.3f\n", m.T1(1), m.T1(10))
	fmt.Printf("data stall/instr: model = %.4f, measured = %.4f (%.1f%% of CPIexe)\n",
		m.StallEq12(), m.MeasuredStall, 100*m.MeasuredStall/cpiExe)

	if m.LPMR1() <= m.T1(10) {
		fmt.Println("=> layer 1 already matches at the coarse (10%) target")
	} else {
		fmt.Println("=> layer 1 mismatched: the LPM algorithm would optimize L1",
			"(and L2 too if LPMR2 > T2)")
	}
}
