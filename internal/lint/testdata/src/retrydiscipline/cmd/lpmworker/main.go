// The fixture worker binary: its reconnect loop is the canonical
// consumer of the shared policy.
package main

import (
	"context"
	"time"

	"lpm/internal/fabric"
	"lpm/internal/resilience/fleet"
)

func main() {
	ctx := context.Background()
	policy := fleet.Defaults(7)
	for attempt := 0; ctx.Err() == nil; attempt++ {
		_ = fabric.RunWorker(ctx, "127.0.0.1:9000")
		if err := policy.Sleep(ctx, attempt); err != nil {
			return
		}
	}
}

// legacyReconnect is the pre-policy loop shape the probe exists to
// catch in the worker binary.
func legacyReconnect(ctx context.Context) {
	for ctx.Err() == nil {
		_ = fabric.RunWorker(ctx, "127.0.0.1:9000")
		time.Sleep(time.Second) // want "hand-rolled retry pacing"
	}
}
