// Package noc models the on-chip interconnect between private caches and
// the shared last-level cache of the CMP: a queued crossbar with
// per-source input queues, round-robin arbitration, finite per-cycle
// bandwidth, and symmetric request/response latency. The paper's NUCA
// context (Fig. 5) implies such a fabric; without it the reproduction's
// L1→L2 hop is a fixed single cycle, which understates both the latency
// and the contention component of the L2 C-AMAT seen by the analyzers.
//
// The router sits between upper caches and a lower layer: it implements
// cache.Lower toward the L1s and forwards to the L2 (or an L3) after the
// configured latency, arbitrated at the configured bandwidth. Responses
// traverse the reverse path with the same latency and their own
// bandwidth budget.
package noc

import (
	"fmt"

	"lpm/internal/obs"
	"lpm/internal/sim/cache"
)

// Config describes the interconnect.
type Config struct {
	// Name labels the router in reports.
	Name string
	// Latency is the one-way traversal time in cycles (>= 1).
	Latency int
	// Bandwidth is the number of messages forwarded per cycle in each
	// direction (>= 1).
	Bandwidth int
	// QueueDepth bounds each source's request queue (>= 1).
	QueueDepth int
	// Sources is the number of upstream requestors (for queue
	// allocation); requests from sources beyond this share the last
	// queue.
	Sources int
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("noc: config has no name")
	case c.Latency < 1:
		return fmt.Errorf("noc %s: latency %d", c.Name, c.Latency)
	case c.Bandwidth < 1:
		return fmt.Errorf("noc %s: bandwidth %d", c.Name, c.Bandwidth)
	case c.QueueDepth < 1:
		return fmt.Errorf("noc %s: queue depth %d", c.Name, c.QueueDepth)
	case c.Sources < 1:
		return fmt.Errorf("noc %s: sources %d", c.Name, c.Sources)
	}
	return nil
}

// Default returns a 16-source mesh-ish fabric: 6-cycle traversal,
// 4 messages per cycle per direction.
func Default(sources int) Config {
	return Config{
		Name:       "noc",
		Latency:    6,
		Bandwidth:  4,
		QueueDepth: 16,
		Sources:    sources,
	}
}

// message is a request in flight through the router.
type message struct {
	src     int
	block   uint64
	write   bool
	done    func(cycle uint64)
	readyAt uint64 // cycle the message finishes traversing
}

// response is a completion in flight back to a requestor.
type response struct {
	done    func(cycle uint64)
	readyAt uint64
}

// Stats counts router events.
type Stats struct {
	// Requests and Responses count forwarded messages.
	Requests, Responses uint64
	// Rejected counts requests refused for a full source queue.
	Rejected uint64
	// QueueCycleSum accumulates queue residency for AvgQueueing.
	QueueCycleSum uint64
}

// Sub returns the counter-wise difference s - o, for windowed deltas of
// cumulative counters (o must be an earlier snapshot of the same router).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Requests:      s.Requests - o.Requests,
		Responses:     s.Responses - o.Responses,
		Rejected:      s.Rejected - o.Rejected,
		QueueCycleSum: s.QueueCycleSum - o.QueueCycleSum,
	}
}

// AvgQueueing returns the mean cycles a request waited for arbitration.
func (s Stats) AvgQueueing() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.QueueCycleSum) / float64(s.Requests)
}

// Router is the crossbar. Create with New, connect with SetLower, and
// Tick once per cycle between the upper caches and the lower layer.
type Router struct {
	cfg   Config
	lower cache.Lower

	queues   [][]message // per-source, waiting for arbitration
	arrival  [][]uint64  // enqueue cycle per queued message
	inflight []message   // traversing toward the lower layer
	resp     []response  // traversing back up
	rr       int         // round-robin arbitration cursor
	now      uint64

	st Stats
	ob *nocObs
}

// nocObs holds the router's registry handles (nil when unobserved).
type nocObs struct {
	requests, responses, rejected *obs.Counter
	avgQueueing                   *obs.Gauge
}

// AttachObs registers this router's metrics under prefix (e.g. "noc")
// in r. A nil registry leaves the router unobserved.
func (r *Router) AttachObs(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	r.ob = &nocObs{
		requests:    reg.Counter(prefix + ".requests"),
		responses:   reg.Counter(prefix + ".responses"),
		rejected:    reg.Counter(prefix + ".rejected"),
		avgQueueing: reg.Gauge(prefix + ".avg_queueing"),
	}
}

// PublishObs copies the accumulated Stats into the attached registry;
// call before snapshotting. No-op when unobserved.
func (r *Router) PublishObs() {
	if r.ob == nil {
		return
	}
	r.ob.requests.Set(r.st.Requests)
	r.ob.responses.Set(r.st.Responses)
	r.ob.rejected.Set(r.st.Rejected)
	r.ob.avgQueueing.Set(r.st.AvgQueueing())
}

// New builds a router; it panics on invalid configuration.
func New(cfg Config) *Router {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Router{
		cfg:     cfg,
		queues:  make([][]message, cfg.Sources),
		arrival: make([][]uint64, cfg.Sources),
	}
}

// SetLower connects the downstream layer.
func (r *Router) SetLower(l cache.Lower) { r.lower = l }

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// Stats returns the event counters.
func (r *Router) Stats() Stats { return r.st }

// ResetCounters zeroes the counters.
func (r *Router) ResetCounters() { r.st = Stats{} }

// Busy reports whether messages are queued or in flight.
func (r *Router) Busy() bool {
	if len(r.inflight) > 0 || len(r.resp) > 0 {
		return true
	}
	for _, q := range r.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// Pending returns the number of messages currently queued or traversing
// in either direction — the interconnect-occupancy probe of the
// time-series sampler and the NoC signal of the stall attribution.
func (r *Router) Pending() int {
	n := len(r.inflight) + len(r.resp)
	for _, q := range r.queues {
		n += len(q)
	}
	return n
}

// queueFor clamps a source id onto the allocated queues.
func (r *Router) queueFor(src int) int {
	if src < 0 {
		return 0
	}
	if src >= r.cfg.Sources {
		return r.cfg.Sources - 1
	}
	return src
}

// Request implements cache.Lower toward the upper caches.
func (r *Router) Request(cycle uint64, src int, block uint64, write bool, done func(cycle uint64)) bool {
	q := r.queueFor(src)
	if len(r.queues[q]) >= r.cfg.QueueDepth {
		r.st.Rejected++
		return false
	}
	r.queues[q] = append(r.queues[q], message{src: src, block: block, write: write, done: done})
	r.arrival[q] = append(r.arrival[q], cycle)
	return true
}

// Tick advances the router one cycle: deliver responses and forwarded
// requests whose traversal finished, then arbitrate new departures.
func (r *Router) Tick(cycle uint64) {
	r.now = cycle

	// Deliver responses whose reverse traversal completed.
	if len(r.resp) > 0 {
		keep := r.resp[:0]
		for _, p := range r.resp {
			if p.readyAt <= cycle {
				p.done(cycle)
			} else {
				keep = append(keep, p)
			}
		}
		r.resp = keep
	}

	// Hand over requests whose forward traversal completed; on lower-
	// layer backpressure they retry next cycle.
	if len(r.inflight) > 0 {
		keep := r.inflight[:0]
		for _, m := range r.inflight {
			if m.readyAt > cycle {
				keep = append(keep, m)
				continue
			}
			mm := m
			var done func(uint64)
			if m.done != nil {
				//lint:ignore hotpathalloc response callback built only for forwarded requests carrying a completion, tied to miss traffic rather than cycles
				done = func(cy uint64) {
					r.resp = append(r.resp, response{done: mm.done, readyAt: cy + uint64(r.cfg.Latency)})
					r.st.Responses++
				}
			}
			if !r.lower.Request(cycle, m.src, m.block, m.write, done) {
				keep = append(keep, m)
			}
		}
		r.inflight = keep
	}

	// Arbitrate up to Bandwidth departures, round-robin over sources.
	launched := 0
	for scanned := 0; scanned < r.cfg.Sources && launched < r.cfg.Bandwidth; {
		q := r.rr % r.cfg.Sources
		if len(r.queues[q]) == 0 {
			r.rr++
			scanned++
			continue
		}
		m := r.queues[q][0]
		r.queues[q] = r.queues[q][1:]
		waited := cycle - r.arrival[q][0]
		r.arrival[q] = r.arrival[q][1:]
		m.readyAt = cycle + uint64(r.cfg.Latency)
		r.inflight = append(r.inflight, m)
		r.st.Requests++
		r.st.QueueCycleSum += waited
		launched++
		r.rr++
		scanned = 0 // a grant resets the empty-scan count
	}
}
