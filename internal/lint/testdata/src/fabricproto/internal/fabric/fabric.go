// Package fabric is the fabricproto fixture's registry: the same
// RegisterKind surface the real fabric exposes, including the memo the
// purity rule sanctions.
package fabric

import "context"

// Executor runs one granule from its serialized spec.
type Executor func(ctx context.Context, spec []byte) ([]byte, error)

var kinds = map[string]Executor{}

// RegisterKind installs a granule executor. The registry map is this
// package's own state: reads of it are exempt from the purity rule.
func RegisterKind(kind string, fn Executor) { kinds[kind] = fn }

// memo is the sanctioned result cache.
var memo = map[string][]byte{}

// CacheGet reads the memo: handlers may call this.
func CacheGet(key string) ([]byte, bool) {
	v, ok := memo[key]
	return v, ok
}
