package resilience

// Signal-aware HTTP serving: the control plane (cmd/lpmserve) and any
// other long-lived exposition endpoint share one shutdown discipline —
// serve until the signal context cancels, then drain in-flight requests
// for a bounded grace window before hard-closing.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// ServeHTTP serves srv on ln until ctx cancels (typically the
// WithSignals context), then shuts down gracefully: in-flight requests
// and open SSE streams get up to grace to finish before the listener's
// connections are hard-closed. It returns nil on a clean signal-driven
// exit and the serve error otherwise.
func ServeHTTP(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	if srv.BaseContext == nil {
		// Handlers observe the signal through the request context, so
		// long-lived streams (SSE) end themselves during the grace
		// window instead of being cut mid-event.
		srv.BaseContext = func(net.Listener) context.Context { return ctx }
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// The shutdown deadline must outlive the cancelled serve context —
	// detach from it, keeping only its values.
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		_ = srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
