package fabric

// Wire protocol. Every frame on a fabric connection is a PR 5
// checkpoint envelope — magic "LPMCKPT1", uint64 LE payload length,
// uint64 LE CRC64-ECMA, payload — whose payload is one JSON Msg. The
// envelope gives the stream self-describing length prefixes and
// end-to-end checksums, so a torn write, a truncated frame, or a
// flipped bit surfaces as a decode error at the frame boundary (the
// peer is then treated as dead) instead of a misparsed message.

import (
	"encoding/json"
	"fmt"
	"io"

	"lpm/internal/faultinject"
	"lpm/internal/resilience"
)

// ProtoVersion is the newest protocol this build speaks. The handshake
// negotiates down: a coordinator accepts any hello from 1 up to its own
// version and answers with the version the session will use (the
// worker's), so old workers keep working across a fleet upgrade. A
// hello from the *future* is refused — the coordinator cannot guess
// what a newer worker means.
//
// Version 2 adds the ping/pong heartbeat pair (PingMS in the welcome
// tells the worker its cadence) and the Transient/Busy/RTT fields. A
// proto-1 session carries none of them: such workers send no pings and
// are exempt from heartbeat health classification.
const ProtoVersion = 2

// MinProtoVersion is the oldest protocol the coordinator still admits.
const MinProtoVersion = 1

// MaxFrame caps a frame's payload, inherited from the checkpoint
// envelope: anything larger is corruption, not data.
const MaxFrame = resilience.MaxCheckpointPayload

// Message types. The protocol is deliberately small: a handshake pair,
// a work/result pair, and a cache query pair.
const (
	// MsgHello is worker → coordinator: first frame on a connection,
	// declaring protocol version, worker name, and slot count.
	MsgHello = "hello"
	// MsgWelcome is coordinator → worker: handshake accept.
	MsgWelcome = "welcome"
	// MsgWork is coordinator → worker: one granule to execute.
	MsgWork = "work"
	// MsgResult is worker → coordinator: a granule's value or error.
	MsgResult = "result"
	// MsgCacheGet is worker → coordinator: probe the shared result
	// cache before computing (ID correlates the reply).
	MsgCacheGet = "cacheget"
	// MsgCacheValue is coordinator → worker: cache reply; Found reports
	// whether Value holds a hit.
	MsgCacheValue = "cachevalue"
	// MsgPing is worker → coordinator (proto ≥ 2): periodic liveness
	// proof carrying slot-occupancy and last measured round-trip
	// telemetry. ID correlates the pong.
	MsgPing = "ping"
	// MsgPong is coordinator → worker (proto ≥ 2): ping acknowledgement
	// echoing ID; the worker times it to measure RTT and counts missed
	// pongs to detect a wedged session from its side.
	MsgPong = "pong"
)

// Msg is the single message shape for every frame in both directions;
// which fields are meaningful depends on Type. One struct instead of a
// type hierarchy keeps the decoder total: any valid frame decodes, and
// dispatch on Type rejects what a peer should not have sent.
type Msg struct {
	Type   string          `json:"type"`
	Proto  int             `json:"proto,omitempty"`
	Worker string          `json:"worker,omitempty"`
	Slots  int             `json:"slots,omitempty"`
	ID     uint64          `json:"id,omitempty"`
	Kind   string          `json:"kind,omitempty"`
	Key    string          `json:"key,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Value  json.RawMessage `json:"value,omitempty"`
	Found  bool            `json:"found,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Transient classifies Error on result/cachevalue frames (proto ≥ 2):
	// true means a transport-shaped failure worth charging against the
	// granule's retry budget, false a deterministic failure that will
	// reproduce anywhere. Proto-1 peers omit it; absent means permanent.
	Transient bool `json:"transient,omitempty"`
	// Busy is the executing-granule count on ping frames.
	Busy int `json:"busy,omitempty"`
	// RTT is the worker's last measured ping round trip in microseconds,
	// reported on the following ping.
	RTT int64 `json:"rtt,omitempty"`
	// PingMS is the heartbeat cadence the coordinator assigns in the
	// welcome frame; 0 disables pings for the session.
	PingMS int64 `json:"ping_ms,omitempty"`
}

// EncodeFrame marshals m and wraps it in the checkpoint envelope.
func EncodeFrame(m Msg) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("fabric: encode %s frame: %w", m.Type, err)
	}
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("fabric: %s frame payload of %d bytes exceeds the %d-byte cap",
			m.Type, len(payload), MaxFrame)
	}
	return resilience.EncodeEnvelope(payload), nil
}

// WriteFrame encodes m and writes the whole frame to w. The
// "fabric.frame.write" failpoint lets the chaos suite tear the write:
// when armed to fire it writes only the first half of the frame and
// returns the injected error, the shape a worker killed mid-send
// produces on the coordinator's reader.
func WriteFrame(w io.Writer, m Msg) error {
	frame, err := EncodeFrame(m)
	if err != nil {
		return err
	}
	if ierr := faultinject.Hit("fabric.frame.write", m.Type); ierr != nil {
		if _, werr := w.Write(frame[:len(frame)/2]); werr != nil {
			return werr
		}
		return ierr
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("fabric: write %s frame: %w", m.Type, err)
	}
	return nil
}

// ReadFrame reads one frame off r: the fixed header first (validated
// before any payload allocation), then the payload, then the CRC check
// over the assembled envelope, then the JSON decode. io.EOF is returned
// bare only when the stream ends cleanly between frames; an EOF inside
// a frame comes back as io.ErrUnexpectedEOF wrapped with context.
func ReadFrame(r io.Reader) (Msg, error) {
	var header [resilience.EnvelopeHeaderSize]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if err == io.EOF {
			return Msg{}, io.EOF
		}
		return Msg{}, fmt.Errorf("fabric: read frame header: %w", err)
	}
	payloadLen, err := resilience.ParseEnvelopeHeader(header[:])
	if err != nil {
		return Msg{}, fmt.Errorf("fabric: frame header: %w", err)
	}
	frame := make([]byte, resilience.EnvelopeHeaderSize+payloadLen)
	copy(frame, header[:])
	if _, err := io.ReadFull(r, frame[resilience.EnvelopeHeaderSize:]); err != nil {
		return Msg{}, fmt.Errorf("fabric: read %d-byte frame payload: %w", payloadLen, err)
	}
	payload, err := resilience.DecodeEnvelope(frame)
	if err != nil {
		return Msg{}, fmt.Errorf("fabric: frame: %w", err)
	}
	var m Msg
	if err := json.Unmarshal(payload, &m); err != nil {
		return Msg{}, fmt.Errorf("fabric: decode frame payload: %w", err)
	}
	return m, nil
}
