package trace

import "lpm/internal/stats"

// Phased is a generator that switches among several behaviour profiles
// according to a Markov chain, modelling the periodic phase behaviour of
// real programs (Sherwood et al.) that the paper's observation 3 and its
// online LPM algorithm rely on: each phase has its own locality and
// concurrency character, so the right hardware configuration changes at
// phase boundaries.
//
// It implements Generator; the active phase switches every DwellLength
// instructions according to the transition matrix.
type Phased struct {
	name    string
	phases  []*Synthetic
	trans   [][]float64 // row-stochastic transition matrix
	dwell   int
	rng     *stats.RNG
	seed    uint64
	current int
	left    int
}

// NewPhased builds a phased generator. profiles must be non-empty; trans
// must be a len(profiles) square row-stochastic matrix (rows re-normalised
// defensively); dwell is the phase length in instructions. It panics on
// malformed input, since phase structures are program constants.
func NewPhased(name string, profiles []Profile, trans [][]float64, dwell int, seed uint64) *Phased {
	if len(profiles) == 0 {
		panic("trace: phased generator with no phases")
	}
	if len(trans) != len(profiles) {
		panic("trace: transition matrix size mismatch")
	}
	for _, row := range trans {
		if len(row) != len(profiles) {
			panic("trace: transition matrix not square")
		}
	}
	if dwell <= 0 {
		panic("trace: non-positive dwell length")
	}
	p := &Phased{name: name, trans: trans, dwell: dwell, seed: seed}
	for _, prof := range profiles {
		p.phases = append(p.phases, NewSynthetic(prof))
	}
	p.Reset()
	return p
}

// Name implements Generator.
func (p *Phased) Name() string { return p.name }

// Phase returns the index of the currently active phase.
func (p *Phased) Phase() int { return p.current }

// Reset implements Generator.
func (p *Phased) Reset() {
	p.rng = stats.NewRNG(p.seed ^ 0x9a5ed)
	for _, ph := range p.phases {
		ph.Reset()
	}
	p.current = 0
	p.left = p.dwell
}

// Next implements Generator.
func (p *Phased) Next() Instr {
	if p.left == 0 {
		p.advance()
		p.left = p.dwell
	}
	p.left--
	return p.phases[p.current].Next()
}

// advance samples the next phase from the transition row.
func (p *Phased) advance() {
	row := p.trans[p.current]
	total := 0.0
	for _, w := range row {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return // absorbing phase
	}
	u := p.rng.Float64() * total
	acc := 0.0
	for i, w := range row {
		if w <= 0 {
			continue
		}
		acc += w
		if u <= acc {
			p.current = i
			return
		}
	}
	p.current = len(row) - 1
}
