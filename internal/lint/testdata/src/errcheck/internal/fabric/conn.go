// Package fabric is the errcheck fixture's network-writer case: the
// sweep fabric's wire path, where a dropped net.Conn Write or Close
// error means the sender keeps trusting a dead link and the frame's
// remainder silently never leaves the process.
package fabric

import "net"

// SendFrame is the broken sender: the Write error vanishes, so a torn
// frame looks like a delivered one, and the dropped Close error hides a
// reset that the next send would have surfaced.
func SendFrame(conn net.Conn, frame []byte) {
	conn.Write(frame) // want "Conn.Write returns an error that is dropped"
	conn.Close()      // want "Conn.Close returns an error that is dropped"
}

// SendFrameChecked is the legal form: the write error propagates, and
// teardown is either deferred or explicitly discarded.
func SendFrameChecked(conn net.Conn, frame []byte) error {
	defer conn.Close()
	if _, err := conn.Write(frame); err != nil {
		_ = conn.Close()
		return err
	}
	return nil
}
