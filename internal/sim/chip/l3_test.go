package chip

import (
	"testing"

	"lpm/internal/trace"
)

// threeLevelConfig returns a single-core chip with a small L2 and a
// larger L3.
func threeLevelConfig(profile string) Config {
	cfg := SingleCore(profile)
	cfg.L2 = DefaultL2("L2", 256*KB)
	l3 := DefaultL2("L3", 4*MB)
	l3.HitLatency = 25
	cfg.L3 = &l3
	return cfg
}

func TestL3ConfigValidated(t *testing.T) {
	cfg := threeLevelConfig("403.gcc")
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := threeLevelConfig("403.gcc")
	bad.L3.Ports = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad L3 accepted")
	}
}

func TestThreeLevelHierarchyRuns(t *testing.T) {
	ch := New(threeLevelConfig("403.gcc"))
	_, done := ch.Run(20000, 20_000_000)
	if !done {
		t.Fatal("did not retire")
	}
	if ch.L3() == nil {
		t.Fatal("L3 missing")
	}
	r3 := ch.L3().Analyzer().Snapshot()
	if r3.Completed == 0 {
		t.Fatal("L3 saw no traffic despite a small L2")
	}
	// Filtering: each level sees no more traffic than the one above.
	r2 := ch.L2().Analyzer().Snapshot()
	r1 := ch.Snapshot().Cores[0].L1
	if !(r1.Completed >= r2.Completed && r2.Completed >= r3.Completed) {
		t.Fatalf("traffic not filtered: L1=%d L2=%d L3=%d",
			r1.Completed, r2.Completed, r3.Completed)
	}
	if ch.Busy() {
		t.Fatal("not drained")
	}
}

func TestL3AbsorbsL2Misses(t *testing.T) {
	// A workload re-touching a 512 KB hot region: far too big for the
	// 256 KB L2 alone, comfortably resident in the 4 MB L3.
	prof := trace.Profile{
		Name: "l3test", MemFrac: 0.4, StoreFrac: 0.2,
		Footprint: 512 * KB, HotBytes: 512 * KB, HotFrac: 1.0,
		SeqFrac: 0, Stride: 8, DepDist: 8, ExecLat: 1.2,
	}
	run := func(withL3 bool) uint64 {
		cfg := threeLevelConfig("403.gcc")
		cfg.Cores[0].Workload = trace.NewSynthetic(prof)
		if !withL3 {
			cfg.L3 = nil
		}
		ch := New(cfg)
		ch.RunUntilRetired(400000, 200_000_000)
		ch.ResetCounters()
		ch.Run(430000, 200_000_000)
		return ch.Mem().Stats().Reads
	}
	with, without := run(true), run(false)
	if with >= without/2 {
		t.Fatalf("L3 did not absorb misses: reads with=%d without=%d", with, without)
	}
}

func TestMeasureChainDepth(t *testing.T) {
	gen := trace.NewSynthetic(trace.MustProfile("403.gcc"))
	cfg := threeLevelConfig("403.gcc")
	cpiExe := MeasureCPIexe(cfg.Cores[0].CPU, gen, 3, 15000)
	ch := New(cfg)
	ch.Run(20000, 20_000_000)
	chain := ch.MeasureChain(0, cpiExe)
	if len(chain.Layers) != 4 {
		t.Fatalf("chain depth %d, want 4 (L1,L2,L3,MM)", len(chain.Layers))
	}
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	// LPMRs must be positive and generally decreasing down the request
	// chain for a filtered hierarchy... at minimum, defined everywhere.
	for i, v := range chain.LPMRs() {
		if v < 0 {
			t.Fatalf("LPMR(%d) = %v", i, v)
		}
	}
	// Two-level chips produce three layers.
	cfg2 := SingleCore("403.gcc")
	ch2 := New(cfg2)
	ch2.Run(10000, 20_000_000)
	chain2 := ch2.MeasureChain(0, cpiExe)
	if len(chain2.Layers) != 3 {
		t.Fatalf("chain depth %d, want 3", len(chain2.Layers))
	}
}
