// Package timeseries is the time-resolved half of the observability
// layer: a cycle-windowed sampler every simulator layer publishes into,
// turning the aggregate per-run metrics of package obs into per-window
// series — IPC, per-layer C-AMAT parameters, DRAM row behaviour, NoC
// queueing — plus a top-down stall-attribution tree whose buckets
// partition every core cycle exactly (see stall.go).
//
// The paper's argument is that layered mismatch is *time-varying*:
// LPMR1/2/3 open and close as program phases shift. A Sampler makes that
// visible. It closes a Window every Width cycles (fixed mode) or merges
// consecutive same-phase windows into one (adaptive mode, reusing the
// internal/phase detector), and each Window carries enough raw counters
// to recompute the per-window C-AMAT and LPMR values after any merge.
//
// Like the rest of the observability layer, the sampler is zero-cost
// when disabled: a nil *Sampler ignores every call, so an unobserved
// chip pays one predictable branch per cycle. A Sampler is owned by a
// single simulation goroutine and is not synchronised; Live (live.go) is
// the synchronised hand-off point for serving windows mid-run.
package timeseries

import (
	"sort"

	"lpm/internal/analyzer"
	"lpm/internal/phase"
)

// SeriesVersion is the schema version stamped on every Series; bump it
// on any incompatible change to the timeline JSON shape.
const SeriesVersion = 1

// DefaultWidth is the base window width in cycles when Config.Width is
// zero.
const DefaultWidth = 2048

// DefaultMaxWindows bounds stored windows when Config.MaxWindows is
// zero; the oldest windows are dropped (and counted) past it.
const DefaultMaxWindows = 4096

// Config parameterises a Sampler.
type Config struct {
	// Width is the base window width in cycles (0 = DefaultWidth).
	Width uint64
	// Adaptive merges consecutive base windows that classify into the
	// same phase, yielding variable-length phase-aligned windows.
	Adaptive bool
	// PhaseThreshold is the phase detector's distance threshold in
	// adaptive mode (0 = the detector's default).
	PhaseThreshold float64
	// MaxWindows bounds stored windows (0 = DefaultMaxWindows).
	MaxWindows int
	// CPIexe, when positive, enables the per-window LPMR derivation
	// (Eq. 9-11 need the perfect-cache CPI calibration constant).
	CPIexe float64
	// OnWindow, when non-nil, receives every closed window in order —
	// the live-export hook. It runs on the simulation goroutine.
	OnWindow func(Window)
}

// probe is one named instantaneous gauge sampled at window boundaries.
type probe struct {
	name string
	fn   func() float64
}

// Sampler accumulates cycle windows. The nil *Sampler is valid and
// ignores every call — the disabled fast path. Create with New; the
// owning component (the chip) wires a collector with SetCollector and
// calls Tick once per simulated cycle.
type Sampler struct {
	cfg     Config
	collect func(cycles uint64) Window
	det     *phase.Detector
	probes  []probe

	windows   []Window
	winCycles uint64
	dropped   uint64
	lastPhase int
}

// New returns a sampler for cfg.
func New(cfg Config) *Sampler {
	s := &Sampler{cfg: cfg, lastPhase: -1}
	if cfg.Adaptive {
		s.det = phase.NewDetector(cfg.PhaseThreshold)
	}
	return s
}

// Config returns the sampler's configuration (zero value on nil).
func (s *Sampler) Config() Config {
	if s == nil {
		return Config{}
	}
	return s.cfg
}

// Width returns the effective base window width.
func (s *Sampler) Width() uint64 {
	if s == nil {
		return 0
	}
	if s.cfg.Width == 0 {
		return DefaultWidth
	}
	return s.cfg.Width
}

func (s *Sampler) maxWindows() int {
	if s.cfg.MaxWindows == 0 {
		return DefaultMaxWindows
	}
	return s.cfg.MaxWindows
}

// SetCollector wires the payload builder: collect(cycles) must return a
// Window covering the last `cycles` ticks (Start/End are stamped by the
// sampler). The chip installs a closure that deltas every layer's
// cumulative counters.
func (s *Sampler) SetCollector(collect func(cycles uint64) Window) {
	if s == nil {
		return
	}
	s.collect = collect
}

// Track registers a named instantaneous probe sampled at every window
// boundary (e.g. an occupancy or a derived gauge). Names must be
// program constants or constant-suffixed (prefix + ".name") so series
// stay stable across runs — enforced by lpmlint's obsdiscipline rule.
// Registration order is deterministic; probe values are sorted by name
// in each window.
func (s *Sampler) Track(name string, fn func() float64) {
	if s == nil {
		return
	}
	s.probes = append(s.probes, probe{name: name, fn: fn})
}

// Tick advances the sampler one cycle; on a base-window boundary it
// collects, derives and stores the window. Call exactly once per
// simulated cycle, after every component has ticked.
func (s *Sampler) Tick(cycle uint64) {
	if s == nil {
		return
	}
	s.winCycles++
	if s.winCycles >= s.Width() {
		s.close(cycle)
	}
}

// AdvanceCycles credits n cycles to the open window without touching a
// boundary — the fast-forward bulk form of Tick. The caller must
// guarantee the jump lands strictly before the next window boundary
// (winCycles + n < Width); the boundary cycle itself is always stepped
// so close() observes the same cycle stamp as a stepped run.
func (s *Sampler) AdvanceCycles(n uint64) {
	if s == nil {
		return
	}
	if s.winCycles+n >= s.Width() {
		panic("timeseries: AdvanceCycles across a window boundary")
	}
	s.winCycles += n
}

// CyclesIntoWindow returns how many cycles of the open window have
// accumulated since the last boundary — what the chip's fast-forward
// uses to cap a jump below the next boundary.
func (s *Sampler) CyclesIntoWindow() uint64 {
	if s == nil {
		return 0
	}
	return s.winCycles
}

// Flush closes the in-progress partial window, if any cycles have
// accumulated since the last boundary. Call at end of run so the tail
// of the timeline is not lost.
func (s *Sampler) Flush(cycle uint64) {
	if s == nil {
		return
	}
	if s.winCycles > 0 {
		s.close(cycle)
	}
}

// close builds the window ending at cycle (inclusive), derives its
// model quantities, classifies its phase, and appends or merges it.
func (s *Sampler) close(cycle uint64) {
	if s.collect == nil {
		s.winCycles = 0
		return
	}
	w := s.collect(s.winCycles)
	w.End = cycle + 1
	w.Start = w.End - s.winCycles
	s.winCycles = 0
	w.Probes = s.sampleProbes()
	w.Phase = -1
	if s.det != nil {
		w.Phase = s.det.Classify(w.signature())
	}
	w.finalize(s.cfg.CPIexe)

	if s.cfg.Adaptive && len(s.windows) > 0 {
		last := &s.windows[len(s.windows)-1]
		if last.Phase == w.Phase && last.End == w.Start {
			last.merge(w)
			last.finalize(s.cfg.CPIexe)
			if s.cfg.OnWindow != nil {
				s.cfg.OnWindow(*last)
			}
			return
		}
	}
	w.Index = s.nextIndex()
	s.windows = append(s.windows, w)
	if len(s.windows) > s.maxWindows() {
		over := len(s.windows) - s.maxWindows()
		s.dropped += uint64(over)
		s.windows = append(s.windows[:0], s.windows[over:]...)
	}
	if s.cfg.OnWindow != nil {
		s.cfg.OnWindow(w)
	}
}

// nextIndex returns the index for a fresh window (monotonic even after
// drops or merges).
func (s *Sampler) nextIndex() int {
	if len(s.windows) == 0 {
		return int(s.dropped)
	}
	return s.windows[len(s.windows)-1].Index + 1
}

// sampleProbes evaluates every registered probe, sorted by name.
func (s *Sampler) sampleProbes() []ProbeValue {
	if len(s.probes) == 0 {
		return nil
	}
	vals := make([]ProbeValue, 0, len(s.probes))
	for _, p := range s.probes {
		vals = append(vals, ProbeValue{Name: p.name, Value: p.fn()})
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Name < vals[j].Name })
	return vals
}

// Windows returns the number of closed windows so far.
func (s *Sampler) Windows() int {
	if s == nil {
		return 0
	}
	return len(s.windows)
}

// Series returns a copy of the timeline accumulated so far.
func (s *Sampler) Series() Series {
	if s == nil {
		return Series{}
	}
	out := Series{
		Version:  SeriesVersion,
		Width:    s.Width(),
		Adaptive: s.cfg.Adaptive,
		Dropped:  s.dropped,
		Windows:  append([]Window(nil), s.windows...),
	}
	return out
}

// Series is a versioned, JSON-serialisable timeline: the ordered closed
// windows of one sampler.
type Series struct {
	// Version is SeriesVersion at capture time.
	Version int `json:"version"`
	// Width is the base window width in cycles.
	Width uint64 `json:"width"`
	// Adaptive records whether windows were phase-merged.
	Adaptive bool `json:"adaptive,omitempty"`
	// Dropped counts windows evicted by the MaxWindows bound.
	Dropped uint64 `json:"dropped,omitempty"`
	// Windows is the timeline, oldest first.
	Windows []Window `json:"windows"`
}

// LPMR1Series extracts the per-window LPMR1 values (a convenience for
// plots and diffs); LPMR2Series and LPMR3Series mirror it.
func (s Series) LPMR1Series() []float64 { return s.extract(func(d Derived) float64 { return d.LPMR1 }) }

// LPMR2Series extracts the per-window LPMR2 values.
func (s Series) LPMR2Series() []float64 { return s.extract(func(d Derived) float64 { return d.LPMR2 }) }

// LPMR3Series extracts the per-window LPMR3 values.
func (s Series) LPMR3Series() []float64 { return s.extract(func(d Derived) float64 { return d.LPMR3 }) }

func (s Series) extract(f func(Derived) float64) []float64 {
	out := make([]float64, len(s.Windows))
	for i, w := range s.Windows {
		out[i] = f(w.Derived)
	}
	return out
}

// TotalCycles returns the cycles covered by the series.
func (s Series) TotalCycles() uint64 {
	var n uint64
	for _, w := range s.Windows {
		n += w.Cycles()
	}
	return n
}

// ProbeValue is one named probe's value in a window.
type ProbeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// CPUSample is one core's counter deltas over a window.
type CPUSample struct {
	// Instructions, MemInstructions, Cycles are retirements, retired
	// memory ops, and core-active ticks in the window.
	Instructions    uint64 `json:"instructions"`
	MemInstructions uint64 `json:"mem_instructions"`
	Cycles          uint64 `json:"cycles"`
	// StallCycles / MemStallCycles / EmptyCycles mirror cpu.Stats over
	// the window.
	StallCycles    uint64 `json:"stall_cycles"`
	MemStallCycles uint64 `json:"mem_stall_cycles"`
	EmptyCycles    uint64 `json:"empty_cycles"`
	// MemActiveCycles / OverlapCycles feed the per-window overlap ratio.
	MemActiveCycles uint64 `json:"mem_active_cycles"`
	OverlapCycles   uint64 `json:"overlap_cycles"`
	// ROBOccupancySum accumulates per-cycle ROB occupancy (divide by the
	// window width for the mean); IssueStalls counts LSQ-full plus
	// rejected-access events.
	ROBOccupancySum uint64 `json:"rob_occupancy_sum"`
	IssueStalls     uint64 `json:"issue_stalls"`
	// IPC is instructions per window cycle.
	IPC float64 `json:"ipc"`
}

// add accumulates o into s (window merging).
func (s *CPUSample) add(o CPUSample) {
	s.Instructions += o.Instructions
	s.MemInstructions += o.MemInstructions
	s.Cycles += o.Cycles
	s.StallCycles += o.StallCycles
	s.MemStallCycles += o.MemStallCycles
	s.EmptyCycles += o.EmptyCycles
	s.MemActiveCycles += o.MemActiveCycles
	s.OverlapCycles += o.OverlapCycles
	s.ROBOccupancySum += o.ROBOccupancySum
	s.IssueStalls += o.IssueStalls
}

// CacheSample is one cache level's deltas over a window. Params carries
// the raw analyzer counters so the per-window C-AMAT parameters (H,
// pMR, pAMP, C_H, C_M) are recomputable after merges; Level is the
// stable instance label ("l1.0", "l2", "l3").
type CacheSample struct {
	Level  string          `json:"level"`
	Params analyzer.Params `json:"params"`
	// Hits/Misses/PrimaryMisses/MSHRWaits/Rejected are event-counter
	// deltas from cache.Stats.
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	PrimaryMisses uint64 `json:"primary_misses"`
	MSHRWaits     uint64 `json:"mshr_waits"`
	Rejected      uint64 `json:"rejected"`
	// MSHROccupancySum accumulates per-cycle outstanding-miss counts
	// (port/bank pressure shows up in Params' hit-phase concurrency).
	MSHROccupancySum uint64 `json:"mshr_occupancy_sum"`
}

// add accumulates o into s (window merging).
func (s *CacheSample) add(o CacheSample) {
	s.Params = s.Params.Add(o.Params)
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.PrimaryMisses += o.PrimaryMisses
	s.MSHRWaits += o.MSHRWaits
	s.Rejected += o.Rejected
	s.MSHROccupancySum += o.MSHROccupancySum
}

// DRAMSample is the memory controller's deltas over a window.
type DRAMSample struct {
	Reads        uint64 `json:"reads"`
	Writes       uint64 `json:"writes"`
	RowHits      uint64 `json:"row_hits"`
	RowMisses    uint64 `json:"row_misses"`
	RowConflicts uint64 `json:"row_conflicts"`
	Rejected     uint64 `json:"rejected"`
	// ActiveCycles and LatencySum mirror dram.Stats over the window.
	ActiveCycles uint64 `json:"active_cycles"`
	LatencySum   uint64 `json:"latency_sum"`
	// BusBusyCycles accumulates, per window cycle, the number of channel
	// buses mid-burst; QueueOccupancySum the queued-request population.
	BusBusyCycles     uint64 `json:"bus_busy_cycles"`
	QueueOccupancySum uint64 `json:"queue_occupancy_sum"`
}

// RowHitRate returns row hits over all row outcomes in the window.
func (s DRAMSample) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// add accumulates o into s (window merging).
func (s *DRAMSample) add(o DRAMSample) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.RowConflicts += o.RowConflicts
	s.Rejected += o.Rejected
	s.ActiveCycles += o.ActiveCycles
	s.LatencySum += o.LatencySum
	s.BusBusyCycles += o.BusBusyCycles
	s.QueueOccupancySum += o.QueueOccupancySum
}

// NoCSample is the interconnect's deltas over a window (nil when the
// chip has no NoC).
type NoCSample struct {
	Requests      uint64 `json:"requests"`
	Responses     uint64 `json:"responses"`
	Rejected      uint64 `json:"rejected"`
	QueueCycleSum uint64 `json:"queue_cycle_sum"`
}

// add accumulates o into s (window merging).
func (s *NoCSample) add(o NoCSample) {
	s.Requests += o.Requests
	s.Responses += o.Responses
	s.Rejected += o.Rejected
	s.QueueCycleSum += o.QueueCycleSum
}

// Derived is the per-window model view the analyzer computes from the
// raw samples: windowed C-AMAT per layer and the three LPMRs (Eq. 9-11;
// zero when CPIexe was not configured).
type Derived struct {
	IPC    float64 `json:"ipc"`
	Fmem   float64 `json:"fmem"`
	CAMAT1 float64 `json:"camat1"`
	CAMAT2 float64 `json:"camat2"`
	CAMAT3 float64 `json:"camat3"`
	MR1    float64 `json:"mr1"`
	MR2    float64 `json:"mr2"`
	LPMR1  float64 `json:"lpmr1"`
	LPMR2  float64 `json:"lpmr2"`
	LPMR3  float64 `json:"lpmr3"`
}

// Window is one sampled interval: [Start, End) in chip cycles.
type Window struct {
	// Index is the window's ordinal (monotonic across drops/merges).
	Index int `json:"index"`
	// Start and End bound the window: cycles Start..End-1 inclusive.
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Phase is the phase id in adaptive mode, -1 in fixed mode.
	Phase int `json:"phase"`

	// CPU holds one sample per core slot; Cache one per cache level
	// (l1.* first, then l2, then l3 when present).
	CPU   []CPUSample   `json:"cpu"`
	Cache []CacheSample `json:"cache"`
	DRAM  DRAMSample    `json:"dram"`
	NoC   *NoCSample    `json:"noc,omitempty"`

	// Stall holds one stall-attribution tree per core slot; every core
	// cycle in the window lands in exactly one bucket, so each tree's
	// Total equals Cycles().
	Stall []StallTree `json:"stall"`

	// Probes are the registered instantaneous gauges, sorted by name.
	Probes []ProbeValue `json:"probes,omitempty"`

	// Derived is the per-window model view.
	Derived Derived `json:"derived"`
}

// Cycles returns the window length.
func (w Window) Cycles() uint64 { return w.End - w.Start }

// AggregateStall sums the per-core stall trees.
func (w Window) AggregateStall() StallTree {
	var t StallTree
	for _, s := range w.Stall {
		t.Add(s)
	}
	return t
}

// signature builds the phase-classification vector from the window's
// aggregate behaviour (the same features phase.FromLPM standardises).
func (w Window) signature() phase.Signature {
	var instr, mem uint64
	for _, c := range w.CPU {
		instr += c.Instructions
		mem += c.MemInstructions
	}
	l1, _, _ := w.layerParams()
	fmem := 0.0
	if instr > 0 {
		fmem = float64(mem) / float64(instr)
	}
	ipc := 0.0
	if cy := w.Cycles(); cy > 0 {
		ipc = float64(instr) / float64(cy)
	}
	return phase.FromLPM(fmem, l1.MR(), l1.PMR(), l1.CH(), l1.CM(), ipc)
}

// layerParams aggregates the window's cache samples into the L1 (all
// private caches summed), L2 and optional L3 views, plus the layer
// primary-miss counts via pm1/pm2.
func (w Window) layerParams() (l1, l2 analyzer.Params, pm [2]uint64) {
	for _, cs := range w.Cache {
		switch {
		case len(cs.Level) >= 2 && cs.Level[:2] == "l1":
			l1 = l1.Add(cs.Params)
			pm[0] += cs.PrimaryMisses
		case cs.Level == "l2":
			l2 = cs.Params
			pm[1] = cs.PrimaryMisses
		}
	}
	return l1, l2, pm
}

// finalize recomputes the Derived view from the raw samples; the
// sampler calls it on close and after every merge.
func (w *Window) finalize(cpiExe float64) {
	var instr, mem uint64
	for _, c := range w.CPU {
		instr += c.Instructions
		mem += c.MemInstructions
	}
	d := Derived{}
	if cy := w.Cycles(); cy > 0 {
		d.IPC = float64(instr) / float64(cy)
	}
	if instr > 0 {
		d.Fmem = float64(mem) / float64(instr)
	}
	l1, l2, pm := w.layerParams()
	d.CAMAT1 = l1.CAMAT()
	d.CAMAT2 = l2.CAMAT()
	if l1.Completed > 0 {
		d.MR1 = float64(pm[0]) / float64(l1.Completed)
	}
	if l2.Completed > 0 {
		d.MR2 = float64(pm[1]) / float64(l2.Completed)
	}
	if w.DRAM.ActiveCycles > 0 {
		apc3 := float64(w.DRAM.Reads+w.DRAM.Writes) / float64(w.DRAM.ActiveCycles)
		if apc3 > 0 {
			d.CAMAT3 = 1 / apc3
		}
	}
	if cpiExe > 0 {
		d.LPMR1 = d.CAMAT1 * d.Fmem / cpiExe
		d.LPMR2 = d.CAMAT2 * d.Fmem * d.MR1 / cpiExe
		d.LPMR3 = d.CAMAT3 * d.Fmem * d.MR1 * d.MR2 / cpiExe
	}
	w.Derived = d
}

// merge folds o (the next contiguous window) into w: counters sum,
// stall trees sum, probes take o's (latest) values. The caller
// re-finalizes afterwards.
func (w *Window) merge(o Window) {
	w.End = o.End
	for i := range w.CPU {
		if i < len(o.CPU) {
			w.CPU[i].add(o.CPU[i])
		}
	}
	for i := range w.Cache {
		if i < len(o.Cache) {
			w.Cache[i].add(o.Cache[i])
		}
	}
	w.DRAM.add(o.DRAM)
	if w.NoC != nil && o.NoC != nil {
		w.NoC.add(*o.NoC)
	}
	for i := range w.Stall {
		if i < len(o.Stall) {
			w.Stall[i].Add(o.Stall[i])
		}
	}
	w.Probes = o.Probes
}
