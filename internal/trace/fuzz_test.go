package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzTraceDecode throws arbitrary bytes at the binary trace decoder.
// The decoder must either reject the input with an error or produce a
// stream of valid instructions that survives a re-encode/re-decode
// round trip; it must never panic or return junk kinds/latencies.
func FuzzTraceDecode(f *testing.F) {
	// Seed 1: a small well-formed trace covering every record shape.
	var wellFormed bytes.Buffer
	tw, err := NewWriter(&wellFormed, "fuzz-seed")
	if err != nil {
		f.Fatal(err)
	}
	for _, in := range []Instr{
		{Kind: Compute, Lat: 1},
		{Kind: Compute, Lat: 7, Dep: 1},
		{Kind: Load, Addr: 0x1000, Lat: 1},
		{Kind: Store, Addr: 0x40, Lat: 1, Dep: 2},
		{Kind: Load, Addr: 0xfffffff0, Lat: 1},
	} {
		if err := tw.Write(in); err != nil {
			f.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(wellFormed.Bytes())
	// Seeds 2..n: structurally interesting malformed inputs.
	f.Add([]byte{})
	f.Add([]byte("LPMTRC01"))
	f.Add([]byte("LPMTRC99junk"))
	f.Add(append([]byte("LPMTRC01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Add(append([]byte("LPMTRC01"), 0x00, 0x0c)) // empty name, lat-flag record cut short

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: fine
		}
		var instrs []Instr
		for {
			in, err := tr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // rejected mid-stream: fine
			}
			if in.Kind > Store {
				t.Fatalf("decoder produced invalid kind %d", in.Kind)
			}
			if in.Lat == 0 {
				t.Fatalf("decoder produced zero latency")
			}
			instrs = append(instrs, in)
			if len(instrs) > 1<<16 {
				break // bound memory on adversarially long inputs
			}
		}

		// Round trip: whatever decoded must re-encode and decode back to
		// the same stream.
		var buf bytes.Buffer
		tw, err := NewWriter(&buf, tr.Name())
		if err != nil {
			t.Fatalf("re-encode header: %v", err)
		}
		for _, in := range instrs {
			if err := tw.Write(in); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if err := tw.Flush(); err != nil {
			t.Fatalf("re-encode flush: %v", err)
		}
		tr2, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode header: %v", err)
		}
		for i, want := range instrs {
			got, err := tr2.Read()
			if err != nil {
				t.Fatalf("re-decode instr %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("round trip changed instr %d: %+v != %+v", i, got, want)
			}
		}
		if _, err := tr2.Read(); err != io.EOF {
			t.Fatalf("re-decoded stream longer than input: %v", err)
		}
	})
}
