package cpu

import (
	"testing"

	"lpm/internal/sim/cache"
	"lpm/internal/sim/dram"
	"lpm/internal/trace"
)

func smtCfg() Config {
	return Config{Name: "smt0", IssueWidth: 4, ROBSize: 48, IWSize: 48, LSQSize: 24}
}

func runSMT(s *SMT, mem *Perfect, n uint64, budget int) {
	for cy := uint64(1); cy <= uint64(budget); cy++ {
		s.Tick(cy)
		mem.Tick(cy)
		if s.Retired() >= n {
			return
		}
	}
}

func TestSMTSingleThreadMatchesCoreBehaviour(t *testing.T) {
	// One-thread SMT should behave like the plain core, approximately:
	// same throughput regime for an ILP-rich stream.
	g1 := &scriptGen{name: "ilp", instrs: []trace.Instr{{Kind: trace.Compute, Lat: 1}}}
	mem := &Perfect{Latency: 1}
	s := NewSMT(smtCfg(), []trace.Generator{g1}, mem)
	runSMT(s, mem, 10000, 20000)
	if ipc := s.Stats().IPC(); ipc < 3.2 {
		t.Fatalf("single-thread SMT IPC %.2f, want near issue width 4", ipc)
	}
}

func TestSMTThroughputExceedsSingleThreadOnStalls(t *testing.T) {
	// Memory-stalling stream: a second thread fills the pipe while the
	// first waits, so two threads beat one on the same core.
	mk := func() trace.Generator {
		return &scriptGen{name: "chase", instrs: []trace.Instr{{Kind: trace.Load, Dep: 1, Lat: 1}}}
	}
	one := NewSMT(smtCfg(), []trace.Generator{mk()}, &Perfect{Latency: 30})
	memOne := &Perfect{Latency: 30}
	one = NewSMT(smtCfg(), []trace.Generator{mk()}, memOne)
	runSMT(one, memOne, 2000, 300000)

	memTwo := &Perfect{Latency: 30}
	two := NewSMT(smtCfg(), []trace.Generator{mk(), mk()}, memTwo)
	runSMT(two, memTwo, 4000, 300000)

	ipc1, ipc2 := one.Stats().IPC(), two.Stats().IPC()
	if ipc2 < ipc1*1.7 {
		t.Fatalf("2-thread SMT IPC %.3f not ~2x single %.3f on a latency-bound stream", ipc2, ipc1)
	}
}

func TestSMTSharedLSQBindsThreads(t *testing.T) {
	cfg := smtCfg()
	cfg.LSQSize = 2
	mk := func() trace.Generator {
		return &scriptGen{name: "loads", instrs: []trace.Instr{{Kind: trace.Load, Lat: 1}}}
	}
	mem := &Perfect{Latency: 40}
	s := NewSMT(cfg, []trace.Generator{mk(), mk(), mk(), mk()}, mem)
	for cy := uint64(1); cy <= 300; cy++ {
		s.Tick(cy)
		if s.inLSQ > 2 {
			t.Fatalf("shared LSQ exceeded: %d", s.inLSQ)
		}
		mem.Tick(cy)
	}
	if s.Stats().LSQFullEvents == 0 {
		t.Fatal("expected shared-LSQ pressure")
	}
}

func TestSMTPerThreadProgressIsFair(t *testing.T) {
	mk := func() trace.Generator {
		return &scriptGen{name: "mix", instrs: []trace.Instr{
			{Kind: trace.Load, Lat: 1}, {Kind: trace.Compute, Lat: 1},
		}}
	}
	mem := &Perfect{Latency: 5}
	s := NewSMT(smtCfg(), []trace.Generator{mk(), mk()}, mem)
	runSMT(s, mem, 8000, 100000)
	a, b := s.ThreadStats(0).Instructions, s.ThreadStats(1).Instructions
	if a == 0 || b == 0 {
		t.Fatalf("a thread starved: %d vs %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("identical threads progressed unevenly: %d vs %d", a, b)
	}
}

func TestSMTHaltDrains(t *testing.T) {
	mk := func() trace.Generator {
		return &scriptGen{name: "loads", instrs: []trace.Instr{{Kind: trace.Load, Lat: 1}}}
	}
	mem := &Perfect{Latency: 10}
	s := NewSMT(smtCfg(), []trace.Generator{mk(), mk()}, mem)
	for cy := uint64(1); cy <= 60; cy++ {
		s.Tick(cy)
		mem.Tick(cy)
	}
	s.Halt()
	for cy := uint64(61); cy <= 1000 && (s.Busy() || mem.Busy()); cy++ {
		s.Tick(cy)
		mem.Tick(cy)
	}
	if s.Busy() {
		t.Fatal("SMT did not drain")
	}
}

func TestSMTPanicsOnNoThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSMT(smtCfg(), nil, &Perfect{Latency: 1})
}

// TestSMTRaisesHitAndMissConcurrency is the paper's §II claim end to
// end: the same total workload driven through one SMT core raises C_H
// and the L1's APC versus a single hardware thread.
func TestSMTRaisesHitAndMissConcurrency(t *testing.T) {
	run := func(threads int) (ch, cm, apc float64) {
		l1 := cache.New(cache.Config{
			Name: "L1", Size: 32 << 10, BlockSize: 64, Assoc: 4,
			HitLatency: 3, Ports: 4, Banks: 8, MSHRs: 16, Coalesce: true,
		})
		lower := &dram.Fixed{Latency: 30}
		l1.SetLower(lower)
		gens := make([]trace.Generator, threads)
		for i := range gens {
			// Pointer chasing: a single thread has almost no memory-level
			// parallelism, so concurrency can only come from SMT.
			p := trace.MustProfile("429.mcf")
			p.Seed = uint64(i + 1)
			gens[i] = trace.WithOffset(trace.NewSynthetic(p), uint64(i)<<33)
		}
		s := NewSMT(smtCfg(), gens, l1)
		target := uint64(30000)
		for cy := uint64(1); cy <= 2_000_000 && s.Retired() < target; cy++ {
			s.Tick(cy)
			l1.Tick(cy)
			lower.Tick(cy)
		}
		p := l1.Analyzer().Snapshot()
		return p.CH(), p.CM(), p.APC()
	}
	ch1, cm1, apc1 := run(1)
	ch2, cm2, apc2 := run(2)
	if ch2 <= ch1 {
		t.Fatalf("SMT did not raise C_H: %.3f -> %.3f", ch1, ch2)
	}
	if cm2 < cm1 {
		t.Fatalf("SMT lowered C_M: %.3f -> %.3f", cm1, cm2)
	}
	if apc2 <= apc1 {
		t.Fatalf("SMT did not raise APC: %.4f -> %.4f", apc1, apc2)
	}
}
