package timeseries

// Prometheus text exposition of the timeline's most recent window, the
// live complement of the obs snapshot exporter: scrapers poll the
// current LPMR/C-AMAT state while the JSON timeline endpoint serves the
// full history.

import (
	"fmt"
	"io"
)

// WritePromText writes the latest closed window's derived metrics and
// aggregate stall attribution in the Prometheus text exposition format
// 0.0.4. A nil or empty series writes nothing.
func (s *Series) WritePromText(w io.Writer) error {
	if s == nil {
		return nil
	}
	if len(s.Windows) == 0 {
		return nil
	}
	last := s.Windows[len(s.Windows)-1]
	gauges := []struct {
		name string
		v    float64
	}{
		{"lpm_timeline_window_index", float64(last.Index)},
		{"lpm_timeline_window_start_cycles", float64(last.Start)},
		{"lpm_timeline_window_end_cycles", float64(last.End)},
		{"lpm_timeline_windows_total", float64(len(s.Windows))},
		{"lpm_timeline_windows_dropped", float64(s.Dropped)},
		{"lpm_timeline_ipc", last.Derived.IPC},
		{"lpm_timeline_fmem", last.Derived.Fmem},
		{"lpm_timeline_camat1", last.Derived.CAMAT1},
		{"lpm_timeline_camat2", last.Derived.CAMAT2},
		{"lpm_timeline_camat3", last.Derived.CAMAT3},
		{"lpm_timeline_lpmr1", last.Derived.LPMR1},
		{"lpm_timeline_lpmr2", last.Derived.LPMR2},
		{"lpm_timeline_lpmr3", last.Derived.LPMR3},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", g.name, g.name, g.v); err != nil {
			return err
		}
	}
	st := last.AggregateStall()
	buckets := []struct {
		name string
		v    uint64
	}{
		{"busy", st.Busy}, {"empty", st.Empty}, {"compute", st.Compute},
		{"l1_hit", st.L1Hit}, {"l1_miss", st.L1Miss}, {"l2_miss", st.L2Miss},
		{"l3_miss", st.L3Miss}, {"noc", st.NoC},
		{"dram_queue", st.DRAMQueue}, {"dram_service", st.DRAMService},
		{"other", st.Other},
	}
	if _, err := fmt.Fprintln(w, "# TYPE lpm_timeline_stall_cycles gauge"); err != nil {
		return err
	}
	for _, b := range buckets {
		if _, err := fmt.Fprintf(w, "lpm_timeline_stall_cycles{bucket=%q} %d\n", b.name, b.v); err != nil {
			return err
		}
	}
	return nil
}
