package coherence

import (
	"testing"

	"lpm/internal/sim/cache"
	"lpm/internal/sim/dram"
)

// rig: two private L1s -> directory -> shared fixed-latency memory.
type rig struct {
	l1s []*cache.Cache
	dir *Directory
	mem *dram.Fixed
	now uint64
}

func newRig(invalLat uint64) *rig {
	r := &rig{mem: &dram.Fixed{Latency: 10}}
	mk := func(i int) *cache.Cache {
		return cache.New(cache.Config{
			Name: "L1", Size: 4 << 10, BlockSize: 64, Assoc: 2,
			HitLatency: 2, Ports: 2, Banks: 2, MSHRs: 4, Coalesce: true,
			SrcID: i,
		})
	}
	r.l1s = []*cache.Cache{mk(0), mk(1)}
	ups := make([]Invalidator, len(r.l1s))
	for i, c := range r.l1s {
		ups[i] = c
	}
	r.dir = New(ups, r.mem)
	r.dir.InvalidationLatency = invalLat
	for _, c := range r.l1s {
		c.SetLower(r.dir)
	}
	return r
}

func (r *rig) step() {
	r.now++
	for _, c := range r.l1s {
		c.Tick(r.now)
	}
	r.dir.Tick(r.now)
	r.mem.Tick(r.now)
}

// access runs a demand access on L1 i and waits for completion.
func (r *rig) access(t *testing.T, i int, addr uint64, write bool) {
	t.Helper()
	done := false
	if !r.l1s[i].Access(r.now+1, addr, write, func(uint64) { done = true }) {
		t.Fatal("access rejected")
	}
	for k := 0; k < 500 && !done; k++ {
		r.step()
	}
	if !done {
		t.Fatal("access never completed")
	}
}

func TestReadSharing(t *testing.T) {
	r := newRig(0)
	r.access(t, 0, 0x100, false)
	r.access(t, 1, 0x100, false)
	if !r.l1s[0].Contains(0x100) || !r.l1s[1].Contains(0x100) {
		t.Fatal("read sharing should leave both copies")
	}
	if st := r.dir.Stats(); st.ReadFetches != 2 || st.Invalidations != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	r := newRig(0)
	r.access(t, 0, 0x100, false) // core 0 reads
	r.access(t, 1, 0x100, true)  // core 1 writes: core 0's copy must die
	if r.l1s[0].Contains(0x100) {
		t.Fatal("stale copy survived a remote write")
	}
	if !r.l1s[1].Contains(0x100) {
		t.Fatal("writer lost its own copy")
	}
	if st := r.dir.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d", st.Invalidations)
	}
	// Core 0 re-reads: a fresh (coherence) miss.
	m0 := r.l1s[0].Stats().Misses
	r.access(t, 0, 0x100, false)
	if r.l1s[0].Stats().Misses != m0+1 {
		t.Fatal("re-read after invalidation should miss")
	}
}

func TestDirtyCopyFlushedOnRemoteWrite(t *testing.T) {
	r := newRig(0)
	r.access(t, 0, 0x200, true) // core 0 owns dirty
	r.access(t, 1, 0x200, true) // core 1 writes: dirty data must be flushed
	if st := r.dir.Stats(); st.DirtyForwards != 1 {
		t.Fatalf("dirty forwards = %d", st.DirtyForwards)
	}
}

func TestReadDowngradesModifiedOwner(t *testing.T) {
	r := newRig(0)
	r.access(t, 0, 0x300, true)  // core 0 modified
	r.access(t, 1, 0x300, false) // core 1 read: owner downgraded + flush
	st := r.dir.Stats()
	if st.Downgrades != 1 {
		t.Fatalf("downgrades = %d", st.Downgrades)
	}
	if st.DirtyForwards != 1 {
		t.Fatalf("dirty forwards = %d", st.DirtyForwards)
	}
}

func TestWritebackReleasesState(t *testing.T) {
	r := newRig(0)
	r.access(t, 0, 0x400, true)
	// Evict via conflicting fills (4KB, 2-way, 32 sets: same set every
	// 2KB).
	r.access(t, 0, 0x400+2048, false)
	r.access(t, 0, 0x400+4096, false)
	for k := 0; k < 200; k++ {
		r.step()
	}
	// After the writeback, a remote write needs no invalidation.
	before := r.dir.Stats().Invalidations
	r.access(t, 1, 0x400, true)
	if got := r.dir.Stats().Invalidations; got != before {
		t.Fatalf("invalidations %d -> %d after the owner wrote back", before, got)
	}
}

func TestInvalidationLatencyCharged(t *testing.T) {
	fast := newRig(0)
	fast.access(t, 0, 0x500, false)
	start := fast.now
	fast.access(t, 1, 0x500, true)
	quick := fast.now - start

	slow := newRig(50)
	slow.access(t, 0, 0x500, false)
	start = slow.now
	slow.access(t, 1, 0x500, true)
	delayed := slow.now - start
	if delayed < quick+40 {
		t.Fatalf("invalidation latency not charged: %d vs %d", delayed, quick)
	}
}

func TestPingPongCostsMoreThanPrivate(t *testing.T) {
	// Two cores alternately writing the SAME block (true sharing ping-
	// pong) must run slower than writing DISTINCT blocks.
	elapsed := func(shared bool) uint64 {
		r := newRig(8)
		for k := 0; k < 20; k++ {
			addrA := uint64(0x800)
			addrB := uint64(0x800)
			if !shared {
				addrB = 0x8000
			}
			r.access(t, 0, addrA, true)
			r.access(t, 1, addrB, true)
		}
		return r.now
	}
	private, pingpong := elapsed(false), elapsed(true)
	if pingpong <= private {
		t.Fatalf("ping-pong (%d cycles) not slower than private (%d)", pingpong, private)
	}
}

func TestDirectoryStringAndReset(t *testing.T) {
	r := newRig(0)
	r.access(t, 0, 0x100, false)
	if r.dir.String() == "" {
		t.Fatal("empty string")
	}
	r.dir.ResetCounters()
	if r.dir.Stats().ReadFetches != 0 {
		t.Fatal("counters survive reset")
	}
	// State (tracked blocks) persists across counter resets.
	if r.dir.Stats().TrackedBlocks == 0 {
		t.Fatal("directory state lost on counter reset")
	}
}
