package chip

// This file wires the chip into the time-series sampler
// (internal/obs/timeseries): per-cycle stall attribution and occupancy
// accumulation, plus the window collector that deltas every layer's
// cumulative counters. Like the metrics registry, the sampler is
// opt-in; a chip without EnableTimeseries pays exactly one branch per
// Tick.

import (
	"fmt"

	"lpm/internal/analyzer"
	"lpm/internal/obs/timeseries"
	"lpm/internal/sim/cache"
	"lpm/internal/sim/cpu"
	"lpm/internal/sim/dram"
	"lpm/internal/sim/noc"
)

// tsState is the chip-side bookkeeping behind an attached sampler:
// previous cumulative snapshots (for window deltas) and per-window
// accumulators filled by tsAccumulate each cycle.
type tsState struct {
	s *tsSampler

	// Previous cumulative snapshots, updated on every window collect.
	prevCPU []cpu.Stats
	prevL1P []analyzer.Params
	prevL1S []cache.Stats
	prevL2P analyzer.Params
	prevL2S cache.Stats
	prevL3P analyzer.Params
	prevL3S cache.Stats
	prevMem dram.Stats
	prevNoC noc.Stats

	// Per-window accumulators, zeroed on every window collect.
	stall     []timeseries.StallTree
	robOccSum []uint64
	l1OccSum  []uint64
	l2OccSum  uint64
	l3OccSum  uint64
	dramQSum  uint64
}

// tsSampler aliases the sampler so the Chip struct field stays typed.
type tsSampler = timeseries.Sampler

// EnableTimeseries attaches a cycle-windowed sampler to the chip and
// returns it. Call after warm-up and ResetCounters so windows cover only
// the measurement interval. Idempotent: repeat calls return the existing
// sampler. The sampler is owned by this chip's simulation goroutine.
func (c *Chip) EnableTimeseries(cfg timeseries.Config) *timeseries.Sampler {
	c.requireDetailed("EnableTimeseries")
	if c.ts != nil {
		return c.ts.s
	}
	s := timeseries.New(cfg)
	ts := &tsState{
		s:         s,
		prevCPU:   make([]cpu.Stats, len(c.cores)),
		prevL1P:   make([]analyzer.Params, len(c.l1s)),
		prevL1S:   make([]cache.Stats, len(c.l1s)),
		stall:     make([]timeseries.StallTree, len(c.cores)),
		robOccSum: make([]uint64, len(c.cores)),
		l1OccSum:  make([]uint64, len(c.l1s)),
	}
	c.ts = ts
	ts.rebase(c)
	s.SetCollector(c.tsCollect)
	for i, core := range c.cores {
		if core == nil {
			continue
		}
		cc := core
		s.Track(fmt.Sprintf("cpu.%d", i)+".rob_occupancy", func() float64 { return float64(cc.ROBOccupancy()) })
		s.Track(fmt.Sprintf("cpu.%d", i)+".iw_occupancy", func() float64 { return float64(cc.IWOccupancy()) })
	}
	for i, l1 := range c.l1s {
		ll := l1
		s.Track(fmt.Sprintf("l1.%d", i)+".mshr_occupancy", func() float64 { return float64(ll.OutstandingMisses()) })
	}
	s.Track("l2.mshr_occupancy", func() float64 { return float64(c.l2.OutstandingMisses()) })
	if c.l3 != nil {
		s.Track("l3.mshr_occupancy", func() float64 { return float64(c.l3.OutstandingMisses()) })
	}
	if c.router != nil {
		s.Track("noc.pending", func() float64 { return float64(c.router.Pending()) })
	}
	s.Track("dram.queue_depth", func() float64 { return float64(c.mem.QueuedRequests()) })
	return s
}

// Timeseries returns the attached sampler (nil unless EnableTimeseries
// was called).
func (c *Chip) Timeseries() *timeseries.Sampler {
	if c.ts == nil {
		return nil
	}
	return c.ts.s
}

// FlushTimeseries closes the in-progress partial window, if any.
func (c *Chip) FlushTimeseries() {
	if c.ts == nil {
		return
	}
	c.ts.s.Flush(c.now)
}

// rebase re-anchors the previous-snapshot baselines at the components'
// current cumulative counters and zeroes the per-window accumulators —
// on attach, and again after ResetCounters (where the cumulative
// counters jump back to zero).
func (ts *tsState) rebase(c *Chip) {
	for i, core := range c.cores {
		if core != nil {
			ts.prevCPU[i] = core.Stats()
		}
		ts.prevL1P[i] = c.l1s[i].Analyzer().Snapshot()
		ts.prevL1S[i] = c.l1s[i].Stats()
		ts.stall[i] = timeseries.StallTree{}
		ts.robOccSum[i] = 0
		ts.l1OccSum[i] = 0
	}
	ts.prevL2P = c.l2.Analyzer().Snapshot()
	ts.prevL2S = c.l2.Stats()
	if c.l3 != nil {
		ts.prevL3P = c.l3.Analyzer().Snapshot()
		ts.prevL3S = c.l3.Stats()
	}
	ts.prevMem = c.mem.Stats()
	if c.router != nil {
		ts.prevNoC = c.router.Stats()
	}
	ts.l2OccSum, ts.l3OccSum, ts.dramQSum = 0, 0, 0
}

// tsAccumulate runs once per chip cycle after every component ticked:
// it charges each core's cycle to exactly one stall bucket and folds the
// occupancy probes into the window accumulators.
func (c *Chip) tsAccumulate() {
	ts := c.ts
	for i, core := range c.cores {
		ts.stall[i].Charge(c.classifyCoreCycle(core, i))
		if core != nil {
			ts.robOccSum[i] += uint64(core.ROBOccupancy())
		}
		ts.l1OccSum[i] += uint64(c.l1s[i].OutstandingMisses())
	}
	ts.l2OccSum += uint64(c.l2.OutstandingMisses())
	if c.l3 != nil {
		ts.l3OccSum += uint64(c.l3.OutstandingMisses())
	}
	ts.dramQSum += uint64(c.mem.QueuedRequests())
}

// classifyCoreCycle maps core i's last cycle to a stall bucket. Busy,
// empty and compute cycles come straight from the core; a memory-stall
// cycle is attributed to the deepest layer still holding the oldest
// request back, walking DRAM → NoC → L3 → L2 → L1. The walk uses
// shared-layer occupancy, so on a multicore chip a stall may be charged
// to a layer occupied by a sibling's traffic — attribution follows the
// resource that is actually congested, which is the quantity the layered
// matching argument needs.
func (c *Chip) classifyCoreCycle(core *cpu.Core, i int) int {
	if core == nil {
		return timeseries.ClassEmpty
	}
	switch core.LastClass() {
	case cpu.CycleBusy:
		return timeseries.ClassBusy
	case cpu.CycleOff, cpu.CycleEmpty:
		return timeseries.ClassEmpty
	case cpu.CycleComputeStall:
		return timeseries.ClassCompute
	}
	// Memory stall: find the deepest responsible layer.
	if c.l1s[i].OutstandingMisses() == 0 {
		// No miss outstanding at L1: the head access is in its hit phase,
		// so hit bandwidth/concurrency is the limiter.
		return timeseries.ClassL1Hit
	}
	if c.mem.QueuedRequests() > 0 {
		return timeseries.ClassDRAMQueue
	}
	if c.mem.InFlight() > 0 {
		return timeseries.ClassDRAMService
	}
	if c.router != nil && c.router.Pending() > 0 {
		return timeseries.ClassNoC
	}
	if c.l3 != nil && c.l3.OutstandingMisses() > 0 {
		return timeseries.ClassL3Miss
	}
	if c.l2.OutstandingMisses() > 0 || c.l2.ServiceActive() {
		return timeseries.ClassL2Miss
	}
	return timeseries.ClassL1Miss
}

// tsCollect is the sampler's collector: it builds one Window from the
// counter deltas since the previous collect, then re-anchors the
// baselines and zeroes the accumulators.
func (c *Chip) tsCollect(cycles uint64) timeseries.Window {
	ts := c.ts
	var w timeseries.Window
	for i, core := range c.cores {
		var cs cpu.Stats
		if core != nil {
			cur := core.Stats()
			cs = cur.Sub(ts.prevCPU[i])
			ts.prevCPU[i] = cur
		}
		samp := timeseries.CPUSample{
			Instructions:    cs.Instructions,
			MemInstructions: cs.MemInstructions,
			Cycles:          cs.Cycles,
			StallCycles:     cs.StallCycles,
			MemStallCycles:  cs.MemStallCycles,
			EmptyCycles:     cs.EmptyCycles,
			MemActiveCycles: cs.MemActiveCycles,
			OverlapCycles:   cs.OverlapCycles,
			ROBOccupancySum: ts.robOccSum[i],
			IssueStalls:     cs.LSQFullEvents + cs.RejectedAccesses,
		}
		if cycles > 0 {
			samp.IPC = float64(cs.Instructions) / float64(cycles)
		}
		w.CPU = append(w.CPU, samp)
		ts.robOccSum[i] = 0
	}
	for i, l1 := range c.l1s {
		w.Cache = append(w.Cache, tsCacheSample(fmt.Sprintf("l1.%d", i), l1, &ts.prevL1P[i], &ts.prevL1S[i], &ts.l1OccSum[i]))
	}
	w.Cache = append(w.Cache, tsCacheSample("l2", c.l2, &ts.prevL2P, &ts.prevL2S, &ts.l2OccSum))
	if c.l3 != nil {
		w.Cache = append(w.Cache, tsCacheSample("l3", c.l3, &ts.prevL3P, &ts.prevL3S, &ts.l3OccSum))
	}

	curMem := c.mem.Stats()
	ms := curMem.Sub(ts.prevMem)
	ts.prevMem = curMem
	w.DRAM = timeseries.DRAMSample{
		Reads:             ms.Reads,
		Writes:            ms.Writes,
		RowHits:           ms.RowHits,
		RowMisses:         ms.RowMisses,
		RowConflicts:      ms.RowConflicts,
		Rejected:          ms.Rejected,
		ActiveCycles:      ms.ActiveCycles,
		LatencySum:        ms.LatencySum,
		BusBusyCycles:     ms.BusBusyCycles,
		QueueOccupancySum: ts.dramQSum,
	}
	ts.dramQSum = 0

	if c.router != nil {
		curNoC := c.router.Stats()
		ns := curNoC.Sub(ts.prevNoC)
		ts.prevNoC = curNoC
		w.NoC = &timeseries.NoCSample{
			Requests:      ns.Requests,
			Responses:     ns.Responses,
			Rejected:      ns.Rejected,
			QueueCycleSum: ns.QueueCycleSum,
		}
	}

	w.Stall = append([]timeseries.StallTree(nil), ts.stall...)
	for i := range ts.stall {
		ts.stall[i] = timeseries.StallTree{}
	}
	return w
}

// tsCacheSample deltas one cache level into a CacheSample and advances
// its baselines.
func tsCacheSample(level string, cc *cache.Cache, prevP *analyzer.Params, prevS *cache.Stats, occ *uint64) timeseries.CacheSample {
	curP := cc.Analyzer().Snapshot()
	curS := cc.Stats()
	dp := curP.Sub(*prevP)
	ds := curS.Sub(*prevS)
	*prevP, *prevS = curP, curS
	s := timeseries.CacheSample{
		Level:            level,
		Params:           dp,
		Hits:             ds.Hits,
		Misses:           ds.Misses,
		PrimaryMisses:    ds.PrimaryMisses,
		MSHRWaits:        ds.MSHRWaits,
		Rejected:         ds.Rejected,
		MSHROccupancySum: *occ,
	}
	*occ = 0
	return s
}
