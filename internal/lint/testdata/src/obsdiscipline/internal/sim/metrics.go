// Package sim is the obsdiscipline fixture's call-site case: metric and
// event naming plus the no-goroutine rule.
package sim

import (
	"fmt"

	"lpm/internal/obs"
	"lpm/internal/obs/timeseries"
)

// Core owns per-instance metric handles.
type Core struct {
	id  int
	reg *obs.Registry
}

// Wire registers this core's metrics.
func (c *Core) Wire(reg *obs.Registry, tr *obs.Tracer) {
	prefix := fmt.Sprintf("cpu.%d", c.id)
	reg.Counter(prefix + ".instructions")
	reg.Gauge("sim.cycles")
	reg.Histogram(prefix)                           // want "metric name passed to Registry.Histogram"
	reg.Counter(fmt.Sprintf("cpu.%d.stalls", c.id)) // want "metric name passed to Registry.Counter"
	tr.Emit(1, "miss")
	tr.Emit(1, prefix) // want "event name passed to Tracer.Emit"
	c.reg = reg
}

// WireProbes registers this core's time-series probes.
func (c *Core) WireProbes(s *timeseries.Sampler) {
	prefix := fmt.Sprintf("cpu.%d", c.id)
	s.Track(prefix+".rob_occupancy", func() float64 { return 0 })
	s.Track("dram.queue_depth", func() float64 { return 0 })
	s.Track(prefix, func() float64 { return 0 })                         // want "probe name passed to Sampler.Track"
	s.Track(fmt.Sprintf("cpu.%d.iw", c.id), func() float64 { return 0 }) // want "probe name passed to Sampler.Track"
}

// Spawn forks inside the simulation substrate.
func (c *Core) Spawn() {
	go func() { c.id++ }() // want "goroutine spawned inside the simulation substrate"
}
