package fabric

// Shard flag plumbing shared by the CLIs that can act as coordinators
// (lpmexplore, lpmreport): one flag family, one activation path, so
// every driver shards identically.

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"lpm/internal/obs"
)

// ShardFlags holds the parsed -shard* flag family.
type ShardFlags struct {
	// Addr is the coordinator listen address; empty disables sharding
	// entirely (the default — runs stay purely in-process).
	Addr string
	// Min makes the run wait for this many workers before simulating.
	Min int
	// InFlight is the per-worker in-flight granule budget.
	InFlight int
	// Straggle is the age after which a held granule is duplicated
	// onto an idle worker; negative disables straggler re-issue.
	Straggle time.Duration
	// AddrFile, when set, receives the bound listen address — how
	// scripts using ":0" learn the port to hand their workers.
	AddrFile string
	// Heartbeat is the worker ping cadence (0 = default 250ms,
	// negative = heartbeats and health classification off).
	Heartbeat time.Duration
	// Journal is the path of the coordinator scheduling journal; empty
	// disables journaling.
	Journal string
	// Validate samples cross-validation: every Kth granule runs
	// redundantly on two workers. 0 disables.
	Validate int
	// Seed seeds the retry policy's deterministic jitter.
	Seed uint64
	// Fallback is how long the coordinator waits with pending work and
	// zero workers before degrading to in-process execution; 0 off.
	Fallback time.Duration
}

// BindShardFlags registers the -shard* flags on fs.
func BindShardFlags(fs *flag.FlagSet) *ShardFlags {
	sf := &ShardFlags{}
	fs.StringVar(&sf.Addr, "shard", "", "listen address for sweep-fabric workers (e.g. 127.0.0.1:0); empty = no sharding")
	fs.IntVar(&sf.Min, "shard-min", 1, "wait for this many workers before starting (with -shard)")
	fs.IntVar(&sf.InFlight, "shard-inflight", 0, "per-worker in-flight granule budget (0 = default 2)")
	fs.DurationVar(&sf.Straggle, "shard-straggle", 0, "re-issue granules held longer than this to idle workers (0 = default 30s, negative = off)")
	fs.StringVar(&sf.AddrFile, "shard-addr-file", "", "write the bound coordinator address to this file (with -shard)")
	fs.DurationVar(&sf.Heartbeat, "shard-heartbeat", 0, "worker ping cadence (0 = default 250ms, negative = off)")
	fs.StringVar(&sf.Journal, "shard-journal", "", "append scheduling decisions to this journal; a pre-existing journal is replayed on start")
	fs.IntVar(&sf.Validate, "shard-validate", 0, "cross-validate every Kth granule on two workers (0 = off)")
	fs.Uint64Var(&sf.Seed, "shard-seed", 0, "seed for the deterministic retry-jitter stream")
	fs.DurationVar(&sf.Fallback, "shard-fallback", 0, "degrade to in-process execution after this long with no workers (0 = off)")
	return sf
}

// Start brings sharding up per the flags: starts the coordinator,
// publishes its address, activates it process-wide, and waits for the
// minimum worker count. The returned stop func tears all of it down;
// with sharding disabled it is a cheap no-op and the returned
// coordinator is nil. log receives structured coordinator diagnostics
// (nil discards them); reg, when non-nil, receives the coordinator's
// fabric telemetry for fleet exposition.
func (sf *ShardFlags) Start(ctx context.Context, log *slog.Logger, reg *obs.Registry) (stop func(), c *Coordinator, err error) {
	if sf.Addr == "" {
		return func() {}, nil, nil
	}
	c, err = Listen(sf.Addr, Options{
		InFlight:           sf.InFlight,
		StraggleAfter:      sf.Straggle,
		Heartbeat:          sf.Heartbeat,
		JournalPath:        sf.Journal,
		ValidateEvery:      sf.Validate,
		Seed:               sf.Seed,
		LocalFallbackAfter: sf.Fallback,
		Log:                log,
		Obs:                reg,
	})
	if err != nil {
		return nil, nil, err
	}
	if sf.AddrFile != "" {
		if err := os.WriteFile(sf.AddrFile, []byte(c.Addr()+"\n"), 0o644); err != nil {
			_ = c.Close()
			return nil, nil, fmt.Errorf("fabric: publish coordinator address: %w", err)
		}
	}
	if log != nil {
		log.Info("fabric: coordinator listening", "addr", c.Addr())
	}
	restore := Activate(c)
	if sf.Min > 0 {
		if err := c.WaitWorkers(ctx, sf.Min); err != nil {
			restore()
			_ = c.Close()
			return nil, nil, err
		}
	}
	return func() {
		restore()
		_ = c.Close()
	}, c, nil
}
