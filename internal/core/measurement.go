package core

import (
	"fmt"

	"lpm/internal/obs"
	"lpm/internal/obs/timeseries"
)

// Measurement is one interval's worth of LPM model inputs for a
// three-layer hierarchy (L1, LLC=L2, main memory), as produced by the
// C-AMAT analyzers plus the core counters. All quantities are averages
// over the interval.
type Measurement struct {
	// CPIexe is computation cycles per instruction under a perfect cache
	// (Eq. 5).
	CPIexe float64
	// Fmem is the fraction of instructions accessing memory.
	Fmem float64
	// OverlapRatio is the computation/memory overlap ratio of Eq. (8).
	OverlapRatio float64

	// CAMAT1/2/3 are the layers' concurrent average access times; layer 3
	// (main memory) is 1/APC_3.
	CAMAT1, CAMAT2, CAMAT3 float64
	// MR1, MR2 are conventional miss rates of L1 and L2.
	MR1, MR2 float64
	// PMR1 is L1's pure miss rate.
	PMR1 float64
	// H1, CH1 are L1's hit time and hit concurrency.
	H1, CH1 float64
	// PAMP1, AMP1, Cm1, CM1 are L1's pure/conventional miss penalties and
	// concurrencies, the η₁ ingredients.
	PAMP1, AMP1, Cm1, CM1 float64

	// IPC and MeasuredStall (memory stall cycles per instruction) are
	// informational simulator ground truth, not model inputs.
	IPC           float64
	MeasuredStall float64

	// Obs is the per-layer metrics snapshot for the measurement window —
	// nil unless the chip ran with observability enabled (chip.EnableObs).
	// It is informational and never feeds the model equations.
	Obs *obs.Snapshot `json:"Obs,omitempty"`

	// Timeline is the cycle-windowed time series for the measurement
	// window — nil unless the chip ran with a sampler attached
	// (chip.EnableTimeseries). Like Obs, it is informational.
	Timeline *timeseries.Series `json:"Timeline,omitempty"`
}

// LPMR1 evaluates Eq. (9): the request/supply mismatch between the
// computing units and L1.
func (m Measurement) LPMR1() float64 {
	if m.CPIexe <= 0 {
		return 0
	}
	return m.CAMAT1 * m.Fmem / m.CPIexe
}

// LPMR2 evaluates Eq. (10): the mismatch between L1 and the LLC.
func (m Measurement) LPMR2() float64 {
	if m.CPIexe <= 0 {
		return 0
	}
	return m.CAMAT2 * m.Fmem * m.MR1 / m.CPIexe
}

// LPMR3 evaluates Eq. (11): the mismatch between the LLC and main memory.
func (m Measurement) LPMR3() float64 {
	if m.CPIexe <= 0 {
		return 0
	}
	return m.CAMAT3 * m.Fmem * m.MR1 * m.MR2 / m.CPIexe
}

// Eta1 returns η₁ of Eq. (4) from the measured L1 parameters.
func (m Measurement) Eta1() float64 { return Eta1(m.PAMP1, m.AMP1, m.Cm1, m.CM1) }

// Eta returns the η of Eq. (13): η₁ · pMR₁/MR₁, the combined concurrency
// and locality effectiveness factor. Small η means mismatch at L2 barely
// reaches the processor.
func (m Measurement) Eta() float64 {
	if m.MR1 <= 0 {
		return 0
	}
	return m.Eta1() * m.PMR1 / m.MR1
}

// StallEq7 predicts data stall time per instruction via Eq. (7):
// f_mem · C-AMAT₁ · (1 − overlapRatio).
func (m Measurement) StallEq7() float64 {
	return m.Fmem * m.CAMAT1 * (1 - m.OverlapRatio)
}

// StallEq12 predicts data stall time per instruction via Eq. (12):
// CPI_exe · (1 − overlapRatio) · LPMR₁. Algebraically identical to
// Eq. (7).
func (m Measurement) StallEq12() float64 {
	return m.CPIexe * (1 - m.OverlapRatio) * m.LPMR1()
}

// StallEq13 predicts data stall time per instruction via Eq. (13):
// (H₁·f_mem/C_H₁ + CPI_exe·η·LPMR₂) · (1 − overlapRatio), expressing the
// stall in terms of the L2-layer mismatch.
func (m Measurement) StallEq13() float64 {
	ch1 := m.CH1
	if ch1 <= 0 {
		ch1 = 1
	}
	return (m.H1*m.Fmem/ch1 + m.CPIexe*m.Eta()*m.LPMR2()) * (1 - m.OverlapRatio)
}

// T1 returns the LPMR₁ threshold of Eq. (14) for a data-stall target of
// deltaPct percent of pure computing time: Δ% / (1 − overlapRatio).
func (m Measurement) T1(deltaPct float64) float64 {
	denom := 1 - m.OverlapRatio
	if denom <= 0 {
		denom = 1e-9
	}
	return (deltaPct / 100) / denom
}

// T2 returns the LPMR₂ threshold of Eq. (15):
// (1/η) · (Δ%/(1−overlap) − H₁·f_mem/(C_H₁·CPI_exe)).
// A non-positive or unbounded threshold (η≈0, meaning L2 mismatch cannot
// reach the processor) is reported as +Inf-like large value via ok=false;
// callers treat !ok as "always satisfied".
func (m Measurement) T2(deltaPct float64) (t2 float64, ok bool) {
	eta := m.Eta()
	if eta <= 1e-12 {
		return 0, false
	}
	ch1 := m.CH1
	if ch1 <= 0 {
		ch1 = 1
	}
	cpi := m.CPIexe
	if cpi <= 0 {
		return 0, false
	}
	denom := 1 - m.OverlapRatio
	if denom <= 0 {
		denom = 1e-9
	}
	return (1 / eta) * (deltaPct/100/denom - m.H1*m.Fmem/(ch1*cpi)), true
}

// String renders the headline quantities.
func (m Measurement) String() string {
	return fmt.Sprintf(
		"LPMR1=%.3f LPMR2=%.3f LPMR3=%.3f eta=%.4f stall/instr(model)=%.3f (measured)=%.3f IPC=%.3f",
		m.LPMR1(), m.LPMR2(), m.LPMR3(), m.Eta(), m.StallEq12(), m.MeasuredStall, m.IPC)
}
