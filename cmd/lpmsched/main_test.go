package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// One end-to-end smoke run of the scheduling case study at a tiny
// budget: profiling table, scheduler evaluations, and the NUCA-SA
// placement listing all have to appear.

func TestRunSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-profinstr", "500", "-window", "3000", "-warmup", "1000"}
	if err := run(context.Background(), args, &out, &errb); err != nil {
		t.Fatalf("run: %v\n%s", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"profiling standalone APC1", "410.bwaves", "Hsp=", "NUCA-SA", "core "} {
		if !strings.Contains(s, want) {
			t.Fatalf("output lacks %q:\n%s", want, s)
		}
	}
	if n := strings.Count(s, "Hsp="); n != 4 {
		t.Fatalf("scheduler evaluations = %d, want 4", n)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-nosuchflag"}, &out, &errb); err == nil {
		t.Fatal("unknown flag did not error")
	}
}
