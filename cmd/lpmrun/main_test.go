package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lpm/internal/ctrl"
	"lpm/internal/obs/timeseries"
)

// The smoke tests drive run(context.Background(), ) in-process at tiny simulation budgets:
// they pin the CLI contract (flags parse, reports print, errors return)
// without the cost of a real measurement run.

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("run -list: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "403.gcc") {
		t.Fatalf("-list output lacks built-in workloads:\n%s", out.String())
	}
}

func TestRunReport(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-workload", "403.gcc", "-instructions", "2000", "-warmup", "3000"}
	if err := run(context.Background(), args, &out, &errb); err != nil {
		t.Fatalf("run: %v\n%s", err, errb.String())
	}
	for _, want := range []string{"workload   403.gcc", "LPMR1=", "data stall per instruction"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report lacks %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "metrics (snapshot") {
		t.Fatalf("metrics printed without -metrics:\n%s", out.String())
	}
}

func TestRunMetrics(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-workload", "403.gcc", "-instructions", "2000", "-warmup", "3000", "-metrics"}
	if err := run(context.Background(), args, &out, &errb); err != nil {
		t.Fatalf("run -metrics: %v\n%s", err, errb.String())
	}
	for _, want := range []string{"metrics (snapshot v", "l1.0.accesses", "cpu.0.rob_occupancy", "dram.reads"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-metrics output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-workload", "no.such"}, &out, &errb); err == nil {
		t.Fatal("unknown workload did not error")
	}
	if err := run(context.Background(), []string{"-nosuchflag"}, &out, &errb); err == nil {
		t.Fatal("unknown flag did not error")
	}
}

func TestRunTimelineSummary(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-workload", "403.gcc", "-instructions", "2000", "-warmup", "3000",
		"-timeline", "-tswindow", "512"}
	if err := run(context.Background(), args, &out, &errb); err != nil {
		t.Fatalf("run -timeline: %v\n%s", err, errb.String())
	}
	for _, want := range []string{"timeline", "windows (width=512", "lpmr1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-timeline output lacks %q:\n%s", want, out.String())
		}
	}
}

// TestServeEndpoints drives the exposition handler the way -serve wires
// it, including concurrent scrapes while windows are still being
// published — the race-detector CI job leans on this test.
func TestServeEndpoints(t *testing.T) {
	live := timeseries.NewLive()
	srv := httptest.NewServer(ctrl.NewExpoMux(live))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// Before any window: both endpoints respond, /timeline is valid JSON.
	body, ctype := get("/timeline")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/timeline content type %q", ctype)
	}
	var doc ctrl.TimelineDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("empty /timeline not JSON: %v\n%s", err, body)
	}
	if doc.Schema != ctrl.TimelineSchema || doc.Done {
		t.Fatalf("empty timeline doc: %+v", doc)
	}

	// Publish windows from a "simulation" goroutine while scraping.
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for i := 0; i < 50; i++ {
			w := timeseries.Window{Index: i, Start: uint64(i * 100), End: uint64(i*100 + 100)}
			w.Derived.LPMR1 = 1 + float64(i)
			live.Publish(w)
		}
		live.Finish()
	}()
	for i := 0; i < 20; i++ {
		get("/metrics")
		get("/timeline")
	}
	<-stop

	body, ctype = get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE lpm_timeline_lpmr1 gauge",
		"lpm_timeline_lpmr1 50",
		"lpm_timeline_stall_cycles{bucket=\"busy\"}",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, body)
		}
	}

	body, _ = get("/timeline")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/timeline not JSON: %v", err)
	}
	if !doc.Done || len(doc.Series.Windows) != 50 {
		t.Fatalf("final timeline doc: done=%v windows=%d", doc.Done, len(doc.Series.Windows))
	}
}

// TestRunServeMidRun starts a real -serve run and scrapes it while the
// simulation executes, pinning the acceptance criterion end to end.
func TestRunServeMidRun(t *testing.T) {
	out := &syncWriter{buf: &bytes.Buffer{}}
	var errb bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), []string{"-workload", "429.mcf", "-instructions", "20000",
			"-warmup", "40000", "-serve", "127.0.0.1:0", "-serve-hold", "2s",
			"-tswindow", "256"}, out, &errb)
	}()

	// Wait for the server address to appear on stdout.
	var addr string
	for i := 0; i < 200 && addr == ""; i++ {
		time.Sleep(10 * time.Millisecond)
		for _, line := range strings.Split(out.string(), "\n") {
			if rest, ok := strings.CutPrefix(line, "serving /metrics and /timeline on http://"); ok {
				addr = strings.TrimSpace(rest)
			}
		}
	}
	if addr == "" {
		t.Fatalf("server address never printed:\n%s", out.string())
	}

	// Scrape until a window shows up (mid-run or during the hold).
	deadline := time.Now().Add(5 * time.Second)
	seen := false
	for time.Now().Before(deadline) && !seen {
		resp, err := http.Get("http://" + addr + "/timeline")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		var doc ctrl.TimelineDoc
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("/timeline not JSON: %v", err)
		}
		if doc.Schema != ctrl.TimelineSchema {
			t.Fatalf("/timeline schema %q", doc.Schema)
		}
		seen = len(doc.Series.Windows) > 0
	}
	if !seen {
		t.Fatal("no timeline windows observed over 5s of scraping")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	promText, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(promText), "lpm_timeline_lpmr1") {
		t.Fatalf("/metrics lacks timeline gauges:\n%s", promText)
	}
	if err := <-done; err != nil {
		t.Fatalf("run -serve: %v\n%s", err, errb.String())
	}
}

// syncWriter makes a bytes.Buffer safe to share between the run(context.Background(), )
// goroutine and the test's polling reads.
type syncWriter struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) string() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}
