package lint

// Content-keyed load cache. Loading is by far the dominant cost of a
// lint run — the stdlib source importer re-type-checks every imported
// standard package — so the engine caches each package's parse +
// type-check + fact results under a key derived from its file contents
// and its dependencies' keys, using the single-flight memo from
// internal/parallel (the same pattern the experiment drivers use for
// simulation results). A no-change re-run hits the cache for every
// package and pays only file hashing and an imports-only parse;
// editing one file invalidates exactly that package and its dependents.
//
// The cache is process-global: the file set must outlive any cached
// Package (positions resolve through it), and the source importer's
// internal stdlib cache is the bulk of the warm-run win.

import (
	"crypto/sha256"
	"encoding/hex"
	"go/importer"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"lpm/internal/parallel"
)

// loadState is the process-global load cache. mu serialises
// type-checking: the stdlib source importer and go/types checker are
// shared, and serial checking keeps the dependency order sound while
// concurrent Run calls (the fixture tests) still share every cache hit.
type loadState struct {
	mu    sync.Mutex
	fset  *token.FileSet
	std   types.Importer
	pkgs  *parallel.Memo[*Package]
	hits  int64
	loads int64
}

var (
	cacheMu   sync.Mutex
	loadCache *loadState
)

func cacheState() *loadState {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if loadCache == nil {
		loadCache = newLoadState()
	}
	return loadCache
}

func newLoadState() *loadState {
	fset := token.NewFileSet()
	return &loadState{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: parallel.NewMemo[*Package](),
	}
}

// resetLoadCacheForTest discards the global cache so a test can measure
// a genuinely cold load. Runs holding Modules from the old cache stay
// valid: their packages keep referencing the old file set.
func resetLoadCacheForTest() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	loadCache = newLoadState()
}

// cacheCounters reports (hits, loads) for the warm-speedup test.
func (c *loadState) counters() (hits, loads int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.loads
}

// contentKey fingerprints one package: module identity, build tags,
// every file's name and bytes, and the keys of its module-internal
// dependencies (so a change anywhere below invalidates dependents).
func contentKey(modPath, rel string, tags []string, files []sourceFile, depKeys []string) string {
	h := sha256.New()
	w := func(parts ...string) {
		for _, s := range parts {
			h.Write([]byte(s))
			h.Write([]byte{0})
		}
	}
	w("lint-pkg/v1", modPath, rel)
	sorted := append([]string(nil), tags...)
	sort.Strings(sorted)
	w(sorted...)
	for _, f := range files {
		w(f.name)
		h.Write(f.src)
		h.Write([]byte{0})
	}
	w(depKeys...)
	return hex.EncodeToString(h.Sum(nil))
}

// lockedImporter resolves module-internal paths to the already-loaded
// dependencies and everything else through the shared source importer.
type lockedImporter struct {
	modPath string
	deps    map[string]*Package
	std     types.Importer
}

func (m *lockedImporter) Import(path string) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		if p, ok := m.deps[path]; ok {
			return p.Types, nil
		}
	}
	return m.std.Import(path)
}
