package lpm

import (
	"fmt"
	"math"
	"sort"

	"lpm/internal/analyzer"
	"lpm/internal/core"
	"lpm/internal/explore"
	"lpm/internal/interval"
	"lpm/internal/parallel"
	"lpm/internal/sched"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

// This file holds the experiment harnesses that regenerate every table
// and figure of the paper (see DESIGN.md §3 for the index). Each
// experiment has paper-reported reference values attached so reports can
// print paper-vs-measured side by side.

// Scale trades fidelity for runtime in the simulation-backed experiments.
type Scale struct {
	// Warmup and Window are per-run instruction budgets for single-core
	// experiments (cycles for the multiprogram window).
	Warmup, Window uint64
}

// FullScale is the default used by cmd/lpmreport and the benchmarks.
func FullScale() Scale { return Scale{Warmup: 250000, Window: 30000} }

// QuickScale is a reduced budget for tests and smoke runs.
func QuickScale() Scale { return Scale{Warmup: 140000, Window: 15000} }

// ---------------------------------------------------------------------
// E1 — Fig. 1: the C-AMAT worked example.

// Fig1Paper holds the values the paper derives from Fig. 1.
type Fig1Paper struct {
	CAMAT, AMAT, CH, CM, PAMP, PMR float64
}

// Fig1Reference returns the paper's Fig. 1 numbers.
func Fig1Reference() Fig1Paper {
	return Fig1Paper{CAMAT: 1.6, AMAT: 3.8, CH: 2.5, CM: 1, PAMP: 2, PMR: 0.2}
}

// Fig1 replays the exact five-access schedule of the paper's Fig. 1
// through a C-AMAT analyzer and returns the measured layer parameters.
// The returned values must match Fig1Reference exactly.
func Fig1() LayerParams {
	a := analyzer.New("L1")
	type ev struct{ start, missAt, done uint64 }
	accs := []ev{
		{start: 1, done: 4},
		{start: 1, done: 4},
		{start: 3, missAt: 6, done: 9},
		{start: 3, missAt: 6, done: 7},
		{start: 4, done: 7},
	}
	recs := make([]*analyzer.Access, len(accs))
	for t := uint64(1); t <= 8; t++ {
		for i, e := range accs {
			if e.missAt == t {
				a.ToMiss(recs[i], t)
			}
			if e.done == t {
				a.Done(recs[i], t)
			}
		}
		for i, e := range accs {
			if e.start == t {
				recs[i] = a.Start(t)
			}
		}
		a.Tick()
	}
	a.Done(recs[2], 9)
	return a.Snapshot()
}

// ---------------------------------------------------------------------
// E2/E3 — Table I and case study I.

// Table1Row is one configuration row of Table I.
type Table1Row struct {
	// Name is the configuration label A..E.
	Name string
	// Point is the hardware configuration.
	Point DesignPoint
	// M is the measured LPM state.
	M Measurement
	// PaperLPMR holds the paper's reported LPMR1/2/3 for the row.
	PaperLPMR [3]float64
}

// table1Paper are the LPMR values of the paper's Table I.
var table1Paper = map[string][3]float64{
	"A": {8.1, 9.6, 6.4},
	"B": {6.2, 9.3, 8.1},
	"C": {2.1, 3.1, 5.8},
	"D": {1.2, 1.6, 2.3},
	"E": {1.4, 1.9, 2.6},
}

// Table1 evaluates the five Table I configurations on the bwaves-like
// workload and returns the rows in order A..E. The five simulations are
// independent (one target, generator, and chip each), so they run as one
// parallel batch.
func Table1(s Scale) []Table1Row {
	return table1(s, false)
}

// Table1Observed is Table1 with per-layer observability enabled: every
// row's Measurement carries an obs.Snapshot of the measurement window.
func Table1Observed(s Scale) []Table1Row {
	return table1(s, true)
}

func table1(s Scale, observe bool) []Table1Row {
	cfgs := explore.TableConfigs()
	names := []string{"A", "B", "C", "D", "E"}
	rows, err := parallel.Map(names, func(n string) (Table1Row, error) {
		tgt := explore.NewHardwareTarget(explore.DefaultSpace(), cfgs[n], trace.MustProfile("410.bwaves"))
		tgt.Warmup = s.Warmup
		tgt.Instructions = s.Window
		tgt.Observe = observe
		return Table1Row{
			Name:      n,
			Point:     cfgs[n],
			M:         tgt.Measure(),
			PaperLPMR: table1Paper[n],
		}, nil
	})
	if err != nil {
		// The jobs themselves never fail; Map only errors on a panic,
		// which the serial loop would also have raised.
		panic(err)
	}
	return rows
}

// TimelineRow couples one Table I configuration with its cycle-windowed
// time series over the measurement interval.
type TimelineRow struct {
	// Name is the configuration label.
	Name string
	// Point is the hardware configuration.
	Point DesignPoint
	// M is the measurement; M.Timeline carries the windowed series.
	M Measurement
}

// TimelineStudy measures the mismatched (A) and matched (E) ends of the
// Table I spectrum with the cycle-windowed sampler attached, so reports
// carry per-window C-AMAT/LPMR timelines showing *when* the mismatch
// occurs, not just its average. The two simulations run as one parallel
// batch.
func TimelineStudy(s Scale) []TimelineRow {
	cfgs := explore.TableConfigs()
	names := []string{"A", "E"}
	rows, err := parallel.Map(names, func(n string) (TimelineRow, error) {
		tgt := explore.NewHardwareTarget(explore.DefaultSpace(), cfgs[n], trace.MustProfile("410.bwaves"))
		tgt.Warmup = s.Warmup
		tgt.Instructions = s.Window
		tgt.Timeline = true
		return TimelineRow{Name: n, Point: cfgs[n], M: tgt.Measure()}, nil
	})
	if err != nil {
		// As in table1: jobs never fail, Map only surfaces panics.
		panic(err)
	}
	return rows
}

// CaseStudyIResult summarises an LPM-guided design space exploration.
type CaseStudyIResult struct {
	// Algorithm is the Fig. 3 run trace.
	Algorithm Result
	// Final is the configuration the walk ended on.
	Final DesignPoint
	// Evaluations counts simulated points — versus the 10^6-point space.
	Evaluations int
	// SpaceSize is the full design space size.
	SpaceSize int
}

// newCaseStudyTarget returns the case study I hardware target: Table I's
// configuration A over the default space on the bwaves-like workload.
func newCaseStudyTarget(s Scale) *explore.HardwareTarget {
	tgt := explore.NewHardwareTarget(explore.DefaultSpace(), explore.TableConfigs()["A"], trace.MustProfile("410.bwaves"))
	tgt.Warmup = s.Warmup
	tgt.Instructions = s.Window
	return tgt
}

// caseStudyConfig is the algorithm parameterisation of case study I.
func caseStudyConfig(grain Grain) core.AlgorithmConfig {
	return core.AlgorithmConfig{Grain: grain, SlackFrac: 0.5, MaxSteps: 32}
}

// CaseStudyI runs the LPM algorithm from Table I's configuration A over
// the default design space on the bwaves-like workload.
func CaseStudyI(grain Grain, s Scale) CaseStudyIResult {
	tgt := newCaseStudyTarget(s)
	res, final := tgt.RunAlgorithm(caseStudyConfig(grain))
	return CaseStudyIResult{
		Algorithm:   res,
		Final:       final,
		Evaluations: tgt.Evaluations(),
		SpaceSize:   explore.DefaultSpace().Size(),
	}
}

// ---------------------------------------------------------------------
// E4/E5 — Fig. 6 and Fig. 7: APC1/APC2 vs private L1 size.

// Fig67Result carries the per-workload, per-size profiling data.
type Fig67Result struct {
	// Table is the measured APC1/APC2/IPC data.
	Table *sched.ProfileTable
}

// Fig67 profiles every built-in workload at the four NUCA L1 sizes.
func Fig67(s Scale) (Fig67Result, error) {
	tbl, err := sched.BuildProfileTable(trace.ProfileNames(), chip.NUCAGroupSizes[:],
		sched.ProfileOptions{Instructions: s.Window, Warmup: s.Warmup / 2})
	if err != nil {
		return Fig67Result{}, err
	}
	return Fig67Result{Table: tbl}, nil
}

// ---------------------------------------------------------------------
// E6 — Fig. 8: Hsp under four scheduling policies.

// Fig8Row is one bar of Fig. 8.
type Fig8Row struct {
	// Scheduler is the policy name.
	Scheduler string
	// Hsp is the measured harmonic weighted speedup.
	Hsp float64
	// PaperHsp is the paper's reported value.
	PaperHsp float64
}

// fig8Paper are the paper's Fig. 8 values.
var fig8Paper = map[string]float64{
	"Random":      0.7986,
	"RoundRobin":  0.8192,
	"NUCA-SA(cg)": 0.8742,
	"NUCA-SA(fg)": 0.9106,
}

// Fig8 evaluates the four policies of Fig. 8 (plus a PIE-like
// related-work baseline) on the sixteen built-in workloads over the
// Fig. 5 NUCA chip. The profiling and evaluation windows are pinned to
// the repository's validated configuration rather than derived from s:
// the scheduler ranking is sensitive to the measurement protocol (see
// EXPERIMENTS.md), so the harness always reports the deterministic,
// test-covered setting.
func Fig8(s Scale) ([]Fig8Row, error) {
	_ = s
	names := trace.ProfileNames()
	sizes := chip.NUCAGroupSizes[:]
	tbl, err := sched.BuildProfileTable(names, sizes,
		sched.ProfileOptions{Instructions: 10000, Warmup: 25000})
	if err != nil {
		return nil, err
	}
	opt := sched.EvalOptions{WindowCycles: 80000, WarmupCycles: 40000}
	alone, err := sched.AloneIPCs(names, sizes, opt)
	if err != nil {
		return nil, err
	}
	opt.AloneIPC = alone
	policies := []sched.Scheduler{
		sched.Random{Seed: 1},
		sched.RoundRobin{},
		sched.NUCASA{Table: tbl, TolFrac: 0.10},
		sched.NUCASA{Table: tbl, TolFrac: 0.01},
		sched.PIE{Table: tbl},
	}
	// The per-policy shared runs are independent 16-core simulations;
	// fan them out. The profile table and alone-IPC slice are read-only.
	return parallel.Map(policies, func(p sched.Scheduler) (Fig8Row, error) {
		ev, err := sched.Evaluate(p, names, sizes, opt)
		if err != nil {
			return Fig8Row{}, err
		}
		return Fig8Row{Scheduler: ev.Scheduler, Hsp: ev.Hsp, PaperHsp: fig8Paper[ev.Scheduler]}, nil
	})
}

// ---------------------------------------------------------------------
// E7 — the interval/perception study.

// IntervalRow is one sampling scenario's outcome.
type IntervalRow struct {
	// Scenario names the configuration.
	Scenario string
	// Analytic is the closed-form perception rate; Simulated the Monte
	// Carlo estimate; Paper the paper's reported rate.
	Analytic, Simulated, Paper float64
}

// IntervalStudy evaluates the three scenarios the paper reports.
func IntervalStudy(samples int) []IntervalRow {
	if samples <= 0 {
		samples = 200000
	}
	paper := []float64{0.96, 0.89, 0.73}
	prof := interval.DefaultProfile()
	type job struct {
		i  int
		sc interval.Scenario
	}
	jobs := make([]job, 0, 3)
	for i, sc := range interval.PaperScenarios() {
		jobs = append(jobs, job{i: i, sc: sc})
	}
	// Each scenario's Monte Carlo run is seeded independently.
	rows, err := parallel.Map(jobs, func(j job) (IntervalRow, error) {
		return IntervalRow{
			Scenario:  j.sc.Name,
			Analytic:  interval.PerceptionRate(prof, j.sc),
			Simulated: interval.Simulate(prof, j.sc, samples, 42).Rate(),
			Paper:     paper[j.i],
		}, nil
	})
	if err != nil {
		panic(err)
	}
	return rows
}

// ---------------------------------------------------------------------
// E8 — model identities on live measurements.

// IdentityReport compares model predictions against simulator ground
// truth for one workload.
type IdentityReport struct {
	// Workload is the profile name.
	Workload string
	// CAMATvsInvAPC is |C-AMAT - 1/APC| at L1 (Eq. 3). It is exact on a
	// drained layer; interval boundaries (accesses straddling the counter
	// reset) introduce a small residual.
	CAMATvsInvAPC float64
	// PMR1 is the L1 pure miss rate, for conditioning the recursion
	// check (meaningless on a nearly miss-free run).
	PMR1 float64
	// RecursionRelErr is the relative error of Eq. (4) with the measured
	// C-AMAT2 standing in for the model's effective lower-layer time.
	RecursionRelErr float64
	// StallModel and StallMeasured compare Eq. (12) with the simulator's
	// ROB-head stall accounting.
	StallModel, StallMeasured float64
}

// Identities runs the identity checks on a set of representative
// workloads.
func Identities(s Scale, workloads ...string) ([]IdentityReport, error) {
	if len(workloads) == 0 {
		workloads = []string{"401.bzip2", "403.gcc", "429.mcf", "410.bwaves"}
	}
	// One full single-core simulation per workload, all independent.
	return parallel.Map(workloads, func(name string) (IdentityReport, error) {
		prof, err := trace.ProfileByName(name)
		if err != nil {
			return IdentityReport{}, err
		}
		cfg := chip.SingleCore(name)
		gen := trace.NewSynthetic(prof)
		cpiExe := chip.MeasureCPIexe(cfg.Cores[0].CPU, gen, uint64(cfg.Cores[0].L1.HitLatency), s.Window)
		ch := chip.New(cfg)
		ch.RunUntilRetired(s.Warmup/2, (s.Warmup+s.Window)*400)
		ch.ResetCounters()
		ch.Run(s.Warmup/2+s.Window, (s.Warmup+s.Window)*400)
		m := ch.Measure(0, cpiExe)
		l1 := ch.Snapshot().Cores[0].L1

		rep := IdentityReport{
			Workload:      name,
			PMR1:          m.PMR1,
			StallModel:    m.StallEq12(),
			StallMeasured: m.MeasuredStall,
		}
		if apc := l1.APC(); apc > 0 {
			rep.CAMATvsInvAPC = math.Abs(l1.CAMAT() - 1/apc)
		}
		if m.CAMAT1 > 0 {
			rec := core.RecursiveCAMAT(m.H1, m.CH1, m.PMR1, m.Eta1(), m.CAMAT2)
			rep.RecursionRelErr = math.Abs(m.CAMAT1-rec) / m.CAMAT1
		}
		return rep, nil
	})
}

// SortedWorkloads returns the built-in workload names sorted, a helper
// for stable report output.
func SortedWorkloads() []string {
	names := trace.ProfileNames()
	sort.Strings(names)
	return names
}

// FormatLPMR renders a measurement's three LPMRs compactly.
func FormatLPMR(m Measurement) string {
	return fmt.Sprintf("LPMR1=%.2f LPMR2=%.2f LPMR3=%.2f", m.LPMR1(), m.LPMR2(), m.LPMR3())
}
