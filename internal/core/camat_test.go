package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCAMATFig1Value(t *testing.T) {
	c := CAMAT{H: 3, CH: 2.5, PMR: 0.2, PAMP: 2, CM: 1}
	if got := c.Value(); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("C-AMAT = %v, want 1.6 (paper Fig. 1)", got)
	}
	if got := AMAT(3, 0.4, 2); math.Abs(got-3.8) > 1e-12 {
		t.Fatalf("AMAT = %v, want 3.8", got)
	}
}

func TestCAMATReducesToAMATWithoutConcurrency(t *testing.T) {
	// With C_H = C_M = 1 and pure == conventional misses, Eq. (2) is
	// Eq. (1).
	f := func(h, mr, amp float64) bool {
		h = math.Abs(h)
		mr = math.Mod(math.Abs(mr), 1)
		amp = math.Abs(amp)
		if h > 1e6 || amp > 1e6 {
			return true
		}
		c := CAMAT{H: h, CH: 1, PMR: mr, PAMP: amp, CM: 1}
		return math.Abs(c.Value()-AMAT(h, mr, amp)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCAMATZeroConcurrencyGuard(t *testing.T) {
	c := CAMAT{H: 2, CH: 0, PMR: 0.5, PAMP: 4, CM: 0}
	if v := c.Value(); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("value = %v", v)
	}
	if v := c.Value(); v != 2+0.5*4 {
		t.Fatalf("value = %v, want 4 (concurrency treated as 1)", v)
	}
}

func TestCAMATMonotonicInConcurrency(t *testing.T) {
	// Raising C_H or C_M can only lower C-AMAT.
	f := func(h, pmr, pamp, ch, cm, dch, dcm float64) bool {
		h, pamp = math.Abs(h), math.Abs(pamp)
		pmr = math.Mod(math.Abs(pmr), 1)
		ch, cm = 1+math.Mod(math.Abs(ch), 16), 1+math.Mod(math.Abs(cm), 16)
		dch, dcm = math.Mod(math.Abs(dch), 4), math.Mod(math.Abs(dcm), 4)
		if h > 1e6 || pamp > 1e6 {
			return true
		}
		base := CAMAT{H: h, CH: ch, PMR: pmr, PAMP: pamp, CM: cm}
		more := CAMAT{H: h, CH: ch + dch, PMR: pmr, PAMP: pamp, CM: cm + dcm}
		return more.Value() <= base.Value()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEta1Fig1(t *testing.T) {
	// Fig. 1: pAMP=2, AMP=2, C_m=4/3, C_M=1 -> η₁ = 4/3.
	got := Eta1(2, 2, 4.0/3.0, 1)
	if math.Abs(got-4.0/3.0) > 1e-12 {
		t.Fatalf("eta1 = %v", got)
	}
}

func TestEta1ZeroGuards(t *testing.T) {
	if Eta1(1, 0, 1, 1) != 0 {
		t.Fatal("zero AMP must yield 0")
	}
	if Eta1(1, 1, 1, 0) != 0 {
		t.Fatal("zero CM must yield 0")
	}
}

func TestRecursiveCAMATIdentity(t *testing.T) {
	// Eq. (4) is exact when C-AMAT₂ equals AMP₁/C_m₁ (the lower layer
	// serves the miss stream at its concurrent access time).
	f := func(h1, ch1, pmr1, pamp1, amp1, cm1c, cm1p float64) bool {
		abs := func(x float64) float64 { return math.Mod(math.Abs(x), 100) + 0.01 }
		h1, ch1 = abs(h1), abs(ch1)
		pmr1 = math.Mod(math.Abs(pmr1), 1)
		pamp1, amp1 = abs(pamp1), abs(amp1)
		cm1c, cm1p = abs(cm1c), abs(cm1p)
		direct := CAMAT{H: h1, CH: ch1, PMR: pmr1, PAMP: pamp1, CM: cm1p}.Value()
		eta1 := Eta1(pamp1, amp1, cm1c, cm1p)
		camat2 := amp1 / cm1c
		rec := RecursiveCAMAT(h1, ch1, pmr1, eta1, camat2)
		return math.Abs(direct-rec) < 1e-6*(1+direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringsNonEmpty(t *testing.T) {
	if (CAMAT{}).String() == "" {
		t.Fatal("empty CAMAT string")
	}
	if FineGrain.String() == "" || CoarseGrain.String() == "" {
		t.Fatal("empty grain string")
	}
	for _, c := range []Case{CaseBoth, CaseL1Only, CaseReduce, CaseDone, Case(9)} {
		if c.String() == "" {
			t.Fatal("empty case string")
		}
	}
}
