package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lpm/internal/obs"
)

// The smoke test drives the full record -> stat -> replay -> events
// pipeline in-process through run(context.Background(), ), in a temp dir.

func TestRecordStatReplayEvents(t *testing.T) {
	dir := t.TempDir()
	trc := filepath.Join(dir, "gcc.trc")

	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-record", trc, "-workload", "403.gcc", "-n", "3000"}, &out, &errb); err != nil {
		t.Fatalf("record: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "recorded 3000 instructions") {
		t.Fatalf("record output:\n%s", out.String())
	}

	out.Reset()
	if err := run(context.Background(), []string{"-stat", trc}, &out, &errb); err != nil {
		t.Fatalf("stat: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "instrs     3000") {
		t.Fatalf("stat output:\n%s", out.String())
	}

	// Replay with a Chrome-trace events file.
	events := filepath.Join(dir, "events.json")
	out.Reset()
	if err := run(context.Background(), []string{"-replay", trc, "-instructions", "2000", "-events", events}, &out, &errb); err != nil {
		t.Fatalf("replay: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "replayed") || !strings.Contains(out.String(), "events:") {
		t.Fatalf("replay output:\n%s", out.String())
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.Event       `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("events file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("replay emitted no trace events")
	}
	if doc.OtherData["schema"] != obs.TraceSchema {
		t.Fatalf("events schema = %q, want %q", doc.OtherData["schema"], obs.TraceSchema)
	}

	// A .jsonl path selects the line-delimited form.
	jsonl := filepath.Join(dir, "events.jsonl")
	out.Reset()
	if err := run(context.Background(), []string{"-replay", trc, "-instructions", "2000", "-events", jsonl}, &out, &errb); err != nil {
		t.Fatalf("replay jsonl: %v\n%s", err, errb.String())
	}
	data, err = os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(string(data), "\n")
	var hdr struct {
		Schema string `json:"schema"`
		Events int    `json:"events"`
	}
	if err := json.Unmarshal([]byte(first), &hdr); err != nil {
		t.Fatalf("jsonl header: %v", err)
	}
	if hdr.Schema != obs.TraceSchema || hdr.Events == 0 {
		t.Fatalf("jsonl header = %+v", hdr)
	}
}

func TestRunNoModeIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), nil, &out, &errb)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("no mode returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errb.String(), "Usage") {
		t.Fatalf("usage not printed:\n%s", errb.String())
	}
}

func TestRunMissingFileErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-stat", filepath.Join(t.TempDir(), "absent.trc")}, &out, &errb); err == nil {
		t.Fatal("stat of a missing file did not error")
	}
}
