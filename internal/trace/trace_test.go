package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Compute: "compute", Load: "load", Store: "store", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestKindIsMem(t *testing.T) {
	if Compute.IsMem() {
		t.Fatal("compute is not mem")
	}
	if !Load.IsMem() || !Store.IsMem() {
		t.Fatal("load/store are mem")
	}
}

func TestProfileNamesComplete(t *testing.T) {
	names := ProfileNames()
	if len(names) != 16 {
		t.Fatalf("expected 16 built-in profiles, got %d", len(names))
	}
	for _, want := range []string{"401.bzip2", "403.gcc", "429.mcf", "410.bwaves", "416.gamess", "433.milc"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing paper benchmark %s", want)
		}
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, n := range ProfileNames() {
		p := MustProfile(n)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("999.nope"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestMustProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustProfile("999.nope")
}

func TestProfileValidateCatchesBadFields(t *testing.T) {
	good := MustProfile("401.bzip2")
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.MemFrac = 1.5 },
		func(p *Profile) { p.MemFrac = -0.1 },
		func(p *Profile) { p.StoreFrac = 2 },
		func(p *Profile) { p.Footprint = 0 },
		func(p *Profile) { p.HotBytes = p.Footprint + 1 },
		func(p *Profile) { p.HotFrac = -1 },
		func(p *Profile) { p.SeqFrac = 1.1 },
		func(p *Profile) { p.ChaseFrac = -0.5 },
		func(p *Profile) { p.ExecLat = 0.5 },
		func(p *Profile) { p.BurstLen = -1 },
	}
	for i, mut := range mutations {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a := NewSynthetic(MustProfile("403.gcc"))
	b := NewSynthetic(MustProfile("403.gcc"))
	for i := 0; i < 5000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestSyntheticResetReproduces(t *testing.T) {
	g := NewSynthetic(MustProfile("429.mcf"))
	first := make([]Instr, 2000)
	for i := range first {
		first[i] = g.Next()
	}
	g.Reset()
	for i := range first {
		if got := g.Next(); got != first[i] {
			t.Fatalf("after Reset, instruction %d = %+v, want %+v", i, got, first[i])
		}
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	p := MustProfile("401.bzip2")
	p2 := p
	p2.Seed = 99
	a, b := NewSynthetic(p), NewSynthetic(p2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced nearly identical streams (%d/1000 same)", same)
	}
}

func TestSyntheticNamesDiffer(t *testing.T) {
	// Same numeric parameters, different names: streams must differ.
	p := MustProfile("401.bzip2")
	q := p
	q.Name = "401.bzip2-variant"
	a, b := NewSynthetic(p), NewSynthetic(q)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatal("name not folded into seed")
	}
}

func TestSyntheticMemFraction(t *testing.T) {
	for _, name := range ProfileNames() {
		p := MustProfile(name)
		g := NewSynthetic(p)
		const n = 200000
		mem := 0
		for i := 0; i < n; i++ {
			if g.Next().Kind.IsMem() {
				mem++
			}
		}
		frac := float64(mem) / n
		if math.Abs(frac-p.MemFrac) > 0.03 {
			t.Errorf("%s: memory fraction %.3f, profile says %.3f", name, frac, p.MemFrac)
		}
	}
}

func TestSyntheticStoreFraction(t *testing.T) {
	p := MustProfile("470.lbm")
	g := NewSynthetic(p)
	const n = 300000
	loads, stores := 0, 0
	for i := 0; i < n; i++ {
		switch g.Next().Kind {
		case Load:
			loads++
		case Store:
			stores++
		}
	}
	frac := float64(stores) / float64(loads+stores)
	if math.Abs(frac-p.StoreFrac) > 0.03 {
		t.Fatalf("store fraction %.3f, want ~%.3f", frac, p.StoreFrac)
	}
}

func TestSyntheticAddressesWithinFootprint(t *testing.T) {
	p := MustProfile("456.hmmer")
	g := NewSynthetic(p)
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Kind.IsMem() && in.Addr >= p.Footprint {
			t.Fatalf("address %#x outside footprint %#x", in.Addr, p.Footprint)
		}
	}
}

func TestSyntheticDepNeverExceedsIndex(t *testing.T) {
	g := NewSynthetic(MustProfile("471.omnetpp"))
	for i := uint64(0); i < 100000; i++ {
		in := g.Next()
		if uint64(in.Dep) > i {
			t.Fatalf("instruction %d has dep distance %d (reaches before stream start)", i, in.Dep)
		}
	}
}

func TestSyntheticChaseProducesDependentLoads(t *testing.T) {
	g := NewSynthetic(MustProfile("429.mcf"))
	depLoads := 0
	loads := 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Kind == Load {
			loads++
			if in.Dep != 0 {
				depLoads++
			}
		}
	}
	frac := float64(depLoads) / float64(loads)
	if frac < 0.3 {
		t.Fatalf("mcf dependent-load fraction %.3f, want >= 0.3 (pointer chasing)", frac)
	}

	// Streaming milc should have almost none.
	g2 := NewSynthetic(MustProfile("433.milc"))
	depLoads, loads = 0, 0
	for i := 0; i < 100000; i++ {
		in := g2.Next()
		if in.Kind == Load {
			loads++
			if in.Dep != 0 {
				depLoads++
			}
		}
	}
	if frac := float64(depLoads) / float64(loads); frac > 0.05 {
		t.Fatalf("milc dependent-load fraction %.3f, want < 0.05", frac)
	}
}

func TestSyntheticLocalityOrdering(t *testing.T) {
	// bzip2's hot working set is tiny; the fraction of accesses landing in
	// the first 4 KB must be far higher than gcc's.
	frac4k := func(name string) float64 {
		g := NewSynthetic(MustProfile(name))
		in4k, mem := 0, 0
		for i := 0; i < 300000; i++ {
			in := g.Next()
			if in.Kind.IsMem() {
				mem++
				if in.Addr < 4096 {
					in4k++
				}
			}
		}
		return float64(in4k) / float64(mem)
	}
	bzip := frac4k("401.bzip2")
	gcc := frac4k("403.gcc")
	if bzip < gcc+0.15 {
		t.Fatalf("bzip2 4KB locality %.3f not clearly above gcc %.3f", bzip, gcc)
	}
}

func TestSyntheticBurstPhases(t *testing.T) {
	p := MustProfile("410.bwaves")
	if p.BurstLen == 0 {
		t.Skip("bwaves profile no longer bursty")
	}
	g := NewSynthetic(p)
	// Measure memory fraction in windows; bursty streams should show high
	// variance across windows.
	const win = 500
	var fracs []float64
	for w := 0; w < 60; w++ {
		mem := 0
		for i := 0; i < win; i++ {
			if g.Next().Kind.IsMem() {
				mem++
			}
		}
		fracs = append(fracs, float64(mem)/win)
	}
	lo, hi := 1.0, 0.0
	for _, f := range fracs {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi-lo < 0.3 {
		t.Fatalf("burst variation %.3f too small (lo=%.2f hi=%.2f)", hi-lo, lo, hi)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g := NewSynthetic(MustProfile("482.sphinx3"))
	orig := make([]Instr, 5000)
	for i := range orig {
		orig[i] = g.Next()
	}
	g.Reset()
	var buf bytes.Buffer
	if err := Record(&buf, g, len(orig)); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "482.sphinx3" {
		t.Fatalf("name = %q", tr.Name())
	}
	for i := range orig {
		in, err := tr.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if in != orig[i] {
			t.Fatalf("instruction %d: got %+v want %+v", i, in, orig[i])
		}
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(kinds []uint8, addrs []uint64, deps []uint32, lats []uint8) bool {
		n := len(kinds)
		if n > len(addrs) {
			n = len(addrs)
		}
		if n > len(deps) {
			n = len(deps)
		}
		if n > len(lats) {
			n = len(lats)
		}
		if n == 0 {
			return true
		}
		orig := make([]Instr, n)
		for i := 0; i < n; i++ {
			in := Instr{Kind: Kind(kinds[i] % 3), Lat: 1}
			if in.Kind.IsMem() {
				in.Addr = addrs[i]
			}
			in.Dep = deps[i] % (1 << 30)
			if lats[i] > 0 {
				in.Lat = lats[i]
			}
			orig[i] = in
		}
		var buf bytes.Buffer
		tw, err := NewWriter(&buf, "prop")
		if err != nil {
			return false
		}
		for _, in := range orig {
			if err := tw.Write(in); err != nil {
				return false
			}
		}
		if err := tw.Flush(); err != nil {
			return false
		}
		tr, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			in, err := tr.Read()
			if err != nil || in != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE-------"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestReaderRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	g := NewSynthetic(MustProfile("444.namd"))
	if err := Record(&buf, g, 100); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := NewReader(bytes.NewReader(full[:4])); err == nil {
		t.Fatal("expected error on truncated header")
	}
}

func TestReplayerLoops(t *testing.T) {
	var buf bytes.Buffer
	g := NewSynthetic(MustProfile("444.namd"))
	if err := Record(&buf, g, 100); err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplayer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != 100 {
		t.Fatalf("len = %d", rp.Len())
	}
	first := make([]Instr, 100)
	for i := range first {
		first[i] = rp.Next()
	}
	// Second pass must repeat the first.
	for i := range first {
		if got := rp.Next(); got != first[i] {
			t.Fatalf("loop mismatch at %d", i)
		}
	}
	rp.Reset()
	if got := rp.Next(); got != first[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestReplayerRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplayer(&buf); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

func TestSequentialTraceCompression(t *testing.T) {
	// Delta encoding should make a sequential trace much smaller than
	// 8 bytes/address.
	p := MustProfile("462.libquantum")
	g := NewSynthetic(p)
	var buf bytes.Buffer
	const n = 10000
	if err := Record(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > n*6 {
		t.Fatalf("trace of %d instrs took %d bytes; delta encoding ineffective", n, buf.Len())
	}
}
