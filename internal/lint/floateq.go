package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// analyzerFloatEq flags == and != between floating-point model
// quantities (C-AMAT terms, IPC, LPMR, stall fractions). Those values
// come out of long dependent float pipelines, so exact equality is
// either vacuously true (same computation) or flaky; comparisons must
// go through a tolerance. Three idioms stay legal: comparing against
// the constant 0 (division/sentinel guards have exact-zero semantics),
// x != x (the NaN check), and comparisons between two compile-time
// constants.
var analyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on floating-point model quantities outside tolerance helpers (zero guards, NaN checks and constant folds stay legal)",
	Paths: []string{
		"internal/core", "internal/analyzer", "internal/explore",
		"internal/sched", "internal/interval", "internal/phase",
		"internal/stats", ".",
	},
	Run: runFloatEq,
}

// toleranceFuncFragments mark helper functions whose whole job is
// approximate comparison; exact compares inside them are the
// implementation of the tolerance itself.
var toleranceFuncFragments = []string{"approx", "almost", "near", "within", "tol"}

func runFloatEq(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Body == nil || inToleranceHelper(fd.Name.Name) {
				return true
			}
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				be, ok := m.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				checkFloatCompare(p, info, be)
				return true
			})
			return false
		})
	}
}

// inToleranceHelper reports whether the enclosing function's name marks
// it as a tolerance helper.
func inToleranceHelper(name string) bool {
	l := strings.ToLower(name)
	for _, frag := range toleranceFuncFragments {
		if strings.Contains(l, frag) {
			return true
		}
	}
	return false
}

func checkFloatCompare(p *Pass, info *types.Info, be *ast.BinaryExpr) {
	tx, ty := info.TypeOf(be.X), info.TypeOf(be.Y)
	if tx == nil || ty == nil || (!typeIsFloat(tx) && !typeIsFloat(ty)) {
		return
	}
	xv, yv := info.Types[be.X], info.Types[be.Y]
	if xv.Value != nil && yv.Value != nil {
		return // constant fold
	}
	if isZeroConst(xv) || isZeroConst(yv) {
		return // exact-zero guard
	}
	if types.ExprString(be.X) == types.ExprString(be.Y) {
		return // NaN idiom x != x
	}
	p.Reportf(be.Pos(), "floating-point %s on model quantities; compare with a tolerance (|a-b| <= eps) or a *Approx/*Near helper", be.Op)
}

// isZeroConst reports whether the operand is the numeric constant 0.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
