package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"lpm"
)

// The smoke tests drive the exploration CLI in-process with tiny
// per-evaluation budgets and a short step bound.

func TestRunText(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-warmup", "20000", "-window", "5000", "-maxsteps", "2"}
	if err := run(context.Background(), args, &out, &errb); err != nil {
		t.Fatalf("run: %v\n%s", err, errb.String())
	}
	for _, want := range []string{"design space:", "final configuration:", "simulations="} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONObserve(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-warmup", "20000", "-window", "5000", "-maxsteps", "3", "-json", "-observe"}
	if err := run(context.Background(), args, &out, &errb); err != nil {
		t.Fatalf("run: %v\n%s", err, errb.String())
	}
	if strings.Contains(out.String(), "design space:") {
		t.Fatalf("JSON mode printed the text preamble:\n%s", out.String())
	}
	var rep lpm.ExploreReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != lpm.ExploreSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, lpm.ExploreSchema)
	}
	if rep.Workload != "410.bwaves" || rep.Start != "A" || rep.FinalPoint == "" {
		t.Fatalf("report inputs = %+v", rep)
	}
	if len(rep.Steps) == 0 || len(rep.Steps) > 3 {
		t.Fatalf("steps = %d, want 1..3", len(rep.Steps))
	}
	if rep.Evaluations == 0 || rep.SpaceSize == 0 {
		t.Fatalf("evaluations/space = %d/%d", rep.Evaluations, rep.SpaceSize)
	}
	if rep.Final.Obs == nil || rep.Final.Obs.Counter("l1.0.accesses") == 0 {
		t.Fatalf("-observe produced no per-layer snapshot on the final measurement")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-start", "Z"}, &out, &errb); err == nil {
		t.Fatal("unknown start configuration did not error")
	}
	if err := run(context.Background(), []string{"-workload", "no.such"}, &out, &errb); err == nil {
		t.Fatal("unknown workload did not error")
	}
}
