package cache

import (
	"testing"

	"lpm/internal/sim/dram"
)

// testCfg returns a small, permissive configuration.
func testCfg() Config {
	return Config{
		Name:       "L1-test",
		Size:       1 << 10, // 1 KB
		BlockSize:  64,
		Assoc:      2,
		HitLatency: 3,
		Ports:      2,
		Banks:      4,
		MSHRs:      4,
		Coalesce:   true,
		Repl:       LRU,
	}
}

// rig couples a cache to a fixed-latency lower layer and drives cycles.
type rig struct {
	c     *Cache
	lower *dram.Fixed
	now   uint64
}

func newRig(cfg Config, lat uint64) *rig {
	r := &rig{c: New(cfg), lower: &dram.Fixed{Latency: lat}}
	r.c.SetLower(r.lower)
	return r
}

// step advances one cycle (cache before lower, as the chip does).
func (r *rig) step() {
	r.now++
	r.c.Tick(r.now)
	r.lower.Tick(r.now)
}

// access submits an access at the current cycle boundary and returns a
// completion flag pointer.
func (r *rig) access(addr uint64, write bool) *bool {
	done := new(bool)
	if !r.c.Access(r.now+1, addr, write, func(uint64) { *done = true }) {
		t := new(bool)
		*t = false
		return t
	}
	return done
}

// runUntil advances until pred or the cycle budget runs out, returning
// whether pred held.
func (r *rig) runUntil(pred func() bool, budget int) bool {
	for i := 0; i < budget; i++ {
		if pred() {
			return true
		}
		r.step()
	}
	return pred()
}

func TestConfigValidate(t *testing.T) {
	good := testCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.Size = 0 },
		func(c *Config) { c.BlockSize = 48 },
		func(c *Config) { c.Size = 100 },
		func(c *Config) { c.Assoc = 0 },
		func(c *Config) { c.Assoc = 1024 }, // fewer than one set
		func(c *Config) { c.HitLatency = 0 },
		func(c *Config) { c.Ports = 0 },
		func(c *Config) { c.Banks = 0 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.MSHRTargets = -1 },
	}
	for i, mut := range bads {
		c := testCfg()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestConfigSets(t *testing.T) {
	c := testCfg()
	if c.Sets() != 8 { // 1024 / (64*2)
		t.Fatalf("sets = %d, want 8", c.Sets())
	}
}

func TestMissThenHit(t *testing.T) {
	r := newRig(testCfg(), 20)
	d1 := r.access(0x100, false)
	if !r.runUntil(func() bool { return *d1 }, 100) {
		t.Fatal("first access never completed")
	}
	missCycles := r.now
	if !r.c.Contains(0x100) {
		t.Fatal("block not installed after fill")
	}
	d2 := r.access(0x100, false)
	if !r.runUntil(func() bool { return *d2 }, 100) {
		t.Fatal("second access never completed")
	}
	hitCycles := r.now - missCycles
	if hitCycles >= missCycles {
		t.Fatalf("hit (%d cycles) not faster than miss (%d cycles)", hitCycles, missCycles)
	}
	st := r.c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	// Hit latency: access enters service next cycle, resolves HitLatency
	// later, so ~HitLatency+1 cycles end to end.
	if hitCycles > uint64(r.c.Config().HitLatency)+2 {
		t.Fatalf("hit took %d cycles, config says %d", hitCycles, r.c.Config().HitLatency)
	}
}

func TestAnalyzerHMatchesHitLatency(t *testing.T) {
	r := newRig(testCfg(), 10)
	// Warm a block then hit it many times, serially.
	d := r.access(0x40, false)
	r.runUntil(func() bool { return *d }, 100)
	for i := 0; i < 20; i++ {
		d := r.access(0x40, false)
		if !r.runUntil(func() bool { return *d }, 50) {
			t.Fatal("hit did not complete")
		}
	}
	p := r.c.Analyzer().Snapshot()
	if p.H() != 3 {
		t.Fatalf("measured H = %v, want 3", p.H())
	}
}

func TestMSHRCoalescing(t *testing.T) {
	r := newRig(testCfg(), 50)
	// Two accesses to the same block, issued together: one memory fetch.
	d1 := r.access(0x200, false)
	d2 := r.access(0x208, false)
	if !r.runUntil(func() bool { return *d1 && *d2 }, 200) {
		t.Fatal("accesses did not complete")
	}
	if got := r.lower.Count(); got != 1 {
		t.Fatalf("lower saw %d fetches, want 1 (coalesced)", got)
	}
	if st := r.c.Stats(); st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}
}

func TestNoCoalescingAblation(t *testing.T) {
	cfg := testCfg()
	cfg.Coalesce = false
	r := newRig(cfg, 50)
	d1 := r.access(0x200, false)
	d2 := r.access(0x208, false)
	if !r.runUntil(func() bool { return *d1 && *d2 }, 400) {
		t.Fatal("accesses did not complete")
	}
	// The second access waits for an MSHR-free or fill; it must NOT share
	// the first fetch, so it either refetches or completes from the
	// installed block after waiting.
	if st := r.c.Stats(); st.Coalesced != 0 {
		t.Fatalf("coalesced = %d, want 0", st.Coalesced)
	}
}

func TestMSHRLimitForcesWaiting(t *testing.T) {
	cfg := testCfg()
	cfg.MSHRs = 1
	cfg.Ports = 4
	r := newRig(cfg, 60)
	// Two different blocks: second miss must wait for the single MSHR.
	d1 := r.access(0x000, false)
	d2 := r.access(0x400, false)
	if !r.runUntil(func() bool { return *d1 && *d2 }, 500) {
		t.Fatal("accesses did not complete")
	}
	if st := r.c.Stats(); st.MSHRWaits == 0 {
		t.Fatal("expected MSHR waits with a single MSHR")
	}
}

func TestPortLimit(t *testing.T) {
	cfg := testCfg()
	cfg.Ports = 1
	cfg.HitLatency = 1
	r := newRig(cfg, 5)
	// Warm two blocks.
	a := r.access(0x000, false)
	b := r.access(0x040, false)
	r.runUntil(func() bool { return *a && *b }, 100)
	start := r.now
	// Four hits submitted at once through one port: ~4 cycles of starts.
	var flags []*bool
	for i := 0; i < 4; i++ {
		addr := uint64(0x000)
		if i%2 == 1 {
			addr = 0x040
		}
		flags = append(flags, r.access(addr, false))
	}
	all := func() bool {
		for _, f := range flags {
			if !*f {
				return false
			}
		}
		return true
	}
	if !r.runUntil(all, 100) {
		t.Fatal("hits did not complete")
	}
	elapsed := r.now - start
	if elapsed < 5 { // 4 serial starts + latency 1 (+1 hop)
		t.Fatalf("4 accesses through 1 port finished in %d cycles; port limit not enforced", elapsed)
	}

	// Same burst with 4 ports should be much faster.
	cfg4 := cfg
	cfg4.Ports = 4
	cfg4.Banks = 4
	r4 := newRig(cfg4, 5)
	a = r4.access(0x000, false)
	b = r4.access(0x040, false)
	r4.runUntil(func() bool { return *a && *b }, 100)
	start4 := r4.now
	flags = flags[:0]
	for i := 0; i < 4; i++ {
		addr := uint64(0x000)
		if i%2 == 1 {
			addr = 0x040
		}
		flags = append(flags, r4.access(addr, false))
	}
	if !r4.runUntil(all, 100) {
		t.Fatal("hits did not complete on 4-port cache")
	}
	if r4.now-start4 >= elapsed {
		t.Fatalf("4 ports (%d cycles) not faster than 1 port (%d cycles)", r4.now-start4, elapsed)
	}
}

func TestBankConflict(t *testing.T) {
	cfg := testCfg()
	cfg.Ports = 4
	cfg.Banks = 1 // every access conflicts
	cfg.HitLatency = 1
	r := newRig(cfg, 5)
	a := r.access(0x000, false)
	r.runUntil(func() bool { return *a }, 100)
	start := r.now
	var flags []*bool
	for i := 0; i < 4; i++ {
		flags = append(flags, r.access(0x000, false))
	}
	all := func() bool {
		for _, f := range flags {
			if !*f {
				return false
			}
		}
		return true
	}
	if !r.runUntil(all, 100) {
		t.Fatal("accesses did not complete")
	}
	if r.now-start < 5 {
		t.Fatalf("single bank served 4 accesses in %d cycles", r.now-start)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := testCfg() // 8 sets, 2-way; same set every 8 blocks (512 B)
	r := newRig(cfg, 10)
	// Fill set 0 with blocks A (0x000) and B (0x200), touch A, then load
	// C (0x400): LRU should evict B.
	for _, addr := range []uint64{0x000, 0x200} {
		d := r.access(addr, false)
		r.runUntil(func() bool { return *d }, 100)
	}
	d := r.access(0x000, false) // touch A
	r.runUntil(func() bool { return *d }, 100)
	d = r.access(0x400, false) // C evicts LRU = B
	r.runUntil(func() bool { return *d }, 100)
	if !r.c.Contains(0x000) {
		t.Fatal("recently used block evicted under LRU")
	}
	if r.c.Contains(0x200) {
		t.Fatal("LRU block survived")
	}
	if !r.c.Contains(0x400) {
		t.Fatal("new block not installed")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := testCfg()
	r := newRig(cfg, 10)
	// Store to A (dirty), fill B and C in the same set to evict A.
	d := r.access(0x000, true)
	r.runUntil(func() bool { return *d }, 100)
	for _, addr := range []uint64{0x200, 0x400} {
		d := r.access(addr, false)
		r.runUntil(func() bool { return *d }, 100)
	}
	r.runUntil(func() bool { return !r.c.Busy() }, 100)
	if st := r.c.Stats(); st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
	// 3 fetches + 1 writeback reach the lower layer.
	if got := r.lower.Count(); got != 4 {
		t.Fatalf("lower requests = %d, want 4", got)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	cfg := testCfg()
	r := newRig(cfg, 10)
	for _, addr := range []uint64{0x000, 0x200, 0x400} {
		d := r.access(addr, false)
		r.runUntil(func() bool { return *d }, 100)
	}
	r.runUntil(func() bool { return !r.c.Busy() }, 100)
	if st := r.c.Stats(); st.Writebacks != 0 {
		t.Fatalf("writebacks = %d, want 0", st.Writebacks)
	}
}

func TestStoreHitSetsDirtyViaLaterEviction(t *testing.T) {
	cfg := testCfg()
	r := newRig(cfg, 10)
	// Load A (clean), then store-hit A, then evict: must write back.
	d := r.access(0x000, false)
	r.runUntil(func() bool { return *d }, 100)
	d = r.access(0x008, true) // same block, store hit
	r.runUntil(func() bool { return *d }, 100)
	for _, addr := range []uint64{0x200, 0x400} {
		d := r.access(addr, false)
		r.runUntil(func() bool { return *d }, 100)
	}
	r.runUntil(func() bool { return !r.c.Busy() }, 200)
	if st := r.c.Stats(); st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestRequestInterfaceOneCycleHop(t *testing.T) {
	// Drive the cache through its Lower interface, as an L2 sees traffic.
	r := newRig(testCfg(), 10)
	done := false
	if !r.c.Request(r.now, 0, 0x10 /* block addr */, false, func(uint64) { done = true }) {
		t.Fatal("request rejected")
	}
	if !r.runUntil(func() bool { return done }, 100) {
		t.Fatal("request never completed")
	}
	if !r.c.Contains(0x10 << 6) {
		t.Fatal("block not cached after fill")
	}
}

func TestWritebackAbsorbedWhenPresent(t *testing.T) {
	r := newRig(testCfg(), 10)
	d := r.access(0x000, false)
	r.runUntil(func() bool { return *d }, 100)
	before := r.lower.Count()
	// Writeback from above for the cached block: absorbed, no new lower
	// traffic.
	if !r.c.Request(r.now, 0, 0, true, nil) {
		t.Fatal("writeback rejected")
	}
	r.runUntil(func() bool { return !r.c.Busy() }, 100)
	if r.lower.Count() != before {
		t.Fatal("absorbed writeback still reached lower layer")
	}
}

func TestWritebackForwardedWhenAbsent(t *testing.T) {
	r := newRig(testCfg(), 10)
	if !r.c.Request(r.now, 0, 0x7777, true, nil) {
		t.Fatal("writeback rejected")
	}
	if !r.runUntil(func() bool { return r.lower.Count() == 1 }, 100) {
		t.Fatal("missing-block writeback not forwarded down")
	}
}

func TestInputQueueBackpressure(t *testing.T) {
	cfg := testCfg()
	cfg.InputQueue = 2
	cfg.Ports = 1
	r := newRig(cfg, 50)
	accepted := 0
	for i := 0; i < 10; i++ {
		if r.c.Access(r.now+1, uint64(i)*64, false, func(uint64) {}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2 (queue bound)", accepted)
	}
	if st := r.c.Stats(); st.Rejected != 8 {
		t.Fatalf("rejected = %d, want 8", st.Rejected)
	}
}

func TestPureMissVsMaskedMissInCache(t *testing.T) {
	// A lone miss (nothing else in flight) must be pure; a miss overlapped
	// by a stream of hits must not be.
	cfg := testCfg()
	r := newRig(cfg, 30)
	d := r.access(0x600, false)
	r.runUntil(func() bool { return *d }, 200)
	p := r.c.Analyzer().Snapshot()
	if p.PureMisses != 1 {
		t.Fatalf("lone miss: pure misses = %d, want 1", p.PureMisses)
	}

	r2 := newRig(cfg, 30)
	// Warm a hit block.
	d0 := r2.access(0x000, false)
	r2.runUntil(func() bool { return *d0 }, 200)
	r2.c.ResetCounters() // discard the warm-up miss (itself pure)
	// Launch the miss, then keep hitting 0x000 continuously.
	miss := r2.access(0x600, false)
	for i := 0; i < 40 && !*miss; i++ {
		r2.access(0x000, false)
		r2.step()
	}
	r2.runUntil(func() bool { return !r2.c.Busy() }, 200)
	p2 := r2.c.Analyzer().Snapshot()
	if p2.Misses < 1 {
		t.Fatal("miss lost")
	}
	if p2.PureMisses != 0 {
		t.Fatalf("hit-masked miss counted pure (pure=%d)", p2.PureMisses)
	}
	if p2.CAMAT() >= p2.AMAT() {
		t.Fatalf("C-AMAT %.3f not below AMAT %.3f despite masking", p2.CAMAT(), p2.AMAT())
	}
}

func TestResetCountersKeepsState(t *testing.T) {
	r := newRig(testCfg(), 10)
	d := r.access(0x000, false)
	r.runUntil(func() bool { return *d }, 100)
	r.c.ResetCounters()
	if st := r.c.Stats(); st.Accesses != 0 || st.Misses != 0 {
		t.Fatal("counters not reset")
	}
	// Block must still be cached.
	d = r.access(0x000, false)
	r.runUntil(func() bool { return *d }, 100)
	if st := r.c.Stats(); st.Hits != 1 {
		t.Fatalf("hits after reset = %d, want 1 (state preserved)", st.Hits)
	}
}

func TestRandomReplacementStillCorrect(t *testing.T) {
	cfg := testCfg()
	cfg.Repl = RandomRepl
	r := newRig(cfg, 10)
	// Run a conflict-heavy sequence; everything must complete.
	var flags []*bool
	for i := 0; i < 8; i++ {
		flags = append(flags, r.access(uint64(i)*0x200, false))
		r.step()
		r.step()
	}
	all := func() bool {
		for _, f := range flags {
			if !*f {
				return false
			}
		}
		return true
	}
	if !r.runUntil(all, 2000) {
		t.Fatal("accesses lost under random replacement")
	}
}

func TestHitsPlusMissesEqualsCompleted(t *testing.T) {
	r := newRig(testCfg(), 25)
	for i := 0; i < 200; i++ {
		r.access(uint64(i*104729)%4096, i%3 == 0)
		r.step()
	}
	if !r.runUntil(func() bool { return !r.c.Busy() }, 4000) {
		t.Fatal("cache did not drain")
	}
	st := r.c.Stats()
	p := r.c.Analyzer().Snapshot()
	if st.Hits+st.Misses != p.Completed {
		t.Fatalf("hits(%d)+misses(%d) != completed(%d)", st.Hits, st.Misses, p.Completed)
	}
	if p.Accesses != p.Completed {
		t.Fatalf("drained but accesses(%d) != completed(%d)", p.Accesses, p.Completed)
	}
	if st.Misses != p.Misses {
		t.Fatalf("stats misses %d != analyzer misses %d", st.Misses, p.Misses)
	}
}

func TestReplPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || RandomRepl.String() != "Random" || FIFORepl.String() != "FIFO" {
		t.Fatal("bad policy names")
	}
	if ReplPolicy(9).String() == "" {
		t.Fatal("unknown policy has empty name")
	}
}
