// Package cliutil is the errcheck fixture's atomic-write case: the
// temp-file+rename commit path where every dropped error publishes a
// torn or unsynced file.
package cliutil

import "os"

// Commit is the broken commit sequence: each step's error vanishes, so
// a failed fsync or rename still reports success to the caller.
func Commit(tmp *os.File, dst string) {
	tmp.Sync()                 // want "File.Sync returns an error that is dropped"
	tmp.Close()                // want "File.Close returns an error that is dropped"
	os.Rename(tmp.Name(), dst) // want "os.Rename returns an error that is dropped"
}

// CommitChecked is the legal form: explicit discards and deferred
// teardown stay quiet.
func CommitChecked(tmp *os.File, dst string) error {
	defer tmp.Close()
	if err := tmp.Sync(); err != nil {
		return err
	}
	_ = os.Rename(tmp.Name(), dst)
	return nil
}
