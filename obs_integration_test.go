package lpm

import (
	"reflect"
	"testing"
)

// ResetSimCaches must actually drop the memoised simulation results —
// the next run has to re-simulate, not replay cached Measurements — and
// the memo traffic has to be visible through the metrics registry.
func TestResetSimCachesForcesResimulation(t *testing.T) {
	defer ResetSimCaches()

	s := Scale{Warmup: 20000, Window: 5000}

	ResetSimCaches()
	if h, m := SimCacheStats(); h != 0 || m != 0 {
		t.Fatalf("reset left memo counters at hits=%d misses=%d", h, m)
	}

	first := Table1(s)
	_, misses1 := SimCacheStats()
	if misses1 == 0 {
		t.Fatal("first run after reset reported no memo misses")
	}

	// A repeat run is served entirely from the memo: hits grow, misses
	// do not.
	second := Table1(s)
	hits2, misses2 := SimCacheStats()
	if hits2 == 0 {
		t.Fatal("repeat run reported no memo hits")
	}
	if misses2 != misses1 {
		t.Fatalf("repeat run re-simulated: misses %d -> %d", misses1, misses2)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memoised run diverged from the run that filled the cache")
	}

	// After a reset the same inputs miss again — re-simulation happened —
	// and determinism means the results still match bit for bit.
	ResetSimCaches()
	third := Table1(s)
	hits3, misses3 := SimCacheStats()
	if hits3 != 0 || misses3 == 0 {
		t.Fatalf("post-reset run hits=%d misses=%d, want 0 hits and fresh misses", hits3, misses3)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatal("re-simulated run diverged from the original")
	}

	// The memo counters surface through the observability registry.
	reg := NewMetricsRegistry()
	PublishRuntimeMetrics(reg)
	snap := reg.Snapshot()
	if got := snap.Counter("sim.memo.misses"); got != uint64(misses3) {
		t.Fatalf("registry sim.memo.misses = %d, want %d", got, misses3)
	}
	if got := snap.Counter("sim.memo.hits"); got != 0 {
		t.Fatalf("registry sim.memo.hits = %d, want 0", got)
	}
	PublishRuntimeMetrics(nil) // nil registry must be a safe no-op
}
