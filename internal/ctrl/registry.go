package ctrl

// The run registry and scheduler: runs queue at submit, start when both
// the global concurrency budget and the submitting tenant's budget have
// room, and publish their timelines through a Live/Hub pair while they
// execute. One mutex guards all registry state including the obs
// registry holding control-plane metrics — the same
// single-writer-under-lock discipline the fabric coordinator uses.

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"lpm/internal/cliutil"
	"lpm/internal/obs"
	"lpm/internal/obs/timeseries"
	"lpm/internal/parallel"
	"lpm/internal/resilience/fleet"
)

// Runner executes one run, publishing progress through pub. It returns
// the run's final report document (lpm-report/v2 JSON) or an error.
// SimRunner is the production implementation; tests substitute stubs.
type Runner interface {
	Run(ctx context.Context, spec RunSpec, pub *Publisher) (json.RawMessage, error)
}

// Publisher is a run's outbound progress path: windows land in the
// Live (for /timeline and /metrics pulls) and the Hub (for SSE pushes).
type Publisher struct {
	live *timeseries.Live
	hub  *Hub
}

// SetMeta stamps the timeline series header.
func (p *Publisher) SetMeta(width uint64, adaptive bool) { p.live.SetMeta(width, adaptive) }

// Window publishes one closed timeline window.
func (p *Publisher) Window(w timeseries.Window) {
	p.live.Publish(w)
	p.hub.Publish(w)
}

// Snapshot publishes the latest aggregate metrics snapshot.
func (p *Publisher) Snapshot(s *obs.Snapshot) { p.live.PublishSnapshot(s) }

// SnapshotSource exposes a consistent observability snapshot — the
// fabric Coordinator satisfies it, letting the fleet endpoint fold the
// sweep fabric's telemetry into one scrape.
type SnapshotSource interface {
	ObsSnapshot() *obs.Snapshot
}

// Config parameterises a Registry.
type Config struct {
	// MaxConcurrent bounds runs executing at once across all tenants
	// (0 = parallel.Workers(), the simulation worker budget).
	MaxConcurrent int
	// TenantBudget bounds runs executing at once per tenant (0 = 2).
	TenantBudget int
	// Runner executes runs; nil defaults to SimRunner.
	Runner Runner
	// Log receives structured scheduler diagnostics (nil discards).
	Log *slog.Logger
	// Fabric, when non-nil, contributes the sweep-fabric coordinator's
	// telemetry to the fleet /metrics endpoint (and, when it also
	// implements FleetSource, its health document to /api/v1/fleet).
	Fabric SnapshotSource
	// Retry paces transient run-failure retries. The zero value adopts
	// fleet.Defaults(0) — the same capped-exponential, seeded-jitter
	// discipline every fabric retry loop follows.
	Retry fleet.RetryPolicy
	// RetryBudget is how many times a run that failed transiently
	// (fleet.IsTransient — e.g. the sweep fabric's connection broke) is
	// re-executed before the failure is final. 0 disables retries: a
	// re-execution re-publishes the run's timeline from scratch, so it
	// is opt-in.
	RetryBudget int
}

// FleetSource exposes the sweep fabric's health document — the
// fabric Coordinator satisfies it. Kept as a json.RawMessage so the
// control plane stays decoupled from the fabric's types.
type FleetSource interface {
	FleetStatsJSON() json.RawMessage
}

// run is the registry's record of one submission.
type run struct {
	id     string
	spec   RunSpec
	state  RunState
	errMsg string

	live   *timeseries.Live
	hub    *Hub
	cancel context.CancelFunc
	result json.RawMessage

	submitted, started, finished time.Time
}

// Registry owns the run table and the scheduler.
type Registry struct {
	cfg Config
	ctx context.Context

	mu        sync.Mutex
	runs      map[string]*run
	order     []string
	running   int
	pending   int
	perTenant map[string]int
	nextID    int
	obs       *obs.Registry
	tel       *Telemetry
	wg        sync.WaitGroup
}

// NewRegistry builds a registry whose runs execute under ctx: cancel it
// (SIGTERM via resilience.WithSignals) and every running simulation
// drains through its own context.
func NewRegistry(ctx context.Context, cfg Config) *Registry {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = parallel.Workers()
	}
	if cfg.TenantBudget <= 0 {
		cfg.TenantBudget = 2
	}
	if cfg.Runner == nil {
		cfg.Runner = SimRunner{}
	}
	if cfg.Retry == (fleet.RetryPolicy{}) {
		cfg.Retry = fleet.Defaults(0)
	}
	reg := obs.NewRegistry()
	return &Registry{
		cfg:       cfg,
		ctx:       ctx,
		runs:      make(map[string]*run),
		perTenant: make(map[string]int),
		obs:       reg,
		tel:       NewTelemetry(reg),
	}
}

// log returns the registry's structured logger.
func (g *Registry) log() *slog.Logger { return cliutil.LoggerOrDiscard(g.cfg.Log) }

// Submit validates spec, queues the run, and starts it immediately if
// budgets allow. The returned status is the run's state at return.
func (g *Registry) Submit(spec RunSpec) (RunStatus, error) {
	if err := spec.Normalize(); err != nil {
		g.mu.Lock()
		g.tel.Rejected()
		g.mu.Unlock()
		return RunStatus{}, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextID++
	r := &run{
		id:        fmt.Sprintf("r-%d", g.nextID),
		spec:      spec,
		state:     StatePending,
		live:      timeseries.NewLive(),
		hub:       NewHub(),
		submitted: time.Now(),
	}
	r.hub.onSub = func(delta int) {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.tel.Subscribers(delta)
	}
	r.hub.onDrop = func(n uint64) {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.tel.EventsDropped(n)
	}
	g.runs[r.id] = r
	g.order = append(g.order, r.id)
	g.pending++
	g.tel.Submitted()
	g.log().Info("ctrl: run submitted",
		"run", r.id, "tenant", spec.Tenant, "workload", spec.Workload)
	g.scheduleLocked()
	return g.statusLocked(r), nil
}

// scheduleLocked starts pending runs while budgets allow; call with
// g.mu held after any state change that could free a slot.
func (g *Registry) scheduleLocked() {
	for _, id := range g.order {
		if g.running >= g.cfg.MaxConcurrent {
			break
		}
		r := g.runs[id]
		if r.state != StatePending || g.perTenant[r.spec.Tenant] >= g.cfg.TenantBudget {
			continue
		}
		g.startLocked(r)
	}
	g.tel.SyncQueue(g.pending, g.running)
}

// startLocked transitions r to running and launches its goroutine.
func (g *Registry) startLocked(r *run) {
	rctx, cancel := context.WithCancel(g.ctx)
	r.cancel = cancel
	r.state = StateRunning
	r.started = time.Now()
	g.pending--
	g.running++
	g.perTenant[r.spec.Tenant]++
	g.log().Info("ctrl: run started", "run", r.id, "tenant", r.spec.Tenant)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		pub := &Publisher{live: r.live, hub: r.hub}
		var result json.RawMessage
		var err error
		for attempt := 0; ; attempt++ {
			result, err = g.cfg.Runner.Run(rctx, r.spec, pub)
			if err == nil || rctx.Err() != nil ||
				attempt >= g.cfg.RetryBudget || !fleet.IsTransient(err) {
				break
			}
			g.mu.Lock()
			g.tel.Retried()
			g.mu.Unlock()
			g.log().Warn("ctrl: run failed transiently; retrying",
				"run", r.id, "attempt", attempt+1, "of", g.cfg.RetryBudget, "err", err.Error())
			if serr := g.cfg.Retry.Sleep(rctx, attempt); serr != nil {
				break
			}
		}
		// Read the context before cancelling it: interrupted-ness is what
		// separates a cancelled run from a failed one.
		interrupted := rctx.Err() != nil
		cancel()
		g.finish(r, result, err, interrupted)
	}()
}

// finish records a run's outcome and reschedules.
func (g *Registry) finish(r *run, result json.RawMessage, err error, interrupted bool) {
	r.live.Finish()
	r.hub.Done()
	g.mu.Lock()
	defer g.mu.Unlock()
	r.finished = time.Now()
	r.result = result
	switch {
	case err == nil:
		r.state = StateDone
	case interrupted:
		r.state = StateCancelled
		r.errMsg = err.Error()
	default:
		r.state = StateFailed
		r.errMsg = err.Error()
	}
	g.running--
	g.perTenant[r.spec.Tenant]--
	g.tel.Finished(r.state)
	g.log().Info("ctrl: run finished",
		"run", r.id, "tenant", r.spec.Tenant, "state", string(r.state), "error", r.errMsg)
	g.scheduleLocked()
}

// Cancel stops a run: pending runs resolve immediately, running runs
// get their context cancelled and resolve when the simulation drains.
func (g *Registry) Cancel(id string) (RunStatus, error) {
	g.mu.Lock()
	r, ok := g.runs[id]
	if !ok {
		g.mu.Unlock()
		return RunStatus{}, fmt.Errorf("ctrl: no run %q", id)
	}
	switch r.state {
	case StatePending:
		r.state = StateCancelled
		r.errMsg = "cancelled before start"
		r.finished = time.Now()
		g.pending--
		g.tel.Finished(StateCancelled)
		hub := r.hub
		g.scheduleLocked()
		g.mu.Unlock()
		hub.Done()
		g.mu.Lock()
	case StateRunning:
		r.cancel()
	}
	st := g.statusLocked(r)
	g.mu.Unlock()
	return st, nil
}

// Get returns one run's status.
func (g *Registry) Get(id string) (RunStatus, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	if !ok {
		return RunStatus{}, fmt.Errorf("ctrl: no run %q", id)
	}
	return g.statusLocked(r), nil
}

// List returns every run in submission order.
func (g *Registry) List() RunList {
	g.mu.Lock()
	defer g.mu.Unlock()
	l := RunList{API: APIVersion, Runs: make([]RunStatus, 0, len(g.order))}
	for _, id := range g.order {
		l.Runs = append(l.Runs, g.statusLocked(g.runs[id]))
	}
	return l
}

// statusLocked renders r as API status; call with g.mu held.
func (g *Registry) statusLocked(r *run) RunStatus {
	ser, _ := r.live.Timeline()
	return RunStatus{
		API:       APIVersion,
		ID:        r.id,
		State:     r.state,
		Spec:      r.spec,
		Error:     r.errMsg,
		Windows:   len(ser.Windows),
		Submitted: r.submitted,
		Started:   r.started,
		Finished:  r.finished,
	}
}

// handles returns a run's live/hub pair for the HTTP layer.
func (g *Registry) handles(id string) (*timeseries.Live, *Hub, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	if !ok {
		return nil, nil, false
	}
	return r.live, r.hub, true
}

// result returns a finished run's report document.
func (g *Registry) resultDoc(id string) (json.RawMessage, RunState, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	if !ok {
		return nil, "", false
	}
	return r.result, r.state, true
}

// Drain waits for every launched run goroutine to exit — the shutdown
// path after the serve context cancels.
func (g *Registry) Drain() { g.wg.Wait() }

// runExpo is one run's labeled snapshot for the fleet endpoint.
type runExpo struct {
	id, tenant string
	snap       *obs.Snapshot
}

// fleetSnapshots captures, under one lock acquisition, the control
// plane's own snapshot and the identity of every run; per-run live
// snapshots are then pulled outside g.mu (Live carries its own lock).
func (g *Registry) fleetSnapshots() (*obs.Snapshot, []runExpo) {
	g.mu.Lock()
	ctrlSnap := g.obs.Snapshot()
	rs := make([]runExpo, 0, len(g.order))
	for _, id := range g.order {
		r := g.runs[id]
		rs = append(rs, runExpo{id: r.id, tenant: r.spec.Tenant})
	}
	lives := make([]*timeseries.Live, len(rs))
	for i, id := range g.order {
		lives[i] = g.runs[id].live
	}
	g.mu.Unlock()
	for i := range rs {
		rs[i].snap = lives[i].Snapshot()
	}
	return ctrlSnap, rs
}
