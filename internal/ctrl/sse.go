package ctrl

// Server-sent events for the per-run timeline: each closed window
// streams to the client as it lands, with drop accounting made visible
// as its own event type when a slow consumer overran its ring.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// SSEHandler streams a run's hub as text/event-stream. Event types:
//
//	event: window  data: {timeseries.Window}
//	event: drop    data: {"dropped": N}   — N ring overruns just before
//	                                        the next window
//	event: done    data: {}               — the run finished; stream ends
//
// Window and done frames carry an `id:` line with the event's hub
// sequence number; a reconnecting client sends it back as
// `Last-Event-ID` (standard EventSource behavior) and catch-up resumes
// strictly after it — a reconnect mid-history never replays a window
// the client already saw.
//
// The stream also ends when the client disconnects or the server drains
// on shutdown (both arrive through the request context).
func SSEHandler(hub *Hub) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		var after uint64
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			id, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "malformed Last-Event-ID", http.StatusBadRequest)
				return
			}
			after = id
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)
		fl.Flush()

		sub := hub.SubscribeAfter(0, after)
		defer sub.Close()
		for {
			e, dropped, ok := sub.Next(r.Context())
			if !ok {
				return
			}
			if dropped > 0 {
				if err := writeSSE(w, "drop", 0, struct {
					Dropped uint64 `json:"dropped"`
				}{dropped}); err != nil {
					return
				}
			}
			switch e.Type {
			case "window":
				if err := writeSSE(w, "window", e.Seq, e.Window); err != nil {
					return
				}
			case "done":
				_ = writeSSE(w, "done", e.Seq, struct{}{})
				fl.Flush()
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE emits one SSE frame with a JSON data payload; a non-zero id
// adds the `id:` line that feeds the client's Last-Event-ID.
func writeSSE(w http.ResponseWriter, event string, id uint64, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if id > 0 {
		_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, b)
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}
