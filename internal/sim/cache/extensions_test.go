package cache

import (
	"testing"

	"lpm/internal/sim/dram"
)

func TestInsertPolicyString(t *testing.T) {
	if MRUInsert.String() != "MRU" || LIPInsert.String() != "LIP" || BIPInsert.String() != "BIP" {
		t.Fatal("policy names")
	}
	if InsertPolicy(9).String() == "" {
		t.Fatal("unknown policy empty")
	}
}

func TestValidatePartitionAndQuota(t *testing.T) {
	good := testCfg()
	good.PartitionWays = map[int][]int{0: {0}, 1: {1}}
	good.MSHRQuota = map[int]int{0: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCfg()
	bad.PartitionWays = map[int][]int{0: {}}
	if err := bad.Validate(); err == nil {
		t.Error("empty partition accepted")
	}
	bad = testCfg()
	bad.PartitionWays = map[int][]int{0: {5}} // assoc is 2
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range way accepted")
	}
	bad = testCfg()
	bad.MSHRQuota = map[int]int{0: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero quota accepted")
	}
	bad = testCfg()
	bad.Prefetch = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative prefetch accepted")
	}
}

func TestWayPartitioningIsolatesRequestors(t *testing.T) {
	// 2-way cache partitioned: src 0 -> way 0, src 1 -> way 1. Src 1's
	// fills must never evict src 0's block even under conflict pressure.
	cfg := testCfg()
	cfg.PartitionWays = map[int][]int{0: {0}, 1: {1}}
	r := newRig(cfg, 10)

	// Src 0 installs block 0x000 (set 0).
	fill := false
	r.c.Request(r.now, 0, 0x000>>6, false, func(uint64) { fill = true })
	r.runUntil(func() bool { return fill }, 200)
	if !r.c.Contains(0x000) {
		t.Fatal("src 0 block not installed")
	}

	// Src 1 streams many conflicting blocks through the same set.
	for i := 1; i <= 6; i++ {
		f := false
		r.c.Request(r.now, 1, uint64(i*8) /* same set every 8 blocks */, false, func(uint64) { f = true })
		if !r.runUntil(func() bool { return f }, 300) {
			t.Fatal("src 1 fill lost")
		}
	}
	if !r.c.Contains(0x000) {
		t.Fatal("partitioned block evicted by another requestor")
	}
}

func TestUnpartitionedSourceUsesAllWays(t *testing.T) {
	cfg := testCfg()
	cfg.PartitionWays = map[int][]int{7: {0}} // only src 7 restricted
	r := newRig(cfg, 10)
	// Src 0 (not in the map) fills both ways of set 0.
	for i := 0; i < 2; i++ {
		f := false
		r.c.Request(r.now, 0, uint64(i*8), false, func(uint64) { f = true })
		r.runUntil(func() bool { return f }, 300)
	}
	if !r.c.Contains(0x000) || !r.c.Contains(8<<6) {
		t.Fatal("unrestricted source could not use both ways")
	}
}

func TestMSHRQuotaBoundsOneRequestor(t *testing.T) {
	cfg := testCfg()
	cfg.MSHRs = 4
	cfg.Ports = 4
	cfg.MSHRQuota = map[int]int{1: 1}
	r := newRig(cfg, 80)
	// Src 1 issues two distinct-block misses; the second must wait for
	// the quota even though MSHRs are free.
	var f1, f2 bool
	r.c.Request(r.now, 1, 0x10, false, func(uint64) { f1 = true })
	r.c.Request(r.now, 1, 0x20, false, func(uint64) { f2 = true })
	if !r.runUntil(func() bool { return f1 && f2 }, 1000) {
		t.Fatal("quota deadlocked the requestor")
	}
	if r.c.Stats().QuotaWaits == 0 {
		t.Fatal("expected quota waits")
	}

	// An unquota'd requestor is not affected.
	r2 := newRig(cfg, 80)
	var g1, g2 bool
	r2.c.Request(r2.now, 0, 0x10, false, func(uint64) { g1 = true })
	r2.c.Request(r2.now, 0, 0x20, false, func(uint64) { g2 = true })
	if !r2.runUntil(func() bool { return g1 && g2 }, 1000) {
		t.Fatal("unquota'd requestor blocked")
	}
	if r2.c.Stats().QuotaWaits != 0 {
		t.Fatal("quota charged to wrong requestor")
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	cfg := testCfg()
	cfg.Prefetch = 1
	cfg.MSHRs = 8
	r := newRig(cfg, 20)
	// Miss block 0: the prefetcher should also fetch block 1.
	d := r.access(0x000, false)
	r.runUntil(func() bool { return *d }, 200)
	r.runUntil(func() bool { return !r.c.Busy() }, 200)
	if !r.c.Contains(0x040) {
		t.Fatal("next line not prefetched")
	}
	st := r.c.Stats()
	if st.Prefetches != 1 {
		t.Fatalf("prefetches = %d, want 1", st.Prefetches)
	}
	// A demand access to the prefetched block is a hit and counts useful.
	d2 := r.access(0x040, false)
	r.runUntil(func() bool { return *d2 }, 200)
	st = r.c.Stats()
	if st.PrefetchUseful != 1 {
		t.Fatalf("useful = %d, want 1", st.PrefetchUseful)
	}
	if st.Hits != 1 {
		t.Fatalf("prefetched block missed on demand (hits=%d)", st.Hits)
	}
}

func TestPrefetcherSkipsPresentAndPending(t *testing.T) {
	cfg := testCfg()
	cfg.Prefetch = 2
	cfg.MSHRs = 8
	r := newRig(cfg, 20)
	// Warm block 1; its own prefetches bring in blocks 2 and 3.
	d := r.access(0x040, false)
	r.runUntil(func() bool { return *d }, 200)
	r.runUntil(func() bool { return !r.c.Busy() }, 300)
	r.c.ResetCounters()
	// Miss block 0: both prefetch candidates (1, 2) are present — no
	// prefetch traffic.
	d = r.access(0x000, false)
	r.runUntil(func() bool { return *d }, 200)
	r.runUntil(func() bool { return !r.c.Busy() }, 300)
	if st := r.c.Stats(); st.Prefetches != 0 {
		t.Fatalf("prefetches = %d, want 0 (candidates present)", st.Prefetches)
	}
	// Miss a distant block: both candidates fresh.
	d = r.access(0x800, false)
	r.runUntil(func() bool { return *d }, 200)
	r.runUntil(func() bool { return !r.c.Busy() }, 300)
	if st := r.c.Stats(); st.Prefetches != 2 {
		t.Fatalf("prefetches = %d, want 2", st.Prefetches)
	}
}

func TestPrefetchImprovesSequentialStream(t *testing.T) {
	run := func(degree int) uint64 {
		cfg := testCfg()
		cfg.Prefetch = degree
		cfg.MSHRs = 8
		r := newRig(cfg, 40)
		var doneCount int
		for i := 0; i < 32; i++ {
			addr := uint64(i) * 64
			for !r.c.Access(r.now+1, addr, false, func(uint64) { doneCount++ }) {
				r.step()
			}
			r.step()
		}
		r.runUntil(func() bool { return doneCount == 32 }, 5000)
		return r.now
	}
	base, pf := run(0), run(2)
	if pf >= base {
		t.Fatalf("prefetch degree 2 (%d cycles) not faster than none (%d cycles)", pf, base)
	}
}

func TestLIPInsertResistsStreamPollution(t *testing.T) {
	// A hot block is re-touched while a stream floods the same set.
	// Under MRU insertion the stream evicts the hot block far more often
	// than under LIP.
	missesFor := func(ins InsertPolicy) uint64 {
		cfg := testCfg() // 8 sets, 2-way
		cfg.Insert = ins
		r := newRig(cfg, 15)
		hot := uint64(0x000)
		// Warm the hot block, then touch it once: a demand hit promotes
		// it in the recency order regardless of insertion policy.
		d := r.access(hot, false)
		r.runUntil(func() bool { return *d }, 200)
		d = r.access(hot, false)
		r.runUntil(func() bool { return *d }, 200)
		r.c.ResetCounters()
		for i := 1; i <= 20; i++ {
			// Two streaming blocks through set 0 per hot touch: enough
			// pressure to wash a 2-way set under MRU insertion.
			for j := 0; j < 2; j++ {
				s := r.access(uint64((2*i+j)*8)<<6, false)
				r.runUntil(func() bool { return *s }, 300)
			}
			h := r.access(hot, false)
			r.runUntil(func() bool { return *h }, 300)
		}
		return r.c.Stats().Misses
	}
	mru, lip := missesFor(MRUInsert), missesFor(LIPInsert)
	if lip >= mru {
		t.Fatalf("LIP (%d misses) not better than MRU (%d misses) under streaming", lip, mru)
	}
}

func TestBIPInsertOccasionallyPromotes(t *testing.T) {
	// BIP must sometimes insert at MRU: across many fills into a 2-way
	// set, at least one fill should survive a subsequent fill (which it
	// would not under pure LIP, where every fill lands at LRU).
	cfg := testCfg()
	cfg.Insert = BIPInsert
	r := newRig(cfg, 10)
	promoted := false
	for i := 0; i < 200 && !promoted; i += 2 {
		a := uint64(i*8) << 6
		b := uint64((i+1)*8) << 6
		da := r.access(a, false)
		r.runUntil(func() bool { return *da }, 300)
		db := r.access(b, false)
		r.runUntil(func() bool { return *db }, 300)
		// If a survived b's fill, a was promoted to MRU on insert.
		if r.c.Contains(a) {
			promoted = true
		}
	}
	if !promoted {
		t.Fatal("BIP never promoted a fill to MRU")
	}
}

func TestPrefetchWithFixedLower(t *testing.T) {
	// Prefetch fills must not confuse the analyzer: no demand accesses,
	// no analyzer records.
	cfg := testCfg()
	cfg.Prefetch = 3
	r := &rig{c: New(cfg), lower: &dram.Fixed{Latency: 5}}
	r.c.SetLower(r.lower)
	d := r.access(0x000, false)
	r.runUntil(func() bool { return *d }, 200)
	r.runUntil(func() bool { return !r.c.Busy() }, 300)
	p := r.c.Analyzer().Snapshot()
	if p.Accesses != 1 || p.Completed != 1 {
		t.Fatalf("analyzer saw %d/%d accesses; prefetches must be invisible", p.Accesses, p.Completed)
	}
	if r.c.Stats().Prefetches != 3 {
		t.Fatalf("prefetches = %d", r.c.Stats().Prefetches)
	}
}
