package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerCtxFlow enforces context-propagation discipline:
//
//  1. context.Background() / context.TODO() mint a fresh root context;
//     only a package main entry point may do that. Library code must
//     thread the caller's context — a Background() deep in a helper
//     silently severs cancellation for everything below it.
//  2. Even in package main, a function that itself receives a
//     context.Context must not mint a new root — that is context
//     shadowing, and the received context's cancellation is lost.
//  3. Passing a nil literal where a context.Context parameter is
//     expected is always wrong (callees may not nil-check).
//  4. A function that receives a context but never mentions it while
//     calling ctx-capable module functions is dropping cancellation on
//     the floor; thread it through.
//  5. In internal/fabric — the layer that owns network blocking — a
//     for-loop performing blocking channel or frame I/O must carry a
//     cancellation path: a select with a case receiving from a
//     struct{} channel (ctx.Done(), a closed chan). Loops ranging over
//     a channel are exempt (they end when the producer closes it).
//
// Rules 1-4 apply module-wide; rule 5 is scoped to internal/fabric,
// where the protocol loops live.
var analyzerCtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "context.Context must thread through call chains: no Background()/TODO() outside main, no nil contexts, fabric loops must select on cancellation",
	RunModule: runCtxFlow,
}

// fabricScope is the subtree rule 5 (blocking-loop cancellation)
// applies to.
const fabricScope = "internal/fabric"

func runCtxFlow(p *ModulePass) {
	for _, n := range p.Graph.Nodes() {
		checkCtxRoots(p, n)
		checkCtxThreading(p, n)
		if matchRel(n.Pkg.Rel, fabricScope) {
			checkFabricLoops(p, n)
		}
	}
}

// checkCtxRoots applies rules 1-3 to one function body.
func checkCtxRoots(p *ModulePass, n *FuncNode) {
	info := n.Pkg.Info
	isMain := n.Pkg.Types.Name() == "main"
	hasCtxParam := factsOf(n).AcceptsCtx
	inspectSameFunc(n.Body(), func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
			(fn.Name() == "Background" || fn.Name() == "TODO") {
			switch {
			case hasCtxParam:
				p.Reportf(call.Pos(), "context.%s() shadows the context.Context this function already receives — thread the parameter instead", fn.Name())
			case !isMain:
				p.Reportf(call.Pos(), "context.%s() mints a root context in library code — accept a context.Context and thread the caller's instead", fn.Name())
			}
			return true
		}
		// Rule 3: nil passed where a context is expected.
		sigTV, ok := info.Types[call.Fun]
		if !ok || sigTV.IsType() {
			return true
		}
		sig, ok := sigTV.Type.Underlying().(*types.Signature)
		if !ok || sig.Params() == nil {
			return true
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() {
				break
			}
			if !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			if at, ok := info.Types[arg]; ok && at.IsNil() {
				p.Reportf(arg.Pos(), "nil passed as context.Context — use the caller's context (or context.Background() at a main entry point)")
			}
		}
		return true
	})
}

// checkCtxThreading applies rule 4: a function that accepts a context,
// never mentions it, yet calls module functions that take one.
func checkCtxThreading(p *ModulePass, n *FuncNode) {
	facts := factsOf(n)
	if !facts.AcceptsCtx || facts.UsesCtx {
		return
	}
	for _, site := range n.Calls {
		for _, t := range site.Targets {
			if factsOf(t).AcceptsCtx {
				p.Reportf(n.Pos(), "%s receives a context.Context it never uses, yet calls ctx-capable %s — thread the context through (or drop the parameter)",
					n.Name(), t.Name())
				return
			}
		}
	}
}

// checkFabricLoops applies rule 5 to one fabric function: every
// for-loop doing blocking channel/frame I/O needs a cancellation
// select in the loop.
func checkFabricLoops(p *ModulePass, n *FuncNode) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Pkg.Info
	inspectSameFunc(body, func(nd ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch l := nd.(type) {
		case *ast.ForStmt:
			loopBody = l.Body
		case *ast.RangeStmt:
			if t, ok := info.Types[l.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					return true // range-over-channel ends on close: canonical shutdown
				}
			}
			loopBody = l.Body
		default:
			return true
		}
		checkOneLoop(p, info, loopBody)
		return true
	})
}

// checkOneLoop flags blocking operations in a loop body that has no
// cancellation select. Nested function literals run on their own
// goroutines' terms and are skipped; nested loops are visited by the
// outer walk and get their own check.
func checkOneLoop(p *ModulePass, info *types.Info, body *ast.BlockStmt) {
	hasCancel := false
	// The comm statements of each select are the select's own channel
	// ops, not naked blocking ops.
	comm := make(map[ast.Stmt]bool)
	inspectSameFunc(body, func(nd ast.Node) bool {
		sel, ok := nd.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc := cl.(*ast.CommClause)
			if cc.Comm != nil {
				comm[cc.Comm] = true
			}
			if commIsCancellation(info, cc.Comm) {
				hasCancel = true
			}
		}
		return true
	})
	if hasCancel {
		return
	}
	// Scan this loop's own statements; nested loops are visited by the
	// enclosing walk and get their own independent check.
	inspectSameLoop(body, func(nd ast.Node) bool {
		switch op := nd.(type) {
		case *ast.SendStmt:
			if !comm[op] {
				p.Reportf(op.Pos(), "blocking channel send in a fabric loop with no cancellation path — select on it together with ctx.Done() (or a closed chan struct{})")
			}
		case *ast.UnaryExpr:
			if op.Op == token.ARROW && !recvInComm(comm, op) {
				p.Reportf(op.Pos(), "blocking channel receive in a fabric loop with no cancellation path — select on it together with ctx.Done() (or a closed chan struct{})")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(op) {
				p.Reportf(op.Pos(), "blocking select in a fabric loop has no cancellation case — add one receiving from ctx.Done() (or a closed chan struct{})")
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, op); fn != nil && blockingFrameFuncs[fn.Name()] {
				p.Reportf(op.Pos(), "blocking %s in a fabric loop with no cancellation path — pair the loop with a ctx.Done() watcher that unblocks it (e.g. context.AfterFunc closing the conn)", fn.Name())
			}
		}
		return true
	})
}

// inspectSameLoop walks a loop body calling f on every node but does
// not descend into nested function literals or nested loops.
func inspectSameLoop(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		return f(m)
	})
}

// blockingFrameFuncs are the fabric wire primitives (and listener
// accept) that block indefinitely on a healthy-but-quiet peer.
var blockingFrameFuncs = map[string]bool{
	"ReadFrame": true, "WriteFrame": true, "Accept": true,
}

// commIsCancellation reports whether a select comm clause receives from
// a struct{} channel — the shape of ctx.Done() and closed-signal chans.
func commIsCancellation(info *types.Info, comm ast.Stmt) bool {
	var recv *ast.UnaryExpr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv, _ = ast.Unparen(s.X).(*ast.UnaryExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv, _ = ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
		}
	}
	if recv == nil || recv.Op != token.ARROW {
		return false
	}
	t, ok := info.Types[recv.X]
	if !ok {
		return false
	}
	ch, ok := t.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// recvInComm reports whether the receive expression is (part of) a
// select comm statement rather than a naked blocking receive.
func recvInComm(comm map[ast.Stmt]bool, recv *ast.UnaryExpr) bool {
	for stmt := range comm {
		found := false
		ast.Inspect(stmt, func(nd ast.Node) bool {
			if nd == ast.Node(recv) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// selectHasDefault reports whether the select has a default clause
// (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cl.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}
