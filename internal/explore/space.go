// Package explore implements the paper's case study I: LPM-guided design
// space exploration on a reconfigurable architecture. Six architecture
// parameters are explored — pipeline issue width, instruction window (IW)
// size, ROB size, L1 cache port count, MSHR count, and L2 cache
// interleaving (bank count) — exactly the set of Table I. With ~10 values
// per parameter the full space has ~10^6 points, so exhaustive search is
// not an option; the LPMR-reduction algorithm walks it with a handful of
// simulations instead.
package explore

import (
	"fmt"

	"lpm/internal/sim/chip"
	"lpm/internal/sim/cpu"
	"lpm/internal/sim/dram"
	"lpm/internal/trace"
)

// Point is one hardware configuration in the design space.
type Point struct {
	// IssueWidth is the pipeline issue width.
	IssueWidth int
	// IWSize is the instruction window size.
	IWSize int
	// ROBSize is the reorder buffer size.
	ROBSize int
	// L1Ports is the L1 data cache port count.
	L1Ports int
	// MSHRs is the L1 MSHR count.
	MSHRs int
	// L2Banks is the L2 interleaving degree.
	L2Banks int
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("issue=%d IW=%d ROB=%d L1ports=%d MSHRs=%d L2banks=%d",
		p.IssueWidth, p.IWSize, p.ROBSize, p.L1Ports, p.MSHRs, p.L2Banks)
}

// Cost is a relative hardware-cost proxy: the paper's "minimal hardware
// cost" tiebreaker. Wider structures cost proportionally more; the
// weights reflect rough area sensitivity (ROB/IW entries dominate).
func (p Point) Cost() float64 {
	return 4*float64(p.IssueWidth) +
		1*float64(p.IWSize) +
		1*float64(p.ROBSize) +
		8*float64(p.L1Ports) +
		2*float64(p.MSHRs) +
		2*float64(p.L2Banks)
}

// TableConfigs returns the five named configurations A–E of the paper's
// Table I.
func TableConfigs() map[string]Point {
	return map[string]Point{
		"A": {IssueWidth: 4, IWSize: 32, ROBSize: 32, L1Ports: 1, MSHRs: 4, L2Banks: 4},
		"B": {IssueWidth: 4, IWSize: 64, ROBSize: 64, L1Ports: 1, MSHRs: 8, L2Banks: 8},
		"C": {IssueWidth: 6, IWSize: 64, ROBSize: 64, L1Ports: 2, MSHRs: 16, L2Banks: 8},
		"D": {IssueWidth: 8, IWSize: 128, ROBSize: 128, L1Ports: 4, MSHRs: 16, L2Banks: 8},
		"E": {IssueWidth: 8, IWSize: 96, ROBSize: 96, L1Ports: 4, MSHRs: 16, L2Banks: 8},
	}
}

// Space is the per-parameter value menu, each ascending.
type Space struct {
	IssueWidths []int
	IWSizes     []int
	ROBSizes    []int
	L1Ports     []int
	MSHRs       []int
	L2Banks     []int
}

// DefaultSpace returns a menu with ten values per parameter (10^6
// points), covering the Table I configurations.
func DefaultSpace() Space {
	return Space{
		IssueWidths: []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16},
		IWSizes:     []int{8, 16, 24, 32, 48, 64, 96, 128, 192, 256},
		ROBSizes:    []int{8, 16, 32, 48, 64, 96, 128, 192, 256, 384},
		L1Ports:     []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16},
		MSHRs:       []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64},
		L2Banks:     []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64},
	}
}

// Size returns the number of points in the space.
func (s Space) Size() int {
	return len(s.IssueWidths) * len(s.IWSizes) * len(s.ROBSizes) *
		len(s.L1Ports) * len(s.MSHRs) * len(s.L2Banks)
}

// index locates v in menu (the largest index with menu[i] <= v; v below
// the menu maps to 0).
func index(menu []int, v int) int {
	best := 0
	for i, m := range menu {
		if m <= v {
			best = i
		}
	}
	return best
}

// Indices returns the per-parameter indices of the point nearest p from
// below.
func (s Space) Indices(p Point) [6]int {
	return [6]int{
		index(s.IssueWidths, p.IssueWidth),
		index(s.IWSizes, p.IWSize),
		index(s.ROBSizes, p.ROBSize),
		index(s.L1Ports, p.L1Ports),
		index(s.MSHRs, p.MSHRs),
		index(s.L2Banks, p.L2Banks),
	}
}

// At materialises the point for an index vector.
func (s Space) At(ix [6]int) Point {
	return Point{
		IssueWidth: s.IssueWidths[ix[0]],
		IWSize:     s.IWSizes[ix[1]],
		ROBSize:    s.ROBSizes[ix[2]],
		L1Ports:    s.L1Ports[ix[3]],
		MSHRs:      s.MSHRs[ix[4]],
		L2Banks:    s.L2Banks[ix[5]],
	}
}

// ChipConfig builds a single-core chip configuration realising point p for
// the given workload generator. Base parameters (cache sizes, DRAM) follow
// the chip defaults.
func ChipConfig(p Point, gen trace.Generator) chip.Config {
	cpuCfg := cpu.Config{
		Name:       "core0",
		IssueWidth: p.IssueWidth,
		ROBSize:    p.ROBSize,
		IWSize:     p.IWSize,
		LSQSize:    p.IWSize,
	}
	l1 := chip.DefaultL1("L1D-0", 32*chip.KB)
	l1.Ports = p.L1Ports
	l1.Banks = max(p.L1Ports, 4)
	l1.MSHRs = p.MSHRs
	l2 := chip.DefaultL2("L2", 4*chip.MB)
	l2.Banks = p.L2Banks
	return chip.Config{
		Name:  "explore",
		Cores: []chip.CoreSlot{{CPU: cpuCfg, L1: l1, Workload: gen}},
		L2:    l2,
		Mem:   dram.DDR3("mem"),
	}
}
