package faultinject

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer func() { _ = c.Close() }()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *NetProxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestNetProxyPassThrough(t *testing.T) {
	t.Parallel()
	p, err := NewNetProxy(startEcho(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := readFull(c, got, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	if p.Forwards() == 0 {
		t.Fatal("no forwards counted")
	}
}

func TestNetProxyPartitionStallsWithoutClose(t *testing.T) {
	t.Parallel()
	p, err := NewNetProxy(startEcho(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)

	p.Partition()
	if _, err := c.Write([]byte("stalled")); err != nil {
		t.Fatalf("write into partition failed: %v (connection should stay open)", err)
	}
	// The bytes must NOT come back while partitioned.
	got := make([]byte, 7)
	if _, err := readFull(c, got, 300*time.Millisecond); err == nil {
		t.Fatal("read succeeded during partition")
	}
	// Healing releases the parked bytes — nothing was lost.
	p.Heal()
	if _, err := readFull(c, got, 2*time.Second); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if string(got) != "stalled" {
		t.Fatalf("after heal got %q", got)
	}
}

func TestNetProxyCorruptNextFlipsOneBit(t *testing.T) {
	t.Parallel()
	p, err := NewNetProxy(startEcho(t), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)

	p.CorruptNext(1)
	msg := []byte("abcdefgh")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := readFull(c, got, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range msg {
		diff += popcount(msg[i] ^ got[i])
	}
	if diff != 1 {
		t.Fatalf("%d bits differ, want exactly 1 (%q vs %q)", diff, msg, got)
	}
	// Fault is one-shot: the next chunk passes clean.
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := readFull(c, got, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("second chunk corrupted too: %q", got)
	}
}

func TestNetProxyTearNextResetsConnection(t *testing.T) {
	t.Parallel()
	p, err := NewNetProxy(startEcho(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)

	p.TearNext(1)
	msg := []byte("0123456789abcdef")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	// At most half arrives, then the session dies.
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, len(msg))
	total := 0
	for {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			break
		}
		if total == len(buf) {
			break
		}
	}
	if total >= len(msg) {
		t.Fatalf("full %d bytes arrived through a torn chunk", total)
	}
}

func TestNetProxyDropAllSevers(t *testing.T) {
	t.Parallel()
	p, err := NewNetProxy(startEcho(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := readFull(c, one, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.DropAll()
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(one); err == nil {
		t.Fatal("read succeeded after DropAll")
	}
}

func readFull(c net.Conn, buf []byte, timeout time.Duration) (int, error) {
	if err := c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
