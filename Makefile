# Build/test entry points; `make ci` is the CI gate.
GO ?= go

.PHONY: all build test race vet lint fmt-check bench benchjson benchjson-check fuzz chaos chaos-net fabric-test ci golden diffgate race-serve serve-test

all: build vet lint test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages that use or implement the parallel simulation fan-out.
race:
	$(GO) test -race ./internal/parallel ./internal/sched ./internal/explore .

vet:
	$(GO) vet ./...

# The repository's own static-analysis suite (see DESIGN.md §8).
# LINTWORKERS bounds the package-analysis fan-out (0 = GOMAXPROCS);
# LINTFLAGS passes extra lpmlint flags (CI sets -format=github so
# findings surface as PR annotations).
LINTWORKERS ?= 0
LINTFLAGS ?=
lint:
	$(GO) run ./cmd/lpmlint -workers $(LINTWORKERS) $(LINTFLAGS) ./...

# gofmt gate: fails listing the offending files, which gofmt -l alone
# would not (it always exits 0).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# One pass over every benchmark, reporting the reproduced paper metrics.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Re-measure core throughput and pin it to BENCH_core.json.
benchjson:
	$(GO) run ./cmd/lpmbench -o BENCH_core.json

# Regression gate: re-measure and fail when the fast-forward or
# functional speedup over the stepped baseline falls more than 20%
# below the pinned BENCH_core.json (ratios, so machine-independent).
benchjson-check:
	$(GO) run ./cmd/lpmbench -check BENCH_core.json

# Short fuzz smoke over the fuzz targets; the checked-in corpora under
# testdata/fuzz/ replay in ordinary `go test` runs regardless.
fuzz:
	$(GO) test -fuzz FuzzTraceDecode -fuzztime 15s -run '^$$' ./internal/trace
	$(GO) test -fuzz FuzzCacheConfigValidate -fuzztime 15s -run '^$$' ./internal/sim/cache
	$(GO) test -fuzz FuzzFabricFrameDecode -fuzztime 15s -run '^$$' ./internal/fabric

# Sweep-fabric suite: the in-process coordinator/worker harness and the
# sharded-vs-serial determinism properties under the race detector, plus
# the lpmworker CLI smoke (-help/-version must exit 0).
fabric-test:
	$(GO) test -race -count=1 ./internal/fabric ./cmd/lpmworker
	$(GO) test -race -count=1 -run 'TestSharded|TestChaosSharded' . ./cmd/lpmexplore ./cmd/lpmreport
	$(GO) run ./cmd/lpmworker -help
	$(GO) run ./cmd/lpmworker -version

# Fault-injection suite: every recovery path (checkpoint/resume
# bit-identity, watchdog livelock isolation, partial reports on
# cancellation) under the race detector. Also part of the full -race
# sweep in `make ci`; this target runs it standalone.
chaos:
	$(GO) test -race -count=1 -run '^TestChaos' ./...

# Network-fault resilience suite: the deterministic fault-injection
# scenarios behind the fleet resilience layer — partition during
# straggler duplication, hung-TCP heartbeat loss, corrupt-frame
# reconnect, lying-worker quarantine, coordinator kill -9 journal
# resume — race-enabled. A subset of `make chaos`, kept addressable on
# its own because these tests exercise the NetProxy/failpoint machinery
# specifically.
chaos-net:
	$(GO) test -race -count=1 -run '^TestChaosFabric' ./internal/fabric

# Regenerate the golden files after an intentional model/simulator change.
golden:
	$(GO) test -run Golden -update .

# Golden-report regression gate: rebuild the pinned fig1+interval report
# fresh and structurally diff it against the checked-in golden with
# lpmdiff. The build is deterministic, so the gate runs at zero
# tolerance; lpmdiff exits 1 on any drift.
diffgate:
	$(GO) run ./cmd/lpmreport -json -quick -experiment fig1,interval \
		-interval-samples 50000 > /tmp/lpm-report-fresh.json
	$(GO) run ./cmd/lpmdiff testdata/golden/report_fig1_interval.json /tmp/lpm-report-fresh.json

# Race-detector pass over the live exposition server: the -serve
# endpoints are scraped while windows are being published.
race-serve:
	$(GO) test -race -run 'TestServeEndpoints|TestRunServeMidRun' ./cmd/lpmrun

# Fleet control-plane suite: the run registry/scheduler, SSE hub
# backpressure, the serve lifecycle, and the sharded load test (1k
# concurrent scrapes + 100 SSE subscribers against a byte-identical
# sharded sweep), all under the race detector.
serve-test:
	$(GO) test -race -count=1 ./internal/ctrl ./cmd/lpmserve ./internal/resilience

# Full CI gate: formatting, build, vet, lint, the fault-injection suite,
# the whole suite under the race detector, the golden-report diff gate,
# and the fuzz smoke. The cheap static gates (fmt/vet/lint) run first so
# a finding fails the build in seconds, before the long chaos/race/fuzz
# suites spin up.
ci: fmt-check build vet lint
	$(MAKE) chaos
	$(MAKE) chaos-net
	$(MAKE) serve-test
	$(GO) test -race ./...
	$(MAKE) diffgate
	$(MAKE) fuzz
