package parallel

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// KeyOf builds a deterministic memo key from the %#v representation of
// each part. The simulation inputs fingerprinted this way (explore.Point,
// trace.Profile, scale/window scalars) are plain value structs, so the
// representation is a faithful content fingerprint: equal inputs produce
// equal keys and differing inputs differ in at least one field's
// rendering.
func KeyOf(parts ...any) string {
	var b strings.Builder
	for _, p := range parts {
		fmt.Fprintf(&b, "%#v\x1f", p)
	}
	return b.String()
}

// memoEntry is one in-flight or completed computation.
type memoEntry[V any] struct {
	ready chan struct{} // closed when val/err are final
	val   V
	err   error
}

// Memo is a content-keyed, single-flight result cache: concurrent Do
// calls with the same key run the function once and share the result.
// The experiment drivers keep one Memo per simulation kind (design-point
// runs, profiling runs, alone-IPC runs), so a point evaluated by Table1
// is free when CaseStudyI or a speculative frontier batch revisits it.
type Memo[V any] struct {
	name    string // non-empty for checkpointable memos (NewNamedMemo)
	mu      sync.Mutex
	entries map[string]*memoEntry[V]
	hits    int64
	misses  int64
}

// NewMemo returns an empty memo registered for ResetAllMemos.
func NewMemo[V any]() *Memo[V] {
	m := &Memo[V]{entries: make(map[string]*memoEntry[V])}
	registry.mu.Lock()
	registry.memos = append(registry.memos, m)
	registry.mu.Unlock()
	return m
}

// NewNamedMemo is NewMemo plus a stable name under which the memo's
// completed entries appear in ExportMemos/ImportMemos — the hook the
// checkpoint layer uses to persist simulation results across process
// deaths. V must round-trip through JSON.
func NewNamedMemo[V any](name string) *Memo[V] {
	m := NewMemo[V]()
	m.name = name
	return m
}

// Do returns the memoised result for key, computing it with fn on the
// first call. Concurrent callers of a key in flight block until the
// computation finishes and share its outcome. A panic in fn is captured
// as the entry's error so waiters never deadlock; errors are memoised
// like values (the simulations here are deterministic, so retrying
// cannot succeed).
func (m *Memo[V]) Do(key string, fn func() (V, error)) (V, error) {
	//lint:ignore ctxflow ctx-less compat wrapper; DoCtx is the interruptible form
	return m.DoCtx(context.Background(), key, func(context.Context) (V, error) { return fn() })
}

// DoCtx is Do with cooperative cancellation. A result whose error is
// the context's cancellation is NOT memoised — the entry is dropped so
// a later retry (or a resumed run) recomputes instead of replaying the
// aborted attempt. Deterministic failures (including livelocks) are
// memoised like values, since retrying cannot change them. A panic
// whose value is an error is wrapped with %w so structured errors
// survive the memo boundary.
func (m *Memo[V]) DoCtx(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.hits++
		m.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &memoEntry[V]{ready: make(chan struct{})}
	m.entries[key] = e
	m.misses++
	m.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok {
					e.err = fmt.Errorf("parallel: memoised computation panicked: %w", err)
				} else {
					e.err = fmt.Errorf("parallel: memoised computation panicked: %v", r)
				}
			}
			close(e.ready)
		}()
		e.val, e.err = fn(ctx)
	}()
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		m.mu.Lock()
		if m.entries[key] == e {
			delete(m.entries, key)
		}
		m.mu.Unlock()
	}
	return e.val, e.err
}

// Snapshot copies every successfully completed entry — the persistable
// portion of the cache. In-flight and failed entries are skipped: a
// checkpoint must only replay results that are certainly final.
func (m *Memo[V]) Snapshot() map[string]V {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]V, len(m.entries))
	for k, e := range m.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				out[k] = e.val
			}
		default:
		}
	}
	return out
}

// Seed inserts completed entries, as produced by Snapshot. Existing
// keys are left alone (the live entry may be in flight).
func (m *Memo[V]) Seed(vals map[string]V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range vals {
		if _, ok := m.entries[k]; ok {
			continue
		}
		e := &memoEntry[V]{ready: make(chan struct{}), val: v}
		close(e.ready)
		m.entries[k] = e
	}
}

// Stats returns the cumulative hit and miss counts. A hit is any Do
// call that found an existing entry, including one still in flight.
func (m *Memo[V]) Stats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// Len returns the number of memoised keys.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Reset drops every entry and zeroes the counters.
func (m *Memo[V]) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = make(map[string]*memoEntry[V])
	m.hits, m.misses = 0, 0
}

// resettable lets the registry hold memos of different value types.
type resettable interface{ Reset() }

var registry struct {
	mu    sync.Mutex
	memos []resettable
}

// ResetAllMemos clears every Memo created through NewMemo — the
// serial-vs-parallel determinism tests use it to force real
// re-simulation between runs.
func ResetAllMemos() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, m := range registry.memos {
		m.Reset()
	}
}

// export marshals the memo's completed entries; part of the porter
// interface behind ExportMemos.
func (m *Memo[V]) export() (json.RawMessage, error) {
	return json.Marshal(m.Snapshot())
}

// load unmarshals a previously exported snapshot and seeds it.
func (m *Memo[V]) load(data json.RawMessage) error {
	var vals map[string]V
	if err := json.Unmarshal(data, &vals); err != nil {
		return err
	}
	m.Seed(vals)
	return nil
}

// porter lets the registry export/import memos of different value
// types.
type porter interface {
	export() (json.RawMessage, error)
	load(json.RawMessage) error
}

// ExportMemos snapshots every named memo into a name → entries map,
// the payload the checkpoint layer persists.
func ExportMemos() (map[string]json.RawMessage, error) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]json.RawMessage)
	for _, m := range registry.memos {
		name := memoName(m)
		if name == "" {
			continue
		}
		p, ok := m.(porter)
		if !ok {
			continue
		}
		data, err := p.export()
		if err != nil {
			return nil, fmt.Errorf("parallel: export memo %q: %w", name, err)
		}
		out[name] = data
	}
	return out, nil
}

// ImportMemos seeds named memos from an ExportMemos payload. Names with
// no live memo are skipped (an old checkpoint may carry caches this
// build no longer has); a payload that does not unmarshal is an error.
func ImportMemos(snap map[string]json.RawMessage) error {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, m := range registry.memos {
		name := memoName(m)
		if name == "" {
			continue
		}
		data, ok := snap[name]
		if !ok {
			continue
		}
		p, ok := m.(porter)
		if !ok {
			continue
		}
		if err := p.load(data); err != nil {
			return fmt.Errorf("parallel: import memo %q: %w", name, err)
		}
	}
	return nil
}

// named lets the registry read the name across value types.
type named interface{ Name() string }

// Name returns the memo's checkpoint name ("" for anonymous memos).
func (m *Memo[V]) Name() string { return m.name }

func memoName(m resettable) string {
	if n, ok := m.(named); ok {
		return n.Name()
	}
	return ""
}

// statser lets the registry aggregate counters across memos of different
// value types.
type statser interface{ Stats() (int64, int64) }

// MemoStats sums hit and miss counts over every Memo created through
// NewMemo — the process-wide view the observability facade publishes.
func MemoStats() (hits, misses int64) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, m := range registry.memos {
		if s, ok := m.(statser); ok {
			h, mi := s.Stats()
			hits += h
			misses += mi
		}
	}
	return hits, misses
}
