package cliutil

// Structured-logging construction shared by every process that logs:
// the CLIs build one slog.Logger here (JSON for machines, text for
// humans, discard for quiet paths) instead of hand-rolling fmt.Fprintf
// diagnostics.

import (
	"context"
	"io"
	"log/slog"
)

// discardHandler drops every record. (log/slog gains a built-in
// DiscardHandler in newer Go releases; this keeps the module's language
// version honest.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// DiscardLogger returns a logger that drops everything — the nil-safe
// default for library types that accept an optional *slog.Logger.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }

// NewLogger builds a logger writing to w. format selects the handler:
// "json" emits one JSON object per record (the machine-consumable form
// lpmserve and the fabric default to), anything else the human-readable
// text handler. A nil w discards.
func NewLogger(w io.Writer, format string) *slog.Logger {
	if w == nil {
		return DiscardLogger()
	}
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.NewTextHandler(w, nil))
}

// LoggerOrDiscard returns l unchanged when non-nil, and the discard
// logger otherwise, so callers can log unconditionally.
func LoggerOrDiscard(l *slog.Logger) *slog.Logger {
	if l == nil {
		return DiscardLogger()
	}
	return l
}
