package lpm

import (
	"math"
	"testing"
)

func TestFig1MatchesPaperExactly(t *testing.T) {
	p := Fig1()
	ref := Fig1Reference()
	checks := []struct {
		name      string
		got, want float64
	}{
		{"C-AMAT", p.CAMAT(), ref.CAMAT},
		{"AMAT", p.AMAT(), ref.AMAT},
		{"CH", p.CH(), ref.CH},
		{"CM", p.CM(), ref.CM},
		{"pAMP", p.PAMP(), ref.PAMP},
		{"pMR", p.PMR(), ref.PMR},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestPublicChipWorkflow(t *testing.T) {
	// The quickstart path: build a chip, run it, read C-AMAT and LPMRs.
	cfg := SingleCore("401.bzip2")
	gen, err := NewWorkload("401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	cpiExe := MeasureCPIexe(cfg.Cores[0].CPU, gen, 3, 10000)
	ch := NewChip(cfg)
	ch.Run(10000, 5_000_000)
	m := ch.Measure(0, cpiExe)
	if m.LPMR1() <= 0 {
		t.Fatalf("LPMR1 = %v", m.LPMR1())
	}
	if FormatLPMR(m) == "" {
		t.Fatal("empty format")
	}
}

func TestWorkloadsEnumeration(t *testing.T) {
	ws := Workloads()
	if len(ws) != 16 {
		t.Fatalf("%d workloads", len(ws))
	}
	if _, err := NewWorkload("does-not-exist"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	sorted := SortedWorkloads()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestAMATHelper(t *testing.T) {
	if AMAT(3, 0.4, 2) != 3.8 {
		t.Fatal("AMAT helper wrong")
	}
}

func TestTable1QuickShape(t *testing.T) {
	rows := Table1(QuickScale())
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.PaperLPMR[0] == 0 {
			t.Fatalf("row %s missing paper reference", r.Name)
		}
	}
	// Headline shape: D closes most of A's mismatch, and stalls shrink.
	a, d := byName["A"], byName["D"]
	if d.M.LPMR1() >= a.M.LPMR1() {
		t.Fatalf("LPMR1 A=%.2f D=%.2f", a.M.LPMR1(), d.M.LPMR1())
	}
	if d.M.MeasuredStall >= a.M.MeasuredStall {
		t.Fatalf("stall A=%.3f D=%.3f", a.M.MeasuredStall, d.M.MeasuredStall)
	}
	// E trims hardware relative to D.
	e := byName["E"]
	if e.Point.Cost() >= d.Point.Cost() {
		t.Fatal("E not cheaper than D")
	}
}

func TestCaseStudyIQuick(t *testing.T) {
	res := CaseStudyI(CoarseGrain, QuickScale())
	if res.Evaluations == 0 {
		t.Fatal("no evaluations")
	}
	if res.SpaceSize != 1_000_000 {
		t.Fatalf("space size %d", res.SpaceSize)
	}
	frac := float64(res.Evaluations) / float64(res.SpaceSize)
	if frac > 0.001 {
		t.Fatalf("explored %.4f%% of the space — not guided", frac*100)
	}
	if len(res.Algorithm.Steps) == 0 {
		t.Fatal("no algorithm trace")
	}
}

func TestIntervalStudyMatchesPaper(t *testing.T) {
	rows := IntervalStudy(100000)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Analytic-r.Paper) > 1e-6 {
			t.Errorf("%s: analytic %.4f vs paper %.2f", r.Scenario, r.Analytic, r.Paper)
		}
		if math.Abs(r.Simulated-r.Analytic) > 0.015 {
			t.Errorf("%s: simulated %.4f vs analytic %.4f", r.Scenario, r.Simulated, r.Analytic)
		}
	}
}

func TestIdentitiesOnLiveRuns(t *testing.T) {
	// gcc and mcf are low-coalescing workloads, where Eq. (4)'s serving
	// assumption (misses served at C-AMAT2 each) holds; streaming
	// workloads coalesce heavily and violate it (see EXPERIMENTS.md).
	reps, err := Identities(QuickScale(), "403.gcc", "429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		// Eq. (3) is exact up to interval-boundary residue (accesses
		// straddling the warm-up counter reset).
		if r.CAMATvsInvAPC > 5e-3 {
			t.Errorf("%s: C-AMAT vs 1/APC differs by %g", r.Workload, r.CAMATvsInvAPC)
		}
		// Eq. (4) with the measured C-AMAT2 is approximate, and only
		// meaningful when the layer actually misses.
		if r.PMR1 >= 0.01 && r.RecursionRelErr > 0.6 {
			t.Errorf("%s: recursion error %.0f%%", r.Workload, r.RecursionRelErr*100)
		}
		// The stall model tracks the measured stall within a broad band.
		if r.StallMeasured > 0.01 {
			ratio := r.StallModel / r.StallMeasured
			if ratio < 0.2 || ratio > 5 {
				t.Errorf("%s: model stall %.3f vs measured %.3f", r.Workload, r.StallModel, r.StallMeasured)
			}
		}
	}
}

func TestChainThroughPublicAPI(t *testing.T) {
	cfg := SingleCore("403.gcc")
	gen, _ := NewWorkload("403.gcc")
	cpiExe := MeasureCPIexe(cfg.Cores[0].CPU, gen, 3, 10000)
	ch := NewChip(cfg)
	ch.Run(15000, 10_000_000)
	chain := ch.MeasureChain(0, cpiExe)
	if len(chain.Layers) != 3 {
		t.Fatalf("depth %d", len(chain.Layers))
	}
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	m := ch.Measure(0, cpiExe)
	if math.Abs(chain.LPMR(0)-m.LPMR1()) > 1e-9 {
		t.Fatalf("chain LPMR(0) %v != LPMR1 %v", chain.LPMR(0), m.LPMR1())
	}
	if b := chain.BottleneckLayer(); b < 0 || b > 2 {
		t.Fatalf("bottleneck %d", b)
	}
}

func TestSensitivityAPI(t *testing.T) {
	c := CAMAT{H: 3, CH: 2.5, PMR: 0.2, PAMP: 2, CM: 1}
	s := Sensitivities(c)
	if s.DH <= 0 || s.DCH >= 0 {
		t.Fatal("gradient signs wrong")
	}
	if BestLever(c) == "" {
		t.Fatal("no lever")
	}
}

func TestFig1ReferenceValues(t *testing.T) {
	ref := Fig1Reference()
	if ref.CAMAT != 1.6 || ref.AMAT != 3.8 {
		t.Fatal("reference corrupted")
	}
}
