package phase

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceProperties(t *testing.T) {
	a := Signature{1, 2, 3}
	if a.Distance(a) != 0 {
		t.Fatal("self distance not zero")
	}
	b := Signature{2, 4, 6}
	if d1, d2 := a.Distance(b), b.Distance(a); d1 != d2 {
		t.Fatalf("not symmetric: %v vs %v", d1, d2)
	}
	if a.Distance(Signature{1, 2}) != 1 {
		t.Fatal("length mismatch not maximal")
	}
	if (Signature{}).Distance(Signature{}) != 1 {
		t.Fatal("empty signatures should be maximally distant")
	}
	if (Signature{0, 0}).Distance(Signature{0, 0}) != 0 {
		t.Fatal("all-zero identical signatures should be distance 0")
	}
}

func TestDistanceBoundedProperty(t *testing.T) {
	f := func(a, b [6]float64) bool {
		s1 := Signature{math.Abs(a[0]), math.Abs(a[1]), math.Abs(a[2]), math.Abs(a[3]), math.Abs(a[4]), math.Abs(a[5])}
		s2 := Signature{math.Abs(b[0]), math.Abs(b[1]), math.Abs(b[2]), math.Abs(b[3]), math.Abs(b[4]), math.Abs(b[5])}
		d := s1.Distance(s2)
		return d >= 0 && d <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorSeparatesDistinctBehaviours(t *testing.T) {
	d := NewDetector(0.10)
	memBound := FromLPM(0.45, 0.30, 0.20, 1.2, 3.0, 0.3)
	compute := FromLPM(0.20, 0.01, 0.002, 2.5, 1.0, 2.8)
	id1 := d.Classify(memBound)
	id2 := d.Classify(compute)
	if id1 == id2 {
		t.Fatal("distinct behaviours merged")
	}
	// Small perturbations of each stay in their phase.
	jitter := FromLPM(0.44, 0.31, 0.21, 1.25, 2.9, 0.31)
	if got := d.Classify(jitter); got != id1 {
		t.Fatalf("jittered mem-bound classified as %d, want %d", got, id1)
	}
	if d.Phases() != 2 {
		t.Fatalf("phases = %d", d.Phases())
	}
}

func TestDetectorCentroidTracksMembers(t *testing.T) {
	d := NewDetector(0.5)
	id := d.Classify(Signature{1, 1})
	d.Classify(Signature{3, 3})
	c := d.Centroid(id)
	if math.Abs(c[0]-2) > 1e-12 || math.Abs(c[1]-2) > 1e-12 {
		t.Fatalf("centroid = %v, want [2 2]", c)
	}
	if d.Centroid(99) != nil {
		t.Fatal("unknown centroid should be nil")
	}
}

func TestDetectorMaxPhases(t *testing.T) {
	d := NewDetector(0.0001)
	d.MaxPhases = 3
	// Wildly different signatures, more than the table can hold.
	for i := 1; i <= 10; i++ {
		d.Classify(Signature{float64(i * i * 100), 1, 1})
	}
	if d.Phases() > 3 {
		t.Fatalf("phases = %d exceeds cap", d.Phases())
	}
}

func TestTrackerChangeDetection(t *testing.T) {
	tr := NewTracker(nil)
	a := FromLPM(0.45, 0.30, 0.20, 1.2, 3.0, 0.3)
	b := FromLPM(0.20, 0.01, 0.002, 2.5, 1.0, 2.8)

	if _, changed := tr.Observe(a); changed {
		t.Fatal("first interval cannot be a change")
	}
	if _, changed := tr.Observe(a); changed {
		t.Fatal("same phase flagged as change")
	}
	id2, changed := tr.Observe(b)
	if !changed {
		t.Fatal("phase switch not detected")
	}
	if _, changed := tr.Observe(b); changed {
		t.Fatal("stable new phase flagged")
	}
	idA, changed := tr.Observe(a)
	if !changed {
		t.Fatal("return to old phase not flagged")
	}
	if idA == id2 {
		t.Fatal("phases collapsed")
	}
	if tr.Changes != 2 || tr.Intervals != 5 {
		t.Fatalf("changes=%d intervals=%d", tr.Changes, tr.Intervals)
	}
}

func TestTrackerConfigurationMemory(t *testing.T) {
	tr := NewTracker(nil)
	a := FromLPM(0.45, 0.30, 0.20, 1.2, 3.0, 0.3)
	id, _ := tr.Observe(a)
	if tr.Recall(id) != nil {
		t.Fatal("unremembered phase has config")
	}
	tr.Remember(id, "config-D")
	if tr.Recall(id) != "config-D" {
		t.Fatal("recall failed")
	}
	if tr.String() == "" {
		t.Fatal("empty string")
	}
}
