package core

import "fmt"

// This file generalises the three-layer LPM formulation to an arbitrary
// hierarchy depth — the paper notes that "the extension to additional
// cache levels is straightforward" (§III); Chain makes it concrete. It
// also provides the sensitivity analysis over the five C-AMAT parameters
// ("five dimensions for memory system optimization", §II).

// Layer is one level of a memory hierarchy as the chain model sees it.
type Layer struct {
	// Name labels the layer ("L1", "L2", "L3", "MM").
	Name string
	// CAMAT is the layer's concurrent average memory access time.
	CAMAT float64
	// MR is the fraction of this layer's accesses forwarded to the next
	// layer (primary-miss ratio); the bottom layer's MR is ignored.
	MR float64
}

// Chain is a full hierarchy: computing parameters plus the layers from
// L1 down to main memory.
type Chain struct {
	// CPIexe and Fmem are the computing-side parameters of Eq. (5).
	CPIexe, Fmem float64
	// Layers runs from L1 (index 0) to the bottom layer.
	Layers []Layer
}

// Validate reports the first problem with the chain, or nil.
func (c Chain) Validate() error {
	if c.CPIexe <= 0 {
		return fmt.Errorf("core: chain CPIexe %v", c.CPIexe)
	}
	if c.Fmem < 0 || c.Fmem > 1 {
		return fmt.Errorf("core: chain fmem %v", c.Fmem)
	}
	if len(c.Layers) == 0 {
		return fmt.Errorf("core: empty chain")
	}
	for i, l := range c.Layers {
		if l.CAMAT < 0 {
			return fmt.Errorf("core: layer %d (%s) C-AMAT %v", i, l.Name, l.CAMAT)
		}
		if i < len(c.Layers)-1 && (l.MR < 0 || l.MR > 1) {
			return fmt.Errorf("core: layer %d (%s) MR %v", i, l.Name, l.MR)
		}
	}
	return nil
}

// LPMR returns the matching ratio of layer i (0-based: LPMR(0) is the
// paper's LPMR1), generalising Eqs. (9)-(11):
//
//	LPMR_{i+1} = C-AMAT_{i+1} · f_mem · MR_1 ··· MR_i / CPI_exe
func (c Chain) LPMR(i int) float64 {
	if i < 0 || i >= len(c.Layers) || c.CPIexe <= 0 {
		return 0
	}
	ratio := c.Layers[i].CAMAT * c.Fmem / c.CPIexe
	for j := 0; j < i; j++ {
		ratio *= c.Layers[j].MR
	}
	return ratio
}

// LPMRs returns every layer's matching ratio.
func (c Chain) LPMRs() []float64 {
	out := make([]float64, len(c.Layers))
	for i := range c.Layers {
		out[i] = c.LPMR(i)
	}
	return out
}

// BottleneckLayer returns the index of the layer with the largest
// matching ratio — the hierarchy level most out of balance with the
// computation, the natural first optimization target.
func (c Chain) BottleneckLayer() int {
	best, bestV := 0, -1.0
	for i := range c.Layers {
		if v := c.LPMR(i); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// ChainFromMeasurement lifts a three-layer Measurement into a Chain.
func ChainFromMeasurement(m Measurement) Chain {
	return Chain{
		CPIexe: m.CPIexe,
		Fmem:   m.Fmem,
		Layers: []Layer{
			{Name: "L1", CAMAT: m.CAMAT1, MR: m.MR1},
			{Name: "L2", CAMAT: m.CAMAT2, MR: m.MR2},
			{Name: "MM", CAMAT: m.CAMAT3},
		},
	}
}

// Sensitivity reports the partial derivative of C-AMAT (Eq. 2) with
// respect to each of its five parameters, evaluated at c — the paper's
// "five dimensions for memory system optimization". Negative entries
// (CH, CM) mean increasing the parameter lowers C-AMAT.
type Sensitivity struct {
	DH, DCH, DPMR, DPAMP, DCM float64
}

// Sensitivities evaluates the gradient of Eq. (2) at the given
// parameters. Zero concurrencies are treated as 1, mirroring
// CAMAT.Value.
func Sensitivities(c CAMAT) Sensitivity {
	ch, cm := c.CH, c.CM
	if ch <= 0 {
		ch = 1
	}
	if cm <= 0 {
		cm = 1
	}
	return Sensitivity{
		DH:    1 / ch,
		DCH:   -c.H / (ch * ch),
		DPMR:  c.PAMP / cm,
		DPAMP: c.PMR / cm,
		DCM:   -c.PMR * c.PAMP / (cm * cm),
	}
}

// BestLever returns the parameter whose unit relative improvement (1%
// change in the favourable direction) yields the largest C-AMAT
// reduction, as a parameter name: "H", "CH", "pMR", "pAMP" or "CM". It
// is the model's answer to "which knob next?".
func BestLever(c CAMAT) string {
	s := Sensitivities(c)
	// Relative moves: decreasing H/pMR/pAMP by 1% of their value,
	// increasing CH/CM by 1%.
	ch, cm := c.CH, c.CM
	if ch <= 0 {
		ch = 1
	}
	if cm <= 0 {
		cm = 1
	}
	gains := map[string]float64{
		"H":    s.DH * c.H * 0.01,
		"CH":   -s.DCH * ch * 0.01,
		"pMR":  s.DPMR * c.PMR * 0.01,
		"pAMP": s.DPAMP * c.PAMP * 0.01,
		"CM":   -s.DCM * cm * 0.01,
	}
	best, bestV := "H", -1.0
	for _, name := range []string{"H", "CH", "pMR", "pAMP", "CM"} {
		if gains[name] > bestV {
			best, bestV = name, gains[name]
		}
	}
	return best
}
