package chip

// Hardened-execution hooks: cooperative cancellation and a forward-
// progress watchdog. Both are opt-in and cost one nil/zero check per
// Tick when off; when armed they piggyback on the cycle counter so the
// hot loop stays branch-predictable (context polled every 1024 cycles,
// progress checked every quarter budget).

import (
	"context"
	"fmt"

	"lpm/internal/obs/timeseries"
	"lpm/internal/resilience"
)

// SetContext attaches ctx for cooperative cancellation: once ctx is
// cancelled, the next poll (at most 1024 cycles later) latches the
// context's error and every run loop stops. Pass nil to detach.
func (c *Chip) SetContext(ctx context.Context) { c.ctx = ctx }

// SetWatchdog arms the forward-progress watchdog: if no core commits an
// instruction and no cache or DRAM retires a request across budget
// consecutive cycles, the run loops stop with a *resilience.LivelockError
// carrying the diagnostic bundle. budget 0 disarms.
func (c *Chip) SetWatchdog(budget uint64) {
	c.wdBudget = budget
	c.wdLastSig = c.progressSig()
	c.wdLastCycle = c.now
}

// Err returns the latched run error: nil while healthy, the context's
// error after cancellation, or a *resilience.LivelockError after a
// watchdog trip. Once latched it stays; the chip is done.
func (c *Chip) Err() error { return c.runErr }

// progressSig folds every forward-progress counter into one value; any
// change between observations means the chip did something. Summing
// (rather than hashing) is enough: the counters are monotonic between
// resets, and a reset changes the sum too.
func (c *Chip) progressSig() uint64 {
	var s uint64
	for _, core := range c.cores {
		if core != nil {
			s += core.Retired()
		}
	}
	for _, l1 := range c.l1s {
		st := l1.Stats()
		s += st.Hits + st.Misses
	}
	ms := c.mem.Stats()
	return s + ms.Reads + ms.Writes
}

// checkProgress runs on the watchdog cadence: record progress, or trip
// once a full budget of cycles has passed without any.
func (c *Chip) checkProgress() {
	sig := c.progressSig()
	if sig != c.wdLastSig {
		c.wdLastSig = sig
		c.wdLastCycle = c.now
		return
	}
	if c.now-c.wdLastCycle >= c.wdBudget && c.runErr == nil {
		c.runErr = c.livelockError()
	}
}

// livelockError assembles the diagnostic bundle at trip time: retired
// counts, queue occupancies at every layer, and — when a sampler is
// attached — the per-core stall attribution accumulated since the last
// window plus the last closed timeline window.
func (c *Chip) livelockError() *resilience.LivelockError {
	//lint:ignore hotpathalloc livelock trip path; the simulation is aborting and the bundle is the product
	e := &resilience.LivelockError{
		Workload: c.cfg.Name,
		Cycle:    c.now,
		Budget:   c.wdBudget,
		//lint:ignore hotpathalloc livelock trip path; the simulation is aborting
		Occupancy: make(map[string]uint64),
	}
	for _, core := range c.cores {
		var r uint64
		if core != nil {
			r = core.Retired()
		}
		e.Retired = append(e.Retired, r)
	}
	for i, l1 := range c.l1s {
		//lint:ignore hotpathalloc livelock trip path; the simulation is aborting
		e.Occupancy[fmt.Sprintf("l1.%d.mshr_occupancy", i)] = uint64(l1.OutstandingMisses())
	}
	e.Occupancy["l2.mshr_occupancy"] = uint64(c.l2.OutstandingMisses())
	if c.l3 != nil {
		e.Occupancy["l3.mshr_occupancy"] = uint64(c.l3.OutstandingMisses())
	}
	if c.router != nil {
		e.Occupancy["noc.pending"] = uint64(c.router.Pending())
	}
	e.Occupancy["dram.queue_depth"] = uint64(c.mem.QueuedRequests())
	e.Occupancy["dram.in_flight"] = uint64(c.mem.InFlight())
	if c.ts != nil {
		//lint:ignore hotpathalloc livelock trip path; the simulation is aborting
		e.Stalls = append([]timeseries.StallTree(nil), c.ts.stall...)
		if series := c.ts.s.Series(); len(series.Windows) > 0 {
			w := series.Windows[len(series.Windows)-1]
			e.Window = &w
		}
	}
	return e
}
