package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lpm"
)

// writeDoc marshals a report-shaped JSON literal to a temp file.
func writeDoc(t *testing.T, dir, name, doc string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseDoc = `{
  "schema": "lpm-report/v2",
  "tool": "lpmreport",
  "scale": {"Warmup": 1000, "Window": 500},
  "seed": 42,
  "experiments": [
    {
      "name": "timeline",
      "timeline": [
        {
          "name": "A",
          "point": "p",
          "cpi_exe": 0.5,
          "series": {
            "version": 1, "width": 256, "adaptive": false, "dropped": 0,
            "windows": [
              {"index": 0, "start": 0, "end": 256, "phase": -1,
               "derived": {"ipc": 1.0, "lpmr1": 2.0, "lpmr2": 1.0, "lpmr3": 0.5}},
              {"index": 1, "start": 256, "end": 512, "phase": -1,
               "derived": {"ipc": 0.9, "lpmr1": 2.5, "lpmr2": 1.2, "lpmr3": 0.6}}
            ]
          }
        }
      ]
    }
  ]
}`

func TestDiffIdenticalReports(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", baseDoc)
	b := writeDoc(t, dir, "b.json", baseDoc)
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{a, b}, &out, &errb); err != nil {
		t.Fatalf("identical reports: %v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "reports match") {
		t.Fatalf("no match line:\n%s", out.String())
	}
}

func TestDiffFindsPerWindowRegression(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", baseDoc)
	changed := strings.Replace(baseDoc, `"lpmr1": 2.5`, `"lpmr1": 4.5`, 1)
	b := writeDoc(t, dir, "b.json", changed)
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{a, b}, &out, &errb)
	if !errors.Is(err, errDifferences) {
		t.Fatalf("err = %v, want errDifferences\n%s", err, out.String())
	}
	want := "experiments[timeline].timeline[A].series.windows[1].derived.lpmr1: 2.5 -> 4.5"
	if !strings.Contains(out.String(), want) {
		t.Fatalf("per-window delta %q missing:\n%s", want, out.String())
	}
}

func TestDiffThresholdSuppression(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", baseDoc)
	changed := strings.Replace(baseDoc, `"lpmr1": 2.5`, `"lpmr1": 2.51`, 1)
	b := writeDoc(t, dir, "b.json", changed)

	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-threshold", "0.05", a, b}, &out, &errb); err != nil {
		t.Fatalf("within-threshold diff reported: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "reports match (1 numeric fields within tolerance)") {
		t.Fatalf("suppression not reported:\n%s", out.String())
	}

	out.Reset()
	if err := run(context.Background(), []string{"-threshold", "0.001", a, b}, &out, &errb); !errors.Is(err, errDifferences) {
		t.Fatalf("above-threshold diff not reported: %v", err)
	}
}

func TestDiffAbsFloor(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", baseDoc)
	changed := strings.Replace(baseDoc, `"lpmr3": 0.6`, `"lpmr3": 0.6000000001`, 1)
	b := writeDoc(t, dir, "b.json", changed)
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-abs", "1e-9", a, b}, &out, &errb); err != nil {
		t.Fatalf("sub-floor noise reported: %v\n%s", err, out.String())
	}
}

func TestDiffAddedAndRemovedPaths(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", baseDoc)
	changed := strings.Replace(baseDoc,
		`{"index": 1, "start": 256, "end": 512, "phase": -1,
               "derived": {"ipc": 0.9, "lpmr1": 2.5, "lpmr2": 1.2, "lpmr3": 0.6}}`,
		`{"index": 1, "start": 256, "end": 512, "phase": -1,
               "derived": {"ipc": 0.9, "lpmr1": 2.5, "lpmr2": 1.2}}`, 1)
	b := writeDoc(t, dir, "b.json", changed)
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{a, b}, &out, &errb); !errors.Is(err, errDifferences) {
		t.Fatalf("missing path not reported: %v", err)
	}
	if !strings.Contains(out.String(), "(only in old)") {
		t.Fatalf("removal line missing:\n%s", out.String())
	}
}

func TestDiffRejectsNonReports(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", baseDoc)
	bad := writeDoc(t, dir, "bad.json", `{"schema": "other/v1"}`)
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{a, bad}, &out, &errb)
	if err == nil || errors.Is(err, errDifferences) {
		t.Fatalf("bad schema accepted: %v", err)
	}
	if err := run(context.Background(), []string{a}, &out, &errb); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("one-arg usage error = %v, want flag.ErrHelp", err)
	}
}

func TestDiffAcceptsV1Documents(t *testing.T) {
	dir := t.TempDir()
	v1 := strings.Replace(baseDoc, lpm.ReportSchema, lpm.ReportSchemaV1, 1)
	a := writeDoc(t, dir, "a.json", v1)
	b := writeDoc(t, dir, "b.json", baseDoc)
	var out, errb bytes.Buffer
	// v1 vs v2 of otherwise-identical content: only the schema line moves.
	err := run(context.Background(), []string{a, b}, &out, &errb)
	if !errors.Is(err, errDifferences) {
		t.Fatalf("err = %v, want errDifferences", err)
	}
	if !strings.Contains(out.String(), "~ schema: lpm-report/v1 -> lpm-report/v2") {
		t.Fatalf("schema diff line missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 differences") {
		t.Fatalf("expected exactly the schema diff:\n%s", out.String())
	}
}

func TestDiffMaxLines(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", baseDoc)
	changed := baseDoc
	for _, r := range [][2]string{
		{`"ipc": 1.0`, `"ipc": 9.0`},
		{`"lpmr1": 2.0`, `"lpmr1": 9.0`},
		{`"lpmr2": 1.0`, `"lpmr2": 9.0`},
	} {
		changed = strings.Replace(changed, r[0], r[1], 1)
	}
	b := writeDoc(t, dir, "b.json", changed)
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-max", "1", a, b}, &out, &errb); !errors.Is(err, errDifferences) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "and 2 more differences") {
		t.Fatalf("-max elision missing:\n%s", out.String())
	}
}
