// Package rotor implements engine.Part without either package
// importing the other: the analyzer's interface expansion must find it
// anyway.
package rotor

// Rotor is reached from engine.Tick purely through the Part interface.
type Rotor struct {
	buf  []byte
	seen map[int]int
}

// Step's blame message must carry the dispatch chain from Tick.
func (r *Rotor) Step() {
	r.buf = append(r.buf, 1) // self-append: legal
	m := map[int]int{}       // want "map literal allocates in per-cycle hot path (*Rotor).Step (reached via (*Engine).Tick"
	r.seen = m
}

// Quiescent is a root in its own right (fast-forward hook name under
// internal/sim); no chain prefix in the message.
func (r *Rotor) Quiescent() bool {
	ws := []int{1, 2, 3} // want "slice literal allocates"
	return len(ws) > 0
}

// Drain is not a hook and nothing hot calls it: cold, silent.
func (r *Rotor) Drain() []byte {
	out := make([]byte, len(r.buf))
	copy(out, r.buf)
	return out
}
