package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit("l1", "hit", 0, 1, 2, 0x40) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatalf("nil tracer reported state")
	}
}

func TestEmitAndLimits(t *testing.T) {
	tr := &Tracer{Limit: 2}
	tr.Emit("l1", "hit", 1, 10, 13, 0x100)
	tr.Emit("l1", "miss", 1, 10, 50, 0x140)
	tr.Emit("l1", "hit", 1, 20, 22, 0x180) // past the limit
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	e := tr.Events()[0]
	if e.Name != "hit" || e.Cat != "l1" || e.Ph != "X" || e.Ts != 10 || e.Dur != 3 ||
		e.Tid != 1 || e.Args.Addr != 0x100 {
		t.Fatalf("bad event: %+v", e)
	}
	// end <= start clamps duration to 0 rather than underflowing.
	tr2 := NewTracer()
	tr2.Emit("l1", "hit", 0, 5, 5, 0)
	if d := tr2.Events()[0].Dur; d != 0 {
		t.Fatalf("zero-span dur = %d, want 0", d)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	tr.Emit("l1", "miss", 0, 1, 40, 0x40)
	tr.Emit("dram", "read", 0, 5, 38, 0x40)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var doc struct {
		TraceEvents     []Event           `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
	if doc.OtherData["schema"] != TraceSchema {
		t.Fatalf("schema = %q, want %q", doc.OtherData["schema"], TraceSchema)
	}
	// An empty tracer still produces a loadable document with an array,
	// not null.
	buf.Reset()
	if err := NewTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("empty write: %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace emitted %q, want empty array", buf.String())
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer()
	tr.Emit("l2", "miss", 3, 7, 90, 0x2000)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatalf("no header line")
	}
	var hdr struct {
		Schema  string `json:"schema"`
		Events  int    `json:"events"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	if hdr.Schema != TraceSchema || hdr.Events != 1 {
		t.Fatalf("header = %+v", hdr)
	}
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("event line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 1 {
		t.Fatalf("event lines = %d, want 1", lines)
	}
}
