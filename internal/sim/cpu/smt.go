package cpu

import (
	"fmt"

	"lpm/internal/trace"
)

// SMT is a simultaneous multithreading core: several hardware threads
// share the issue bandwidth, execution resources, load/store queue and
// memory ports of one core. The paper names SMT among the mechanisms
// that raise both hit concurrency C_H and pure-miss concurrency C_M
// (§II): independent threads keep issuing memory accesses while one
// thread's miss is outstanding, so more accesses overlap at the L1.
//
// Each thread has its own architectural stream (generator, ROB,
// sequence space); fetch, issue and retire bandwidth are arbitrated
// round-robin. The shared structures follow Config: IssueWidth and
// CommitWidth are per-cycle totals, IWSize bounds the incomplete
// instructions summed over threads, LSQSize the outstanding memory
// accesses summed over threads. Per-thread ROBs get ROBSize entries
// each.
type SMT struct {
	cfg Config
	mem MemPort

	threads  []smtThread
	inIW     int
	inLSQ    int
	fetchRR  int
	retireRR int

	st Stats // cycle-level counters (shared); per-thread counters live in the threads
}

// smtThread is one hardware thread's private state.
type smtThread struct {
	gen     trace.Generator
	rob     []robEntry
	head    int
	count   int
	headSeq uint64
	nextSeq uint64
	halted  bool
	st      Stats
}

// NewSMT builds an SMT core over the given per-thread workloads. It
// panics on invalid configuration or an empty workload list.
func NewSMT(cfg Config, gens []trace.Generator, mem MemPort) *SMT {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(gens) == 0 {
		panic(fmt.Sprintf("cpu %s: SMT with no threads", cfg.Name))
	}
	if cfg.CommitWidth == 0 {
		cfg.CommitWidth = cfg.IssueWidth
	}
	if cfg.LSQSize == 0 {
		cfg.LSQSize = cfg.IWSize
	}
	s := &SMT{cfg: cfg, mem: mem}
	for _, g := range gens {
		s.threads = append(s.threads, smtThread{gen: g, rob: make([]robEntry, cfg.ROBSize)})
	}
	return s
}

// Threads returns the hardware thread count.
func (s *SMT) Threads() int { return len(s.threads) }

// ThreadStats returns thread t's counters (instruction counts are
// per-thread; cycle-classification counters are in Stats).
func (s *SMT) ThreadStats(t int) Stats { return s.threads[t].st }

// Stats returns the shared cycle-level counters plus summed instruction
// counters.
func (s *SMT) Stats() Stats {
	agg := s.st
	for i := range s.threads {
		agg.Instructions += s.threads[i].st.Instructions
		agg.MemInstructions += s.threads[i].st.MemInstructions
	}
	return agg
}

// Retired returns total instructions retired across threads.
func (s *SMT) Retired() uint64 {
	var n uint64
	for i := range s.threads {
		n += s.threads[i].st.Instructions
	}
	return n
}

// Halt stops fetch on every thread.
func (s *SMT) Halt() {
	for i := range s.threads {
		s.threads[i].halted = true
	}
}

// Busy reports in-flight instructions on any thread.
func (s *SMT) Busy() bool {
	for i := range s.threads {
		if s.threads[i].count > 0 {
			return true
		}
	}
	return false
}

// at returns the ROB entry holding seq on thread th.
func (th *smtThread) at(seq uint64) *robEntry {
	idx := (th.head + int(seq-th.headSeq)) % len(th.rob)
	return &th.rob[idx]
}

// depReady reports whether e's intra-thread dependence is satisfied.
func (th *smtThread) depReady(e *robEntry) bool {
	if e.in.Dep == 0 || uint64(e.in.Dep) > e.seq {
		return true
	}
	dep := e.seq - uint64(e.in.Dep)
	if dep < th.headSeq {
		return true
	}
	return th.at(dep).state == stDone
}

// Tick advances the SMT core one cycle.
func (s *SMT) Tick(cycle uint64) {
	anyWork := false
	for i := range s.threads {
		if s.threads[i].count > 0 || !s.threads[i].halted {
			anyWork = true
			break
		}
	}
	if !anyWork {
		return
	}
	s.st.Cycles++

	// 1. Complete compute ops on every thread.
	computeExecuting := false
	for ti := range s.threads {
		th := &s.threads[ti]
		for i := 0; i < th.count; i++ {
			e := &th.rob[(th.head+i)%len(th.rob)]
			if e.state != stExecuting || e.in.Kind != trace.Compute {
				continue
			}
			if e.readyAt <= cycle {
				e.state = stDone
				s.inIW--
			} else {
				computeExecuting = true
			}
		}
	}

	// 2. Retire round-robin across threads, CommitWidth total.
	retired := 0
	for scanned := 0; scanned < len(s.threads) && retired < s.cfg.CommitWidth; {
		th := &s.threads[s.retireRR%len(s.threads)]
		if th.count > 0 && th.rob[th.head].state == stDone {
			e := &th.rob[th.head]
			if e.in.Kind.IsMem() {
				th.st.MemInstructions++
			}
			th.head = (th.head + 1) % len(th.rob)
			th.headSeq++
			th.count--
			th.st.Instructions++
			retired++
			scanned = 0
		} else {
			scanned++
		}
		s.retireRR++
	}

	// 3. Issue round-robin, IssueWidth total.
	issued := 0
	for ti := 0; ti < len(s.threads) && issued < s.cfg.IssueWidth; ti++ {
		th := &s.threads[(s.fetchRR+ti)%len(s.threads)]
		for i := 0; i < th.count && issued < s.cfg.IssueWidth; i++ {
			e := &th.rob[(th.head+i)%len(th.rob)]
			if e.state != stDispatched || !th.depReady(e) {
				continue
			}
			if e.in.Kind == trace.Compute {
				e.state = stExecuting
				e.readyAt = cycle + uint64(e.in.Lat)
				issued++
				computeExecuting = true
				continue
			}
			if s.inLSQ >= s.cfg.LSQSize {
				s.st.LSQFullEvents++
				continue
			}
			ee := e
			//lint:ignore hotpathalloc completion callback built per issued access, tied to miss traffic rather than cycles; the steady-state pin measures this at zero
			if !s.mem.Access(cycle, e.in.Addr, e.in.Kind == trace.Store, func(uint64) {
				ee.state = stDone
				s.inIW--
				s.inLSQ--
			}) {
				s.st.RejectedAccesses++
				continue
			}
			e.state = stExecuting
			s.inLSQ++
			issued++
		}
	}

	// 4. Fetch round-robin, IssueWidth total.
	fetched := 0
	for scanned := 0; scanned < len(s.threads) && fetched < s.cfg.IssueWidth; {
		th := &s.threads[s.fetchRR%len(s.threads)]
		if !th.halted && th.count < len(th.rob) && s.inIW < s.cfg.IWSize {
			tail := (th.head + th.count) % len(th.rob)
			th.rob[tail] = robEntry{in: th.gen.Next(), seq: th.nextSeq, state: stDispatched}
			th.nextSeq++
			th.count++
			s.inIW++
			fetched++
			scanned = 0
		} else {
			scanned++
		}
		s.fetchRR++
	}

	// 5. Cycle accounting (shared counters).
	if retired == 0 {
		empty := true
		memHead := false
		for ti := range s.threads {
			th := &s.threads[ti]
			if th.count > 0 {
				empty = false
				head := &th.rob[th.head]
				if head.in.Kind.IsMem() && head.state != stDone {
					memHead = true
				}
			}
		}
		if empty {
			s.st.EmptyCycles++
		} else {
			s.st.StallCycles++
			if memHead {
				s.st.MemStallCycles++
			}
		}
	}
	if s.inLSQ > 0 {
		s.st.MemActiveCycles++
		if computeExecuting || retired > 0 {
			s.st.OverlapCycles++
		}
	}
}
