// Package fabric is the horizontally sharded sweep layer: a
// coordinator/worker architecture that spreads the repository's
// memoised simulations across worker processes over plain TCP.
//
// The shape follows the rest of the codebase's "split small + run
// concurrent, structured results only" strategy. The unit of work is a
// granule: one self-contained simulation job (a JSON spec naming a
// registered executor kind) whose result is a pure function of the
// spec. The coordinator owns a deterministic granule queue and a
// content-keyed result cache — the network backend of the
// internal/parallel memo — and dispatches granules to connected
// workers under per-worker in-flight budgets. Workers may die, hang,
// join, or leave at any time: granules held by a dead worker are
// re-issued, stragglers are duplicated onto idle workers (first result
// wins; results are pure, so duplicates are identical), and a run with
// zero workers simply waits for one to join.
//
// Because every granule result is a pure function of its spec and the
// drivers consume results in their own (deterministic) submission
// order, a sharded run is bit-identical to a serial one at any worker
// count. The property tests in the root package pin that guarantee;
// the chaos suite pins it under worker kills, torn frames, and
// coordinator restarts.
//
// The wire format reuses the PR 5 checkpoint envelope (LPMCKPT1 magic,
// length prefix, CRC64) as its frame, so every torn or corrupt frame is
// detected at the boundary and treated as a dead peer, never decoded
// into garbage.
package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Executor runs one granule kind: it receives the JSON spec and returns
// the JSON result. Executors must be pure functions of the spec (plus
// cooperative cancellation via ctx) — the fabric's determinism and
// re-issue semantics both depend on it.
type Executor func(ctx context.Context, spec json.RawMessage) (json.RawMessage, error)

var kindRegistry struct {
	mu    sync.Mutex
	kinds map[string]Executor
}

// RegisterKind installs the executor for a granule kind. Packages that
// own a memoised simulation register their kind at init time, so any
// binary importing them (lpmworker, the CLIs, the tests) can execute
// the granule. Registering an empty or duplicate kind panics: both are
// programming errors.
func RegisterKind(kind string, fn Executor) {
	if kind == "" || fn == nil {
		panic("fabric: RegisterKind with empty kind or nil executor")
	}
	kindRegistry.mu.Lock()
	defer kindRegistry.mu.Unlock()
	if kindRegistry.kinds == nil {
		kindRegistry.kinds = make(map[string]Executor)
	}
	if _, dup := kindRegistry.kinds[kind]; dup {
		panic(fmt.Sprintf("fabric: kind %q registered twice", kind))
	}
	kindRegistry.kinds[kind] = fn
}

// lookupKind returns the registered executor for kind.
func lookupKind(kind string) (Executor, error) {
	kindRegistry.mu.Lock()
	defer kindRegistry.mu.Unlock()
	fn, ok := kindRegistry.kinds[kind]
	if !ok {
		return nil, fmt.Errorf("fabric: unknown granule kind %q (known: %v)", kind, kindNamesLocked())
	}
	return fn, nil
}

// Kinds returns the registered granule kinds, sorted.
func Kinds() []string {
	kindRegistry.mu.Lock()
	defer kindRegistry.mu.Unlock()
	return kindNamesLocked()
}

// kindNamesLocked collects and sorts the kind names; the sort keeps
// every rendering of the registry deterministic.
func kindNamesLocked() []string {
	names := make([]string, 0, len(kindRegistry.kinds))
	for k := range kindRegistry.kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// active is the process-wide coordinator the simulation paths dispatch
// through; nil means every simulation runs locally (the default, and
// the state inside worker processes).
var active atomic.Pointer[Coordinator]

// Activate installs c as the process-wide coordinator and returns a
// restore func that re-installs the previous one. The CLIs activate
// after binding -shard; the in-process harness activates around each
// test run.
func Activate(c *Coordinator) (restore func()) {
	prev := active.Swap(c)
	return func() { active.Store(prev) }
}

// Enabled reports whether a coordinator is active: the memoised
// simulation paths use it to decide between local execution and a
// fabric dispatch.
func Enabled() bool { return active.Load() != nil }

// Compute dispatches one granule through the active coordinator:
// spec is marshalled, submitted under (kind, key), and the result
// unmarshalled into out. The bool reports whether a coordinator was
// active at all — false means the caller must compute locally.
// key is the granule's cache identity (the caller's memo key), so the
// coordinator-side result cache and the driver-side memos agree on
// what "the same simulation" means.
func Compute(ctx context.Context, kind, key string, spec, out any) (bool, error) {
	c := active.Load()
	if c == nil {
		return false, nil
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return true, fmt.Errorf("fabric: marshal %s spec: %w", kind, err)
	}
	val, err := c.Submit(ctx, kind, key, raw)
	if err != nil {
		return true, err
	}
	if err := json.Unmarshal(val, out); err != nil {
		return true, fmt.Errorf("fabric: unmarshal %s result: %w", kind, err)
	}
	return true, nil
}
