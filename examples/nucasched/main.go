// Nucasched runs the paper's case study II end to end: sixteen workloads
// are profiled standalone on the four NUCA L1 sizes (the Fig. 6/7 data),
// then scheduled onto the Fig. 5 heterogeneous 16-core CMP by four
// policies — Random, Round-Robin, and the LPM-guided NUCA-SA in coarse
// and fine grain — and compared by harmonic weighted speedup (Fig. 8).
package main

import (
	"context"
	"fmt"
	"log"

	"lpm"
	"lpm/internal/sched"
	"lpm/internal/sim/chip"
)

func main() {
	ctx := context.Background()
	names := lpm.Workloads()
	sizes := chip.NUCAGroupSizes[:]

	fmt.Println("profiling 16 workloads x 4 L1 sizes (standalone)...")
	table, err := sched.BuildProfileTable(ctx, names, sizes, sched.ProfileOptions{Instructions: 12000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-10s %s\n", "workload", "req(fg)", "APC1 at 4/16/32/64 KB")
	for _, n := range names {
		req, _ := table.RequiredSize(n, 0.01)
		a := table.APC1[n]
		fmt.Printf("%-16s %6d KB  %.3f / %.3f / %.3f / %.3f\n",
			n, req/1024, a[0], a[1], a[2], a[3])
	}

	opt := sched.EvalOptions{WindowCycles: 100000, WarmupCycles: 50000}
	alone, err := sched.AloneIPCs(ctx, names, sizes, opt)
	if err != nil {
		log.Fatal(err)
	}
	opt.AloneIPC = alone

	fmt.Println("\nscheduling and measuring Hsp (Fig. 8)...")
	var best *sched.Evaluation
	for _, policy := range []sched.Scheduler{
		sched.Random{Seed: 1},
		sched.RoundRobin{},
		sched.NUCASA{Table: table, TolFrac: 0.10},
		sched.NUCASA{Table: table, TolFrac: 0.01},
	} {
		ev, err := sched.Evaluate(ctx, policy, names, sizes, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s Hsp = %.4f\n", ev.Scheduler, ev.Hsp)
		if best == nil || ev.Hsp > best.Hsp {
			best = ev
		}
	}

	fmt.Printf("\nbest policy: %s — placement:\n", best.Scheduler)
	for core, w := range best.Assignment {
		if w >= 0 {
			fmt.Printf("  core %2d (%2d KB L1) <- %s\n", core, sizes[core/4]/1024, names[w])
		}
	}
}
