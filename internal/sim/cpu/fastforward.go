package cpu

import (
	"math/bits"

	"lpm/internal/trace"
)

// This file is the core's half of the chip's event-driven fast-forward
// (see chip/fastforward.go): a quiescence predicate, the earliest cycle
// at which the core's state can change on its own, and a bulk accrual
// that reproduces Tick's per-cycle accounting over a run of quiescent
// cycles bit-for-bit.

// noEvent is the NextEvent value meaning "no self-scheduled event".
const noEvent = ^uint64(0)

// Quiescent reports whether the next Tick would change no architectural
// state other than scheduled compute completions (which NextEvent
// exposes) — i.e. no retirement, no issue, no fetch, no memory access
// attempt. External events (cache fill callbacks) are the lower layers'
// business; the chip only jumps when every layer is quiescent.
func (c *Core) Quiescent(now uint64) bool {
	if c.halted && c.count == 0 {
		return true // off: Tick is a no-op
	}
	if !c.halted && c.count < c.cfg.ROBSize && c.inIW < c.cfg.IWSize {
		return false // fetch would dispatch new instructions
	}
	if c.count > 0 && c.rob[c.head].state == stDone {
		return false // retirement would proceed
	}
	if c.readyCnt > 0 {
		if c.inLSQ < c.cfg.LSQSize {
			return false // a ready op would issue or probe the cache
		}
		for wi, word := range c.readyBits {
			for word != 0 {
				idx := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if c.rob[idx].in.Kind == trace.Compute {
					return false // would issue to execution
				}
			}
		}
		// Every ready op is a memory access blocked on a full LSQ: no
		// state change, but LSQFullEvents accrues each cycle —
		// AdvanceCycles handles it.
	}
	return true
}

// NextEvent returns the earliest future cycle at which the core's own
// state changes (the soonest compute completion), or noEvent.
func (c *Core) NextEvent() uint64 {
	ev := uint64(noEvent)
	for _, idx := range c.execComp {
		if r := c.rob[idx].readyAt; r < ev {
			ev = r
		}
	}
	return ev
}

// AdvanceCycles accrues n quiescent cycles (now+1 .. now+n) in bulk,
// reproducing exactly what n calls to Tick would have recorded given
// Quiescent(now) held and no event fires before now+n.
func (c *Core) AdvanceCycles(now, n uint64) {
	_ = now
	if c.halted && c.count == 0 {
		c.lastClass = CycleOff
		return
	}
	c.st.Cycles += n

	// A quiescent cycle retires nothing and issues nothing; the issue
	// scan still charges one LSQ-full event per dep-ready memory op it
	// cannot sink, every cycle. Quiescent just proved every ready entry
	// is such an op (a ready compute would have broken quiescence), so
	// the per-cycle charge is exactly readyCnt.
	c.st.LSQFullEvents += uint64(c.readyCnt) * n

	if c.count == 0 {
		c.st.EmptyCycles += n
		c.lastClass = CycleEmpty
	} else {
		c.st.StallCycles += n
		c.lastClass = CycleComputeStall
		head := &c.rob[c.head]
		if head.in.Kind.IsMem() && head.state != stDone {
			c.st.MemStallCycles += n
			c.lastClass = CycleMemStall
		}
	}
	if c.inLSQ > 0 {
		c.st.MemActiveCycles += n
		if len(c.execComp) > 0 {
			c.st.OverlapCycles += n
		}
	}
	if c.ob != nil {
		c.ob.robOcc.ObserveN(float64(c.count), n)
	}
}
