package chip

import (
	"testing"

	"lpm/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	good := SingleCore("401.bzip2")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = good
	bad.Cores = nil
	if err := bad.Validate(); err == nil {
		t.Error("no cores accepted")
	}
	bad = SingleCore("401.bzip2")
	bad.Cores[0].L1.Ports = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad L1 accepted")
	}
	bad = SingleCore("401.bzip2")
	bad.L2.MSHRs = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad L2 accepted")
	}
	bad = SingleCore("401.bzip2")
	bad.Mem.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad mem accepted")
	}
}

func TestSingleCoreRunRetires(t *testing.T) {
	ch := New(SingleCore("401.bzip2"))
	cycles, done := ch.Run(20000, 2_000_000)
	if !done {
		t.Fatalf("did not retire 20k instructions in %d cycles", cycles)
	}
	r := ch.Snapshot()
	if r.Cores[0].CPU.Instructions < 20000 {
		t.Fatalf("retired %d", r.Cores[0].CPU.Instructions)
	}
	if r.Cores[0].Name != "401.bzip2" {
		t.Fatalf("name = %q", r.Cores[0].Name)
	}
	// The hierarchy saw traffic at every level for a 24 MB-footprint app.
	if r.Cores[0].L1.Completed == 0 {
		t.Fatal("L1 saw no accesses")
	}
	if r.L2.Completed == 0 {
		t.Fatal("L2 saw no accesses")
	}
	if r.Mem.Reads == 0 {
		t.Fatal("memory saw no reads")
	}
}

func TestDrainLeavesNothingInFlight(t *testing.T) {
	ch := New(SingleCore("429.mcf"))
	ch.Run(5000, 5_000_000)
	if ch.Busy() {
		t.Fatal("chip busy after Run returned")
	}
	p := ch.Snapshot().Cores[0].L1
	if p.Accesses != p.Completed {
		t.Fatalf("L1 accesses %d != completed %d after drain", p.Accesses, p.Completed)
	}
}

func TestMissRatesOrdering(t *testing.T) {
	// bzip2 (3 KB hot set) must have a far lower L1 miss rate than mcf
	// (pointer chasing over 256 MB) on the same 32 KB L1.
	mr := func(profile string) float64 {
		ch := New(SingleCore(profile))
		ch.Run(30000, 5_000_000)
		return ch.Snapshot().Cores[0].L1.MR()
	}
	bzip, mcf := mr("401.bzip2"), mr("429.mcf")
	if bzip >= mcf {
		t.Fatalf("MR(bzip2)=%.4f not below MR(mcf)=%.4f", bzip, mcf)
	}
	if mcf < 0.05 {
		t.Fatalf("mcf miss rate %.4f suspiciously low", mcf)
	}
}

func TestCAMATEqualsInverseAPCOnRealRuns(t *testing.T) {
	for _, prof := range []string{"401.bzip2", "433.milc", "403.gcc"} {
		ch := New(SingleCore(prof))
		ch.Run(20000, 5_000_000)
		for _, layer := range []struct {
			name string
			p    interface{ CAMAT() float64 }
		}{} {
			_ = layer
		}
		l1 := ch.Snapshot().Cores[0].L1
		if l1.Completed == 0 {
			t.Fatalf("%s: no L1 traffic", prof)
		}
		camat, inv := l1.CAMAT(), 1/l1.APC()
		if diff := camat - inv; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: C-AMAT %.6f != 1/APC %.6f", prof, camat, inv)
		}
		l2 := ch.Snapshot().L2
		if l2.Completed > 0 {
			camat, inv = l2.CAMAT(), 1/l2.APC()
			if diff := camat - inv; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s L2: C-AMAT %.6f != 1/APC %.6f", prof, camat, inv)
			}
		}
	}
}

func TestLargerL1ReducesMissesForGcc(t *testing.T) {
	run := func(size uint64) float64 {
		cfg := SingleCore("403.gcc")
		cfg.Cores[0].L1 = DefaultL1("L1D-0", size)
		ch := New(cfg)
		ch.Run(30000, 5_000_000)
		return ch.Snapshot().Cores[0].L1.MR()
	}
	small, large := run(4*KB), run(64*KB)
	if large >= small {
		t.Fatalf("gcc: 64KB MR %.4f not below 4KB MR %.4f", large, small)
	}
}

func TestMilcInsensitiveToL1Size(t *testing.T) {
	run := func(size uint64) float64 {
		cfg := SingleCore("433.milc")
		cfg.Cores[0].L1 = DefaultL1("L1D-0", size)
		ch := New(cfg)
		ch.Run(30000, 5_000_000)
		return ch.Snapshot().Cores[0].CPU.IPC()
	}
	small, large := run(4*KB), run(64*KB)
	rel := (large - small) / small
	if rel > 0.10 || rel < -0.10 {
		t.Fatalf("milc IPC moved %.1f%% across L1 sizes, want ~flat", rel*100)
	}
}

func TestRunCyclesAdvancesClock(t *testing.T) {
	ch := New(SingleCore("401.bzip2"))
	ch.RunCycles(500)
	if ch.Now() != 500 {
		t.Fatalf("now = %d", ch.Now())
	}
}

func TestResetCountersMidRun(t *testing.T) {
	ch := New(SingleCore("401.bzip2"))
	ch.RunCycles(20000)
	ch.ResetCounters()
	r := ch.Snapshot()
	if r.Cores[0].CPU.Instructions != 0 {
		t.Fatal("core counters survive reset")
	}
	ch.RunCycles(20000)
	r = ch.Snapshot()
	if r.Cores[0].CPU.Instructions == 0 {
		t.Fatal("no progress after reset")
	}
	// Warm caches: the post-reset interval must not miss wildly more than
	// a cold start (generous slack: intervals sample different phases).
	cold := New(SingleCore("401.bzip2"))
	cold.RunCycles(20000)
	if warm, coldMR := r.Cores[0].L1.MR(), cold.Snapshot().Cores[0].L1.MR(); warm > 2*coldMR+0.02 {
		t.Fatalf("warm interval MR %.4f far above cold-start MR %.4f", warm, coldMR)
	}
}

func TestNUCA16Geometry(t *testing.T) {
	cfg := NUCA16(nil)
	if len(cfg.Cores) != 16 {
		t.Fatalf("cores = %d", len(cfg.Cores))
	}
	for i, slot := range cfg.Cores {
		want := NUCAGroupSizes[i/4]
		if slot.L1.Size != want {
			t.Errorf("core %d L1 size %d, want %d", i, slot.L1.Size, want)
		}
		if slot.Workload != nil {
			t.Errorf("core %d should be idle", i)
		}
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNUCA16PanicsOnTooManyWorkloads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NUCA16(make([]trace.Generator, 17))
}

func TestMultiprogramSharedL2Contention(t *testing.T) {
	// Run one core alone vs with 3 co-runners; shared-L2 pressure should
	// not raise its IPC.
	alone := NUCA16([]trace.Generator{trace.NewSynthetic(trace.MustProfile("403.gcc"))})
	chA := New(alone)
	chA.Run(15000, 10_000_000)
	ipcAlone := chA.Snapshot().Cores[0].CPU.IPC()

	gens := []trace.Generator{
		trace.NewSynthetic(trace.MustProfile("403.gcc")),
		trace.NewSynthetic(trace.MustProfile("429.mcf")),
		trace.NewSynthetic(trace.MustProfile("433.milc")),
		trace.NewSynthetic(trace.MustProfile("470.lbm")),
	}
	chB := New(NUCA16(gens))
	chB.Run(15000, 10_000_000)
	ipcShared := chB.Snapshot().Cores[0].CPU.IPC()

	if ipcShared > ipcAlone*1.05 {
		t.Fatalf("gcc IPC rose under contention: alone %.3f shared %.3f", ipcAlone, ipcShared)
	}
}

func TestMeasureCPIexe(t *testing.T) {
	gen := trace.NewSynthetic(trace.MustProfile("416.gamess"))
	cpi := MeasureCPIexe(DefaultCPU("c"), gen, 3, 20000)
	if cpi <= 0 || cpi > 4 {
		t.Fatalf("CPIexe = %.3f out of range", cpi)
	}
	// Perfect-cache CPI must not exceed the real-system CPI.
	ch := New(SingleCore("416.gamess"))
	ch.Run(20000, 5_000_000)
	real := ch.Snapshot().Cores[0].CPU.CPI()
	if cpi > real+0.05 {
		t.Fatalf("CPIexe %.3f above full-system CPI %.3f", cpi, real)
	}
}

func TestAggregateL1SumsCores(t *testing.T) {
	gens := []trace.Generator{
		trace.NewSynthetic(trace.MustProfile("401.bzip2")),
		trace.NewSynthetic(trace.MustProfile("403.gcc")),
	}
	ch := New(NUCA16(gens))
	ch.Run(5000, 5_000_000)
	r := ch.Snapshot()
	agg := r.AggregateL1()
	if agg.Completed != r.Cores[0].L1.Completed+r.Cores[1].L1.Completed {
		t.Fatal("aggregate does not sum per-core completions")
	}
}
