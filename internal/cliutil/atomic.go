package cliutil

// Atomic output files: every file the CLIs produce (reports, traces,
// checkpoints, golden updates) goes through a temp-file + fsync + rename
// sequence so a crash — including kill -9 mid-write — leaves either the
// old file or the new one, never a truncated hybrid. The rename is the
// commit point; Close and Sync errors are checked because an unflushed
// "success" is exactly the failure mode this package exists to prevent.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"lpm/internal/faultinject"
)

// AtomicWriteFile writes data to path atomically: the bytes land in a
// temporary file in path's directory, are fsynced, and the temp file is
// renamed over path. On error the temp file is removed and the previous
// contents of path (if any) are untouched.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := NewAtomicFile(path, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// AtomicFile is a streaming variant of AtomicWriteFile for producers
// that write incrementally (trace recording, event dumps): write through
// it, then Commit to publish or Abort to discard. Exactly one of the two
// must be called.
type AtomicFile struct {
	path   string
	tmp    *os.File
	direct bool // destination is not a regular file: no temp, no rename
	size   int64
	werr   error // first write error, latched so Commit refuses
}

// NewAtomicFile creates the temporary file backing an atomic write of
// path. A destination that exists and is not a regular file — a device,
// fifo, or symlink (`-record /dev/null`, output piped through a link) —
// is opened and written directly instead: renaming a temp file over it
// would replace the node with a regular file, and write errors the
// device reports (ENOSPC on /dev/full) must reach the caller rather
// than land on a temp file that never sees the device.
func NewAtomicFile(path string, perm os.FileMode) (*AtomicFile, error) {
	if fi, err := os.Lstat(path); err == nil && !fi.Mode().IsRegular() {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, perm)
		if err != nil {
			return nil, fmt.Errorf("atomic write %s: %w", path, err)
		}
		return &AtomicFile{path: path, tmp: f, direct: true}, nil
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return nil, fmt.Errorf("atomic write %s: %w", path, err)
	}
	return &AtomicFile{path: path, tmp: tmp}, nil
}

// Write implements io.Writer against the temporary file.
func (f *AtomicFile) Write(p []byte) (int, error) {
	if f.werr != nil {
		return 0, f.werr
	}
	if err := faultinject.Hit("cliutil.atomic.write", f.path); err != nil {
		f.werr = err
		return 0, err
	}
	n, err := f.tmp.Write(p)
	f.size += int64(n)
	if err != nil {
		f.werr = err
	}
	return n, err
}

// Name returns the destination path the Commit will publish.
func (f *AtomicFile) Name() string { return f.path }

// Size returns the number of bytes written so far.
func (f *AtomicFile) Size() int64 { return f.size }

// Commit flushes the temporary file to stable storage and renames it
// over the destination. Any earlier write error, or a failure in
// Sync/Close/Rename, aborts the commit and preserves the old file.
// For a direct (non-regular) destination there is nothing to rename and
// no durability to promise: Commit is the latched write error plus the
// Close.
func (f *AtomicFile) Commit() error {
	if f.direct {
		if f.werr != nil {
			_ = f.tmp.Close()
			return fmt.Errorf("atomic write %s: %w", f.path, f.werr)
		}
		if err := f.tmp.Close(); err != nil {
			return fmt.Errorf("atomic write %s: %w", f.path, err)
		}
		return nil
	}
	tmpName := f.tmp.Name()
	fail := func(err error) error {
		_ = f.tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("atomic write %s: %w", f.path, err)
	}
	if f.werr != nil {
		return fail(f.werr)
	}
	if err := f.tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := f.tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("atomic write %s: %w", f.path, err)
	}
	if err := faultinject.Hit("cliutil.atomic.rename", f.path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("atomic write %s: %w", f.path, err)
	}
	if err := os.Rename(tmpName, f.path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("atomic write %s: %w", f.path, err)
	}
	// Publishing the rename itself: fsync the directory so the entry
	// survives a power cut. Best-effort on filesystems that refuse
	// directory fsync, but a reported failure is still a failure.
	dir, err := os.Open(filepath.Dir(f.path))
	if err != nil {
		return fmt.Errorf("atomic write %s: sync dir: %w", f.path, err)
	}
	syncErr := dir.Sync()
	if err := dir.Close(); err != nil {
		return fmt.Errorf("atomic write %s: sync dir: %w", f.path, err)
	}
	if syncErr != nil {
		return fmt.Errorf("atomic write %s: sync dir: %w", f.path, syncErr)
	}
	return nil
}

// Abort discards the temporary file; the destination is untouched. Safe
// to call after a failed Write. A direct destination is only closed —
// it existed before us and is not ours to remove.
func (f *AtomicFile) Abort() {
	_ = f.tmp.Close()
	if !f.direct {
		_ = os.Remove(f.tmp.Name())
	}
}

// CopyTo streams r into the atomic file, a convenience for
// encoder-driven producers.
func (f *AtomicFile) CopyTo(r io.Reader) (int64, error) {
	return io.Copy(f, r)
}
