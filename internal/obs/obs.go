// Package obs is the observability layer of the LPM reproduction: a
// typed, allocation-light metrics registry the simulator components
// (cores, caches, NoC, DRAM, chip) publish into, plus an opt-in event
// tracer emitting Chrome-trace-format JSON of memory-request lifecycles
// (see trace.go).
//
// The paper's whole method is measurement-driven — every layer exposes
// hit/miss concurrency and stall accounting — and this package makes
// those internal numbers inspectable: per-layer counters are snapshotted
// per measurement window into a versioned, JSON-serialisable Snapshot
// that rides along on core.Measurement and in the CLIs' -json output.
//
// Instrumentation is zero-cost when disabled: a nil *Registry hands out
// nil handles, and every handle method nil-checks its receiver, so an
// unobserved component pays one predictable branch per touch point. A
// Registry is owned by a single simulation (one goroutine); it is not
// synchronised.
package obs

import (
	"sort"

	"lpm/internal/stats"
)

// SnapshotVersion is the schema version stamped on every Snapshot; bump
// it on any incompatible change to the snapshot JSON shape.
const SnapshotVersion = 1

// Kind classifies a metric.
type Kind uint8

// Metric kinds.
const (
	// KindCounter is a monotonic event count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous or derived value.
	KindGauge
	// KindHistogram is a bucketed distribution of observations.
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonic event count. A nil Counter (from a nil
// Registry) is a no-op; this is the disabled fast path.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v += d
	}
}

// Set overwrites the count — used by components that publish an
// already-accumulated Stats counter into the registry at snapshot time.
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous or derived value. A nil Gauge is a no-op.
type Gauge struct{ v float64 }

// Set overwrites the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket distribution backed by stats.Histogram.
// A nil Histogram is a no-op.
type Histogram struct{ h *stats.Histogram }

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	if h != nil {
		h.h.Add(x)
	}
}

// ObserveN records n identical observations of x — the bulk form the
// fast-forward paths use to advance occupancy histograms over a run of
// quiescent cycles in one call.
func (h *Histogram) ObserveN(x float64, n uint64) {
	if h != nil {
		h.h.AddN(x, n)
	}
}

// metric is one registered metric with its typed backing store.
type metric struct {
	name string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	// histogram bounds, kept for reset
	lo, hi  float64
	buckets int
}

// Registry holds a simulation's metrics. The nil *Registry is valid and
// hands out nil handles, making every downstream update a cheap no-op.
// Create with NewRegistry. Metrics are kept name-sorted from
// registration on, so two identical simulations produce bit-identical
// snapshots regardless of wiring order and Snapshot stays cheap enough
// to call once per timeline window.
type Registry struct {
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// lookup returns the named metric, creating it with mk on first use. It
// panics on a kind clash: metric names are program constants.
func (r *Registry) lookup(name string, kind Kind, mk func() *metric) *metric {
	if m, ok := r.index[name]; ok {
		if m.kind != kind {
			panic("obs: metric " + name + " re-registered as a different kind")
		}
		return m
	}
	m := mk()
	// Insert at the name-sorted position: registration is rare and
	// bounded, and a sorted slice lets Snapshot — called once per
	// timeline window on the live-export path — skip its per-call sort.
	i := sort.Search(len(r.metrics), func(i int) bool { return r.metrics[i].name >= name })
	r.metrics = append(r.metrics, nil)
	copy(r.metrics[i+1:], r.metrics[i:])
	r.metrics[i] = m
	r.index[name] = m
	return m
}

// Counter registers (or fetches) the named counter. A nil registry
// returns a nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, func() *metric {
		return &metric{name: name, kind: KindCounter, c: &Counter{}}
	}).c
}

// Gauge registers (or fetches) the named gauge. A nil registry returns a
// nil handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, func() *metric {
		return &metric{name: name, kind: KindGauge, g: &Gauge{}}
	}).g
}

// Histogram registers (or fetches) the named histogram with n uniform
// buckets over [lo, hi). A nil registry returns a nil handle.
func (r *Registry) Histogram(name string, lo, hi float64, n int) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, func() *metric {
		return &metric{
			name: name, kind: KindHistogram,
			h:  &Histogram{h: stats.NewHistogram(lo, hi, n)},
			lo: lo, hi: hi, buckets: n,
		}
	}).h
}

// ResetCounters zeroes every metric's accumulated state while keeping
// the registrations, mirroring the simulator's per-window counter reset
// (chip.ResetCounters) so snapshots cover exactly one measurement
// window.
func (r *Registry) ResetCounters() {
	if r == nil {
		return
	}
	for _, m := range r.metrics {
		switch m.kind {
		case KindCounter:
			m.c.v = 0
		case KindGauge:
			m.g.v = 0
		case KindHistogram:
			m.h.h = stats.NewHistogram(m.lo, m.hi, m.buckets)
		}
	}
}

// HistValue summarises a histogram in a snapshot.
type HistValue struct {
	// Count is the number of observations (under/overflow included).
	Count uint64 `json:"count"`
	// Mean is the arithmetic mean of all observations.
	Mean float64 `json:"mean"`
	// P50, P90, P99 are bucket-midpoint quantile approximations.
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// MetricValue is one metric's value in a snapshot.
type MetricValue struct {
	// Name is the registered metric name (e.g. "l1.0.hits").
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Count carries a counter's value (0 for other kinds).
	Count uint64 `json:"count"`
	// Value carries a gauge's value (0 for other kinds).
	Value float64 `json:"value"`
	// Hist carries a histogram's summary (nil for other kinds).
	Hist *HistValue `json:"hist,omitempty"`
}

// Snapshot is a versioned, JSON-serialisable capture of every metric in
// a registry, sorted by name.
type Snapshot struct {
	// Version is SnapshotVersion at capture time.
	Version int `json:"version"`
	// Metrics lists every metric sorted by name.
	Metrics []MetricValue `json:"metrics"`
}

// Snapshot captures the current state of every metric. A nil registry
// yields a nil snapshot.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{Version: SnapshotVersion, Metrics: make([]MetricValue, 0, len(r.metrics))}
	for _, m := range r.metrics {
		mv := MetricValue{Name: m.name, Kind: m.kind.String()}
		switch m.kind {
		case KindCounter:
			mv.Count = m.c.v
		case KindGauge:
			mv.Value = m.g.v
		case KindHistogram:
			h := m.h.h
			p50, p90, p99 := h.Quantiles3(0.50, 0.90, 0.99)
			mv.Hist = &HistValue{
				Count: h.Total(),
				Mean:  h.Mean(),
				P50:   p50,
				P90:   p90,
				P99:   p99,
			}
		}
		s.Metrics = append(s.Metrics, mv)
	}
	return s
}

// Metric returns the named metric's value and whether it exists.
func (s *Snapshot) Metric(name string) (MetricValue, bool) {
	if s == nil {
		return MetricValue{}, false
	}
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return MetricValue{}, false
}

// Counter returns the named counter's value (0 when absent), a shorthand
// for tests and report consumers.
func (s *Snapshot) Counter(name string) uint64 {
	mv, _ := s.Metric(name)
	return mv.Count
}
