package cliutil

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lpm/internal/faultinject"
)

func TestAtomicWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := AtomicWriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite is atomic too: the old content is fully replaced.
	if err := AtomicWriteFile(path, []byte("second version"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second version" {
		t.Fatalf("after overwrite: %q", got)
	}
	if leftovers := tempFiles(t, filepath.Dir(path)); len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

func TestAtomicFileAbortLeavesOldContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := AtomicWriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := NewAtomicFile(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half-written new conte")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("abort clobbered destination: %q", got)
	}
	if leftovers := tempFiles(t, filepath.Dir(path)); len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

// TestAtomicWriteInjectedFaults drives the two failpoints inside the
// atomic write path: a write that dies mid-stream and a rename that
// never happens (the kill -9-equivalent). Both must preserve the old
// file and clean up the temp file.
func TestAtomicWriteInjectedFaults(t *testing.T) {
	for _, point := range []string{"cliutil.atomic.write", "cliutil.atomic.rename"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.json")
			if err := AtomicWriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			restore := faultinject.Arm(faultinject.NewPlan(1,
				faultinject.Rule{Point: point, Msg: "disk died"}))
			defer restore()
			err := AtomicWriteFile(path, []byte("new"), 0o644)
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("err = %v, want injected", err)
			}
			if !strings.Contains(err.Error(), path) {
				t.Fatalf("error %q does not name the destination", err)
			}
			got, _ := os.ReadFile(path)
			if string(got) != "old" {
				t.Fatalf("failed write clobbered destination: %q", got)
			}
			if leftovers := tempFiles(t, dir); len(leftovers) != 0 {
				t.Fatalf("temp files left behind: %v", leftovers)
			}
		})
	}
}

func TestAtomicFileSizeAndLatchedError(t *testing.T) {
	f, err := NewAtomicFile(filepath.Join(t.TempDir(), "x"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("12345")); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 5 {
		t.Fatalf("Size = %d, want 5", f.Size())
	}
	restore := faultinject.Arm(faultinject.NewPlan(1,
		faultinject.Rule{Point: "cliutil.atomic.write", Msg: "x"}))
	if _, err := f.Write([]byte("6")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected write err = %v", err)
	}
	restore()
	// The error is latched: later writes and Commit both refuse even
	// though the fault plan is gone.
	if _, err := f.Write([]byte("7")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("post-fault write err = %v", err)
	}
	if err := f.Commit(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Commit after failed write = %v, want latched error", err)
	}
}

// TestAtomicWriteThroughSymlink pins the non-regular-destination rule:
// a destination that is a symlink (or device, fifo — anything Lstat
// reports as non-regular) is written through, never renamed over, so
// the node survives and the write lands in the link's target.
func TestAtomicWriteThroughSymlink(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "real.json")
	link := filepath.Join(dir, "link.json")
	if err := os.WriteFile(target, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(target, link); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	if err := AtomicWriteFile(link, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Lstat(link)
	if err != nil || fi.Mode()&os.ModeSymlink == 0 {
		t.Fatalf("destination is no longer a symlink: %v %v", fi, err)
	}
	got, _ := os.ReadFile(target)
	if string(got) != "new" {
		t.Fatalf("link target holds %q, want the written content", got)
	}
	if leftovers := tempFiles(t, dir); len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

// TestAtomicWriteDeviceErrors pins that device write errors reach the
// caller instead of landing on a temp file: /dev/full reports ENOSPC
// and must stay a character device afterwards.
func TestAtomicWriteDeviceErrors(t *testing.T) {
	fi, err := os.Lstat("/dev/full")
	if err != nil || fi.Mode()&os.ModeDevice == 0 {
		t.Skipf("/dev/full unavailable: %v %v", fi, err)
	}
	if err := AtomicWriteFile("/dev/full", []byte("x"), 0o644); err == nil {
		t.Fatal("writing /dev/full did not error")
	}
	fi, err = os.Lstat("/dev/full")
	if err != nil || fi.Mode()&os.ModeDevice == 0 {
		t.Fatalf("/dev/full is no longer a device: %v %v", fi, err)
	}
}

// tempFiles lists the in-progress temp names AtomicFile uses, to assert
// cleanup on every exit path.
func tempFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			out = append(out, e.Name())
		}
	}
	return out
}
