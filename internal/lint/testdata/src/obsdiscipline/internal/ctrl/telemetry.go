// Package ctrl is a miniature of the control plane's telemetry: the
// same extended nil-guard rule as the fabric probe sets.
package ctrl

import "lpm/internal/obs"

// Telemetry is the control-plane probe set.
type Telemetry struct {
	submitted *obs.Counter
	drops     *obs.Counter
}

// NewTelemetry wires the probes; nil registry, nil telemetry.
func NewTelemetry(reg *obs.Registry) *Telemetry {
	if reg == nil {
		return nil
	}
	return &Telemetry{
		submitted: reg.Counter("ctrl.runs_submitted"),
		drops:     reg.Counter("ctrl.sse_events_dropped"),
	}
}

// Submitted counts an accepted run — properly guarded.
func (t *Telemetry) Submitted() {
	if t == nil {
		return
	}
	t.submitted.Add(1)
}

// EventsDropped counts SSE ring overruns but forgets the guard.
func (t *Telemetry) EventsDropped(n uint64) { // want "dereferences its receiver without the nil-receiver guard"
	t.drops.Add(n)
}

// Registry is scheduler machinery, not a probe set: exempt.
type Registry struct{ running int }

// Submit is unguarded and fine.
func (g *Registry) Submit() {
	g.running++
}
