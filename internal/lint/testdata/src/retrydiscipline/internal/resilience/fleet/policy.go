// Package fleet is the fixture's stand-in for the shared retry policy:
// the sanctioned pacing surface retrydiscipline steers loops toward.
package fleet

import (
	"context"
	"time"
)

// RetryPolicy is the shared capped, seeded backoff schedule.
type RetryPolicy struct {
	Base time.Duration
	Cap  time.Duration
	Seed uint64
}

// Defaults returns the fleet-wide policy for a seed.
func Defaults(seed uint64) RetryPolicy {
	return RetryPolicy{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Seed: seed}
}

// Delay returns the pause before the given attempt.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	d := p.Base << uint(attempt)
	if d > p.Cap {
		d = p.Cap
	}
	return d
}

// Sleep pauses for Delay(attempt) or until ctx cancels.
func (p RetryPolicy) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
