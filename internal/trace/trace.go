// Package trace models instruction streams for the LPM reproduction.
//
// The paper evaluates on SPEC CPU2006 reference runs (10-billion-instruction
// SimPoint samples) executed under GEM5. Neither the suite nor the
// simulator binaries are available here, so this package provides
// deterministic synthetic generators whose locality and concurrency
// characteristics reproduce the behaviours the paper relies on: bzip2's
// tiny working set, gcc's 64 KB appetite, mcf's dependent pointer chasing,
// milc's cache-oblivious streaming, bwaves' bandwidth-hungry sequential
// sweeps, and so on. See DESIGN.md §1 for the substitution argument.
//
// A Generator yields one Instr at a time; the CPU model consumes them.
// Streams are reproducible: the same profile and seed always produce the
// same trace. Traces can also be recorded to and replayed from a compact
// binary format (see Writer and Reader).
package trace

import "fmt"

// Kind classifies an instruction.
type Kind uint8

// Instruction kinds.
const (
	// Compute is a non-memory instruction (ALU/FPU).
	Compute Kind = iota
	// Load reads memory.
	Load
	// Store writes memory.
	Store
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsMem reports whether the kind accesses memory.
func (k Kind) IsMem() bool { return k == Load || k == Store }

// Instr is one dynamic instruction.
type Instr struct {
	// Kind is the instruction class.
	Kind Kind
	// Addr is the byte address accessed (memory instructions only).
	Addr uint64
	// Dep is the backward distance, in dynamic instructions, to the
	// producer this instruction depends on; 0 means no register
	// dependence. The consumer cannot begin execution until the producer
	// completes. Dependent loads (Dep pointing at an earlier load) model
	// pointer chasing.
	Dep uint32
	// Lat is the execution latency in cycles once operands are ready
	// (compute instructions; memory instructions take their latency from
	// the memory system).
	Lat uint8
}

// Generator produces an instruction stream.
type Generator interface {
	// Name identifies the workload (e.g. "429.mcf").
	Name() string
	// Next returns the next dynamic instruction. Streams are unbounded;
	// the simulator decides when to stop.
	Next() Instr
	// Reset rewinds the stream to its beginning. After Reset the
	// generator reproduces exactly the same stream.
	Reset()
}
