// Package core is the suppression-machinery fixture: every directive
// form appears once. The test asserts the exact diagnostic set (want
// comments cannot ride on directive lines without changing the
// directive's reason).
package core

// Approx is the sanctioned tolerance helper; exact compares inside it
// are legal without any directive.
func Approx(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// SameBits exercises the trailing-directive form.
func SameBits(a, b float64) bool {
	return a == b //lint:ignore floateq fixture exercises exact equality on purpose
}

// SameBits2 exercises the standalone-directive form.
func SameBits2(a, b float64) bool {
	//lint:ignore floateq fixture exercises exact equality on purpose
	return a == b
}

// Multi exercises a directive naming several analyzers.
func Multi(a, b float64) bool {
	//lint:ignore floateq,maporder fixture exercises the list form
	return a == b
}

// Malformed's directive is missing its reason, so it must report and
// must not suppress the finding below it.
func Malformed(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}

// Unknown names an analyzer that does not exist.
func Unknown(a, b int) bool {
	//lint:ignore nosuch the analyzer name is wrong on purpose
	return a == b
}

// Stale suppresses a line that produces no finding.
func Stale(x float64) bool {
	//lint:ignore floateq zero guards are already exempt
	return x == 0
}

// Renamed carries a directive written against an analyzer's old name
// next to the current one: the stale name is reported (and dropped),
// the current name still suppresses the finding.
func Renamed(a, b float64) bool {
	//lint:ignore floatcompare,floateq directive predates the floateq rename
	return a == b
}

// AllRenamed's directive names only stale analyzers: it is reported as
// stale by name but must NOT also count as an unused suppression.
func AllRenamed(a, b float64) bool {
	//lint:ignore floatcompare directive predates the floateq rename
	return a == b
}
