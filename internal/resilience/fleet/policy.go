// Package fleet is the resilience layer under the sweep fabric and the
// control plane: one shared retry/backoff policy, a heartbeat health
// state machine, a circuit-breaker quarantine with probation, and an
// append-only scheduling journal — the pieces that let a distributed
// sweep survive slow, flaky, and lying workers (and a murdered
// coordinator) without perturbing bit-identical results.
//
// Everything here that makes a *decision* is a pure function of its
// inputs: backoff delays derive from (seed, attempt) through splitmix64,
// health states from tick counts, quarantine trips from strike counts.
// No wall clocks, no global RNG — the chaos suite replays every scenario
// deterministically, and `lpmlint` enforces the discipline.
package fleet

import (
	"context"
	"errors"
	"io"
	"net"
	"syscall"
	"time"
)

// RetryPolicy is the shared deterministic backoff schedule: capped
// exponential growth with seeded jitter. The same policy value produces
// the same delay for the same attempt on every run — jitter comes from
// a splitmix64 stream over (Seed, attempt), never from wall clocks or
// math/rand — so retry timing is reproducible and lint-enforceable.
//
// The zero value is not useful; call Defaults (or fill every field) and
// share one policy across the dial, reconnect, cache-probe, and
// granule-requeue paths so the whole fleet backs off coherently.
type RetryPolicy struct {
	// Base is the delay before the first retry (attempt 0).
	Base time.Duration
	// Cap bounds the grown delay; the jittered delay never exceeds it.
	Cap time.Duration
	// Multiplier grows the delay per attempt (2 doubles each time).
	Multiplier float64
	// Jitter in [0,1] is the fraction of each delay drawn from the
	// seeded stream: 0 is fully deterministic spacing, 0.5 spreads each
	// delay over [0.5d, d]. Jitter decorrelates a thundering herd of
	// reconnecting workers without sacrificing replayability.
	Jitter float64
	// Seed selects the jitter stream. Two workers with different seeds
	// spread apart; the same seed replays the same schedule.
	Seed uint64
	// MaxAttempts bounds Retry (and callers implementing their own
	// loops); 0 means no attempt bound (the caller's deadline decides).
	MaxAttempts int
}

// Defaults returns the fleet-wide standard policy: 50ms doubling to a
// 5s cap, half-jittered, on the given seed.
func Defaults(seed uint64) RetryPolicy {
	return RetryPolicy{
		Base:       50 * time.Millisecond,
		Cap:        5 * time.Second,
		Multiplier: 2,
		Jitter:     0.5,
		Seed:       seed,
	}
}

// splitmix64 is the deterministic jitter stream step (same generator
// the fault-injection plans use).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Delay returns the backoff before retry number attempt (0-based). It
// is a pure function of the policy and the attempt: grow Base by
// Multiplier^attempt, cap at Cap, then jitter the configured fraction
// using the seeded stream.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	base := p.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	cap := p.Cap
	if cap <= 0 {
		cap = 5 * time.Second
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if d >= float64(cap) {
			d = float64(cap)
			break
		}
	}
	if d > float64(cap) {
		d = float64(cap)
	}
	j := p.Jitter
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	if j > 0 {
		// Draw in [0,1) from the (seed, attempt) cell of the stream, so
		// each attempt's jitter is independent but replayable.
		draw := float64(splitmix64(p.Seed^(uint64(attempt)+1)*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
		d = d * (1 - j*draw)
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Sleep waits out Delay(attempt) or returns early with ctx's error when
// the context ends first. The *decision* (how long) is deterministic;
// only the waiting itself touches the clock.
func (p RetryPolicy) Sleep(ctx context.Context, attempt int) error {
	// The backoff duration is decided purely from (seed, attempt);
	// the timer only implements the wait.
	t := time.After(p.Delay(attempt))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t:
		return nil
	}
}

// Retry runs op until it succeeds, fails permanently, exhausts
// MaxAttempts, or ctx ends, sleeping the policy's schedule between
// attempts. Transience is decided by IsTransient.
func (p RetryPolicy) Retry(ctx context.Context, op func(ctx context.Context) error) error {
	for attempt := 0; ; attempt++ {
		err := op(ctx)
		if err == nil || !IsTransient(err) || ctx.Err() != nil {
			return err
		}
		if p.MaxAttempts > 0 && attempt+1 >= p.MaxAttempts {
			return err
		}
		if serr := p.Sleep(ctx, attempt); serr != nil {
			return err
		}
	}
}

// RemoteError is a worker-side failure carried through a result frame
// with its transience classification intact. Error() returns the
// worker's text verbatim — a sharded run's error cells render
// byte-identical to a serial run's — while the retry policy reads
// Transient to decide whether re-running the granule could help.
type RemoteError struct {
	// Text is the worker-side error text, verbatim.
	Text string
	// Transient reports whether the failure is worth retrying
	// (transport glitches) as opposed to deterministic (a simulation
	// error that will reproduce on every worker).
	Transient bool
}

// Error returns the remote text unchanged.
func (e *RemoteError) Error() string { return e.Text }

// IsTransient implements the classification interface.
func (e *RemoteError) IsTransient() bool { return e.Transient }

// transienter is the classification hook: errors can declare their own
// transience (RemoteError does).
type transienter interface{ IsTransient() bool }

// IsTransient classifies an error for the retry policy: true means a
// retry could plausibly succeed (transport broke), false means the
// failure is deterministic or the caller is shutting down. Unknown
// errors default to permanent — retrying a failure we cannot classify
// burns budget without evidence.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var t transienter
	if errors.As(err, &t) {
		return t.IsTransient()
	}
	// A cancelled or timed-out context is the caller ending the work,
	// not the work failing.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Streams that broke mid-conversation: the peer may be back.
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ETIMEDOUT) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}
