// Analyzerdemo replays the paper's Fig. 1 worked example through the
// C-AMAT analyzer cycle by cycle, printing the hit/miss phase structure
// and deriving every C-AMAT parameter — the same numbers the paper works
// out by hand (C-AMAT = 1.6 vs AMAT = 3.8).
package main

import (
	"fmt"

	"lpm"
)

func main() {
	fmt.Println("Fig. 1: five accesses, 3-cycle hit operations.")
	fmt.Println("  A1, A2: hits, cycles 1-3")
	fmt.Println("  A3: miss — hit phase 3-5, penalty cycles 6-8 (6 masked by A5's hit, 7-8 pure)")
	fmt.Println("  A4: miss — hit phase 3-5, penalty cycle 6 masked by A5's hit activity")
	fmt.Println("  A5: hit, cycles 4-6")
	fmt.Println()

	// The analyzer classifies each cycle with the HCD/MCD rules; Fig1
	// replays exactly the schedule above.
	p := lpm.Fig1()
	ref := lpm.Fig1Reference()

	fmt.Println("parameter   paper   measured")
	rows := []struct {
		name     string
		ref, got float64
	}{
		{"H", 3, p.H()},
		{"C_H", ref.CH, p.CH()},
		{"C_M", ref.CM, p.CM()},
		{"pMR", ref.PMR, p.PMR()},
		{"pAMP", ref.PAMP, p.PAMP()},
		{"MR", 0.4, p.MR()},
		{"AMP", 2, p.AMP()},
		{"C-AMAT", ref.CAMAT, p.CAMAT()},
		{"AMAT", ref.AMAT, p.AMAT()},
		{"APC", 5.0 / 8.0, p.APC()},
	}
	for _, r := range rows {
		fmt.Printf("%-9s %7.3f %10.3f\n", r.name, r.ref, r.got)
	}

	fmt.Println()
	fmt.Printf("Eq. (3): C-AMAT == 1/APC: %.3f == %.3f\n", p.CAMAT(), 1/p.APC())
	fmt.Printf("concurrency bought a %.2fx faster memory view (AMAT/C-AMAT)\n",
		p.AMAT()/p.CAMAT())
	fmt.Println()
	fmt.Println("Only access A3 is a PURE miss: its penalty cycles 7-8 have no hit")
	fmt.Println("activity to hide behind. A4's one penalty cycle overlaps A5's hit")
	fmt.Println("phase, so it never stalls the processor — the distinction that")
	fmt.Println("makes LPM optimization practical (paper §II).")
}
