package cache

import (
	"testing"
)

// fuzzLower is a fixed-latency stub backing store for fuzzed caches.
type fuzzLower struct {
	pend []struct {
		done func(uint64)
		at   uint64
	}
}

func (f *fuzzLower) Request(cycle uint64, src int, block uint64, write bool, done func(cycle uint64)) bool {
	if done != nil {
		f.pend = append(f.pend, struct {
			done func(uint64)
			at   uint64
		}{done, cycle + 10})
	}
	return true
}

func (f *fuzzLower) Tick(cycle uint64) {
	keep := f.pend[:0]
	for _, p := range f.pend {
		if p.at <= cycle {
			p.done(cycle)
		} else {
			keep = append(keep, p)
		}
	}
	f.pend = keep
}

// FuzzCacheConfigValidate fuzzes cache geometry validation: Validate
// must reject every bad geometry before New (which panics on invalid
// configs) can see it, and configs that pass must build and survive a
// bounded burst of accesses without panicking or losing completions.
func FuzzCacheConfigValidate(f *testing.F) {
	// Realistic geometries.
	f.Add("L1", uint64(32*1024), uint64(64), 8, 3, 2, 4, 8, 8, 16, 0, true, uint8(0), uint8(0))
	f.Add("L2", uint64(4*1024*1024), uint64(64), 16, 20, 4, 8, 32, 8, 24, 1, true, uint8(1), uint8(1))
	// Degenerate and adversarial geometries.
	f.Add("", uint64(0), uint64(0), 0, 0, 0, 0, 0, -1, -1, -1, false, uint8(3), uint8(9))
	f.Add("x", uint64(1), uint64(3), 1, 1, 1, 1, 1, 0, 0, 0, false, uint8(2), uint8(2))
	f.Add("tiny", uint64(64), uint64(64), 1, 1, 1, 1, 1, 1, 1, 0, true, uint8(0), uint8(1))
	f.Add("big", uint64(1<<62), uint64(1<<32), 2, 1, 1, 1, 1, 0, 0, 0, true, uint8(0), uint8(0))

	f.Fuzz(func(t *testing.T, name string, size, blockSize uint64,
		assoc, hitLat, ports, banks, mshrs, mshrTargets, inputQueue, prefetch int,
		coalesce bool, repl, insert uint8) {

		cfg := Config{
			Name: name, Size: size, BlockSize: blockSize, Assoc: assoc,
			HitLatency: hitLat, Ports: ports, Banks: banks, MSHRs: mshrs,
			MSHRTargets: mshrTargets, InputQueue: inputQueue,
			Prefetch: prefetch, Coalesce: coalesce,
			Repl: ReplPolicy(repl % 3), Insert: InsertPolicy(insert % 3),
		}
		if err := cfg.Validate(); err != nil {
			return // rejected: exactly what Validate is for
		}
		// Validate accepted the geometry; derived quantities must be sane.
		if cfg.Sets() == 0 {
			t.Fatalf("validated config has zero sets: %+v", cfg)
		}
		// Cap resources so accepted-but-huge geometries can't OOM the
		// fuzzer; the interesting behaviour is the small-geometry
		// edge cases anyway.
		if cfg.Sets() > 1<<14 || cfg.Assoc > 64 || cfg.MSHRs > 256 ||
			cfg.Ports > 64 || cfg.Banks > 256 || cfg.Prefetch > 16 ||
			cfg.HitLatency > 1024 || cfg.MSHRTargets > 256 || cfg.InputQueue > 1024 {
			return
		}

		// New must not panic on a validated config, and a bounded access
		// burst must complete every accepted request.
		c := New(cfg)
		low := &fuzzLower{}
		c.SetLower(low)
		accepted, completed := 0, 0
		var cycle uint64
		for i := 0; i < 64; i++ {
			cycle++
			addr := uint64(i) * (blockSize/2 + 1)
			if c.Access(cycle, addr, i%3 == 0, func(uint64) { completed++ }) {
				accepted++
			}
			c.Tick(cycle)
			low.Tick(cycle)
		}
		for drained := 0; c.Busy() && drained < 100000; drained++ {
			cycle++
			c.Tick(cycle)
			low.Tick(cycle)
		}
		if c.Busy() {
			t.Fatalf("cache failed to drain: %+v", cfg)
		}
		if completed != accepted {
			t.Fatalf("completed %d of %d accepted accesses: %+v", completed, accepted, cfg)
		}
	})
}
