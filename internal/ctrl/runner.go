package ctrl

// SimRunner: the production Runner. One run is exactly lpmrun's
// single-workload pipeline — default single-core chip, warm-up then
// measured window, obs enabled, the windowed sampler publishing every
// closed window — producing the same minimal lpm-report/v2 document
// lpmrun -json emits.

import (
	"context"
	"encoding/json"

	"lpm"
	"lpm/internal/obs/timeseries"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

// SimRunner executes runs on the simulator.
type SimRunner struct{}

// Run implements Runner.
func (SimRunner) Run(ctx context.Context, spec RunSpec, pub *Publisher) (json.RawMessage, error) {
	prof, err := trace.ProfileByName(spec.Workload)
	if err != nil {
		return nil, err
	}
	cfg := chip.SingleCore(spec.Workload)
	gen := trace.NewSynthetic(prof)
	cpiExe := chip.MeasureCPIexe(cfg.Cores[0].CPU, gen, uint64(cfg.Cores[0].L1.HitLatency), spec.Instructions)

	ch := chip.New(cfg)
	ch.SetContext(ctx)
	if spec.Watchdog > 0 {
		ch.SetWatchdog(spec.Watchdog)
	}
	ch.EnableObs()
	snap := ThrottleSnapshots(func() { pub.Snapshot(ch.ObsSnapshot()) })
	tcfg := timeseries.Config{
		Width:    spec.TSWindow,
		Adaptive: spec.Adaptive,
		CPIexe:   cpiExe,
		OnWindow: func(w timeseries.Window) {
			// Runs on the simulation goroutine; Publisher hands off to
			// the synchronised Live/Hub pair. Snapshots are throttled —
			// the final one after Run keeps the end state exact.
			pub.Window(w)
			snap()
		},
	}
	s := ch.EnableTimeseries(tcfg)
	pub.SetMeta(s.Width(), spec.Adaptive)

	budget := (spec.Warmup + spec.Instructions) * 600
	runTarget := spec.Warmup + spec.Instructions
	if spec.WarmupFast {
		ch.SetTier(chip.TierFunctional)
		ch.RunFunctional(spec.Warmup)
		ch.SetTier(chip.TierDetailed)
		runTarget = spec.Instructions
	} else {
		ch.RunUntilRetired(spec.Warmup, budget)
	}
	ch.ResetCounters()
	ch.Run(runTarget, budget)
	runErr := ch.Err()
	pub.Snapshot(ch.ObsSnapshot())

	rep := &lpm.Report{
		Schema: lpm.ReportSchema,
		Tool:   "lpmserve",
		Scale:  lpm.Scale{Warmup: spec.Warmup, Window: spec.Instructions},
	}
	er := lpm.ExperimentReport{Name: "run"}
	if runErr != nil {
		er.Table1 = []lpm.Table1JSON{{Name: spec.Workload, Err: runErr.Error()}}
		rep.Partial = true
		rep.Aborted = []string{"run"}
	} else {
		m := ch.Measure(0, cpiExe)
		er.Table1 = []lpm.Table1JSON{{
			Name:          spec.Workload,
			LPMR:          [3]float64{m.LPMR1(), m.LPMR2(), m.LPMR3()},
			IPC:           m.IPC,
			CPIexe:        m.CPIexe,
			Eta:           m.Eta(),
			StallModel:    m.StallEq12(),
			StallMeasured: m.MeasuredStall,
			Layers:        m.Obs,
		}}
	}
	rep.Experiments = append(rep.Experiments, er)
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return doc, runErr
}
