package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestDelayDeterministicAndBounded(t *testing.T) {
	t.Parallel()
	p := Defaults(42)
	for attempt := 0; attempt < 12; attempt++ {
		d1 := p.Delay(attempt)
		d2 := p.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d1)
		}
		if d1 > p.Cap {
			t.Fatalf("attempt %d: delay %v exceeds cap %v", attempt, d1, p.Cap)
		}
		// Jitter 0.5 means the delay is at least half the grown value.
		grown := p.Base
		for i := 0; i < attempt && grown < p.Cap; i++ {
			grown *= 2
		}
		if grown > p.Cap {
			grown = p.Cap
		}
		if d1 < grown/2 {
			t.Fatalf("attempt %d: delay %v below jitter floor %v", attempt, d1, grown/2)
		}
	}
}

func TestDelaySeedSelectsStream(t *testing.T) {
	t.Parallel()
	a, b := Defaults(1), Defaults(2)
	same := true
	for attempt := 0; attempt < 8; attempt++ {
		if a.Delay(attempt) != b.Delay(attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
}

func TestDelayZeroJitterMonotone(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{Base: 10 * time.Millisecond, Cap: time.Second, Multiplier: 2}
	prev := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := p.Delay(attempt)
		if d < prev {
			t.Fatalf("attempt %d: delay %v fell below previous %v", attempt, d, prev)
		}
		prev = d
	}
	if prev != time.Second {
		t.Fatalf("final delay %v, want cap %v", prev, time.Second)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{Base: time.Millisecond, Cap: time.Millisecond, Multiplier: 2, MaxAttempts: 10}
	calls := 0
	perm := errors.New("deterministic failure")
	err := p.Retry(context.Background(), func(context.Context) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("permanent error: calls=%d err=%v, want 1 call", calls, err)
	}
}

func TestRetryRespectsBudgetAndTransience(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{Base: time.Millisecond, Cap: time.Millisecond, Multiplier: 2, MaxAttempts: 3}
	calls := 0
	err := p.Retry(context.Background(), func(context.Context) error {
		calls++
		return &RemoteError{Text: "conn reset", Transient: true}
	})
	if err == nil || calls != 3 {
		t.Fatalf("transient budget: calls=%d err=%v, want 3 calls and an error", calls, err)
	}
	calls = 0
	err = p.Retry(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return &RemoteError{Text: "flaky", Transient: true}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("eventual success: calls=%d err=%v", calls, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{Base: time.Hour, Cap: time.Hour, Multiplier: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := p.Retry(ctx, func(context.Context) error {
		calls++
		return &RemoteError{Text: "x", Transient: true}
	})
	if err == nil || calls != 1 {
		t.Fatalf("cancelled ctx: calls=%d err=%v, want 1 call", calls, err)
	}
}

func TestIsTransientClassification(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("model diverged"), false},
		{"remote transient", &RemoteError{Text: "t", Transient: true}, true},
		{"remote permanent", &RemoteError{Text: "p", Transient: false}, false},
		{"wrapped remote", fmt.Errorf("submit: %w", &RemoteError{Text: "t", Transient: true}), true},
		{"ctx canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"eof", io.EOF, true},
		{"unexpected eof", io.ErrUnexpectedEOF, true},
		{"net closed", net.ErrClosed, true},
		{"econnreset", syscall.ECONNRESET, true},
		{"econnrefused", syscall.ECONNREFUSED, true},
		{"epipe", syscall.EPIPE, true},
		{"op error", &net.OpError{Op: "dial", Err: errors.New("down")}, true},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRemoteErrorTextVerbatim(t *testing.T) {
	t.Parallel()
	e := &RemoteError{Text: "kind sweep.point: cache config: ways must divide sets", Transient: false}
	if e.Error() != e.Text {
		t.Fatalf("Error()=%q, want verbatim %q", e.Error(), e.Text)
	}
}

func TestHealthClassification(t *testing.T) {
	t.Parallel()
	p := HealthPolicy{SuspectAfter: 4, DeadAfter: 10}
	h := NewHealthTracker(p)
	h.Observe("w1", 100)
	cases := []struct {
		now  uint64
		want HealthState
	}{
		{100, Healthy}, {103, Healthy}, {104, Suspect}, {109, Suspect},
		{110, Dead}, {500, Dead},
	}
	for _, tc := range cases {
		if got := h.State("w1", tc.now); got != tc.want {
			t.Errorf("tick %d: state=%v, want %v", tc.now, got, tc.want)
		}
	}
	// Fresh proof of life resets the clock.
	h.Observe("w1", 120)
	if got := h.State("w1", 122); got != Healthy {
		t.Fatalf("after re-observe: %v, want healthy", got)
	}
	// Unknown workers are healthy until first observation.
	if got := h.State("ghost", 999); got != Healthy {
		t.Fatalf("unknown worker: %v, want healthy", got)
	}
	h.Forget("w1")
	if got := h.State("w1", 999); got != Healthy {
		t.Fatalf("forgotten worker: %v, want healthy", got)
	}
}

func TestHealthDisabled(t *testing.T) {
	t.Parallel()
	h := NewHealthTracker(HealthPolicy{})
	h.Observe("w", 0)
	if got := h.State("w", 1<<40); got != Healthy {
		t.Fatalf("disabled policy: %v, want healthy", got)
	}
}

func TestQuarantineStrikesAndProbation(t *testing.T) {
	t.Parallel()
	q := NewQuarantine(QuarantinePolicy{TripAfter: 3, Probation: 50})
	if q.Strike("w", 10) || q.Strike("w", 11) {
		t.Fatal("tripped before the threshold")
	}
	if !q.Strike("w", 12) {
		t.Fatal("third strike did not trip")
	}
	if !q.Blocked("w", 12) || !q.Blocked("w", 61) {
		t.Fatal("not blocked during probation")
	}
	if q.Blocked("w", 62) {
		t.Fatal("still blocked after probation expired")
	}
	if q.Strikes("w") != 0 {
		t.Fatalf("strikes=%d after readmission, want clean slate", q.Strikes("w"))
	}
}

func TestQuarantineNowAndPermanent(t *testing.T) {
	t.Parallel()
	q := NewQuarantine(QuarantinePolicy{TripAfter: 3, Probation: 0})
	if !q.QuarantineNow("liar", 5) {
		t.Fatal("QuarantineNow did not trip")
	}
	if q.QuarantineNow("liar", 6) {
		t.Fatal("second QuarantineNow reported a fresh trip")
	}
	if !q.Blocked("liar", 1<<40) {
		t.Fatal("permanent quarantine expired")
	}
}

func TestQuarantineSnapshotRestore(t *testing.T) {
	t.Parallel()
	q := NewQuarantine(QuarantinePolicy{TripAfter: 1, Probation: 100})
	q.Strike("a", 10)
	q.Strike("b", 20)
	snap := q.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot %v, want 2 names", snap)
	}
	q2 := NewQuarantine(QuarantinePolicy{TripAfter: 1, Probation: 100})
	q2.Restore(snap, 0)
	if !q2.Blocked("a", 50) || !q2.Blocked("b", 99) {
		t.Fatal("restored quarantine not blocking")
	}
	if q2.Blocked("a", 100) {
		t.Fatal("restored probation did not expire")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "sched.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	records := []Entry{
		{Tick: 1, Op: OpJoin, Worker: "w1"},
		{Tick: 2, Op: OpSubmit, Kind: "sweep.point", Key: "d8"},
		{Tick: 2, Op: OpIssue, Kind: "sweep.point", Key: "d8", Worker: "w1"},
		{Tick: 5, Op: OpRequeue, Kind: "sweep.point", Key: "d8", Retries: 1, Detail: "worker suspect"},
		{Tick: 7, Op: OpQuarantine, Worker: "w1", Detail: "divergent result"},
		{Tick: 9, Op: OpComplete, Kind: "sweep.point", Key: "d8"},
	}
	for _, e := range records {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(got), len(records))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, e.Seq)
		}
		if e.Op != records[i].Op || e.Key != records[i].Key || e.Worker != records[i].Worker {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, e, records[i])
		}
	}

	st := RecoverState(got)
	if !st.Completed[GranuleKey("sweep.point", "d8")] {
		t.Fatal("completion not recovered")
	}
	if st.Retries[GranuleKey("sweep.point", "d8")] != 1 {
		t.Fatalf("retries=%d, want 1", st.Retries[GranuleKey("sweep.point", "d8")])
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0] != "w1" {
		t.Fatalf("quarantined=%v, want [w1]", st.Quarantined)
	}
	if st.LastSeq != uint64(len(records)) {
		t.Fatalf("lastSeq=%d, want %d", st.LastSeq, len(records))
	}
}

func TestJournalAppendContinuesSequence(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "sched.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Op: OpJoin, Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Entry{Op: OpGone, Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Seq != 2 {
		t.Fatalf("got %+v, want 2 records with continued seq", got)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "sched.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Entry{Op: OpSubmit, Key: fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A kill -9 mid-Append can leave any prefix of the final frame.
	frameLen := len(whole) / 3
	for cut := 1; cut < frameLen; cut += 7 {
		torn := whole[:2*frameLen+cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReplayJournal(path)
		if err != nil {
			t.Fatalf("cut %d: torn tail rejected: %v", cut, err)
		}
		if len(got) != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, len(got))
		}
	}
}

func TestJournalMidFileCorruptionRejected(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "sched.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Entry{Op: OpSubmit, Key: fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle record: this is silent damage,
	// not a torn tail, and replay must refuse rather than skip.
	frameLen := len(whole) / 3
	whole[frameLen+frameLen/2] ^= 0x40
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayJournal(path); err == nil {
		t.Fatal("mid-file corruption replayed without error")
	}
}

func TestJournalMissingFile(t *testing.T) {
	t.Parallel()
	_, err := ReplayJournal(filepath.Join(t.TempDir(), "absent"))
	if !os.IsNotExist(err) {
		t.Fatalf("missing journal: %v, want IsNotExist", err)
	}
}

func TestNilReceivers(t *testing.T) {
	t.Parallel()
	var h *HealthTracker
	h.Observe("w", 1)
	h.Forget("w")
	if h.State("w", 1) != Healthy {
		t.Fatal("nil tracker not healthy")
	}
	var q *Quarantine
	if q.Strike("w", 1) || q.Blocked("w", 1) || q.QuarantineNow("w", 1) {
		t.Fatal("nil quarantine tripped")
	}
	q.Restore([]string{"w"}, 1)
	if q.Snapshot() != nil || q.Strikes("w") != 0 {
		t.Fatal("nil quarantine returned state")
	}
	var j *Journal
	if err := j.Append(Entry{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Path() != "" {
		t.Fatal("nil journal path")
	}
}
