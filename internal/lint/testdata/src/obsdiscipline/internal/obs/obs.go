// Package obs is a miniature of the real observability registry: just
// enough surface for the metric-name and nil-guard rules.
package obs

// Registry interns metric handles by name.
type Registry struct {
	names []string
	n     int
}

// Counter is a monotonic metric handle.
type Counter struct{ v uint64 }

// Tracer records simulation events.
type Tracer struct{ events int }

// Counter returns the handle for name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.names = append(r.names, name)
	return &Counter{}
}

// Gauge returns the handle for name.
func (r *Registry) Gauge(name string) *Counter {
	if r == nil {
		return nil
	}
	r.names = append(r.names, name)
	return &Counter{}
}

// Histogram returns the handle for name.
func (r *Registry) Histogram(name string) *Counter {
	if r == nil {
		return nil
	}
	r.names = append(r.names, name)
	return &Counter{}
}

// Reset forgets every handle. It dereferences the receiver without the
// guard, so a nil registry panics here.
func (r *Registry) Reset() { // want "exported obs method Reset dereferences its receiver"
	r.n = 0
	r.names = nil
}

// Add increments the counter.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.v += d
}

// Emit records one event under a constant name.
func (t *Tracer) Emit(layer int, name string, args ...any) {
	if t == nil {
		return
	}
	t.events++
	_ = layer
	_ = name
	_ = args
}
