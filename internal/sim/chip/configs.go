package chip

import (
	"fmt"

	"lpm/internal/sim/cache"
	"lpm/internal/sim/cpu"
	"lpm/internal/sim/dram"
	"lpm/internal/trace"
)

// KB is one kibibyte, exported for configuration literals.
const KB = 1 << 10

// MB is one mebibyte.
const MB = 1 << 20

// DefaultCPU returns a mid-range out-of-order core configuration
// (4-wide, 64-entry ROB, 32-entry window).
func DefaultCPU(name string) cpu.Config {
	return cpu.Config{
		Name:       name,
		IssueWidth: 4,
		ROBSize:    64,
		IWSize:     32,
		LSQSize:    24,
	}
}

// DefaultL1 returns an L1 data cache of the given size: 64 B blocks,
// 4-way, 3-cycle hit, 2 ports, 4 banks, 8 MSHRs.
func DefaultL1(name string, size uint64) cache.Config {
	assoc := 4
	if size/(64*uint64(assoc)) == 0 {
		assoc = 1
	}
	return cache.Config{
		Name:       name,
		Size:       size,
		BlockSize:  64,
		Assoc:      assoc,
		HitLatency: 3,
		Ports:      2,
		Banks:      4,
		MSHRs:      8,
		Coalesce:   true,
		Repl:       cache.LRU,
	}
}

// DefaultL2 returns a shared last-level cache of the given size: 64 B
// blocks, 8-way, 10-cycle hit, 4 ports, 8 banks, 32 MSHRs.
func DefaultL2(name string, size uint64) cache.Config {
	return cache.Config{
		Name:       name,
		Size:       size,
		BlockSize:  64,
		Assoc:      8,
		HitLatency: 10,
		Ports:      4,
		Banks:      8,
		MSHRs:      32,
		InputQueue: 64,
		Coalesce:   true,
		Repl:       cache.LRU,
	}
}

// SingleCore builds a one-core chip running the named built-in workload
// profile with default parameters. Callers may mutate the returned config
// before calling New.
func SingleCore(profile string) Config {
	gen := trace.NewSynthetic(trace.MustProfile(profile))
	return Config{
		Name: "single-" + profile,
		Cores: []CoreSlot{{
			CPU:      DefaultCPU("core0"),
			L1:       DefaultL1("L1D-0", 32*KB),
			Workload: gen,
		}},
		L2:  DefaultL2("L2", 1*MB),
		Mem: dram.DDR3("mem"),
	}
}

// NUCAGroupCores is the number of cores per group in the Fig. 5 chip.
const NUCAGroupCores = 4

// NUCACPU returns the core configuration used by the Fig. 5 16-core CMP:
// a moderate 2-wide out-of-order core, so sixteen of them load but do not
// drown the shared L2 and memory.
func NUCACPU(name string) cpu.Config {
	return cpu.Config{
		Name:       name,
		IssueWidth: 2,
		ROBSize:    48,
		IWSize:     24,
		LSQSize:    16,
	}
}

// NUCAL2 returns the shared LLC used by the Fig. 5 chip: 8 MB, heavily
// banked and ported for sixteen clients.
func NUCAL2() cache.Config {
	l2 := DefaultL2("L2", 8*MB)
	l2.HitLatency = 30
	l2.Ports = 8
	l2.Banks = 16
	l2.MSHRs = 64
	l2.InputQueue = 128
	return l2
}

// NUCAMem returns the main memory used by the Fig. 5 chip: four channels
// with deep queues.
func NUCAMem() dram.Config {
	m := dram.DDR3("mem")
	m.Channels = 8
	m.QueueDepth = 64
	return m
}

// NUCAGroupSizes are the four private L1 capacities of the paper's
// Fig. 5 heterogeneous 16-core CMP, one per 4-core group.
var NUCAGroupSizes = [4]uint64{4 * KB, 16 * KB, 32 * KB, 64 * KB}

// NUCA16 builds the paper's Fig. 5 chip: sixteen cores in four groups
// whose private L1 data caches are 4, 16, 32 and 64 KB. workloads[i]
// (nil allowed) runs on core i; core i belongs to group i/4.
func NUCA16(workloads []trace.Generator) Config {
	if len(workloads) > 16 {
		panic(fmt.Sprintf("chip: NUCA16 given %d workloads", len(workloads)))
	}
	cfg := Config{
		Name: "nuca16",
		L2:   NUCAL2(),
		Mem:  NUCAMem(),
	}
	for i := 0; i < 16; i++ {
		var gen trace.Generator
		if i < len(workloads) && workloads[i] != nil {
			// Disjoint address spaces: co-running programs must not alias
			// in the shared L2 and memory.
			gen = trace.WithOffset(workloads[i], uint64(i+1)<<33)
		}
		size := NUCAGroupSizes[i/4]
		cfg.Cores = append(cfg.Cores, CoreSlot{
			CPU:      NUCACPU(fmt.Sprintf("core%d", i)),
			L1:       DefaultL1(fmt.Sprintf("L1D-%d", i), size),
			Workload: gen,
		})
	}
	return cfg
}

// NUCASingle builds a one-core chip on the same platform as NUCA16 (same
// core microarchitecture, L2 and memory) with the given private L1 size —
// the standalone reference configuration for profiling and Hsp
// normalisation.
func NUCASingle(gen trace.Generator, l1Size uint64) Config {
	return Config{
		Name: "nuca-single",
		Cores: []CoreSlot{{
			CPU:      NUCACPU("core0"),
			L1:       DefaultL1("L1D-0", l1Size),
			Workload: gen,
		}},
		L2:  NUCAL2(),
		Mem: NUCAMem(),
	}
}
