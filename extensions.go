package lpm

import (
	"context"

	"lpm/internal/phase"
	"lpm/internal/sched"
	"lpm/internal/sim/coherence"
	"lpm/internal/sim/cpu"
	"lpm/internal/sim/noc"
	"lpm/internal/trace"
)

// This file re-exports the extension surface — SMT, the interconnect,
// coherence, phase detection, scheduling — so downstream users reach
// everything through the single public package.

// SMT and workload composition.
type (
	// SMTCore is a simultaneous-multithreading core (paper §II: SMT
	// raises C_H and C_M).
	SMTCore = cpu.SMT
	// PhasedWorkload switches behaviour profiles via a Markov chain.
	PhasedWorkload = trace.Phased
)

// NewSMT builds an SMT core over per-thread workloads.
func NewSMT(cfg CPUConfig, gens []Workload, mem cpu.MemPort) *SMTCore {
	return cpu.NewSMT(cfg, gens, mem)
}

// NewPhasedWorkload builds a Markov-phased workload.
func NewPhasedWorkload(name string, profiles []WorkloadProfile, trans [][]float64, dwell int, seed uint64) *PhasedWorkload {
	return trace.NewPhased(name, profiles, trans, dwell, seed)
}

// WithOffset relocates a workload's private addresses (disjoint address
// spaces for co-runners); addresses at or above GlobalBase pass through.
func WithOffset(g Workload, base uint64) Workload { return trace.WithOffset(g, base) }

// WithSharedRegion redirects a fraction of accesses into a region common
// to all co-runners (true sharing, for coherent chips).
func WithSharedRegion(g Workload, base, size uint64, frac float64, seed uint64) Workload {
	return trace.WithSharedRegion(g, base, size, frac, seed)
}

// GlobalBase is the start of the never-relocated shared address space.
const GlobalBase = trace.GlobalBase

// Interconnect and coherence.
type (
	// NoCConfig describes the optional L1↔LLC crossbar.
	NoCConfig = noc.Config
	// NoCRouter is the crossbar instance (via Chip.Router).
	NoCRouter = noc.Router
	// CoherenceDirectory is the MSI directory (via Chip.Directory).
	CoherenceDirectory = coherence.Directory
)

// DefaultNoC returns the default fabric for the given requestor count.
func DefaultNoC(sources int) NoCConfig { return noc.Default(sources) }

// Phase detection.
type (
	// PhaseSignature is one interval's behaviour vector.
	PhaseSignature = phase.Signature
	// PhaseDetector classifies interval signatures online.
	PhaseDetector = phase.Detector
	// PhaseTracker adds change detection and per-phase config memory.
	PhaseTracker = phase.Tracker
)

// NewPhaseDetector returns a detector (0 for the default threshold).
func NewPhaseDetector(threshold float64) *PhaseDetector { return phase.NewDetector(threshold) }

// NewPhaseTracker wraps a detector (nil for defaults).
func NewPhaseTracker(det *PhaseDetector) *PhaseTracker { return phase.NewTracker(det) }

// PhaseSignatureFromLPM builds the standard signature from interval
// measurements.
func PhaseSignatureFromLPM(fmem, mr1, pmr1, ch, cm, ipc float64) PhaseSignature {
	return phase.FromLPM(fmem, mr1, pmr1, ch, cm, ipc)
}

// Scheduling (case study II).
type (
	// SchedProfileTable is the per-workload, per-L1-size profiling data
	// (Fig. 6/7).
	SchedProfileTable = sched.ProfileTable
	// RandomScheduler, RoundRobinScheduler, NUCASAScheduler and
	// PIEScheduler are the four policies.
	RandomScheduler     = sched.Random
	RoundRobinScheduler = sched.RoundRobin
	NUCASAScheduler     = sched.NUCASA
	PIEScheduler        = sched.PIE
	// SchedEvalOptions parameterise an Hsp evaluation.
	SchedEvalOptions = sched.EvalOptions
)

// SchedProfileOptions parameterise profiling runs.
type SchedProfileOptions = sched.ProfileOptions

// SchedProfileOptionsQuick returns reduced profiling budgets for smoke
// runs and tests.
func SchedProfileOptionsQuick() SchedProfileOptions {
	return SchedProfileOptions{Instructions: 6000, Warmup: 15000}
}

// BuildSchedProfileTable profiles workloads standalone at each L1 size.
func BuildSchedProfileTable(names []string, sizes []uint64, opt SchedProfileOptions) (*SchedProfileTable, error) {
	//lint:ignore ctxflow ctx-less compat wrapper over the interruptible sched API
	return sched.BuildProfileTable(context.Background(), names, sizes, opt)
}

// EvaluateScheduler runs a policy on the Fig. 5 NUCA chip and returns
// its Hsp evaluation.
func EvaluateScheduler(s Scheduler, workloads []string, sizes []uint64, opt SchedEvalOptions) (*SchedEvaluation, error) {
	//lint:ignore ctxflow ctx-less compat wrapper over the interruptible sched API
	return sched.Evaluate(context.Background(), s, workloads, sizes, opt)
}
