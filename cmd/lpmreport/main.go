// Command lpmreport regenerates every table and figure of the paper and
// prints paper-reported values next to this reproduction's measurements.
// See DESIGN.md §3 for the experiment index.
//
// Usage:
//
//	lpmreport                      # everything, full scale
//	lpmreport -quick               # everything, reduced budgets
//	lpmreport -experiment table1   # one experiment
//	lpmreport -json -observe       # machine-readable lpm-report/v2 document
//	lpmreport -quick -shard 127.0.0.1:7707 -shard-min 2  # shard simulations across lpmworker processes
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"lpm"
	"lpm/internal/cliutil"
	"lpm/internal/fabric"
	"lpm/internal/resilience"
)

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// startPprof serves net/http/pprof on addr in the background; an empty
// addr disables it.
func startPprof(addr string, stderr io.Writer) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(stderr, "pprof: %v\n", err)
		}
	}()
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fset := flag.NewFlagSet("lpmreport", flag.ContinueOnError)
	fset.SetOutput(stderr)
	var (
		experiment = fset.String("experiment", "all",
			"comma-separated subset of: fig1, table1, casestudy1, fig6, fig7, fig8, interval, identities, timeline, all")
		quick     = fset.Bool("quick", false, "reduced simulation budgets")
		warmFast  = fset.Bool("warmup-fast", false, "run warm-up phases in the functional tier (faster; results differ from detailed warm-up)")
		workers   = fset.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		jsonOut   = fset.Bool("json", false, "emit a versioned lpm-report/v2 JSON document on stdout")
		observe   = fset.Bool("observe", false, "attach per-layer metrics snapshots to Table I rows (JSON output)")
		intervalN = fset.Int("interval-samples", 0, "interval study Monte Carlo sample count (0 = default)")
		ckpt      = fset.String("checkpoint", "", "persist simulation results to this file after every experiment (JSON mode; atomic rewrite)")
		resume    = fset.String("resume", "", "seed the simulation cache from this checkpoint before running (missing file = cold start; implies -checkpoint)")
		pprofCfg  = fset.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	shard := fabric.BindShardFlags(fset)
	if err := fset.Parse(args); err != nil {
		return err
	}
	lpm.SetWorkers(*workers)
	startPprof(*pprofCfg, stderr)
	stopShard, _, err := shard.Start(ctx, cliutil.NewLogger(stderr, "text"), nil)
	if err != nil {
		return err
	}
	defer stopShard()

	scale := lpm.FullScale()
	if *quick {
		scale = lpm.QuickScale()
	}
	scale.WarmupFast = *warmFast

	if *jsonOut {
		return runJSON(ctx, *experiment, scale, *observe, *intervalN, *ckpt, *resume, stdout, stderr)
	}

	selected := map[string]bool{}
	for _, name := range strings.Split(*experiment, ",") {
		selected[strings.TrimSpace(name)] = true
	}

	p := cliutil.NewPrinter(stdout)
	var failed error
	runExp := func(name string, f func() error) {
		if failed != nil || (!selected["all"] && !selected[name]) {
			return
		}
		p.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			failed = fmt.Errorf("%s: %w", name, err)
			return
		}
		p.Println()
	}

	runExp("fig1", func() error { return fig1(p) })
	runExp("table1", func() error { return table1(p, scale) })
	runExp("casestudy1", func() error { return caseStudy1(p, scale) })
	runExp("fig6", func() error { return fig67(p, scale, true) })
	runExp("fig7", func() error { return fig67(p, scale, false) })
	runExp("fig8", func() error { return fig8(p, scale) })
	runExp("interval", func() error { return intervalStudy(p) })
	runExp("identities", func() error { return identities(p, scale) })
	runExp("timeline", func() error { return timeline(p, scale) })
	if failed != nil {
		return failed
	}
	return p.Err()
}

// runJSON emits the machine-readable report. The text report's fig6 and
// fig7 views share one profiling table, so both keys select the fig67
// experiment here. With a checkpoint path, the experiments run one at a
// time and the memo caches are persisted after each, so a killed run
// resumes without redoing finished experiments' simulations; the merged
// document is identical to a single uncheckpointed run.
func runJSON(ctx context.Context, experiment string, scale lpm.Scale, observe bool, intervalN int, ckpt, resume string, stdout, stderr io.Writer) error {
	var want []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			want = append(want, name)
		}
	}
	for _, name := range strings.Split(experiment, ",") {
		switch name = strings.TrimSpace(name); name {
		case "all":
			want = nil
			seen = nil
		case "fig6", "fig7":
			add("fig67")
		default:
			add(name)
		}
		if seen == nil {
			break
		}
	}
	opts := lpm.ReportOptions{
		Scale:           scale,
		Experiments:     want,
		Observe:         observe,
		IntervalSamples: intervalN,
	}

	ckptPath := ckpt
	if ckptPath == "" {
		ckptPath = resume
	}
	key := fmt.Sprintf("lpmreport|%+v|obs=%v|samples=%d", scale, observe, intervalN)
	if resume != "" {
		if _, err := lpm.LoadMemoCheckpoint(resume, key); err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("resume: %w", err)
			}
			fmt.Fprintf(stderr, "resume: %s not found, starting cold\n", resume)
		}
	}

	var rep *lpm.Report
	var err error
	if ckptPath == "" {
		rep, err = lpm.BuildReportCtx(ctx, opts)
	} else {
		rep, err = buildCheckpointed(ctx, opts, ckptPath, key, stderr)
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if rep.Partial {
		return fmt.Errorf("interrupted: completed %v, aborted %v", rep.Completed, rep.Aborted)
	}
	return nil
}

// buildCheckpointed runs the report one experiment at a time, saving the
// memo caches after each, and merges the per-experiment documents into
// one. Because every payload is a pure function of (scale, options) via
// the memoised simulations, the merged document matches what a single
// BuildReportCtx call would have produced.
func buildCheckpointed(ctx context.Context, opts lpm.ReportOptions, path, key string, stderr io.Writer) (*lpm.Report, error) {
	want := opts.Experiments
	if len(want) == 0 {
		want = lpm.ReportExperiments()
	}
	var rep *lpm.Report
	for i, name := range want {
		one := opts
		one.Experiments = []string{name}
		r, err := lpm.BuildReportCtx(ctx, one)
		if err != nil {
			return nil, err
		}
		if rep == nil {
			rep = r
		} else {
			rep.Experiments = append(rep.Experiments, r.Experiments...)
		}
		if err := lpm.SaveMemoCheckpoint(path, "lpmreport", key); err != nil {
			fmt.Fprintf(stderr, "checkpoint: %v\n", err)
		}
		if r.Partial {
			rep.Partial = true
			rep.Completed = append([]string(nil), want[:i]...)
			rep.Completed = append(rep.Completed, r.Completed...)
			rep.Aborted = append(r.Aborted, want[i+1:]...)
			break
		}
	}
	return rep, nil
}

func fig1(p *cliutil.Printer) error {
	pt := lpm.Fig1()
	ref := lpm.Fig1Reference()
	p.Println("Fig. 1 worked example (paper vs measured):")
	p.Printf("  C-AMAT  %.3f  vs  %.3f\n", ref.CAMAT, pt.CAMAT())
	p.Printf("  AMAT    %.3f  vs  %.3f\n", ref.AMAT, pt.AMAT())
	p.Printf("  C_H     %.3f  vs  %.3f\n", ref.CH, pt.CH())
	p.Printf("  C_M     %.3f  vs  %.3f\n", ref.CM, pt.CM())
	p.Printf("  pAMP    %.3f  vs  %.3f\n", ref.PAMP, pt.PAMP())
	p.Printf("  pMR     %.3f  vs  %.3f\n", ref.PMR, pt.PMR())
	p.Printf("  1/APC = %.3f (Eq. 3 check)\n", 1/pt.APC())
	return p.Err()
}

func table1(p *cliutil.Printer, s lpm.Scale) error {
	p.Println("Table I — LPMRs under configurations with incremental parallelism (410.bwaves-like):")
	p.Printf("%-4s %-48s %-24s %-24s %s\n", "cfg", "point", "paper LPMR1/2/3", "measured LPMR1/2/3", "stall% of CPIexe")
	for _, r := range lpm.Table1(s) {
		p.Printf("%-4s %-48s %4.1f / %4.1f / %4.1f       %5.2f / %5.2f / %5.2f     %5.1f%%\n",
			r.Name, r.Point,
			r.PaperLPMR[0], r.PaperLPMR[1], r.PaperLPMR[2],
			r.M.LPMR1(), r.M.LPMR2(), r.M.LPMR3(),
			100*r.M.MeasuredStall/r.M.CPIexe)
	}
	return p.Err()
}

func caseStudy1(p *cliutil.Printer, s lpm.Scale) error {
	for _, g := range []lpm.Grain{lpm.CoarseGrain, lpm.FineGrain} {
		res := lpm.CaseStudyI(g, s)
		p.Printf("case study I, %s: steps=%d simulations=%d of %d (%.4f%%)\n",
			g, len(res.Algorithm.Steps), res.Evaluations, res.SpaceSize,
			100*float64(res.Evaluations)/float64(res.SpaceSize))
		p.Printf("  final point: %s (cost %.0f)\n", res.Final, res.Final.Cost())
		p.Printf("  final LPMR1=%.3f stall=%.4f (%.2f%% of CPIexe) converged=%v met=%v\n",
			res.Algorithm.Final.LPMR1(), res.Algorithm.Final.MeasuredStall,
			100*res.Algorithm.Final.MeasuredStall/res.Algorithm.Final.CPIexe,
			res.Algorithm.Converged, res.Algorithm.MetTarget)
	}
	return p.Err()
}

func fig67(p *cliutil.Printer, s lpm.Scale, apc1 bool) error {
	res, err := lpm.Fig67(s)
	if err != nil {
		return err
	}
	t := res.Table
	which := "APC1 (Fig. 6: L1 supply rate)"
	data := t.APC1
	if !apc1 {
		which = "APC2 (Fig. 7: L2 demand)"
		data = t.APC2
	}
	p.Printf("%s per private L1 data cache size:\n", which)
	p.Printf("%-16s", "workload")
	for _, sz := range t.Sizes {
		p.Printf(" %7dKB", sz/1024)
	}
	p.Println()
	for _, n := range t.Workloads {
		p.Printf("%-16s", n)
		for i := range t.Sizes {
			p.Printf(" %9.4f", data[n][i])
		}
		p.Println()
	}
	return p.Err()
}

func fig8(p *cliutil.Printer, s lpm.Scale) error {
	rows, err := lpm.Fig8(s)
	if err != nil {
		return err
	}
	p.Println("Fig. 8 — Hsp of scheduling schemes on the NUCA 16-core CMP (paper vs measured):")
	for _, r := range rows {
		p.Printf("  %-12s %.4f  vs  %.4f\n", r.Scheduler, r.PaperHsp, r.Hsp)
	}
	return p.Err()
}

func intervalStudy(p *cliutil.Printer) error {
	p.Println("Interval study — burst patterns perceived and processed timely (paper vs analytic vs simulated):")
	for _, r := range lpm.IntervalStudy(0) {
		p.Printf("  %-16s %.2f  vs  %.4f  vs  %.4f\n", r.Scenario, r.Paper, r.Analytic, r.Simulated)
	}
	return p.Err()
}

func timeline(p *cliutil.Printer, s lpm.Scale) error {
	p.Println("Timeline — windowed LPMR1 over the measurement interval (410.bwaves-like):")
	for _, r := range lpm.TimelineStudy(s) {
		ser := r.M.Timeline
		if ser == nil || len(ser.Windows) == 0 {
			p.Printf("  %-4s (no windows)\n", r.Name)
			continue
		}
		lpmr1 := ser.LPMR1Series()
		lo, hi := lpmr1[0], lpmr1[0]
		for _, v := range lpmr1 {
			lo = min(lo, v)
			hi = max(hi, v)
		}
		p.Printf("  cfg %-4s windows=%-4d width=%-6d LPMR1 min=%.2f max=%.2f (mean %.2f)\n",
			r.Name, len(ser.Windows), ser.Width, lo, hi, r.M.LPMR1())
	}
	return p.Err()
}

func identities(p *cliutil.Printer, s lpm.Scale) error {
	reps, err := lpm.Identities(s)
	if err != nil {
		return err
	}
	p.Println("Model identities on live simulations:")
	for _, r := range reps {
		p.Printf("  %-14s |C-AMAT-1/APC|=%.2g  Eq4 rel.err=%.1f%%  stall model=%.4f measured=%.4f\n",
			r.Workload, r.CAMATvsInvAPC, 100*r.RecursionRelErr, r.StallModel, r.StallMeasured)
	}
	return p.Err()
}
