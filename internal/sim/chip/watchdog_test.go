package chip

import (
	"context"
	"errors"
	"testing"

	"lpm/internal/obs/timeseries"
	"lpm/internal/resilience"
)

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	ch := New(SingleCore("401.bzip2"))
	ch.SetWatchdog(100_000)
	if _, done := ch.Run(5000, 2_000_000); !done {
		t.Fatal("healthy run did not complete")
	}
	if err := ch.Err(); err != nil {
		t.Fatalf("healthy run latched %v", err)
	}
}

// TestWatchdogTripsOnSeededLivelock seeds a genuine no-progress
// condition — a halted core fetches nothing, so no instruction commits
// and no memory request retires — and checks the watchdog converts it
// into a LivelockError with the diagnostic bundle instead of burning
// the full cycle budget.
func TestWatchdogTripsOnSeededLivelock(t *testing.T) {
	ch := New(SingleCore("401.bzip2"))
	ch.EnableTimeseries(timeseries.Config{Width: 256})
	ch.SetWatchdog(2000)
	ch.Core(0).Halt()
	ch.RunCycles(1_000_000)
	err := ch.Err()
	var ll *resilience.LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("Err = %v, want LivelockError", err)
	}
	if ch.Now() >= 1_000_000 {
		t.Fatal("watchdog did not stop the run loop early")
	}
	if ll.Budget != 2000 || ll.Cycle != ch.Now() {
		t.Fatalf("bundle cycle/budget = %d/%d", ll.Cycle, ll.Budget)
	}
	if len(ll.Retired) != 1 {
		t.Fatalf("bundle has %d retired entries", len(ll.Retired))
	}
	if _, ok := ll.Occupancy["dram.queue_depth"]; !ok {
		t.Fatalf("bundle lacks queue occupancies: %v", ll.Occupancy)
	}
	if _, ok := ll.Occupancy["l1.0.mshr_occupancy"]; !ok {
		t.Fatalf("bundle lacks MSHR occupancies: %v", ll.Occupancy)
	}
	if len(ll.Stalls) != 1 {
		t.Fatalf("bundle has %d stall trees, want per-core attribution", len(ll.Stalls))
	}
	if ll.Window == nil {
		t.Fatal("bundle lacks the last timeline window")
	}
	// The error is latched: further run calls are no-ops.
	before := ch.Now()
	ch.RunCycles(1000)
	if ch.Now() != before {
		t.Fatal("run loop advanced past a latched error")
	}
}

func TestWatchdogSurvivesResetCounters(t *testing.T) {
	// ResetCounters zeroes the progress counters; the signature changes,
	// which must read as progress, not as a trip or a stuck baseline.
	ch := New(SingleCore("401.bzip2"))
	ch.SetWatchdog(50_000)
	ch.RunUntilRetired(2000, 1_000_000)
	ch.ResetCounters()
	if _, done := ch.Run(2000, 1_000_000); !done {
		t.Fatal("post-reset run did not complete")
	}
	if err := ch.Err(); err != nil {
		t.Fatalf("reset tripped the watchdog: %v", err)
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	ch := New(SingleCore("401.bzip2"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch.SetContext(ctx)
	ch.RunCycles(100_000)
	if !errors.Is(ch.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", ch.Err())
	}
	// The poll cadence is every 1024 cycles; a pre-cancelled context
	// must stop the chip at the first poll.
	if ch.Now() > 1024 {
		t.Fatalf("ran %d cycles after cancellation", ch.Now())
	}
}
