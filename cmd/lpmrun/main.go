// Command lpmrun simulates one workload on a single-core chip and prints
// the full C-AMAT / LPM report: per-layer analyzer parameters, the three
// LPMRs, η, and modelled vs measured data stall time.
//
// Usage:
//
//	lpmrun -workload 403.gcc -instructions 30000 -l1 32768
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lpm/internal/cliutil"
	"lpm/internal/parallel"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "410.bwaves", "built-in workload profile (see -list)")
		workers  = fs.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		list     = fs.Bool("list", false, "list built-in workloads and exit")
		instr    = fs.Uint64("instructions", 30000, "instructions in the measured window")
		warmup   = fs.Uint64("warmup", 150000, "warm-up instructions discarded before measuring")
		l1Size   = fs.Uint64("l1", 32*chip.KB, "L1 data cache size in bytes")
		l1Ports  = fs.Int("l1ports", 2, "L1 ports")
		l1MSHRs  = fs.Int("mshrs", 8, "L1 MSHR count")
		l2Size   = fs.Uint64("l2", 4*chip.MB, "L2 size in bytes")
		l2Banks  = fs.Int("l2banks", 8, "L2 interleaving (banks)")
		issue    = fs.Int("issue", 4, "pipeline issue width")
		iw       = fs.Int("iw", 32, "instruction window size")
		rob      = fs.Int("rob", 64, "ROB size")
		metrics  = fs.Bool("metrics", false, "print the per-layer metrics snapshot after the report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetWorkers(*workers)

	p := cliutil.NewPrinter(stdout)
	if *list {
		p.Println(strings.Join(trace.ProfileNames(), "\n"))
		return p.Err()
	}
	prof, err := trace.ProfileByName(*workload)
	if err != nil {
		return err
	}

	cfg := chip.SingleCore(*workload)
	cfg.Cores[0].CPU.IssueWidth = *issue
	cfg.Cores[0].CPU.IWSize = *iw
	cfg.Cores[0].CPU.LSQSize = *iw
	cfg.Cores[0].CPU.ROBSize = *rob
	cfg.Cores[0].L1 = chip.DefaultL1("L1D-0", *l1Size)
	cfg.Cores[0].L1.Ports = *l1Ports
	cfg.Cores[0].L1.MSHRs = *l1MSHRs
	cfg.L2 = chip.DefaultL2("L2", *l2Size)
	cfg.L2.Banks = *l2Banks

	gen := trace.NewSynthetic(prof)
	cpiExe := chip.MeasureCPIexe(cfg.Cores[0].CPU, gen, uint64(cfg.Cores[0].L1.HitLatency), *instr)

	ch := chip.New(cfg)
	if *metrics {
		ch.EnableObs()
	}
	budget := (*warmup + *instr) * 600
	ch.RunUntilRetired(*warmup, budget)
	ch.ResetCounters()
	ch.Run(*warmup+*instr, budget)

	r := ch.Snapshot()
	m := ch.Measure(0, cpiExe)

	p.Printf("workload   %s  (fmem=%.3f, footprint=%d KB)\n", *workload, m.Fmem, prof.Footprint/1024)
	p.Printf("core       issue=%d IW=%d ROB=%d   CPIexe=%.3f  IPC=%.3f\n", *issue, *iw, *rob, cpiExe, m.IPC)
	p.Printf("L1         %s\n", r.Cores[0].L1)
	p.Printf("L2         %s\n", r.L2)
	p.Printf("memory     reads=%d writes=%d avgReadLat=%.1f APC3=%.4f rowHit/miss/conf=%d/%d/%d\n",
		r.Mem.Reads, r.Mem.Writes, r.Mem.AvgReadLatency(), r.Mem.APC(),
		r.Mem.RowHits, r.Mem.RowMisses, r.Mem.RowConflicts)
	p.Println()
	p.Printf("LPMR1=%.3f  LPMR2=%.3f  LPMR3=%.3f   eta=%.4f  overlap=%.3f\n",
		m.LPMR1(), m.LPMR2(), m.LPMR3(), m.Eta(), m.OverlapRatio)
	p.Printf("thresholds T1(1%%)=%.3f T1(10%%)=%.3f", m.T1(1), m.T1(10))
	if t2, ok := m.T2(1); ok {
		p.Printf("  T2(1%%)=%.3f", t2)
	}
	p.Println()
	p.Printf("data stall per instruction: model(Eq.12)=%.4f  model(Eq.13)=%.4f  measured=%.4f  (%.1f%% of CPIexe)\n",
		m.StallEq12(), m.StallEq13(), m.MeasuredStall, 100*m.MeasuredStall/cpiExe)

	if *metrics && m.Obs != nil {
		p.Println()
		p.Printf("metrics (snapshot v%d):\n", m.Obs.Version)
		for _, mv := range m.Obs.Metrics {
			switch mv.Kind {
			case "counter":
				p.Printf("  %-24s %d\n", mv.Name, mv.Count)
			case "gauge":
				p.Printf("  %-24s %.4f\n", mv.Name, mv.Value)
			default:
				p.Printf("  %-24s n=%d mean=%.2f p50=%.1f p90=%.1f p99=%.1f\n",
					mv.Name, mv.Hist.Count, mv.Hist.Mean, mv.Hist.P50, mv.Hist.P90, mv.Hist.P99)
			}
		}
	}
	return p.Err()
}
