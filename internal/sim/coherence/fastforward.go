package coherence

// Fast-forward hooks (see chip/fastforward.go). The directory's only
// per-cycle work is forwarding delayed write fetches, so it is
// quiescent while every delayed fetch is still waiting out its
// invalidation latency, and its next event is the earliest expiry.
// Tick accrues no per-cycle counters, so AdvanceCycles is a no-op.

// Quiescent reports whether the next Tick would forward nothing.
func (d *Directory) Quiescent(now uint64) bool {
	for i := range d.delayed {
		if d.delayed[i].at <= now+1 {
			return false
		}
	}
	return true
}

// NextEvent returns the earliest delayed-fetch expiry, or ^uint64(0).
func (d *Directory) NextEvent() uint64 {
	ev := ^uint64(0)
	for i := range d.delayed {
		if d.delayed[i].at < ev {
			ev = d.delayed[i].at
		}
	}
	return ev
}

// AdvanceCycles is a no-op: the directory has no per-cycle accounting.
func (d *Directory) AdvanceCycles(now, n uint64) { _, _ = now, n }
