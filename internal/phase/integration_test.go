package phase_test

import (
	"testing"

	"lpm/internal/phase"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

// TestPhaseDetectionOnSimulatedIntervals drives a two-phase workload
// through the full simulator, measures per-interval signatures with the
// analyzers (exactly what an online LPM deployment would do), and checks
// that the detector recovers the phase structure.
func TestPhaseDetectionOnSimulatedIntervals(t *testing.T) {
	mem := trace.MustProfile("429.mcf")
	cpu := trace.MustProfile("444.namd")
	const dwell = 40000
	gen := trace.NewPhased("2phase", []trace.Profile{mem, cpu},
		[][]float64{{0, 1}, {1, 0}}, dwell, 5)

	cfg := chip.SingleCore("429.mcf")
	cfg.Cores[0].Workload = gen
	ch := chip.New(cfg)

	tr := phase.NewTracker(phase.NewDetector(0.15))
	var truth []int // generator phase at each interval end
	var assigned []int

	// 14 intervals of one dwell each (interval boundaries aligned with
	// phase boundaries, the easy case an online deployment approximates).
	for k := 1; k <= 14; k++ {
		truth = append(truth, gen.Phase())
		// Retired() counts from the last ResetCounters, so each interval
		// targets exactly one dwell.
		ch.RunUntilRetired(dwell, 200_000_000)
		m := ch.Measure(0, 1)
		l1 := ch.Snapshot().Cores[0].L1
		sig := phase.FromLPM(m.Fmem, m.MR1, m.PMR1, l1.CH(), l1.CM(), m.IPC)
		id, _ := tr.Observe(sig)
		assigned = append(assigned, id)
		ch.ResetCounters()
	}

	if tr.Phases() < 2 {
		t.Fatalf("detector found %d phases, want >= 2 (%v)", tr.Phases(), assigned)
	}
	if tr.Phases() > 4 {
		t.Fatalf("detector fragmented into %d phases (%v)", tr.Phases(), assigned)
	}
	// Intervals with the same ground-truth phase must mostly agree, and
	// the two ground-truth phases must not map to a single detected
	// phase.
	agree := 0
	crossSame := 0
	for i := 0; i < len(truth); i++ {
		for j := i + 1; j < len(truth); j++ {
			if truth[i] == truth[j] && assigned[i] == assigned[j] {
				agree++
			}
			if truth[i] != truth[j] && assigned[i] == assigned[j] {
				crossSame++
			}
		}
	}
	if agree == 0 {
		t.Fatalf("no within-phase agreement: truth=%v assigned=%v", truth, assigned)
	}
	if crossSame > agree {
		t.Fatalf("phases not separated: truth=%v assigned=%v", truth, assigned)
	}
	if tr.Changes == 0 {
		t.Fatal("no phase changes detected across alternating dwells")
	}
}
