package ctrl

// The lpm-ctrl/v1 HTTP surface:
//
//	POST /api/v1/runs               submit a RunSpec, returns RunStatus
//	GET  /api/v1/runs               list runs
//	GET  /api/v1/runs/{id}          one run's status
//	POST /api/v1/runs/{id}/cancel   cancel (pending or running)
//	GET  /api/v1/runs/{id}/timeline lpm-timeline/v1 document
//	GET  /api/v1/runs/{id}/metrics  per-run Prometheus text
//	GET  /api/v1/runs/{id}/events   SSE window stream
//	GET  /api/v1/runs/{id}/result   final lpm-report/v2 document
//	GET  /api/v1/fleet              sweep-fabric health (workers, quarantine, stats)
//	GET  /metrics                   fleet-wide Prometheus text
//
// The fleet endpoint renders, in one scrape: the control plane's own
// ctrl.* series (unlabeled), every run's latest obs snapshot labeled
// run/tenant, and — when a sweep fabric is attached — the coordinator's
// fabric.* telemetry labeled component="fabric".

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
)

// NewAPIMux builds the control-plane handler over reg.
func NewAPIMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var spec RunSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, "decode run spec: "+err.Error())
			return
		}
		st, err := reg.Submit(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /api/v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, reg.List())
	})
	mux.HandleFunc("GET /api/v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := reg.Get(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /api/v1/runs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, err := reg.Cancel(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /api/v1/runs/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		live, _, ok := reg.handles(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "no such run")
			return
		}
		TimelineHandler(live)(w, r)
	})
	mux.HandleFunc("GET /api/v1/runs/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		live, _, ok := reg.handles(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "no such run")
			return
		}
		MetricsHandler(live)(w, r)
	})
	mux.HandleFunc("GET /api/v1/runs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		_, hub, ok := reg.handles(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "no such run")
			return
		}
		SSEHandler(hub)(w, r)
	})
	mux.HandleFunc("GET /api/v1/runs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		doc, state, ok := reg.resultDoc(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, "no such run")
			return
		}
		if doc == nil {
			writeErr(w, http.StatusConflict, "run "+string(state)+": no result document")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(doc)
	})
	mux.HandleFunc("GET /api/v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		fs, ok := reg.cfg.Fabric.(FleetSource)
		if !ok {
			writeErr(w, http.StatusNotFound, "no sweep fabric attached")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(fs.FleetStatsJSON())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		seen := make(map[string]bool)
		ctrlSnap, runs := reg.fleetSnapshots()
		if err := ctrlSnap.WritePromLabeled(&buf, "", seen); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, re := range runs {
			labels := `run="` + promLabel(re.id) + `",tenant="` + promLabel(re.tenant) + `"`
			if err := re.snap.WritePromLabeled(&buf, labels, seen); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		if reg.cfg.Fabric != nil {
			if err := reg.cfg.Fabric.ObsSnapshot().WritePromLabeled(&buf, `component="fabric"`, seen); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
	return mux
}

// writeJSON writes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr writes the JSON error envelope.
func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{API: APIVersion, Error: msg})
}

// promLabel escapes a value for a Prometheus label position.
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
