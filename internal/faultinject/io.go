package faultinject

// IO fault primitives for the chaos tests: writers that fail or
// short-write at a byte offset, and deterministic corruption of encoded
// artifacts (checkpoints, reports) so decoder hardening is exercised
// with realistic damage rather than random fuzz alone.

import (
	"fmt"
	"io"
)

// FailingWriter wraps W and fails once FailAfter bytes have been
// written: the write that crosses the boundary is truncated to the
// remaining quota (a short write) and returns Err — the shape a full
// disk or a killed pipe produces.
type FailingWriter struct {
	W io.Writer
	// FailAfter is the byte quota before the injected failure.
	FailAfter int64
	// Err is returned from the failing write; nil defaults to an
	// ErrInjected-wrapped error.
	Err error

	written int64
}

// Write implements io.Writer.
func (w *FailingWriter) Write(p []byte) (int, error) {
	remaining := w.FailAfter - w.written
	if remaining >= int64(len(p)) {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	err := w.Err
	if err == nil {
		err = fmt.Errorf("%w: write failed after %d bytes", ErrInjected, w.FailAfter)
	}
	if remaining <= 0 {
		return 0, err
	}
	n, werr := w.W.Write(p[:remaining])
	w.written += int64(n)
	if werr != nil {
		return n, werr
	}
	return n, err
}

// FlipBit returns a copy of data with exactly one bit flipped, chosen
// deterministically from seed. Empty input is returned unchanged.
func FlipBit(data []byte, seed int64) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	p := NewPlan(seed)
	bit := p.next64() % uint64(len(out)*8)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// Truncate returns the first n bytes of data (a copy); n past the end
// returns the whole input.
func Truncate(data []byte, n int) []byte {
	if n > len(data) {
		n = len(data)
	}
	if n < 0 {
		n = 0
	}
	return append([]byte(nil), data[:n]...)
}
