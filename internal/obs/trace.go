package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// TraceSchema versions the event-trace JSON output; it is embedded in
// the Chrome-trace document's otherData and in the JSONL header line.
const TraceSchema = "lpm-trace/v1"

// defaultEventLimit bounds a tracer's buffered events when the caller
// does not set Limit; past it events are dropped (and counted), keeping
// long replays from exhausting memory.
const defaultEventLimit = 1 << 20

// Event is one memory-request lifecycle span in Chrome trace format
// ("X" complete events). Cycles map to microseconds in the viewer, so
// one timeline unit is one simulated cycle.
type Event struct {
	// Name is the event kind: "hit", "miss", "read" or "write".
	Name string `json:"name"`
	// Cat is the emitting layer (the component's configured name).
	Cat string `json:"cat"`
	// Ph is the Chrome trace phase, always "X" (complete event).
	Ph string `json:"ph"`
	// Ts is the start cycle, Dur the span length in cycles.
	Ts  uint64 `json:"ts"`
	Dur uint64 `json:"dur"`
	// Pid is always 0 (one chip); Tid is the requestor (core index for
	// L1s, upstream cache SrcID below).
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// Args carries the accessed address.
	Args EventArgs `json:"args"`
}

// EventArgs is the per-event payload.
type EventArgs struct {
	// Addr is the byte address (block-aligned below the L1).
	Addr uint64 `json:"addr"`
}

// Tracer buffers memory-request lifecycle events. The nil *Tracer is
// valid and ignores every Emit — components hold a nil tracer unless one
// is attached, so tracing costs one branch per completion when off.
// Create with NewTracer; a Tracer is owned by a single simulation.
type Tracer struct {
	// Limit bounds buffered events; 0 means defaultEventLimit. Events
	// past the limit are dropped and counted.
	Limit int

	events  []Event
	dropped uint64
}

// NewTracer returns an empty tracer with the default event limit.
func NewTracer() *Tracer { return &Tracer{} }

// Emit records one completed span. Nil tracers ignore the call.
func (t *Tracer) Emit(layer, name string, src int, start, end, addr uint64) {
	if t == nil {
		return
	}
	limit := t.Limit
	if limit == 0 {
		limit = defaultEventLimit
	}
	if len(t.events) >= limit {
		t.dropped++
		return
	}
	dur := uint64(0)
	if end > start {
		dur = end - start
	}
	t.events = append(t.events, Event{
		Name: name, Cat: layer, Ph: "X",
		Ts: start, Dur: dur, Tid: src,
		Args: EventArgs{Addr: addr},
	})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns the number of events discarded past Limit.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the buffered events (shared slice; callers must not
// mutate).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// chromeDoc is the Chrome trace file shape ("JSON object format").
type chromeDoc struct {
	TraceEvents     []Event           `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// WriteChromeTrace writes the buffered events as a Chrome trace JSON
// document loadable by chrome://tracing and Perfetto. Timestamps are
// simulated cycles (rendered as microseconds by the viewer).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	doc := chromeDoc{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"schema": TraceSchema, "timeUnit": "cycle"},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// jsonlHeader is the first line of a JSONL trace stream.
type jsonlHeader struct {
	Schema string `json:"schema"`
	Events int    `json:"events"`
	// Dropped counts events lost to the buffer limit.
	Dropped uint64 `json:"dropped"`
}

// WriteJSONL writes a schema header line followed by one event per
// line — the streaming-friendly form of the same data.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Schema: TraceSchema, Events: t.Len(), Dropped: t.Dropped()}); err != nil {
		return err
	}
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
