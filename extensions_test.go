package lpm

import (
	"testing"
)

func TestExtensionsSMTThroughPublicAPI(t *testing.T) {
	g1, err := NewWorkload("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewWorkload("444.namd")
	if err != nil {
		t.Fatal(err)
	}
	cfg := CPUConfig{Name: "smt", IssueWidth: 4, ROBSize: 48, IWSize: 48, LSQSize: 24}
	// Drive against a single cache so the public path compiles end to end.
	chipCfg := SingleCore("429.mcf")
	chipCfg.Cores[0].Workload = g1
	ch := NewChip(chipCfg)
	smt := NewSMT(cfg, []Workload{WithOffset(g1, 0), WithOffset(g2, 1<<33)}, ch.L1(0))
	for cy := uint64(1); cy <= 50000 && smt.Retired() < 5000; cy++ {
		smt.Tick(cy)
		ch.L1(0).Tick(cy)
		ch.L2().Tick(cy)
		ch.Mem().Tick(cy)
	}
	if smt.Retired() < 5000 {
		t.Fatalf("retired %d", smt.Retired())
	}
	if smt.ThreadStats(0).Instructions == 0 || smt.ThreadStats(1).Instructions == 0 {
		t.Fatal("a thread starved")
	}
}

func TestExtensionsCoherentNoCChip(t *testing.T) {
	gens := make([]Workload, 16)
	for i, name := range []string{"456.hmmer", "444.namd"} {
		g, err := NewWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		gens[i] = WithSharedRegion(g, GlobalBase, 8192, 0.2, uint64(i+1))
	}
	cfg := NUCA16(gens)
	n := DefaultNoC(16)
	cfg.NoC = &n
	cfg.Coherent = true
	cfg.CoherenceInvalLatency = 8
	ch := NewChip(cfg)
	ch.RunCycles(40000)
	if ch.Router() == nil || ch.Directory() == nil {
		t.Fatal("extensions not wired")
	}
	if ch.Router().Stats().Requests == 0 {
		t.Fatal("NoC idle")
	}
	if ch.Directory().Stats().ReadFetches == 0 {
		t.Fatal("directory idle")
	}
}

func TestExtensionsPhaseAPI(t *testing.T) {
	tr := NewPhaseTracker(NewPhaseDetector(0.1))
	s1 := PhaseSignatureFromLPM(0.4, 0.3, 0.2, 1.5, 3, 0.3)
	s2 := PhaseSignatureFromLPM(0.2, 0.01, 0.001, 2.5, 1, 2.5)
	tr.Observe(s1)
	if _, changed := tr.Observe(s2); !changed {
		t.Fatal("change not detected")
	}
	if tr.Phases() != 2 {
		t.Fatalf("phases = %d", tr.Phases())
	}
}

func TestExtensionsSchedulingAPI(t *testing.T) {
	names := []string{"401.bzip2", "403.gcc", "429.mcf", "433.milc"}
	sizes := []uint64{4096, 16384, 32768, 65536}
	tbl, err := BuildSchedProfileTable(names, sizes, SchedProfileOptionsQuick())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluateScheduler(NUCASAScheduler{Table: tbl, TolFrac: 0.1}, names, sizes,
		SchedEvalOptions{WindowCycles: 30000, WarmupCycles: 15000})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Hsp <= 0 {
		t.Fatalf("Hsp = %v", ev.Hsp)
	}
	// PIE through the facade too.
	ev2, err := EvaluateScheduler(PIEScheduler{Table: tbl}, names, sizes,
		SchedEvalOptions{WindowCycles: 30000, WarmupCycles: 15000, AloneIPC: ev.IPCAlone})
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Hsp <= 0 {
		t.Fatal("PIE evaluation failed")
	}
}
