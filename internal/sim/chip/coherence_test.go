package chip

import (
	"testing"

	"lpm/internal/trace"
)

// sharingConfig builds a 16-core chip where the first n cores run a
// store-heavy workload with a true shared region.
func sharingConfig(n int, coherent bool, sharedFrac float64) Config {
	gens := make([]trace.Generator, 16)
	for i := 0; i < n; i++ {
		p := trace.MustProfile("456.hmmer") // store-heavy, cache-friendly
		p.Seed = uint64(i + 1)
		// The shared region lives in the global address space, which the
		// chip's per-core offsets leave untouched.
		gens[i] = trace.WithSharedRegion(trace.NewSynthetic(p),
			trace.GlobalBase, 8*KB, sharedFrac, uint64(i+1))
	}
	cfg := NUCA16(gens)
	cfg.Coherent = coherent
	cfg.CoherenceInvalLatency = 8
	return cfg
}

func TestCoherentChipRunsAndDrains(t *testing.T) {
	ch := New(sharingConfig(4, true, 0.2))
	if ch.Directory() == nil {
		t.Fatal("directory missing")
	}
	ch.RunCycles(60000)
	st := ch.Directory().Stats()
	if st.ReadFetches == 0 || st.WriteFetches == 0 {
		t.Fatalf("protocol idle: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Fatal("no invalidations despite a shared store-heavy region")
	}
}

func TestCoherenceTrafficCostsPerformance(t *testing.T) {
	// The same shared-store workload must retire less work under the
	// protocol (invalidation misses + flushes) than with coherence
	// unsoundly disabled.
	run := func(coherent bool) uint64 {
		ch := New(sharingConfig(4, coherent, 0.3))
		ch.RunCycles(80000)
		var total uint64
		for i := 0; i < 4; i++ {
			total += ch.Snapshot().Cores[i].CPU.Instructions
		}
		return total
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("coherence was free: %d vs %d instructions", with, without)
	}
}

func TestNoSharingMeansNoInvalidations(t *testing.T) {
	// Disjoint address spaces: the protocol must stay quiet (reads
	// registered, nothing killed).
	ch := New(sharingConfig(4, true, 0))
	ch.RunCycles(50000)
	st := ch.Directory().Stats()
	if st.Invalidations != 0 || st.DirtyForwards != 0 {
		t.Fatalf("phantom coherence traffic: %+v", st)
	}
}

func TestSharedRegionWrapperRedirects(t *testing.T) {
	p := trace.MustProfile("456.hmmer")
	g := trace.WithSharedRegion(trace.NewSynthetic(p), 1<<40, 4096, 0.5, 7)
	inRegion, mem := 0, 0
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if !in.Kind.IsMem() {
			continue
		}
		mem++
		if in.Addr >= 1<<40 && in.Addr < 1<<40+4096 {
			inRegion++
		}
	}
	frac := float64(inRegion) / float64(mem)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("shared fraction %.3f, want ~0.5", frac)
	}
	// Reset reproduces the stream.
	g.Reset()
	first := g.Next()
	g.Reset()
	if second := g.Next(); second != first {
		t.Fatal("reset not reproducible")
	}
	// Degenerate parameters return the generator unchanged.
	base := trace.NewSynthetic(p)
	if trace.WithSharedRegion(base, 0, 0, 0.5, 1) != trace.Generator(base) {
		t.Fatal("zero-size region should be a no-op")
	}
}
