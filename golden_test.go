package lpm

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lpm/internal/cliutil"
)

// Golden-file regression tests: the experiment harnesses are fully
// deterministic (content-keyed memoisation, fixed Monte Carlo seed), so
// their QuickScale outputs are pinned byte-for-byte as indented JSON
// under testdata/golden/. Any intentional model or simulator change
// regenerates them with
//
//	go test -run Golden -update ./...

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenJSON marshals v as indented JSON and compares it to (or, with
// -update, rewrites) testdata/golden/<name>.
func goldenJSON(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal %s: %v", name, err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := cliutil.AtomicWriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file %s\nfirst divergence near line %d\nrerun with -update if the change is intentional",
			name, path, firstDiffLine(got, want))
	}
}

// firstDiffLine reports the 1-based line of the first differing byte.
func firstDiffLine(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return bytes.Count(a[:i], []byte("\n")) + 1
}

func TestGoldenTable1(t *testing.T) {
	goldenJSON(t, "table1_quick.json", Table1(QuickScale()))
}

func TestGoldenFig67(t *testing.T) {
	res, err := Fig67(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	goldenJSON(t, "fig67_quick.json", res.Table)
}

func TestGoldenIntervalStudy(t *testing.T) {
	// A reduced sample count keeps the Monte Carlo run fast; the fixed
	// seed makes it reproducible at any count.
	goldenJSON(t, "interval_50k.json", IntervalStudy(50000))
}

// TestGoldenReport pins the lpm-report/v2 document shape itself: schema
// string, experiment envelope, and field names. It uses the two cheap
// experiments so the test exercises BuildReport end to end without
// re-running the simulations pinned above.
func TestGoldenReport(t *testing.T) {
	rep, err := BuildReport(ReportOptions{
		Scale:           QuickScale(),
		Experiments:     []string{"fig1", "interval"},
		IntervalSamples: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	goldenJSON(t, "report_fig1_interval.json", rep)
}
