package chip

// Event-driven fast-forward: the chip's cycle loop is a lockstep
// stepper, but most cycles in a memory-bound interval are quiescent —
// every component would tick without changing state, merely re-walking
// unchanged queues and accruing per-cycle counters. Each component
// therefore exposes three hooks (Quiescent, NextEvent, AdvanceCycles);
// when every layer is quiescent the chip jumps straight to the cycle
// before the earliest self-scheduled event and accrues the skipped
// cycles' accounting in closed form. The jump is exact, not
// approximate: every observable counter — stats, C-AMAT analyzer
// classifications, stall attribution, occupancy histograms, watchdog
// and context-poll timing — is bit-identical to the stepped run, which
// the equivalence suite in fastforward_test.go enforces.

// component is one schedulable element of the chip: it ticks in
// lockstep, and it cooperates with the fast-forward protocol.
type component interface {
	// Tick advances the component one cycle.
	Tick(cycle uint64)
	// Quiescent reports whether Tick at now+1 would change no state
	// beyond self-scheduled events exposed via NextEvent.
	Quiescent(now uint64) bool
	// NextEvent returns the earliest future cycle at which the
	// component's state changes on its own, or ^uint64(0) for none.
	NextEvent() uint64
	// AdvanceCycles accrues cycles now+1 .. now+n in bulk,
	// reproducing n quiescent Ticks bit-for-bit. Callers guarantee
	// Quiescent(now) and that no event fires at or before now+n.
	AdvanceCycles(now, n uint64)
}

// noEvent is the NextEvent value meaning "no self-scheduled event".
const noEvent = ^uint64(0)

// buildSched precomputes the flat tick schedule once at construction:
// the components in hierarchy order (cores, L1s, directory, NoC, L2,
// L3, DRAM) with idle core slots dropped, so the hot loop iterates one
// dense slice with no nil checks and no per-cycle allocation.
func (c *Chip) buildSched() {
	c.sched = c.sched[:0]
	for _, core := range c.cores {
		if core != nil {
			c.sched = append(c.sched, core)
		}
	}
	for _, l1 := range c.l1s {
		c.sched = append(c.sched, l1)
	}
	if c.dir != nil {
		c.sched = append(c.sched, c.dir)
	}
	if c.router != nil {
		c.sched = append(c.sched, c.router)
	}
	c.sched = append(c.sched, c.l2)
	if c.l3 != nil {
		c.sched = append(c.sched, c.l3)
	}
	c.sched = append(c.sched, c.mem)
}

// SetFastForward enables or disables quiescent-cycle fast-forward.
// It is on by default — results are bit-identical either way — and
// exists so the equivalence suite and benchmarks can pin the naive
// stepper as the reference.
func (c *Chip) SetFastForward(on bool) { c.ffOff = !on }

// tryFastForward runs inside every run loop after the loop's exit
// predicates and before the next Tick: if the whole chip is quiescent
// it advances time in one jump to the earliest of the next component
// event, the next sampler window close, the next context poll, the
// next watchdog check, and the loop's own limit. Each cap is exclusive
// (the jump stops the cycle before), so the event itself is handled by
// an ordinary stepped Tick and observable behaviour cannot diverge
// from the stepped run. Jumping before the predicates would be wrong —
// they read state (Busy, Retired) that a jump deliberately freezes, so
// the loop must get its chance to exit at exactly the stepped cycle.
func (c *Chip) tryFastForward(limit uint64) {
	if c.ffOff || c.runErr != nil {
		return
	}
	now := c.now
	target := limit
	for _, comp := range c.sched {
		if !comp.Quiescent(now) {
			return
		}
		if e := comp.NextEvent(); e != noEvent {
			if e <= now+1 {
				return // due next cycle (or overdue): step it
			}
			if e-1 < target {
				target = e - 1
			}
		}
	}
	if c.ts != nil {
		// Never jump across a window close: the collector snapshots
		// live counters and must run on its exact stepped cycle.
		head := c.ts.s.Width() - c.ts.s.CyclesIntoWindow()
		if now+head-1 < target {
			target = now + head - 1
		}
	}
	if c.ctx != nil {
		// Never jump across a cancellation poll (every 1024 cycles).
		if poll := now | 1023; poll < target {
			target = poll
		}
	}
	if c.wdBudget > 0 {
		// Never jump across a watchdog check. Once the check cadence
		// has collapsed to every-cycle (no progress for over a quarter
		// budget), fast-forward stands down so the trip cycle matches
		// the stepped run exactly.
		next := c.wdLastCycle + c.wdBudget/4
		if next <= now {
			return
		}
		if next-1 < target {
			target = next - 1
		}
	}
	if target <= now {
		return
	}
	n := target - now

	// Bulk-accrue the jumped cycles. Components first (cores stamp
	// their cycle class), then the sampler-side accounting that the
	// stepped loop performs after all components tick: per-core stall
	// attribution and occupancy sums, all constant across a quiescent
	// run, then the sampler's intra-window cycle count.
	for _, comp := range c.sched {
		comp.AdvanceCycles(now, n)
	}
	if c.ts != nil {
		ts := c.ts
		for i, core := range c.cores {
			ts.stall[i].ChargeN(c.classifyCoreCycle(core, i), n)
			if core != nil {
				ts.robOccSum[i] += uint64(core.ROBOccupancy()) * n
			}
			ts.l1OccSum[i] += uint64(c.l1s[i].OutstandingMisses()) * n
		}
		ts.l2OccSum += uint64(c.l2.OutstandingMisses()) * n
		if c.l3 != nil {
			ts.l3OccSum += uint64(c.l3.OutstandingMisses()) * n
		}
		ts.dramQSum += uint64(c.mem.QueuedRequests()) * n
		ts.s.AdvanceCycles(n)
	}
	c.now = target
}
