package timeseries

import (
	"strings"
	"testing"
)

func TestSeriesWritePromText(t *testing.T) {
	var ser Series
	var b strings.Builder
	if err := (&ser).WritePromText(&b); err != nil || b.Len() != 0 {
		t.Fatalf("empty series wrote %q, err %v", b.String(), err)
	}
	var nilSer *Series
	if err := nilSer.WritePromText(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil series wrote %q, err %v", b.String(), err)
	}

	w := Window{Index: 3, Start: 300, End: 400}
	w.Derived.IPC = 1.5
	w.Derived.LPMR1 = 2.25
	w.Stall = []StallTree{{Busy: 60, L1Miss: 30, DRAMQueue: 10}}
	ser.Windows = append(ser.Windows, w)
	if err := (&ser).WritePromText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lpm_timeline_lpmr1 gauge\nlpm_timeline_lpmr1 2.25\n",
		"lpm_timeline_ipc 1.5\n",
		"lpm_timeline_window_index 3\n",
		"lpm_timeline_stall_cycles{bucket=\"busy\"} 60\n",
		"lpm_timeline_stall_cycles{bucket=\"dram_queue\"} 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
}
