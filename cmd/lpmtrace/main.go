// Command lpmtrace records, inspects and replays instruction traces in
// the repository's binary trace format.
//
// Usage:
//
//	lpmtrace -record gcc.trc -workload 403.gcc -n 100000   # record
//	lpmtrace -stat gcc.trc                                 # inspect
//	lpmtrace -replay gcc.trc -instructions 50000           # simulate
package main

import (
	"flag"
	"fmt"
	"os"

	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

func main() {
	var (
		record   = flag.String("record", "", "record a trace to this file")
		stat     = flag.String("stat", "", "print statistics of this trace file")
		replay   = flag.String("replay", "", "simulate this trace file on a single-core chip")
		workload = flag.String("workload", "403.gcc", "built-in workload to record")
		n        = flag.Int("n", 100000, "instructions to record")
		instr    = flag.Uint64("instructions", 50000, "instructions to simulate on replay")
	)
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(*record, *workload, *n); err != nil {
			fail(err)
		}
	case *stat != "":
		if err := doStat(*stat); err != nil {
			fail(err)
		}
	case *replay != "":
		if err := doReplay(*replay, *instr); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func doRecord(path, workload string, n int) error {
	prof, err := trace.ProfileByName(workload)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Record(f, trace.NewSynthetic(prof), n); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s (%d bytes, %.2f B/instr)\n",
		n, workload, path, info.Size(), float64(info.Size())/float64(n))
	return nil
}

func doStat(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := trace.NewReplayer(f)
	if err != nil {
		return err
	}
	var loads, stores, compute, deps uint64
	for i := 0; i < rp.Len(); i++ {
		in := rp.Next()
		switch in.Kind {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		default:
			compute++
		}
		if in.Dep != 0 {
			deps++
		}
	}
	total := uint64(rp.Len())
	fmt.Printf("trace      %s (%q)\n", path, rp.Name())
	fmt.Printf("instrs     %d\n", total)
	fmt.Printf("loads      %d (%.1f%%)\n", loads, 100*float64(loads)/float64(total))
	fmt.Printf("stores     %d (%.1f%%)\n", stores, 100*float64(stores)/float64(total))
	fmt.Printf("compute    %d (%.1f%%)\n", compute, 100*float64(compute)/float64(total))
	fmt.Printf("dependent  %d (%.1f%%)\n", deps, 100*float64(deps)/float64(total))
	return nil
}

func doReplay(path string, instr uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := trace.NewReplayer(f)
	if err != nil {
		return err
	}
	cfg := chip.SingleCore("403.gcc") // geometry only; the workload is the trace
	cfg.Name = "replay-" + rp.Name()
	cfg.Cores[0].Workload = rp
	ch := chip.New(cfg)
	cycles, done := ch.Run(instr, instr*2000)
	r := ch.Snapshot()
	fmt.Printf("replayed %q: %d instructions in %d cycles (IPC %.3f, complete=%v)\n",
		rp.Name(), r.Cores[0].CPU.Instructions, cycles, r.Cores[0].CPU.IPC(), done)
	fmt.Printf("L1: %s\n", r.Cores[0].L1)
	fmt.Printf("L2: %s\n", r.L2)
	return nil
}
