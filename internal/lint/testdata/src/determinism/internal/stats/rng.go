// Package stats is a miniature of the real stats package: just enough
// surface for the fixture's sanctioned-RNG case.
package stats

// RNG is a tiny xorshift generator.
type RNG struct{ s uint64 }

// NewRNG seeds a generator; the stream is fully determined by seed.
func NewRNG(seed uint64) *RNG { return &RNG{s: seed | 1} }

// Float64 returns the next value in [0, 1).
func (r *RNG) Float64() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s%1000) / 1000
}
