package obs

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestNilRegistryHandsOutNilHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", 0, 10, 4)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned non-nil handles: %v %v %v", c, g, h)
	}
	// Every handle method must be a safe no-op on nil.
	c.Inc()
	c.Add(3)
	c.Set(9)
	g.Set(1.5)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("nil handles reported non-zero values")
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", s)
	}
	r.ResetCounters() // must not panic
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("l1.hits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Set(7)
	if c.Value() != 7 {
		t.Fatalf("counter after Set = %d, want 7", c.Value())
	}
	g := r.Gauge("l1.miss_rate")
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("gauge = %v, want 0.25", g.Value())
	}
	h := r.Histogram("l1.occ", 0, 8, 8)
	for i := 0; i < 8; i++ {
		h.Observe(float64(i))
	}

	s := r.Snapshot()
	if s.Version != SnapshotVersion {
		t.Fatalf("snapshot version = %d, want %d", s.Version, SnapshotVersion)
	}
	if len(s.Metrics) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(s.Metrics))
	}
	if got := s.Counter("l1.hits"); got != 7 {
		t.Fatalf("snapshot counter = %d, want 7", got)
	}
	mv, ok := s.Metric("l1.occ")
	if !ok || mv.Hist == nil {
		t.Fatalf("histogram missing from snapshot: %+v ok=%v", mv, ok)
	}
	if mv.Hist.Count != 8 || mv.Hist.Mean != 3.5 {
		t.Fatalf("hist count/mean = %d/%v, want 8/3.5", mv.Hist.Count, mv.Hist.Mean)
	}
	if _, ok := s.Metric("absent"); ok {
		t.Fatalf("lookup of absent metric succeeded")
	}
}

func TestRegistryReusesAndPanicsOnKindClash(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup")
	b := r.Counter("dup")
	if a != b {
		t.Fatalf("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind clash did not panic")
		}
	}()
	r.Gauge("dup")
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Set(1)
	r.Counter("a.first").Set(2)
	r.Gauge("m.mid").Set(3)
	s := r.Snapshot()
	names := []string{s.Metrics[0].Name, s.Metrics[1].Name, s.Metrics[2].Name}
	want := []string{"a.first", "m.mid", "z.last"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}
	// Two snapshots of the same state must be deeply equal — the
	// property the parallel determinism tests rely on.
	if !reflect.DeepEqual(s, r.Snapshot()) {
		t.Fatalf("repeated snapshots differ")
	}
}

func TestResetCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Set(10)
	g := r.Gauge("g")
	g.Set(1.5)
	h := r.Histogram("h", 0, 4, 4)
	h.Observe(1)
	r.ResetCounters()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("reset left counter=%d gauge=%v", c.Value(), g.Value())
	}
	s := r.Snapshot()
	if mv, _ := s.Metric("h"); mv.Hist.Count != 0 {
		t.Fatalf("reset left histogram count %d", mv.Hist.Count)
	}
	// Handles stay live after reset.
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("counter dead after reset")
	}
	h.Observe(2)
	if mv, _ := r.Snapshot().Metric("h"); mv.Hist.Count != 1 {
		t.Fatalf("histogram dead after reset")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Set(42)
	r.Gauge("b").Set(0.5)
	r.Histogram("c", 0, 10, 5).Observe(3)
	s := r.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*s, back) {
		t.Fatalf("round trip changed snapshot:\n%+v\n%+v", *s, back)
	}
}
