package trace

import (
	"lpm/internal/stats"
)

// Synthetic generates a deterministic instruction stream from a Profile.
// It implements Generator. Create with NewSynthetic.
type Synthetic struct {
	prof Profile
	rng  *stats.RNG

	// Samplers precomputed from the profile's constants (NewSynthetic),
	// so the per-instruction path does no log/pow over fixed parameters.
	// Each is stream-identical to the direct RNG call it replaces.
	execLatG stats.GeomSampler // Geometric(1/ExecLat)
	depDistG stats.GeomSampler // Geometric(1/DepDist)
	hotZipf  stats.ZipfSampler // Zipf(hot blocks, 0.6)
	hotBlks  int

	idx        uint64 // dynamic instruction index
	seqCursor  uint64 // sequential sweep position
	lastLoadAt uint64 // index of the most recent load (for pointer chasing)
	haveLoad   bool
	phaseLeft  int  // instructions left in the current burst/gap phase
	inBurst    bool // current phase is a memory burst
}

// NewSynthetic returns a generator for the profile. It panics if the
// profile fails validation, since profiles are program constants.
func NewSynthetic(p Profile) *Synthetic {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.Stride == 0 {
		p.Stride = 8
	}
	g := &Synthetic{prof: p}
	if p.ExecLat > 1 {
		g.execLatG = stats.NewGeomSampler(1 / p.ExecLat)
	}
	if p.DepDist > 0 {
		g.depDistG = stats.NewGeomSampler(1 / p.DepDist)
	}
	if p.HotBytes > 0 {
		g.hotBlks = int(p.HotBytes / 64)
		if g.hotBlks < 1 {
			g.hotBlks = 1
		}
		g.hotZipf = stats.NewZipfSampler(g.hotBlks, 0.6)
	}
	g.Reset()
	return g
}

// Name implements Generator.
func (g *Synthetic) Name() string { return g.prof.Name }

// Profile returns a copy of the generator's profile.
func (g *Synthetic) Profile() Profile { return g.prof }

// Reset implements Generator.
func (g *Synthetic) Reset() {
	g.rng = stats.NewRNG(g.prof.Seed ^ 0x15ecc0de ^ hashName(g.prof.Name))
	g.idx = 0
	g.seqCursor = 0
	g.lastLoadAt = 0
	g.haveLoad = false
	g.inBurst = true
	g.phaseLeft = g.prof.BurstLen
}

// hashName folds a workload name into a seed component so that two
// profiles that differ only in name still produce distinct streams.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// memProbability returns the probability that the next instruction is a
// memory access, accounting for burst phases.
func (g *Synthetic) memProbability() float64 {
	p := g.prof
	if p.BurstLen == 0 || p.GapLen == 0 {
		return p.MemFrac
	}
	if g.phaseLeft <= 0 {
		g.inBurst = !g.inBurst
		if g.inBurst {
			g.phaseLeft = p.BurstLen
		} else {
			g.phaseLeft = p.GapLen
		}
	}
	g.phaseLeft--
	if g.inBurst {
		// Boost memory intensity during the burst; the overall average
		// stays near MemFrac because gaps are compute-only.
		boosted := p.MemFrac * float64(p.BurstLen+p.GapLen) / float64(p.BurstLen)
		if boosted > 0.95 {
			boosted = 0.95
		}
		return boosted
	}
	return 0
}

// Next implements Generator.
func (g *Synthetic) Next() Instr {
	p := g.prof
	defer func() { g.idx++ }()

	if !g.rng.Bool(g.memProbability()) {
		return g.computeInstr()
	}

	in := Instr{Kind: Load, Lat: 1}
	if g.rng.Bool(p.StoreFrac) {
		in.Kind = Store
	}
	in.Addr = g.nextAddr()

	// Pointer chasing: a load whose address depends on the previous load.
	if in.Kind == Load && g.haveLoad && g.rng.Bool(p.ChaseFrac) {
		dist := g.idx - g.lastLoadAt
		if dist > 0 {
			in.Dep = clampDep(dist)
		}
	}
	if in.Kind == Load {
		g.lastLoadAt = g.idx
		g.haveLoad = true
	}
	return in
}

// computeInstr emits a non-memory instruction with a plausible dependency
// distance and latency.
func (g *Synthetic) computeInstr() Instr {
	p := g.prof
	in := Instr{Kind: Compute, Lat: 1}
	if p.ExecLat > 1 {
		// Latency is 1 + geometric tail with the configured mean.
		extra := g.execLatG.Sample(g.rng)
		if extra > 30 {
			extra = 30
		}
		in.Lat = uint8(1 + extra)
	}
	if p.DepDist > 0 && g.idx > 0 {
		// Dependency distance ~ 1 + geometric with mean DepDist.
		d := uint64(1 + g.depDistG.Sample(g.rng))
		if d > g.idx {
			d = g.idx
		}
		in.Dep = clampDep(d)
	}
	return in
}

// nextAddr draws the next memory address per the profile's locality mix.
func (g *Synthetic) nextAddr() uint64 {
	p := g.prof
	if g.rng.Bool(p.SeqFrac) {
		a := g.seqCursor
		g.seqCursor = (g.seqCursor + p.Stride) % p.Footprint
		return a
	}
	if p.HotBytes > 0 && g.rng.Bool(p.HotFrac) {
		// Hot region with mild Zipf skew over 64-byte blocks: hot enough
		// to reward capacity that covers the region, flat enough that a
		// fraction of the region is not a substitute for all of it.
		b := g.hotZipf.Sample(g.rng)
		return uint64(b)*64 + g.rng.Uint64n(64)&^0x7
	}
	// Cold uniform access over the whole footprint, 8-byte aligned.
	return g.rng.Uint64n(p.Footprint) &^ 0x7
}

func clampDep(d uint64) uint32 {
	const max = 1 << 30
	if d > max {
		return max
	}
	return uint32(d)
}
