package analyzer

import "fmt"

// Params is the raw counter snapshot of one layer, plus derived C-AMAT
// parameters. All derived methods guard empty denominators by returning 0,
// so a layer that saw no traffic reports zeros rather than NaN.
type Params struct {
	// Accesses counts accesses started; Completed counts accesses that
	// finished. They differ only by the in-flight population.
	Accesses  uint64
	Completed uint64
	// Misses counts completed accesses that missed; PureMisses the subset
	// that experienced at least one pure-miss cycle.
	Misses     uint64
	PureMisses uint64
	// Cycles is total ticks observed; ActiveCycles the memory-active
	// subset (>= 1 access in hit or miss phase).
	Cycles       uint64
	ActiveCycles uint64
	// HitActiveCycles have >= 1 access in hit phase; HitAccessCycles is
	// the sum over those cycles of the hit-phase population.
	HitActiveCycles uint64
	HitAccessCycles uint64
	// MissActiveCycles have >= 1 outstanding miss; MissAccessCycles sums
	// the outstanding-miss population over them.
	MissActiveCycles uint64
	MissAccessCycles uint64
	// PureCycles have >= 1 outstanding miss and no hit activity;
	// PureAccessCycles sums the outstanding-miss population over them.
	PureCycles       uint64
	PureAccessCycles uint64
	// MissPenaltySum accumulates, per completed miss, the cycles between
	// the end of its hit phase and its fill (the per-access miss penalty).
	MissPenaltySum uint64
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// H is the average hit-operation time in cycles (the paper's H).
func (p Params) H() float64 { return ratio(p.HitAccessCycles, p.Accesses) }

// CH is the average hit concurrency over hit-active cycles (C_H).
func (p Params) CH() float64 { return ratio(p.HitAccessCycles, p.HitActiveCycles) }

// CM is the average pure-miss concurrency over pure-miss cycles (C_M).
func (p Params) CM() float64 { return ratio(p.PureAccessCycles, p.PureCycles) }

// Cm is the average conventional miss concurrency over miss-active cycles
// (C_m).
func (p Params) Cm() float64 { return ratio(p.MissAccessCycles, p.MissActiveCycles) }

// MR is the conventional miss rate.
func (p Params) MR() float64 { return ratio(p.Misses, p.Completed) }

// PMR is the pure miss rate (pMR).
func (p Params) PMR() float64 { return ratio(p.PureMisses, p.Completed) }

// AMP is the conventional average miss penalty: the sum of per-miss
// penalty cycles over the number of misses.
func (p Params) AMP() float64 { return ratio(p.MissPenaltySum, p.Misses) }

// PAMP is the average pure-miss penalty (pAMP): total pure-miss
// access-cycles per pure miss, per the Fig. 1 arithmetic.
func (p Params) PAMP() float64 { return ratio(p.PureAccessCycles, p.PureMisses) }

// APC is accesses per memory-active cycle (Eq. 3 context).
func (p Params) APC() float64 { return ratio(p.Completed, p.ActiveCycles) }

// CAMAT evaluates Eq. (2): H/C_H + pMR * pAMP/C_M. With the package's
// measurement semantics this equals 1/APC exactly once the layer has
// drained (Accesses == Completed).
func (p Params) CAMAT() float64 {
	v := 0.0
	if ch := p.CH(); ch > 0 {
		v += p.H() / ch
	}
	if cm := p.CM(); cm > 0 {
		v += p.PMR() * p.PAMP() / cm
	}
	return v
}

// AMAT evaluates Eq. (1): H + MR * AMP, ignoring all concurrency.
func (p Params) AMAT() float64 { return p.H() + p.MR()*p.AMP() }

// Eta is the concurrency/locality trimming factor η of Eq. (4):
// (pAMP/AMP) * (C_m/C_M). It is 0 when the layer has no misses.
func (p Params) Eta() float64 {
	amp, cm := p.AMP(), p.CM()
	if amp == 0 || cm == 0 {
		return 0
	}
	return (p.PAMP() / amp) * (p.Cm() / cm)
}

// String renders the principal parameters for reports.
func (p Params) String() string {
	return fmt.Sprintf(
		"acc=%d H=%.2f CH=%.2f MR=%.4f pMR=%.4f AMP=%.2f pAMP=%.2f Cm=%.2f CM=%.2f APC=%.4f C-AMAT=%.3f AMAT=%.3f",
		p.Completed, p.H(), p.CH(), p.MR(), p.PMR(), p.AMP(), p.PAMP(),
		p.Cm(), p.CM(), p.APC(), p.CAMAT(), p.AMAT())
}

// Sub returns the counter-wise difference p - q, for windowed deltas of
// cumulative counters (q must be an earlier snapshot of the same layer).
// The derived C-AMAT parameters of the difference are the window's own.
func (p Params) Sub(q Params) Params {
	return Params{
		Accesses:         p.Accesses - q.Accesses,
		Completed:        p.Completed - q.Completed,
		Misses:           p.Misses - q.Misses,
		PureMisses:       p.PureMisses - q.PureMisses,
		Cycles:           p.Cycles - q.Cycles,
		ActiveCycles:     p.ActiveCycles - q.ActiveCycles,
		HitActiveCycles:  p.HitActiveCycles - q.HitActiveCycles,
		HitAccessCycles:  p.HitAccessCycles - q.HitAccessCycles,
		MissActiveCycles: p.MissActiveCycles - q.MissActiveCycles,
		MissAccessCycles: p.MissAccessCycles - q.MissAccessCycles,
		PureCycles:       p.PureCycles - q.PureCycles,
		PureAccessCycles: p.PureAccessCycles - q.PureAccessCycles,
		MissPenaltySum:   p.MissPenaltySum - q.MissPenaltySum,
	}
}

// Add returns the counter-wise sum of p and q, used to aggregate per-core
// analyzers into a chip-level view.
func (p Params) Add(q Params) Params {
	return Params{
		Accesses:         p.Accesses + q.Accesses,
		Completed:        p.Completed + q.Completed,
		Misses:           p.Misses + q.Misses,
		PureMisses:       p.PureMisses + q.PureMisses,
		Cycles:           p.Cycles + q.Cycles,
		ActiveCycles:     p.ActiveCycles + q.ActiveCycles,
		HitActiveCycles:  p.HitActiveCycles + q.HitActiveCycles,
		HitAccessCycles:  p.HitAccessCycles + q.HitAccessCycles,
		MissActiveCycles: p.MissActiveCycles + q.MissActiveCycles,
		MissAccessCycles: p.MissAccessCycles + q.MissAccessCycles,
		PureCycles:       p.PureCycles + q.PureCycles,
		PureAccessCycles: p.PureAccessCycles + q.PureAccessCycles,
		MissPenaltySum:   p.MissPenaltySum + q.MissPenaltySum,
	}
}
