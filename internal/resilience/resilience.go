// Package resilience is the hardened-execution layer of the LPM
// reproduction: cooperative cancellation wired to SIGINT/SIGTERM, a
// structured livelock error carrying the simulator's own diagnostics,
// an error-valued panic carrier for interfaces that cannot return
// errors, and a durable checkpoint envelope (magic + length + CRC64)
// for the memo cache and exploration frontier.
//
// The design premise is that a multi-hour sweep must never die with
// zero salvageable output: interruption drains in-flight work and emits
// a partial report, kill -9 loses at most the work since the last
// checkpoint, and a livelocked or panicking workload becomes an error
// cell in the table rather than a dead run.
package resilience

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// WithSignals derives a context cancelled on SIGINT or SIGTERM. The
// returned stop releases the signal registration; a second signal after
// cancellation falls through to the default handler (immediate exit),
// so a stuck drain can still be interrupted.
func WithSignals(ctx context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
}

// Abort carries an error across API layers that cannot return one —
// core.Target.Measure is the canonical case: a cancelled or livelocked
// simulation panics with Abort{Err} and the driver boundary recovers
// it back into an ordinary error with Recover.
type Abort struct{ Err error }

// Error makes Abort itself an error, so a recover that stores the raw
// panic value still formats usefully.
func (a Abort) Error() string { return a.Err.Error() }

// Unwrap exposes the carried error to errors.Is / errors.As.
func (a Abort) Unwrap() error { return a.Err }

// Recover converts a recovered panic value into the carried error if it
// is an Abort, and re-panics otherwise. Use as
//
//	defer func() {
//		if r := recover(); r != nil {
//			err = resilience.Recover(r)
//		}
//	}()
//
// Genuine bugs (non-Abort panics) keep crashing loudly.
func Recover(r any) error {
	if a, ok := r.(Abort); ok {
		return a.Err
	}
	panic(r)
}
