// Package parallel is a miniature of the real memoization package: the
// analyzer recognises KeyOf by package-path suffix.
package parallel

// KeyOf concatenates parts into an order-sensitive memo key.
func KeyOf(parts ...string) string {
	out := ""
	for _, p := range parts {
		out += p + "\x00"
	}
	return out
}
