package sched

// Portable specs for the two memoised profiling simulations, mirroring
// explore.SimSpec: each carries every input its run depends on in
// exported JSON-safe fields, and each Run* function is a pure function
// of the spec, shared verbatim between the in-process memo path and the
// sweep fabric's granule executors.

import (
	"context"
	"encoding/json"
	"fmt"

	"lpm/internal/fabric"
	"lpm/internal/parallel"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

// ProfileKind is the fabric granule kind for standalone workload
// profiling runs (Fig. 6/7 and the NUCA-SA scheduler's table).
const ProfileKind = "sched.profile"

// AloneKind is the fabric granule kind for standalone-IPC reference
// runs (the Hsp denominator).
const AloneKind = "sched.alone"

// ProfileSpec describes one profiling run: one workload alone at one
// L1 size under normalised options.
type ProfileSpec struct {
	Profile trace.Profile
	L1Size  uint64
	Opt     ProfileOptions
}

// MemoKey derives the content key; the part order must stay exactly
// what the pre-fabric profileOne passed to parallel.KeyOf so existing
// checkpoints keep resuming warm.
func (s ProfileSpec) MemoKey() string {
	return parallel.KeyOf("sched.profileOne", s.Profile, s.L1Size, s.Opt)
}

// RunProfileSpec measures (APC1, APC2, IPC) for the spec's workload.
func RunProfileSpec(ctx context.Context, s ProfileSpec) ([3]float64, error) {
	opt := s.Opt.normalise()
	cfg := chip.NUCASingle(trace.NewSynthetic(s.Profile), s.L1Size)
	ch := chip.New(cfg)
	ch.SetContext(ctx)
	runTarget := opt.Warmup + opt.Instructions
	if opt.WarmupFast {
		ch.SetTier(chip.TierFunctional)
		ch.RunFunctional(opt.Warmup)
		ch.SetTier(chip.TierDetailed)
		runTarget = opt.Instructions
	} else {
		ch.RunUntilRetired(opt.Warmup, opt.MaxCycles)
	}
	ch.ResetCounters()
	ch.Run(runTarget, opt.MaxCycles)
	if err := ch.Err(); err != nil {
		return [3]float64{}, fmt.Errorf("profile %s @%d: %w", s.Profile.Name, s.L1Size, err)
	}
	r := ch.Snapshot()
	return [3]float64{r.Cores[0].L1.APC(), r.L2.APC(), r.Cores[0].CPU.IPC()}, nil
}

// AloneSpec describes one standalone-IPC reference run: one workload on
// a reference core with the largest NUCA group's L1, under the shared
// runs' fixed-cycle warmup/window protocol.
type AloneSpec struct {
	Profile      trace.Profile
	RefL1        uint64
	WindowCycles uint64
	WarmupCycles uint64
	WarmupFast   bool
}

// MemoKey derives the content key with the pre-fabric part order.
func (s AloneSpec) MemoKey() string {
	return parallel.KeyOf("sched.alone", s.Profile, s.RefL1,
		s.WindowCycles, s.WarmupCycles, s.WarmupFast)
}

// RunAloneSpec measures the spec's standalone IPC.
func RunAloneSpec(ctx context.Context, s AloneSpec) (float64, error) {
	ch := chip.New(chip.NUCASingle(trace.NewSynthetic(s.Profile), s.RefL1))
	ch.SetContext(ctx)
	warmChip(ch, EvalOptions{
		WindowCycles: s.WindowCycles,
		WarmupCycles: s.WarmupCycles,
		WarmupFast:   s.WarmupFast,
	})
	ch.ResetCounters()
	ch.RunCycles(s.WindowCycles)
	if err := ch.Err(); err != nil {
		return 0, fmt.Errorf("alone-IPC %s: %w", s.Profile.Name, err)
	}
	return ch.Snapshot().Cores[0].CPU.IPC(), nil
}

func init() {
	fabric.RegisterKind(ProfileKind, func(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
		var s ProfileSpec
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("sched: decode %s spec: %w", ProfileKind, err)
		}
		r, err := RunProfileSpec(ctx, s)
		if err != nil {
			return nil, err
		}
		return json.Marshal(r)
	})
	fabric.RegisterKind(AloneKind, func(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
		var s AloneSpec
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("sched: decode %s spec: %w", AloneKind, err)
		}
		r, err := RunAloneSpec(ctx, s)
		if err != nil {
			return nil, err
		}
		return json.Marshal(r)
	})
}
