package explore

import (
	"testing"

	"lpm/internal/core"
	"lpm/internal/trace"
)

func TestTableConfigsComplete(t *testing.T) {
	cfgs := TableConfigs()
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		if _, ok := cfgs[name]; !ok {
			t.Fatalf("missing configuration %s", name)
		}
	}
	// Table I values spot-check.
	a := cfgs["A"]
	if a.IssueWidth != 4 || a.IWSize != 32 || a.ROBSize != 32 || a.L1Ports != 1 || a.MSHRs != 4 || a.L2Banks != 4 {
		t.Fatalf("config A = %+v", a)
	}
	d, e := cfgs["D"], cfgs["E"]
	if e.IWSize >= d.IWSize || e.ROBSize >= d.ROBSize {
		t.Fatal("E must trim IW/ROB relative to D")
	}
}

func TestCostOrdering(t *testing.T) {
	cfgs := TableConfigs()
	// Incremental parallelism A..D raises cost; the trimmed E costs less
	// than D.
	if !(cfgs["A"].Cost() < cfgs["B"].Cost() &&
		cfgs["B"].Cost() < cfgs["C"].Cost() &&
		cfgs["C"].Cost() < cfgs["D"].Cost()) {
		t.Fatal("cost not increasing A..D")
	}
	if cfgs["E"].Cost() >= cfgs["D"].Cost() {
		t.Fatal("E not cheaper than D")
	}
}

func TestSpaceSizeIsMillion(t *testing.T) {
	if got := DefaultSpace().Size(); got != 1_000_000 {
		t.Fatalf("space size = %d, want 10^6 (paper: one million configurations)", got)
	}
}

func TestSpaceIndicesRoundTrip(t *testing.T) {
	s := DefaultSpace()
	for name, p := range TableConfigs() {
		got := s.At(s.Indices(p))
		if got != p {
			t.Errorf("config %s: %v -> %v (menus must contain Table I values)", name, p, got)
		}
	}
}

func TestIndexBelowMenuMapsToZero(t *testing.T) {
	if index([]int{4, 8, 16}, 2) != 0 {
		t.Fatal("value below menu should map to index 0")
	}
	if index([]int{4, 8, 16}, 100) != 2 {
		t.Fatal("value above menu should map to last index")
	}
}

func TestChipConfigRealisesPoint(t *testing.T) {
	p := Point{IssueWidth: 6, IWSize: 48, ROBSize: 96, L1Ports: 3, MSHRs: 12, L2Banks: 16}
	gen := trace.NewSynthetic(trace.MustProfile("410.bwaves"))
	cfg := ChipConfig(p, gen)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Cores[0].CPU.IssueWidth != 6 || cfg.Cores[0].CPU.IWSize != 48 || cfg.Cores[0].CPU.ROBSize != 96 {
		t.Fatal("core point not realised")
	}
	if cfg.Cores[0].L1.Ports != 3 || cfg.Cores[0].L1.MSHRs != 12 {
		t.Fatal("L1 point not realised")
	}
	if cfg.L2.Banks != 16 {
		t.Fatal("L2 interleaving not realised")
	}
}

func TestOptimizeStepsMoveKnobs(t *testing.T) {
	s := DefaultSpace()
	tgt := NewHardwareTarget(s, TableConfigs()["A"], trace.MustProfile("410.bwaves"))
	before := tgt.Current()
	if !tgt.OptimizeL1() {
		t.Fatal("L1 step refused")
	}
	after := tgt.Current()
	if after == before {
		t.Fatal("L1 step changed nothing")
	}
	if after.MSHRs != before.MSHRs || after.L2Banks != before.L2Banks {
		t.Fatal("L1 step touched L2 knobs")
	}

	if !tgt.OptimizeL2() {
		t.Fatal("L2 step refused")
	}
	l2after := tgt.Current()
	if l2after.MSHRs == after.MSHRs && l2after.L2Banks == after.L2Banks {
		t.Fatal("L2 step changed nothing")
	}
}

func TestOptimizeExhaustsAtMenuTop(t *testing.T) {
	s := Space{
		IssueWidths: []int{4}, IWSizes: []int{32}, ROBSizes: []int{32},
		L1Ports: []int{1}, MSHRs: []int{4}, L2Banks: []int{4},
	}
	tgt := NewHardwareTarget(s, TableConfigs()["A"], trace.MustProfile("410.bwaves"))
	if tgt.OptimizeL1() || tgt.OptimizeL2() {
		t.Fatal("singleton space cannot be optimized")
	}
	if tgt.ReduceOverprovision() {
		t.Fatal("singleton space cannot be reduced")
	}
}

func TestReducePrefersIWAndROB(t *testing.T) {
	tgt := NewHardwareTarget(DefaultSpace(), TableConfigs()["D"], trace.MustProfile("410.bwaves"))
	before := tgt.Current()
	if !tgt.ReduceOverprovision() {
		t.Fatal("reduce refused")
	}
	after := tgt.Current()
	if after.IWSize >= before.IWSize {
		t.Fatalf("first reduction should shrink IW: %v -> %v", before, after)
	}
}

func TestStallShapeAtoD(t *testing.T) {
	// Reproduction core of Table I / case study I: configuration D
	// (incremental parallelism) must slash both LPMR1 and the measured
	// stall relative to configuration A.
	eval := func(name string) core.Measurement {
		tgt := NewHardwareTarget(DefaultSpace(), TableConfigs()[name], trace.MustProfile("410.bwaves"))
		tgt.Warmup = 150000
		tgt.Instructions = 25000
		return tgt.Measure()
	}
	a, d := eval("A"), eval("D")
	if d.LPMR1() >= a.LPMR1()*0.8 {
		t.Fatalf("LPMR1: A=%.2f D=%.2f — parallelism did not close the mismatch", a.LPMR1(), d.LPMR1())
	}
	stallPct := func(m core.Measurement) float64 { return 100 * m.MeasuredStall / m.CPIexe }
	if stallPct(d) >= stallPct(a)/2 {
		t.Fatalf("stall%%: A=%.1f D=%.1f — expected large reduction", stallPct(a), stallPct(d))
	}
	if a.Eta() <= 0 {
		t.Fatal("eta not measured")
	}
}

func TestLPMAlgorithmExploresTinyFractionOfSpace(t *testing.T) {
	tgt := NewHardwareTarget(DefaultSpace(), TableConfigs()["A"], trace.MustProfile("410.bwaves"))
	tgt.Warmup = 100000
	tgt.Instructions = 15000
	res, final := tgt.RunAlgorithm(core.AlgorithmConfig{Grain: CoarseGrainCfg().Grain, MaxSteps: 24})
	if tgt.Evaluations() == 0 {
		t.Fatal("no evaluations")
	}
	if tgt.Evaluations() > 40 {
		t.Fatalf("%d evaluations — not a guided search", tgt.Evaluations())
	}
	spaceFrac := float64(tgt.Evaluations()) / float64(DefaultSpace().Size())
	if spaceFrac > 0.001 {
		t.Fatalf("explored %.4f%% of the space", spaceFrac*100)
	}
	// The walk must strictly raise parallelism from A somewhere.
	if final == TableConfigs()["A"] && len(res.Steps) > 1 {
		t.Fatal("algorithm never moved")
	}
	// LPMR1 must improve from the first measurement to the final one.
	first := res.Steps[0].Before
	if res.Final.LPMR1() >= first.LPMR1() && !res.MetTarget {
		t.Fatalf("no improvement: %.3f -> %.3f", first.LPMR1(), res.Final.LPMR1())
	}
}

// CoarseGrainCfg returns the coarse-grained algorithm configuration used
// by tests.
func CoarseGrainCfg() core.AlgorithmConfig {
	return core.AlgorithmConfig{Grain: core.CoarseGrain}
}

func TestEvaluationHistoryRecorded(t *testing.T) {
	tgt := NewHardwareTarget(DefaultSpace(), TableConfigs()["A"], trace.MustProfile("410.bwaves"))
	tgt.Warmup = 20000
	tgt.Instructions = 5000
	tgt.Measure()
	tgt.Measure() // memoised: no second simulation
	if tgt.Evaluations() != 1 {
		t.Fatalf("evaluations = %d, want 1 (memoised)", tgt.Evaluations())
	}
	if len(tgt.History()) != 1 {
		t.Fatalf("history = %d", len(tgt.History()))
	}
	if tgt.History()[0].Point != TableConfigs()["A"] {
		t.Fatal("history records wrong point")
	}
}

func TestPointString(t *testing.T) {
	s := TableConfigs()["C"].String()
	if s == "" {
		t.Fatal("empty point string")
	}
}
