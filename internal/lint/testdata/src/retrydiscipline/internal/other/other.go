// Package other sits outside the analyzer's scope: the same loop shape
// that is a finding in the fleet layers is tolerated here.
package other

import (
	"net"
	"time"
)

// Probe redials with a bare sleep — out of scope, not a finding.
func Probe(addr string) {
	for {
		if _, err := net.Dial("tcp", addr); err == nil {
			return
		}
		time.Sleep(time.Second)
	}
}
