// Package cpu is a miniature fast-forwardable component: the
// Quiescent/NextEvent/AdvanceCycles trio must stay pure accounting.
package cpu

import "lpm/internal/obs"

// Stats is the component's counter block.
type Stats struct{ Stalls uint64 }

// Core is the component.
type Core struct {
	st   Stats
	busy bool
	tr   *obs.Tracer
	occ  *obs.Histogram
}

// Snapshot reads the counters (fine on its own — cpu is not the chip).
func (c *Core) Snapshot() Stats { return c.st }

// Quiescent reports whether the core can be bulk-advanced; the
// predicate may read state freely.
func (c *Core) Quiescent() bool { return !c.busy }

// NextEvent peeks the next state change but emits a trace event doing
// so.
func (c *Core) NextEvent(now uint64) uint64 {
	c.tr.Emit(now, "peek") // want "NextEvent calls obs.Emit mid-fast-forward"
	return now + 1
}

// AdvanceCycles bulk-accrues n cycles. The closed-form accrual and the
// bulk obs writer are fine; the snapshot, the per-event observation and
// the emission are not.
func (c *Core) AdvanceCycles(now, n uint64) {
	c.st.Stalls += n
	c.occ.ObserveN(1, n)   // bulk form: legal
	c.occ.Observe(1)       // want "AdvanceCycles calls obs.Observe mid-fast-forward"
	_ = c.Snapshot()       // want "AdvanceCycles calls observation API Snapshot mid-fast-forward"
	c.tr.Emit(now, "jump") // want "AdvanceCycles calls obs.Emit mid-fast-forward"
}
