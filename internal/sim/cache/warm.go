package cache

// Functional-tier warming: the methods here update only the cache's
// *architectural* warm state — tag arrays, replacement stamps, dirty
// bits, and (through the lower layers) directory sharers and DRAM open
// rows — with no queues, no latency, no analyzer transitions. They are
// the cheap counterpart of the detailed Access/Request/Tick path used
// to warm a hierarchy before a measured detailed phase; because they
// bypass every timing structure, per-access cost is a tag probe rather
// than a pipeline traversal. Counter side effects are unspecified (a
// warm phase is always followed by ResetCounters); queue state is
// guaranteed untouched, so the detailed engine resumes cleanly.

// Warmer is the functional-tier counterpart of Lower: the surface a
// layer uses to warm the layer below it. Every Lower in this repository
// (Cache, Directory, Router, DRAM) also implements Warmer.
type Warmer interface {
	// WarmFetch brings a block into the layer's warm state on behalf of
	// requestor src, recursing below on a miss. stamp orders
	// replacement decisions (the functional tier's clock).
	WarmFetch(stamp uint64, src int, block uint64, write bool)
	// WarmWriteback absorbs a dirty block evicted by the layer above.
	WarmWriteback(stamp uint64, src int, block uint64)
}

// WarmAccess performs one functional-tier demand access from this
// cache's owner (the CPU for an L1), warming the hierarchy beneath it
// on a miss. It reports whether the access hit.
func (c *Cache) WarmAccess(stamp uint64, addr uint64, write bool) bool {
	c.now = stamp
	blk := c.block(addr)
	if c.warmLookup(blk, write) {
		return true
	}
	c.warmFill(stamp, c.cfg.SrcID, blk, write)
	return false
}

// WarmFetch implements Warmer for a cache serving as a lower layer.
func (c *Cache) WarmFetch(stamp uint64, src int, block uint64, write bool) {
	c.now = stamp
	addr := block << c.blockBits
	blk := c.block(addr)
	if c.warmLookup(blk, write) {
		return
	}
	c.warmFill(stamp, src, blk, write)
}

// WarmWriteback implements Warmer: update the block in place when
// present, else forward the writeback down — the immediate form of
// acceptWriteback (no writeback queue in the functional tier).
func (c *Cache) WarmWriteback(stamp uint64, src int, block uint64) {
	_ = src
	c.now = stamp
	set := c.sets[c.setIndex(block)]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].dirty = true
			return
		}
	}
	if c.warmLower != nil {
		c.warmLower.WarmWriteback(stamp, c.cfg.SrcID, block)
	}
}

// warmLookup probes the tag array applying the replacement policy's
// touch, like lookup, without the prefetch-usefulness accounting.
func (c *Cache) warmLookup(block uint64, write bool) bool {
	set := c.sets[c.setIndex(block)]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			if c.cfg.Repl == LRU {
				set[i].used = c.now
			}
			if write {
				set[i].dirty = true
			}
			set[i].prefetched = false
			return true
		}
	}
	return false
}

// warmFill fetches block from below and installs it, evicting (and
// warm-writing-back) a victim as the detailed fill path would.
func (c *Cache) warmFill(stamp uint64, src int, blk uint64, write bool) {
	if c.warmLower != nil {
		c.warmLower.WarmFetch(stamp, c.cfg.SrcID, blk, write)
	}
	set := c.sets[c.setIndex(blk)]
	v := c.victim(set, src)
	if set[v].valid && set[v].dirty && c.warmLower != nil {
		c.warmLower.WarmWriteback(stamp, c.cfg.SrcID, set[v].tag)
	}
	set[v] = line{tag: blk, valid: true, dirty: write, used: c.insertStamp()}
}
