// Package parallel is the batch simulation runner shared by every
// experiment driver: a bounded worker pool whose Map fans independent
// jobs out over goroutines while preserving input order, plus a
// content-keyed, single-flight result memo (memo.go) so repeated
// evaluations of the same simulation are free across drivers.
//
// Every simulation in this repository is self-contained — each job
// builds its own trace.Generator and chip.Chip and shares nothing — so
// running jobs concurrently is bit-identical to running them serially.
// The determinism regression tests in the root package pin that
// guarantee.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of goroutines a Map call may use.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most workers jobs concurrently;
// workers <= 0 means runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// defaultPool serves Map calls that do not carry their own pool. It is
// swapped atomically so the -workers CLI flag can reconfigure it before
// the drivers start.
var defaultPool atomic.Pointer[Pool]

func init() { defaultPool.Store(NewPool(0)) }

// SetWorkers reconfigures the default pool; n <= 0 restores the
// GOMAXPROCS default.
func SetWorkers(n int) { defaultPool.Store(NewPool(n)) }

// Workers returns the default pool's concurrency bound.
func Workers() int { return defaultPool.Load().Workers() }

// Map runs fn over jobs on the default pool. See MapPool.
func Map[I, O any](jobs []I, fn func(I) (O, error)) ([]O, error) {
	return MapPool(defaultPool.Load(), jobs, fn)
}

// MapCtx is Map with cooperative cancellation: jobs already running
// when ctx is cancelled finish (the drain), jobs not yet started are
// skipped and report ctx's error.
func MapCtx[I, O any](ctx context.Context, jobs []I, fn func(context.Context, I) (O, error)) ([]O, error) {
	return firstError(MapPoolResults(ctx, defaultPool.Load(), jobs, fn))
}

// MapPool runs fn over every job on at most p.Workers() goroutines and
// returns the results in input order. A panic in fn is recovered and
// reported as that job's error rather than crashing (or deadlocking)
// the batch. If any job fails, MapPool still waits for the rest and
// then returns the lowest-indexed error, so the error surfaced is the
// same one the serial loop would have hit first.
func MapPool[I, O any](p *Pool, jobs []I, fn func(I) (O, error)) ([]O, error) {
	//lint:ignore ctxflow ctx-less compat wrapper; MapPoolResults is the interruptible form
	return firstError(MapPoolResults(context.Background(), p, jobs,
		func(_ context.Context, job I) (O, error) { return fn(job) }))
}

// JobResult is one job's outcome under MapResults: its value or error,
// and whether the job actually ran (false when cancellation skipped it).
type JobResult[O any] struct {
	Val O
	Err error
	Ran bool
}

// MapResults runs fn over jobs on the default pool and reports every
// job's outcome individually — the failure-isolation form the
// experiment drivers use so one panicking or livelocked workload
// becomes an error cell instead of poisoning the whole table. See
// MapPoolResults.
func MapResults[I, O any](ctx context.Context, jobs []I, fn func(context.Context, I) (O, error)) []JobResult[O] {
	return MapPoolResults(ctx, defaultPool.Load(), jobs, fn)
}

// MapPoolResults is the core runner behind Map, MapCtx and MapResults:
// input-ordered per-job results, recovered panics, cooperative
// cancellation with drain semantics. A panic whose value is an error is
// wrapped with %w so errors.As reaches structured errors (a
// *resilience.LivelockError travelling inside an Abort); other panic
// values keep their stack trace, since they are genuine bugs.
func MapPoolResults[I, O any](ctx context.Context, p *Pool, jobs []I, fn func(context.Context, I) (O, error)) []JobResult[O] {
	if p == nil {
		p = defaultPool.Load()
	}
	out := make([]JobResult[O], len(jobs))
	if len(jobs) == 0 {
		return out
	}
	run := func(i int) {
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			return
		}
		out[i].Ran = true
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok {
					out[i].Err = fmt.Errorf("parallel: job %d panicked: %w", i, err)
				} else {
					out[i].Err = fmt.Errorf("parallel: job %d panicked: %v\n%s", i, r, debug.Stack())
				}
			}
		}()
		out[i].Val, out[i].Err = fn(ctx, jobs[i])
	}

	workers := min(p.Workers(), len(jobs))
	if workers <= 1 {
		for i := range jobs {
			run(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					run(i)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	return out
}

// firstError flattens per-job results into the classic ([]O, error)
// shape: all values plus the lowest-indexed error, matching what the
// serial loop would have hit first.
func firstError[O any](results []JobResult[O]) ([]O, error) {
	out := make([]O, len(results))
	var first error
	for i, r := range results {
		out[i] = r.Val
		if r.Err != nil && first == nil {
			first = r.Err
		}
	}
	return out, first
}
