package cpu

import (
	"testing"

	"lpm/internal/trace"
)

func TestCommitWidthBoundsRetirement(t *testing.T) {
	// Wide issue, narrow commit: IPC is capped by the commit width.
	g := &scriptGen{name: "ilp", instrs: []trace.Instr{{Kind: trace.Compute, Lat: 1}}}
	mem := &Perfect{Latency: 1}
	cfg := Config{Name: "c", IssueWidth: 8, ROBSize: 64, IWSize: 64, CommitWidth: 1}
	c := New(cfg, g, mem)
	runCore(c, mem, 5000, 20000)
	if ipc := c.Stats().IPC(); ipc > 1.01 {
		t.Fatalf("IPC %.3f exceeds commit width 1", ipc)
	}
}

func TestROBFullStopsFetch(t *testing.T) {
	// A memory op at the head with a long latency fills the ROB; the
	// core must not fetch past capacity.
	g := &scriptGen{name: "loads", instrs: []trace.Instr{{Kind: trace.Load, Lat: 1}}}
	mem := &Perfect{Latency: 1000}
	cfg := Config{Name: "c", IssueWidth: 4, ROBSize: 8, IWSize: 16}
	c := New(cfg, g, mem)
	for cy := uint64(1); cy <= 100; cy++ {
		c.Tick(cy)
		if c.count > 8 {
			t.Fatalf("ROB occupancy %d > 8", c.count)
		}
		mem.Tick(cy)
	}
}

func TestEmptyCyclesCountedAfterHalt(t *testing.T) {
	g := &scriptGen{name: "ilp", instrs: []trace.Instr{{Kind: trace.Compute, Lat: 1}}}
	mem := &Perfect{Latency: 1}
	c := New(coreCfg(), g, mem)
	for cy := uint64(1); cy <= 100; cy++ {
		c.Tick(cy)
		mem.Tick(cy)
	}
	// Before the fix that freezes drained cores, halted cores kept
	// accruing cycles and EmptyCycles; now they freeze entirely.
	c.Halt()
	for cy := uint64(101); cy <= 300; cy++ {
		c.Tick(cy)
		mem.Tick(cy)
	}
	cyclesAtDrain := c.Stats().Cycles
	for cy := uint64(301); cy <= 400; cy++ {
		c.Tick(cy)
		mem.Tick(cy)
	}
	if c.Stats().Cycles != cyclesAtDrain {
		t.Fatalf("drained core still accrues cycles: %d -> %d",
			cyclesAtDrain, c.Stats().Cycles)
	}
}

func TestStoresBlockRetirementUntilComplete(t *testing.T) {
	// A store at the ROB head must complete before retiring: with a slow
	// memory, stores gate IPC just like loads in this model.
	g := &scriptGen{name: "stores", instrs: []trace.Instr{{Kind: trace.Store, Lat: 1}}}
	mem := &Perfect{Latency: 25}
	cfg := coreCfg()
	cfg.IWSize = 2
	c := New(cfg, g, mem)
	runCore(c, mem, 500, 100000)
	if ipc := c.Stats().IPC(); ipc > 2.0/25+0.02 {
		t.Fatalf("stores retired without completing: IPC %.3f", ipc)
	}
}

func TestRejectedAccessesRetry(t *testing.T) {
	// A memory port that refuses every other cycle must not lose
	// accesses: everything still retires.
	g := &scriptGen{name: "loads", instrs: []trace.Instr{{Kind: trace.Load, Lat: 1}}}
	flaky := &flakyMem{inner: &Perfect{Latency: 3}}
	c := New(coreCfg(), g, flaky)
	for cy := uint64(1); cy <= 50000 && c.Retired() < 2000; cy++ {
		flaky.cycle = cy
		c.Tick(cy)
		flaky.inner.Tick(cy)
	}
	if c.Retired() < 2000 {
		t.Fatalf("retired %d with a flaky port", c.Retired())
	}
	if c.Stats().RejectedAccesses == 0 {
		t.Fatal("port never rejected — test is vacuous")
	}
}

// flakyMem refuses accesses on odd cycles.
type flakyMem struct {
	inner *Perfect
	cycle uint64
}

func (f *flakyMem) Access(cycle uint64, addr uint64, write bool, done func(uint64)) bool {
	if cycle%2 == 1 {
		return false
	}
	return f.inner.Access(cycle, addr, write, done)
}
