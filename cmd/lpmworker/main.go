// Command lpmworker hosts one sweep-fabric worker: it connects to a
// coordinator (an lpmexplore or lpmreport run started with -shard, or
// an lpmserve fleet), announces its execution slots, and serves
// simulation granules until the coordinator finishes or a signal
// arrives.
//
// Usage:
//
//	lpmworker [flags] host:port
//	lpmworker -slots 4 -name rack3 127.0.0.1:7707
//
// The worker is stateless: every granule is a pure function of its
// spec, so a worker may be killed, restarted, or added mid-run without
// affecting results — only throughput. It exits 0 when the coordinator
// disconnects (the run is over) and on SIGINT/SIGTERM (signal-aware via
// internal/resilience), and non-zero only on genuine transport or
// protocol failures. Every simulation a granule runs arms the standard
// livelock watchdog on its chip, so a wedged simulation surfaces as a
// granule error instead of a hung worker; the straggler re-issue on the
// coordinator covers the window in between.
//
// Diagnostics are structured (log/slog) on stderr — text by default,
// JSON with -log json. On SIGTERM mid-granule the worker logs the
// granule key it is abandoning, and if an established session breaks
// (-reconnect > 0) it redials and re-probes the shared cache for those
// keys instead of silently re-simulating them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"time"

	"lpm/internal/cliutil"
	"lpm/internal/fabric"
	"lpm/internal/obs"
	"lpm/internal/resilience"
	"lpm/internal/resilience/fleet"

	// Register the granule executors this worker can run: the
	// design-point simulation and the two profiling kinds.
	_ "lpm/internal/explore"
	_ "lpm/internal/sched"
)

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// -help is a successful outcome for a worker smoke test: CI
		// probes `lpmworker -help` to prove the binary runs at all.
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name      = fs.String("name", "", "worker name in coordinator logs (default: local address)")
		slots     = fs.Int("slots", runtime.GOMAXPROCS(0), "granules executed concurrently")
		retry     = fs.Duration("retry", 10*time.Second, "keep retrying the initial dial for this long")
		reconnect = fs.Int("reconnect", 2, "redial a broken (previously established) session up to this many times; 0 = exit on the first break")
		noProbe   = fs.Bool("no-cache-probe", false, "skip the shared-cache probe before each granule")
		seed      = fs.Uint64("seed", 0, "seed for the deterministic retry-jitter stream")
		quiet     = fs.Bool("quiet", false, "suppress structured progress logging on stderr")
		logFmt    = fs.String("log", "text", "log format on stderr: text or json")
		version   = fs.Bool("version", false, "print the fabric protocol version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		_, err := fmt.Fprintf(stdout, "lpmworker fabric-proto %d (kinds: %v)\n", fabric.ProtoVersion, fabric.Kinds())
		return err
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: lpmworker [flags] host:port")
		return errors.New("exactly one coordinator address required")
	}

	log := cliutil.DiscardLogger()
	if !*quiet {
		log = cliutil.NewLogger(stderr, *logFmt)
	}
	tel := fabric.NewWorkerTelemetry(obs.NewRegistry())
	policy := fleet.Defaults(*seed)
	opts := fabric.WorkerOptions{
		Name:         *name,
		Slots:        *slots,
		NoCacheProbe: *noProbe,
		DialRetry:    *retry,
		Retry:        policy,
		Seed:         *seed,
		Log:          log,
		Obs:          tel,
		// One reprobe set across every session of this process: keys
		// abandoned when a session broke are re-probed against the
		// shared cache after the reconnect.
		Reprobe: fabric.NewReprobeSet(),
	}

	var err error
	for attempt := 0; ; attempt++ {
		err = fabric.RunWorker(ctx, fs.Arg(0), opts)
		if err == nil || ctx.Err() != nil {
			err = nil
			break
		}
		// A dial that never connected is not worth retrying beyond the
		// -retry window RunWorker already spent; an established session
		// that broke is — the coordinator may still be alive, holding
		// re-issued copies of whatever this worker abandoned.
		if errors.Is(err, fabric.ErrDial) || attempt >= *reconnect {
			break
		}
		log.Warn("fabric: session broke; reconnecting",
			"attempt", attempt+1, "of", *reconnect,
			"abandoned_keys", opts.Reprobe.Len(), "err", err.Error())
		// Pace the redial with the shared backoff policy: seeded jitter,
		// capped exponential — the same discipline every fabric retry
		// loop follows.
		if serr := policy.Sleep(ctx, attempt); serr != nil {
			break
		}
	}
	logWorkerSummary(log, tel)
	return err
}

// logWorkerSummary emits the end-of-life telemetry line: how many
// granules this worker executed, at what latency, and how many it
// abandoned to shutdown. Reads the snapshot after RunWorker returned,
// when the worker is single-goroutine again.
func logWorkerSummary(log *slog.Logger, tel *fabric.WorkerTelemetry) {
	s := tel.Snapshot()
	if s == nil {
		return
	}
	lat, _ := s.Metric("worker.granule_seconds")
	attrs := []any{
		"executed", s.Counter("worker.granules_executed"),
		"failed", s.Counter("worker.granules_failed"),
		"abandoned", s.Counter("worker.granules_abandoned"),
		"cache_probe_hits", s.Counter("worker.cache_probe_hits"),
	}
	if lat.Hist != nil && lat.Hist.Count > 0 {
		attrs = append(attrs,
			"granule_seconds_p50", lat.Hist.P50,
			"granule_seconds_p99", lat.Hist.P99)
	}
	log.Info("fabric: worker summary", attrs...)
}
