// Command lpmexplore runs the paper's case study I: LPM-guided design
// space exploration on a reconfigurable single-core architecture. It
// starts from Table I's configuration A and walks the one-million-point
// space with the Fig. 3 LPMR-reduction algorithm, printing each step.
//
// Usage:
//
//	lpmexplore -grain fine -workload 410.bwaves
//	lpmexplore -json -observe       # machine-readable lpm-explore/v1 document
//	lpmexplore -checkpoint run.ckpt # durable cache, survives kill -9
//	lpmexplore -resume run.ckpt     # replay from the checkpoint
//	lpmexplore -shard 127.0.0.1:7707 -shard-min 4  # fan simulations out to lpmworker processes
//
// SIGINT/SIGTERM drain the in-flight simulations and, in -json mode,
// still emit a decodable document with "partial": true.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	_ "net/http/pprof"
	"os"

	"lpm"
	"lpm/internal/cliutil"
	"lpm/internal/core"
	"lpm/internal/explore"
	"lpm/internal/fabric"
	"lpm/internal/parallel"
	"lpm/internal/resilience"
	"lpm/internal/trace"
)

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// startPprof serves net/http/pprof on addr in the background; an empty
// addr disables it.
func startPprof(addr string, stderr io.Writer) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(stderr, "pprof: %v\n", err)
		}
	}()
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fset := flag.NewFlagSet("lpmexplore", flag.ContinueOnError)
	fset.SetOutput(stderr)
	var (
		workload  = fset.String("workload", "410.bwaves", "built-in workload profile")
		grain     = fset.String("grain", "fine", "stall target: fine (1%) or coarse (10%)")
		warmup    = fset.Uint64("warmup", 250000, "warm-up instructions per evaluation")
		window    = fset.Uint64("window", 30000, "measured instructions per evaluation")
		start     = fset.String("start", "A", "starting Table I configuration (A..E)")
		maxSteps  = fset.Int("maxsteps", 32, "algorithm step bound")
		workers   = fset.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		speculate = fset.Bool("speculate", false,
			"pre-evaluate the one-step knob frontier in parallel at each new point (same walk, more total simulation, less wall-clock)")
		jsonOut  = fset.Bool("json", false, "emit a versioned lpm-explore/v1 JSON document on stdout")
		observe  = fset.Bool("observe", false, "attach per-layer metrics snapshots to every measurement")
		ckpt     = fset.String("checkpoint", "", "persist every simulation result to this file (atomic rewrite per evaluation; survives kill -9)")
		resume   = fset.String("resume", "", "seed the simulation cache from this checkpoint before running (missing file = cold start; implies -checkpoint to the same path)")
		watchdog = fset.Uint64("watchdog", 0, "per-evaluation no-progress cycle budget before a livelock diagnostic (0 = default)")
		pprofCfg = fset.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	shard := fabric.BindShardFlags(fset)
	if err := fset.Parse(args); err != nil {
		return err
	}
	parallel.SetWorkers(*workers)
	startPprof(*pprofCfg, stderr)
	stopShard, _, err := shard.Start(ctx, cliutil.NewLogger(stderr, "text"), nil)
	if err != nil {
		return err
	}
	defer stopShard()

	prof, err := trace.ProfileByName(*workload)
	if err != nil {
		return err
	}
	g := core.FineGrain
	if *grain == "coarse" {
		g = core.CoarseGrain
	}
	startPt, ok := explore.TableConfigs()[*start]
	if !ok {
		return fmt.Errorf("unknown start configuration %q", *start)
	}

	space := explore.DefaultSpace()
	tgt := explore.NewHardwareTarget(space, startPt, prof)
	tgt.Warmup = *warmup
	tgt.Instructions = *window
	tgt.Speculate = *speculate
	tgt.Observe = *observe
	tgt.WatchdogCycles = *watchdog

	// The run key ties a checkpoint to the flags that shape simulation
	// results; -resume refuses a file produced under different ones.
	ckptPath := *ckpt
	if ckptPath == "" {
		ckptPath = *resume
	}
	key := fmt.Sprintf("lpmexplore|%s|%s|%s|%d|%d|%d|obs=%v",
		*workload, g.String(), *start, *warmup, *window, *maxSteps, *observe)
	if *resume != "" {
		if _, err := lpm.LoadMemoCheckpoint(*resume, key); err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("resume: %w", err)
			}
			fmt.Fprintf(stderr, "resume: %s not found, starting cold\n", *resume)
		}
	}
	if ckptPath != "" {
		tgt.OnEvaluate = func(explore.Evaluation) {
			if err := lpm.SaveMemoCheckpoint(ckptPath, "lpmexplore", key); err != nil {
				fmt.Fprintf(stderr, "checkpoint: %v\n", err)
			}
		}
	}

	pr := cliutil.NewPrinter(stdout)
	if !*jsonOut {
		pr.Printf("design space: %d points; start: %s (%s)\n", space.Size(), *start, startPt)
	}
	res, final, runErr := tgt.RunAlgorithmCtx(ctx, core.AlgorithmConfig{Grain: g, SlackFrac: 0.5, MaxSteps: *maxSteps})

	if *jsonOut {
		rep := lpm.NewExploreReport(*workload, g.String(), *start, tgt, res, final)
		if runErr != nil {
			rep.Partial = true
			rep.Error = runErr.Error()
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		return runErr
	}

	for i, st := range res.Steps {
		t2 := "-"
		if st.T2Valid {
			t2 = fmt.Sprintf("%.3f", st.T2)
		}
		pr.Printf("step %2d  case %-26s LPMR1=%.3f LPMR2=%.3f  T1=%.3f T2=%s  stall=%.4f\n",
			i+1, st.Case, st.Before.LPMR1(), st.Before.LPMR2(), st.T1, t2, st.Before.MeasuredStall)
	}
	if runErr != nil {
		pr.Println()
		pr.Printf("interrupted after %d steps (%d simulations): %v\n",
			len(res.Steps), tgt.Evaluations(), runErr)
		if err := pr.Err(); err != nil {
			return err
		}
		return runErr
	}
	pr.Println()
	pr.Printf("final configuration: %s  (cost %.0f)\n", final, final.Cost())
	pr.Printf("final: %s  stall=%.4f (%.2f%% of CPIexe)\n",
		res.Final, res.Final.MeasuredStall, 100*res.Final.MeasuredStall/res.Final.CPIexe)
	pr.Printf("converged=%v metTarget=%v  simulations=%d (%.4f%% of the space)\n",
		res.Converged, res.MetTarget, tgt.Evaluations(),
		100*float64(tgt.Evaluations())/float64(space.Size()))
	return pr.Err()
}
