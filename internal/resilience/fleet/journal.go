package fleet

// Coordinator scheduling journal. Every scheduling decision — granule
// submitted/issued/completed/re-queued, worker joined/lost/quarantined,
// fallback engaged — is appended as one LPMCKPT1-framed JSON record and
// fsynced before the decision takes effect downstream. kill -9 of the
// coordinator then loses nothing that matters: a successor replays the
// journal, rebuilds quarantine and retry state, skips keys the result
// checkpoint already holds, and the sweep completes bit-identically.
//
// The frame-per-record layout (rather than one envelope around the
// whole file) is what makes append-only crash safety work: a torn tail
// — half a record written when the process died — fails the tail
// frame's CRC or length check and replay stops cleanly at the last
// complete record. Nothing before the tear is lost.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"lpm/internal/resilience"
)

// Journal operation codes. Kept short: a large sweep writes one record
// per scheduling decision.
const (
	OpSubmit     = "submit"     // granule entered the queue
	OpIssue      = "issue"      // granule sent to a worker
	OpComplete   = "complete"   // result accepted (first-result-wins)
	OpRequeue    = "requeue"    // granule pulled back for re-dispatch
	OpJoin       = "join"       // worker handshake accepted
	OpGone       = "gone"       // worker session torn down
	OpQuarantine = "quarantine" // worker tripped the breaker
	OpReadmit    = "readmit"    // probation expired, worker readmitted
	OpFallback   = "fallback"   // coordinator degraded to in-process execution
)

// Entry is one journal record. Seq is a strictly increasing sequence
// number (replay validates monotonicity); Tick is the coordinator's
// logical clock when the decision was made.
type Entry struct {
	Seq    uint64 `json:"seq"`
	Tick   uint64 `json:"tick"`
	Op     string `json:"op"`
	Worker string `json:"worker,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Key    string `json:"key,omitempty"`
	// Retries is the granule's retry count at requeue time, so a
	// resumed coordinator keeps charging the same retry budget.
	Retries int `json:"retries,omitempty"`
	// Detail carries human-oriented context (error text, strike cause).
	Detail string `json:"detail,omitempty"`
}

// Journal is the append side. Append is not internally locked — the
// coordinator calls it under its scheduling mutex, which also gives the
// sequence numbers their ordering.
type Journal struct {
	f    *os.File
	path string
	seq  uint64
}

// OpenJournal opens (creating if needed) an append-only journal at
// path. Appends continue the sequence after any records already present
// — a resumed coordinator reuses the same file.
func OpenJournal(path string) (*Journal, error) {
	entries, err := ReplayJournal(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	j := &Journal{f: f, path: path}
	if n := len(entries); n > 0 {
		j.seq = entries[n-1].Seq
	}
	return j, nil
}

// Append frames e, writes it, and fsyncs so the record survives a
// kill -9 the instant Append returns. e.Seq is assigned here.
func (j *Journal) Append(e Entry) error {
	if j == nil {
		return nil
	}
	j.seq++
	e.Seq = j.seq
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	if _, err := j.f.Write(resilience.EncodeEnvelope(payload)); err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close releases the file handle.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}

// ReplayJournal reads every complete record from path, in order. A torn
// tail — an incomplete or corrupt final frame, the signature of dying
// mid-Append — is tolerated: replay returns everything before it.
// Corruption anywhere *before* the tail (or a sequence break) is a real
// integrity failure and is returned as an error wrapping
// resilience.ErrCorruptCheckpoint.
func ReplayJournal(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < resilience.EnvelopeHeaderSize {
			// Torn tail: a partial header at EOF.
			break
		}
		payloadLen, err := resilience.ParseEnvelopeHeader(rest[:resilience.EnvelopeHeaderSize])
		if err != nil {
			return nil, fmt.Errorf("journal %s: record %d: %w", path, len(entries)+1, err)
		}
		frameLen := resilience.EnvelopeHeaderSize + payloadLen
		if len(rest) < frameLen {
			// Torn tail: header landed but the payload did not.
			break
		}
		payload, err := resilience.DecodeEnvelope(rest[:frameLen])
		if err != nil {
			if off+frameLen == len(data) {
				// Torn tail: the final frame's bytes are incomplete or
				// scrambled — the record never fully committed.
				break
			}
			return nil, fmt.Errorf("journal %s: record %d: %w", path, len(entries)+1, err)
		}
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return nil, fmt.Errorf("journal %s: record %d: %w: %v",
				path, len(entries)+1, resilience.ErrCorruptCheckpoint, err)
		}
		if len(entries) == 0 {
			if e.Seq != 1 {
				return nil, fmt.Errorf("journal %s: first record has seq %d, want 1",
					path, e.Seq)
			}
		} else if prev := entries[len(entries)-1].Seq; e.Seq != prev+1 {
			return nil, fmt.Errorf("journal %s: record %d: seq %d follows %d",
				path, len(entries)+1, e.Seq, prev)
		}
		entries = append(entries, e)
		off += frameLen
	}
	return entries, nil
}

// JournalState is the scheduling state recovered from a replayed
// journal: what a successor coordinator needs beyond the result
// checkpoint.
type JournalState struct {
	// Quarantined holds workers whose breaker was tripped and not yet
	// readmitted at the time of the crash.
	Quarantined []string
	// Retries maps granule kind+"\x00"+key to the retry count charged
	// so far, so budgets carry across the restart.
	Retries map[string]int
	// Completed holds kind+"\x00"+key for granules whose results were
	// accepted — the successor skips re-running these if the result
	// checkpoint confirms it has their values.
	Completed map[string]bool
	// LastSeq is the sequence number of the final replayed record.
	LastSeq uint64
}

// GranuleKey builds the kind+key composite used by JournalState maps.
func GranuleKey(kind, key string) string { return kind + "\x00" + key }

// RecoverState folds a replayed journal into the successor's starting
// state. Pure: the fold is a deterministic function of the entries.
func RecoverState(entries []Entry) *JournalState {
	st := &JournalState{
		Retries:   make(map[string]int),
		Completed: make(map[string]bool),
	}
	quarantined := make(map[string]bool)
	for _, e := range entries {
		st.LastSeq = e.Seq
		switch e.Op {
		case OpComplete:
			st.Completed[GranuleKey(e.Kind, e.Key)] = true
		case OpRequeue:
			k := GranuleKey(e.Kind, e.Key)
			if e.Retries > st.Retries[k] {
				st.Retries[k] = e.Retries
			}
		case OpQuarantine:
			quarantined[e.Worker] = true
		case OpReadmit:
			delete(quarantined, e.Worker)
		}
	}
	for name := range quarantined {
		st.Quarantined = append(st.Quarantined, name)
	}
	sort.Strings(st.Quarantined)
	return st
}
