// Package cpu models an out-of-order core at cycle granularity for the
// LPM reproduction, standing in for GEM5's detailed O3 CPU. What matters
// for LPM is faithfully generating the *concurrency-limited memory request
// stream* and accounting stall/overlap cycles:
//
//   - the issue width bounds dispatch and wakeup bandwidth,
//   - the instruction window (IW) bounds instructions simultaneously
//     pending execution, limiting memory-level parallelism,
//   - the reorder buffer (ROB) bounds total in-flight instructions and
//     forces in-order retirement, so a stalled memory op at its head
//     blocks the core — the data stall of Eq. (5),
//   - register dependences (including dependent/pointer-chasing loads)
//     serialise execution,
//   - the load/store queue bounds outstanding memory accesses.
//
// These are precisely the per-core parameters the paper's Table I sweeps
// (pipeline issue width, IW size, ROB size) plus the structures that feed
// C_H and C_M at the L1.
package cpu

import (
	"fmt"
	"math/bits"

	"lpm/internal/obs"
	"lpm/internal/trace"
)

// MemPort is the core's view of its L1 data cache. Access returns false
// when the request cannot be accepted this cycle (backpressure); done
// fires during a later cycle when the data is available.
type MemPort interface {
	Access(cycle uint64, addr uint64, write bool, done func(cycle uint64)) bool
}

// Config describes one core.
type Config struct {
	// Name labels the core in reports.
	Name string
	// IssueWidth is the dispatch/issue bandwidth per cycle (the paper's
	// "pipeline issue width").
	IssueWidth int
	// CommitWidth is the retire bandwidth per cycle; 0 means IssueWidth.
	CommitWidth int
	// ROBSize bounds in-flight (dispatched, unretired) instructions.
	ROBSize int
	// IWSize bounds dispatched-but-incomplete instructions (the
	// scheduler window).
	IWSize int
	// LSQSize bounds outstanding memory accesses; 0 means IWSize.
	LSQSize int
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("cpu: config has no name")
	case c.IssueWidth <= 0:
		return fmt.Errorf("cpu %s: issue width %d", c.Name, c.IssueWidth)
	case c.ROBSize <= 0:
		return fmt.Errorf("cpu %s: ROB size %d", c.Name, c.ROBSize)
	case c.IWSize <= 0:
		return fmt.Errorf("cpu %s: IW size %d", c.Name, c.IWSize)
	case c.CommitWidth < 0 || c.LSQSize < 0:
		return fmt.Errorf("cpu %s: negative width", c.Name)
	}
	return nil
}

// entry state.
const (
	stDispatched = iota // in ROB, waiting for operands or a port
	stExecuting         // latency counting down / memory outstanding
	stDone              // complete, awaiting in-order retirement
)

// robEntry is one in-flight instruction. Whether a dispatched entry's
// register dependence is satisfied lives in the core's readyBits bitmap,
// maintained by dispatch and wake.
type robEntry struct {
	in      trace.Instr
	seq     uint64
	state   uint8
	readyAt uint64 // completion cycle for compute ops

	// Dependence wakeup list: consumers blocked on this entry, as a
	// singly-linked chain of ROB slot indices (-1 ends the chain). An
	// entry waits on at most one producer, so it sits in at most one
	// chain; the chain is drained (and ready flags set) the moment the
	// producer completes, replacing a per-cycle dependence poll.
	firstWaiter int32
	nextWaiter  int32
}

// Stats accumulates core counters.
type Stats struct {
	// Cycles counts core ticks; Instructions counts retirements.
	Cycles       uint64
	Instructions uint64
	// MemInstructions counts retired loads+stores.
	MemInstructions uint64
	// StallCycles counts cycles with zero retirements while the ROB was
	// non-empty; MemStallCycles is the subset where the ROB head was an
	// incomplete memory access — the paper's data stall time.
	StallCycles    uint64
	MemStallCycles uint64
	// EmptyCycles counts cycles with an empty ROB (startup only, in
	// practice).
	EmptyCycles uint64
	// MemActiveCycles counts cycles with >= 1 outstanding memory access;
	// OverlapCycles is the subset where computation also progressed
	// (a compute op executing or an instruction retired).
	MemActiveCycles uint64
	OverlapCycles   uint64
	// LSQFullEvents and RejectedAccesses count structural stalls at the
	// memory interface.
	LSQFullEvents    uint64
	RejectedAccesses uint64
}

// Sub returns the counter-wise difference s - o, for windowed deltas of
// cumulative counters (o must be an earlier snapshot of the same core).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Cycles:           s.Cycles - o.Cycles,
		Instructions:     s.Instructions - o.Instructions,
		MemInstructions:  s.MemInstructions - o.MemInstructions,
		StallCycles:      s.StallCycles - o.StallCycles,
		MemStallCycles:   s.MemStallCycles - o.MemStallCycles,
		EmptyCycles:      s.EmptyCycles - o.EmptyCycles,
		MemActiveCycles:  s.MemActiveCycles - o.MemActiveCycles,
		OverlapCycles:    s.OverlapCycles - o.OverlapCycles,
		LSQFullEvents:    s.LSQFullEvents - o.LSQFullEvents,
		RejectedAccesses: s.RejectedAccesses - o.RejectedAccesses,
	}
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Fmem returns the fraction of retired instructions accessing memory
// (the paper's f_mem).
func (s Stats) Fmem() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.MemInstructions) / float64(s.Instructions)
}

// OverlapRatio returns the computation/memory overlap ratio of Eq. (8):
// overlapped cycles over total memory access cycles.
func (s Stats) OverlapRatio() float64 {
	if s.MemActiveCycles == 0 {
		return 0
	}
	return float64(s.OverlapCycles) / float64(s.MemActiveCycles)
}

// DataStallPerInstr returns measured memory stall cycles per retired
// instruction — the quantity Eq. (12)/(13) model.
func (s Stats) DataStallPerInstr() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.MemStallCycles) / float64(s.Instructions)
}

// CycleClass classifies what a core did in its most recent Tick — the
// per-cycle input of the time-series stall attribution. The chip refines
// CycleMemStall into a per-layer bucket using the hierarchy's occupancy
// probes.
type CycleClass uint8

// Cycle classes, set by Tick.
const (
	// CycleOff: the core is halted and drained; it did not consume the
	// cycle (attributed as empty time by the chip).
	CycleOff CycleClass = iota
	// CycleBusy: at least one instruction retired.
	CycleBusy
	// CycleEmpty: zero retirements with an empty ROB.
	CycleEmpty
	// CycleComputeStall: zero retirements, non-memory (or completed)
	// instruction at ROB head.
	CycleComputeStall
	// CycleMemStall: zero retirements, incomplete memory access at ROB
	// head — the data-stall cycle of Eq. (5).
	CycleMemStall
)

// Core is a cycle-driven out-of-order core. Create with New, then call
// Tick once per cycle before the caches.
type Core struct {
	cfg Config
	gen trace.Generator
	mem MemPort

	rob     []robEntry
	head    int
	count   int
	headSeq uint64 // seq of rob[head]
	nextSeq uint64

	// Scheduler worklists, so Tick touches only entries that can act
	// instead of walking the whole ROB. readyBits is a bitmap over ROB
	// slots marking dispatched entries whose dependence is satisfied
	// (the issue candidates); iterating it in ring order from head
	// visits them oldest-first, exactly the priority of a full ROB
	// scan, in O(words + candidates) per cycle. execComp holds the
	// stExecuting compute slots (pending completions). Both are exact:
	// a slot is marked/listed while and only while in the named state,
	// and a ROB slot is reused only after its occupant retired from
	// stDone, which neither tracks.
	readyBits []uint64
	execComp  []int32
	readyCnt  int // set bits in readyBits

	// memDone[i] is the completion callback for a memory op in ROB slot
	// i, built once at construction so issuing allocates no closure. A
	// slot's callback is armed by at most one access at a time: the
	// occupant cannot retire (and the slot cannot be reused) before its
	// fill fires and marks it done.
	memDone []func(cycle uint64)

	inIW   int // dispatched but not complete
	inLSQ  int // memory accesses outstanding
	halted bool

	st        Stats
	lastClass CycleClass
	ob        *coreObs
}

// coreObs holds the core's registry handles (nil when unobserved).
type coreObs struct {
	instructions, cycles, stalls, memStalls, lsqFull, rejected *obs.Counter
	ipc                                                        *obs.Gauge
	robOcc                                                     *obs.Histogram
}

// AttachObs registers this core's metrics under prefix (e.g. "cpu.0") in
// r. A nil registry leaves the core unobserved.
func (c *Core) AttachObs(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	n := c.cfg.ROBSize + 1
	if n > 32 {
		n = 32
	}
	c.ob = &coreObs{
		instructions: r.Counter(prefix + ".instructions"),
		cycles:       r.Counter(prefix + ".cycles"),
		stalls:       r.Counter(prefix + ".stalls"),
		memStalls:    r.Counter(prefix + ".mem_stalls"),
		lsqFull:      r.Counter(prefix + ".lsq_full"),
		rejected:     r.Counter(prefix + ".rejected_accesses"),
		ipc:          r.Gauge(prefix + ".ipc"),
		robOcc:       r.Histogram(prefix+".rob_occupancy", 0, float64(c.cfg.ROBSize+1), n),
	}
}

// PublishObs copies the accumulated Stats into the attached registry;
// call before snapshotting. No-op when unobserved.
func (c *Core) PublishObs() {
	if c.ob == nil {
		return
	}
	c.ob.instructions.Set(c.st.Instructions)
	c.ob.cycles.Set(c.st.Cycles)
	c.ob.stalls.Set(c.st.StallCycles)
	c.ob.memStalls.Set(c.st.MemStallCycles)
	c.ob.lsqFull.Set(c.st.LSQFullEvents)
	c.ob.rejected.Set(c.st.RejectedAccesses)
	c.ob.ipc.Set(c.st.IPC())
}

// New builds a core running gen against mem. It panics on invalid
// configuration.
func New(cfg Config, gen trace.Generator, mem MemPort) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.CommitWidth == 0 {
		cfg.CommitWidth = cfg.IssueWidth
	}
	if cfg.LSQSize == 0 {
		cfg.LSQSize = cfg.IWSize
	}
	c := &Core{
		cfg: cfg, gen: gen, mem: mem,
		rob:       make([]robEntry, cfg.ROBSize),
		readyBits: make([]uint64, (cfg.ROBSize+63)/64),
		execComp:  make([]int32, 0, cfg.ROBSize),
		memDone:   make([]func(cycle uint64), cfg.ROBSize),
	}
	for i := range c.memDone {
		e := &c.rob[i]
		c.memDone[i] = func(uint64) {
			e.state = stDone
			c.inIW--
			c.inLSQ--
			c.wake(e)
		}
	}
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Stats returns the counters.
func (c *Core) Stats() Stats { return c.st }

// ResetCounters zeroes the counters while keeping pipeline state.
func (c *Core) ResetCounters() { c.st = Stats{} }

// Retired returns the retired instruction count.
func (c *Core) Retired() uint64 { return c.st.Instructions }

// FunctionalNext draws the core's next instruction without touching
// pipeline state — the functional tier's fetch. The chip uses it to
// advance the instruction stream (and warm the memory hierarchy) while
// the detailed pipeline is drained.
func (c *Core) FunctionalNext() trace.Instr { return c.gen.Next() }

// Halt stops fetching new instructions; in-flight ones drain.
func (c *Core) Halt() { c.halted = true }

// Halted reports whether the core has stopped fetching.
func (c *Core) Halted() bool { return c.halted }

// Busy reports whether instructions are still in flight.
func (c *Core) Busy() bool { return c.count > 0 }

// LastClass returns the classification of the core's most recent cycle
// (CycleOff before the first Tick or once drained).
func (c *Core) LastClass() CycleClass { return c.lastClass }

// ROBOccupancy returns the current in-flight instruction count, the
// time-series ROB occupancy probe.
func (c *Core) ROBOccupancy() int { return c.count }

// IWOccupancy returns the dispatched-but-incomplete instruction count,
// the instruction-window occupancy probe.
func (c *Core) IWOccupancy() int { return c.inIW }

// at returns the ROB entry holding seq; the caller guarantees it is in
// flight.
func (c *Core) at(seq uint64) *robEntry {
	idx := c.head + int(seq-c.headSeq)
	if idx >= len(c.rob) {
		idx -= len(c.rob)
	}
	return &c.rob[idx]
}

// depReady reports whether e's register dependence is satisfied. It is
// the reference predicate: the hot paths read the cached e.ready flag,
// which dispatch seeds with this value and wake keeps current (the
// predicate is monotone — a producer never becomes un-done).
func (c *Core) depReady(e *robEntry) bool {
	if e.in.Dep == 0 || uint64(e.in.Dep) > e.seq {
		return true // no producer, or it would precede the stream
	}
	dep := e.seq - uint64(e.in.Dep)
	if dep < c.headSeq {
		return true // producer already retired
	}
	return c.at(dep).state == stDone
}

// setReady / clearReady maintain the issue-candidate bitmap.
func (c *Core) setReady(idx int32) {
	c.readyBits[idx>>6] |= 1 << uint(idx&63)
	c.readyCnt++
}

func (c *Core) clearReady(idx int) {
	c.readyBits[idx>>6] &^= 1 << uint(idx&63)
	c.readyCnt--
}

// wake marks every consumer waiting on e ready and empties e's chain.
// Call exactly when e transitions to stDone (compute completion or
// memory fill); the chain is then empty for the rest of the occupancy,
// so the slot recycles clean.
func (c *Core) wake(e *robEntry) {
	for w := e.firstWaiter; w >= 0; {
		c.setReady(w)
		we := &c.rob[w]
		w, we.nextWaiter = we.nextWaiter, -1
	}
	e.firstWaiter = -1
}

// issueRange performs the issue stage over the ready candidates in ROB
// slots [lo, hi), oldest-first (the caller splits the ring into at most
// two in-order ranges). Each word of the candidate bitmap is re-read
// after every visit, so a completion fired from inside a memory-port
// callback wakes later candidates exactly as a live in-order ROB scan
// would see them. Returns false once the issue budget is exhausted —
// the cutoff leaves the remaining candidates unvisited and uncharged,
// matching the full scan's early abort.
func (c *Core) issueRange(cycle uint64, lo, hi int, issued *int, computeExecuting *bool) bool {
	for wi := lo >> 6; wi<<6 < hi; wi++ {
		base := wi << 6
		mask := ^uint64(0)
		if base < lo {
			mask <<= uint(lo - base)
		}
		if hi-base < 64 {
			mask &= 1<<uint(hi-base) - 1
		}
		for {
			word := c.readyBits[wi] & mask
			if word == 0 {
				break
			}
			b := bits.TrailingZeros64(word)
			mask &^= 1 << uint(b)
			if *issued >= c.cfg.IssueWidth {
				return false
			}
			idx := base + b
			e := &c.rob[idx]
			if e.in.Kind == trace.Compute {
				e.state = stExecuting
				e.readyAt = cycle + uint64(e.in.Lat)
				*issued++
				*computeExecuting = true
				c.execComp = append(c.execComp, int32(idx))
				c.clearReady(idx)
				continue
			}
			// Memory operation: needs an LSQ slot and L1 acceptance.
			if c.inLSQ >= c.cfg.LSQSize {
				c.st.LSQFullEvents++
				continue
			}
			if !c.mem.Access(cycle, e.in.Addr, e.in.Kind == trace.Store, c.memDone[idx]) {
				c.st.RejectedAccesses++
				continue
			}
			e.state = stExecuting
			c.inLSQ++
			*issued++
			c.clearReady(idx)
		}
	}
	return true
}

// Tick advances the core one cycle.
func (c *Core) Tick(cycle uint64) {
	if c.halted && c.count == 0 {
		c.lastClass = CycleOff
		return // fully drained: the core is off, time no longer accrues
	}
	c.st.Cycles++

	// 1. Complete compute ops whose latency expired. (Memory ops complete
	// via the cache callback.) Same-cycle completions are independent, so
	// walking the worklist in issue order matches the ROB-order walk.
	computeExecuting := false
	if len(c.execComp) > 0 {
		w := 0
		for _, idx := range c.execComp {
			e := &c.rob[idx]
			if e.readyAt <= cycle {
				e.state = stDone
				c.inIW--
				c.wake(e)
				continue
			}
			computeExecuting = true
			c.execComp[w] = idx
			w++
		}
		c.execComp = c.execComp[:w]
	}

	// 2. Retire in order.
	retired := 0
	for retired < c.cfg.CommitWidth && c.count > 0 {
		e := &c.rob[c.head]
		if e.state != stDone {
			break
		}
		if e.in.Kind.IsMem() {
			c.st.MemInstructions++
		}
		c.head++
		if c.head == len(c.rob) {
			c.head = 0
		}
		c.headSeq++
		c.count--
		retired++
		c.st.Instructions++
	}

	// 3. Issue ready instructions to execution, oldest first. The
	// worklist holds the dispatched entries in program order, so the
	// walk visits exactly the entries the full ROB scan would, in the
	// same order; once the issue budget is spent the remainder is kept
	// unvisited (no structural-stall charges past the cutoff, as
	// before).
	if c.readyCnt > 0 { // nothing can issue (or stall-charge) otherwise
		issued := 0
		hi := c.head + c.count
		if hi <= len(c.rob) {
			c.issueRange(cycle, c.head, hi, &issued, &computeExecuting)
		} else if c.issueRange(cycle, c.head, len(c.rob), &issued, &computeExecuting) {
			c.issueRange(cycle, 0, hi-len(c.rob), &issued, &computeExecuting)
		}
	}

	// 4. Fetch/dispatch new instructions.
	if !c.halted {
		for d := 0; d < c.cfg.IssueWidth; d++ {
			if c.count >= c.cfg.ROBSize || c.inIW >= c.cfg.IWSize {
				break
			}
			tail := c.head + c.count
			if tail >= len(c.rob) {
				tail -= len(c.rob)
			}
			in := c.gen.Next()
			c.rob[tail] = robEntry{
				in: in, seq: c.nextSeq, state: stDispatched,
				firstWaiter: -1, nextWaiter: -1,
			}
			// Seed the dependence state: an issue candidate unless the
			// producer is still in flight and incomplete, in which case
			// join its wakeup chain (depReady is this logic,
			// slot-resolved).
			waiting := false
			if in.Dep != 0 && uint64(in.Dep) <= c.nextSeq {
				dep := c.nextSeq - uint64(in.Dep)
				if dep >= c.headSeq {
					pidx := c.head + int(dep-c.headSeq)
					if pidx >= len(c.rob) {
						pidx -= len(c.rob)
					}
					if p := &c.rob[pidx]; p.state != stDone {
						waiting = true
						c.rob[tail].nextWaiter = p.firstWaiter
						p.firstWaiter = int32(tail)
					}
				}
			}
			if !waiting {
				c.setReady(int32(tail))
			}
			c.nextSeq++
			c.count++
			c.inIW++
		}
	}

	// 5. Cycle accounting.
	if retired > 0 {
		c.lastClass = CycleBusy
	} else if c.count == 0 {
		c.st.EmptyCycles++
		c.lastClass = CycleEmpty
	} else {
		c.st.StallCycles++
		c.lastClass = CycleComputeStall
		head := &c.rob[c.head]
		if head.in.Kind.IsMem() && head.state != stDone {
			c.st.MemStallCycles++
			c.lastClass = CycleMemStall
		}
	}
	if c.inLSQ > 0 {
		c.st.MemActiveCycles++
		if computeExecuting || retired > 0 {
			c.st.OverlapCycles++
		}
	}
	if c.ob != nil {
		c.ob.robOcc.Observe(float64(c.count))
	}
}
