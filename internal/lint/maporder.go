package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzerMapOrder flags range statements over maps whose body feeds an
// order-sensitive sink: appending to a slice that is never sorted
// afterwards, writing output (fmt printing, Write*/Encode methods), or
// building a hash/memo key (parallel.KeyOf, fmt.Sprint*). Go randomises
// map iteration order, so any of these silently breaks bit-identical
// reports, obs snapshots and cross-driver memo hits. The compliant
// pattern is: collect keys, sort, iterate the sorted slice.
var analyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration feeding slices (unsorted), output writers or memo/hash keys; map order is nondeterministic",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(p, body)
			}
			return true
		})
	}
}

// checkMapRanges inspects one function body (not descending into nested
// function literals, which are visited on their own) for map ranges
// with order-sensitive sinks.
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	inspectSameFunc(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkRangeBody(p, body, rs)
		return true
	})
}

// checkRangeBody reports every order-sensitive sink inside one map
// range. Sinks inside nested function literals count too: a closure
// created per iteration still observes map order.
func checkRangeBody(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	info := p.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			// Builtin append: find the destination and check for a
			// subsequent sort in the same function.
			if dest := appendDest(call, rs); dest != "" && !sortedAfter(info, fnBody, rs, dest) {
				p.Reportf(call.Pos(),
					"append to %q in map-iteration order with no later sort of %q in this function; collect and sort keys first",
					dest, dest)
			}
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")):
			p.Reportf(call.Pos(), "fmt.%s inside a map range writes output in nondeterministic order; iterate sorted keys instead", fn.Name())
		case fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Sprint") || strings.HasPrefix(fn.Name(), "Append")):
			p.Reportf(call.Pos(), "fmt.%s inside a map range builds a string in nondeterministic order; iterate sorted keys instead", fn.Name())
		case strings.HasSuffix(fn.Pkg().Path(), "internal/parallel") && fn.Name() == "KeyOf":
			p.Reportf(call.Pos(), "parallel.KeyOf inside a map range folds map order into a memo key; memo keys must be order-independent (sort first)")
		case isOrderSensitiveMethod(info, call, fn):
			p.Reportf(call.Pos(), "%s inside a map range emits bytes in nondeterministic order; iterate sorted keys instead", fn.Name())
		}
		return true
	})
}

// orderSensitiveMethods are writer/hash/encoder methods whose call order
// is observable in the produced bytes.
var orderSensitiveMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Sum": true,
}

// isOrderSensitiveMethod reports whether call invokes a method whose
// name marks it as an ordered byte sink.
func isOrderSensitiveMethod(info *types.Info, call *ast.CallExpr, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return orderSensitiveMethods[fn.Name()]
}

// appendDest extracts the destination expression the append result is
// assigned to (the `x = append(x, ...)` idiom, rendered with
// types.ExprString so selector destinations like t.rows work); "" when
// the pattern is anything else. Destinations declared with := inside
// the range body are local to one iteration and therefore order-safe.
func appendDest(call *ast.CallExpr, rs *ast.RangeStmt) string {
	path, _ := pathToNode(rs.Body, call)
	for i := len(path) - 1; i >= 0; i-- {
		as, ok := path[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		for j, rhs := range as.Rhs {
			if !containsNode(rhs, call) {
				continue
			}
			if j >= len(as.Lhs) {
				continue
			}
			lhs := ast.Unparen(as.Lhs[j])
			if _, isIdent := lhs.(*ast.Ident); isIdent && as.Tok == token.DEFINE {
				return "" // iteration-local slice
			}
			if e, ok := lhs.(ast.Expr); ok {
				return types.ExprString(e)
			}
		}
	}
	return ""
}

// sortedAfter reports whether the function body contains, after the
// range statement, a sort call taking dest: sort.Strings/Ints/Float64s/
// Slice/SliceStable/Sort/Stable or slices.Sort*.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rs *ast.RangeStmt, dest string) bool {
	found := false
	inspectSameFunc(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		isSort := (fn.Pkg().Path() == "sort" && (fn.Name() == "Strings" || fn.Name() == "Ints" ||
			fn.Name() == "Float64s" || fn.Name() == "Slice" || fn.Name() == "SliceStable" ||
			fn.Name() == "Sort" || fn.Name() == "Stable")) ||
			(fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == dest || mentionsIdent(arg, dest) {
				found = true
			}
		}
		return true
	})
	return found
}

// pathToNode returns the ancestor chain from root down to target.
func pathToNode(root, target ast.Node) ([]ast.Node, bool) {
	var path []ast.Node
	var found bool
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == nil {
			if !found && len(path) > 0 {
				path = path[:len(path)-1]
			}
			return true
		}
		path = append(path, n)
		if n == target {
			found = true
			return false
		}
		return true
	})
	return path, found
}

// containsNode reports whether target occurs in root's subtree.
func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// mentionsIdent reports whether expr mentions an identifier named name.
func mentionsIdent(expr ast.Node, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
