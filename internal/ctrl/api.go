// Package ctrl is the fleet control plane of the LPM reproduction: a
// registry of concurrent simulation runs with a versioned JSON API
// (lpm-ctrl/v1) for submit/list/status/cancel, a scheduler enforcing
// per-tenant concurrency budgets on top of internal/parallel's worker
// budget, live timeline streaming over SSE with bounded per-subscriber
// rings (slow consumers drop windows, with drop accounting, instead of
// stalling the simulation), and a single fleet-wide Prometheus endpoint
// aggregating every run's observability snapshot plus the sweep
// fabric's coordinator telemetry.
//
// The package deliberately reuses the observability substrate the rest
// of the repo already has: each run publishes through a
// timeseries.Live (the same synchronised hand-off lpmrun -serve uses —
// expo.go here hosts those handlers so both binaries share one code
// path), and all control-plane metrics live in an internal/obs
// registry guarded by the registry mutex.
package ctrl

import (
	"fmt"
	"time"

	"lpm/internal/obs/timeseries"
	"lpm/internal/trace"
)

// APIVersion stamps every lpm-ctrl JSON response; bump on any
// incompatible change to the API document shapes.
const APIVersion = "lpm-ctrl/v1"

// RunState is a run's lifecycle state.
type RunState string

// Run lifecycle states. A run moves pending → running → one of the
// three terminal states; Cancel on a pending run goes straight to
// StateCancelled.
const (
	StatePending   RunState = "pending"
	StateRunning   RunState = "running"
	StateDone      RunState = "done"
	StateFailed    RunState = "failed"
	StateCancelled RunState = "cancelled"
)

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// RunSpec is a submitted run request: one workload simulated on the
// default single-core chip, mirroring lpmrun's flag set.
type RunSpec struct {
	// Tenant attributes the run for per-tenant concurrency budgeting
	// and fleet metric labels; empty means the "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Workload is a built-in workload profile name (lpmrun -list).
	Workload string `json:"workload"`
	// Instructions is the measured window length (0 = 30000).
	Instructions uint64 `json:"instructions,omitempty"`
	// Warmup is the discarded warm-up length (0 = 150000).
	Warmup uint64 `json:"warmup,omitempty"`
	// WarmupFast runs the warm-up in the functional tier.
	WarmupFast bool `json:"warmup_fast,omitempty"`
	// TSWindow is the timeline window width in cycles (0 = default).
	TSWindow uint64 `json:"ts_window,omitempty"`
	// Adaptive merges timeline windows into phase-aligned spans.
	Adaptive bool `json:"adaptive,omitempty"`
	// Watchdog is the no-progress cycle budget before a livelock
	// diagnostic (0 = off).
	Watchdog uint64 `json:"watchdog,omitempty"`
}

// Normalize fills defaults and validates the spec. It is called once at
// submit time so a bad request fails the API call, not the run.
func (s *RunSpec) Normalize() error {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Workload == "" {
		return fmt.Errorf("ctrl: run spec missing workload")
	}
	if _, err := trace.ProfileByName(s.Workload); err != nil {
		return fmt.Errorf("ctrl: %w", err)
	}
	if s.Instructions == 0 {
		s.Instructions = 30000
	}
	if s.Warmup == 0 {
		s.Warmup = 150000
	}
	return nil
}

// RunStatus is the API view of one run.
type RunStatus struct {
	// API is APIVersion.
	API string `json:"api"`
	// ID is the registry-assigned run identifier ("r-1", "r-2", ...).
	ID string `json:"id"`
	// State is the run's lifecycle state.
	State RunState `json:"state"`
	// Spec echoes the normalized submission.
	Spec RunSpec `json:"spec"`
	// Error carries the failure or cancellation cause in terminal
	// states.
	Error string `json:"error,omitempty"`
	// Windows is the number of timeline windows published so far.
	Windows int `json:"windows"`
	// Submitted, Started and Finished are wall-clock lifecycle stamps;
	// zero-valued ones are omitted.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
}

// RunList is the GET /api/v1/runs response.
type RunList struct {
	// API is APIVersion.
	API string `json:"api"`
	// Runs lists every known run in submission order.
	Runs []RunStatus `json:"runs"`
}

// apiError is the JSON error envelope.
type apiError struct {
	API   string `json:"api"`
	Error string `json:"error"`
}

// TimelineSchema versions the /timeline JSON document (shared with
// lpmrun -serve).
const TimelineSchema = "lpm-timeline/v1"

// TimelineDoc is the /timeline response envelope.
type TimelineDoc struct {
	// Schema is TimelineSchema.
	Schema string `json:"schema"`
	// Done reports whether the simulation has finished.
	Done bool `json:"done"`
	// Series is the windowed timeline published so far.
	Series timeseries.Series `json:"series"`
}
