package dram

// Fast-forward hooks (see chip/fastforward.go). The controller is
// quiescent when every channel queue is empty: nothing schedules, no
// row state changes. Scheduled completions (pend) are allowed — their
// fire cycles are exposed via NextEvent — and the per-cycle Stats they
// imply (active cycles, bus-busy cycles draining as bursts end) are
// accrued in closed form by AdvanceCycles.

// Quiescent reports whether the next Tick would start no request.
func (d *DRAM) Quiescent(now uint64) bool {
	_ = now
	for i := range d.channels {
		if len(d.channels[i].queue) > 0 {
			return false
		}
	}
	return true
}

// NextEvent returns the earliest scheduled completion cycle, or
// ^uint64(0) when none is outstanding.
func (d *DRAM) NextEvent() uint64 {
	ev := ^uint64(0)
	for i := range d.pend {
		if d.pend[i].at < ev {
			ev = d.pend[i].at
		}
	}
	return ev
}

// AdvanceCycles accrues n quiescent cycles (now+1 .. now+n) in bulk.
// ActiveCycles counts every jumped cycle while completions are
// outstanding; each channel's bus stays busy until its busUntil stamp,
// contributing clamp(busUntil-now-1, 0, n) cycles.
func (d *DRAM) AdvanceCycles(now, n uint64) {
	d.now = now + n
	if len(d.pend) > 0 {
		d.st.ActiveCycles += n
	}
	for ci := range d.channels {
		if bu := d.channels[ci].busUntil; bu > now+1 {
			busy := bu - now - 1
			if busy > n {
				busy = n
			}
			d.st.BusBusyCycles += busy
		}
	}
	if d.ob != nil {
		d.ob.queueOcc.ObserveN(0, n)
	}
}
