package main

// Multi-process acceptance test for the sweep fabric: a real lpmreport
// coordinator sharding its simulations across real lpmworker processes
// over loopback TCP, compared byte-for-byte against the serial run. This
// is the whole tentpole contract in one test — separate processes,
// separate memories, one wire — so it builds the actual lpmworker binary
// rather than simulating workers in-process.

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lpm/internal/parallel"
)

// buildWorkerBinary compiles cmd/lpmworker into dir and returns the
// binary path.
func buildWorkerBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "lpmworker")
	out, err := exec.Command("go", "build", "-o", bin, "lpm/cmd/lpmworker").CombinedOutput()
	if err != nil {
		t.Fatalf("building lpmworker: %v\n%s", err, out)
	}
	return bin
}

// spawnWorkerProcs waits for the coordinator to publish its address in
// addrFile, then starts n lpmworker processes against it. The returned
// wait func reaps them after the coordinator run finishes (workers exit
// 0 when the coordinator disconnects).
func spawnWorkerProcs(t *testing.T, bin, addrFile string, n int) (wait func()) {
	t.Helper()
	procs := make(chan *exec.Cmd, n)
	logs := make([]bytes.Buffer, n)
	go func() {
		defer close(procs)
		var addr string
		deadline := time.Now().Add(30 * time.Second)
		for addr == "" && time.Now().Before(deadline) {
			if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
				addr = strings.TrimSpace(string(b))
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if addr == "" {
			return
		}
		for i := 0; i < n; i++ {
			cmd := exec.Command(bin, "-slots", "2", "-retry", "10s", addr)
			cmd.Stderr = &logs[i]
			if err := cmd.Start(); err == nil {
				procs <- cmd
			}
		}
	}()
	return func() {
		started := 0
		for cmd := range procs {
			started++
			done := make(chan error, 1)
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("lpmworker exited non-zero: %v\n%s", err, logs[started-1].String())
				}
			case <-time.After(30 * time.Second):
				_ = cmd.Process.Kill()
				t.Errorf("lpmworker never exited after the coordinator closed\n%s", logs[started-1].String())
			}
		}
		if started != n {
			t.Errorf("started %d of %d lpmworker processes", started, n)
		}
	}
}

// TestShardedReportAcrossProcessesMatchesSerial is the acceptance gate:
// `lpmreport -quick` sharded across two real worker processes must emit
// the byte-identical document the serial run emits.
func TestShardedReportAcrossProcessesMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs worker subprocesses")
	}
	t.Cleanup(parallel.ResetAllMemos)
	dir := t.TempDir()
	bin := buildWorkerBinary(t, dir)
	addrFile := filepath.Join(dir, "coordinator.addr")

	args := []string{"-quick", "-json", "-experiment", "table1"}

	parallel.ResetAllMemos()
	var serial, serialErr bytes.Buffer
	if err := run(context.Background(), args, &serial, &serialErr); err != nil {
		t.Fatalf("serial run: %v\n%s", err, serialErr.String())
	}

	parallel.ResetAllMemos()
	wait := spawnWorkerProcs(t, bin, addrFile, 2)
	shardedArgs := append(args,
		"-shard", "127.0.0.1:0",
		"-shard-addr-file", addrFile,
		"-shard-min", "2",
	)
	var sharded, shardedErr bytes.Buffer
	err := run(context.Background(), shardedArgs, &sharded, &shardedErr)
	wait()
	if err != nil {
		t.Fatalf("sharded run: %v\n%s", err, shardedErr.String())
	}

	if !bytes.Equal(serial.Bytes(), sharded.Bytes()) {
		t.Fatalf("sharded document differs from serial document:\n--- serial\n%s--- sharded\n%s",
			serial.String(), sharded.String())
	}
}
