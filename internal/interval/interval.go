// Package interval models the paper's measurement-interval study (§V):
// the LPM algorithm runs periodically, and a burst in an application's
// data access pattern is "perceived and processed timely" only if a
// measurement boundary falls early enough inside the burst to leave room
// for the reconfiguration (hardware approach, 4 cycles) or rescheduling
// (software approach, 40 cycles) to pay off before the burst ends.
//
// The paper reports that with a 10-cycle interval 96% of burst patterns
// are perceived and processed timely, 89% with 20 cycles, and 73% with
// the software approach's 40-cycle interval. This package provides both
// a closed-form perception-rate model and a Monte Carlo burst simulator;
// the default burst population is calibrated so the closed form
// reproduces the paper's three rates exactly, and the simulator validates
// the closed form.
package interval

import (
	"fmt"

	"lpm/internal/stats"
)

// BurstClass is a population of bursts with a fixed duration (in cycles)
// and a relative weight.
type BurstClass struct {
	// Duration is the burst length in cycles.
	Duration uint64
	// Weight is the fraction of bursts in this class.
	Weight float64
}

// Profile is a mixture of burst classes; weights should sum to 1.
type Profile []BurstClass

// Validate reports the first problem with the profile, or nil.
func (p Profile) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("interval: empty burst profile")
	}
	sum := 0.0
	for _, c := range p {
		if c.Duration == 0 {
			return fmt.Errorf("interval: zero-length burst class")
		}
		if c.Weight < 0 {
			return fmt.Errorf("interval: negative weight")
		}
		sum += c.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("interval: weights sum to %v, want 1", sum)
	}
	return nil
}

// DefaultProfile is the burst population used by the reproduction:
// micro-bursts (8 cycles), short bursts (18), medium bursts (58) and
// long phases (1000). The weights solve the linear system that makes the
// closed-form perception rates match the paper's three data points
// exactly: 96% @ (10-cycle interval, 4-cycle reconfiguration), 89% @
// (20, 4), and 73% @ (40, 40).
func DefaultProfile() Profile {
	return Profile{
		{Duration: 8, Weight: 1.0 / 15},
		{Duration: 18, Weight: 0.17 / 0.9},
		{Duration: 58, Weight: 0.0262626},
		{Duration: 1000, Weight: 1 - 1.0/15 - 0.17/0.9 - 0.0262626},
	}
}

// Scenario is one sampling configuration.
type Scenario struct {
	// Name labels the scenario (e.g. "hw interval=10").
	Name string
	// Interval is the measurement period in cycles.
	Interval uint64
	// Cost is the reconfiguration (hardware) or rescheduling (software)
	// cost in cycles; a burst must outlive the detection point by at
	// least Cost to be processed timely.
	Cost uint64
}

// PaperScenarios returns the three configurations the paper reports:
// hardware reconfiguration (4-cycle cost) at 10- and 20-cycle intervals,
// and software scheduling (40-cycle cost) at a 40-cycle interval.
func PaperScenarios() []Scenario {
	return []Scenario{
		{Name: "hw interval=10", Interval: 10, Cost: 4},
		{Name: "hw interval=20", Interval: 20, Cost: 4},
		{Name: "sw interval=40", Interval: 40, Cost: 40},
	}
}

// PerceptionRate returns the closed-form probability that a burst drawn
// from p, with its start uniformly distributed relative to the sampling
// grid, is perceived and processed timely under s:
//
//	P = Σ_c w_c · min(max(D_c − Cost, 0), Interval) / Interval
//
// A burst is caught iff some grid point lands in [start, start+D−Cost];
// the distance from the start to the next grid point is uniform on
// [0, Interval).
func PerceptionRate(p Profile, s Scenario) float64 {
	if s.Interval == 0 {
		return 0
	}
	total := 0.0
	for _, c := range p {
		var usable uint64
		if c.Duration > s.Cost {
			usable = c.Duration - s.Cost
		}
		if usable > s.Interval {
			usable = s.Interval
		}
		total += c.Weight * float64(usable) / float64(s.Interval)
	}
	return total
}

// SimulateResult summarises a Monte Carlo run.
type SimulateResult struct {
	// Bursts is the number of bursts generated.
	Bursts int
	// Perceived is the number caught in time.
	Perceived int
}

// Rate returns the perceived fraction.
func (r SimulateResult) Rate() float64 {
	if r.Bursts == 0 {
		return 0
	}
	return float64(r.Perceived) / float64(r.Bursts)
}

// Simulate draws n bursts from p with uniformly random phase against the
// sampling grid of s and counts how many are perceived in time. It is the
// empirical check of PerceptionRate.
func Simulate(p Profile, s Scenario, n int, seed uint64) SimulateResult {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := stats.NewRNG(seed ^ 0xb1157)
	// Cumulative weights for class sampling.
	cum := make([]float64, len(p))
	acc := 0.0
	for i, c := range p {
		acc += c.Weight
		cum[i] = acc
	}
	var res SimulateResult
	for i := 0; i < n; i++ {
		u := rng.Float64() * acc
		cls := p[len(p)-1]
		for j, cw := range cum {
			if u <= cw {
				cls = p[j]
				break
			}
		}
		res.Bursts++
		// Phase: distance from burst start to the next sampling point.
		phase := rng.Float64() * float64(s.Interval)
		deadline := float64(cls.Duration) - float64(s.Cost)
		if deadline >= phase && deadline > 0 {
			res.Perceived++
		}
	}
	return res
}
