// Package quiet sits outside errcheck's cmd/root scope; dropped writes
// are tolerated in library code.
package quiet

import "fmt"

// Log prints best-effort.
func Log(args ...any) {
	fmt.Println(args...)
}
