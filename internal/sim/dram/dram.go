// Package dram models main memory timing for the LPM reproduction,
// standing in for the DRAMSim2 module the paper used with GEM5. It
// reproduces the properties the paper's measurements depend on: variable
// access latency (row-buffer hits vs closed rows vs row conflicts),
// per-bank parallelism, bounded per-channel queues, and data-bus
// contention — so the miss penalties observed by the cache analyzers are
// load- and pattern-dependent rather than constant.
//
// All timing parameters are expressed in CPU cycles.
package dram

import (
	"fmt"

	"lpm/internal/obs"
)

// Sched selects the memory controller's scheduling policy.
type Sched uint8

// Scheduling policies.
const (
	// FCFS serves each channel's queue strictly in order.
	FCFS Sched = iota
	// FRFCFS (first-ready, first-come-first-served) prefers row-buffer
	// hits, the standard high-performance policy.
	FRFCFS
)

// String implements fmt.Stringer.
func (s Sched) String() string {
	switch s {
	case FCFS:
		return "FCFS"
	case FRFCFS:
		return "FR-FCFS"
	default:
		return fmt.Sprintf("Sched(%d)", uint8(s))
	}
}

// Config describes the memory system.
type Config struct {
	// Name labels the memory in reports.
	Name string
	// Channels is the number of independent channels, each with its own
	// data bus and queue.
	Channels int
	// BanksPerChannel is the number of DRAM banks behind each channel.
	BanksPerChannel int
	// RowBlocks is the row-buffer size in cache blocks; consecutive
	// blocks share a row, so streaming enjoys row hits.
	RowBlocks uint64
	// TCL, TRCD, TRP are CAS, RAS-to-CAS and precharge latencies; TBurst
	// is the data transfer time occupying the channel bus.
	TCL, TRCD, TRP, TBurst int
	// QueueDepth bounds each channel's request queue.
	QueueDepth int
	// Scheduler selects FCFS or FR-FCFS.
	Scheduler Sched
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("dram: config has no name")
	case c.Channels <= 0:
		return fmt.Errorf("dram %s: channels %d", c.Name, c.Channels)
	case c.BanksPerChannel <= 0:
		return fmt.Errorf("dram %s: banks %d", c.Name, c.BanksPerChannel)
	case c.RowBlocks == 0:
		return fmt.Errorf("dram %s: zero row size", c.Name)
	case c.TCL <= 0 || c.TRCD <= 0 || c.TRP <= 0 || c.TBurst <= 0:
		return fmt.Errorf("dram %s: non-positive timing parameter", c.Name)
	case c.QueueDepth <= 0:
		return fmt.Errorf("dram %s: queue depth %d", c.Name, c.QueueDepth)
	}
	return nil
}

// DDR3 returns a default configuration loosely resembling one DDR3-1600
// channel pair viewed from a ~3 GHz core.
func DDR3(name string) Config {
	return Config{
		Name:            name,
		Channels:        2,
		BanksPerChannel: 8,
		RowBlocks:       128, // 8 KB rows of 64 B blocks
		TCL:             33,
		TRCD:            33,
		TRP:             33,
		TBurst:          8,
		QueueDepth:      32,
		Scheduler:       FRFCFS,
	}
}

// request is one queued memory operation.
type request struct {
	block uint64
	write bool
	src   int
	done  func(cycle uint64)
	at    uint64 // arrival cycle
}

// bank is one DRAM bank's row-buffer state.
type bank struct {
	openRow   uint64
	rowValid  bool
	busyUntil uint64
}

// channel is one memory channel.
type channel struct {
	queue    []request
	banks    []bank
	busUntil uint64
}

// pending is a scheduled completion.
type pending struct {
	done func(cycle uint64)
	at   uint64
}

// Stats counts memory events.
type Stats struct {
	// Reads and Writes count serviced requests.
	Reads, Writes uint64
	// RowHits, RowMisses, RowConflicts classify row-buffer outcomes.
	RowHits, RowMisses, RowConflicts uint64
	// Rejected counts requests refused because a channel queue was full.
	Rejected uint64
	// LatencySum accumulates read service latency (arrival to data) for
	// AvgReadLatency.
	LatencySum uint64
	// ActiveCycles counts cycles with any request queued or in service,
	// the denominator of the memory layer's APC.
	ActiveCycles uint64
	// BusBusyCycles accumulates, per cycle, the number of channel data
	// buses occupied by a burst — bus utilization is
	// BusBusyCycles / (cycles * channels).
	BusBusyCycles uint64
}

// Sub returns the counter-wise difference s - o, for windowed deltas of
// cumulative counters (o must be an earlier snapshot of the same memory).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:         s.Reads - o.Reads,
		Writes:        s.Writes - o.Writes,
		RowHits:       s.RowHits - o.RowHits,
		RowMisses:     s.RowMisses - o.RowMisses,
		RowConflicts:  s.RowConflicts - o.RowConflicts,
		Rejected:      s.Rejected - o.Rejected,
		LatencySum:    s.LatencySum - o.LatencySum,
		ActiveCycles:  s.ActiveCycles - o.ActiveCycles,
		BusBusyCycles: s.BusBusyCycles - o.BusBusyCycles,
	}
}

// APC returns requests serviced per memory-active cycle — the supply rate
// of the main-memory layer in the paper's LPM model (APC_3).
func (s Stats) APC() float64 {
	if s.ActiveCycles == 0 {
		return 0
	}
	return float64(s.Reads+s.Writes) / float64(s.ActiveCycles)
}

// AvgReadLatency returns the mean read latency in cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Reads)
}

// DRAM is the memory controller + devices. It implements the cache
// package's Lower interface. Create with New; call Tick once per cycle,
// after all caches.
type DRAM struct {
	cfg      Config
	channels []channel
	pend     []pending
	now      uint64
	st       Stats
	ob       *dramObs
	tr       *obs.Tracer
}

// dramObs holds the controller's registry handles (nil when unobserved).
type dramObs struct {
	reads, writes, rowHits, rowMisses, rowConflicts, rejected *obs.Counter
	rowHitRate, avgReadLatency                                *obs.Gauge
	queueOcc                                                  *obs.Histogram
}

// AttachObs registers this memory's metrics under prefix (e.g. "dram")
// in r. A nil registry leaves the controller unobserved.
func (d *DRAM) AttachObs(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	depth := d.cfg.QueueDepth*d.cfg.Channels + 1
	n := depth
	if n > 32 {
		n = 32
	}
	d.ob = &dramObs{
		reads:          r.Counter(prefix + ".reads"),
		writes:         r.Counter(prefix + ".writes"),
		rowHits:        r.Counter(prefix + ".row_hits"),
		rowMisses:      r.Counter(prefix + ".row_misses"),
		rowConflicts:   r.Counter(prefix + ".row_conflicts"),
		rejected:       r.Counter(prefix + ".rejected"),
		rowHitRate:     r.Gauge(prefix + ".row_hit_rate"),
		avgReadLatency: r.Gauge(prefix + ".avg_read_latency"),
		queueOcc:       r.Histogram(prefix+".queue_occupancy", 0, float64(depth), n),
	}
}

// AttachTracer routes request-lifecycle events ("read"/"write" spans,
// arrival to data-ready) into t. A nil tracer disables tracing.
func (d *DRAM) AttachTracer(t *obs.Tracer) { d.tr = t }

// PublishObs copies the accumulated Stats into the attached registry;
// call before snapshotting. No-op when unobserved.
func (d *DRAM) PublishObs() {
	if d.ob == nil {
		return
	}
	d.ob.reads.Set(d.st.Reads)
	d.ob.writes.Set(d.st.Writes)
	d.ob.rowHits.Set(d.st.RowHits)
	d.ob.rowMisses.Set(d.st.RowMisses)
	d.ob.rowConflicts.Set(d.st.RowConflicts)
	d.ob.rejected.Set(d.st.Rejected)
	if total := d.st.RowHits + d.st.RowMisses + d.st.RowConflicts; total > 0 {
		d.ob.rowHitRate.Set(float64(d.st.RowHits) / float64(total))
	}
	d.ob.avgReadLatency.Set(d.st.AvgReadLatency())
}

// New builds a DRAM from cfg; it panics on invalid configuration.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &DRAM{cfg: cfg, channels: make([]channel, cfg.Channels)}
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.BanksPerChannel)
	}
	return d
}

// Config returns the configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns the event counters.
func (d *DRAM) Stats() Stats { return d.st }

// ResetCounters zeroes the counters, keeping device state.
func (d *DRAM) ResetCounters() { d.st = Stats{} }

// Busy reports whether requests are queued or completions outstanding.
func (d *DRAM) Busy() bool {
	if len(d.pend) > 0 {
		return true
	}
	for i := range d.channels {
		if len(d.channels[i].queue) > 0 {
			return true
		}
	}
	return false
}

// QueuedRequests returns the number of requests currently waiting in
// channel queues — the bank-queue-depth probe of the time-series
// sampler and the queueing signal of the stall attribution.
func (d *DRAM) QueuedRequests() int {
	n := 0
	for i := range d.channels {
		n += len(d.channels[i].queue)
	}
	return n
}

// InFlight returns the number of scheduled completions not yet
// delivered — requests DRAM is actively servicing.
func (d *DRAM) InFlight() int { return len(d.pend) }

// Request implements cache.Lower; src is accepted for interface
// compatibility (the controller does not partition). A false return
// means the channel queue is full; retry next cycle.
func (d *DRAM) Request(cycle uint64, src int, block uint64, write bool, done func(cycle uint64)) bool {
	ch := &d.channels[block%uint64(d.cfg.Channels)]
	if len(ch.queue) >= d.cfg.QueueDepth {
		d.st.Rejected++
		return false
	}
	ch.queue = append(ch.queue, request{block: block, write: write, src: src, done: done, at: cycle})
	return true
}

// Tick advances the memory one cycle: fire due completions, then let each
// channel start at most one request.
func (d *DRAM) Tick(cycle uint64) {
	d.now = cycle

	// Completions.
	if len(d.pend) > 0 {
		keep := d.pend[:0]
		for _, p := range d.pend {
			if p.at <= cycle {
				if p.done != nil {
					p.done(cycle)
				}
			} else {
				keep = append(keep, p)
			}
		}
		d.pend = keep
	}

	active := len(d.pend) > 0
	for ci := range d.channels {
		d.serviceChannel(&d.channels[ci])
		if len(d.channels[ci].queue) > 0 {
			active = true
		}
		if d.channels[ci].busUntil > cycle {
			d.st.BusBusyCycles++
		}
	}
	if active {
		d.st.ActiveCycles++
	}
	if d.ob != nil {
		queued := 0
		for ci := range d.channels {
			queued += len(d.channels[ci].queue)
		}
		d.ob.queueOcc.Observe(float64(queued))
	}
}

// rowOf maps a block to its DRAM row.
func (d *DRAM) rowOf(block uint64) uint64 {
	return block / d.cfg.RowBlocks
}

// bankOf maps a block to a bank within its channel.
func (d *DRAM) bankOf(block uint64) int {
	return int((block / uint64(d.cfg.Channels)) % uint64(d.cfg.BanksPerChannel))
}

// serviceChannel starts at most one eligible request on ch.
func (d *DRAM) serviceChannel(ch *channel) {
	if len(ch.queue) == 0 {
		return
	}
	pick := -1
	if d.cfg.Scheduler == FRFCFS {
		// Prefer the oldest row-buffer hit on a free bank.
		for i, r := range ch.queue {
			b := &ch.banks[d.bankOf(r.block)]
			if b.busyUntil <= d.now && b.rowValid && b.openRow == d.rowOf(r.block) {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		// Oldest request whose bank is free.
		for i, r := range ch.queue {
			if ch.banks[d.bankOf(r.block)].busyUntil <= d.now {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return
	}
	r := ch.queue[pick]
	ch.queue = append(ch.queue[:pick], ch.queue[pick+1:]...)

	b := &ch.banks[d.bankOf(r.block)]
	row := d.rowOf(r.block)
	var access int
	switch {
	case b.rowValid && b.openRow == row:
		d.st.RowHits++
		access = d.cfg.TCL
	case !b.rowValid:
		d.st.RowMisses++
		access = d.cfg.TRCD + d.cfg.TCL
	default:
		d.st.RowConflicts++
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCL
	}
	b.openRow, b.rowValid = row, true

	// The data burst occupies the shared channel bus after the bank
	// access; bursts serialise on the bus.
	ready := d.now + uint64(access)
	if ch.busUntil > ready {
		ready = ch.busUntil
	}
	ready += uint64(d.cfg.TBurst)
	ch.busUntil = ready
	b.busyUntil = ready

	if r.done == nil {
		// Writeback: completes silently once scheduled.
		d.st.Writes++
		d.tr.Emit(d.cfg.Name, "write", r.src, r.at, ready, r.block)
		return
	}
	// Demand fetch (read, or read-for-ownership when write intent is
	// set): data returns to the requestor either way.
	d.st.Reads++
	d.st.LatencySum += ready - r.at
	d.tr.Emit(d.cfg.Name, "read", r.src, r.at, ready, r.block)
	d.pend = append(d.pend, pending{done: r.done, at: ready})
}

// Fixed is a fixed-latency, optionally bandwidth-limited memory used for
// unit tests and idealised configurations. It implements cache.Lower.
type Fixed struct {
	// Latency is the constant service time in cycles.
	Latency uint64
	// PerCycle bounds requests accepted per cycle (0 = unlimited).
	PerCycle int

	now      uint64
	accepted int
	pend     []pending
	count    uint64
}

// Request implements cache.Lower.
func (f *Fixed) Request(cycle uint64, src int, block uint64, write bool, done func(cycle uint64)) bool {
	if cycle != f.now {
		// Ticked lazily: Request may be called before Tick this cycle.
		f.now, f.accepted = cycle, 0
	}
	if f.PerCycle > 0 && f.accepted >= f.PerCycle {
		return false
	}
	f.accepted++
	f.count++
	if done != nil {
		f.pend = append(f.pend, pending{done: done, at: cycle + f.Latency})
	}
	return true
}

// Count returns the number of accepted requests.
func (f *Fixed) Count() uint64 { return f.count }

// Busy reports outstanding completions.
func (f *Fixed) Busy() bool { return len(f.pend) > 0 }

// Tick fires due completions.
func (f *Fixed) Tick(cycle uint64) {
	if cycle > f.now {
		f.now, f.accepted = cycle, 0
	}
	keep := f.pend[:0]
	for _, p := range f.pend {
		if p.at <= cycle {
			p.done(cycle)
		} else {
			keep = append(keep, p)
		}
	}
	f.pend = keep
}
