package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// analyzerFabricProto enforces the sharded-fabric purity contract: a
// granule handler registered with fabric.RegisterKind must be a pure
// function of its (kind, key, spec) inputs. The coordinator memoises
// and re-dispatches granules by content key — a handler that reads
// captured mutable state, package-level mutable variables, the wall
// clock or global randomness produces results that differ between
// workers and between runs, silently corrupting the sweep.
//
// The check walks everything reachable from each registered handler
// and reports, with the call chain:
//
//   - mutable free variables captured by a handler literal;
//   - reads of package-level mutable reference state (maps, slices,
//     pointers, channels) outside internal/fabric and internal/parallel
//     — the registry and memo machinery those packages own are the
//     sanctioned exceptions;
//   - wall-clock/randomness reads and os/net I/O anywhere in the
//     handler's reach.
var analyzerFabricProto = &Analyzer{
	Name:      "fabricproto",
	Doc:       "fabric.RegisterKind handlers must be pure functions of their spec: no captured mutable state, no global mutable reads, no clock/RNG/IO",
	RunModule: runFabricProto,
}

// fabricPureExempt are the subtrees whose internal state a handler may
// touch: the fabric registry itself and the parallel memo machinery.
var fabricPureExempt = []string{"internal/fabric", "internal/parallel"}

func runFabricProto(p *ModulePass) {
	handlers := registeredHandlers(p)
	for _, h := range handlers {
		if h.node.Lit != nil {
			reportCapturedState(p, h.node)
		}
		reached := p.Graph.Reach([]*FuncNode{h.node})
		ordered := make([]*FuncNode, 0, len(reached))
		for n := range reached {
			ordered = append(ordered, n)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })
		for _, n := range ordered {
			if matchAny(n.Pkg.Rel, fabricPureExempt) {
				continue
			}
			facts := factsOf(n)
			via := ""
			if reached[n].From != nil {
				via = " (reached via " + reached[n].Chain() + ")"
			}
			for _, s := range facts.WallClock {
				p.Reportf(s.Pos, "%s in fabric handler for kind %q%s: granule results must be pure functions of the spec", s.What, h.kind, via)
			}
			for _, s := range facts.IO {
				p.Reportf(s.Pos, "%s in fabric handler for kind %q%s: granule results must be pure functions of the spec", s.What, h.kind, via)
			}
			for _, s := range facts.GlobalReads {
				if !mutableGlobalSite(n, s) {
					continue
				}
				p.Reportf(s.Pos, "%s in fabric handler for kind %q%s: granule results must be pure functions of the spec", s.What, h.kind, via)
			}
		}
	}
}

// registeredHandler is one resolved RegisterKind call: the kind string
// (when constant) and the handler's graph node.
type registeredHandler struct {
	kind string
	node *FuncNode
}

// registeredHandlers finds every fabric.RegisterKind call site in the
// module and resolves its handler argument to a graph node: a function
// literal, a named function, or a method value.
func registeredHandlers(p *ModulePass) []registeredHandler {
	var out []registeredHandler
	for _, n := range p.Graph.Nodes() {
		info := n.Pkg.Info
		inspectSameFunc(n.Body(), func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Name() != "RegisterKind" || !isFabricPkg(fn.Pkg()) {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			kind := "?"
			if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil {
				kind = constStringValue(tv)
			}
			if hn := handlerNode(p.Graph, info, call.Args[1]); hn != nil {
				out = append(out, registeredHandler{kind: kind, node: hn})
			} else {
				p.Reportf(call.Args[1].Pos(), "fabric.RegisterKind handler for kind %q is not statically resolvable (stored function value) — register a literal or named function so purity can be checked", kind)
			}
			return true
		})
	}
	return out
}

// isFabricPkg reports whether pkg is the module's fabric package.
func isFabricPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "internal/fabric" || hasSuffixPath(path, "/internal/fabric")
}

func hasSuffixPath(path, suffix string) bool {
	return len(path) > len(suffix) && path[len(path)-len(suffix):] == suffix
}

// constStringValue renders a constant string type-and-value for
// messages, stripping the quotes go/constant adds.
func constStringValue(tv types.TypeAndValue) string {
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// handlerNode resolves a RegisterKind handler argument to its graph
// node: literals directly, identifiers/selectors through their object.
func handlerNode(g *CallGraph, info *types.Info, arg ast.Expr) *FuncNode {
	switch e := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return g.LitNode(e)
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return g.NodeOf(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return g.NodeOf(fn)
		}
	}
	return nil
}

// reportCapturedState flags mutable free variables a handler literal
// captures from its enclosing function: their values at registration
// time (or worse, at mutation time) leak into granule results.
func reportCapturedState(p *ModulePass, n *FuncNode) {
	info := n.Pkg.Info
	lit := n.Lit
	inspectSameFunc(lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		// Package-level vars are the GlobalReads fact's business.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		// Declared inside the literal (params included) is fine.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		p.Reportf(id.Pos(), "fabric handler captures variable %q from its enclosing scope: granule results must depend only on the spec argument", v.Name())
		return true
	})
}

// mutableGlobalSite reports whether a GlobalReads fact concerns a
// mutable reference type (map, slice, pointer, chan). Scalar and
// struct-valued package vars are still impure in principle, but the
// repo's convention is const-like configuration values; reference
// types are where registry state actually lives.
func mutableGlobalSite(n *FuncNode, s Site) bool {
	// Re-resolve the identifier at the site to get its type.
	var typ types.Type
	inspectSameFunc(n.Body(), func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok || id.Pos() != s.Pos {
			return true
		}
		if v, ok := n.Pkg.Info.Uses[id].(*types.Var); ok {
			typ = v.Type()
		}
		return false
	})
	if typ == nil {
		return false
	}
	switch typ.Underlying().(type) {
	case *types.Map, *types.Slice, *types.Pointer, *types.Chan:
		return true
	}
	return false
}
