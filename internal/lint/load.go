package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the full import path (module path + "/" + Rel).
	Path string
	// Rel is the module-relative directory ("" for the root package).
	Rel string
	// Dir is the absolute directory.
	Dir string
	// Fset is the module-wide file set (shared across packages).
	Fset *token.FileSet
	// Syntax holds the parsed files, sorted by filename.
	Syntax []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info

	// srcLines maps each file's path to its source split into lines,
	// used by the suppression-directive scanner.
	srcLines map[string][]string

	imports []string // module-internal import paths, for topo sort
}

// Module is the loaded module: every non-test package, type-checked in
// dependency order against a shared file set.
type Module struct {
	// Root is the absolute module root directory.
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset is the shared file set.
	Fset *token.FileSet
	// Packages lists every package in dependency order.
	Packages []*Package
}

// Load parses and type-checks every package under root (the directory
// containing go.mod). Test files (*_test.go), testdata, vendor and
// hidden directories are skipped: the linted surface is the shipped
// tree. tags are extra build tags for //go:build evaluation.
//
// Load fails if any file does not parse or any package does not
// type-check — the lint gate presumes a compiling tree.
func Load(root string, tags []string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}
	tagSet := buildTagSet(tags)
	fset := token.NewFileSet()

	dirs, err := packageDirs(absRoot)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*Package)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := parseDir(fset, absRoot, modPath, dir, tagSet)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable files
		}
		byPath[pkg.Path] = pkg
		pkgs = append(pkgs, pkg)
	}

	ordered, err := topoSort(pkgs, byPath)
	if err != nil {
		return nil, err
	}

	std := importer.ForCompiler(fset, "source", nil)
	imp := &moduleImporter{byPath: byPath, std: std}
	var typeErrs []string
	for _, pkg := range ordered {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if len(typeErrs) < 20 {
					typeErrs = append(typeErrs, err.Error())
				}
			},
		}
		tpkg, _ := conf.Check(pkg.Path, fset, pkg.Syntax, info)
		pkg.Types = tpkg
		pkg.Info = info
	}
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors:\n  %s", strings.Join(typeErrs, "\n  "))
	}
	return &Module{Root: absRoot, Path: modPath, Fset: fset, Packages: ordered}, nil
}

// moduleImporter resolves module-internal imports to the packages we
// type-checked ourselves and everything else through the stdlib source
// importer.
type moduleImporter struct {
	byPath map[string]*Package
	std    types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.byPath[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("lint: import cycle or unordered import of %q", path)
		}
		return p.Types, nil
	}
	return m.std.Import(path)
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// packageDirs walks root collecting directories that may hold Go
// packages, skipping hidden, vendor and testdata trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses dir's buildable non-test files into a Package (nil if
// the directory holds none).
func parseDir(fset *token.FileSet, root, modPath, dir string, tags map[string]bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	importPath := modPath
	if rel != "" {
		importPath = modPath + "/" + rel
	}

	pkg := &Package{
		Path: importPath, Rel: rel, Dir: dir, Fset: fset,
		srcLines: make(map[string][]string),
	}
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !filenameMatchesTarget(name) {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !constraintsSatisfied(src, tags) {
			continue
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed package names %q and %q", dir, pkgName, f.Name.Name)
		}
		pkg.Syntax = append(pkg.Syntax, f)
		pkg.srcLines[full] = strings.Split(string(src), "\n")
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == modPath || strings.HasPrefix(p, modPath+"/") {
				pkg.imports = append(pkg.imports, p)
			}
		}
	}
	if len(pkg.Syntax) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// topoSort orders packages so every module-internal dependency precedes
// its dependents.
func topoSort(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	ordered := make([]*Package, 0, len(pkgs))
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		}
		state[p.Path] = visiting
		for _, dep := range p.imports {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.Path] = done
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// buildTagSet assembles the tag universe for //go:build evaluation:
// user tags plus the host GOOS/GOARCH and compiler.
func buildTagSet(tags []string) map[string]bool {
	set := map[string]bool{runtime.GOOS: true, runtime.GOARCH: true, "gc": true}
	if runtime.GOOS == "linux" {
		set["unix"] = true
	}
	for _, t := range tags {
		if t = strings.TrimSpace(t); t != "" {
			set[t] = true
		}
	}
	return set
}

// constraintsSatisfied evaluates a file's //go:build line (if any,
// before the package clause) against the tag set. Release tags
// ("go1.N") always evaluate true.
func constraintsSatisfied(src []byte, tags map[string]bool) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return false // unparseable constraint: skip the file
		}
		return expr.Eval(func(tag string) bool {
			if strings.HasPrefix(tag, "go1.") {
				return true
			}
			return tags[tag]
		})
	}
	return true
}

// knownOS and knownArch drive _GOOS/_GOARCH filename filtering.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// filenameMatchesTarget applies Go's _GOOS/_GOARCH filename convention
// against the host platform.
func filenameMatchesTarget(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}
