package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestHitUnarmed(t *testing.T) {
	if err := Hit("any.point", "detail"); err != nil {
		t.Fatalf("unarmed Hit returned %v", err)
	}
}

func TestErrorRuleFiresAfterN(t *testing.T) {
	restore := Arm(NewPlan(1, Rule{Point: "p", After: 2, Msg: "boom"}))
	defer restore()
	for i := 0; i < 2; i++ {
		if err := Hit("p", "d"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	err := Hit("p", "d")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("third hit = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error %q lacks rule message", err)
	}
	// Times defaults to once: the rule must not fire again.
	if err := Hit("p", "d"); err != nil {
		t.Fatalf("rule fired twice: %v", err)
	}
	if got := Hits("p"); got != 4 {
		t.Fatalf("Hits = %d, want 4", got)
	}
}

func TestMatchRestrictsDetail(t *testing.T) {
	restore := Arm(NewPlan(1, Rule{Point: "p", Match: "429.mcf", Msg: "x"}))
	defer restore()
	if err := Hit("p", "410.bwaves"); err != nil {
		t.Fatalf("non-matching detail fired: %v", err)
	}
	if err := Hit("p", "429.mcf@step3"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching detail = %v, want ErrInjected", err)
	}
}

func TestPanicRule(t *testing.T) {
	restore := Arm(NewPlan(1, Rule{Point: "p", Kind: KindPanic, Msg: "die"}))
	defer restore()
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("recovered %v, want injected error", r)
		}
	}()
	_ = Hit("p", "d")
	t.Fatal("Hit did not panic")
}

// TestProbDeterministic pins that a probabilistic rule replays the same
// firing sequence for the same seed.
func TestProbDeterministic(t *testing.T) {
	fire := func(seed int64) []bool {
		restore := Arm(NewPlan(seed, Rule{Point: "p", Prob: 0.5, Times: 100}))
		defer restore()
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, Hit("p", "d") != nil)
		}
		return out
	}
	a, b, c := fire(7), fire(7), fire(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different firing sequences")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical sequences (suspicious PRNG)")
	}
	hits := 0
	for _, f := range a {
		if f {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times", hits, len(a))
	}
}

func TestFailingWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &FailingWriter{W: &buf, FailAfter: 10}
	if n, err := w.Write(make([]byte, 8)); n != 8 || err != nil {
		t.Fatalf("first write = %d, %v", n, err)
	}
	// Crosses the quota: short write of 2 bytes plus the injected error.
	n, err := w.Write(make([]byte, 8))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("boundary write = %d, %v", n, err)
	}
	if n, err := w.Write([]byte{1}); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-failure write = %d, %v", n, err)
	}
	if buf.Len() != 10 {
		t.Fatalf("sink holds %d bytes, want 10", buf.Len())
	}
}

func TestFlipBitAndTruncate(t *testing.T) {
	data := []byte("checkpoint payload bytes")
	flipped := FlipBit(data, 3)
	if bytes.Equal(flipped, data) {
		t.Fatal("FlipBit changed nothing")
	}
	diff := 0
	for i := range data {
		if data[i] != flipped[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("FlipBit touched %d bytes, want 1", diff)
	}
	if !bytes.Equal(FlipBit(data, 3), flipped) {
		t.Fatal("FlipBit is not deterministic for a fixed seed")
	}
	if got := Truncate(data, 5); !bytes.Equal(got, data[:5]) {
		t.Fatalf("Truncate = %q", got)
	}
	if got := Truncate(data, 999); !bytes.Equal(got, data) {
		t.Fatalf("over-long Truncate = %q", got)
	}
}
