// Package parallel is the batch simulation runner shared by every
// experiment driver: a bounded worker pool whose Map fans independent
// jobs out over goroutines while preserving input order, plus a
// content-keyed, single-flight result memo (memo.go) so repeated
// evaluations of the same simulation are free across drivers.
//
// Every simulation in this repository is self-contained — each job
// builds its own trace.Generator and chip.Chip and shares nothing — so
// running jobs concurrently is bit-identical to running them serially.
// The determinism regression tests in the root package pin that
// guarantee.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of goroutines a Map call may use.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most workers jobs concurrently;
// workers <= 0 means runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// defaultPool serves Map calls that do not carry their own pool. It is
// swapped atomically so the -workers CLI flag can reconfigure it before
// the drivers start.
var defaultPool atomic.Pointer[Pool]

func init() { defaultPool.Store(NewPool(0)) }

// SetWorkers reconfigures the default pool; n <= 0 restores the
// GOMAXPROCS default.
func SetWorkers(n int) { defaultPool.Store(NewPool(n)) }

// Workers returns the default pool's concurrency bound.
func Workers() int { return defaultPool.Load().Workers() }

// Map runs fn over jobs on the default pool. See MapPool.
func Map[I, O any](jobs []I, fn func(I) (O, error)) ([]O, error) {
	return MapPool(defaultPool.Load(), jobs, fn)
}

// MapPool runs fn over every job on at most p.Workers() goroutines and
// returns the results in input order. A panic in fn is recovered and
// reported as that job's error rather than crashing (or deadlocking)
// the batch. If any job fails, MapPool still waits for the rest and
// then returns the lowest-indexed error, so the error surfaced is the
// same one the serial loop would have hit first.
func MapPool[I, O any](p *Pool, jobs []I, fn func(I) (O, error)) ([]O, error) {
	if p == nil {
		p = defaultPool.Load()
	}
	out := make([]O, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	errs := make([]error, len(jobs))
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("parallel: job %d panicked: %v\n%s", i, r, debug.Stack())
			}
		}()
		out[i], errs[i] = fn(jobs[i])
	}

	workers := min(p.Workers(), len(jobs))
	if workers <= 1 {
		for i := range jobs {
			run(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					run(i)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
