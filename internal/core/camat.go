// Package core implements the paper's analytical contribution: the
// C-AMAT model (Sun & Wang), the Layered Performance Matching (LPM) model
// relating per-layer request/supply mismatch to data stall time, and the
// LPMR-reduction algorithm of the paper's Fig. 3.
//
// Everything here is pure arithmetic over measured quantities; the
// measurements themselves come from the analyzer/sim packages (or any
// other source — the model is simulator-agnostic). Equation numbers in
// the documentation refer to the paper.
package core

import "fmt"

// CAMAT holds the five C-AMAT parameters of Eq. (2) for one memory layer.
type CAMAT struct {
	// H is the hit-operation time in cycles.
	H float64
	// CH is the hit concurrency C_H.
	CH float64
	// PMR is the pure miss rate pMR.
	PMR float64
	// PAMP is the average pure-miss penalty pAMP.
	PAMP float64
	// CM is the pure-miss concurrency C_M.
	CM float64
}

// Value evaluates Eq. (2): C-AMAT = H/C_H + pMR * pAMP/C_M. Layers with
// no concurrency measured (zero C_H or C_M) contribute with concurrency 1,
// matching the degenerate sequential case.
func (c CAMAT) Value() float64 {
	ch, cm := c.CH, c.CM
	if ch <= 0 {
		ch = 1
	}
	if cm <= 0 {
		cm = 1
	}
	return c.H/ch + c.PMR*c.PAMP/cm
}

// String implements fmt.Stringer.
func (c CAMAT) String() string {
	return fmt.Sprintf("C-AMAT{H=%.2f CH=%.2f pMR=%.4f pAMP=%.2f CM=%.2f} = %.4f",
		c.H, c.CH, c.PMR, c.PAMP, c.CM, c.Value())
}

// AMAT evaluates the conventional Eq. (1): AMAT = H + MR*AMP. It is the
// special case of C-AMAT without concurrency.
func AMAT(h, mr, amp float64) float64 { return h + mr*amp }

// Eta1 computes the concurrency/locality trimming factor of Eq. (4):
// η₁ = (pAMP₁/AMP₁) · (C_m₁/C_M₁). Zero denominators yield 0 (a layer
// with no misses trims everything).
func Eta1(pamp1, amp1, cm1Conventional, cm1Pure float64) float64 {
	if amp1 <= 0 || cm1Pure <= 0 {
		return 0
	}
	return (pamp1 / amp1) * (cm1Conventional / cm1Pure)
}

// RecursiveCAMAT evaluates Eq. (4): C-AMAT₁ = H₁/C_H₁ + pMR₁·η₁·C-AMAT₂.
// It expresses the upper layer's C-AMAT in terms of the lower layer's,
// with η₁ capturing how much of the lower layer's latency is hidden by
// hit/miss overlapping at the upper layer.
func RecursiveCAMAT(h1, ch1, pmr1, eta1, camat2 float64) float64 {
	if ch1 <= 0 {
		ch1 = 1
	}
	return h1/ch1 + pmr1*eta1*camat2
}
