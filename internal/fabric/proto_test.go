package fabric

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"lpm/internal/faultinject"
	"lpm/internal/resilience"
)

// sampleMsgs covers every message type in both directions with
// realistic field mixes.
func sampleMsgs() []Msg {
	return []Msg{
		{Type: MsgHello, Proto: ProtoVersion, Worker: "w0", Slots: 4},
		{Type: MsgWelcome, Proto: ProtoVersion},
		{Type: MsgWork, ID: 7, Kind: "explore.sim", Key: "k|1|2", Spec: json.RawMessage(`{"Point":{"IssueWidth":2}}`)},
		{Type: MsgResult, ID: 7, Value: json.RawMessage(`{"CPIexe":0.5}`)},
		{Type: MsgResult, ID: 9, Error: "simulate 410.bwaves: livelock"},
		{Type: MsgCacheGet, ID: 3, Key: "k|a"},
		{Type: MsgCacheValue, ID: 3, Found: true, Value: json.RawMessage(`1.25`)},
		{Type: MsgCacheValue, ID: 4},
	}
}

// TestFrameRoundTrip proves Write→Read is the identity for every
// message type, including several frames back to back on one stream.
func TestFrameRoundTrip(t *testing.T) {
	msgs := sampleMsgs()
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("WriteFrame(%s): %v", m.Type, err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d round trip:\n got %#v\nwant %#v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("exhausted stream: got %v, want io.EOF", err)
	}
}

// TestFrameDecodeRejects pins the decoder's behaviour on the classic
// corruptions: truncation at every interesting boundary, bad magic,
// oversized declared length, and a flipped payload bit. Every rejection
// must wrap resilience.ErrCorruptCheckpoint (except mid-frame EOF,
// which is an unexpected-EOF transport error).
func TestFrameDecodeRejects(t *testing.T) {
	frame, err := EncodeFrame(Msg{Type: MsgWork, ID: 1, Kind: "k", Spec: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated header", func(t *testing.T) {
		_, err := ReadFrame(bytes.NewReader(frame[:resilience.EnvelopeHeaderSize-1]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("got %v, want unexpected EOF", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		_, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("got %v, want unexpected EOF", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[0] ^= 0xff
		_, err := ReadFrame(bytes.NewReader(bad))
		if !errors.Is(err, resilience.ErrCorruptCheckpoint) {
			t.Fatalf("got %v, want ErrCorruptCheckpoint", err)
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		binary.LittleEndian.PutUint64(bad[8:], MaxFrame+1)
		_, err := ReadFrame(bytes.NewReader(bad))
		if !errors.Is(err, resilience.ErrCorruptCheckpoint) {
			t.Fatalf("got %v, want ErrCorruptCheckpoint", err)
		}
	})
	t.Run("flipped payload bit", func(t *testing.T) {
		bad := faultinject.FlipBit(frame, 1)
		// Re-flip if the corruption landed in the header's first 24
		// bytes: this subtest is about the CRC catching payload damage.
		if bytes.Equal(bad[resilience.EnvelopeHeaderSize:], frame[resilience.EnvelopeHeaderSize:]) {
			bad = append([]byte(nil), frame...)
			bad[resilience.EnvelopeHeaderSize] ^= 0x01
		}
		_, err := ReadFrame(bytes.NewReader(bad))
		if !errors.Is(err, resilience.ErrCorruptCheckpoint) {
			t.Fatalf("got %v, want ErrCorruptCheckpoint", err)
		}
	})
}

// TestFrameTornWrite proves the "fabric.frame.write" failpoint tears a
// frame exactly the way a killed sender would: the reader sees an
// unexpected EOF, never a misparse.
func TestFrameTornWrite(t *testing.T) {
	defer faultinject.Arm(faultinject.NewPlan(1, faultinject.Rule{
		Point: "fabric.frame.write",
		Match: MsgResult,
		Msg:   "torn result frame",
	}))()

	var buf bytes.Buffer
	err := WriteFrame(&buf, Msg{Type: MsgResult, ID: 1, Value: json.RawMessage(`42`)})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn write: got %v, want injected error", err)
	}
	full, err := EncodeFrame(Msg{Type: MsgResult, ID: 1, Value: json.RawMessage(`42`)})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(full)/2 {
		t.Fatalf("torn write left %d bytes, want %d (half of %d)", buf.Len(), len(full)/2, len(full))
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reading torn frame: got %v, want unexpected EOF", err)
	}
}

// FuzzFabricFrameDecode hardens ReadFrame against arbitrary streams:
// it must never panic, never allocate past the declared-length cap, and
// anything it accepts must re-encode to a frame that decodes to the
// same message.
func FuzzFabricFrameDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		frame, err := EncodeFrame(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)                                         // well-formed
		f.Add(frame[:len(frame)-2])                          // truncated payload
		f.Add(frame[:resilience.EnvelopeHeaderSize/2])       // truncated header
		f.Add(faultinject.FlipBit(frame, int64(len(frame)))) // CRC mismatch
		over := append([]byte(nil), frame...)
		binary.LittleEndian.PutUint64(over[8:], MaxFrame+1) // oversized length
		f.Add(over)
	}
	f.Add([]byte{})
	f.Add([]byte("LPMCKPT1"))
	f.Add([]byte(strings.Repeat("LPMCKPT1", 4)))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		frame, err := EncodeFrame(m)
		if err != nil {
			t.Fatalf("accepted message fails to re-encode: %v", err)
		}
		again, err := ReadFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("re-encode round trip:\n got %#v\nwant %#v", again, m)
		}
	})
}
