package analyzer

import (
	"math"
	"testing"
	"testing/quick"
)

// driveFig1 replays the exact schedule of the paper's Fig. 1 through an
// analyzer: five accesses, three-cycle hit operations, access 3 a miss
// with penalty cycles 6-8 (two of them pure), access 4 a miss whose single
// penalty cycle (6) is masked by access 5's hit activity.
func driveFig1() Params {
	a := New("L1")
	type ev struct {
		start, missAt, done uint64 // missAt 0 => hit
	}
	accs := []ev{
		{start: 1, done: 4},            // A1 hit, cycles 1-3
		{start: 1, done: 4},            // A2 hit, cycles 1-3
		{start: 3, missAt: 6, done: 9}, // A3 miss, hit 3-5, miss 6-8
		{start: 3, missAt: 6, done: 7}, // A4 miss, hit 3-5, miss 6
		{start: 4, done: 7},            // A5 hit, cycles 4-6
	}
	recs := make([]*Access, len(accs))
	for t := uint64(1); t <= 8; t++ {
		// Completions and transitions scheduled for the start of cycle t.
		for i, e := range accs {
			if e.missAt == t {
				a.ToMiss(recs[i], t)
			}
			if e.done == t {
				a.Done(recs[i], t)
			}
		}
		for i, e := range accs {
			if e.start == t {
				recs[i] = a.Start(t)
			}
		}
		a.Tick()
	}
	// A3 completes after the last counted cycle.
	a.Done(recs[2], 9)
	return a.Snapshot()
}

func TestFig1GoldenExample(t *testing.T) {
	p := driveFig1()

	if p.Accesses != 5 || p.Completed != 5 {
		t.Fatalf("accesses = %d/%d, want 5/5", p.Accesses, p.Completed)
	}
	if p.Misses != 2 {
		t.Fatalf("misses = %d, want 2", p.Misses)
	}
	if p.PureMisses != 1 {
		t.Fatalf("pure misses = %d, want 1 (only access 3)", p.PureMisses)
	}
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("H", p.H(), 3)
	check("CH", p.CH(), 2.5) // (2*2 + 4*1 + 3*2 + 1*1) / 6
	check("CM", p.CM(), 1)
	check("pAMP", p.PAMP(), 2)
	check("pMR", p.PMR(), 0.2)
	check("MR", p.MR(), 0.4)
	check("AMP", p.AMP(), 2) // (3 + 1)/2
	check("C-AMAT", p.CAMAT(), 1.6)
	check("AMAT", p.AMAT(), 3.8)
	check("APC", p.APC(), 5.0/8.0)
	check("1/APC == C-AMAT", 1/p.APC(), p.CAMAT())
}

func TestFig1EtaValue(t *testing.T) {
	p := driveFig1()
	// η = (pAMP/AMP) * (Cm/CM). Cm = 4 miss access-cycles / 3 miss-active
	// cycles.
	want := (2.0 / 2.0) * ((4.0 / 3.0) / 1.0)
	if math.Abs(p.Eta()-want) > 1e-12 {
		t.Fatalf("eta = %v, want %v", p.Eta(), want)
	}
}

func TestEmptyParamsAreZeroNotNaN(t *testing.T) {
	var p Params
	for name, v := range map[string]float64{
		"H": p.H(), "CH": p.CH(), "CM": p.CM(), "Cm": p.Cm(),
		"MR": p.MR(), "pMR": p.PMR(), "AMP": p.AMP(), "pAMP": p.PAMP(),
		"APC": p.APC(), "CAMAT": p.CAMAT(), "AMAT": p.AMAT(), "Eta": p.Eta(),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v on empty params", name, v)
		}
	}
}

func TestAllHitsNoPureMisses(t *testing.T) {
	a := New("L1")
	var recs []*Access
	// Three fully overlapping hits, 2-cycle hit latency.
	for t := uint64(1); t <= 2; t++ {
		if t == 1 {
			for i := 0; i < 3; i++ {
				recs = append(recs, a.Start(t))
			}
		}
		a.Tick()
	}
	for _, r := range recs {
		a.Done(r, 3)
	}
	p := a.Snapshot()
	if p.Misses != 0 || p.PureMisses != 0 {
		t.Fatal("hits misclassified as misses")
	}
	if p.CH() != 3 {
		t.Fatalf("CH = %v, want 3", p.CH())
	}
	if p.CAMAT() != 2.0/3.0 {
		t.Fatalf("C-AMAT = %v, want 2/3", p.CAMAT())
	}
}

func TestIsolatedMissIsPure(t *testing.T) {
	a := New("L1")
	r := a.Start(1)
	a.Tick() // cycle 1: hit phase
	a.ToMiss(r, 2)
	a.Tick() // cycle 2: pure miss
	a.Tick() // cycle 3: pure miss
	a.Done(r, 4)
	p := a.Snapshot()
	if p.PureMisses != 1 {
		t.Fatalf("pure misses = %d", p.PureMisses)
	}
	if !r.Pure() {
		t.Fatal("access not marked pure")
	}
	if p.PAMP() != 2 || p.AMP() != 2 {
		t.Fatalf("pAMP=%v AMP=%v, want 2/2", p.PAMP(), p.AMP())
	}
	// C-AMAT: H/CH = 1/1; pMR*pAMP/CM = 1*2/1 = 2; total 3 = AMAT.
	if p.CAMAT() != 3 || p.AMAT() != 3 {
		t.Fatalf("CAMAT=%v AMAT=%v, want 3/3", p.CAMAT(), p.AMAT())
	}
}

func TestMaskedMissIsNotPure(t *testing.T) {
	a := New("L1")
	m := a.Start(1)
	a.Tick() // cycle 1: m in hit phase
	a.ToMiss(m, 2)
	h := a.Start(2) // a hit overlaps the entire miss window
	a.Tick()        // cycle 2: hit activity masks the miss
	a.Done(m, 3)
	a.Done(h, 3)
	p := a.Snapshot()
	if p.Misses != 1 {
		t.Fatalf("misses = %d", p.Misses)
	}
	if p.PureMisses != 0 {
		t.Fatal("masked miss counted as pure")
	}
	if p.PureCycles != 0 {
		t.Fatal("pure cycles counted despite hit activity")
	}
}

func TestResetCountersPreservesInFlight(t *testing.T) {
	a := New("L1")
	r := a.Start(1)
	a.Tick()
	a.ToMiss(r, 2)
	a.Tick()
	a.ResetCounters()
	if a.InFlight() != 1 {
		t.Fatalf("in-flight = %d after reset", a.InFlight())
	}
	a.Tick() // cycle 3: still outstanding, pure
	a.Done(r, 4)
	p := a.Snapshot()
	if p.PureCycles != 1 {
		t.Fatalf("pure cycles after reset = %d, want 1", p.PureCycles)
	}
	if p.Misses != 1 {
		t.Fatalf("misses after reset = %d, want 1", p.Misses)
	}
	if p.Accesses != 0 {
		t.Fatalf("accesses after reset = %d, want 0 (started before reset)", p.Accesses)
	}
}

func TestToMissTwicePanics(t *testing.T) {
	a := New("L1")
	r := a.Start(1)
	a.ToMiss(r, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.ToMiss(r, 3)
}

func TestMissSetSwapRemoveKeepsIndices(t *testing.T) {
	a := New("L1")
	// Three concurrent misses; complete them in an order that exercises
	// the swap-remove bookkeeping.
	r1 := a.Start(1)
	r2 := a.Start(1)
	r3 := a.Start(1)
	a.Tick()
	a.ToMiss(r1, 2)
	a.ToMiss(r2, 2)
	a.ToMiss(r3, 2)
	a.Tick() // pure cycle with 3 outstanding
	a.Done(r1, 3)
	a.Tick()
	a.Done(r3, 4)
	a.Tick()
	a.Done(r2, 5)
	p := a.Snapshot()
	if p.Misses != 3 || p.PureMisses != 3 {
		t.Fatalf("misses=%d pure=%d, want 3/3", p.Misses, p.PureMisses)
	}
	if p.MissPenaltySum != 1+3+2 {
		t.Fatalf("penalty sum = %d, want 6", p.MissPenaltySum)
	}
	if a.InFlight() != 0 {
		t.Fatalf("in-flight = %d", a.InFlight())
	}
}

// randomAccess describes a scripted access for the property driver.
type randomAccess struct {
	Start   uint16
	HitLat  uint8
	Miss    bool
	Penalty uint8
}

// driveSchedule replays a set of scripted accesses through an analyzer and
// returns the drained snapshot.
func driveSchedule(accs []randomAccess) Params {
	a := New("prop")
	type live struct {
		rec    *Access
		missAt uint64
		doneAt uint64
	}
	lives := make([]live, len(accs))
	var horizon uint64
	for i, ac := range accs {
		start := uint64(ac.Start) + 1
		hitLat := uint64(ac.HitLat%7) + 1
		missAt := uint64(0)
		doneAt := start + hitLat
		if ac.Miss {
			missAt = start + hitLat
			doneAt = missAt + uint64(ac.Penalty%29) + 1
		}
		lives[i] = live{missAt: missAt, doneAt: doneAt}
		if doneAt > horizon {
			horizon = doneAt
		}
		_ = i
	}
	for t := uint64(1); t <= horizon; t++ {
		for i := range lives {
			if lives[i].missAt == t {
				a.ToMiss(lives[i].rec, t)
			}
			if lives[i].doneAt == t {
				a.Done(lives[i].rec, t)
			}
		}
		for i, ac := range accs {
			if uint64(ac.Start)+1 == t {
				lives[i].rec = a.Start(t)
			}
		}
		if t < horizon { // last "cycle" only processes completions
			a.Tick()
		}
	}
	return a.Snapshot()
}

func TestPropertyCAMATEqualsInverseAPC(t *testing.T) {
	f := func(accs []randomAccess) bool {
		if len(accs) == 0 || len(accs) > 64 {
			return true
		}
		p := driveSchedule(accs)
		if p.Completed != uint64(len(accs)) {
			return false
		}
		if p.ActiveCycles == 0 {
			return true
		}
		return math.Abs(p.CAMAT()-1/p.APC()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCAMATNeverExceedsAMAT(t *testing.T) {
	f := func(accs []randomAccess) bool {
		if len(accs) == 0 || len(accs) > 64 {
			return true
		}
		p := driveSchedule(accs)
		return p.CAMAT() <= p.AMAT()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPureSubsetOfMisses(t *testing.T) {
	f := func(accs []randomAccess) bool {
		if len(accs) == 0 || len(accs) > 64 {
			return true
		}
		p := driveSchedule(accs)
		return p.PureMisses <= p.Misses &&
			p.PureCycles <= p.MissActiveCycles &&
			p.PureAccessCycles <= p.MissAccessCycles &&
			p.PMR() <= p.MR()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMissAccountingConsistent(t *testing.T) {
	// With a consistent driver, the per-miss penalty sum equals the sum of
	// outstanding-miss populations over miss-active cycles.
	f := func(accs []randomAccess) bool {
		if len(accs) == 0 || len(accs) > 64 {
			return true
		}
		p := driveSchedule(accs)
		return p.MissAccessCycles == p.MissPenaltySum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyActiveCyclesDecomposition(t *testing.T) {
	// active = hit-active + pure: every active cycle either has hit
	// activity or is a pure-miss cycle.
	f := func(accs []randomAccess) bool {
		if len(accs) == 0 || len(accs) > 64 {
			return true
		}
		p := driveSchedule(accs)
		return p.ActiveCycles == p.HitActiveCycles+p.PureCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestParamsAdd(t *testing.T) {
	p := driveFig1()
	sum := p.Add(p)
	if sum.Accesses != 2*p.Accesses || sum.PureAccessCycles != 2*p.PureAccessCycles {
		t.Fatal("Add does not sum counters")
	}
	// Doubling all counters preserves every ratio.
	if math.Abs(sum.CAMAT()-p.CAMAT()) > 1e-12 {
		t.Fatal("Add changed C-AMAT of identical distributions")
	}
}

func TestParamsStringMentionsKeyFields(t *testing.T) {
	s := driveFig1().String()
	for _, frag := range []string{"C-AMAT=1.600", "AMAT=3.800", "pMR=0.2"} {
		if !contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
