package main

// Chaos test for the sharded checkpoint path: a coordinator fanning its
// simulations out to workers, losing one mid-granule, then dying itself
// mid-walk. The recovery contract is unchanged from the serial case —
// the checkpoint the interrupted run leaves behind must resume to the
// uninterrupted run's bytes — because granules are pure and the fabric
// fills the same memo the checkpoint persists.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lpm"
	"lpm/internal/fabric"
	"lpm/internal/faultinject"
	"lpm/internal/parallel"
)

// startShardWorkers launches n in-process fabric workers against the
// coordinator address published in addrFile (polled, since the
// coordinator binds ":0" after the workers start). The returned stop
// func cancels the workers and reports any worker failure.
func startShardWorkers(t *testing.T, addrFile string, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var addr string
		deadline := time.Now().Add(10 * time.Second)
		for addr == "" {
			if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
				addr = strings.TrimSpace(string(b))
				break
			}
			if time.Now().After(deadline) || ctx.Err() != nil {
				errs[0] = errors.New("coordinator address never appeared")
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				err := fabric.RunWorker(ctx, addr, fabric.WorkerOptions{
					Name:      fmt.Sprintf("chaos-%d", i),
					Slots:     2,
					DialRetry: 5 * time.Second,
				})
				if err != nil && !errors.Is(err, context.Canceled) {
					errs[i] = err
				}
			}(i)
		}
	}()
	return func() {
		cancel()
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("shard worker %d: %v", i, err)
			}
		}
	}
}

// shardArgs extends chaosArgs with the coordinator flag family.
func shardArgs(addrFile string, extra ...string) []string {
	return chaosArgs(append([]string{
		"-shard", "127.0.0.1:0",
		"-shard-addr-file", addrFile,
		"-shard-min", "2",
		"-shard-straggle", "-1s",
	}, extra...)...)
}

// TestChaosShardedCheckpointResumeBitIdentical is the full disaster: a
// sharded run loses a worker mid-granule (re-issued), then the
// coordinator itself dies mid-walk with -checkpoint armed. Resuming —
// serially, as a fresh process would — must reproduce the uninterrupted
// serial baseline byte for byte, with no cold start.
func TestChaosShardedCheckpointResumeBitIdentical(t *testing.T) {
	t.Cleanup(parallel.ResetAllMemos)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	addrFile := filepath.Join(dir, "coordinator.addr")

	// Uninterrupted serial baseline, memo-cold.
	parallel.ResetAllMemos()
	var base, baseErr bytes.Buffer
	if err := run(context.Background(), chaosArgs(), &base, &baseErr); err != nil {
		t.Fatalf("baseline: %v\n%s", err, baseErr.String())
	}

	// Sharded, doubly-faulted run: the first explore.sim granule kills
	// its worker mid-execution (the fabric must re-issue it to the
	// survivor), and the fourth evaluation kills the coordinator's walk.
	parallel.ResetAllMemos()
	restore := faultinject.Arm(faultinject.NewPlan(1,
		faultinject.Rule{Point: "fabric.worker.kill", Match: "explore.sim",
			Times: 1, Msg: "chaos: shard worker killed mid-granule"},
		faultinject.Rule{Point: "explore.evaluate", After: 3, Msg: "chaos kill"},
	))
	stopWorkers := startShardWorkers(t, addrFile, 2)
	var killed, killedErr bytes.Buffer
	err := run(context.Background(), shardArgs(addrFile, "-checkpoint", ckpt), &killed, &killedErr)
	stopWorkers()
	kills := faultinject.Hits("fabric.worker.kill")
	restore()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("interrupted sharded run: err = %v, want the injected fault\n%s", err, killedErr.String())
	}
	if kills == 0 {
		t.Fatal("no granule ever reached a shard worker: the kill fault never armed")
	}
	// The partial document contract holds under sharding too.
	var partial lpm.ExploreReport
	if err := json.Unmarshal(killed.Bytes(), &partial); err != nil {
		t.Fatalf("interrupted output is not valid JSON: %v\n%s", err, killed.String())
	}
	if !partial.Partial || partial.Error == "" {
		t.Fatalf("interrupted doc: partial=%v error=%q, want it marked partial with the cause",
			partial.Partial, partial.Error)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}

	// Resume with a cold memo and no fabric — a fresh serial process
	// picking up a sharded run's checkpoint.
	parallel.ResetAllMemos()
	var resumed, resumedErr bytes.Buffer
	if err := run(context.Background(), chaosArgs("-resume", ckpt), &resumed, &resumedErr); err != nil {
		t.Fatalf("resume: %v\n%s", err, resumedErr.String())
	}
	if strings.Contains(resumedErr.String(), "starting cold") {
		t.Fatalf("resume fell back to a cold start:\n%s", resumedErr.String())
	}
	if !bytes.Equal(base.Bytes(), resumed.Bytes()) {
		t.Fatalf("resumed output differs from the uninterrupted serial run:\n--- baseline\n%s--- resumed\n%s",
			base.String(), resumed.String())
	}
}

// TestChaosShardedRunMatchesSerial pins the plain sharded CLI path: the
// same flags run serial and sharded must emit identical documents.
func TestChaosShardedRunMatchesSerial(t *testing.T) {
	t.Cleanup(parallel.ResetAllMemos)
	addrFile := filepath.Join(t.TempDir(), "coordinator.addr")

	parallel.ResetAllMemos()
	var serial, serialErr bytes.Buffer
	if err := run(context.Background(), chaosArgs(), &serial, &serialErr); err != nil {
		t.Fatalf("serial run: %v\n%s", err, serialErr.String())
	}

	parallel.ResetAllMemos()
	stopWorkers := startShardWorkers(t, addrFile, 2)
	var sharded, shardedErr bytes.Buffer
	err := run(context.Background(), shardArgs(addrFile), &sharded, &shardedErr)
	stopWorkers()
	if err != nil {
		t.Fatalf("sharded run: %v\n%s", err, shardedErr.String())
	}

	if !bytes.Equal(serial.Bytes(), sharded.Bytes()) {
		t.Fatalf("sharded run differs from serial run:\n--- serial\n%s--- sharded\n%s",
			serial.String(), sharded.String())
	}
}
