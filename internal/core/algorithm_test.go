package core

import (
	"testing"
)

// mockTarget is a hand-scripted Target whose LPMRs respond multiplicatively
// to optimization steps. With CPIexe=1, Fmem=1, MR1=1, overlap=0.99 the
// thresholds come out T1 = Δ and LPMR1 = CAMAT1, LPMR2 = CAMAT2, making
// the scenarios easy to stage.
type mockTarget struct {
	camat1, camat2   float64
	l1Step, l2Step   float64 // multipliers applied per optimization
	reduceStep       float64 // multiplier applied per reduction
	l1Left, l2Left   int     // remaining steps before exhaustion
	reduceLeft       int
	l1Calls, l2Calls int
	reduceCalls      int
}

func (m *mockTarget) Measure() Measurement {
	return Measurement{
		CPIexe:       1,
		Fmem:         1,
		OverlapRatio: 0.99,
		CAMAT1:       m.camat1,
		CAMAT2:       m.camat2,
		MR1:          1,
		PMR1:         1,
		H1:           0.5,
		CH1:          1,
		PAMP1:        1,
		AMP1:         1,
		Cm1:          1,
		CM1:          1,
	}
}

func (m *mockTarget) OptimizeL1() bool {
	if m.l1Left <= 0 {
		return false
	}
	m.l1Left--
	m.l1Calls++
	m.camat1 *= m.l1Step
	return true
}

func (m *mockTarget) OptimizeL2() bool {
	if m.l2Left <= 0 {
		return false
	}
	m.l2Left--
	m.l2Calls++
	m.camat2 *= m.l2Step
	// L2 improvement also trims the penalty component of C-AMAT1.
	m.camat1 = 0.5 + (m.camat1-0.5)*m.l2Step
	return true
}

func (m *mockTarget) ReduceOverprovision() bool {
	if m.reduceLeft <= 0 {
		return false
	}
	m.reduceLeft--
	m.reduceCalls++
	m.camat1 *= m.reduceStep
	return true
}

// With η = 1, overlap = 0.99, Δ = 1: T1 = 1, T2 = 1 - 0.5 = 0.5.

func TestAlgorithmCaseSequenceBothThenL1(t *testing.T) {
	tgt := &mockTarget{
		camat1: 8, camat2: 2,
		l1Step: 0.85, l2Step: 0.6,
		l1Left: 100, l2Left: 100,
	}
	res := Run(tgt, AlgorithmConfig{Grain: FineGrain})
	if !res.Converged || !res.MetTarget {
		t.Fatalf("converged=%v met=%v", res.Converged, res.MetTarget)
	}
	if res.Final.LPMR1() > 1 {
		t.Fatalf("final LPMR1 = %v > T1", res.Final.LPMR1())
	}
	// The trace must start with Case I, move through Case II once L2
	// matches, and end with Case IV.
	if res.Steps[0].Case != CaseBoth {
		t.Fatalf("first case = %v", res.Steps[0].Case)
	}
	sawL1Only := false
	for _, s := range res.Steps {
		if s.Case == CaseL1Only {
			sawL1Only = true
		}
	}
	if !sawL1Only {
		t.Fatal("never entered Case II")
	}
	if last := res.Steps[len(res.Steps)-1].Case; last != CaseDone {
		t.Fatalf("last case = %v", last)
	}
	if tgt.l2Calls == 0 || tgt.l1Calls == 0 {
		t.Fatal("optimizers not invoked")
	}
	// Case II must not touch L2: L2 calls == number of CaseBoth steps.
	both := 0
	for _, s := range res.Steps {
		if s.Case == CaseBoth {
			both++
		}
	}
	if tgt.l2Calls != both {
		t.Fatalf("L2 called %d times across %d Case-I steps", tgt.l2Calls, both)
	}
}

func TestAlgorithmOverprovisionReduction(t *testing.T) {
	tgt := &mockTarget{
		camat1: 0.2, camat2: 0.1,
		reduceStep: 1.5, reduceLeft: 100,
	}
	res := Run(tgt, AlgorithmConfig{Grain: FineGrain, SlackFrac: 0.5})
	if !res.Converged || !res.MetTarget {
		t.Fatalf("converged=%v met=%v", res.Converged, res.MetTarget)
	}
	if tgt.reduceCalls == 0 {
		t.Fatal("never reduced overprovision")
	}
	// Final LPMR1 must sit in (T1-δ, T1]: (0.5, 1].
	if l := res.Final.LPMR1(); l <= 0.5 || l > 1 {
		t.Fatalf("final LPMR1 = %v outside (0.5, 1]", l)
	}
}

func TestAlgorithmReduceDisabled(t *testing.T) {
	tgt := &mockTarget{camat1: 0.2, camat2: 0.1, reduceStep: 1.5, reduceLeft: 100}
	res := Run(tgt, AlgorithmConfig{Grain: FineGrain, SlackFrac: 0.5, DisableReduce: true})
	if tgt.reduceCalls != 0 {
		t.Fatal("reduced despite DisableReduce")
	}
	if !res.Converged || !res.MetTarget {
		t.Fatal("should converge immediately via Case IV")
	}
	if len(res.Steps) != 1 || res.Steps[0].Case != CaseDone {
		t.Fatalf("steps = %+v", res.Steps)
	}
}

func TestAlgorithmExhaustedDesignSpace(t *testing.T) {
	tgt := &mockTarget{camat1: 50, camat2: 50, l1Step: 0.99, l2Step: 0.99, l1Left: 2, l2Left: 2}
	res := Run(tgt, AlgorithmConfig{Grain: FineGrain})
	if res.MetTarget {
		t.Fatal("cannot meet target with 2 weak steps")
	}
	if !res.Converged {
		t.Fatal("exhaustion should still report convergence (no further moves)")
	}
}

func TestAlgorithmMaxStepsBound(t *testing.T) {
	tgt := &mockTarget{camat1: 1e9, camat2: 1e9, l1Step: 0.999, l2Step: 0.999, l1Left: 1 << 30, l2Left: 1 << 30}
	res := Run(tgt, AlgorithmConfig{Grain: FineGrain, MaxSteps: 7})
	if len(res.Steps) != 7 {
		t.Fatalf("steps = %d, want 7", len(res.Steps))
	}
	if res.Converged {
		t.Fatal("should not report convergence at step cap")
	}
}

func TestAlgorithmCoarseGrainStopsEarlier(t *testing.T) {
	mk := func() *mockTarget {
		return &mockTarget{camat1: 50, camat2: 0.01, l1Step: 0.8, l1Left: 100, l2Left: 100}
	}
	fine := Run(mk(), AlgorithmConfig{Grain: FineGrain})
	coarse := Run(mk(), AlgorithmConfig{Grain: CoarseGrain})
	if !fine.MetTarget || !coarse.MetTarget {
		t.Fatal("both grains should converge")
	}
	if len(coarse.Steps) >= len(fine.Steps) {
		t.Fatalf("coarse (%d steps) not cheaper than fine (%d steps)",
			len(coarse.Steps), len(fine.Steps))
	}
	// Coarse target: LPMR1 <= 10; fine: <= 1.
	if coarse.Final.LPMR1() > 10 || fine.Final.LPMR1() > 1 {
		t.Fatalf("targets missed: coarse %.3f fine %.3f",
			coarse.Final.LPMR1(), fine.Final.LPMR1())
	}
}

func TestGrainDeltas(t *testing.T) {
	if FineGrain.DeltaPct() != 1 || CoarseGrain.DeltaPct() != 10 {
		t.Fatal("wrong grain deltas")
	}
}

func TestAlgorithmRecordsThresholds(t *testing.T) {
	tgt := &mockTarget{camat1: 5, camat2: 2, l1Step: 0.5, l2Step: 0.5, l1Left: 100, l2Left: 100}
	res := Run(tgt, AlgorithmConfig{Grain: FineGrain})
	for i, s := range res.Steps {
		if s.T1 <= 0 {
			t.Fatalf("step %d: T1 = %v", i, s.T1)
		}
		if s.Case == CaseBoth && !s.T2Valid {
			t.Fatalf("step %d: Case I with vacuous T2", i)
		}
	}
}
