package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerRetryDiscipline enforces the fleet's backoff contract: every
// retry loop around network establishment or frame I/O in the fleet
// layers (the fabric, the control plane, the worker binary) must pace
// itself through the shared fleet.RetryPolicy, whose delays are capped
// and whose jitter comes from a seeded stream. Two findings:
//
//  1. hand-rolled pacing — time.Sleep / time.After / time.NewTimer /
//     time.Tick inside a loop that also dials, listens, or moves
//     frames. Ad-hoc sleeps are uncapped, unjittered, and invisible to
//     the chaos suite's determinism guarantees; a restarted fleet
//     redials in lockstep and hammers the coordinator.
//  2. math/rand anywhere in the scoped packages — jitter must come
//     from the policy's seeded generator so a reconnect schedule
//     replays bit-identically for a given seed.
//
// The compliant pattern is fleet.RetryPolicy.Sleep(ctx, attempt) (or
// Delay for callers that own the timer), seeded once at startup.
var analyzerRetryDiscipline = &Analyzer{
	Name:  "retrydiscipline",
	Doc:   "network retry loops in the fleet layers must pace through the shared seeded fleet.RetryPolicy — no ad-hoc time.Sleep pacing, no math/rand jitter",
	Paths: []string{"internal/fabric", "internal/ctrl", "cmd/lpmworker"},
	Run:   runRetryDiscipline,
}

func runRetryDiscipline(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nd := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(info, nd); fn != nil && fn.Pkg() != nil {
					switch fn.Pkg().Path() {
					case "math/rand", "math/rand/v2":
						p.Reportf(nd.Pos(), "math/rand in the fleet layer: retry jitter must come from the seeded fleet.RetryPolicy stream so reconnect schedules replay deterministically")
					}
				}
			case *ast.ForStmt:
				checkRetryLoop(p, nd.Body)
			case *ast.RangeStmt:
				checkRetryLoop(p, nd.Body)
			}
			return true
		})
	}
}

// checkRetryLoop inspects one loop level (nested loops and function
// literals get their own visits) and reports ad-hoc pacing calls when
// the same level performs network I/O — the shape of a hand-rolled
// reconnect/re-send loop.
func checkRetryLoop(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	var pacing []*ast.CallExpr
	hasNet := false
	inspectSameLoop(body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if isTimePacing(fn) {
			pacing = append(pacing, call)
		}
		if isNetRetryTarget(fn) {
			hasNet = true
		}
		return true
	})
	if !hasNet {
		return
	}
	for _, call := range pacing {
		p.Reportf(call.Pos(), "hand-rolled retry pacing around network I/O — use the shared fleet.RetryPolicy (Sleep/Delay) so backoff is capped, seeded, and deterministic")
	}
}

// isTimePacing reports whether fn is a time-package delay primitive —
// the building blocks of ad-hoc backoff.
func isTimePacing(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Sleep", "After", "NewTimer", "Tick":
		return true
	}
	return false
}

// isNetRetryTarget reports whether fn establishes connections or moves
// frames: stdlib net dial/listen/accept (functions and methods both
// live in package net) and the module's fabric wire surface.
func isNetRetryTarget(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if pkg.Path() == "net" {
		return strings.HasPrefix(fn.Name(), "Dial") || fn.Name() == "Listen" || fn.Name() == "Accept"
	}
	if isFabricPkg(pkg) {
		switch fn.Name() {
		case "ReadFrame", "WriteFrame", "RunWorker":
			return true
		}
	}
	return false
}
