package cache

import (
	"fmt"

	"lpm/internal/analyzer"
	"lpm/internal/obs"
	"lpm/internal/stats"
)

// line is one cache line's metadata.
type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool   // filled by the prefetcher, not yet demand-touched
	used       uint64 // LRU touch stamp, or fill stamp under FIFO
}

// inputReq is a request accepted from above but not yet in service.
type inputReq struct {
	addr  uint64
	write bool
	src   int    // upstream requestor (keys partitioning)
	at    uint64 // earliest service cycle
	done  func(cycle uint64)
}

// inflight is an access in the hit pipeline.
type inflight struct {
	addr  uint64
	write bool
	src   int
	start uint64 // cycle service began (event tracing)
	ready uint64 // cycle the hit operation resolves
	done  func(cycle uint64)
	rec   *analyzer.Access
}

// target is one access coalesced under an MSHR.
type target struct {
	write bool
	src   int
	start uint64 // cycle service began (event tracing)
	done  func(cycle uint64)
	rec   *analyzer.Access
}

// mshrEntry tracks one outstanding missed block.
type mshrEntry struct {
	block    uint64
	targets  []target
	src      int // requestor of the primary miss
	issued   bool
	write    bool // a store is among the targets: fill installs dirty
	prefetch bool // allocated by the prefetcher, no demand targets
	// fill is the downstream completion callback, built once per entry
	// (entries are pooled): it parks the entry for installation at the
	// start of the next cycle.
	fill func(cycle uint64)
}

// Stats collects cache event counters beyond the analyzer's cycle
// classification.
type Stats struct {
	// Accesses counts demand accesses that entered service.
	Accesses uint64
	// Hits and Misses partition completed demand accesses.
	Hits, Misses uint64
	// Coalesced counts secondary misses attached to an existing MSHR.
	Coalesced uint64
	// PrimaryMisses counts MSHR allocations — distinct block fetches sent
	// to the lower layer. This is the "request rate" the LPM model's MR
	// terms use (Eq. 10/11): secondary (coalesced) misses never reach the
	// next layer.
	PrimaryMisses uint64
	// MSHRWaits counts accesses that had to wait for an MSHR or target
	// slot after missing.
	MSHRWaits uint64
	// Rejected counts demand accesses refused for a full input queue.
	Rejected uint64
	// Writebacks counts dirty evictions sent down.
	Writebacks uint64
	// Evictions counts total evictions of valid lines.
	Evictions uint64
	// Prefetches counts prefetch fetches issued; PrefetchUseful the
	// prefetched lines later touched by a demand access.
	Prefetches     uint64
	PrefetchUseful uint64
	// QuotaWaits counts misses parked because their requestor exhausted
	// its MSHR quota.
	QuotaWaits uint64
	// Invalidations counts lines removed by coherence actions.
	Invalidations uint64
}

// Sub returns the counter-wise difference s - o, for windowed deltas of
// cumulative counters (o must be an earlier snapshot of the same cache).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Accesses:       s.Accesses - o.Accesses,
		Hits:           s.Hits - o.Hits,
		Misses:         s.Misses - o.Misses,
		Coalesced:      s.Coalesced - o.Coalesced,
		PrimaryMisses:  s.PrimaryMisses - o.PrimaryMisses,
		MSHRWaits:      s.MSHRWaits - o.MSHRWaits,
		Rejected:       s.Rejected - o.Rejected,
		Writebacks:     s.Writebacks - o.Writebacks,
		Evictions:      s.Evictions - o.Evictions,
		Prefetches:     s.Prefetches - o.Prefetches,
		PrefetchUseful: s.PrefetchUseful - o.PrefetchUseful,
		QuotaWaits:     s.QuotaWaits - o.QuotaWaits,
		Invalidations:  s.Invalidations - o.Invalidations,
	}
}

// Cache is a cycle-driven non-blocking cache. Create with New, connect a
// lower layer with SetLower, then call Tick once per cycle (upper layers
// first). It implements Lower so caches stack directly.
type Cache struct {
	cfg       Config
	an        *analyzer.Analyzer
	lower     Lower
	sets      [][]line
	blockBits uint
	rng       *stats.RNG

	now       uint64
	input     []inputReq
	pipe      []inflight
	mshrs     map[uint64]*mshrEntry
	srcMSHRs  map[int]int // outstanding primary misses per requestor
	waiting   []inflight  // missed, waiting for an MSHR/target slot
	issueQ    []*mshrEntry
	wbQ       []uint64 // block addresses to write back
	fills     []*mshrEntry
	fillsNext []*mshrEntry // fills arriving during this cycle, for next Tick
	mshrFree  []*mshrEntry // recycled entries (with their fill closures)

	maxTargets int
	maxInput   int
	allWays    []int  // cached identity way list for unpartitioned sources
	warmLower  Warmer // lower's functional-tier surface (nil if none)

	st Stats
	ob *cacheObs   // nil unless AttachObs was called
	tr *obs.Tracer // nil unless AttachTracer was called
}

// cacheObs holds the cache's registered metric handles.
type cacheObs struct {
	accesses, hits, misses, primaryMisses, coalesced, mshrWaits, quotaWaits,
	rejected, writebacks, evictions, prefetches, prefetchUseful, invalidations *obs.Counter
	missRate *obs.Gauge
	mshrOcc  *obs.Histogram
}

// AttachObs registers this cache's metrics under prefix (e.g. "l1.0")
// and starts per-cycle MSHR-occupancy sampling. A nil registry leaves
// the cache unobserved (the zero-cost default).
func (c *Cache) AttachObs(r *obs.Registry, prefix string) {
	if r == nil {
		return
	}
	buckets := c.cfg.MSHRs + 1
	if buckets > 32 {
		buckets = 32
	}
	c.ob = &cacheObs{
		accesses:       r.Counter(prefix + ".accesses"),
		hits:           r.Counter(prefix + ".hits"),
		misses:         r.Counter(prefix + ".misses"),
		primaryMisses:  r.Counter(prefix + ".primary_misses"),
		coalesced:      r.Counter(prefix + ".coalesced"),
		mshrWaits:      r.Counter(prefix + ".mshr_waits"),
		quotaWaits:     r.Counter(prefix + ".quota_waits"),
		rejected:       r.Counter(prefix + ".rejected"),
		writebacks:     r.Counter(prefix + ".writebacks"),
		evictions:      r.Counter(prefix + ".evictions"),
		prefetches:     r.Counter(prefix + ".prefetches"),
		prefetchUseful: r.Counter(prefix + ".prefetch_useful"),
		invalidations:  r.Counter(prefix + ".invalidations"),
		missRate:       r.Gauge(prefix + ".miss_rate"),
		mshrOcc:        r.Histogram(prefix+".mshr_occupancy", 0, float64(c.cfg.MSHRs+1), buckets),
	}
}

// AttachTracer starts emitting one lifecycle event per completed demand
// access (hits and miss fills). A nil tracer disables tracing.
func (c *Cache) AttachTracer(t *obs.Tracer) { c.tr = t }

// PublishObs copies the current event counters into the registry; the
// chip calls it before snapshotting so registry values always reflect
// the measurement window (Stats is reset by ResetCounters).
func (c *Cache) PublishObs() {
	if c.ob == nil {
		return
	}
	c.ob.accesses.Set(c.st.Accesses)
	c.ob.hits.Set(c.st.Hits)
	c.ob.misses.Set(c.st.Misses)
	c.ob.primaryMisses.Set(c.st.PrimaryMisses)
	c.ob.coalesced.Set(c.st.Coalesced)
	c.ob.mshrWaits.Set(c.st.MSHRWaits)
	c.ob.quotaWaits.Set(c.st.QuotaWaits)
	c.ob.rejected.Set(c.st.Rejected)
	c.ob.writebacks.Set(c.st.Writebacks)
	c.ob.evictions.Set(c.st.Evictions)
	c.ob.prefetches.Set(c.st.Prefetches)
	c.ob.prefetchUseful.Set(c.st.PrefetchUseful)
	c.ob.invalidations.Set(c.st.Invalidations)
	if done := c.st.Hits + c.st.Misses; done > 0 {
		c.ob.missRate.Set(float64(c.st.Misses) / float64(done))
	} else {
		c.ob.missRate.Set(0)
	}
}

// New returns a cache built from cfg with an attached analyzer. It panics
// on invalid configuration, since configurations are program constants in
// this reproduction.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.Sets()
	sets := make([][]line, nSets)
	lines := make([]line, nSets*uint64(cfg.Assoc))
	for i := range sets {
		sets[i], lines = lines[:cfg.Assoc:cfg.Assoc], lines[cfg.Assoc:]
	}
	blockBits := uint(0)
	for b := cfg.BlockSize; b > 1; b >>= 1 {
		blockBits++
	}
	maxTargets := cfg.MSHRTargets
	if maxTargets == 0 {
		maxTargets = 8
	}
	maxInput := cfg.InputQueue
	if maxInput == 0 {
		maxInput = 2*cfg.Ports + 8
	}
	return &Cache{
		cfg:        cfg,
		an:         analyzer.New(cfg.Name),
		sets:       sets,
		blockBits:  blockBits,
		rng:        stats.NewRNG(cfg.Seed ^ 0xcac4e),
		mshrs:      make(map[uint64]*mshrEntry, cfg.MSHRs),
		srcMSHRs:   make(map[int]int),
		maxTargets: maxTargets,
		maxInput:   maxInput,
	}
}

// SetLower connects the next layer down.
func (c *Cache) SetLower(l Lower) {
	c.lower = l
	c.warmLower, _ = l.(Warmer)
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Analyzer returns the attached C-AMAT analyzer.
func (c *Cache) Analyzer() *analyzer.Analyzer { return c.an }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.st }

// ResetCounters zeroes analyzer and event counters while keeping all
// in-flight state, for interval-based online measurement.
func (c *Cache) ResetCounters() {
	c.an.ResetCounters()
	c.st = Stats{}
}

// Busy reports whether any access, miss, fill or writeback is still in
// flight; used to drain the hierarchy at end of simulation.
func (c *Cache) Busy() bool {
	return len(c.input) > 0 || len(c.pipe) > 0 || len(c.mshrs) > 0 ||
		len(c.waiting) > 0 || len(c.issueQ) > 0 || len(c.wbQ) > 0 ||
		len(c.fills) > 0 || len(c.fillsNext) > 0
}

// OutstandingMisses returns the current MSHR population — the per-cycle
// occupancy probe of the time-series sampler and the "is this layer
// still working a miss" signal of the stall attribution.
func (c *Cache) OutstandingMisses() int { return len(c.mshrs) }

// ServiceActive reports whether the cache is actively working demand
// accesses this cycle (queued, in the hit pipeline, or parked awaiting
// MSHR capacity) — distinguishing hit-path pressure from idle.
func (c *Cache) ServiceActive() bool {
	return len(c.input) > 0 || len(c.pipe) > 0 || len(c.waiting) > 0
}

// block maps an address to its block address.
func (c *Cache) block(addr uint64) uint64 { return addr >> c.blockBits }

// setIndex maps a block address to its set.
func (c *Cache) setIndex(block uint64) uint64 { return block % uint64(len(c.sets)) }

// bank maps a block address to its bank.
func (c *Cache) bank(block uint64) int { return int(block % uint64(c.cfg.Banks)) }

// Access submits a demand access from the layer above (the CPU for an
// L1). It may be called any number of times per cycle; the bounded input
// queue provides backpressure: a false return means "retry next cycle".
// done fires during a later Tick when the access completes.
func (c *Cache) Access(cycle uint64, addr uint64, write bool, done func(cycle uint64)) bool {
	if len(c.input) >= c.maxInput {
		c.st.Rejected++
		return false
	}
	c.input = append(c.input, inputReq{addr: addr, write: write, src: c.cfg.SrcID, at: cycle, done: done})
	return true
}

// Request implements Lower, accepting block requests from an upper cache.
// Demand fetches (done != nil) join the input queue with a one-cycle
// interconnect hop. Writebacks (done == nil) update the block if present
// or are forwarded down, off the demand path.
func (c *Cache) Request(cycle uint64, src int, blockAddr uint64, write bool, done func(cycle uint64)) bool {
	if done == nil {
		c.acceptWriteback(blockAddr)
		return true
	}
	if len(c.input) >= c.maxInput {
		c.st.Rejected++
		return false
	}
	addr := blockAddr << c.blockBits
	c.input = append(c.input, inputReq{addr: addr, write: write, src: src, at: cycle + 1, done: done})
	return true
}

// acceptWriteback absorbs a dirty block from above: update in place on
// presence, otherwise pass it down (non-inclusive hierarchy).
func (c *Cache) acceptWriteback(blockAddr uint64) {
	set := c.sets[c.setIndex(blockAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == blockAddr {
			set[i].dirty = true
			return
		}
	}
	c.wbQ = append(c.wbQ, blockAddr)
}

// Tick advances the cache one cycle. Call upper layers before lower ones.
func (c *Cache) Tick(cycle uint64) {
	c.now = cycle

	// 1. Fills that arrived from below during the previous cycle.
	c.fills, c.fillsNext = c.fillsNext, c.fills[:0]
	for _, m := range c.fills {
		c.install(m)
	}

	// 2. Retry accesses waiting for MSHR capacity (some may have freed, or
	// their block may have been filled meanwhile).
	if len(c.waiting) > 0 {
		c.retryWaiting()
	}

	// 3. Hit-pipeline completions.
	c.completeResolved()

	// 4. Begin new accesses, subject to ports and bank conflicts.
	c.startAccesses()

	// 5. Push allocated-but-unissued MSHR fetches and writebacks down.
	c.issueDown()

	// 6. Classify the cycle.
	c.an.Tick()

	if c.ob != nil {
		c.ob.mshrOcc.Observe(float64(len(c.mshrs)))
	}
}

// install writes a filled block into its set and completes all coalesced
// targets.
func (c *Cache) install(m *mshrEntry) {
	set := c.sets[c.setIndex(m.block)]
	victim := c.victim(set, m.src)
	if set[victim].valid {
		c.st.Evictions++
		if set[victim].dirty {
			c.st.Writebacks++
			c.wbQ = append(c.wbQ, set[victim].tag)
		}
	}
	set[victim] = line{
		tag:        m.block,
		valid:      true,
		dirty:      m.write,
		prefetched: m.prefetch,
		used:       c.insertStamp(),
	}
	for _, t := range m.targets {
		c.an.Done(t.rec, c.now)
		c.st.Misses++
		c.tr.Emit(c.cfg.Name, "miss", t.src, t.start, c.now, m.block<<c.blockBits)
		if t.done != nil {
			t.done(c.now)
		}
	}
	delete(c.mshrs, m.block)
	c.srcMSHRs[m.src]--
	// The fill has fired and every target completed: recycle the entry.
	c.mshrFree = append(c.mshrFree, m)
}

// insertStamp realises the insertion policy: MRU fills look
// just-touched; LIP fills look least recent; BIP promotes 1/32 of fills.
func (c *Cache) insertStamp() uint64 {
	switch c.cfg.Insert {
	case LIPInsert:
		return 0
	case BIPInsert:
		if c.rng.Intn(32) == 0 {
			return c.now
		}
		return 0
	default:
		return c.now
	}
}

// victim picks the way to replace in set on behalf of requestor src,
// honouring way partitioning when configured.
func (c *Cache) victim(set []line, src int) int {
	ways := c.waysFor(src)
	for _, i := range ways {
		if !set[i].valid {
			return i
		}
	}
	switch c.cfg.Repl {
	case RandomRepl:
		return ways[c.rng.Intn(len(ways))]
	default: // LRU and FIFO both evict the smallest stamp; they differ in
		// whether lookups touch the stamp.
		best := ways[0]
		for _, i := range ways[1:] {
			if set[i].used < set[best].used {
				best = i
			}
		}
		return best
	}
}

// waysFor returns the way indices requestor src may replace into.
func (c *Cache) waysFor(src int) []int {
	if c.cfg.PartitionWays != nil {
		if ws, ok := c.cfg.PartitionWays[src]; ok {
			return ws
		}
	}
	if c.allWays == nil {
		//lint:ignore hotpathalloc one-time lazy init; the slice is cached on the Cache for every later cycle
		c.allWays = make([]int, c.cfg.Assoc)
		for i := range c.allWays {
			c.allWays[i] = i
		}
	}
	return c.allWays
}

// lookup probes the tag array; on a hit it applies the policy's touch and
// returns true.
func (c *Cache) lookup(block uint64, write bool) bool {
	set := c.sets[c.setIndex(block)]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			if c.cfg.Repl == LRU {
				set[i].used = c.now
			}
			if write {
				set[i].dirty = true
			}
			if set[i].prefetched {
				set[i].prefetched = false
				c.st.PrefetchUseful++
			}
			return true
		}
	}
	return false
}

// completeResolved retires pipeline entries whose hit operation resolves
// this cycle.
func (c *Cache) completeResolved() {
	w := 0
	for i := range c.pipe {
		f := &c.pipe[i]
		if f.ready != c.now {
			if w != i {
				c.pipe[w] = *f
			}
			w++
			continue
		}
		blk := c.block(f.addr)
		if c.lookup(blk, f.write) {
			c.st.Hits++
			c.an.Done(f.rec, c.now)
			c.tr.Emit(c.cfg.Name, "hit", f.src, f.start, c.now, f.addr)
			if f.done != nil {
				f.done(c.now)
			}
			continue
		}
		c.an.ToMiss(f.rec, c.now)
		if !c.attachMiss(*f) {
			c.st.MSHRWaits++
			c.waiting = append(c.waiting, *f)
		}
	}
	c.pipe = c.pipe[:w]
}

// quotaFree reports whether requestor src may allocate another MSHR.
func (c *Cache) quotaFree(src int) bool {
	if c.cfg.MSHRQuota == nil {
		return true
	}
	q, ok := c.cfg.MSHRQuota[src]
	if !ok {
		return true
	}
	return c.srcMSHRs[src] < q
}

// newMSHR claims a pooled entry (or builds one, with its permanent fill
// closure) and resets it for the given block.
func (c *Cache) newMSHR(block uint64, src int) *mshrEntry {
	if n := len(c.mshrFree); n > 0 {
		m := c.mshrFree[n-1]
		c.mshrFree = c.mshrFree[:n-1]
		m.block, m.src = block, src
		m.issued, m.write, m.prefetch = false, false, false
		m.targets = m.targets[:0]
		return m
	}
	//lint:ignore hotpathalloc MSHR pool warm-up; steady state reuses freed entries from mshrFree above
	m := &mshrEntry{block: block, src: src}
	//lint:ignore hotpathalloc the fill closure is built once per pooled MSHR and reused for the entry's lifetime
	m.fill = func(uint64) { c.fillsNext = append(c.fillsNext, m) }
	return m
}

// attachMiss coalesces f under an existing MSHR or allocates a new one.
// It returns false when no MSHR capacity is available.
func (c *Cache) attachMiss(f inflight) bool {
	blk := c.block(f.addr)
	if m, ok := c.mshrs[blk]; ok {
		if !c.cfg.Coalesce || len(m.targets) >= c.maxTargets {
			return false
		}
		c.st.Coalesced++
		m.targets = append(m.targets, target{write: f.write, src: f.src, start: f.start, done: f.done, rec: f.rec})
		m.write = m.write || f.write
		return true
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		return false
	}
	if !c.quotaFree(f.src) {
		c.st.QuotaWaits++
		return false
	}
	m := c.newMSHR(blk, f.src)
	m.write = f.write
	m.targets = append(m.targets, target{write: f.write, src: f.src, start: f.start, done: f.done, rec: f.rec})
	c.mshrs[blk] = m
	c.issueQ = append(c.issueQ, m)
	c.srcMSHRs[f.src]++
	c.st.PrimaryMisses++
	c.issuePrefetches(blk, f.src)
	return true
}

// issuePrefetches allocates next-line prefetch MSHRs for the blocks
// following a demand primary miss. Prefetches are skipped when the block
// is already present or pending, when MSHRs (or the requestor's quota)
// run out, and never trigger further prefetching.
func (c *Cache) issuePrefetches(blk uint64, src int) {
	for d := 1; d <= c.cfg.Prefetch; d++ {
		pb := blk + uint64(d)
		if len(c.mshrs) >= c.cfg.MSHRs || !c.quotaFree(src) {
			return
		}
		if _, pending := c.mshrs[pb]; pending || c.present(pb) {
			continue
		}
		m := c.newMSHR(pb, src)
		m.prefetch = true
		c.mshrs[pb] = m
		c.issueQ = append(c.issueQ, m)
		c.srcMSHRs[src]++
		c.st.Prefetches++
	}
}

// present probes the tag array without touching replacement state.
func (c *Cache) present(block uint64) bool {
	set := c.sets[c.setIndex(block)]
	for i := range set {
		if set[i].valid && set[i].tag == block {
			return true
		}
	}
	return false
}

// retryWaiting re-attempts MSHR attachment for accesses parked after a
// full-MSHR miss. If the block arrived meanwhile, the access completes
// directly.
func (c *Cache) retryWaiting() {
	keep := c.waiting[:0]
	for _, f := range c.waiting {
		blk := c.block(f.addr)
		if c.lookup(blk, f.write) {
			// Filled while waiting; completes as a (short) miss.
			c.st.Misses++
			c.an.Done(f.rec, c.now)
			c.tr.Emit(c.cfg.Name, "miss", f.src, f.start, c.now, f.addr)
			if f.done != nil {
				f.done(c.now)
			}
			continue
		}
		if !c.attachMiss(f) {
			keep = append(keep, f)
		}
	}
	c.waiting = keep
}

// startAccesses moves eligible input-queue requests into the hit pipeline,
// honouring the port count and per-bank single-issue constraint.
func (c *Cache) startAccesses() {
	if len(c.input) == 0 {
		return
	}
	started := 0
	var bankBusy uint64 // bitmask for up to 64 banks; wider configs wrap
	w := 0
	for i := range c.input {
		req := &c.input[i]
		if started >= c.cfg.Ports || req.at > c.now {
			if w != i {
				c.input[w] = *req
			}
			w++
			continue
		}
		b := uint(c.bank(c.block(req.addr))) % 64
		if bankBusy&(1<<b) != 0 {
			if w != i {
				c.input[w] = *req
			}
			w++
			continue
		}
		bankBusy |= 1 << b
		started++
		c.st.Accesses++
		rec := c.an.Start(c.now)
		c.pipe = append(c.pipe, inflight{
			addr:  req.addr,
			write: req.write,
			src:   req.src,
			start: c.now,
			ready: c.now + uint64(c.cfg.HitLatency),
			done:  req.done,
			rec:   rec,
		})
	}
	c.input = c.input[:w]
}

// issueDown pushes pending block fetches, then writebacks, to the lower
// layer until it refuses.
func (c *Cache) issueDown() {
	if c.lower == nil {
		if len(c.issueQ) > 0 || len(c.wbQ) > 0 {
			//lint:ignore hotpathalloc misconfiguration abort path; the panic ends the run
			panic(fmt.Sprintf("cache %s: miss traffic with no lower layer", c.cfg.Name))
		}
		return
	}
	keepIssue := c.issueQ[:0]
	for i, m := range c.issueQ {
		if m.issued { // already sent (defensive; entries leave the queue on send)
			continue
		}
		if !c.lower.Request(c.now, c.cfg.SrcID, m.block, m.write, m.fill) {
			keepIssue = append(keepIssue, c.issueQ[i:]...)
			break
		}
		m.issued = true
	}
	c.issueQ = keepIssue

	keepWB := c.wbQ[:0]
	for i, blk := range c.wbQ {
		if !c.lower.Request(c.now, c.cfg.SrcID, blk, true, nil) {
			keepWB = append(keepWB, c.wbQ[i:]...)
			break
		}
	}
	c.wbQ = keepWB
}

// Invalidate removes the block holding blockAddr if present, returning
// whether a copy existed and whether it was dirty (the caller — a
// coherence directory — is responsible for collecting the dirty data as
// a writeback). In-flight accesses to the block are unaffected: they
// complete with the timing already committed, matching the usual
// race-window abstraction of block-granularity protocols.
func (c *Cache) Invalidate(blockAddr uint64) (present, dirty bool) {
	set := c.sets[c.setIndex(blockAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == blockAddr {
			present, dirty = true, set[i].dirty
			set[i] = line{}
			c.st.Invalidations++
			return present, dirty
		}
	}
	return false, false
}

// Contains reports whether the block holding addr is present (test hook;
// does not touch replacement state).
func (c *Cache) Contains(addr uint64) bool {
	blk := c.block(addr)
	set := c.sets[c.setIndex(blk)]
	for i := range set {
		if set[i].valid && set[i].tag == blk {
			return true
		}
	}
	return false
}
