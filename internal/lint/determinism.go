package lint

import (
	"go/ast"
	"strconv"
)

// analyzerDeterminism forbids wall-clock and global-RNG nondeterminism
// in the simulation substrate. The paper's C-AMAT parameters and the
// Fig. 3 LPMR loop are only meaningful if a configuration reproduces
// the same Measurement bit-for-bit on every run, so internal/sim,
// internal/core and internal/analyzer must derive all time from cycle
// counters and all randomness from stats.NewRNG with an explicit seed.
var analyzerDeterminism = &Analyzer{
	Name:  "determinism",
	Doc:   "forbid time.Now/time.Since/math/rand in the simulation substrate; the only sanctioned RNG is stats.NewRNG with an explicit seed",
	Paths: []string{"internal/sim", "internal/core", "internal/analyzer"},
	Run:   runDeterminism,
}

// forbiddenTimeFuncs are the wall-clock entry points; time's types and
// constants (time.Duration arithmetic on simulated quantities) remain
// allowed.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

func runDeterminism(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Syntax {
		// Even a blank import of math/rand signals an escape hatch.
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s: simulations must draw all randomness from stats.NewRNG with an explicit seed", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[obj.Name()] {
					p.Reportf(sel.Pos(), "time.%s is wall-clock nondeterminism; simulations must be reproducible from their seed (count cycles instead)", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(sel.Pos(), "%s.%s is global/unseeded randomness; the only sanctioned RNG is stats.NewRNG with an explicit seed", obj.Pkg().Path(), obj.Name())
			}
			return true
		})
	}
}
