package ctrl

// The per-run event hub: timeline windows fan out to SSE subscribers
// through bounded per-subscriber rings. A slow consumer overruns its
// own ring — oldest events drop and are counted — while the simulation
// and every other subscriber proceed untouched. This is the
// backpressure contract of the streaming endpoint: the control plane
// never lets an HTTP client slow a run down.

import (
	"context"
	"sync"

	"lpm/internal/obs/timeseries"
)

// DefaultRing is the per-subscriber ring capacity in events.
const DefaultRing = 256

// Event is one hub item: a closed (or re-merged) timeline window, or
// the end-of-run marker.
type Event struct {
	// Seq is the event's position in the run's stream, 1-based and
	// strictly increasing. It is the SSE `id:` of the event, so a
	// reconnecting client replays `Last-Event-ID` and catches up from
	// exactly where it left off — never seeing a window twice.
	Seq uint64 `json:"seq"`
	// Type is "window" or "done".
	Type string `json:"type"`
	// Window carries the window for "window" events.
	Window *timeseries.Window `json:"window,omitempty"`
}

// Hub fans a run's events out to its subscribers and retains history so
// a late subscriber catches up from the start of the run.
type Hub struct {
	mu      sync.Mutex
	seq     uint64
	history []Event
	done    bool
	subs    []*Subscriber

	// onSub and onDrop feed the registry's control-plane telemetry;
	// both may be nil. They are called outside sub locks.
	onSub  func(delta int)
	onDrop func(n uint64)
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{} }

// Publish fans one window out to every subscriber and appends it to the
// catch-up history.
func (h *Hub) Publish(w timeseries.Window) {
	h.broadcast(Event{Type: "window", Window: &w})
}

// Done marks the run finished: subscribers receive a final "done" event
// and future subscribers see it immediately after catch-up.
func (h *Hub) Done() {
	h.mu.Lock()
	if h.done {
		h.mu.Unlock()
		return
	}
	h.done = true
	h.mu.Unlock()
	h.broadcast(Event{Type: "done"})
}

// broadcast stamps the next sequence number, appends to history and
// pushes to every subscriber ring, reporting aggregate drops to the
// telemetry hook.
func (h *Hub) broadcast(e Event) {
	h.mu.Lock()
	h.seq++
	e.Seq = h.seq
	h.history = append(h.history, e)
	subs := append([]*Subscriber(nil), h.subs...)
	h.mu.Unlock()
	var drops uint64
	for _, s := range subs {
		drops += s.push(e)
	}
	if drops > 0 && h.onDrop != nil {
		h.onDrop(drops)
	}
}

// Subscribe registers a new subscriber with a ring of the given
// capacity (0 = DefaultRing), preloaded with the run's history so far.
// Preloading past a full ring drops the oldest history with the same
// accounting as live overruns.
func (h *Hub) Subscribe(ring int) *Subscriber { return h.SubscribeAfter(ring, 0) }

// SubscribeAfter is Subscribe with bounded catch-up: only history past
// sequence number `after` preloads, so a client reconnecting with the
// last `id:` it saw never receives a duplicated window. Catch-up and
// registration happen under one hub lock acquisition, with the preload
// before the subscriber becomes visible to broadcast — an event
// published concurrently lands exactly once, in order: either in the
// catch-up (it was already history) or pushed live afterwards.
func (h *Hub) SubscribeAfter(ring int, after uint64) *Subscriber {
	if ring <= 0 {
		ring = DefaultRing
	}
	s := &Subscriber{
		hub:    h,
		buf:    make([]Event, ring),
		notify: make(chan struct{}, 1),
	}
	h.mu.Lock()
	var drops uint64
	for _, e := range h.history {
		if e.Seq <= after {
			continue
		}
		drops += s.push(e)
	}
	h.subs = append(h.subs, s)
	h.mu.Unlock()
	if h.onSub != nil {
		h.onSub(1)
	}
	if drops > 0 && h.onDrop != nil {
		h.onDrop(drops)
	}
	return s
}

// unsubscribe removes s; idempotent.
func (h *Hub) unsubscribe(s *Subscriber) {
	h.mu.Lock()
	present := false
	for i, sub := range h.subs {
		if sub == s {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			present = true
			break
		}
	}
	h.mu.Unlock()
	if present && h.onSub != nil {
		h.onSub(-1)
	}
}

// Subscriber is one consumer's bounded view of a hub. Events queue in a
// fixed circular buffer; when the consumer falls behind, the oldest
// queued events are dropped and counted, and the count is surfaced on
// the next read so the consumer knows its view has a gap.
type Subscriber struct {
	hub    *Hub
	notify chan struct{}

	mu      sync.Mutex
	buf     []Event
	head, n int
	dropped uint64
	closed  bool
}

// push enqueues one event, dropping the oldest on overrun, and returns
// how many events were dropped (0 or 1).
func (s *Subscriber) push(e Event) uint64 {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	var drops uint64
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		drops = 1
	}
	s.buf[(s.head+s.n)%len(s.buf)] = e
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return drops
}

// Next blocks until an event is available, the subscriber is closed, or
// ctx cancels. It returns the event, the number of events dropped since
// the previous Next (a non-zero value means the stream has a gap just
// before this event), and ok=false when the subscription ended.
func (s *Subscriber) Next(ctx context.Context) (e Event, dropped uint64, ok bool) {
	for {
		s.mu.Lock()
		if s.n > 0 {
			e = s.buf[s.head]
			s.head = (s.head + 1) % len(s.buf)
			s.n--
			dropped = s.dropped
			s.dropped = 0
			s.mu.Unlock()
			return e, dropped, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, 0, false
		}
		select {
		case <-ctx.Done():
			return Event{}, 0, false
		case <-s.notify:
		}
	}
}

// Close ends the subscription and detaches it from the hub.
func (s *Subscriber) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	s.hub.unsubscribe(s)
}
