package chip

// Tiered fidelity: the chip runs in one of two tiers. The detailed tier
// is the cycle-accurate engine (Tick and the run loops, with
// quiescent-cycle fast-forward). The functional tier executes the same
// instruction streams with architectural-warmth-only semantics — cache
// tags, replacement order, dirty bits, directory sharers, DRAM open
// rows — at a per-instruction cost instead of a per-cycle cost. It
// exists for work whose timing is about to be thrown away: warming a
// hierarchy before a measured interval, and cheap frontier pruning in a
// design-space search. Functional execution is NOT timing-equivalent to
// the detailed engine: cycle counts, counters and timelines are
// meaningless in this tier, and the runtime guards below (plus the
// lpmlint tierdiscipline analyzer) keep observation APIs off it.

import "lpm/internal/trace"

// Tier selects the chip's execution fidelity.
type Tier uint8

// The tiers.
const (
	// TierDetailed is the cycle-accurate engine; the default.
	TierDetailed Tier = iota
	// TierFunctional executes instruction streams for architectural
	// warmth only (no timing, no counters, no observation).
	TierFunctional
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierDetailed:
		return "detailed"
	case TierFunctional:
		return "functional"
	default:
		return "tier(?)"
	}
}

// Tier returns the chip's current execution tier.
func (c *Chip) Tier() Tier { return c.tier }

// SetTier switches the execution tier. Entering the functional tier
// requires a drained pipeline (nothing Busy): the functional engine
// does not advance in-flight detailed work, so carrying it across the
// switch would wedge it. Returning to the detailed tier re-anchors the
// watchdog — functionally-executed instructions are progress, not a
// livelock.
func (c *Chip) SetTier(t Tier) {
	if t == c.tier {
		return
	}
	if t == TierFunctional && c.Busy() {
		panic("chip: SetTier(TierFunctional) with detailed work in flight")
	}
	c.tier = t
	if t == TierDetailed && c.wdBudget > 0 {
		c.wdLastSig = c.progressSig()
		c.wdLastCycle = c.now
	}
}

// requireDetailed panics when an observation or cycle-accurate entry
// point is used in the functional tier; op names the offender.
func (c *Chip) requireDetailed(op string) {
	if c.tier != TierDetailed {
		//lint:ignore hotpathalloc misuse abort path; the panic ends the run
		panic("chip: " + op + " requires the detailed tier; call SetTier(TierDetailed) first")
	}
}

// RunFunctional executes n instructions per active core in the
// functional tier, round-robin one instruction per core so the shared
// layers see an interleaved stream. Memory instructions warm the
// hierarchy (tags, replacement order, directory, DRAM rows); compute
// instructions only advance the generator. Each round advances the
// chip's clock one pseudo-cycle so replacement stamps stay ordered
// across the tier switch. It honours a latched run error and the
// cancellation context, and returns the latched error, if any.
func (c *Chip) RunFunctional(n uint64) error {
	if c.tier != TierFunctional {
		panic("chip: RunFunctional requires the functional tier; call SetTier(TierFunctional) first")
	}
	for round := uint64(0); round < n && c.runErr == nil; round++ {
		if c.ctx != nil && round&1023 == 1023 {
			if err := c.ctx.Err(); err != nil {
				c.runErr = err
				break
			}
		}
		c.now++
		for i, core := range c.cores {
			if core == nil || core.Halted() {
				continue
			}
			in := core.FunctionalNext()
			if in.Kind.IsMem() {
				c.l1s[i].WarmAccess(c.now, in.Addr, in.Kind == trace.Store)
			}
		}
	}
	return c.runErr
}
