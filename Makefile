# Build/test entry points; `make ci` is the CI gate.
GO ?= go

.PHONY: all build test race vet lint fmt-check bench fuzz ci golden

all: build vet lint test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages that use or implement the parallel simulation fan-out.
race:
	$(GO) test -race ./internal/parallel ./internal/sched ./internal/explore .

vet:
	$(GO) vet ./...

# The repository's own static-analysis suite (see DESIGN.md §8).
lint:
	$(GO) run ./cmd/lpmlint ./...

# gofmt gate: fails listing the offending files, which gofmt -l alone
# would not (it always exits 0).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# One pass over every benchmark, reporting the reproduced paper metrics.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Short fuzz smoke over both fuzz targets; the checked-in corpora under
# testdata/fuzz/ replay in ordinary `go test` runs regardless.
fuzz:
	$(GO) test -fuzz FuzzTraceDecode -fuzztime 15s -run '^$$' ./internal/trace
	$(GO) test -fuzz FuzzCacheConfigValidate -fuzztime 15s -run '^$$' ./internal/sim/cache

# Regenerate the golden files after an intentional model/simulator change.
golden:
	$(GO) test -run Golden -update .

# Full CI gate: formatting, build, vet, lint, the whole suite under the
# race detector, and the fuzz smoke.
ci: fmt-check build vet lint
	$(GO) test -race ./...
	$(MAKE) fuzz
