package lint

import (
	"fmt"
	"go/token"
	"path/filepath"

	"lpm/internal/parallel"
)

// Config parameterises one lint run.
type Config struct {
	// Dir is the module root (a directory containing go.mod). Empty
	// means the current directory.
	Dir string
	// Tags are extra build tags for //go:build evaluation (-tags).
	Tags []string
	// Enable, when non-empty, restricts the run to the named analyzers.
	Enable []string
	// Disable removes the named analyzers from the run.
	Disable []string
	// Scopes overrides an analyzer's default path scoping with
	// module-relative prefixes, e.g. {"determinism": {"internal/sim"}}.
	Scopes map[string][]string
	// Paths, when non-empty, restricts linted packages to these
	// module-relative prefixes ("." is the root package).
	Paths []string
	// Workers bounds the analysis fan-out (per-package passes run
	// concurrently on an internal/parallel pool); <= 0 means
	// GOMAXPROCS.
	Workers int
}

// Run loads the module and applies every selected analyzer, returning
// the surviving findings sorted by position. Per-package analyzers run
// concurrently across packages on an internal/parallel pool; module
// (interprocedural) analyzers share one call graph. Suppressions
// (//lint:ignore) are applied here; malformed and unused directives
// surface as "lint" findings.
func Run(cfg Config) ([]Diagnostic, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	mod, err := Load(dir, cfg.Tags)
	if err != nil {
		return nil, err
	}

	analyzers, err := selectAnalyzers(cfg)
	if err != nil {
		return nil, err
	}
	// Unused-suppression tracking is only sound when every analyzer a
	// directive could name actually ran.
	fullSuite := len(analyzers) == len(Analyzers())

	selected := make([]*Package, 0, len(mod.Packages))
	selectedDirs := make(map[string]bool)
	for _, pkg := range mod.Packages {
		if matchAny(pkg.Rel, normalizePaths(cfg.Paths)) {
			selected = append(selected, pkg)
			selectedDirs[pkg.Dir] = true
		}
	}

	var pkgAnalyzers, modAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			modAnalyzers = append(modAnalyzers, a)
		} else {
			pkgAnalyzers = append(pkgAnalyzers, a)
		}
	}

	pool := parallel.NewPool(cfg.Workers)

	// Per-package passes fan out across packages; each package's
	// findings stay in their own slice, so the merge below (input
	// order) is deterministic regardless of scheduling.
	perPkg, err := parallel.MapPool(pool, selected, func(pkg *Package) ([]Diagnostic, error) {
		var diags []Diagnostic
		for _, a := range pkgAnalyzers {
			paths := a.Paths
			if override, ok := cfg.Scopes[a.Name]; ok {
				paths = override
			}
			if !matchAny(pkg.Rel, paths) {
				continue
			}
			a.Run(&Pass{Pkg: pkg, analyzer: a, diags: &diags})
		}
		return diags, nil
	})
	if err != nil {
		return nil, err
	}

	// Module analyzers share one call graph; they fan out across
	// analyzers rather than packages.
	var modDiags []Diagnostic
	if len(modAnalyzers) > 0 {
		graph := mod.Graph()
		perAnalyzer, err := parallel.MapPool(pool, modAnalyzers, func(a *Analyzer) ([]Diagnostic, error) {
			var diags []Diagnostic
			a.RunModule(&ModulePass{Mod: mod, Graph: graph, analyzer: a, diags: &diags})
			return diags, nil
		})
		if err != nil {
			return nil, err
		}
		for _, ds := range perAnalyzer {
			for _, d := range ds {
				// A module analyzer may blame a frame outside the
				// selected packages; keep the run scoped to what the
				// caller asked to lint.
				if selectedDirs[filepath.Dir(d.Pos.Filename)] {
					modDiags = append(modDiags, d)
				}
			}
		}
	}

	// Apply per-file suppressions; malformed directives report here.
	// Packages iterate in load order and Syntax in sorted-filename
	// order, so the walk over every directive is deterministic.
	var out []Diagnostic
	sups := make(map[string]*fileSuppressions)
	var orderedSups []*fileSuppressions
	for _, pkg := range selected {
		for _, f := range pkg.Syntax {
			name := pkg.Fset.Position(f.Pos()).Filename
			fs := buildSuppressions(pkg.Fset, f, pkg.srcLines[name], func(pos token.Pos, msg string) {
				out = append(out, Diagnostic{Pos: pkg.Fset.Position(pos), Analyzer: "lint", Message: msg})
			})
			sups[name] = fs
			orderedSups = append(orderedSups, fs)
		}
	}
	apply := func(ds []Diagnostic) {
		for _, d := range ds {
			if fs, ok := sups[d.Pos.Filename]; ok && fs.suppress(d) {
				continue
			}
			out = append(out, d)
		}
	}
	for _, ds := range perPkg {
		apply(ds)
	}
	apply(modDiags)
	if fullSuite {
		for _, fs := range orderedSups {
			for _, s := range fs.all {
				if !s.used {
					out = append(out, Diagnostic{
						Pos:      fs.fset.Position(s.pos),
						Analyzer: "lint",
						Message:  "suppression matches no finding on its target line; delete the stale //lint:ignore",
					})
				}
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// selectAnalyzers applies -enable/-disable to the registry.
func selectAnalyzers(cfg Config) ([]*Analyzer, error) {
	for _, name := range append(append([]string{}, cfg.Enable...), cfg.Disable...) {
		if analyzerByName(name) == nil {
			return nil, fmt.Errorf("lint: unknown analyzer %q (known: %s)", name, analyzerNames())
		}
	}
	for name := range cfg.Scopes {
		if analyzerByName(name) == nil {
			return nil, fmt.Errorf("lint: -scope names unknown analyzer %q (known: %s)", name, analyzerNames())
		}
	}
	disabled := make(map[string]bool, len(cfg.Disable))
	for _, name := range cfg.Disable {
		disabled[name] = true
	}
	enabled := make(map[string]bool, len(cfg.Enable))
	for _, name := range cfg.Enable {
		enabled[name] = true
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if disabled[a.Name] {
			continue
		}
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// normalizePaths cleans CLI path patterns ("./internal/sim/" →
// "internal/sim").
func normalizePaths(paths []string) []string {
	var out []string
	for _, p := range paths {
		p = filepath.ToSlash(filepath.Clean(p))
		if p == "" {
			continue
		}
		out = append(out, p)
	}
	return out
}
