package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive in a line comment:
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// The directive suppresses the named analyzers on the same source line
// when trailing code, or on the next code line when it stands alone.
// The reason is mandatory — a suppression must document why the
// invariant does not apply — and a directive that suppresses nothing is
// itself reported, so stale suppressions cannot accumulate.
const ignorePrefix = "//lint:ignore"

// ParseIgnoreDirective parses one comment's text. ok is false when the
// comment is not a lint:ignore directive at all. When it is one, err
// describes a malformed directive (missing analyzer list, empty
// analyzer name, missing reason); malformed directives never suppress.
func ParseIgnoreDirective(text string) (analyzers []string, reason string, ok bool, err error) {
	text = strings.TrimSpace(text)
	rest, found := strings.CutPrefix(text, ignorePrefix)
	if !found {
		return nil, "", false, nil
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. "//lint:ignoreall" — some other token, not a directive.
		return nil, "", false, nil
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil, "", true, fmt.Errorf("malformed %s directive: missing analyzer list and reason", ignorePrefix)
	}
	list, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(reason)
	if reason == "" {
		return nil, "", true, fmt.Errorf("malformed %s directive: a non-empty reason is required after the analyzer list", ignorePrefix)
	}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, "", true, fmt.Errorf("malformed %s directive: empty analyzer name in %q", ignorePrefix, list)
		}
		for _, r := range name {
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_' {
				continue
			}
			return nil, "", true, fmt.Errorf("malformed %s directive: invalid analyzer name %q", ignorePrefix, name)
		}
		analyzers = append(analyzers, name)
	}
	return analyzers, reason, true, nil
}

// suppression is one well-formed directive attached to a target line.
type suppression struct {
	analyzers map[string]bool
	pos       token.Pos
	used      bool
}

// fileSuppressions holds a file's directives: byLine for lookup during
// diagnostic filtering, all in source order for deterministic
// unused-suppression reporting.
type fileSuppressions struct {
	fset   *token.FileSet
	byLine map[int][]*suppression
	all    []*suppression
}

// buildSuppressions scans one parsed file for lint:ignore directives.
// Malformed directives are reported through report and never suppress.
// A name that no longer matches a registered analyzer — typically a
// suppression that survived an analyzer rename — is reported as stale
// by name and dropped from the directive, so it can neither suppress
// anything nor linger silently. lines is the file's source split by
// line (1-based access via idx-1).
func buildSuppressions(fset *token.FileSet, f *ast.File, lines []string, report func(pos token.Pos, msg string)) *fileSuppressions {
	sup := &fileSuppressions{fset: fset, byLine: make(map[int][]*suppression)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			names, _, ok, err := ParseIgnoreDirective(c.Text)
			if !ok {
				continue
			}
			if err != nil {
				report(c.Slash, err.Error())
				continue
			}
			known := names[:0]
			for _, n := range names {
				if analyzerByName(n) == nil && n != "lint" {
					report(c.Slash, fmt.Sprintf("%s suppresses %q, which is not a registered analyzer (renamed or removed?) — delete or update the stale name (known: %s)", ignorePrefix, n, analyzerNames()))
					continue
				}
				known = append(known, n)
			}
			if len(known) == 0 {
				// Every name is stale: already reported above, and an
				// empty directive must not also count as "unused".
				continue
			}
			pos := fset.Position(c.Slash)
			target := pos.Line
			if standaloneComment(lines, pos) {
				target = nextCodeLine(lines, pos.Line)
			}
			set := make(map[string]bool, len(known))
			for _, n := range known {
				set[n] = true
			}
			s := &suppression{analyzers: set, pos: c.Slash}
			sup.byLine[target] = append(sup.byLine[target], s)
			sup.all = append(sup.all, s)
		}
	}
	return sup
}

// standaloneComment reports whether only whitespace precedes the comment
// on its line, i.e. the directive is not trailing a statement.
func standaloneComment(lines []string, pos token.Position) bool {
	if pos.Line-1 >= len(lines) {
		return true
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 <= len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}

// nextCodeLine returns the first line after start that is neither blank
// nor a line comment — the line a standalone directive covers.
func nextCodeLine(lines []string, start int) int {
	for l := start + 1; l <= len(lines); l++ {
		t := strings.TrimSpace(lines[l-1])
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		return l
	}
	return start + 1
}

// suppress consumes a matching suppression for the diagnostic, marking
// it used. It returns true when the finding is suppressed.
func (fs *fileSuppressions) suppress(d Diagnostic) bool {
	for _, s := range fs.byLine[d.Pos.Line] {
		if s.analyzers[d.Analyzer] {
			s.used = true
			return true
		}
	}
	return false
}

// analyzerNames lists the registered analyzer names for messages.
func analyzerNames() string {
	names := make([]string, 0, 8)
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
