package lpm

// Chaos tests at the report level: a cancelled build must still produce
// a decodable document marked partial, and a deterministic injected
// fault must become one error cell in one table — never a dead run.

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"lpm/internal/faultinject"
	"lpm/internal/parallel"
)

func TestChaosPartialReportOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // SIGINT arrived before any experiment started

	opts := ReportOptions{
		Scale:       Scale{Warmup: 20000, Window: 5000},
		Experiments: []string{"fig1", "table1"},
	}
	rep, err := BuildReportCtx(ctx, opts)
	if err != nil {
		t.Fatalf("BuildReportCtx on a cancelled context: %v", err)
	}
	if !rep.Partial {
		t.Fatal("cancelled build is not marked partial")
	}
	if len(rep.Completed) != 0 || len(rep.Aborted) != 2 {
		t.Fatalf("completed=%v aborted=%v, want nothing completed and both experiments aborted",
			rep.Completed, rep.Aborted)
	}

	// The partial document must round-trip through the public decoder.
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal partial report: %v", err)
	}
	dec, err := DecodeReport(data)
	if err != nil {
		t.Fatalf("partial report does not decode: %v", err)
	}
	if !dec.Partial || len(dec.Aborted) != 2 {
		t.Fatalf("decoded partial report lost its interruption record: %+v", dec)
	}
}

func TestChaosInjectedFaultBecomesErrCell(t *testing.T) {
	t.Cleanup(parallel.ResetAllMemos)
	parallel.ResetAllMemos()

	// Exactly one Table I evaluation dies (whichever of the five cells
	// reaches the failpoint first); the other four must finish.
	restore := faultinject.Arm(faultinject.NewPlan(7, faultinject.Rule{
		Point: "explore.evaluate", Msg: "chaos: dead cell",
	}))
	defer restore()

	rows := Table1Ctx(context.Background(), Scale{Warmup: 20000, Window: 5000}, false)
	if len(rows) != 5 {
		t.Fatalf("Table1Ctx returned %d rows, want 5", len(rows))
	}
	var bad, good int
	for _, r := range rows {
		if r.Err != "" {
			bad++
			if !strings.Contains(r.Err, "injected fault") {
				t.Fatalf("error cell %s carries %q, want the injected fault", r.Name, r.Err)
			}
			// The cell keeps its identity so the table stays readable.
			if r.Name == "" || r.PaperLPMR == [3]float64{} {
				t.Fatalf("error cell lost its identifying fields: %+v", r)
			}
			continue
		}
		good++
		if r.M.CPIexe <= 0 {
			t.Fatalf("healthy cell %s has an empty measurement: %+v", r.Name, r.M)
		}
	}
	if bad != 1 || good != 4 {
		t.Fatalf("bad=%d good=%d, want exactly one error cell among five", bad, good)
	}
}
