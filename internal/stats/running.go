package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance of a stream of float64
// observations using Welford's online algorithm. The zero value is ready
// to use.
type Running struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Running) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Running) N() uint64 { return s.n }

// Mean returns the arithmetic mean, or 0 if no observations were recorded.
func (s *Running) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with no observations.
func (s *Running) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Running) Max() float64 { return s.max }

// Variance returns the population variance.
func (s *Running) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Running) StdDev() float64 { return math.Sqrt(s.Variance()) }

// String implements fmt.Stringer.
func (s *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Histogram is a fixed-bucket histogram over [lo, hi) with uniform bucket
// width, plus underflow/overflow buckets. Construct with NewHistogram.
type Histogram struct {
	lo, hi    float64
	width     float64
	buckets   []uint64
	underflow uint64
	overflow  uint64
	total     uint64
	sum       float64
}

// NewHistogram returns a histogram with n uniform buckets over [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{
		lo:      lo,
		hi:      hi,
		width:   (hi - lo) / float64(n),
		buckets: make([]uint64, n),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard float rounding at the upper edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// AddN records n identical observations of x. It is equivalent to
// calling Add(x) n times; the fast-forward bulk-accrual paths use it to
// keep histograms bit-identical to a cycle-stepped run.
func (h *Histogram) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	h.total += n
	h.sum += x * float64(n)
	switch {
	case x < h.lo:
		h.underflow += n
	case x >= h.hi:
		h.overflow += n
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard float rounding at the upper edge
			i = len(h.buckets) - 1
		}
		h.buckets[i] += n
	}
}

// Total returns the number of observations, including under/overflow.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the arithmetic mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Count returns the count of bucket i.
func (h *Histogram) Count(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of regular buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) using
// bucket midpoints. Underflow maps to lo and overflow to hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.total))
	var cum uint64
	cum += h.underflow
	if cum > target {
		return h.lo
	}
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			return h.lo + (float64(i)+0.5)*h.width
		}
	}
	return h.hi
}

// Quantiles3 returns bucket-midpoint approximations of three ascending
// quantiles in one pass over the buckets. The per-window snapshot path
// asks for p50/p90/p99 together; three Quantile calls would re-scan the
// buckets each time.
func (h *Histogram) Quantiles3(q1, q2, q3 float64) (v1, v2, v3 float64) {
	if h.total == 0 {
		return 0, 0, 0
	}
	qs := [3]float64{q1, q2, q3}
	var vs [3]float64
	next := 0
	clamp := func(q float64) float64 { return math.Min(math.Max(q, 0), 1) }
	advance := func(cum uint64, v float64) {
		for next < 3 && cum > uint64(clamp(qs[next])*float64(h.total)) {
			vs[next] = v
			next++
		}
	}
	cum := h.underflow
	advance(cum, h.lo)
	for i, c := range h.buckets {
		if next == 3 {
			break
		}
		cum += c
		advance(cum, h.lo+(float64(i)+0.5)*h.width)
	}
	for next < 3 {
		vs[next] = h.hi
		next++
	}
	return vs[0], vs[1], vs[2]
}

// HarmonicMean returns the harmonic mean of xs. Zero or negative entries
// make the harmonic mean undefined; they yield 0.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// GeometricMean returns the geometric mean of xs (0 on empty or
// non-positive input).
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// WeightedSpeedup returns per-program weighted speedups
// IPC_shared[i]/IPC_alone[i]. It panics if the slices differ in length.
func WeightedSpeedup(ipcShared, ipcAlone []float64) []float64 {
	if len(ipcShared) != len(ipcAlone) {
		panic("stats: mismatched speedup inputs")
	}
	out := make([]float64, len(ipcShared))
	for i := range out {
		if ipcAlone[i] <= 0 {
			out[i] = 0
			continue
		}
		out[i] = ipcShared[i] / ipcAlone[i]
	}
	return out
}

// Hsp returns the harmonic weighted speedup of Luo, Gummaraju and Franklin
// (ISPASS 2001), used by the paper's Fig. 8: the harmonic mean of the
// per-program weighted speedups. It balances throughput and fairness.
func Hsp(ipcShared, ipcAlone []float64) float64 {
	return HarmonicMean(WeightedSpeedup(ipcShared, ipcAlone))
}

// Median returns the median of xs (0 on empty input). The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
