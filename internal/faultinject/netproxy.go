package faultinject

// NetProxy is a deterministic network-fault TCP forwarder for the chaos
// suite: the coordinator listens normally, workers dial the proxy, and
// the test script flips faults on the wire between them — added
// latency, a full partition that blackholes bytes while keeping both
// sockets open (the hung-TCP case heartbeats exist to catch), one-shot
// frame corruption (a single flipped bit, which the LPMCKPT1 CRC must
// reject), and torn frames (half the bytes, then connection reset).
//
// Faults apply per forwarded chunk, so "corrupt the next frame" damages
// whatever write the kernel delivers next — realistic damage at a
// realistic boundary. All mutation goes through FlipBit's seeded
// generator; a NetProxy scenario replays identically for a given seed
// and fault script.

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// NetProxy forwards TCP connections to Target and injects the armed
// faults into both directions of every connection.
type NetProxy struct {
	ln     net.Listener
	target string

	mu       sync.Mutex
	latency  time.Duration
	parted   bool
	healCh   chan struct{} // closed on Heal; nil when not partitioned
	corrupt  int           // chunks still to corrupt (one bit each)
	tear     int           // chunks still to tear (half bytes + reset)
	seed     int64
	conns    map[net.Conn]struct{}
	closed   bool
	forwards atomic.Int64
}

// NewNetProxy starts a proxy on a loopback port forwarding to target.
// seed drives the corruption bit choices.
func NewNetProxy(target string, seed int64) (*NetProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &NetProxy{
		ln:     ln,
		target: target,
		seed:   seed,
		conns:  make(map[net.Conn]struct{}),
	}
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address — what workers should dial.
func (p *NetProxy) Addr() string { return p.ln.Addr().String() }

// Forwards reports how many chunks the proxy has forwarded, a liveness
// probe for tests that need to know traffic actually flowed.
func (p *NetProxy) Forwards() int64 { return p.forwards.Load() }

// SetLatency delays every subsequently forwarded chunk by d.
func (p *NetProxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.latency = d
}

// Partition blackholes all traffic in both directions while keeping
// every connection open: the TCP sessions look alive but no bytes move,
// exactly the failure heartbeat deadlines exist to detect. Traffic
// resumes on Heal.
func (p *NetProxy) Partition() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.parted {
		return
	}
	p.parted = true
	p.healCh = make(chan struct{})
}

// Heal ends a partition; chunks blocked mid-flight resume forwarding.
func (p *NetProxy) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.parted {
		return
	}
	p.parted = false
	close(p.healCh)
	p.healCh = nil
}

// CorruptNext flips one seeded bit in each of the next n forwarded
// chunks — framing CRCs must catch it and the session must recover.
func (p *NetProxy) CorruptNext(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.corrupt += n
}

// TearNext forwards only the first half of each of the next n chunks
// and then drops the connection carrying it — a torn frame followed by
// a reset, the classic mid-write crash signature.
func (p *NetProxy) TearNext(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tear += n
}

// DropAll severs every live proxied connection without touching fault
// state; workers see a reset and re-dial through their backoff policy.
func (p *NetProxy) DropAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Close order across the set is irrelevant: every conn is severed
	// unconditionally, so iterating the map directly is fine.
	for c := range p.conns {
		_ = c.Close()
	}
}

// Close shuts the listener and severs every connection.
func (p *NetProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	if p.parted {
		// Unblock pumps parked on the partition so they can exit.
		p.parted = false
		close(p.healCh)
		p.healCh = nil
	}
	p.mu.Unlock()
	_ = p.ln.Close()
	p.DropAll()
}

func (p *NetProxy) accept() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = client.Close()
			_ = upstream.Close()
			return
		}
		p.conns[client] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.mu.Unlock()
		go p.pump(client, upstream)
		go p.pump(upstream, client)
	}
}

// pump forwards src→dst chunk by chunk, applying the armed faults to
// each chunk. Closing either side tears down both, so a torn chunk
// resets the whole proxied session.
func (p *NetProxy) pump(src, dst net.Conn) {
	defer func() {
		_ = src.Close()
		_ = dst.Close()
		p.mu.Lock()
		delete(p.conns, src)
		delete(p.conns, dst)
		p.mu.Unlock()
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if !p.deliver(&chunk, dst) {
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			p.forwards.Add(1)
		}
		if err != nil {
			return
		}
	}
}

// deliver applies latency/partition/corrupt/tear to one chunk. It
// returns false when the chunk (and the connection) must die instead of
// being written by the caller.
func (p *NetProxy) deliver(chunk *[]byte, dst net.Conn) bool {
	p.mu.Lock()
	for p.parted {
		heal := p.healCh
		p.mu.Unlock()
		// Park until Heal (or Close) closes the channel; bytes written
		// during a partition are simply delayed, as on a real stalled
		// path, not reordered or dropped.
		<-heal
		p.mu.Lock()
	}
	latency := p.latency
	corrupt, tear := false, false
	if p.tear > 0 {
		p.tear--
		tear = true
	} else if p.corrupt > 0 {
		p.corrupt--
		corrupt = true
	}
	seed := p.seed
	if corrupt {
		// Advance the seed so successive corruptions pick fresh bits.
		p.seed++
	}
	p.mu.Unlock()

	if latency > 0 {
		time.Sleep(latency)
	}
	if tear {
		half := *chunk
		if len(half) > 1 {
			half = half[:len(half)/2]
		}
		_, _ = dst.Write(half)
		return false
	}
	if corrupt {
		*chunk = FlipBit(*chunk, seed)
	}
	return true
}
