// Package engine is the hotpathalloc fixture's hot core: its Tick and
// AdvanceCycles methods are reachability roots, and every allocation
// class the analyzer knows appears once — reachable (flagged) or cold
// (silent).
package engine

import (
	"fmt"

	"lpm/internal/obs"
)

// Part is a module-defined interface: calls through it fan out to
// every implementing type in the module (see internal/sim/rotor).
type Part interface {
	Step()
}

// Engine drives its parts one cycle at a time.
type Engine struct {
	parts   []Part
	queue   []int
	scratch []int
	hook    func()
}

// NewEngine allocates freely: constructors are cold, not reachable
// from the per-cycle hooks.
func NewEngine(n int) *Engine {
	return &Engine{queue: make([]int, 0, n)}
}

// Tick is a hot root by name and location (internal/sim).
func (e *Engine) Tick(cycle uint64) {
	e.queue = e.queue[:0]
	e.queue = append(e.queue, int(cycle)) // amortised self-append: legal
	buf := make([]int, 8)                 // want "make allocates in per-cycle hot path"
	_ = buf
	for _, p := range e.parts {
		p.Step() // interface dispatch: blame lands in every implementation
	}
	// An immediately-invoked literal is reachable and checked.
	func() {
		e.scratch = append(e.scratch[:0], e.queue...) // in-place self-append: legal
		fresh := append([]int(nil), e.queue...)       // want "append into a fresh slice"
		_ = fresh
	}()
	// A stored closure's creation allocates here; its body is beyond
	// the static horizon (never invoked statically) and is not blamed.
	e.hook = func() { _ = make([]int, 1) } // want "closure creation allocates"
	// The observability layer is reached but exempt: nil-guarded off
	// the steady-state path by construction.
	_ = obs.Record(e.queue)
}

// AdvanceCycles is also a root; the allocation is two frames down and
// the diagnostic carries the chain.
func (e *Engine) AdvanceCycles(n uint64) {
	for i := uint64(0); i < n; i++ {
		e.trace("advance")
	}
}

// trace is hot only because the hooks reach it.
func (e *Engine) trace(op string) {
	msg := "op:" + op // want "string concatenation allocates"
	fmt.Println(msg)  // want "fmt.Println allocates" "boxed into interface parameter"
}
