package lpm

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lpm/internal/analyzer"
	"lpm/internal/core"
	"lpm/internal/explore"
	"lpm/internal/interval"
	"lpm/internal/parallel"
	"lpm/internal/sched"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

// This file holds the experiment harnesses that regenerate every table
// and figure of the paper (see DESIGN.md §3 for the index). Each
// experiment has paper-reported reference values attached so reports can
// print paper-vs-measured side by side.

// Scale trades fidelity for runtime in the simulation-backed experiments.
type Scale struct {
	// Warmup and Window are per-run instruction budgets for single-core
	// experiments (cycles for the multiprogram window).
	Warmup, Window uint64
	// WarmupFast runs every experiment's warm-up phase in the chip's
	// functional tier (SetTier/RunFunctional): caches, directory state
	// and DRAM rows are warmed at per-instruction cost and only the
	// measured window runs cycle-accurately. Results are not
	// bit-identical to the detailed-warm-up run — the warm microstate
	// differs — so the flag joins every simulation memo key. omitempty
	// keeps default-mode reports (and their goldens) byte-identical.
	WarmupFast bool `json:",omitempty"`
}

// FullScale is the default used by cmd/lpmreport and the benchmarks.
func FullScale() Scale { return Scale{Warmup: 250000, Window: 30000} }

// QuickScale is a reduced budget for tests and smoke runs.
func QuickScale() Scale { return Scale{Warmup: 140000, Window: 15000} }

// ---------------------------------------------------------------------
// E1 — Fig. 1: the C-AMAT worked example.

// Fig1Paper holds the values the paper derives from Fig. 1.
type Fig1Paper struct {
	CAMAT, AMAT, CH, CM, PAMP, PMR float64
}

// Fig1Reference returns the paper's Fig. 1 numbers.
func Fig1Reference() Fig1Paper {
	return Fig1Paper{CAMAT: 1.6, AMAT: 3.8, CH: 2.5, CM: 1, PAMP: 2, PMR: 0.2}
}

// Fig1 replays the exact five-access schedule of the paper's Fig. 1
// through a C-AMAT analyzer and returns the measured layer parameters.
// The returned values must match Fig1Reference exactly.
func Fig1() LayerParams {
	a := analyzer.New("L1")
	type ev struct{ start, missAt, done uint64 }
	accs := []ev{
		{start: 1, done: 4},
		{start: 1, done: 4},
		{start: 3, missAt: 6, done: 9},
		{start: 3, missAt: 6, done: 7},
		{start: 4, done: 7},
	}
	recs := make([]*analyzer.Access, len(accs))
	for t := uint64(1); t <= 8; t++ {
		for i, e := range accs {
			if e.missAt == t {
				a.ToMiss(recs[i], t)
			}
			if e.done == t {
				a.Done(recs[i], t)
			}
		}
		for i, e := range accs {
			if e.start == t {
				recs[i] = a.Start(t)
			}
		}
		a.Tick()
	}
	a.Done(recs[2], 9)
	return a.Snapshot()
}

// ---------------------------------------------------------------------
// E2/E3 — Table I and case study I.

// Table1Row is one configuration row of Table I.
type Table1Row struct {
	// Name is the configuration label A..E.
	Name string
	// Point is the hardware configuration.
	Point DesignPoint
	// M is the measured LPM state.
	M Measurement
	// PaperLPMR holds the paper's reported LPMR1/2/3 for the row.
	PaperLPMR [3]float64
	// Err marks a failed cell (cancelled, livelocked, or panicked
	// evaluation): M is zero and only the identifying fields are set.
	// Healthy rows omit it, so existing documents are unchanged.
	Err string `json:",omitempty"`
}

// table1Paper are the LPMR values of the paper's Table I.
var table1Paper = map[string][3]float64{
	"A": {8.1, 9.6, 6.4},
	"B": {6.2, 9.3, 8.1},
	"C": {2.1, 3.1, 5.8},
	"D": {1.2, 1.6, 2.3},
	"E": {1.4, 1.9, 2.6},
}

// Table1 evaluates the five Table I configurations on the bwaves-like
// workload and returns the rows in order A..E. The five simulations are
// independent (one target, generator, and chip each), so they run as one
// parallel batch.
func Table1(s Scale) []Table1Row {
	return table1(s, false)
}

// Table1Observed is Table1 with per-layer observability enabled: every
// row's Measurement carries an obs.Snapshot of the measurement window.
func Table1Observed(s Scale) []Table1Row {
	return table1(s, true)
}

func table1(s Scale, observe bool) []Table1Row {
	//lint:ignore ctxflow ctx-less compat wrapper; Table1Ctx is the interruptible form
	rows := Table1Ctx(context.Background(), s, observe)
	for _, r := range rows {
		if r.Err != "" {
			// Without a context there is no cancellation; any failure is
			// a deterministic simulator fault the serial loop would also
			// have raised — keep it loud.
			panic(fmt.Errorf("table1 %s: %s", r.Name, r.Err))
		}
	}
	return rows
}

// Table1Ctx is the failure-isolating form of Table1: each configuration
// evaluates independently, and a cancelled, livelocked, or panicking
// evaluation becomes a row with Err set instead of killing the batch.
// Rows stay in A..E order; cells skipped by cancellation report the
// context's error.
func Table1Ctx(ctx context.Context, s Scale, observe bool) []Table1Row {
	cfgs := explore.TableConfigs()
	names := []string{"A", "B", "C", "D", "E"}
	results := parallel.MapResults(ctx, names, func(ctx context.Context, n string) (Table1Row, error) {
		tgt := explore.NewHardwareTarget(explore.DefaultSpace(), cfgs[n], trace.MustProfile("410.bwaves"))
		tgt.Warmup = s.Warmup
		tgt.Instructions = s.Window
		tgt.WarmupFast = s.WarmupFast
		tgt.Observe = observe
		tgt.Ctx = ctx
		return Table1Row{
			Name:      n,
			Point:     cfgs[n],
			M:         tgt.Measure(),
			PaperLPMR: table1Paper[n],
		}, nil
	})
	rows := make([]Table1Row, len(names))
	for i, r := range results {
		rows[i] = r.Val
		if r.Err != nil {
			rows[i] = Table1Row{Name: names[i], Point: cfgs[names[i]],
				PaperLPMR: table1Paper[names[i]], Err: r.Err.Error()}
		}
	}
	return rows
}

// TimelineRow couples one Table I configuration with its cycle-windowed
// time series over the measurement interval.
type TimelineRow struct {
	// Name is the configuration label.
	Name string
	// Point is the hardware configuration.
	Point DesignPoint
	// M is the measurement; M.Timeline carries the windowed series.
	M Measurement
	// Err marks a failed cell, as in Table1Row.
	Err string `json:",omitempty"`
}

// TimelineStudy measures the mismatched (A) and matched (E) ends of the
// Table I spectrum with the cycle-windowed sampler attached, so reports
// carry per-window C-AMAT/LPMR timelines showing *when* the mismatch
// occurs, not just its average. The two simulations run as one parallel
// batch.
func TimelineStudy(s Scale) []TimelineRow {
	//lint:ignore ctxflow ctx-less compat wrapper; TimelineStudyCtx is the interruptible form
	rows := TimelineStudyCtx(context.Background(), s)
	for _, r := range rows {
		if r.Err != "" {
			panic(fmt.Errorf("timeline %s: %s", r.Name, r.Err))
		}
	}
	return rows
}

// TimelineStudyCtx is the failure-isolating form of TimelineStudy.
func TimelineStudyCtx(ctx context.Context, s Scale) []TimelineRow {
	cfgs := explore.TableConfigs()
	names := []string{"A", "E"}
	results := parallel.MapResults(ctx, names, func(ctx context.Context, n string) (TimelineRow, error) {
		tgt := explore.NewHardwareTarget(explore.DefaultSpace(), cfgs[n], trace.MustProfile("410.bwaves"))
		tgt.Warmup = s.Warmup
		tgt.Instructions = s.Window
		tgt.WarmupFast = s.WarmupFast
		tgt.Timeline = true
		tgt.Ctx = ctx
		return TimelineRow{Name: n, Point: cfgs[n], M: tgt.Measure()}, nil
	})
	rows := make([]TimelineRow, len(names))
	for i, r := range results {
		rows[i] = r.Val
		if r.Err != nil {
			rows[i] = TimelineRow{Name: names[i], Point: cfgs[names[i]], Err: r.Err.Error()}
		}
	}
	return rows
}

// CaseStudyIResult summarises an LPM-guided design space exploration.
type CaseStudyIResult struct {
	// Algorithm is the Fig. 3 run trace.
	Algorithm Result
	// Final is the configuration the walk ended on.
	Final DesignPoint
	// Evaluations counts simulated points — versus the 10^6-point space.
	Evaluations int
	// SpaceSize is the full design space size.
	SpaceSize int
}

// newCaseStudyTarget returns the case study I hardware target: Table I's
// configuration A over the default space on the bwaves-like workload.
func newCaseStudyTarget(s Scale) *explore.HardwareTarget {
	tgt := explore.NewHardwareTarget(explore.DefaultSpace(), explore.TableConfigs()["A"], trace.MustProfile("410.bwaves"))
	tgt.Warmup = s.Warmup
	tgt.Instructions = s.Window
	tgt.WarmupFast = s.WarmupFast
	return tgt
}

// caseStudyConfig is the algorithm parameterisation of case study I.
func caseStudyConfig(grain Grain) core.AlgorithmConfig {
	return core.AlgorithmConfig{Grain: grain, SlackFrac: 0.5, MaxSteps: 32}
}

// CaseStudyI runs the LPM algorithm from Table I's configuration A over
// the default design space on the bwaves-like workload.
func CaseStudyI(grain Grain, s Scale) CaseStudyIResult {
	//lint:ignore ctxflow ctx-less compat wrapper; CaseStudyICtx is the interruptible form
	r, err := CaseStudyICtx(context.Background(), grain, s)
	if err != nil {
		// Background context never cancels; a failure here is a
		// deterministic simulator fault that should stay loud.
		panic(err)
	}
	return r
}

// CaseStudyICtx is the interruptible form of CaseStudyI. On cancellation
// or a simulator fault it returns the partial walk alongside the error:
// Algorithm holds the steps completed before the interruption.
func CaseStudyICtx(ctx context.Context, grain Grain, s Scale) (CaseStudyIResult, error) {
	tgt := newCaseStudyTarget(s)
	res, final, err := tgt.RunAlgorithmCtx(ctx, caseStudyConfig(grain))
	return CaseStudyIResult{
		Algorithm:   res,
		Final:       final,
		Evaluations: tgt.Evaluations(),
		SpaceSize:   explore.DefaultSpace().Size(),
	}, err
}

// ---------------------------------------------------------------------
// E4/E5 — Fig. 6 and Fig. 7: APC1/APC2 vs private L1 size.

// Fig67Result carries the per-workload, per-size profiling data.
type Fig67Result struct {
	// Table is the measured APC1/APC2/IPC data.
	Table *sched.ProfileTable
}

// Fig67 profiles every built-in workload at the four NUCA L1 sizes.
func Fig67(s Scale) (Fig67Result, error) {
	//lint:ignore ctxflow ctx-less compat wrapper; Fig67Ctx is the interruptible form
	return Fig67Ctx(context.Background(), s)
}

// Fig67Ctx is the interruptible form of Fig67.
func Fig67Ctx(ctx context.Context, s Scale) (Fig67Result, error) {
	tbl, err := sched.BuildProfileTable(ctx, trace.ProfileNames(), chip.NUCAGroupSizes[:],
		sched.ProfileOptions{Instructions: s.Window, Warmup: s.Warmup / 2, WarmupFast: s.WarmupFast})
	if err != nil {
		return Fig67Result{}, err
	}
	return Fig67Result{Table: tbl}, nil
}

// ---------------------------------------------------------------------
// E6 — Fig. 8: Hsp under four scheduling policies.

// Fig8Row is one bar of Fig. 8.
type Fig8Row struct {
	// Scheduler is the policy name.
	Scheduler string
	// Hsp is the measured harmonic weighted speedup.
	Hsp float64
	// PaperHsp is the paper's reported value.
	PaperHsp float64
}

// fig8Paper are the paper's Fig. 8 values.
var fig8Paper = map[string]float64{
	"Random":      0.7986,
	"RoundRobin":  0.8192,
	"NUCA-SA(cg)": 0.8742,
	"NUCA-SA(fg)": 0.9106,
}

// Fig8 evaluates the four policies of Fig. 8 (plus a PIE-like
// related-work baseline) on the sixteen built-in workloads over the
// Fig. 5 NUCA chip. The profiling and evaluation windows are pinned to
// the repository's validated configuration rather than derived from s:
// the scheduler ranking is sensitive to the measurement protocol (see
// EXPERIMENTS.md), so the harness always reports the deterministic,
// test-covered setting.
func Fig8(s Scale) ([]Fig8Row, error) {
	//lint:ignore ctxflow ctx-less compat wrapper; Fig8Ctx is the interruptible form
	return Fig8Ctx(context.Background(), s)
}

// Fig8Ctx is the interruptible form of Fig8.
func Fig8Ctx(ctx context.Context, s Scale) ([]Fig8Row, error) {
	_ = s
	names := trace.ProfileNames()
	sizes := chip.NUCAGroupSizes[:]
	tbl, err := sched.BuildProfileTable(ctx, names, sizes,
		sched.ProfileOptions{Instructions: 10000, Warmup: 25000})
	if err != nil {
		return nil, err
	}
	opt := sched.EvalOptions{WindowCycles: 80000, WarmupCycles: 40000}
	alone, err := sched.AloneIPCs(ctx, names, sizes, opt)
	if err != nil {
		return nil, err
	}
	opt.AloneIPC = alone
	policies := []sched.Scheduler{
		sched.Random{Seed: 1},
		sched.RoundRobin{},
		sched.NUCASA{Table: tbl, TolFrac: 0.10},
		sched.NUCASA{Table: tbl, TolFrac: 0.01},
		sched.PIE{Table: tbl},
	}
	// The per-policy shared runs are independent 16-core simulations;
	// fan them out. The profile table and alone-IPC slice are read-only.
	return parallel.MapCtx(ctx, policies, func(ctx context.Context, p sched.Scheduler) (Fig8Row, error) {
		ev, err := sched.Evaluate(ctx, p, names, sizes, opt)
		if err != nil {
			return Fig8Row{}, err
		}
		return Fig8Row{Scheduler: ev.Scheduler, Hsp: ev.Hsp, PaperHsp: fig8Paper[ev.Scheduler]}, nil
	})
}

// ---------------------------------------------------------------------
// E7 — the interval/perception study.

// IntervalRow is one sampling scenario's outcome.
type IntervalRow struct {
	// Scenario names the configuration.
	Scenario string
	// Analytic is the closed-form perception rate; Simulated the Monte
	// Carlo estimate; Paper the paper's reported rate.
	Analytic, Simulated, Paper float64
}

// IntervalStudy evaluates the three scenarios the paper reports.
func IntervalStudy(samples int) []IntervalRow {
	if samples <= 0 {
		samples = 200000
	}
	paper := []float64{0.96, 0.89, 0.73}
	prof := interval.DefaultProfile()
	type job struct {
		i  int
		sc interval.Scenario
	}
	jobs := make([]job, 0, 3)
	for i, sc := range interval.PaperScenarios() {
		jobs = append(jobs, job{i: i, sc: sc})
	}
	// Each scenario's Monte Carlo run is seeded independently.
	rows, err := parallel.Map(jobs, func(j job) (IntervalRow, error) {
		return IntervalRow{
			Scenario:  j.sc.Name,
			Analytic:  interval.PerceptionRate(prof, j.sc),
			Simulated: interval.Simulate(prof, j.sc, samples, 42).Rate(),
			Paper:     paper[j.i],
		}, nil
	})
	if err != nil {
		panic(err)
	}
	return rows
}

// ---------------------------------------------------------------------
// E8 — model identities on live measurements.

// IdentityReport compares model predictions against simulator ground
// truth for one workload.
type IdentityReport struct {
	// Workload is the profile name.
	Workload string
	// CAMATvsInvAPC is |C-AMAT - 1/APC| at L1 (Eq. 3). It is exact on a
	// drained layer; interval boundaries (accesses straddling the counter
	// reset) introduce a small residual.
	CAMATvsInvAPC float64
	// PMR1 is the L1 pure miss rate, for conditioning the recursion
	// check (meaningless on a nearly miss-free run).
	PMR1 float64
	// RecursionRelErr is the relative error of Eq. (4) with the measured
	// C-AMAT2 standing in for the model's effective lower-layer time.
	RecursionRelErr float64
	// StallModel and StallMeasured compare Eq. (12) with the simulator's
	// ROB-head stall accounting.
	StallModel, StallMeasured float64
	// Err marks a failed cell, as in Table1Row.
	Err string `json:",omitempty"`
}

// Identities runs the identity checks on a set of representative
// workloads.
func Identities(s Scale, workloads ...string) ([]IdentityReport, error) {
	//lint:ignore ctxflow ctx-less compat wrapper; IdentitiesCtx is the interruptible form
	reports := IdentitiesCtx(context.Background(), s, workloads...)
	for _, r := range reports {
		if r.Err != "" {
			return nil, fmt.Errorf("identities %s: %s", r.Workload, r.Err)
		}
	}
	return reports, nil
}

// IdentitiesCtx is the failure-isolating form of Identities: each
// workload's checks run independently, and a failed cell carries Err
// instead of discarding the healthy ones.
func IdentitiesCtx(ctx context.Context, s Scale, workloads ...string) []IdentityReport {
	if len(workloads) == 0 {
		workloads = []string{"401.bzip2", "403.gcc", "429.mcf", "410.bwaves"}
	}
	// One full single-core simulation per workload, all independent.
	results := parallel.MapResults(ctx, workloads, identityOne(s))
	reports := make([]IdentityReport, len(workloads))
	for i, r := range results {
		reports[i] = r.Val
		if r.Err != nil {
			reports[i] = IdentityReport{Workload: workloads[i], Err: r.Err.Error()}
		}
	}
	return reports
}

// identityOne builds the per-workload identity check used by
// IdentitiesCtx.
func identityOne(s Scale) func(context.Context, string) (IdentityReport, error) {
	return func(ctx context.Context, name string) (IdentityReport, error) {
		prof, err := trace.ProfileByName(name)
		if err != nil {
			return IdentityReport{}, err
		}
		cfg := chip.SingleCore(name)
		gen := trace.NewSynthetic(prof)
		cpiExe := chip.MeasureCPIexe(cfg.Cores[0].CPU, gen, uint64(cfg.Cores[0].L1.HitLatency), s.Window)
		ch := chip.New(cfg)
		ch.SetContext(ctx)
		runTarget := s.Warmup/2 + s.Window
		if s.WarmupFast {
			ch.SetTier(chip.TierFunctional)
			ch.RunFunctional(s.Warmup / 2)
			ch.SetTier(chip.TierDetailed)
			runTarget = s.Window
		} else {
			ch.RunUntilRetired(s.Warmup/2, (s.Warmup+s.Window)*400)
		}
		ch.ResetCounters()
		ch.Run(runTarget, (s.Warmup+s.Window)*400)
		if err := ch.Err(); err != nil {
			return IdentityReport{}, fmt.Errorf("identity %s: %w", name, err)
		}
		m := ch.Measure(0, cpiExe)
		l1 := ch.Snapshot().Cores[0].L1

		rep := IdentityReport{
			Workload:      name,
			PMR1:          m.PMR1,
			StallModel:    m.StallEq12(),
			StallMeasured: m.MeasuredStall,
		}
		if apc := l1.APC(); apc > 0 {
			rep.CAMATvsInvAPC = math.Abs(l1.CAMAT() - 1/apc)
		}
		if m.CAMAT1 > 0 {
			rec := core.RecursiveCAMAT(m.H1, m.CH1, m.PMR1, m.Eta1(), m.CAMAT2)
			rep.RecursionRelErr = math.Abs(m.CAMAT1-rec) / m.CAMAT1
		}
		return rep, nil
	}
}

// SortedWorkloads returns the built-in workload names sorted, a helper
// for stable report output.
func SortedWorkloads() []string {
	names := trace.ProfileNames()
	sort.Strings(names)
	return names
}

// FormatLPMR renders a measurement's three LPMRs compactly.
func FormatLPMR(m Measurement) string {
	return fmt.Sprintf("LPMR1=%.2f LPMR2=%.2f LPMR3=%.2f", m.LPMR1(), m.LPMR2(), m.LPMR3())
}
