package cache

// Fast-forward hooks (see chip/fastforward.go). A cache is quiescent
// when nothing it does per cycle can change state: no queued input, no
// parked misses to retry, nothing to issue downstream, and no fills to
// install. The hit pipeline and outstanding MSHRs are allowed — the
// pipeline's resolution cycles are exposed via NextEvent (resolution is
// an exact-cycle match, so the chip must never jump past one), and MSHR
// fills arrive through lower-layer callbacks that make the cache
// non-quiescent the cycle they land.

// Quiescent reports whether the next Tick would only re-walk unchanged
// state (no completions, starts, retries, installs, or downstream
// issues).
func (c *Cache) Quiescent(now uint64) bool {
	_ = now
	return len(c.input) == 0 && len(c.waiting) == 0 &&
		len(c.issueQ) == 0 && len(c.wbQ) == 0 &&
		len(c.fills) == 0 && len(c.fillsNext) == 0
}

// NextEvent returns the earliest hit-pipeline resolution cycle, or
// ^uint64(0) when the pipeline is empty.
func (c *Cache) NextEvent() uint64 {
	ev := ^uint64(0)
	for i := range c.pipe {
		if c.pipe[i].ready < ev {
			ev = c.pipe[i].ready
		}
	}
	return ev
}

// AdvanceCycles accrues n quiescent cycles (now+1 .. now+n) in bulk:
// the analyzer classifies each with an unchanged hit count and miss
// set, and the MSHR occupancy histogram sees the unchanged population.
func (c *Cache) AdvanceCycles(now, n uint64) {
	c.now = now + n
	c.an.TickN(n)
	if c.ob != nil {
		c.ob.mshrOcc.ObserveN(float64(len(c.mshrs)), n)
	}
}
