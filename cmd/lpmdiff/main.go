// Command lpmdiff structurally compares two lpm-report JSON documents
// (any mix of lpm-report/v1 and /v2) and lists every field that moved:
// metric deltas, per-window timeline regressions, added and removed
// paths. It is the CI regression gate — exit status 0 means the reports
// match within tolerance, 1 means differences were found, 2 means the
// inputs could not be read.
//
// Usage:
//
//	lpmdiff old.json new.json
//	lpmdiff -threshold 0.05 -abs 1e-9 golden.json fresh.json
//
// Numeric fields compare with a relative tolerance (-threshold) over an
// absolute floor (-abs); everything else must match exactly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"lpm"
	"lpm/internal/cliutil"
	"lpm/internal/resilience"
)

// errDifferences signals a clean run that found diffs (exit status 1).
var errDifferences = errors.New("reports differ")

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errDifferences):
		os.Exit(1)
	case errors.Is(err, flag.ErrHelp):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", 0, "relative tolerance for numeric fields (0 = exact)")
		absFloor  = fs.Float64("abs", 0, "ignore numeric differences smaller than this absolute value")
		maxLines  = fs.Int("max", 50, "print at most this many differences (0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: lpmdiff [flags] old.json new.json")
		return flag.ErrHelp
	}

	oldDoc, err := loadReport(fs.Arg(0))
	if err != nil {
		return err
	}
	newDoc, err := loadReport(fs.Arg(1))
	if err != nil {
		return err
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	diffs, suppressed := diffReports(oldDoc, newDoc, *threshold, *absFloor)
	p := cliutil.NewPrinter(stdout)
	if len(diffs) == 0 {
		p.Printf("reports match (%d numeric fields within tolerance)\n", suppressed)
		return p.Err()
	}
	shown := len(diffs)
	if *maxLines > 0 && shown > *maxLines {
		shown = *maxLines
	}
	for _, d := range diffs[:shown] {
		p.Println(d)
	}
	if shown < len(diffs) {
		p.Printf("... and %d more differences (raise -max to see them)\n", len(diffs)-shown)
	}
	p.Printf("%d differences (%d numeric fields within tolerance)\n", len(diffs), suppressed)
	if err := p.Err(); err != nil {
		return err
	}
	return errDifferences
}

// loadReport reads and schema-checks one report document, then re-decodes
// it into a generic JSON tree for the structural walk. Decoding through
// lpm.DecodeReport first rejects non-report inputs up front.
func loadReport(path string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if _, err := lpm.DecodeReport(data); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// flatten walks a decoded JSON tree into path→leaf pairs. Object keys
// are visited in sorted order so the output is deterministic. An array
// element that is an object with a string "name" field is addressed by
// that name instead of its index, which keeps experiment, table-row and
// metric paths stable when ordering or cardinality changes.
func flatten(prefix string, v any, out map[string]any) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flatten(prefix+"."+k, t[k], out)
		}
	case []any:
		for i, e := range t {
			label := fmt.Sprintf("[%d]", i)
			if m, ok := e.(map[string]any); ok {
				if name, ok := m["name"].(string); ok && name != "" {
					label = "[" + name + "]"
				}
			}
			flatten(prefix+label, e, out)
		}
	default:
		out[strings.TrimPrefix(prefix, ".")] = v
	}
}

// diffReports compares the flattened documents. Numeric leaves within
// the relative threshold (over the absolute floor) are counted as
// suppressed rather than reported; all other mismatches, additions and
// removals become difference lines, sorted by path.
func diffReports(oldDoc, newDoc any, threshold, absFloor float64) (diffs []string, suppressed int) {
	oldFlat := map[string]any{}
	newFlat := map[string]any{}
	flatten("", oldDoc, oldFlat)
	flatten("", newDoc, newFlat)

	paths := make([]string, 0, len(oldFlat))
	for p := range oldFlat {
		paths = append(paths, p)
	}
	for p := range newFlat {
		if _, ok := oldFlat[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	for _, p := range paths {
		ov, inOld := oldFlat[p]
		nv, inNew := newFlat[p]
		switch {
		case !inNew:
			diffs = append(diffs, fmt.Sprintf("- %s = %v (only in old)", p, ov))
		case !inOld:
			diffs = append(diffs, fmt.Sprintf("+ %s = %v (only in new)", p, nv))
		default:
			of, oNum := ov.(float64)
			nf, nNum := nv.(float64)
			if oNum && nNum {
				if withinTolerance(of, nf, threshold, absFloor) {
					if of != nf {
						suppressed++
					}
					continue
				}
				diffs = append(diffs, fmt.Sprintf("~ %s: %v -> %v (delta %+g, rel %.3g)",
					p, of, nf, nf-of, relDelta(of, nf)))
				continue
			}
			if fmt.Sprintf("%v", ov) != fmt.Sprintf("%v", nv) {
				diffs = append(diffs, fmt.Sprintf("~ %s: %v -> %v", p, ov, nv))
			}
		}
	}
	return diffs, suppressed
}

// withinTolerance reports whether old→new stays inside the relative
// threshold, after discarding sub-floor absolute noise.
func withinTolerance(o, n, threshold, absFloor float64) bool {
	d := math.Abs(n - o)
	if d <= absFloor {
		return true
	}
	return d <= threshold*math.Max(math.Abs(o), math.Abs(n))
}

// relDelta is the relative change magnitude used in difference lines.
func relDelta(o, n float64) float64 {
	base := math.Max(math.Abs(o), math.Abs(n))
	if base == 0 {
		return 0
	}
	return math.Abs(n-o) / base
}
