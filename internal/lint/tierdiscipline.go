package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerTierDiscipline enforces the tiered-fidelity contracts the
// compiler cannot see (DESIGN.md §9): counters and timelines are only
// meaningful while the detailed engine is driving them.
//
//  1. Every detailed-only Chip entry point (Tick, the Measure family,
//     Snapshot, EnableTimeseries) must open with the requireDetailed
//     guard, so reading counters or opening a timeline in the
//     functional tier fails loudly instead of returning garbage.
//  2. Fast-forward accrual code — the Quiescent / NextEvent /
//     AdvanceCycles component trio — must not touch observation APIs.
//     During a quiescent jump counters advance in closed form; a
//     Snapshot, Measure or obs emission taken from inside the jump
//     would observe a cycle that is being skipped, and would diverge
//     from the stepped run the jump must match bit-for-bit.
var analyzerTierDiscipline = &Analyzer{
	Name:  "tierdiscipline",
	Doc:   "detailed-only chip entry points must open with requireDetailed; fast-forward accrual must not touch observation APIs",
	Paths: []string{"internal/sim"},
	Run:   runTierDiscipline,
}

// detailedOnly lists the Chip methods that read counters, drive the
// cycle-accurate engine or open timelines, and therefore must be
// guarded against the functional tier.
var detailedOnly = map[string]bool{
	"Tick":             true,
	"Measure":          true,
	"MeasureAggregate": true,
	"MeasureChain":     true,
	"Snapshot":         true,
	"EnableTimeseries": true,
}

// observationCalls are method names that read or publish simulation
// state; calling one mid-fast-forward observes a skipped cycle.
var observationCalls = map[string]bool{
	"Snapshot":         true,
	"Measure":          true,
	"MeasureAggregate": true,
	"MeasureChain":     true,
	"EnableTimeseries": true,
}

// fastForwardMethods are the component fast-forward surface: pure
// accounting by contract.
var fastForwardMethods = map[string]bool{
	"Quiescent":     true,
	"NextEvent":     true,
	"AdvanceCycles": true,
}

// obsForbiddenInJump are the internal/obs calls that are wrong inside a
// bulk accrual: per-event writers record one event where the stepped
// run would record n, and emissions/reads observe a cycle the jump is
// skipping. The bulk writers (Add, ObserveN, Set) are the sanctioned
// closed-form mechanism and stay legal.
var obsForbiddenInJump = map[string]bool{
	"Inc":      true,
	"Observe":  true,
	"Emit":     true,
	"Value":    true,
	"Snapshot": true,
}

func runTierDiscipline(p *Pass) {
	if p.Pkg.Rel == "internal/sim/chip" {
		checkDetailedGuards(p)
	}
	checkFastForwardPurity(p)
}

// checkDetailedGuards enforces rule 1: each detailed-only *Chip method
// must have the requireDetailed call as its first statement.
func checkDetailedGuards(p *Pass) {
	for _, f := range p.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !detailedOnly[fd.Name.Name] {
				continue
			}
			if recvNamed(p.Pkg.Info, fd) != "Chip" {
				continue
			}
			if !startsWithRequireDetailed(fd.Body) {
				p.Reportf(fd.Name.Pos(),
					"detailed-only chip entry point %s must open with the requireDetailed guard; counters and timelines are meaningless in the functional tier",
					fd.Name.Name)
			}
		}
	}
}

// recvNamed returns the name of fd's receiver type, through a pointer.
func recvNamed(info *types.Info, fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// startsWithRequireDetailed reports whether the body's first statement
// is a call to requireDetailed.
func startsWithRequireDetailed(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	es, ok := body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "requireDetailed"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "requireDetailed"
	}
	return false
}

// checkFastForwardPurity enforces rule 2 inside every fast-forward
// method body in internal/sim.
func checkFastForwardPurity(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fastForwardMethods[fd.Name.Name] {
				continue
			}
			inspectSameFunc(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return true
				}
				if isObsPackage(fn) && obsForbiddenInJump[fn.Name()] {
					p.Reportf(call.Pos(),
						"%s calls %s.%s mid-fast-forward; per-event obs calls record one event for an n-cycle jump and emissions observe a skipped cycle — use the bulk forms (Add/ObserveN) or accrue outside the jump",
						fd.Name.Name, fn.Pkg().Name(), fn.Name())
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && observationCalls[fn.Name()] {
					p.Reportf(call.Pos(),
						"%s calls observation API %s mid-fast-forward; bulk accrual must stay pure accounting so the jump matches the stepped run bit-for-bit",
						fd.Name.Name, fn.Name())
				}
				return true
			})
		}
	}
}

// isObsPackage reports whether fn lives in the observability layer.
func isObsPackage(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return strings.HasSuffix(path, "internal/obs") || strings.HasSuffix(path, "internal/obs/timeseries")
}
