package sched

import (
	"context"
	"sync"
	"testing"

	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

// Shared fixtures: profiling and alone-IPC runs are expensive, so tests
// build them once.
var (
	fixtureOnce  sync.Once
	fixtureTable *ProfileTable
	fixtureAlone []float64
	fixtureNames []string
	fixtureErr   error
)

func fixtures(t *testing.T) (*ProfileTable, []float64, []string) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureNames = trace.ProfileNames()
		fixtureTable, fixtureErr = BuildProfileTable(context.Background(), fixtureNames, chip.NUCAGroupSizes[:],
			ProfileOptions{Instructions: 10000, Warmup: 25000})
		if fixtureErr != nil {
			return
		}
		fixtureAlone, fixtureErr = AloneIPCs(context.Background(), fixtureNames, chip.NUCAGroupSizes[:],
			EvalOptions{WindowCycles: 80000, WarmupCycles: 40000})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureTable, fixtureAlone, fixtureNames
}

func evalOpts(alone []float64) EvalOptions {
	return EvalOptions{WindowCycles: 80000, WarmupCycles: 40000, AloneIPC: alone}
}

func TestAssignmentValidate(t *testing.T) {
	good := Assignment{1, 0, -1, 2}
	if err := good.Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := (Assignment{0, 0, -1}).Validate(2); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := (Assignment{0, 5}).Validate(2); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := (Assignment{0, -1}).Validate(2); err == nil {
		t.Fatal("missing workload accepted")
	}
}

func TestRandomAssignValidAndSeeded(t *testing.T) {
	names := trace.ProfileNames()
	a1, err := (Random{Seed: 7}).Assign(names, chip.NUCAGroupSizes[:])
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.Validate(len(names)); err != nil {
		t.Fatal(err)
	}
	a2, _ := (Random{Seed: 7}).Assign(names, chip.NUCAGroupSizes[:])
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
	a3, _ := (Random{Seed: 8}).Assign(names, chip.NUCAGroupSizes[:])
	same := true
	for i := range a1 {
		if a1[i] != a3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical assignments")
	}
}

func TestRoundRobinAssign(t *testing.T) {
	names := trace.ProfileNames()
	a, err := RoundRobin{}.Assign(names, chip.NUCAGroupSizes[:])
	if err != nil {
		t.Fatal(err)
	}
	for i := range names {
		if a[i] != i {
			t.Fatalf("core %d got workload %d", i, a[i])
		}
	}
}

func TestTooManyWorkloadsRejected(t *testing.T) {
	names := make([]string, 17)
	for i := range names {
		names[i] = "401.bzip2"
	}
	if _, err := (Random{}).Assign(names, chip.NUCAGroupSizes[:]); err == nil {
		t.Fatal("17 workloads on 16 cores accepted")
	}
	if _, err := (RoundRobin{}).Assign(names, chip.NUCAGroupSizes[:]); err == nil {
		t.Fatal("17 workloads on 16 cores accepted")
	}
}

func TestProfileTableShapes(t *testing.T) {
	tbl, _, _ := fixtures(t)

	// Fig. 6: bzip2's APC1 is flat (tiny hot set); gcc's grows
	// substantially to 64 KB.
	bz := tbl.APC1["401.bzip2"]
	if (bz[3]-bz[0])/bz[0] > 0.05 {
		t.Fatalf("bzip2 APC1 not flat: %v", bz)
	}
	gcc := tbl.APC1["403.gcc"]
	if gcc[3] < gcc[0]*1.5 {
		t.Fatalf("gcc APC1 not strongly rising: %v", gcc)
	}
	for i := 0; i < 3; i++ {
		if gcc[i+1] < gcc[i] {
			t.Fatalf("gcc APC1 not monotone: %v", gcc)
		}
	}
	// milc: insensitive in both APC1 and (after the first step) APC2.
	milc := tbl.APC1["433.milc"]
	if (milc[3]-milc[0])/milc[0] > 0.05 {
		t.Fatalf("milc APC1 not flat: %v", milc)
	}

	// Fig. 7: gamess's L2 demand drops sharply with larger L1; mcf's
	// biggest drop is at the first size increase.
	gam := tbl.APC2["416.gamess"]
	if gam[3] > gam[0]*0.3 {
		t.Fatalf("gamess APC2 not strongly decreasing: %v", gam)
	}
	mcf := tbl.APC2["429.mcf"]
	d01 := mcf[0] - mcf[1]
	d13 := mcf[1] - mcf[3]
	if d01 <= 0 || d01 < d13*0.8 {
		t.Fatalf("mcf APC2 first-step drop not dominant: %v", mcf)
	}
}

func TestRequiredSizes(t *testing.T) {
	tbl, _, _ := fixtures(t)
	req := func(name string, tol float64) uint64 {
		s, err := tbl.RequiredSize(name, tol)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if got := req("401.bzip2", 0.01); got != 4*chip.KB {
		t.Errorf("bzip2 requires %d, want 4KB", got)
	}
	if got := req("403.gcc", 0.01); got != 64*chip.KB {
		t.Errorf("gcc requires %d, want 64KB (paper §V-B)", got)
	}
	// Coarse tolerance can only shrink the requirement.
	for _, n := range fixtureNames {
		if req(n, 0.10) > req(n, 0.01) {
			t.Errorf("%s: coarse requirement exceeds fine", n)
		}
	}
	if _, err := tbl.RequiredSize("nope", 0.01); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestNUCASAAssignsBigNeedsToBigCaches(t *testing.T) {
	tbl, _, names := fixtures(t)
	a, err := NUCASA{Table: tbl, TolFrac: 0.01}.Assign(names, chip.NUCAGroupSizes[:])
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(len(names)); err != nil {
		t.Fatal(err)
	}
	coreOf := make(map[string]int)
	for core, w := range a {
		if w >= 0 {
			coreOf[names[w]] = core
		}
	}
	// gcc requires 64 KB; it must land in the largest group (cores 12-15).
	if c := coreOf["403.gcc"]; c < 12 {
		t.Errorf("gcc on core %d, want the 64KB group", c)
	}
	// bzip2 requires 4 KB; NUCA-SA must not waste a 64 KB slot on it.
	if c := coreOf["401.bzip2"]; c >= 12 {
		t.Errorf("bzip2 on core %d, wasting a 64KB slot", c)
	}
}

func TestPIEAssignsSteepestToLargest(t *testing.T) {
	tbl, _, names := fixtures(t)
	a, err := PIE{Table: tbl}.Assign(names, chip.NUCAGroupSizes[:])
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(len(names)); err != nil {
		t.Fatal(err)
	}
	gain := func(name string) float64 {
		ipc := tbl.IPC[name]
		return ipc[len(ipc)-1] / ipc[0]
	}
	// The steepest-gain workload must sit in the largest group; the
	// flattest in the smallest.
	steepest, flattest := names[0], names[0]
	for _, n := range names {
		if gain(n) > gain(steepest) {
			steepest = n
		}
		if gain(n) < gain(flattest) {
			flattest = n
		}
	}
	coreOf := map[string]int{}
	for core, w := range a {
		if w >= 0 {
			coreOf[names[w]] = core
		}
	}
	if coreOf[steepest] < 12 {
		t.Errorf("steepest (%s, gain %.2f) on core %d", steepest, gain(steepest), coreOf[steepest])
	}
	if coreOf[flattest] >= 4 {
		t.Errorf("flattest (%s, gain %.2f) on core %d", flattest, gain(flattest), coreOf[flattest])
	}
}

func TestPIERequiresTable(t *testing.T) {
	if _, err := (PIE{}).Assign([]string{"401.bzip2"}, chip.NUCAGroupSizes[:]); err == nil {
		t.Fatal("nil table accepted")
	}
	if (PIE{}).Name() != "PIE-like" {
		t.Fatal("name")
	}
}

func TestNUCASARequiresTable(t *testing.T) {
	if _, err := (NUCASA{}).Assign([]string{"401.bzip2"}, chip.NUCAGroupSizes[:]); err == nil {
		t.Fatal("nil table accepted")
	}
}

func TestSchedulerNames(t *testing.T) {
	if (Random{}).Name() != "Random" || (RoundRobin{}).Name() != "RoundRobin" {
		t.Fatal("baseline names")
	}
	if (NUCASA{TolFrac: 0.01}).Name() != "NUCA-SA(fg)" {
		t.Fatal("fg name")
	}
	if (NUCASA{TolFrac: 0.10}).Name() != "NUCA-SA(cg)" {
		t.Fatal("cg name")
	}
}

func TestFig8Ordering(t *testing.T) {
	// The reproduction core of Fig. 8: NUCA-SA beats both practical
	// baselines, and the fine-grained variant is at least as good as the
	// coarse-grained one.
	tbl, alone, names := fixtures(t)
	opt := evalOpts(alone)
	hsp := func(s Scheduler) float64 {
		ev, err := Evaluate(context.Background(), s, names, chip.NUCAGroupSizes[:], opt)
		if err != nil {
			t.Fatal(err)
		}
		return ev.Hsp
	}
	random := hsp(Random{Seed: 1})
	rr := hsp(RoundRobin{})
	cg := hsp(NUCASA{Table: tbl, TolFrac: 0.10})
	fg := hsp(NUCASA{Table: tbl, TolFrac: 0.01})
	t.Logf("Hsp: Random=%.4f RR=%.4f NUCA-SA(cg)=%.4f NUCA-SA(fg)=%.4f", random, rr, cg, fg)
	baselineBest := random
	if rr > baselineBest {
		baselineBest = rr
	}
	if fg <= baselineBest {
		t.Fatalf("NUCA-SA(fg) %.4f does not beat the best baseline %.4f", fg, baselineBest)
	}
	if cg <= (random+rr)/2 {
		t.Fatalf("NUCA-SA(cg) %.4f below baseline average %.4f", cg, (random+rr)/2)
	}
	if fg < cg-0.01 {
		t.Fatalf("fg %.4f clearly below cg %.4f", fg, cg)
	}
}

func TestEvaluateRecordsConsistentData(t *testing.T) {
	tbl, alone, names := fixtures(t)
	ev, err := Evaluate(context.Background(), NUCASA{Table: tbl, TolFrac: 0.01}, names, chip.NUCAGroupSizes[:], evalOpts(alone))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Scheduler != "NUCA-SA(fg)" {
		t.Fatal("scheduler name missing")
	}
	if len(ev.IPCShared) != len(names) || len(ev.IPCAlone) != len(names) {
		t.Fatal("per-workload vectors wrong length")
	}
	for w, n := range names {
		if ev.IPCShared[w] <= 0 {
			t.Errorf("%s: shared IPC %v", n, ev.IPCShared[w])
		}
		if ev.IPCAlone[w] <= 0 {
			t.Errorf("%s: alone IPC %v", n, ev.IPCAlone[w])
		}
	}
	if ev.Hsp <= 0 || ev.Hsp > 1.5 {
		t.Fatalf("Hsp = %v", ev.Hsp)
	}
	if ev.Cycles == 0 {
		t.Fatal("window length missing")
	}
}

func TestContentionDegradesVsAlone(t *testing.T) {
	// Weighted speedups should mostly be below 1: co-runners cannot
	// systematically speed a program up.
	_, alone, names := fixtures(t)
	ev, err := Evaluate(context.Background(), RoundRobin{}, names, chip.NUCAGroupSizes[:], evalOpts(alone))
	if err != nil {
		t.Fatal(err)
	}
	above := 0
	for w := range names {
		if ev.IPCShared[w] > ev.IPCAlone[w]*1.10 {
			above++
		}
	}
	if above > 2 {
		t.Fatalf("%d of %d programs sped up >10%% under contention", above, len(names))
	}
}

func TestCustomGroupSizes(t *testing.T) {
	// The scheduling machinery must work for a non-standard NUCA
	// geometry.
	sizes := []uint64{8 * chip.KB, 32 * chip.KB}
	names := []string{"401.bzip2", "456.hmmer", "444.namd", "403.gcc"}
	tbl, err := BuildProfileTable(context.Background(), names, sizes, ProfileOptions{Instructions: 5000, Warmup: 10000})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NUCASA{Table: tbl, TolFrac: 0.10}.Assign(names, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(len(names)); err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 {
		t.Fatalf("expected 8 cores, got %d", len(a))
	}
}
