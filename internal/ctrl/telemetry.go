package ctrl

// Control-plane telemetry: run lifecycle counters, scheduler queue
// gauges and SSE subscriber accounting, published into an internal/obs
// registry exposed on the fleet /metrics endpoint. Follows the obs
// nil-receiver contract — a nil *Telemetry ignores every probe — and,
// like the fabric coordinator's, all updates happen under the registry
// mutex that also guards the unsynchronised obs registry.

import (
	"lpm/internal/obs"
)

// Telemetry is the control plane's probe set.
type Telemetry struct {
	reg *obs.Registry

	pending *obs.Gauge
	running *obs.Gauge
	subs    *obs.Gauge

	submitted *obs.Counter
	done      *obs.Counter
	failed    *obs.Counter
	cancelled *obs.Counter
	rejected  *obs.Counter
	retried   *obs.Counter
	sseDrops  *obs.Counter
}

// NewTelemetry wires the control-plane probes into reg; a nil registry
// returns a nil Telemetry, the zero-cost off switch.
func NewTelemetry(reg *obs.Registry) *Telemetry {
	if reg == nil {
		return nil
	}
	return &Telemetry{
		reg:       reg,
		pending:   reg.Gauge("ctrl.runs_pending"),
		running:   reg.Gauge("ctrl.runs_running"),
		subs:      reg.Gauge("ctrl.sse_subscribers"),
		submitted: reg.Counter("ctrl.runs_submitted"),
		done:      reg.Counter("ctrl.runs_done"),
		failed:    reg.Counter("ctrl.runs_failed"),
		cancelled: reg.Counter("ctrl.runs_cancelled"),
		rejected:  reg.Counter("ctrl.runs_rejected"),
		retried:   reg.Counter("ctrl.runs_retried"),
		sseDrops:  reg.Counter("ctrl.sse_events_dropped"),
	}
}

// Retried counts a transient run failure re-executed under the retry
// policy.
func (t *Telemetry) Retried() {
	if t == nil {
		return
	}
	t.retried.Inc()
}

// SyncQueue refreshes the scheduler-shape gauges.
func (t *Telemetry) SyncQueue(pending, running int) {
	if t == nil {
		return
	}
	t.pending.Set(float64(pending))
	t.running.Set(float64(running))
}

// Submitted counts an accepted run submission.
func (t *Telemetry) Submitted() {
	if t == nil {
		return
	}
	t.submitted.Inc()
}

// Rejected counts a submission refused at validation.
func (t *Telemetry) Rejected() {
	if t == nil {
		return
	}
	t.rejected.Inc()
}

// Finished counts a run reaching a terminal state.
func (t *Telemetry) Finished(state RunState) {
	if t == nil {
		return
	}
	switch state {
	case StateDone:
		t.done.Inc()
	case StateFailed:
		t.failed.Inc()
	case StateCancelled:
		t.cancelled.Inc()
	}
}

// Subscribers adjusts the live SSE subscriber gauge by delta.
func (t *Telemetry) Subscribers(delta int) {
	if t == nil {
		return
	}
	t.subs.Set(t.subs.Value() + float64(delta))
}

// EventsDropped counts SSE ring overruns.
func (t *Telemetry) EventsDropped(n uint64) {
	if t == nil {
		return
	}
	t.sseDrops.Add(n)
}
