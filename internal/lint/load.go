package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the full import path (module path + "/" + Rel).
	Path string
	// Rel is the module-relative directory ("" for the root package).
	Rel string
	// Dir is the absolute directory.
	Dir string
	// Fset is the module-wide file set (shared across packages).
	Fset *token.FileSet
	// Syntax holds the parsed files, sorted by filename.
	Syntax []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info

	// Key is the content key the load cache stored this package under.
	Key string

	// srcLines maps each file's path to its source split into lines,
	// used by the suppression-directive scanner.
	srcLines map[string][]string

	// facts is the lazily-built per-function fact table (facts.go).
	factsOnce sync.Once
	facts     map[ast.Node]*FuncFacts
}

// Module is the loaded module: every non-test package, type-checked in
// dependency order against a shared file set.
type Module struct {
	// Root is the absolute module root directory.
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset is the shared file set.
	Fset *token.FileSet
	// Packages lists every package in dependency order.
	Packages []*Package

	graphOnce sync.Once
	graph     *CallGraph
}

// sourceFile is one buildable file's name and raw bytes.
type sourceFile struct {
	name string // base name
	path string // absolute path
	src  []byte
}

// dirInfo is the pre-parse view of one package directory: enough to
// compute content keys and the dependency order without type-checking.
type dirInfo struct {
	rel     string
	dir     string
	path    string // import path
	files   []sourceFile
	imports []string // module-internal import paths
	key     string   // filled in topo order
}

// Load parses and type-checks every package under root (the directory
// containing go.mod). Test files (*_test.go), testdata, vendor and
// hidden directories are skipped: the linted surface is the shipped
// tree. tags are extra build tags for //go:build evaluation.
//
// Results are cached process-wide, content-keyed per package (see
// cache.go): an unchanged package — same files, tags and dependency
// keys — is returned from cache without re-parsing or re-type-checking.
//
// Load fails if any file does not parse or any package does not
// type-check — the lint gate presumes a compiling tree.
func Load(root string, tags []string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}
	tagSet := buildTagSet(tags)

	dirs, err := packageDirs(absRoot)
	if err != nil {
		return nil, err
	}
	var infos []*dirInfo
	byPath := make(map[string]*dirInfo)
	for _, dir := range dirs {
		di, err := scanDir(absRoot, modPath, dir, tagSet)
		if err != nil {
			return nil, err
		}
		if di == nil {
			continue // no buildable files
		}
		infos = append(infos, di)
		byPath[di.path] = di
	}
	ordered, err := topoSort(infos, byPath)
	if err != nil {
		return nil, err
	}

	cache := cacheState()
	loaded := make(map[string]*Package, len(ordered))
	mod := &Module{Root: absRoot, Path: modPath, Fset: cache.fset}
	for _, di := range ordered {
		var depKeys []string
		for _, imp := range di.imports {
			if dep, ok := byPath[imp]; ok {
				depKeys = append(depKeys, dep.key)
			}
		}
		di.key = contentKey(modPath, di.rel, tags, di.files, depKeys)
		cache.mu.Lock()
		cache.loads++
		cache.mu.Unlock()
		pkg, err := cache.pkgs.Do(di.key, func() (*Package, error) {
			cache.mu.Lock()
			defer cache.mu.Unlock()
			cache.hits-- // balance the unconditional hit below
			return typeCheck(cache, modPath, di, loaded)
		})
		if err != nil {
			return nil, err
		}
		cache.mu.Lock()
		cache.hits++
		cache.mu.Unlock()
		loaded[di.path] = pkg
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// typeCheck parses and type-checks one package (a cache miss) against
// its already-loaded dependencies. Called with the cache lock held.
func typeCheck(cache *loadState, modPath string, di *dirInfo, deps map[string]*Package) (*Package, error) {
	pkg := &Package{
		Path: di.path, Rel: di.rel, Dir: di.dir, Fset: cache.fset, Key: di.key,
		srcLines: make(map[string][]string, len(di.files)),
	}
	pkgName := ""
	for _, sf := range di.files {
		f, err := parser.ParseFile(cache.fset, sf.path, sf.src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed package names %q and %q", di.dir, pkgName, f.Name.Name)
		}
		pkg.Syntax = append(pkg.Syntax, f)
		pkg.srcLines[sf.path] = strings.Split(string(sf.src), "\n")
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: &lockedImporter{modPath: modPath, deps: deps, std: cache.std},
		Error: func(err error) {
			if len(typeErrs) < 20 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(di.path, cache.fset, pkg.Syntax, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors:\n  %s", strings.Join(typeErrs, "\n  "))
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// packageDirs walks root collecting directories that may hold Go
// packages, skipping hidden, vendor and testdata trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// scanDir reads dir's buildable non-test files and their import lists
// (an imports-only parse — the full parse happens on a cache miss).
// Returns nil if the directory holds no buildable files.
func scanDir(root, modPath, dir string, tags map[string]bool) (*dirInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	importPath := modPath
	if rel != "" {
		importPath = modPath + "/" + rel
	}

	di := &dirInfo{rel: rel, dir: dir, path: importPath}
	impFset := token.NewFileSet()
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !filenameMatchesTarget(name) {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !constraintsSatisfied(src, tags) {
			continue
		}
		di.files = append(di.files, sourceFile{name: name, path: full, src: src})
		f, err := parser.ParseFile(impFset, full, src, parser.ImportsOnly)
		if err != nil {
			continue // the full parse on the miss path reports it
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
				seen[p] = true
				di.imports = append(di.imports, p)
			}
		}
	}
	if len(di.files) == 0 {
		return nil, nil
	}
	sort.Strings(di.imports)
	return di, nil
}

// topoSort orders packages so every module-internal dependency precedes
// its dependents.
func topoSort(infos []*dirInfo, byPath map[string]*dirInfo) ([]*dirInfo, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(infos))
	ordered := make([]*dirInfo, 0, len(infos))
	var visit func(p *dirInfo) error
	visit = func(p *dirInfo) error {
		switch state[p.path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.path)
		}
		state[p.path] = visiting
		for _, dep := range p.imports {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.path] = done
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range infos {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// buildTagSet assembles the tag universe for //go:build evaluation:
// user tags plus the host GOOS/GOARCH and compiler.
func buildTagSet(tags []string) map[string]bool {
	set := map[string]bool{runtime.GOOS: true, runtime.GOARCH: true, "gc": true}
	if runtime.GOOS == "linux" {
		set["unix"] = true
	}
	for _, t := range tags {
		if t = strings.TrimSpace(t); t != "" {
			set[t] = true
		}
	}
	return set
}

// constraintsSatisfied evaluates a file's //go:build line (if any,
// before the package clause) against the tag set. Release tags
// ("go1.N") always evaluate true.
func constraintsSatisfied(src []byte, tags map[string]bool) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return false // unparseable constraint: skip the file
		}
		return expr.Eval(func(tag string) bool {
			if strings.HasPrefix(tag, "go1.") {
				return true
			}
			return tags[tag]
		})
	}
	return true
}

// knownOS and knownArch drive _GOOS/_GOARCH filename filtering.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// filenameMatchesTarget applies Go's _GOOS/_GOARCH filename convention
// against the host platform.
func filenameMatchesTarget(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}
