package chip_test

import (
	"reflect"
	"testing"

	"lpm/internal/obs/timeseries"
	"lpm/internal/sim/chip"
)

// mustPanic asserts that fn panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one mentioning %q", want)
		}
		msg, ok := r.(string)
		if !ok || !containsStr(msg, want) {
			t.Fatalf("panic %v, want one mentioning %q", r, want)
		}
	}()
	fn()
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestFunctionalWarmsHierarchy: a functional warm-up leaves real
// architectural warmth behind — the detailed window after it sees L1
// hits immediately, unlike a cold start.
func TestFunctionalWarmsHierarchy(t *testing.T) {
	t.Parallel()
	const rounds = 20000
	run := func(warmed bool) uint64 {
		ch := chip.New(chip.SingleCore("456.hmmer"))
		if warmed {
			ch.SetTier(chip.TierFunctional)
			if err := ch.RunFunctional(rounds); err != nil {
				t.Fatal(err)
			}
			ch.SetTier(chip.TierDetailed)
		} else {
			// Advance the instruction stream to the same point without
			// warming anything, so both runs measure the same segment
			// and only the hierarchy state differs.
			for i := 0; i < rounds; i++ {
				ch.Core(0).FunctionalNext()
			}
		}
		ch.ResetCounters()
		ch.Run(2000, 4_000_000)
		return ch.Snapshot().Cores[0].L1Stats.Hits
	}
	cold := run(false)
	warm := run(true)
	if warm <= cold {
		t.Fatalf("functional warm-up did not warm the L1: cold hits %d, warmed hits %d", cold, warm)
	}
}

// TestFunctionalDeterminism: the functional-warm-then-measure pipeline
// is itself bit-reproducible run to run.
func TestFunctionalDeterminism(t *testing.T) {
	t.Parallel()
	run := func() chip.Report {
		ch := chip.New(chip.SingleCore("429.mcf"))
		ch.SetTier(chip.TierFunctional)
		if err := ch.RunFunctional(15000); err != nil {
			t.Fatal(err)
		}
		ch.SetTier(chip.TierDetailed)
		ch.ResetCounters()
		ch.Run(3000, 4_000_000)
		return ch.Snapshot()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("functional warm-up not deterministic\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestFunctionalTierResumesCleanly: after a tier round-trip the
// detailed engine still drains and completes a full run — the
// functional engine left every queue untouched.
func TestFunctionalTierResumesCleanly(t *testing.T) {
	t.Parallel()
	ch := chip.New(chip.SingleCore("433.milc"))
	ch.SetTier(chip.TierFunctional)
	if err := ch.RunFunctional(5000); err != nil {
		t.Fatal(err)
	}
	ch.SetTier(chip.TierDetailed)
	ch.ResetCounters()
	cycles, completed := ch.Run(4000, 4_000_000)
	if !completed {
		t.Fatalf("detailed run did not complete after tier round-trip (ran %d cycles)", cycles)
	}
	if ch.Busy() {
		t.Fatal("chip still busy after a drained detailed run")
	}
}

// TestTierGuards: the detailed-only entry points refuse the functional
// tier, RunFunctional refuses the detailed tier, and SetTier refuses to
// strand in-flight detailed work.
func TestTierGuards(t *testing.T) {
	t.Parallel()
	ch := chip.New(chip.SingleCore("410.bwaves"))
	if got := ch.Tier(); got != chip.TierDetailed {
		t.Fatalf("fresh chip tier = %v, want detailed", got)
	}
	mustPanic(t, "RunFunctional requires the functional tier", func() { ch.RunFunctional(1) })

	ch.SetTier(chip.TierFunctional)
	mustPanic(t, "Tick requires the detailed tier", func() { ch.Tick() })
	mustPanic(t, "Snapshot requires the detailed tier", func() { ch.Snapshot() })
	mustPanic(t, "Measure requires the detailed tier", func() { ch.Measure(0, 1) })
	mustPanic(t, "EnableTimeseries requires the detailed tier", func() { ch.EnableTimeseries(timeseries.Config{Width: 1024, MaxWindows: 4}) })

	ch.SetTier(chip.TierDetailed)
	ch.Run(50, 1_000_000)
	if ch.Busy() {
		// Mid-flight work: switching tiers now must refuse.
		mustPanic(t, "detailed work in flight", func() { ch.SetTier(chip.TierFunctional) })
	}
}

// TestTierStrings covers the Stringer.
func TestTierStrings(t *testing.T) {
	t.Parallel()
	if chip.TierDetailed.String() != "detailed" || chip.TierFunctional.String() != "functional" {
		t.Fatal("tier names changed")
	}
}
