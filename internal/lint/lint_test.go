package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden-diagnostic harness: each analyzer has a fixture module
// under testdata/src/<name>/ whose sources carry `// want "substring"`
// comments on the lines expected to produce findings. A fixture run
// must match its wants exactly — every diagnostic consumed by a want,
// every want consumed by a diagnostic — so both false positives and
// false negatives fail the test.

// wantRe captures everything after a `// want` marker; the quoted
// substrings inside are the expectations for that line.
var wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)

// quotedRe matches one Go-quoted string (with escapes).
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file    string // fixture-relative, slash-separated
	line    int
	substr  string
	matched bool
}

// collectWants scans every fixture source for want comments.
func collectWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRe.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				return fmt.Errorf("%s:%d: want comment with no quoted expectation", rel, i+1)
			}
			for _, q := range quoted {
				s, err := strconv.Unquote(q)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want string %s: %v", rel, i+1, q, err)
				}
				wants = append(wants, &expectation{file: rel, line: i + 1, substr: s})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// checkWants matches diagnostics against expectations one-to-one.
func checkWants(t *testing.T, root string, diags []Diagnostic) {
	t.Helper()
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, root)
	for _, d := range diags {
		rel, err := filepath.Rel(absRoot, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		rel = filepath.ToSlash(rel)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == rel && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s:%d:%d: [%s] %s", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.substr)
		}
	}
}

// fixtureTest loads testdata/src/<name> with only that analyzer enabled
// and compares against the fixture's want comments.
func fixtureTest(t *testing.T, name string) {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	diags, err := Run(Config{Dir: root, Enable: []string{name}})
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	checkWants(t, root, diags)
}

func TestDeterminismFixture(t *testing.T)   { t.Parallel(); fixtureTest(t, "determinism") }
func TestMapOrderFixture(t *testing.T)      { t.Parallel(); fixtureTest(t, "maporder") }
func TestFloatEqFixture(t *testing.T)       { t.Parallel(); fixtureTest(t, "floateq") }
func TestObsDisciplineFixture(t *testing.T) { t.Parallel(); fixtureTest(t, "obsdiscipline") }

func TestTierDisciplineFixture(t *testing.T) { t.Parallel(); fixtureTest(t, "tierdiscipline") }
func TestErrcheckFixture(t *testing.T)       { t.Parallel(); fixtureTest(t, "errcheck") }

func TestHotPathAllocFixture(t *testing.T) { t.Parallel(); fixtureTest(t, "hotpathalloc") }
func TestCtxFlowFixture(t *testing.T)      { t.Parallel(); fixtureTest(t, "ctxflow") }
func TestFabricProtoFixture(t *testing.T)  { t.Parallel(); fixtureTest(t, "fabricproto") }

func TestRetryDisciplineFixture(t *testing.T) { t.Parallel(); fixtureTest(t, "retrydiscipline") }

// TestScopeOverride re-aims floateq at internal/sim via Config.Scopes:
// the out-of-scope file's compare surfaces, the in-scope one's do not.
func TestScopeOverride(t *testing.T) {
	t.Parallel()
	root := filepath.Join("testdata", "src", "floateq")
	diags, err := Run(Config{
		Dir:    root,
		Enable: []string{"floateq"},
		Scopes: map[string][]string{"floateq": {"internal/sim"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics under -scope floateq=internal/sim, want 1: %v", len(diags), diags)
	}
	if base := filepath.Base(diags[0].Pos.Filename); base != "wobble.go" {
		t.Errorf("finding in %s, want wobble.go", base)
	}
}

// TestPathRestriction narrows the linted packages (the CLI's positional
// patterns) rather than the analyzer scope.
func TestPathRestriction(t *testing.T) {
	t.Parallel()
	root := filepath.Join("testdata", "src", "errcheck")
	diags, err := Run(Config{Dir: root, Enable: []string{"errcheck"}, Paths: []string{"cmd"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !strings.Contains(filepath.ToSlash(d.Pos.Filename), "/cmd/") {
			t.Errorf("finding outside cmd/ with Paths=[cmd]: %s", d)
		}
	}
	if len(diags) != 3 {
		t.Errorf("got %d findings in cmd/, want 3: %v", len(diags), diags)
	}
}

// TestSuppressionsFixture runs the full suite (unused-suppression
// tracking needs it) and asserts the exact diagnostic set, since want
// comments cannot ride on directive lines.
func TestSuppressionsFixture(t *testing.T) {
	t.Parallel()
	root := filepath.Join("testdata", "src", "suppress")
	diags, err := Run(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	type exp struct {
		line     int
		analyzer string
		substr   string
	}
	want := []exp{
		{37, "lint", "a non-empty reason is required"},
		{38, "floateq", "floating-point =="},
		{43, "lint", "not a registered analyzer"},
		{49, "lint", "matches no finding"},
		// Renamed: the stale name reports, the surviving floateq name
		// still suppresses the finding on line 58.
		{57, "lint", "not a registered analyzer"},
		// AllRenamed: every name is stale — the directive reports once,
		// suppresses nothing, and must not double-report as unused.
		{64, "lint", "not a registered analyzer"},
		{65, "floateq", "floating-point =="},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Line != w.line || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.substr) {
			t.Errorf("diag %d = %s, want line %d [%s] ~%q", i, d, w.line, w.analyzer, w.substr)
		}
	}
}

// TestUnusedSuppressionOnlyFullSuite: with a partial suite the stale
// directive must NOT be reported — the analyzer it names did not run.
func TestUnusedSuppressionOnlyFullSuite(t *testing.T) {
	t.Parallel()
	root := filepath.Join("testdata", "src", "suppress")
	diags, err := Run(Config{Dir: root, Enable: []string{"maporder"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "matches no finding") {
			t.Errorf("unused-suppression report under a partial suite: %s", d)
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	t.Parallel()
	if _, err := Run(Config{Dir: filepath.Join("testdata", "src", "floateq"), Enable: []string{"nosuch"}}); err == nil {
		t.Error("Run with unknown -enable name succeeded, want error")
	}
	if _, err := Run(Config{Dir: filepath.Join("testdata", "src", "floateq"), Scopes: map[string][]string{"bogus": {"x"}}}); err == nil {
		t.Error("Run with unknown -scope name succeeded, want error")
	}
}

func TestParseIgnoreDirective(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in        string
		ok        bool
		wantErr   bool
		analyzers []string
		reason    string
	}{
		{"//lint:ignore floateq the reason", true, false, []string{"floateq"}, "the reason"},
		{"//lint:ignore floateq,maporder two analyzers", true, false, []string{"floateq", "maporder"}, "two analyzers"},
		{"//lint:ignore errcheck   padded   reason", true, false, []string{"errcheck"}, "padded   reason"},
		{"// a plain comment", false, false, nil, ""},
		{"//lint:ignoreall not a directive", false, false, nil, ""},
		{"//lint:ignore", true, true, nil, ""},
		{"//lint:ignore floateq", true, true, nil, ""},
		{"//lint:ignore ,floateq missing name", true, true, nil, ""},
		{"//lint:ignore Float$ bad characters", true, true, nil, ""},
	}
	for _, c := range cases {
		analyzers, reason, ok, err := ParseIgnoreDirective(c.in)
		if ok != c.ok || (err != nil) != c.wantErr {
			t.Errorf("ParseIgnoreDirective(%q) = ok %v err %v, want ok %v err %v", c.in, ok, err, c.ok, c.wantErr)
			continue
		}
		if c.wantErr {
			continue
		}
		if fmt.Sprint(analyzers) != fmt.Sprint(c.analyzers) || reason != c.reason {
			t.Errorf("ParseIgnoreDirective(%q) = %v %q, want %v %q", c.in, analyzers, reason, c.analyzers, c.reason)
		}
	}
}

// TestRepoIsLintClean is the dogfood gate: the repository itself must
// lint clean under the full suite.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	t.Parallel()
	diags, err := Run(Config{Dir: "../.."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// FuzzLintIgnoreDirective hardens the directive parser: arbitrary
// comment text must never panic, and a malformed directive must never
// come back as a usable suppression (that would be a silent blanket
// ignore).
func FuzzLintIgnoreDirective(f *testing.F) {
	seeds := []string{
		"//lint:ignore floateq the reason",
		"//lint:ignore floateq,maporder two analyzers",
		"//lint:ignore",
		"//lint:ignore floateq",
		"//lint:ignore ,, reasons",
		"//lint:ignoreall not a directive",
		"// plain comment",
		"//lint:ignore \t weird\tspacing  here",
		"//lint:ignore détérminisme accented name",
		"//lint:ignore errcheck \x00 control bytes",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		analyzers, reason, ok, err := ParseIgnoreDirective(text)
		if !ok {
			if err != nil || analyzers != nil || reason != "" {
				t.Fatalf("not-a-directive result must be empty: %v %q %v", analyzers, reason, err)
			}
			return
		}
		if err != nil {
			if analyzers != nil || reason != "" {
				t.Fatalf("malformed directive must not yield suppressions: %v %q", analyzers, reason)
			}
			return
		}
		if len(analyzers) == 0 {
			t.Fatal("well-formed directive with no analyzers")
		}
		if strings.TrimSpace(reason) == "" {
			t.Fatal("well-formed directive with empty reason")
		}
		for _, name := range analyzers {
			if name == "" {
				t.Fatal("well-formed directive with empty analyzer name")
			}
			for _, r := range name {
				if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
					t.Fatalf("analyzer name %q escaped the allowed alphabet", name)
				}
			}
		}
	})
}
