package explore

// SimSpec makes one design-point simulation portable: every input the
// simulation depends on, flattened into exported JSON-safe fields, so a
// granule can cross the sweep fabric's wire and produce the same
// Measurement on any worker that it would have produced in-process.

import (
	"context"
	"encoding/json"
	"fmt"

	"lpm/internal/core"
	"lpm/internal/fabric"
	"lpm/internal/obs/timeseries"
	"lpm/internal/parallel"
	"lpm/internal/sim/chip"
	"lpm/internal/trace"
)

// SimKind is the fabric granule kind for design-point simulations.
const SimKind = "explore.sim"

// SimSpec is the full input fingerprint of one design-point simulation.
// RunSimSpec is a pure function of it (WatchdogCycles excepted: a
// watchdog budget can only turn a livelock into an error, never change
// a successful measurement, so it rides along without joining the key).
type SimSpec struct {
	Point          Point
	Profile        trace.Profile
	Instructions   uint64
	Warmup         uint64
	MaxCycles      uint64
	Observe        bool
	Timeline       bool
	TimelineWindow uint64
	WarmupFast     bool
	WatchdogCycles uint64
}

// MemoKey derives the content key shared by the in-process memo, the
// checkpoint files, and the fabric's result cache. The part order is
// load-bearing: it must stay exactly what the pre-fabric code passed to
// parallel.KeyOf, or existing checkpoints stop resuming warm.
func (s SimSpec) MemoKey() string {
	return parallel.KeyOf("explore.simulate", s.Point, s.Profile,
		s.Instructions, s.Warmup, s.MaxCycles,
		s.Observe, s.Timeline, s.TimelineWindow, s.WarmupFast)
}

// RunSimSpec runs the cycle-level simulation the spec describes. It is
// the pure function behind both the explore.sim memo and the fabric's
// SimKind granule: it builds a fresh generator and chip per call and
// touches no shared state, so concurrent calls are safe and results are
// deterministic for a given spec.
func RunSimSpec(ctx context.Context, s SimSpec) (core.Measurement, error) {
	budget := s.WatchdogCycles
	if budget == 0 {
		budget = DefaultWatchdogCycles
	}
	gen := trace.NewSynthetic(s.Profile)
	cfg := ChipConfig(s.Point, gen)
	cpiExe := chip.MeasureCPIexe(cfg.Cores[0].CPU, gen, uint64(cfg.Cores[0].L1.HitLatency), s.Instructions)
	ch := chip.New(cfg)
	ch.SetContext(ctx)
	ch.SetWatchdog(budget)
	if s.Observe {
		ch.EnableObs()
	}
	runTarget := s.Warmup + s.Instructions
	if s.WarmupFast {
		ch.SetTier(chip.TierFunctional)
		ch.RunFunctional(s.Warmup)
		ch.SetTier(chip.TierDetailed)
		runTarget = s.Instructions // functionally-warmed cores retired nothing
	} else {
		ch.RunUntilRetired(s.Warmup, s.MaxCycles)
	}
	if err := ch.Err(); err != nil {
		return core.Measurement{}, fmt.Errorf("simulate %s: %w", s.Profile.Name, err)
	}
	ch.ResetCounters()
	if s.Timeline {
		// Attached after warm-up and reset so the windows tile exactly
		// the measured interval.
		ch.EnableTimeseries(timeseries.Config{Width: s.TimelineWindow, CPIexe: cpiExe})
	}
	ch.Run(runTarget, s.MaxCycles)
	if err := ch.Err(); err != nil {
		return core.Measurement{}, fmt.Errorf("simulate %s: %w", s.Profile.Name, err)
	}
	return ch.Measure(0, cpiExe), nil
}

// The granule executor: workers decode the spec and call the same pure
// function the in-process path uses — there is exactly one simulation
// code path whether a run is serial, parallel, or sharded.
func init() {
	fabric.RegisterKind(SimKind, func(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
		var s SimSpec
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("explore: decode %s spec: %w", SimKind, err)
		}
		m, err := RunSimSpec(ctx, s)
		if err != nil {
			return nil, err
		}
		return json.Marshal(m)
	})
}
