package noc

// Functional-tier warming (see cache.Warmer): the router carries no
// architectural state worth warming — its queues and in-flight tables
// are timing structures — so it forwards warm traffic straight to the
// layer below.

import "lpm/internal/sim/cache"

// WarmFetch implements cache.Warmer.
func (r *Router) WarmFetch(stamp uint64, src int, block uint64, write bool) {
	if w, ok := r.lower.(cache.Warmer); ok {
		w.WarmFetch(stamp, src, block, write)
	}
}

// WarmWriteback implements cache.Warmer.
func (r *Router) WarmWriteback(stamp uint64, src int, block uint64) {
	if w, ok := r.lower.(cache.Warmer); ok {
		w.WarmWriteback(stamp, src, block)
	}
}
