// Package lint is the repository's self-contained static-analysis
// driver: it loads every package in the module with go/parser, resolves
// types with go/types (stdlib importers only — no x/tools, per DESIGN's
// stdlib-only rule), and runs a table of custom analyzers that enforce
// the simulator's determinism, accounting and observability invariants.
//
// The invariants are the ones the compiler cannot see but the paper's
// method depends on: simulations must be bit-reproducible from their
// seed (no wall clocks, no global RNG, no map-iteration order leaking
// into results or memo keys), model quantities must be compared with
// tolerances rather than ==, metric names must be snapshot-stable
// constants, the obs layer must keep its nil-receiver zero-cost off
// path, and io/encoding write errors in the CLIs must propagate.
//
// Findings print as "file:line:col: [analyzer] message". A finding can
// be suppressed with a `//lint:ignore analyzer reason` comment on (or
// immediately above) the offending line; the reason is mandatory and a
// suppression that matches nothing is itself a finding, so stale or
// blanket suppressions cannot accumulate. See DESIGN.md §8.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name (or "lint" for driver
	// findings such as malformed suppression directives).
	Analyzer string
	// Message describes the violated invariant.
	Message string
}

// String renders the canonical "file:line:col: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Analyzer is one table-registered invariant check. Adding a rule to the
// suite means writing one file defining an Analyzer and listing it in
// Analyzers; the driver, CLI flags, suppressions and golden-test harness
// pick it up by name.
type Analyzer struct {
	// Name is the stable identifier used in output, -enable/-disable
	// flags and //lint:ignore directives.
	Name string
	// Doc is a one-line description printed by `lpmlint -list`.
	Doc string
	// Paths are module-relative path prefixes the analyzer is scoped to
	// by default ("internal/sim" covers internal/sim/...). The special
	// pattern "." means the module root package only. An empty list
	// applies the analyzer to every package.
	Paths []string
	// Run inspects one type-checked package and reports findings.
	// Exactly one of Run and RunModule is set.
	Run func(*Pass)
	// RunModule inspects the whole module at once — the interprocedural
	// analyzers that follow facts across the call graph. Module
	// analyzers scope themselves by their roots; Paths only narrows
	// where their findings may land.
	RunModule func(*ModulePass)
}

// Analyzers returns the full analyzer table in registration order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerDeterminism,
		analyzerMapOrder,
		analyzerFloatEq,
		analyzerObsDiscipline,
		analyzerTierDiscipline,
		analyzerErrcheck,
		analyzerHotPathAlloc,
		analyzerCtxFlow,
		analyzerFabricProto,
		analyzerRetryDiscipline,
	}
}

// analyzerByName resolves a -enable/-disable/-scope name.
func analyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass hands one package to one analyzer.
type Pass struct {
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass hands the whole loaded module (and its call graph) to one
// interprocedural analyzer.
type ModulePass struct {
	// Mod is the loaded module.
	Mod *Module
	// Graph is the module's call graph (built once, shared by every
	// module analyzer in the run).
	Graph *CallGraph

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Mod.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// matchRel reports whether a module-relative package path rel falls
// under the path pattern (see Analyzer.Paths for the pattern language).
func matchRel(rel, pattern string) bool {
	if pattern == "." {
		return rel == ""
	}
	return rel == pattern || strings.HasPrefix(rel, pattern+"/")
}

// matchAny reports whether rel falls under any pattern; an empty pattern
// list matches everything.
func matchAny(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if matchRel(rel, p) {
			return true
		}
	}
	return false
}

// typeIsFloat reports whether t's underlying type is a floating-point
// basic type.
func typeIsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// funcFor returns the object a call expression's callee resolves to, or
// nil for calls through non-selector/ident expressions (function
// values, conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// inspectSameFunc walks n's subtree calling f on every node but does not
// descend into nested function literals, so analyzers can reason about
// one function body at a time.
func inspectSameFunc(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}
