package ctrl

// The fleet load test: the control plane is hammered with concurrent
// /metrics scrapes and SSE subscribers (including deliberately slow
// consumers) while a sharded report builds through a real loopback
// fabric with a worker killed mid-run. The sharded document must come
// out byte-identical to the serial baseline — observability and
// streaming load must never perturb results — and the fabric's
// telemetry must be visible on the fleet endpoint afterwards.
//
// This is the race-enabled serve suite (`make serve-test`); the whole
// test is watchdog-guarded so a deadlock fails loudly instead of
// hanging CI.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lpm"
	"lpm/internal/fabric"
	"lpm/internal/obs"
)

// runnerFunc adapts a function to the Runner interface.
type runnerFunc func(ctx context.Context, spec RunSpec, pub *Publisher) (json.RawMessage, error)

func (f runnerFunc) Run(ctx context.Context, spec RunSpec, pub *Publisher) (json.RawMessage, error) {
	return f(ctx, spec, pub)
}

// loadScale keeps the serial/sharded comparison affordable under the
// race detector while the scrape/SSE storm runs.
var loadScale = lpm.Scale{Warmup: 12000, Window: 4000}

// buildLoadDoc builds the lpm-report/v2 document compared serial vs
// sharded: the Table I configuration sweep.
func buildLoadDoc(t *testing.T) []byte {
	t.Helper()
	rep, err := lpm.BuildReport(lpm.ReportOptions{Scale: loadScale, Experiments: []string{"table1"}})
	if err != nil {
		t.Fatalf("building report: %v", err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return data
}

func TestServeLoadShardedDeterminism(t *testing.T) {
	// Watchdog: a wedged subscriber or a deadlocked scheduler must fail
	// the test, not hang the suite.
	guard := time.AfterFunc(5*time.Minute, func() {
		panic("ctrl: load test watchdog expired — control plane deadlocked under load")
	})
	defer guard.Stop()

	defer func() { lpm.SetWorkers(0); lpm.ResetSimCaches() }()
	lpm.ResetSimCaches()
	lpm.SetWorkers(4)
	serial := buildLoadDoc(t)

	// A real loopback fabric with coordinator telemetry on, feeding the
	// fleet endpoint while the sharded build runs through it.
	lpm.ResetSimCaches()
	fabricObs := obs.NewRegistry()
	lf, err := fabric.StartLocal(2,
		fabric.Options{StraggleAfter: -1, Obs: fabricObs},
		fabric.WorkerOptions{Slots: 2})
	if err != nil {
		t.Fatalf("starting fabric: %v", err)
	}
	defer lf.Close()

	// One runner, two behaviors keyed off the workload: the burst run
	// publishes its 600 windows flat out; the stream runs pace theirs
	// so the storm overlaps live publication.
	burst := &stubRunner{windows: 600}
	stream := &stubRunner{windows: 600, delay: time.Millisecond}
	run := runnerFunc(func(ctx context.Context, spec RunSpec, pub *Publisher) (json.RawMessage, error) {
		if spec.Workload == "403.gcc" {
			return burst.Run(ctx, spec, pub)
		}
		return stream.Run(ctx, spec, pub)
	})
	reg := NewRegistry(context.Background(), Config{
		Runner:        run,
		MaxConcurrent: 2,
		TenantBudget:  1,
		Fabric:        lf.C,
	})
	defer reg.Drain()
	mux := NewAPIMux(reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// r-1: the burst run finishes before any subscriber attaches —
	// catch-up preloads then overflow the 256-event rings, making drop
	// accounting deterministic. r-2/r-3: live streams for the duration
	// of the storm, on two tenants.
	if _, err := reg.Submit(RunSpec{Workload: "403.gcc", Tenant: "acme"}); err != nil {
		t.Fatalf("submit burst run: %v", err)
	}
	waitState(t, reg, "r-1", StateDone)
	if _, err := reg.Submit(RunSpec{Workload: "429.mcf", Tenant: "acme"}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := reg.Submit(RunSpec{Workload: "433.milc", Tenant: "beta"}); err != nil {
		t.Fatalf("submit: %v", err)
	}

	var (
		wg         sync.WaitGroup
		dropEvents atomic.Uint64
		doneEvents atomic.Uint64
		scrapeErrs atomic.Uint64
	)

	// 100 SSE subscribers: 50 on the finished burst run (instant
	// catch-up through an overflowing ring), 50 on the live runs. Odd
	// subscribers are deliberately slow consumers. Every subscriber
	// audits its own stream: event ids must be strictly increasing (no
	// window arrives twice), and for the burst run — whose event count
	// is fixed at 600 windows + done — received events plus reported
	// drops must account for exactly the published total.
	subscribe := func(id int, runID string, slow bool) {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/api/v1/runs/" + runID + "/events")
		if err != nil {
			t.Errorf("subscriber %d: %v", id, err)
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var (
			lines        int
			lastID       uint64
			received     uint64 // id-carrying events seen (windows + done)
			dropReported uint64 // sum of drop-event payloads
			inDrop       bool
		)
		for sc.Scan() {
			line := sc.Text()
			if v, ok := strings.CutPrefix(line, "id: "); ok {
				var eid uint64
				fmt.Sscanf(v, "%d", &eid)
				if eid <= lastID {
					t.Errorf("subscriber %d: id %d after %d — duplicated or reordered event", id, eid, lastID)
					return
				}
				lastID = eid
				received++
			}
			if inDrop {
				if v, ok := strings.CutPrefix(line, "data: "); ok {
					var body struct {
						Dropped uint64 `json:"dropped"`
					}
					if err := json.Unmarshal([]byte(v), &body); err != nil {
						t.Errorf("subscriber %d: drop payload %q: %v", id, v, err)
						return
					}
					dropReported += body.Dropped
					inDrop = false
				}
			}
			if ev, ok := strings.CutPrefix(line, "event: "); ok {
				switch ev {
				case "drop":
					dropEvents.Add(1)
					inDrop = true
				case "done":
					doneEvents.Add(1)
					if runID == "r-1" {
						// The drop accounting must close the books: every
						// one of the burst run's 601 events (600 windows +
						// this done, whose id line is still unread) was
						// either delivered or counted as dropped.
						if received+1+dropReported != 601 {
							t.Errorf("subscriber %d: received %d + dropped %d != 600 window events",
								id, received, dropReported)
						}
					}
					return
				}
			}
			lines++
			if slow && lines%10 == 0 {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	for i := 0; i < 100; i++ {
		wg.Add(1)
		runID := "r-1"
		if i >= 50 {
			runID = fmt.Sprintf("r-%d", 2+i%2)
		}
		go subscribe(i, runID, i%2 == 1)
	}

	// 1000 concurrent fleet scrapes, straight into the handler so the
	// storm is bounded by the mux, not by socket limits.
	for i := 0; i < 1000; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if rec.Code != http.StatusOK {
				scrapeErrs.Add(1)
			}
		}()
	}

	// Kill a founding worker mid-build — from the coordinator's side a
	// crash; its granules re-queue and the document must not notice.
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		time.Sleep(20 * time.Millisecond)
		if err := lf.StopWorker("local-1"); err != nil {
			t.Errorf("stopping worker: %v", err)
		}
	}()

	sharded := buildLoadDoc(t)
	churn.Wait()
	wg.Wait()

	if !bytes.Equal(serial, sharded) {
		t.Fatalf("sharded report diverged from serial under scrape/SSE load (serial %d bytes, sharded %d bytes)",
			len(serial), len(sharded))
	}
	if n := scrapeErrs.Load(); n > 0 {
		t.Fatalf("%d of 1000 fleet scrapes failed", n)
	}
	if n := doneEvents.Load(); n < 50 {
		t.Fatalf("only %d/100 subscribers saw a done event (the 50 burst-run subscribers all must)", n)
	}
	if dropEvents.Load() == 0 {
		t.Fatal("no subscriber ever saw a drop event — ring backpressure accounting is dead")
	}
	st := lf.C.Stats()
	if st.Completed == 0 {
		t.Fatalf("stats=%+v: no granule went through the fabric", st)
	}

	// The post-storm fleet scrape carries all three metric families:
	// control plane, per-run, and fabric.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	fleet := rec.Body.String()
	for _, want := range []string{
		"lpm_ctrl_runs_submitted 3",
		"lpm_ctrl_sse_events_dropped",
		`lpm_stub_windows{run="r-1",tenant="acme"} 600`,
		`component="fabric"`,
		"lpm_fabric_granules_completed",
	} {
		if !strings.Contains(fleet, want) {
			t.Fatalf("fleet /metrics lacks %q:\n%.2000s", want, fleet)
		}
	}

	// The fleet health endpoint serves the coordinator's snapshot: the
	// surviving worker's row and the scheduling counters.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/fleet", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/v1/fleet: status %d", rec.Code)
	}
	var health struct {
		Workers []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"workers"`
		Stats struct {
			Completed uint64 `json:"Completed"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("/api/v1/fleet decode: %v\n%s", err, rec.Body.String())
	}
	if len(health.Workers) == 0 || health.Stats.Completed == 0 {
		t.Fatalf("/api/v1/fleet: %s", rec.Body.String())
	}
}
