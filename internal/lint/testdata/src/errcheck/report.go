// Package report sits at the module root, which errcheck covers: the
// report builders feed the CLIs, so their dropped writes matter too.
package report

import (
	"bytes"
	"fmt"
)

// Build assembles a report.
func Build(rows []string) string {
	var buf bytes.Buffer
	for _, r := range rows {
		buf.WriteString(r) // want "Buffer.WriteString returns an error that is dropped"
		_ = buf.WriteByte('\n')
	}
	fmt.Fprintf(&buf, "%d rows\n", len(rows)) // want "fmt.Fprintf returns an error that is dropped"
	return buf.String()
}
