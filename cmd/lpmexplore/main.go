// Command lpmexplore runs the paper's case study I: LPM-guided design
// space exploration on a reconfigurable single-core architecture. It
// starts from Table I's configuration A and walks the one-million-point
// space with the Fig. 3 LPMR-reduction algorithm, printing each step.
//
// Usage:
//
//	lpmexplore -grain fine -workload 410.bwaves
//	lpmexplore -json -observe       # machine-readable lpm-explore/v1 document
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"

	"lpm"
	"lpm/internal/cliutil"
	"lpm/internal/core"
	"lpm/internal/explore"
	"lpm/internal/parallel"
	"lpm/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// startPprof serves net/http/pprof on addr in the background; an empty
// addr disables it.
func startPprof(addr string, stderr io.Writer) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(stderr, "pprof: %v\n", err)
		}
	}()
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmexplore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload  = fs.String("workload", "410.bwaves", "built-in workload profile")
		grain     = fs.String("grain", "fine", "stall target: fine (1%) or coarse (10%)")
		warmup    = fs.Uint64("warmup", 250000, "warm-up instructions per evaluation")
		window    = fs.Uint64("window", 30000, "measured instructions per evaluation")
		start     = fs.String("start", "A", "starting Table I configuration (A..E)")
		maxSteps  = fs.Int("maxsteps", 32, "algorithm step bound")
		workers   = fs.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		speculate = fs.Bool("speculate", false,
			"pre-evaluate the one-step knob frontier in parallel at each new point (same walk, more total simulation, less wall-clock)")
		jsonOut  = fs.Bool("json", false, "emit a versioned lpm-explore/v1 JSON document on stdout")
		observe  = fs.Bool("observe", false, "attach per-layer metrics snapshots to every measurement")
		pprofCfg = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetWorkers(*workers)
	startPprof(*pprofCfg, stderr)

	prof, err := trace.ProfileByName(*workload)
	if err != nil {
		return err
	}
	g := core.FineGrain
	if *grain == "coarse" {
		g = core.CoarseGrain
	}
	startPt, ok := explore.TableConfigs()[*start]
	if !ok {
		return fmt.Errorf("unknown start configuration %q", *start)
	}

	space := explore.DefaultSpace()
	tgt := explore.NewHardwareTarget(space, startPt, prof)
	tgt.Warmup = *warmup
	tgt.Instructions = *window
	tgt.Speculate = *speculate
	tgt.Observe = *observe

	pr := cliutil.NewPrinter(stdout)
	if !*jsonOut {
		pr.Printf("design space: %d points; start: %s (%s)\n", space.Size(), *start, startPt)
	}
	res, final := tgt.RunAlgorithm(core.AlgorithmConfig{Grain: g, SlackFrac: 0.5, MaxSteps: *maxSteps})

	if *jsonOut {
		rep := lpm.NewExploreReport(*workload, g.String(), *start, tgt, res, final)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	for i, st := range res.Steps {
		t2 := "-"
		if st.T2Valid {
			t2 = fmt.Sprintf("%.3f", st.T2)
		}
		pr.Printf("step %2d  case %-26s LPMR1=%.3f LPMR2=%.3f  T1=%.3f T2=%s  stall=%.4f\n",
			i+1, st.Case, st.Before.LPMR1(), st.Before.LPMR2(), st.T1, t2, st.Before.MeasuredStall)
	}
	pr.Println()
	pr.Printf("final configuration: %s  (cost %.0f)\n", final, final.Cost())
	pr.Printf("final: %s  stall=%.4f (%.2f%% of CPIexe)\n",
		res.Final, res.Final.MeasuredStall, 100*res.Final.MeasuredStall/res.Final.CPIexe)
	pr.Printf("converged=%v metTarget=%v  simulations=%d (%.4f%% of the space)\n",
		res.Converged, res.MetTarget, tgt.Evaluations(),
		100*float64(tgt.Evaluations())/float64(space.Size()))
	return pr.Err()
}
