// Package mapuse is the maporder fixture: every order-sensitive sink
// once, next to its compliant counterpart.
package mapuse

import (
	"fmt"
	"sort"
	"strings"

	"lpm/internal/parallel"
)

// Unsorted leaks map order into the returned slice.
func Unsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to \"out\" in map-iteration order"
	}
	return out
}

// Sorted is the compliant pattern: collect, then sort.
func Sorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PerIteration appends to a slice declared inside the loop body; each
// iteration sees a fresh slice, so order cannot leak.
func PerIteration(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		doubled := append([]int(nil), vs...)
		total += len(doubled)
	}
	return total
}

// SliceRange shows the rule only fires on map ranges.
func SliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// PrintAll writes output in map order.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside a map range"
	}
}

// Join builds a string in map order.
func Join(m map[string]int) string {
	s := ""
	for k := range m {
		s = fmt.Sprintf("%s,%s", s, k) // want "fmt.Sprintf inside a map range"
	}
	return s
}

// Build streams bytes into a builder in map order.
func Build(m map[string]string) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "WriteString inside a map range"
	}
	return sb.String()
}

// MemoKey folds map order into a memo key.
func MemoKey(m map[string]int) string {
	key := ""
	for k := range m {
		key = parallel.KeyOf(key, k) // want "parallel.KeyOf inside a map range"
	}
	return key
}

// Deferred shows sinks inside closures created per iteration count too.
func Deferred(m map[string]int) []func() {
	var fns []func()
	for k := range m {
		k := k
		fns = append(fns, func() { fmt.Println(k) }) // want "append to \"fns\"" "fmt.Println inside a map range"
	}
	return fns
}
