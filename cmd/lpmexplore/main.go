// Command lpmexplore runs the paper's case study I: LPM-guided design
// space exploration on a reconfigurable single-core architecture. It
// starts from Table I's configuration A and walks the one-million-point
// space with the Fig. 3 LPMR-reduction algorithm, printing each step.
//
// Usage:
//
//	lpmexplore -grain fine -workload 410.bwaves
package main

import (
	"flag"
	"fmt"
	"os"

	"lpm/internal/core"
	"lpm/internal/explore"
	"lpm/internal/parallel"
	"lpm/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "410.bwaves", "built-in workload profile")
		grain     = flag.String("grain", "fine", "stall target: fine (1%) or coarse (10%)")
		warmup    = flag.Uint64("warmup", 250000, "warm-up instructions per evaluation")
		window    = flag.Uint64("window", 30000, "measured instructions per evaluation")
		start     = flag.String("start", "A", "starting Table I configuration (A..E)")
		maxSteps  = flag.Int("maxsteps", 32, "algorithm step bound")
		workers   = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		speculate = flag.Bool("speculate", false,
			"pre-evaluate the one-step knob frontier in parallel at each new point (same walk, more total simulation, less wall-clock)")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	prof, err := trace.ProfileByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g := core.FineGrain
	if *grain == "coarse" {
		g = core.CoarseGrain
	}
	startPt, ok := explore.TableConfigs()[*start]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown start configuration %q\n", *start)
		os.Exit(1)
	}

	space := explore.DefaultSpace()
	tgt := explore.NewHardwareTarget(space, startPt, prof)
	tgt.Warmup = *warmup
	tgt.Instructions = *window
	tgt.Speculate = *speculate

	fmt.Printf("design space: %d points; start: %s (%s)\n", space.Size(), *start, startPt)
	res, final := tgt.RunAlgorithm(core.AlgorithmConfig{Grain: g, SlackFrac: 0.5, MaxSteps: *maxSteps})

	for i, st := range res.Steps {
		t2 := "-"
		if st.T2Valid {
			t2 = fmt.Sprintf("%.3f", st.T2)
		}
		fmt.Printf("step %2d  case %-26s LPMR1=%.3f LPMR2=%.3f  T1=%.3f T2=%s  stall=%.4f\n",
			i+1, st.Case, st.Before.LPMR1(), st.Before.LPMR2(), st.T1, t2, st.Before.MeasuredStall)
	}
	fmt.Println()
	fmt.Printf("final configuration: %s  (cost %.0f)\n", final, final.Cost())
	fmt.Printf("final: %s  stall=%.4f (%.2f%% of CPIexe)\n",
		res.Final, res.Final.MeasuredStall, 100*res.Final.MeasuredStall/res.Final.CPIexe)
	fmt.Printf("converged=%v metTarget=%v  simulations=%d (%.4f%% of the space)\n",
		res.Converged, res.MetTarget, tgt.Evaluations(),
		100*float64(tgt.Evaluations())/float64(space.Size()))
}
