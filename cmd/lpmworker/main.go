// Command lpmworker hosts one sweep-fabric worker: it connects to a
// coordinator (an lpmexplore or lpmreport run started with -shard),
// announces its execution slots, and serves simulation granules until
// the coordinator finishes or a signal arrives.
//
// Usage:
//
//	lpmworker [flags] host:port
//	lpmworker -slots 4 -name rack3 127.0.0.1:7707
//
// The worker is stateless: every granule is a pure function of its
// spec, so a worker may be killed, restarted, or added mid-run without
// affecting results — only throughput. It exits 0 when the coordinator
// disconnects (the run is over) and on SIGINT/SIGTERM (signal-aware via
// internal/resilience), and non-zero only on genuine transport or
// protocol failures. Every simulation a granule runs arms the standard
// livelock watchdog on its chip, so a wedged simulation surfaces as a
// granule error instead of a hung worker; the straggler re-issue on the
// coordinator covers the window in between.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"lpm/internal/fabric"
	"lpm/internal/resilience"

	// Register the granule executors this worker can run: the
	// design-point simulation and the two profiling kinds.
	_ "lpm/internal/explore"
	_ "lpm/internal/sched"
)

func main() {
	ctx, stop := resilience.WithSignals(context.Background())
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// -help is a successful outcome for a worker smoke test: CI
		// probes `lpmworker -help` to prove the binary runs at all.
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lpmworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name    = fs.String("name", "", "worker name in coordinator logs (default: local address)")
		slots   = fs.Int("slots", runtime.GOMAXPROCS(0), "granules executed concurrently")
		retry   = fs.Duration("retry", 10*time.Second, "keep retrying the initial dial for this long")
		noProbe = fs.Bool("no-cache-probe", false, "skip the shared-cache probe before each granule")
		quiet   = fs.Bool("quiet", false, "suppress per-event progress on stderr")
		version = fs.Bool("version", false, "print the fabric protocol version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		_, err := fmt.Fprintf(stdout, "lpmworker fabric-proto %d (kinds: %v)\n", fabric.ProtoVersion, fabric.Kinds())
		return err
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: lpmworker [flags] host:port")
		return errors.New("exactly one coordinator address required")
	}

	opts := fabric.WorkerOptions{
		Name:         *name,
		Slots:        *slots,
		NoCacheProbe: *noProbe,
		DialRetry:    *retry,
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	return fabric.RunWorker(ctx, fs.Arg(0), opts)
}
