// Package lpm is a from-scratch Go reproduction of "LPM:
// Concurrency-driven Layered Performance Matching" (Yu-Hang Liu and
// Xian-He Sun, ICPP 2015).
//
// The package re-exports the library's public surface:
//
//   - the C-AMAT model (Eq. 1-4) and the LPM model relating layered
//     performance mismatch to data stall time (Eq. 5-15) — see CAMAT,
//     Measurement, and the LPMR/Stall/Threshold methods;
//   - the LPMR-reduction algorithm of the paper's Fig. 3 — see Run,
//     Target, AlgorithmConfig;
//   - the C-AMAT analyzer (hit/miss concurrency detectors, Fig. 4) —
//     see Analyzer;
//   - a full cycle-level CMP simulator substrate (out-of-order cores,
//     non-blocking multi-banked caches with MSHRs, DRAM timing) — see
//     Chip and the chip configuration helpers;
//   - synthetic SPEC CPU2006-like workloads — see Workload helpers;
//   - the paper's two case studies (reconfigurable-architecture design
//     space exploration; NUCA-aware scheduling) and every
//     table/figure-regeneration harness — see experiments.go.
//
// Everything is implemented with the Go standard library only. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package lpm

import (
	"lpm/internal/analyzer"
	"lpm/internal/core"
	"lpm/internal/explore"
	"lpm/internal/interval"
	"lpm/internal/obs"
	"lpm/internal/parallel"
	"lpm/internal/sched"
	"lpm/internal/sim/cache"
	"lpm/internal/sim/chip"
	"lpm/internal/sim/cpu"
	"lpm/internal/sim/dram"
	"lpm/internal/trace"
)

// Parallel simulation runner. Every experiment driver fans its
// independent simulations out over a shared worker pool and memoises
// results content-keyed on the full simulation input; see
// EXPERIMENTS.md ("Parallel execution").

// SetWorkers bounds the simulation fan-out concurrency; n <= 0 restores
// the default, runtime.GOMAXPROCS(0). The CLIs expose it as -workers.
func SetWorkers(n int) { parallel.SetWorkers(n) }

// ParallelWorkers returns the current fan-out concurrency bound.
func ParallelWorkers() int { return parallel.Workers() }

// ResetSimCaches drops every memoised simulation result (and zeroes the
// memo hit/miss counters), forcing the next evaluations to re-simulate.
// Benchmarks and determinism tests use it; ordinary callers never need
// to.
func ResetSimCaches() { parallel.ResetAllMemos() }

// Observability layer (see internal/obs and EXPERIMENTS.md
// "Observability").
type (
	// MetricsRegistry is a typed counter/gauge/histogram registry the
	// simulator components publish into; attach one with
	// Chip.EnableObs.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a versioned, JSON-serialisable capture of a
	// registry; Measurement.Obs carries one per measurement window.
	MetricsSnapshot = obs.Snapshot
	// EventTracer buffers memory-request lifecycle events for
	// Chrome-trace / JSONL export; attach one with Chip.AttachTracer.
	EventTracer = obs.Tracer
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventTracer returns an empty event tracer with the default buffer
// limit.
func NewEventTracer() *EventTracer { return obs.NewTracer() }

// SimCacheStats returns the cumulative hit and miss counts of the
// process-wide simulation memo pool.
func SimCacheStats() (hits, misses int64) { return parallel.MemoStats() }

// PublishRuntimeMetrics copies process-level runtime counters (the
// simulation memo pool's hits and misses) into r as "sim.memo.hits" and
// "sim.memo.misses". A nil registry is a no-op.
func PublishRuntimeMetrics(r *MetricsRegistry) {
	hits, misses := parallel.MemoStats()
	r.Counter("sim.memo.hits").Set(uint64(hits))
	r.Counter("sim.memo.misses").Set(uint64(misses))
}

// Model layer (the paper's contribution).
type (
	// CAMAT holds the five C-AMAT parameters of Eq. (2).
	CAMAT = core.CAMAT
	// Measurement carries one interval's LPM model inputs.
	Measurement = core.Measurement
	// Target is what the LPM algorithm optimizes.
	Target = core.Target
	// AlgorithmConfig parameterises the Fig. 3 algorithm.
	AlgorithmConfig = core.AlgorithmConfig
	// Result is an algorithm run's trace and outcome.
	Result = core.Result
	// Grain selects the 1% (fine) or 10% (coarse) stall target.
	Grain = core.Grain
)

// Grain values.
const (
	FineGrain   = core.FineGrain
	CoarseGrain = core.CoarseGrain
)

// Multi-level and sensitivity extensions.
type (
	// Chain generalises the LPM model to arbitrary hierarchy depth.
	Chain = core.Chain
	// Layer is one level of a Chain.
	Layer = core.Layer
	// Sensitivity is the gradient of C-AMAT over its five parameters.
	Sensitivity = core.Sensitivity
)

// AMAT evaluates the conventional Eq. (1).
func AMAT(h, mr, amp float64) float64 { return core.AMAT(h, mr, amp) }

// Sensitivities evaluates the C-AMAT gradient at the given parameters.
func Sensitivities(c CAMAT) Sensitivity { return core.Sensitivities(c) }

// BestLever names the C-AMAT parameter whose 1% improvement buys the
// largest reduction — the model's "which knob next?" answer.
func BestLever(c CAMAT) string { return core.BestLever(c) }

// RunAlgorithm executes the LPMR-reduction algorithm of Fig. 3.
func RunAlgorithm(t Target, cfg AlgorithmConfig) Result { return core.Run(t, cfg) }

// Measurement apparatus.
type (
	// Analyzer is the per-layer C-AMAT detecting system of Fig. 4.
	Analyzer = analyzer.Analyzer
	// LayerParams is a layer's counter snapshot with derived C-AMAT
	// parameters.
	LayerParams = analyzer.Params
)

// NewAnalyzer returns an analyzer for the named layer.
func NewAnalyzer(name string) *Analyzer { return analyzer.New(name) }

// Simulator substrate.
type (
	// Chip is the assembled multicore system.
	Chip = chip.Chip
	// ChipConfig describes a chip.
	ChipConfig = chip.Config
	// CoreSlot pairs a core with its L1 and workload.
	CoreSlot = chip.CoreSlot
	// CPUConfig describes an out-of-order core.
	CPUConfig = cpu.Config
	// CacheConfig describes one cache.
	CacheConfig = cache.Config
	// DRAMConfig describes main memory.
	DRAMConfig = dram.Config
	// ChipReport is a full-chip measurement snapshot.
	ChipReport = chip.Report
	// SimTier selects the chip's execution fidelity (detailed or
	// functional); see Chip.SetTier and Chip.RunFunctional.
	SimTier = chip.Tier
)

// The execution tiers.
const (
	// DetailedTier is the cycle-accurate engine; the default.
	DetailedTier = chip.TierDetailed
	// FunctionalTier executes instruction streams for architectural
	// warmth only (no timing, no counters, no observation).
	FunctionalTier = chip.TierFunctional
)

// NewChip builds a chip from cfg; it panics on invalid configuration.
func NewChip(cfg ChipConfig) *Chip { return chip.New(cfg) }

// SingleCore builds a one-core chip for the named built-in workload.
func SingleCore(profile string) ChipConfig { return chip.SingleCore(profile) }

// NUCA16 builds the paper's Fig. 5 heterogeneous 16-core chip.
func NUCA16(workloads []Workload) ChipConfig { return chip.NUCA16(workloads) }

// MeasureCPIexe calibrates CPI_exe (Eq. 5) with a perfect-cache run.
func MeasureCPIexe(cfg CPUConfig, gen Workload, hitLatency, n uint64) float64 {
	return chip.MeasureCPIexe(cfg, gen, hitLatency, n)
}

// Workloads.
type (
	// Workload produces an instruction stream.
	Workload = trace.Generator
	// WorkloadProfile parameterises a synthetic workload.
	WorkloadProfile = trace.Profile
)

// Workloads returns the built-in SPEC CPU2006-like profile names.
func Workloads() []string { return trace.ProfileNames() }

// NewWorkload builds the named built-in synthetic workload.
func NewWorkload(name string) (Workload, error) {
	p, err := trace.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return trace.NewSynthetic(p), nil
}

// Case studies.
type (
	// DesignPoint is one hardware configuration of case study I.
	DesignPoint = explore.Point
	// DesignSpace is the six-parameter menu of case study I.
	DesignSpace = explore.Space
	// HardwareTarget adapts the design space to the LPM algorithm.
	HardwareTarget = explore.HardwareTarget
	// Scheduler assigns workloads to NUCA cores (case study II).
	Scheduler = sched.Scheduler
	// SchedEvaluation is one scheduled run's Hsp outcome.
	SchedEvaluation = sched.Evaluation
	// BurstProfile is the interval study's burst population.
	BurstProfile = interval.Profile
)
