package trace

// GlobalBase is the start of the global (shared) address space:
// addresses at or above it are never relocated by WithOffset, so
// co-running programs can genuinely share them (the coherence traffic of
// chip configurations with Coherent set). Private footprints live far
// below it.
const GlobalBase = uint64(1) << 48

// WithOffset wraps a generator, relocating every private memory address
// by base. Multiprogrammed simulations give each program a disjoint base
// so that distinct programs never alias in the shared levels of the
// hierarchy — the moral equivalent of separate physical address spaces.
// Addresses in the global space (>= GlobalBase) pass through unchanged.
func WithOffset(g Generator, base uint64) Generator {
	if base == 0 {
		return g
	}
	return &offsetGen{g: g, base: base}
}

type offsetGen struct {
	g    Generator
	base uint64
}

// Name implements Generator.
func (o *offsetGen) Name() string { return o.g.Name() }

// Reset implements Generator.
func (o *offsetGen) Reset() { o.g.Reset() }

// Next implements Generator.
func (o *offsetGen) Next() Instr {
	in := o.g.Next()
	if in.Kind.IsMem() && in.Addr < GlobalBase {
		in.Addr += o.base
	}
	return in
}
