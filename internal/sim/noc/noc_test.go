package noc

import (
	"testing"

	"lpm/internal/sim/dram"
)

func cfg() Config {
	return Config{Name: "x", Latency: 5, Bandwidth: 2, QueueDepth: 4, Sources: 4}
}

// rig couples a router to a fixed-latency lower layer.
type rig struct {
	r     *Router
	lower *dram.Fixed
	now   uint64
}

func newRig(c Config, lowerLat uint64) *rig {
	r := &rig{r: New(c), lower: &dram.Fixed{Latency: lowerLat}}
	r.r.SetLower(r.lower)
	return r
}

func (r *rig) step() {
	r.now++
	r.r.Tick(r.now)
	r.lower.Tick(r.now)
}

func (r *rig) runUntil(pred func() bool, budget int) bool {
	for i := 0; i < budget; i++ {
		if pred() {
			return true
		}
		r.step()
	}
	return pred()
}

func TestConfigValidate(t *testing.T) {
	good := cfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.Latency = 0 },
		func(c *Config) { c.Bandwidth = 0 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.Sources = 0 },
	}
	for i, mut := range bads {
		c := cfg()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	def := Default(16)
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripLatency(t *testing.T) {
	r := newRig(cfg(), 3)
	var doneAt uint64
	r.r.Request(r.now, 0, 7, false, func(cy uint64) { doneAt = cy })
	if !r.runUntil(func() bool { return doneAt != 0 }, 100) {
		t.Fatal("request never completed")
	}
	// forward 5 + lower 3 + response 5, plus grant/delivery cycles.
	min := uint64(5 + 3 + 5)
	if doneAt < min || doneAt > min+4 {
		t.Fatalf("round trip %d, want ~%d", doneAt, min)
	}
}

func TestBandwidthLimitsThroughput(t *testing.T) {
	elapsed := func(bw int) uint64 {
		c := cfg()
		c.Bandwidth = bw
		c.QueueDepth = 16
		r := newRig(c, 1)
		done := 0
		for i := 0; i < 8; i++ {
			if !r.r.Request(r.now, i%4, uint64(i), false, func(uint64) { done++ }) {
				t.Fatal("queue full")
			}
		}
		r.runUntil(func() bool { return done == 8 }, 500)
		return r.now
	}
	slow, fast := elapsed(1), elapsed(8)
	if fast >= slow {
		t.Fatalf("bandwidth 8 (%d cycles) not faster than 1 (%d)", fast, slow)
	}
}

func TestQueueBackpressure(t *testing.T) {
	r := newRig(cfg(), 1)
	ok := 0
	for i := 0; i < 10; i++ {
		if r.r.Request(r.now, 0, uint64(i), false, func(uint64) {}) {
			ok++
		}
	}
	if ok != 4 {
		t.Fatalf("accepted %d, want QueueDepth=4", ok)
	}
	if r.r.Stats().Rejected != 6 {
		t.Fatalf("rejected = %d", r.r.Stats().Rejected)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Source 0 floods; source 3 sends one request. With round-robin
	// arbitration source 3 must not starve behind source 0's backlog.
	c := cfg()
	c.Bandwidth = 1
	c.QueueDepth = 16
	r := newRig(c, 1)
	var flood int
	for i := 0; i < 10; i++ {
		r.r.Request(r.now, 0, uint64(i), false, func(uint64) { flood++ })
	}
	var loneAt uint64
	r.r.Request(r.now, 3, 99, false, func(cy uint64) { loneAt = cy })
	r.runUntil(func() bool { return loneAt != 0 }, 500)
	// The lone request should complete on the second grant slot, not
	// after the whole flood.
	if loneAt > 20 {
		t.Fatalf("lone source served at cycle %d — starved", loneAt)
	}
}

func TestWritebacksForwardedWithoutResponse(t *testing.T) {
	r := newRig(cfg(), 1)
	r.r.Request(r.now, 1, 42, true, nil)
	if !r.runUntil(func() bool { return r.lower.Count() == 1 }, 100) {
		t.Fatal("writeback never forwarded")
	}
	r.runUntil(func() bool { return !r.r.Busy() }, 100)
	if r.r.Stats().Responses != 0 {
		t.Fatal("writeback generated a response")
	}
}

func TestLowerBackpressureRetries(t *testing.T) {
	c := cfg()
	r := &rig{r: New(c), lower: &dram.Fixed{Latency: 2, PerCycle: 1}}
	r.r.SetLower(r.lower)
	done := 0
	for i := 0; i < 4; i++ {
		r.r.Request(r.now, i, uint64(i), false, func(uint64) { done++ })
	}
	if !r.runUntil(func() bool { return done == 4 }, 200) {
		t.Fatalf("lost requests under lower backpressure: %d/4", done)
	}
}

func TestSourceClamping(t *testing.T) {
	r := newRig(cfg(), 1)
	done := false
	// Out-of-range sources land in the edge queues rather than crashing.
	if !r.r.Request(r.now, 99, 1, false, func(uint64) { done = true }) {
		t.Fatal("rejected")
	}
	if !r.r.Request(r.now, -2, 2, true, nil) {
		t.Fatal("rejected")
	}
	if !r.runUntil(func() bool { return done }, 100) {
		t.Fatal("clamped request lost")
	}
}

func TestQueueingStatsAccumulate(t *testing.T) {
	c := cfg()
	c.Bandwidth = 1
	c.QueueDepth = 16
	r := newRig(c, 1)
	done := 0
	for i := 0; i < 8; i++ {
		r.r.Request(r.now, 0, uint64(i), false, func(uint64) { done++ })
	}
	r.runUntil(func() bool { return done == 8 }, 500)
	if r.r.Stats().AvgQueueing() <= 0 {
		t.Fatal("no queueing measured despite a serialised backlog")
	}
	r.r.ResetCounters()
	if r.r.Stats().Requests != 0 {
		t.Fatal("counters survive reset")
	}
}
