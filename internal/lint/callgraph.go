package lint

// Module-wide call graph over the go/types load. The interprocedural
// analyzers (hotpathalloc, ctxflow, fabricproto) need to reason about
// what is reachable from a root function — a component's Tick, a fabric
// granule handler — across package boundaries, which the per-package
// passes cannot see.
//
// Nodes are the module's declared functions and methods plus every
// function literal (literals are first-class nodes, not folded into
// their enclosing declaration, so a handler literal passed to
// fabric.RegisterKind can be a root of its own). Edges are:
//
//   - static calls: an identifier or selector resolving to a declared
//     module function;
//   - immediately-invoked function literals;
//   - interface dispatch: a call through a method of a module-defined
//     interface fans out to the matching concrete method of every
//     module type whose method set implements the interface.
//
// Soundness limits (documented in DESIGN.md §8): calls through stored
// function values, methods of interfaces defined outside the module
// (error, io.Writer, ...), and reflection are not traversed. The
// analyzers built on the graph therefore under-approximate
// reachability; they never invent edges, so a reported call chain is
// always a real static path.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncNode is one function in the call graph: a declared function or
// method (Obj != nil) or a function literal (Lit != nil).
type FuncNode struct {
	// Obj is the declared function's object; nil for literals.
	Obj *types.Func
	// Decl is the declared function's syntax; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal's syntax; nil for declared functions.
	Lit *ast.FuncLit
	// Pkg is the package the function's body lives in.
	Pkg *Package
	// Calls lists the resolved call sites in body source order.
	Calls []CallSite
}

// Body returns the function's block, or nil for bodiless declarations.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Syntax returns the node's defining syntax (FuncDecl or FuncLit), the
// key under which the package's fact table stores its facts.
func (n *FuncNode) Syntax() ast.Node {
	if n.Lit != nil {
		return n.Lit
	}
	return n.Decl
}

// Pos locates the function for diagnostics and deterministic ordering.
func (n *FuncNode) Pos() token.Pos { return n.Syntax().Pos() }

// Name renders the function for call-chain messages: "(*Cache).Tick",
// "sched.warmChip", or "func literal at file:line" for literals.
func (n *FuncNode) Name() string {
	if n.Obj == nil {
		p := n.Pkg.Fset.Position(n.Lit.Pos())
		return fmt.Sprintf("func literal at %s:%d", shortFile(p.Filename), p.Line)
	}
	if recv := n.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		name := t.String()
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return fmt.Sprintf("(%s%s).%s", ptr, name, n.Obj.Name())
	}
	if pkg := n.Obj.Pkg(); pkg != nil {
		return pkg.Name() + "." + n.Obj.Name()
	}
	return n.Obj.Name()
}

// shortFile trims a file path to its last two segments for messages.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

// CallSite is one resolved call in a function body. Interface dispatch
// produces one site with every possible concrete target.
type CallSite struct {
	// Pos is the call expression's position.
	Pos token.Pos
	// Targets are the module functions the call can reach.
	Targets []*FuncNode
	// Dynamic marks interface dispatch (Targets are the implementing
	// methods rather than one static callee).
	Dynamic bool
}

// CallGraph is the module-wide graph; build it with Module.Graph.
type CallGraph struct {
	mod   *Module
	nodes map[*types.Func]*FuncNode
	lits  map[*ast.FuncLit]*FuncNode
	all   []*FuncNode // deterministic (position) order

	// implCache memoises interface-method → concrete-method expansion.
	implCache map[*types.Func][]*FuncNode
}

// Graph builds (once) and returns the module's call graph.
func (m *Module) Graph() *CallGraph {
	m.graphOnce.Do(func() { m.graph = buildCallGraph(m) })
	return m.graph
}

// NodeOf returns the graph node for a declared function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// LitNode returns the graph node for a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return g.lits[lit] }

// Nodes returns every node in deterministic (file position) order.
func (g *CallGraph) Nodes() []*FuncNode { return g.all }

func buildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		mod:       mod,
		nodes:     make(map[*types.Func]*FuncNode),
		lits:      make(map[*ast.FuncLit]*FuncNode),
		implCache: make(map[*types.Func][]*FuncNode),
	}
	// Pass 1: create nodes for declared functions and every literal.
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &FuncNode{Obj: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = n
				g.all = append(g.all, n)
			}
			ast.Inspect(f, func(nd ast.Node) bool {
				if lit, ok := nd.(*ast.FuncLit); ok {
					n := &FuncNode{Lit: lit, Pkg: pkg}
					g.lits[lit] = n
					g.all = append(g.all, n)
				}
				return true
			})
		}
	}
	sort.Slice(g.all, func(i, j int) bool { return g.all[i].Pos() < g.all[j].Pos() })
	// Pass 2: resolve each node's calls.
	for _, n := range g.all {
		g.resolveCalls(n)
	}
	return g
}

// resolveCalls walks n's own body (not nested literals — those are
// their own nodes) recording resolved call sites.
func (g *CallGraph) resolveCalls(n *FuncNode) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Pkg.Info
	inspectSameFunc(body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		fun := ast.Unparen(call.Fun)
		if lit, ok := fun.(*ast.FuncLit); ok {
			// Immediately-invoked literal.
			if ln := g.lits[lit]; ln != nil {
				n.Calls = append(n.Calls, CallSite{Pos: call.Pos(), Targets: []*FuncNode{ln}})
			}
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true // function value, builtin, or unresolvable
		}
		if iface := interfaceRecv(fn); iface != nil {
			if !g.moduleFunc(fn) {
				return true // stdlib interface: not traversed
			}
			if impls := g.implementations(fn, iface); len(impls) > 0 {
				n.Calls = append(n.Calls, CallSite{Pos: call.Pos(), Targets: impls, Dynamic: true})
			}
			return true
		}
		if target := g.NodeOf(fn); target != nil {
			n.Calls = append(n.Calls, CallSite{Pos: call.Pos(), Targets: []*FuncNode{target}})
		}
		return true
	})
}

// interfaceRecv returns fn's receiver interface type when fn is an
// abstract interface method, else nil.
func interfaceRecv(fn *types.Func) *types.Interface {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	iface, _ := recv.Type().Underlying().(*types.Interface)
	return iface
}

// moduleFunc reports whether fn is declared in a module package.
func (g *CallGraph) moduleFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == g.mod.Path || strings.HasPrefix(path, g.mod.Path+"/")
}

// implementations expands an interface method to the matching concrete
// methods of every module type implementing the interface.
func (g *CallGraph) implementations(fn *types.Func, iface *types.Interface) []*FuncNode {
	if impls, ok := g.implCache[fn]; ok {
		return impls
	}
	var impls []*FuncNode
	for _, pkg := range g.mod.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			sel := types.NewMethodSet(ptr).Lookup(fn.Pkg(), fn.Name())
			if sel == nil {
				continue
			}
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				continue
			}
			if target := g.NodeOf(m); target != nil {
				impls = append(impls, target)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].Pos() < impls[j].Pos() })
	g.implCache[fn] = impls
	return impls
}

// ReachStep is one entry in a reachability result: how Node was first
// reached (From + the call position), forming a blame chain back to a
// root.
type ReachStep struct {
	Node *FuncNode
	// From is the step that first reached Node; nil for roots.
	From *ReachStep
	// CallPos is the call site in From that reached Node.
	CallPos token.Pos
}

// Chain renders the root → ... → node path for diagnostics.
func (r *ReachStep) Chain() string {
	var names []string
	for s := r; s != nil; s = s.From {
		names = append(names, s.Node.Name())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// Reach computes the functions reachable from roots via breadth-first
// search. Roots are visited in the given order and call sites in source
// order, so the parent chain recorded for each function — the blame
// chain in diagnostics — is deterministic.
func (g *CallGraph) Reach(roots []*FuncNode) map[*FuncNode]*ReachStep {
	reached := make(map[*FuncNode]*ReachStep)
	var queue []*ReachStep
	for _, r := range roots {
		if r == nil || reached[r] != nil {
			continue
		}
		step := &ReachStep{Node: r}
		reached[r] = step
		queue = append(queue, step)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, site := range cur.Node.Calls {
			for _, t := range site.Targets {
				if reached[t] != nil {
					continue
				}
				step := &ReachStep{Node: t, From: cur, CallPos: site.Pos}
				reached[t] = step
				queue = append(queue, step)
			}
		}
	}
	return reached
}
