package lpm

import (
	"encoding/json"
	"strings"
	"testing"

	"lpm/internal/explore"
	"lpm/internal/obs/timeseries"
	"lpm/internal/trace"
)

// reportScale keeps report-shape tests cheap: the simulations behind the
// timeline experiment are real but short.
func reportScale() Scale { return Scale{Warmup: 6000, Window: 4000} }

func TestDecodeReportRoundTripV2(t *testing.T) {
	rep, err := BuildReport(ReportOptions{
		Scale:           QuickScale(),
		Experiments:     []string{"fig1", "interval"},
		IntervalSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("BuildReport schema = %q, want %q", rep.Schema, ReportSchema)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	round, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(round) != string(data) {
		t.Fatal("v2 document changed across a decode/encode round trip")
	}
}

func TestDecodeReportAcceptsV1(t *testing.T) {
	rep, err := BuildReport(ReportOptions{
		Scale:           QuickScale(),
		Experiments:     []string{"fig1"},
		IntervalSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A v1 document is the same shape minus the timeline payload; emulate
	// one by rewriting the schema string.
	rep.Schema = ReportSchemaV1
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(data)
	if err != nil {
		t.Fatalf("v1 document rejected: %v", err)
	}
	if got.Schema != ReportSchemaV1 {
		t.Fatalf("decoded schema = %q, want %q", got.Schema, ReportSchemaV1)
	}
	round, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(round) != string(data) {
		t.Fatal("v1 document changed across a decode/encode round trip")
	}
}

func TestDecodeReportRejectsUnknownSchema(t *testing.T) {
	for _, doc := range []string{
		`{"schema":"lpm-report/v99"}`,
		`{"tool":"lpmreport"}`,
		`not json`,
	} {
		if _, err := DecodeReport([]byte(doc)); err == nil {
			t.Errorf("DecodeReport accepted %q", doc)
		}
	}
}

func TestReportTimelineExperiment(t *testing.T) {
	rep, err := BuildReport(ReportOptions{
		Scale:       reportScale(),
		Experiments: []string{"timeline"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "timeline" {
		t.Fatalf("unexpected experiment envelope: %+v", rep.Experiments)
	}
	rows := rep.Experiments[0].Timeline
	if len(rows) != 2 {
		t.Fatalf("timeline experiment has %d rows, want 2 (A and E)", len(rows))
	}
	for _, r := range rows {
		if r.Series == nil || len(r.Series.Windows) == 0 {
			t.Fatalf("config %s: empty series", r.Name)
		}
		if r.CPIexe <= 0 {
			t.Fatalf("config %s: CPIexe not recorded", r.Name)
		}
		for i, w := range r.Series.Windows {
			for ci, st := range w.Stall {
				if st.Total() != w.Cycles() {
					t.Fatalf("config %s window %d core %d: stall sum %d != %d cycles",
						r.Name, i, ci, st.Total(), w.Cycles())
				}
			}
		}
		any := false
		for _, v := range r.Series.LPMR1Series() {
			if v > 0 {
				any = true
			}
		}
		if !any {
			t.Errorf("config %s: no window has LPMR1 > 0", r.Name)
		}
	}
}

// TestTimelineStallConservationTable1 asserts the stall-attribution
// conservation law on every Table I configuration: in every window of
// every row, the per-core buckets sum exactly to the window's cycles.
func TestTimelineStallConservationTable1(t *testing.T) {
	cfgs := explore.TableConfigs()
	s := reportScale()
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		tgt := explore.NewHardwareTarget(explore.DefaultSpace(), cfgs[name], trace.MustProfile("410.bwaves"))
		tgt.Warmup = s.Warmup
		tgt.Instructions = s.Window
		tgt.Timeline = true
		m := tgt.Measure()
		if m.Timeline == nil || len(m.Timeline.Windows) == 0 {
			t.Fatalf("config %s: no timeline", name)
		}
		var agg timeseries.StallTree
		for i, w := range m.Timeline.Windows {
			for ci, st := range w.Stall {
				if st.Total() != w.Cycles() {
					t.Fatalf("config %s window %d core %d: stall sum %d != %d cycles (%+v)",
						name, i, ci, st.Total(), w.Cycles(), st)
				}
				agg.Add(st)
			}
		}
		if agg.Busy == 0 {
			t.Errorf("config %s: zero busy cycles attributed", name)
		}
	}
}

func TestReportExperimentsIncludeTimeline(t *testing.T) {
	if !strings.Contains(strings.Join(ReportExperiments(), ","), "timeline") {
		t.Fatal("timeline missing from ReportExperiments")
	}
}
