// Command tool is the errcheck fixture's CLI case.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if err := run(os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(stdout, stderr *os.File) error {
	fmt.Fprintln(stdout, "report") // want "fmt.Fprintln returns an error that is dropped"
	fmt.Fprintln(stderr, "progress: ok")

	f, err := os.Create("out.json")
	if err != nil {
		return err
	}
	defer f.Close()

	enc := json.NewEncoder(f)
	enc.Encode(map[string]int{"rows": 1}) // want "Encoder.Encode returns an error that is dropped"
	_ = enc.Encode("an explicit discard is visible in review")

	os.Remove("out.tmp") // want "os.Remove returns an error that is dropped"
	return nil
}
