package chip

import (
	"lpm/internal/analyzer"
	"lpm/internal/core"
	"lpm/internal/obs/timeseries"
	"lpm/internal/sim/cpu"
)

// requestRate converts primary-miss counts into the LPM model's MR terms:
// the fraction of a layer's accesses that become requests on the next
// layer. Coalesced (secondary) misses never reach the next layer, so the
// conventional per-access miss rate would overstate downstream demand.
func requestRate(primary, completed uint64) float64 {
	if completed == 0 {
		return 0
	}
	return float64(primary) / float64(completed)
}

// measurementFrom assembles a core.Measurement from one CPU's counters, an
// L1 view, the shared L2 view and the memory APC.
func measurementFrom(cs cpu.Stats, l1, l2 analyzer.Params, mr1, mr2, apc3, cpiExe float64) core.Measurement {
	m := core.Measurement{
		CPIexe:        cpiExe,
		Fmem:          cs.Fmem(),
		OverlapRatio:  cs.OverlapRatio(),
		CAMAT1:        l1.CAMAT(),
		CAMAT2:        l2.CAMAT(),
		MR1:           mr1,
		MR2:           mr2,
		PMR1:          l1.PMR(),
		H1:            l1.H(),
		CH1:           l1.CH(),
		PAMP1:         l1.PAMP(),
		AMP1:          l1.AMP(),
		Cm1:           l1.Cm(),
		CM1:           l1.CM(),
		IPC:           cs.IPC(),
		MeasuredStall: cs.DataStallPerInstr(),
	}
	if apc3 > 0 {
		m.CAMAT3 = 1 / apc3
	}
	return m
}

// Measure returns core i's LPM measurement. cpiExe must come from a
// perfect-cache calibration run (MeasureCPIexe); the remaining inputs are
// read from the analyzers. The shared L2 and memory are seen by all
// cores.
func (c *Chip) Measure(i int, cpiExe float64) core.Measurement {
	c.requireDetailed("Measure")
	var cs cpu.Stats
	if c.cores[i] != nil {
		cs = c.cores[i].Stats()
	}
	l1 := c.l1s[i].Analyzer().Snapshot()
	l2 := c.l2.Analyzer().Snapshot()
	mr1 := requestRate(c.l1s[i].Stats().PrimaryMisses, l1.Completed)
	mr2 := requestRate(c.l2.Stats().PrimaryMisses, l2.Completed)
	m := measurementFrom(cs, l1, l2, mr1, mr2, c.mem.Stats().APC(), cpiExe)
	m.Obs = c.ObsSnapshot()
	m.Timeline = c.timelineSeries()
	return m
}

// timelineSeries flushes and copies the attached sampler's series (nil
// without a sampler) so measurements carry the window timeline.
func (c *Chip) timelineSeries() *timeseries.Series {
	if c.ts == nil {
		return nil
	}
	c.ts.s.Flush(c.now)
	ser := c.ts.s.Series()
	return &ser
}

// MeasureAggregate returns a chip-wide measurement: per-core CPU counters
// summed, per-core L1 analyzers summed, against the shared L2 and memory.
// cpiExe should be the (instruction-weighted) perfect-cache CPI of the
// mix.
func (c *Chip) MeasureAggregate(cpiExe float64) core.Measurement {
	c.requireDetailed("MeasureAggregate")
	var cs cpu.Stats
	var l1 analyzer.Params
	var primary1 uint64
	for i, cr := range c.cores {
		if cr == nil {
			continue
		}
		s := cr.Stats()
		cs.Cycles = max(cs.Cycles, s.Cycles)
		cs.Instructions += s.Instructions
		cs.MemInstructions += s.MemInstructions
		cs.StallCycles += s.StallCycles
		cs.MemStallCycles += s.MemStallCycles
		cs.MemActiveCycles += s.MemActiveCycles
		cs.OverlapCycles += s.OverlapCycles
		l1 = l1.Add(c.l1s[i].Analyzer().Snapshot())
		primary1 += c.l1s[i].Stats().PrimaryMisses
	}
	l2 := c.l2.Analyzer().Snapshot()
	mr1 := requestRate(primary1, l1.Completed)
	mr2 := requestRate(c.l2.Stats().PrimaryMisses, l2.Completed)
	m := measurementFrom(cs, l1, l2, mr1, mr2, c.mem.Stats().APC(), cpiExe)
	m.Obs = c.ObsSnapshot()
	m.Timeline = c.timelineSeries()
	return m
}

// MeasureChain returns the generalised multi-level chain view for core i:
// L1, L2, the optional L3, and main memory, with per-layer C-AMATs and
// primary-miss forwarding ratios — the input to core.Chain's
// arbitrary-depth LPMR computation.
func (c *Chip) MeasureChain(i int, cpiExe float64) core.Chain {
	c.requireDetailed("MeasureChain")
	var cs cpu.Stats
	if c.cores[i] != nil {
		cs = c.cores[i].Stats()
	}
	l1 := c.l1s[i].Analyzer().Snapshot()
	l2 := c.l2.Analyzer().Snapshot()
	ch := core.Chain{
		CPIexe: cpiExe,
		Fmem:   cs.Fmem(),
		Layers: []core.Layer{
			{Name: "L1", CAMAT: l1.CAMAT(), MR: requestRate(c.l1s[i].Stats().PrimaryMisses, l1.Completed)},
			{Name: "L2", CAMAT: l2.CAMAT(), MR: requestRate(c.l2.Stats().PrimaryMisses, l2.Completed)},
		},
	}
	if c.l3 != nil {
		l3 := c.l3.Analyzer().Snapshot()
		ch.Layers = append(ch.Layers, core.Layer{
			Name:  "L3",
			CAMAT: l3.CAMAT(),
			MR:    requestRate(c.l3.Stats().PrimaryMisses, l3.Completed),
		})
	}
	mm := core.Layer{Name: "MM"}
	if apc := c.mem.Stats().APC(); apc > 0 {
		mm.CAMAT = 1 / apc
	}
	ch.Layers = append(ch.Layers, mm)
	return ch
}
