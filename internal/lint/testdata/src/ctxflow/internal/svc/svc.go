// Package svc is the ctxflow fixture's library case: context roots,
// shadowing, nil contexts, and dropped threading.
package svc

import "context"

// Run threads its context: legal.
func Run(ctx context.Context) error { return work(ctx) }

// work is ctx-capable.
func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// workless takes no context; calling it never obligates threading.
func workless() int { return 1 }

// Detached mints a root context in library code.
func Detached() {
	ctx := context.Background() // want "mints a root context in library code"
	_ = work(ctx)
}

// Shadow receives a context and mints another anyway.
func Shadow(ctx context.Context) {
	_ = work(ctx)
	ctx2 := context.TODO() // want "shadows the context.Context this function already receives"
	_ = work(ctx2)
}

// Reshadow rebinds the very same name in an inner scope — the classic
// shadowing slip.
func Reshadow(ctx context.Context) {
	_ = work(ctx)
	if ctx := context.Background(); ctx != nil { // want "shadows the context.Context this function already receives"
		_ = work(ctx)
	}
}

// NilCtx hands a callee a nil context.
func NilCtx() {
	_ = work(nil) // want "nil passed as context.Context"
}

// Server carries a stored base context (itself a smell, but one the
// threading rule is there to expose).
type Server struct{ base context.Context }

// Drops ignores its parameter and reaches for the stored one. The
// finding lands on the declaration.
func (s *Server) Drops(ctx context.Context) error { // want "receives a context.Context it never uses"
	return work(s.base)
}

// Fine uses its context for everything: silent.
func (s *Server) Fine(ctx context.Context) error {
	if workless() > 0 {
		return work(ctx)
	}
	return nil
}
