// Package sim sits outside floateq's default scope; the exact compare
// below only surfaces under a -scope override (the driver test relies
// on this).
package sim

// Wobble compares floats outside the scoped packages.
func Wobble(a, b float64) bool { return a == b }
