// Package analyzer implements the paper's C-AMAT detecting system (Fig. 4):
// a per-layer Hit Concurrency Detector (HCD) and Miss Concurrency Detector
// (MCD). Attached to one layer of a memory hierarchy, it classifies every
// cycle and every access using the rules of the paper's Fig. 1:
//
//   - every access spends its hit-operation cycles (the layer's hit
//     latency) in the hit phase, whether it ultimately hits or misses;
//   - a missing access is outstanding in the miss phase from the end of
//     its hit phase until its data returns;
//   - a cycle with at least one outstanding miss and no hit-phase activity
//     is a pure-miss cycle (the MCD consults the HCD for this);
//   - a miss is a pure miss iff it experiences at least one pure-miss
//     cycle.
//
// From the raw counters the analyzer derives all C-AMAT parameters:
// H, C_H, C_M, C_m, MR, pMR, AMP, pAMP, APC — and thus C-AMAT (Eq. 2),
// AMAT (Eq. 1) and η (Eq. 4). The definitions are arranged so that the
// identity C-AMAT = 1/APC (Eq. 3) holds exactly; package tests verify it
// on the paper's worked example and by property testing.
package analyzer

// Access is the analyzer's per-access record. Obtain one from
// Analyzer.Start and thread it through ToMiss/Done. The zero value is
// internal to the package; callers treat Access as opaque.
type Access struct {
	missing  bool
	pure     bool
	missIdx  int    // index in the outstanding-miss set while missing
	missBeg  uint64 // cycle the miss phase began (for per-miss penalty)
	hitBeg   uint64 // cycle the hit phase began
	analyzer *Analyzer
}

// Pure reports whether the access has been classified a pure miss so far.
func (ac *Access) Pure() bool { return ac.pure }

// Missing reports whether the access is in its miss phase.
func (ac *Access) Missing() bool { return ac.missing }

// Analyzer measures one layer of a memory hierarchy. The zero value is
// unusable; create with New.
type Analyzer struct {
	name string

	// Live state (the detectors).
	hitCount int       // HCD: accesses currently in their hit phase
	missSet  []*Access // MCD: outstanding missed accesses

	// free recycles completed Access records so a steady-state layer
	// allocates nothing per access. A record is released by Done and
	// stays intact until the next Start claims and resets it.
	free []*Access

	cur Params
}

// New returns an analyzer for the named layer (e.g. "L1", "LLC").
func New(name string) *Analyzer {
	return &Analyzer{name: name}
}

// Name returns the layer name.
func (a *Analyzer) Name() string { return a.name }

// InFlight returns the number of accesses currently tracked (hit phase +
// outstanding misses).
func (a *Analyzer) InFlight() int { return a.hitCount + len(a.missSet) }

// Start records that a new access has begun its hit phase at the given
// cycle, and returns its record. Call Start when the access enters service
// (wins a port), not when it is merely queued: only in-service accesses
// contribute hit-phase activity.
func (a *Analyzer) Start(cycle uint64) *Access {
	a.cur.Accesses++
	a.hitCount++
	if n := len(a.free); n > 0 {
		ac := a.free[n-1]
		a.free = a.free[:n-1]
		*ac = Access{analyzer: a, hitBeg: cycle, missIdx: -1}
		return ac
	}
	return &Access{analyzer: a, hitBeg: cycle, missIdx: -1}
}

// ToMiss records that the access finished its hit phase at cycle and
// missed; it is now outstanding toward the lower layer.
func (a *Analyzer) ToMiss(ac *Access, cycle uint64) {
	if ac.missing {
		panic("analyzer: ToMiss called twice")
	}
	a.hitCount--
	if a.hitCount < 0 {
		panic("analyzer: hit phase underflow (BeginHitPhase missing?)")
	}
	ac.missing = true
	ac.missBeg = cycle
	ac.missIdx = len(a.missSet)
	a.missSet = append(a.missSet, ac)
}

// Done records that the access completed at cycle: a hit completing its
// hit phase, or a miss receiving its fill.
func (a *Analyzer) Done(ac *Access, cycle uint64) {
	a.cur.Completed++
	if !ac.missing {
		a.hitCount--
		if a.hitCount < 0 {
			panic("analyzer: hit phase underflow")
		}
		a.free = append(a.free, ac)
		return
	}
	// Remove from the outstanding-miss set (swap with last).
	last := len(a.missSet) - 1
	i := ac.missIdx
	a.missSet[i] = a.missSet[last]
	a.missSet[i].missIdx = i
	a.missSet = a.missSet[:last]
	ac.missIdx = -1

	a.cur.Misses++
	if cycle > ac.missBeg {
		a.cur.MissPenaltySum += cycle - ac.missBeg
	}
	if ac.pure {
		a.cur.PureMisses++
	}
	a.free = append(a.free, ac)
}

// Tick classifies the current cycle. Call exactly once per simulated
// cycle, after the layer has performed all Start/BeginHitPhase/ToMiss/Done
// transitions for the cycle.
func (a *Analyzer) Tick() {
	a.cur.Cycles++
	h := a.hitCount
	m := len(a.missSet)
	if h == 0 && m == 0 {
		return
	}
	a.cur.ActiveCycles++
	if h > 0 {
		a.cur.HitActiveCycles++
		a.cur.HitAccessCycles += uint64(h)
	}
	if m > 0 {
		a.cur.MissActiveCycles++
		a.cur.MissAccessCycles += uint64(m)
		if h == 0 {
			// Pure-miss cycle: no hit activity masks these misses.
			a.cur.PureCycles++
			a.cur.PureAccessCycles += uint64(m)
			for _, ac := range a.missSet {
				ac.pure = true
			}
		}
	}
}

// TickN classifies n consecutive cycles during which the detector state
// (hit count and outstanding-miss set) is known not to change — the
// fast-forward bulk form of Tick. It is exactly equivalent to calling
// Tick n times under that precondition, including the pure-miss flag
// propagation (idempotent after the first cycle).
func (a *Analyzer) TickN(n uint64) {
	if n == 0 {
		return
	}
	a.cur.Cycles += n
	h := a.hitCount
	m := len(a.missSet)
	if h == 0 && m == 0 {
		return
	}
	a.cur.ActiveCycles += n
	if h > 0 {
		a.cur.HitActiveCycles += n
		a.cur.HitAccessCycles += uint64(h) * n
	}
	if m > 0 {
		a.cur.MissActiveCycles += n
		a.cur.MissAccessCycles += uint64(m) * n
		if h == 0 {
			a.cur.PureCycles += n
			a.cur.PureAccessCycles += uint64(m) * n
			for _, ac := range a.missSet {
				ac.pure = true
			}
		}
	}
}

// Snapshot returns the counters accumulated since construction or the last
// ResetCounters call.
func (a *Analyzer) Snapshot() Params { return a.cur }

// ResetCounters zeroes the accumulated counters while preserving in-flight
// access state, enabling the periodic interval measurement the LPM
// algorithm performs online.
func (a *Analyzer) ResetCounters() { a.cur = Params{} }
