# Build/test entry points; `make all` is the CI gate.
GO ?= go

.PHONY: all build test race vet bench

all: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages that use or implement the parallel simulation fan-out.
race:
	$(GO) test -race ./internal/parallel ./internal/sched ./internal/explore .

vet:
	$(GO) vet ./...

# One pass over every benchmark, reporting the reproduced paper metrics.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
