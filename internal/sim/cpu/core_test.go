package cpu

import (
	"testing"

	"lpm/internal/trace"
)

// scriptGen replays a fixed instruction slice, then repeats it.
type scriptGen struct {
	name   string
	instrs []trace.Instr
	pos    int
}

func (g *scriptGen) Name() string { return g.name }
func (g *scriptGen) Reset()       { g.pos = 0 }
func (g *scriptGen) Next() trace.Instr {
	in := g.instrs[g.pos%len(g.instrs)]
	g.pos++
	return in
}

func coreCfg() Config {
	return Config{Name: "c0", IssueWidth: 2, ROBSize: 32, IWSize: 16}
}

// runCore drives core+mem for at most budget cycles or until n retire.
func runCore(c *Core, mem *Perfect, n uint64, budget int) {
	for cy := uint64(1); cy <= uint64(budget); cy++ {
		c.Tick(cy)
		mem.Tick(cy)
		if c.Retired() >= n {
			return
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := coreCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Name = "" },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.ROBSize = 0 },
		func(c *Config) { c.IWSize = 0 },
		func(c *Config) { c.CommitWidth = -1 },
	}
	for i, mut := range bads {
		c := coreCfg()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestIndependentComputeReachesIssueWidth(t *testing.T) {
	// Unlimited-ILP compute stream: IPC should approach IssueWidth.
	g := &scriptGen{name: "ilp", instrs: []trace.Instr{{Kind: trace.Compute, Lat: 1}}}
	mem := &Perfect{Latency: 1}
	c := New(coreCfg(), g, mem)
	runCore(c, mem, 10000, 20000)
	if ipc := c.Stats().IPC(); ipc < 1.8 {
		t.Fatalf("IPC = %.3f, want near issue width 2", ipc)
	}
}

func TestDependenceChainSerialises(t *testing.T) {
	// Every instruction depends on the previous one with latency 3:
	// IPC ~ 1/3 regardless of width.
	g := &scriptGen{name: "chain", instrs: []trace.Instr{{Kind: trace.Compute, Lat: 3, Dep: 1}}}
	mem := &Perfect{Latency: 1}
	cfg := coreCfg()
	cfg.IssueWidth = 8
	cfg.ROBSize = 128
	cfg.IWSize = 128
	c := New(cfg, g, mem)
	runCore(c, mem, 3000, 20000)
	ipc := c.Stats().IPC()
	if ipc > 0.4 || ipc < 0.25 {
		t.Fatalf("IPC = %.3f, want ~1/3 for a latency-3 chain", ipc)
	}
}

func TestMemoryLatencyStallsInOrderRetirement(t *testing.T) {
	// All loads, memory latency 20, narrow window: CPI tracks latency
	// divided by achievable MLP.
	g := &scriptGen{name: "loads", instrs: []trace.Instr{{Kind: trace.Load, Addr: 0, Lat: 1}}}
	mem := &Perfect{Latency: 20}
	cfg := coreCfg()
	cfg.IWSize = 4 // at most 4 outstanding
	c := New(cfg, g, mem)
	runCore(c, mem, 2000, 100000)
	st := c.Stats()
	if st.MemStallCycles == 0 {
		t.Fatal("no memory stalls with 20-cycle loads")
	}
	// With IW=4 and latency 20, throughput <= 4/20 per cycle.
	if ipc := st.IPC(); ipc > 0.25 {
		t.Fatalf("IPC = %.3f exceeds MLP bound 0.2", ipc)
	}
}

func TestLargerWindowRaisesMLP(t *testing.T) {
	ipcFor := func(iw int) float64 {
		g := &scriptGen{name: "loads", instrs: []trace.Instr{{Kind: trace.Load, Lat: 1}}}
		mem := &Perfect{Latency: 20}
		cfg := coreCfg()
		cfg.IWSize = iw
		cfg.ROBSize = 2 * iw
		c := New(cfg, g, mem)
		runCore(c, mem, 3000, 200000)
		return c.Stats().IPC()
	}
	small, large := ipcFor(2), ipcFor(16)
	if large < 2*small {
		t.Fatalf("IW 16 IPC %.3f not >> IW 2 IPC %.3f", large, small)
	}
}

func TestLSQBoundsOutstandingAccesses(t *testing.T) {
	g := &scriptGen{name: "loads", instrs: []trace.Instr{{Kind: trace.Load, Lat: 1}}}
	mem := &Perfect{Latency: 50}
	cfg := coreCfg()
	cfg.IWSize = 32
	cfg.ROBSize = 64
	cfg.LSQSize = 2
	c := New(cfg, g, mem)
	// Step a few cycles, then check outstanding never exceeds 2.
	for cy := uint64(1); cy < 200; cy++ {
		c.Tick(cy)
		if c.inLSQ > 2 {
			t.Fatalf("LSQ occupancy %d > 2 at cycle %d", c.inLSQ, cy)
		}
		mem.Tick(cy)
	}
	if c.Stats().LSQFullEvents == 0 {
		t.Fatal("expected LSQ-full events")
	}
}

func TestPointerChaseSerialisesLoads(t *testing.T) {
	// Dependent loads (Dep=1) with latency 25: IPC ~ 1/25; independent
	// loads with wide window go much faster.
	run := func(dep uint32) float64 {
		g := &scriptGen{name: "x", instrs: []trace.Instr{{Kind: trace.Load, Dep: dep, Lat: 1}}}
		mem := &Perfect{Latency: 25}
		cfg := coreCfg()
		cfg.IWSize = 32
		cfg.ROBSize = 64
		c := New(cfg, g, mem)
		runCore(c, mem, 1000, 200000)
		return c.Stats().IPC()
	}
	chained, independent := run(1), run(0)
	if independent < 5*chained {
		t.Fatalf("independent loads IPC %.4f not >> chained %.4f", independent, chained)
	}
}

func TestFmemMeasurement(t *testing.T) {
	g := &scriptGen{name: "mix", instrs: []trace.Instr{
		{Kind: trace.Load, Lat: 1},
		{Kind: trace.Compute, Lat: 1},
		{Kind: trace.Compute, Lat: 1},
		{Kind: trace.Store, Lat: 1},
	}}
	mem := &Perfect{Latency: 2}
	c := New(coreCfg(), g, mem)
	runCore(c, mem, 4000, 100000)
	if f := c.Stats().Fmem(); f < 0.49 || f > 0.51 {
		t.Fatalf("fmem = %.3f, want 0.5", f)
	}
}

func TestHaltDrains(t *testing.T) {
	g := &scriptGen{name: "loads", instrs: []trace.Instr{{Kind: trace.Load, Lat: 1}}}
	mem := &Perfect{Latency: 10}
	c := New(coreCfg(), g, mem)
	for cy := uint64(1); cy <= 50; cy++ {
		c.Tick(cy)
		mem.Tick(cy)
	}
	c.Halt()
	for cy := uint64(51); cy <= 500 && (c.Busy() || mem.Busy()); cy++ {
		c.Tick(cy)
		mem.Tick(cy)
	}
	if c.Busy() {
		t.Fatal("core did not drain after Halt")
	}
	if !c.Halted() {
		t.Fatal("Halted() false after Halt")
	}
}

func TestOverlapRatioHighWhenComputeCovers(t *testing.T) {
	// Loads interleaved with long independent compute: overlap should be
	// high.
	g := &scriptGen{name: "cover", instrs: []trace.Instr{
		{Kind: trace.Load, Lat: 1},
		{Kind: trace.Compute, Lat: 8},
		{Kind: trace.Compute, Lat: 8},
	}}
	mem := &Perfect{Latency: 8}
	c := New(coreCfg(), g, mem)
	runCore(c, mem, 3000, 100000)
	if r := c.Stats().OverlapRatio(); r < 0.5 {
		t.Fatalf("overlap ratio = %.3f, want >= 0.5", r)
	}

	// Pure dependent-load stream: negligible overlap.
	g2 := &scriptGen{name: "bare", instrs: []trace.Instr{{Kind: trace.Load, Dep: 1, Lat: 1}}}
	mem2 := &Perfect{Latency: 8}
	c2 := New(coreCfg(), g2, mem2)
	runCore(c2, mem2, 3000, 100000)
	if r := c2.Stats().OverlapRatio(); r > 0.4 {
		t.Fatalf("bare chase overlap ratio = %.3f, want small", r)
	}
}

func TestStatsDerivedQuantities(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.CPI() != 0 || s.Fmem() != 0 || s.OverlapRatio() != 0 || s.DataStallPerInstr() != 0 {
		t.Fatal("zero stats must yield zero derived values")
	}
	s = Stats{Cycles: 100, Instructions: 50, MemInstructions: 10,
		MemStallCycles: 20, MemActiveCycles: 40, OverlapCycles: 10}
	if s.IPC() != 0.5 || s.CPI() != 2 {
		t.Fatal("IPC/CPI wrong")
	}
	if s.Fmem() != 0.2 {
		t.Fatal("fmem wrong")
	}
	if s.OverlapRatio() != 0.25 {
		t.Fatal("overlap wrong")
	}
	if s.DataStallPerInstr() != 0.4 {
		t.Fatal("stall/instr wrong")
	}
}

func TestResetCountersKeepsPipeline(t *testing.T) {
	g := &scriptGen{name: "loads", instrs: []trace.Instr{{Kind: trace.Load, Lat: 1}}}
	mem := &Perfect{Latency: 5}
	c := New(coreCfg(), g, mem)
	for cy := uint64(1); cy <= 20; cy++ {
		c.Tick(cy)
		mem.Tick(cy)
	}
	c.ResetCounters()
	if c.Stats().Instructions != 0 {
		t.Fatal("counters not reset")
	}
	if !c.Busy() {
		t.Fatal("pipeline emptied by ResetCounters")
	}
}

func TestSyntheticWorkloadRuns(t *testing.T) {
	// End-to-end smoke: a real profile on a perfect memory retires
	// instructions and yields sane stats.
	g := trace.NewSynthetic(trace.MustProfile("401.bzip2"))
	mem := &Perfect{Latency: 3}
	cfg := coreCfg()
	cfg.IssueWidth = 4
	cfg.ROBSize = 64
	cfg.IWSize = 32
	c := New(cfg, g, mem)
	runCore(c, mem, 20000, 400000)
	st := c.Stats()
	if st.Instructions < 20000 {
		t.Fatalf("retired only %d", st.Instructions)
	}
	if ipc := st.IPC(); ipc <= 0 || ipc > 4 {
		t.Fatalf("IPC = %.3f out of range", ipc)
	}
	if f := st.Fmem(); f < 0.25 || f > 0.45 {
		t.Fatalf("fmem = %.3f, profile says 0.34", f)
	}
}

func TestPerfectMemory(t *testing.T) {
	p := &Perfect{Latency: 4}
	var doneAt uint64
	p.Access(10, 0, false, func(c uint64) { doneAt = c })
	for cy := uint64(11); cy <= 20 && doneAt == 0; cy++ {
		p.Tick(cy)
	}
	if doneAt != 14 {
		t.Fatalf("done at %d, want 14", doneAt)
	}
	if p.Count() != 1 {
		t.Fatal("count wrong")
	}
}
