package fabric

// Fabric telemetry: the coordinator and worker publish their scheduling
// and execution counters into an internal/obs registry so the fleet
// control plane (cmd/lpmserve) can expose queue depth, re-issue churn
// and cache efficiency on one Prometheus endpoint.
//
// Both telemetry types follow the obs nil-receiver contract: a nil
// *Telemetry / *WorkerTelemetry (the default — no registry wired) makes
// every probe a no-op branch, so the sharded determinism suites run the
// exact same code paths byte-identically with observability off.

import (
	"sync"
	"time"

	"lpm/internal/obs"
)

// Telemetry is the coordinator-side probe set. All updates happen under
// the coordinator mutex, which also serialises access to the underlying
// (unsynchronised) obs registry.
type Telemetry struct {
	reg *obs.Registry

	workers  *obs.Gauge
	pending  *obs.Gauge
	inflight *obs.Gauge

	joined      *obs.Counter
	deaths      *obs.Counter
	submitted   *obs.Counter
	completed   *obs.Counter
	requeued    *obs.Counter
	duplicated  *obs.Counter
	lateResults *obs.Counter
	probeHits   *obs.Counter
	probeMisses *obs.Counter

	heartbeats  *obs.Counter
	suspects    *obs.Counter
	retried     *obs.Counter
	quarantined *obs.Counter
	readmitted  *obs.Counter
	validated   *obs.Counter
	divergent   *obs.Counter
	fallback    *obs.Counter

	latency *obs.Histogram
}

// NewTelemetry wires the coordinator probes into reg; a nil registry
// returns a nil Telemetry, the zero-cost off switch.
func NewTelemetry(reg *obs.Registry) *Telemetry {
	if reg == nil {
		return nil
	}
	return &Telemetry{
		reg:         reg,
		workers:     reg.Gauge("fabric.workers"),
		pending:     reg.Gauge("fabric.pending_depth"),
		inflight:    reg.Gauge("fabric.inflight"),
		joined:      reg.Counter("fabric.workers_joined"),
		deaths:      reg.Counter("fabric.workers_died"),
		submitted:   reg.Counter("fabric.granules_submitted"),
		completed:   reg.Counter("fabric.granules_completed"),
		requeued:    reg.Counter("fabric.granules_requeued"),
		duplicated:  reg.Counter("fabric.stragglers_duplicated"),
		lateResults: reg.Counter("fabric.late_results_ignored"),
		probeHits:   reg.Counter("fabric.cache_probe_hits"),
		probeMisses: reg.Counter("fabric.cache_probe_misses"),
		heartbeats:  reg.Counter("fabric.heartbeats"),
		suspects:    reg.Counter("fabric.workers_suspected"),
		retried:     reg.Counter("fabric.granules_retried"),
		quarantined: reg.Counter("fabric.workers_quarantined"),
		readmitted:  reg.Counter("fabric.workers_readmitted"),
		validated:   reg.Counter("fabric.granules_validated"),
		divergent:   reg.Counter("fabric.validations_divergent"),
		fallback:    reg.Counter("fabric.fallback_execs"),
		latency:     reg.Histogram("fabric.granule_seconds", 0, 30, 120),
	}
}

// SyncQueue refreshes the queue-shape gauges after a scheduling change:
// connected workers, pending-queue depth, total in-flight holdings, and
// the per-worker in-flight gauges.
func (t *Telemetry) SyncQueue(workers []*remoteWorker, pending int) {
	if t == nil {
		return
	}
	total := 0
	for _, w := range workers {
		n := len(w.inflight)
		total += n
		t.reg.Gauge("fabric.worker." + promSafe(w.name) + ".inflight").Set(float64(n))
	}
	t.workers.Set(float64(len(workers)))
	t.pending.Set(float64(pending))
	t.inflight.Set(float64(total))
}

// WorkerGone zeroes a dead worker's in-flight gauge and counts the
// death plus the granules it alone held that went back on the queue.
func (t *Telemetry) WorkerGone(name string, requeued int) {
	if t == nil {
		return
	}
	t.deaths.Inc()
	t.requeued.Add(uint64(requeued))
	t.reg.Gauge("fabric.worker." + promSafe(name) + ".inflight").Set(0)
}

// Joined counts a worker handshake.
func (t *Telemetry) Joined() {
	if t == nil {
		return
	}
	t.joined.Inc()
}

// Submitted counts a distinct granule entering the queue.
func (t *Telemetry) Submitted() {
	if t == nil {
		return
	}
	t.submitted.Inc()
}

// Completed records a granule resolving, with its issue-to-result wall
// clock.
func (t *Telemetry) Completed(latency time.Duration) {
	if t == nil {
		return
	}
	t.completed.Inc()
	t.latency.Observe(latency.Seconds())
}

// LateResult counts a duplicate result ignored because the first copy
// already won — the straggler first-result-wins race.
func (t *Telemetry) LateResult() {
	if t == nil {
		return
	}
	t.lateResults.Inc()
}

// Duplicated counts a straggler duplication onto an idle worker.
func (t *Telemetry) Duplicated() {
	if t == nil {
		return
	}
	t.duplicated.Inc()
}

// Heartbeat counts a worker ping frame.
func (t *Telemetry) Heartbeat() {
	if t == nil {
		return
	}
	t.heartbeats.Inc()
}

// Suspect counts a healthy→suspect health transition.
func (t *Telemetry) Suspect() {
	if t == nil {
		return
	}
	t.suspects.Inc()
}

// Retried counts a transient-failure re-queue charged to a granule's
// retry budget.
func (t *Telemetry) Retried() {
	if t == nil {
		return
	}
	t.retried.Inc()
}

// Quarantined counts a worker tripping the circuit breaker.
func (t *Telemetry) Quarantined() {
	if t == nil {
		return
	}
	t.quarantined.Inc()
}

// Readmitted counts a worker readmitted after probation.
func (t *Telemetry) Readmitted() {
	if t == nil {
		return
	}
	t.readmitted.Inc()
}

// Validated counts a cross-validated granule decided.
func (t *Telemetry) Validated() {
	if t == nil {
		return
	}
	t.validated.Inc()
}

// Divergent counts a cross-validation that caught disagreeing answers.
func (t *Telemetry) Divergent() {
	if t == nil {
		return
	}
	t.divergent.Inc()
}

// Fallback counts a granule executed in-process by the local fallback.
func (t *Telemetry) Fallback() {
	if t == nil {
		return
	}
	t.fallback.Inc()
}

// CacheProbe records one shared-cache probe and whether it hit.
func (t *Telemetry) CacheProbe(hit bool) {
	if t == nil {
		return
	}
	if hit {
		t.probeHits.Inc()
	} else {
		t.probeMisses.Inc()
	}
}

// promSafe flattens a worker name (usually host:port) into a metric-name
// segment: anything outside [a-zA-Z0-9_] becomes '_', matching what the
// Prometheus renderer would do anyway but keeping registry keys stable.
func promSafe(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// WorkerTelemetry is the worker-side probe set: granule execution
// latency and cache-probe efficiency. Unlike the coordinator, a worker
// executes granules on concurrent slots, so this type carries its own
// mutex around the unsynchronised registry. The nil receiver is the
// off switch.
type WorkerTelemetry struct {
	mu        sync.Mutex
	reg       *obs.Registry
	executed  *obs.Counter
	failed    *obs.Counter
	abandoned *obs.Counter
	probeHits *obs.Counter
	latency   *obs.Histogram
}

// NewWorkerTelemetry wires the worker probes into reg; nil registry,
// nil telemetry.
func NewWorkerTelemetry(reg *obs.Registry) *WorkerTelemetry {
	if reg == nil {
		return nil
	}
	return &WorkerTelemetry{
		reg:       reg,
		executed:  reg.Counter("worker.granules_executed"),
		failed:    reg.Counter("worker.granules_failed"),
		abandoned: reg.Counter("worker.granules_abandoned"),
		probeHits: reg.Counter("worker.cache_probe_hits"),
		latency:   reg.Histogram("worker.granule_seconds", 0, 30, 120),
	}
}

// Executed records one locally computed granule and its wall clock.
func (w *WorkerTelemetry) Executed(latency time.Duration, failed bool) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.executed.Inc()
	if failed {
		w.failed.Inc()
	}
	w.latency.Observe(latency.Seconds())
}

// Abandoned records a granule dropped mid-execution by shutdown.
func (w *WorkerTelemetry) Abandoned() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.abandoned.Inc()
}

// ProbeHit records a shared-cache probe answered with a result.
func (w *WorkerTelemetry) ProbeHit() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.probeHits.Inc()
}

// Snapshot captures the worker probes; callers use it after RunWorker
// returns (single-goroutine again) to log a shutdown summary.
func (w *WorkerTelemetry) Snapshot() *obs.Snapshot {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reg.Snapshot()
}
