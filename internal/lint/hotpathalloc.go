package lint

import "sort"

// analyzerHotPathAlloc statically enforces the zero-alloc invariant the
// steady-state engines depend on (DESIGN.md §8, §9): nothing reachable
// from a component's per-cycle hooks — Tick, and the fast-forward trio
// Quiescent / NextEvent / AdvanceCycles — may allocate on the heap.
// The dynamic pin (TestSteadyStateZeroAlloc) measures a single warmed
// configuration; this analyzer walks the call graph from every hook of
// every component in internal/sim, so a per-cycle make, a growing
// append, a closure capture, an interface boxing or a stray fmt call
// introduced anywhere in the reachable engine surfaces at `make lint`
// with the offending frame and the call chain that reaches it.
//
// Allocation in cold paths (constructors, Measure/Snapshot, report
// building) is untouched: only functions reachable from the hooks are
// checked. A deliberate amortised allocation — a freelist growing once
// at warm-up — is justified with `//lint:ignore hotpathalloc reason`.
var analyzerHotPathAlloc = &Analyzer{
	Name:      "hotpathalloc",
	Doc:       "no heap allocation reachable from the per-cycle engine hooks (Tick/Quiescent/NextEvent/AdvanceCycles) in internal/sim",
	RunModule: runHotPathAlloc,
}

// hotRootNames are the per-cycle entry points: every method with one of
// these names on a type in internal/sim is a root.
var hotRootNames = map[string]bool{
	"Tick":          true,
	"Quiescent":     true,
	"NextEvent":     true,
	"AdvanceCycles": true,
}

// hotRootScope is the subtree whose methods seed the reachability walk.
const hotRootScope = "internal/sim"

// hotPathExempt are layers the walk reaches but does not blame: the
// observability and analysis packages are nil-guarded off the
// steady-state path (obsdiscipline enforces the nil-receiver guard),
// so their window-boundary allocations never execute in the
// configurations the zero-alloc pin covers.
var hotPathExempt = []string{"internal/obs", "internal/phase", "internal/analyzer"}

func runHotPathAlloc(p *ModulePass) {
	var roots []*FuncNode
	for _, n := range p.Graph.Nodes() {
		if n.Obj == nil || n.Decl == nil || n.Decl.Recv == nil || !hotRootNames[n.Obj.Name()] {
			continue
		}
		if matchRel(n.Pkg.Rel, hotRootScope) {
			roots = append(roots, n)
		}
	}
	reached := p.Graph.Reach(roots)

	// Deterministic iteration: nodes in position order.
	ordered := make([]*FuncNode, 0, len(reached))
	for n := range reached {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })

	for _, n := range ordered {
		if matchAny(n.Pkg.Rel, hotPathExempt) {
			continue
		}
		facts := factsOf(n)
		if len(facts.Allocs) == 0 {
			continue
		}
		via := ""
		if reached[n].From != nil {
			via = " (reached via " + reached[n].Chain() + ")"
		}
		for _, site := range facts.Allocs {
			p.Reportf(site.Pos, "%s in per-cycle hot path %s%s: the steady-state engines must not allocate (freelists and preallocated buffers only)",
				site.What, n.Name(), via)
		}
	}
}
