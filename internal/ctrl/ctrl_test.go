package ctrl

// Unit tests for the control plane: scheduler budgets, cancellation,
// hub ring backpressure, SSE framing, and the lpm-ctrl/v1 HTTP surface.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lpm/internal/obs"
	"lpm/internal/obs/timeseries"
	"lpm/internal/resilience/fleet"
)

// stubRunner publishes `windows` timeline windows, then blocks until
// released (or returns immediately when release is nil). It records
// starts so tests can observe scheduling order.
type stubRunner struct {
	windows int
	delay   time.Duration // pause between windows (0 = publish as fast as possible)
	release chan struct{} // nil = finish immediately
	fail    bool

	mu      sync.Mutex
	started []string
}

func (s *stubRunner) Run(ctx context.Context, spec RunSpec, pub *Publisher) (json.RawMessage, error) {
	s.mu.Lock()
	s.started = append(s.started, spec.Workload)
	s.mu.Unlock()
	pub.SetMeta(512, false)
	reg := obs.NewRegistry()
	windows := reg.Counter("stub.windows")
	for i := 0; i < s.windows; i++ {
		w := timeseries.Window{Index: i, Start: uint64(i) * 512, End: uint64(i+1) * 512}
		w.Derived.LPMR1 = 1 + float64(i)
		pub.Window(w)
		windows.Inc()
		pub.Snapshot(reg.Snapshot())
		if s.delay > 0 {
			select {
			case <-time.After(s.delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	if s.release != nil {
		select {
		case <-s.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if s.fail {
		return nil, fmt.Errorf("stub: injected failure")
	}
	return json.RawMessage(`{"schema":"stub"}`), nil
}

func (s *stubRunner) startedRuns() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.started...)
}

// waitState polls until the run reaches state or the deadline passes.
func waitState(t *testing.T, reg *Registry, id string, state RunState) RunStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := reg.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State == state {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := reg.Get(id)
	t.Fatalf("run %s never reached %s (now %s)", id, state, st.State)
	return RunStatus{}
}

func TestRegistryLifecycle(t *testing.T) {
	run := &stubRunner{windows: 3}
	reg := NewRegistry(context.Background(), Config{Runner: run, MaxConcurrent: 2})

	st, err := reg.Submit(RunSpec{Workload: "403.gcc"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != "r-1" || st.API != APIVersion || st.Spec.Tenant != "default" {
		t.Fatalf("submit status: %+v", st)
	}
	st = waitState(t, reg, "r-1", StateDone)
	if st.Windows != 3 || st.Started.IsZero() || st.Finished.IsZero() {
		t.Fatalf("done status: %+v", st)
	}
	doc, state, ok := reg.resultDoc("r-1")
	if !ok || state != StateDone || !strings.Contains(string(doc), "stub") {
		t.Fatalf("result: ok=%v state=%s doc=%s", ok, state, doc)
	}
	if l := reg.List(); len(l.Runs) != 1 || l.API != APIVersion {
		t.Fatalf("list: %+v", l)
	}
	if _, err := reg.Submit(RunSpec{Workload: "no.such"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := reg.Submit(RunSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	reg.Drain()
}

func TestTenantBudgetScheduling(t *testing.T) {
	release := make(chan struct{})
	run := &stubRunner{windows: 1, release: release}
	reg := NewRegistry(context.Background(), Config{Runner: run, MaxConcurrent: 4, TenantBudget: 1})

	// Two runs for tenant acme: the second must queue behind the budget.
	for i := 0; i < 2; i++ {
		if _, err := reg.Submit(RunSpec{Workload: "403.gcc", Tenant: "acme"}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// A different tenant is not throttled by acme's budget.
	if _, err := reg.Submit(RunSpec{Workload: "429.mcf", Tenant: "beta"}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, reg, "r-1", StateRunning)
	waitState(t, reg, "r-3", StateRunning)
	if st, _ := reg.Get("r-2"); st.State != StatePending {
		t.Fatalf("second acme run should be pending, is %s", st.State)
	}
	close(release)
	waitState(t, reg, "r-1", StateDone)
	waitState(t, reg, "r-2", StateDone)
	waitState(t, reg, "r-3", StateDone)
	reg.Drain()
}

func TestCancelPendingAndRunning(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	run := &stubRunner{windows: 1, release: release}
	reg := NewRegistry(context.Background(), Config{Runner: run, MaxConcurrent: 1})

	reg.Submit(RunSpec{Workload: "403.gcc"})
	reg.Submit(RunSpec{Workload: "403.gcc"})
	waitState(t, reg, "r-1", StateRunning)

	// r-2 is pending: cancel resolves it immediately and never starts it.
	if st, err := reg.Cancel("r-2"); err != nil || st.State != StateCancelled {
		t.Fatalf("cancel pending: %+v, %v", st, err)
	}
	// r-1 is running: cancel cancels its context; the stub returns
	// ctx.Err() and the run resolves cancelled.
	if _, err := reg.Cancel("r-1"); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	st := waitState(t, reg, "r-1", StateCancelled)
	if st.Error == "" {
		t.Fatalf("cancelled run carries no cause: %+v", st)
	}
	if _, err := reg.Cancel("r-99"); err == nil {
		t.Fatal("cancelling unknown run did not error")
	}
	reg.Drain()
	if got := run.startedRuns(); len(got) != 1 {
		t.Fatalf("cancelled-pending run was started: %v", got)
	}
}

func TestHubRingDropsOldest(t *testing.T) {
	hub := NewHub()
	var drops uint64
	var dropMu sync.Mutex
	hub.onDrop = func(n uint64) { dropMu.Lock(); drops += n; dropMu.Unlock() }

	sub := hub.Subscribe(4)
	for i := 0; i < 10; i++ {
		hub.Publish(timeseries.Window{Index: i})
	}
	hub.Done()
	// Ring of 4 after 11 events (10 windows + done): the first seven
	// dropped; the survivors are windows 7, 8, 9 and done.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e, dropped, ok := sub.Next(ctx)
	if !ok || e.Type != "window" || e.Window.Index != 7 || dropped != 7 {
		t.Fatalf("first event: %+v dropped=%d ok=%v", e, dropped, ok)
	}
	for _, wantIdx := range []int{8, 9} {
		e, dropped, ok = sub.Next(ctx)
		if !ok || dropped != 0 || e.Window.Index != wantIdx {
			t.Fatalf("event: %+v dropped=%d ok=%v want index %d", e, dropped, ok, wantIdx)
		}
	}
	if e, _, _ = sub.Next(ctx); e.Type != "done" {
		t.Fatalf("final event: %+v", e)
	}
	sub.Close()
	dropMu.Lock()
	defer dropMu.Unlock()
	if drops != 7 {
		t.Fatalf("drop accounting: %d, want 7", drops)
	}
}

func TestHubLateSubscriberCatchesUp(t *testing.T) {
	hub := NewHub()
	hub.Publish(timeseries.Window{Index: 0})
	hub.Publish(timeseries.Window{Index: 1})
	hub.Done()
	sub := hub.Subscribe(0)
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var types []string
	for {
		e, _, ok := sub.Next(ctx)
		if !ok {
			t.Fatal("subscription ended before done event")
		}
		types = append(types, e.Type)
		if e.Type == "done" {
			break
		}
	}
	if strings.Join(types, ",") != "window,window,done" {
		t.Fatalf("catch-up sequence: %v", types)
	}
}

func TestHubSubscribeAfterDeduplicates(t *testing.T) {
	hub := NewHub()
	for i := 0; i < 5; i++ {
		hub.Publish(timeseries.Window{Index: i})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// First session: read three windows, remember the last seq seen.
	sub := hub.Subscribe(0)
	var last uint64
	for i := 0; i < 3; i++ {
		e, _, ok := sub.Next(ctx)
		if !ok || e.Type != "window" || e.Window.Index != i {
			t.Fatalf("event %d: %+v ok=%v", i, e, ok)
		}
		if e.Seq <= last {
			t.Fatalf("seq not increasing: %d after %d", e.Seq, last)
		}
		last = e.Seq
	}
	sub.Close()

	// Reconnect mid-history: catch-up must resume strictly after the
	// last seq — windows 0..2 never replay.
	hub.Done()
	sub2 := hub.SubscribeAfter(0, last)
	defer sub2.Close()
	var got []int
	for {
		e, _, ok := sub2.Next(ctx)
		if !ok {
			t.Fatal("subscription ended before done")
		}
		if e.Seq <= last {
			t.Fatalf("duplicated event seq %d (already saw through %d)", e.Seq, last)
		}
		last = e.Seq
		if e.Type == "done" {
			break
		}
		got = append(got, e.Window.Index)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("resumed windows: %v, want [3 4]", got)
	}
}

func TestSSEReconnectResumesAfterLastEventID(t *testing.T) {
	run := &stubRunner{windows: 5}
	reg := NewRegistry(context.Background(), Config{Runner: run, MaxConcurrent: 1})
	srv := httptest.NewServer(NewAPIMux(reg))
	defer srv.Close()
	defer reg.Drain()
	if _, err := reg.Submit(RunSpec{Workload: "403.gcc"}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, reg, "r-1", StateDone)

	// readSSE drains one stream, recording every id: line, until done or
	// maxWindows window events arrive.
	readSSE := func(lastEventID string, maxWindows int) (ids []uint64, sawDone bool) {
		req, err := http.NewRequest("GET", srv.URL+"/api/v1/runs/r-1/events", nil)
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		if lastEventID != "" {
			req.Header.Set("Last-Event-ID", lastEventID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET events: %v", err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		windows := 0
		for sc.Scan() {
			line := sc.Text()
			if v, ok := strings.CutPrefix(line, "id: "); ok {
				var id uint64
				fmt.Sscanf(v, "%d", &id)
				ids = append(ids, id)
			}
			if ev, ok := strings.CutPrefix(line, "event: "); ok {
				switch ev {
				case "done":
					sawDone = true
					return ids, sawDone
				case "window":
					windows++
				}
			}
			// The event: line precedes the id: line, so only disconnect
			// at the blank line terminating a complete event — leaving
			// mid-event would drop the id the reconnect resumes from.
			if line == "" && maxWindows > 0 && windows >= maxWindows {
				return ids, sawDone
			}
		}
		return ids, sawDone
	}

	// First session reads two windows then "disconnects".
	first, _ := readSSE("", 2)
	if len(first) < 2 {
		t.Fatalf("first session saw %d ids, want >=2", len(first))
	}
	last := first[len(first)-1]

	// Reconnect with Last-Event-ID: no id at or below `last` may appear.
	resumed, sawDone := readSSE(fmt.Sprint(last), 0)
	if !sawDone {
		t.Fatal("resumed session never saw done")
	}
	// 5 windows carry ids 1..5 (done is id-less); the resume starts
	// after `last`.
	if want := 5 - int(last); len(resumed) != want {
		t.Fatalf("resumed session saw %d ids (%v), want %d", len(resumed), resumed, want)
	}
	prev := last
	for _, id := range resumed {
		if id <= prev {
			t.Fatalf("resumed stream replayed or reordered id %d after %d", id, prev)
		}
		prev = id
	}

	// A malformed Last-Event-ID is a 400, not a silent full replay.
	req, _ := http.NewRequest("GET", srv.URL+"/api/v1/runs/r-1/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID: status %d, want 400", resp.StatusCode)
	}
}

// flakyRunner fails transiently the first `failures` times, then runs
// the embedded stub.
type flakyRunner struct {
	stubRunner
	mu       sync.Mutex
	failures int
	attempts int
}

func (f *flakyRunner) Run(ctx context.Context, spec RunSpec, pub *Publisher) (json.RawMessage, error) {
	f.mu.Lock()
	f.attempts++
	fail := f.attempts <= f.failures
	f.mu.Unlock()
	if fail {
		return nil, &fleet.RemoteError{Text: "stub: connection reset", Transient: true}
	}
	return f.stubRunner.Run(ctx, spec, pub)
}

func TestRunRetryTransient(t *testing.T) {
	fast := fleet.RetryPolicy{Base: time.Millisecond, Cap: time.Millisecond, Multiplier: 2}
	run := &flakyRunner{stubRunner: stubRunner{windows: 1}, failures: 2}
	reg := NewRegistry(context.Background(), Config{
		Runner: run, MaxConcurrent: 1, Retry: fast, RetryBudget: 3,
	})
	if _, err := reg.Submit(RunSpec{Workload: "403.gcc"}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, reg, "r-1", StateDone)
	reg.Drain()
	if run.attempts != 3 {
		t.Fatalf("attempts=%d, want 3 (2 transient failures + 1 success)", run.attempts)
	}

	// A permanent failure must not burn retries.
	perm := &flakyRunner{stubRunner: stubRunner{windows: 1, fail: true}}
	reg2 := NewRegistry(context.Background(), Config{
		Runner: perm, MaxConcurrent: 1, Retry: fast, RetryBudget: 3,
	})
	if _, err := reg2.Submit(RunSpec{Workload: "403.gcc"}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, reg2, "r-1", StateFailed)
	reg2.Drain()
	if perm.attempts != 1 {
		t.Fatalf("permanent failure retried: attempts=%d, want 1", perm.attempts)
	}

	// A run that exhausts its budget fails with the transient error.
	burn := &flakyRunner{stubRunner: stubRunner{windows: 1}, failures: 99}
	reg3 := NewRegistry(context.Background(), Config{
		Runner: burn, MaxConcurrent: 1, Retry: fast, RetryBudget: 2,
	})
	if _, err := reg3.Submit(RunSpec{Workload: "403.gcc"}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, reg3, "r-1", StateFailed)
	reg3.Drain()
	if burn.attempts != 3 {
		t.Fatalf("budget 2: attempts=%d, want 3", burn.attempts)
	}
	if !strings.Contains(st.Error, "connection reset") {
		t.Fatalf("exhausted run error: %q", st.Error)
	}
}

func TestHTTPAPI(t *testing.T) {
	release := make(chan struct{})
	run := &stubRunner{windows: 5, release: release}
	reg := NewRegistry(context.Background(), Config{Runner: run, MaxConcurrent: 2})
	srv := httptest.NewServer(NewAPIMux(reg))
	defer srv.Close()
	defer reg.Drain()

	// Submit over HTTP.
	resp, err := http.Post(srv.URL+"/api/v1/runs", "application/json",
		strings.NewReader(`{"workload":"403.gcc","tenant":"acme"}`))
	if err != nil {
		t.Fatalf("POST runs: %v", err)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID != "r-1" {
		t.Fatalf("submit: status=%d %+v", resp.StatusCode, st)
	}

	// Bad spec is a 400 with the JSON error envelope.
	resp, err = http.Post(srv.URL+"/api/v1/runs", "application/json",
		strings.NewReader(`{"workload":"no.such"}`))
	if err != nil {
		t.Fatal(err)
	}
	var apiErr struct{ API, Error string }
	json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || apiErr.API != APIVersion {
		t.Fatalf("bad spec: status=%d %+v", resp.StatusCode, apiErr)
	}

	// SSE: windows stream as they land, then done.
	sseResp, err := http.Get(srv.URL + "/api/v1/runs/r-1/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	close(release)
	sc := bufio.NewScanner(sseResp.Body)
	var events []string
	for sc.Scan() {
		if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			events = append(events, ev)
			if ev == "done" {
				break
			}
		}
	}
	if len(events) != 6 || events[0] != "window" || events[5] != "done" {
		t.Fatalf("SSE events: %v", events)
	}

	waitState(t, reg, "r-1", StateDone)

	// Status, list, timeline, per-run metrics, result.
	get := func(path string, wantStatus int) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		var b strings.Builder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteString("\n")
		}
		return b.String()
	}
	if body := get("/api/v1/runs/r-1", http.StatusOK); !strings.Contains(body, `"state": "done"`) &&
		!strings.Contains(body, `"state":"done"`) {
		t.Fatalf("status body: %s", body)
	}
	if body := get("/api/v1/runs", http.StatusOK); !strings.Contains(body, `"r-1"`) {
		t.Fatalf("list body: %s", body)
	}
	var tl TimelineDoc
	if err := json.Unmarshal([]byte(get("/api/v1/runs/r-1/timeline", http.StatusOK)), &tl); err != nil {
		t.Fatalf("timeline: %v", err)
	}
	if tl.Schema != TimelineSchema || !tl.Done || len(tl.Series.Windows) != 5 {
		t.Fatalf("timeline doc: %+v", tl)
	}
	if body := get("/api/v1/runs/r-1/metrics", http.StatusOK); !strings.Contains(body, "lpm_timeline_lpmr1") {
		t.Fatalf("per-run metrics: %s", body)
	}
	if body := get("/api/v1/runs/r-1/result", http.StatusOK); !strings.Contains(body, "stub") {
		t.Fatalf("result: %s", body)
	}
	get("/api/v1/runs/r-99", http.StatusNotFound)
	// No sweep fabric attached: the fleet health endpoint is a 404.
	get("/api/v1/fleet", http.StatusNotFound)

	// Fleet metrics: control-plane series plus run-labeled series.
	fleet := get("/metrics", http.StatusOK)
	for _, want := range []string{
		"# TYPE lpm_ctrl_runs_submitted counter",
		"lpm_ctrl_runs_submitted 1",
		"lpm_ctrl_runs_done 1",
		`run="r-1",tenant="acme"`,
	} {
		if !strings.Contains(fleet, want) {
			t.Fatalf("fleet /metrics lacks %q:\n%s", want, fleet)
		}
	}
}
