package fabric

// LocalFabric is the in-process multi-worker simulation harness: a real
// coordinator on loopback TCP plus N workers running as goroutines in
// the same process. Every frame crosses a real socket, so the harness
// exercises the actual wire path — framing, budgets, re-issue — while
// staying cheap enough for `go test -race` and letting chaos tests arm
// process-global failpoints that both sides see.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// localWorker tracks one harness worker goroutine.
type localWorker struct {
	name   string
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

// LocalFabric couples a coordinator, its in-process workers, and the
// process-global activation that routes this process's simulations
// through it.
type LocalFabric struct {
	// C is the live coordinator, exposed for Stats and WaitWorkers.
	C *Coordinator

	restore func()
	mu      sync.Mutex
	workers []*localWorker
	nextID  int
}

// StartLocal starts a loopback coordinator with n workers, activates it
// as the process-wide fabric, and waits until all n workers have
// joined. Close undoes everything.
func StartLocal(n int, opts Options, wopts WorkerOptions) (*LocalFabric, error) {
	c, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		return nil, err
	}
	lf := &LocalFabric{C: c, restore: Activate(c)}
	for i := 0; i < n; i++ {
		lf.AddWorker(wopts)
	}
	//lint:ignore ctxflow StartLocal is a fixture entry point; the timeout bounds worker join
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.WaitWorkers(ctx, n); err != nil {
		_ = lf.Close()
		return nil, fmt.Errorf("fabric: starting %d local workers: %w", n, err)
	}
	return lf, nil
}

// AddWorker starts one more worker goroutine (join-mid-run in tests)
// and returns its name. The join is asynchronous; use C.WaitWorkers to
// block until it lands.
func (lf *LocalFabric) AddWorker(wopts WorkerOptions) string {
	lf.mu.Lock()
	lf.nextID++
	name := fmt.Sprintf("local-%d", lf.nextID)
	if wopts.Name != "" {
		name = fmt.Sprintf("%s-%d", wopts.Name, lf.nextID)
	}
	wopts.Name = name
	//lint:ignore ctxflow each local worker owns its root context; Close cancels it explicitly
	ctx, cancel := context.WithCancel(context.Background())
	lw := &localWorker{name: name, cancel: cancel, done: make(chan struct{})}
	lf.workers = append(lf.workers, lw)
	lf.mu.Unlock()
	go func() {
		defer close(lw.done)
		lw.err = RunWorker(ctx, lf.C.Addr(), wopts)
	}()
	return name
}

// StopWorker cancels the named worker and waits for it to exit —
// leave-mid-run in tests. From the coordinator's side this is
// indistinguishable from a crash: the connection just drops.
func (lf *LocalFabric) StopWorker(name string) error {
	lf.mu.Lock()
	var lw *localWorker
	for _, w := range lf.workers {
		if w.name == name {
			lw = w
			break
		}
	}
	lf.mu.Unlock()
	if lw == nil {
		return fmt.Errorf("fabric: no local worker named %q", name)
	}
	lw.cancel()
	<-lw.done
	return nil
}

// Close deactivates the fabric, shuts the coordinator down, and reaps
// every worker goroutine, returning the first worker error (cancelled
// and cleanly-disconnected workers return nil).
func (lf *LocalFabric) Close() error {
	lf.restore()
	_ = lf.C.Close()
	lf.mu.Lock()
	workers := append([]*localWorker(nil), lf.workers...)
	lf.mu.Unlock()
	var firstErr error
	for _, lw := range workers {
		lw.cancel()
		//lint:ignore ctxflow the cancel on the previous line unblocks the worker; done closes as it exits
		<-lw.done
		if lw.err != nil && firstErr == nil && !errors.Is(lw.err, context.Canceled) {
			firstErr = fmt.Errorf("fabric: local worker %q: %w", lw.name, lw.err)
		}
	}
	return firstErr
}
