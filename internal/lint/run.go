package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
)

// Config parameterises one lint run.
type Config struct {
	// Dir is the module root (a directory containing go.mod). Empty
	// means the current directory.
	Dir string
	// Tags are extra build tags for //go:build evaluation (-tags).
	Tags []string
	// Enable, when non-empty, restricts the run to the named analyzers.
	Enable []string
	// Disable removes the named analyzers from the run.
	Disable []string
	// Scopes overrides an analyzer's default path scoping with
	// module-relative prefixes, e.g. {"determinism": {"internal/sim"}}.
	Scopes map[string][]string
	// Paths, when non-empty, restricts linted packages to these
	// module-relative prefixes ("." is the root package).
	Paths []string
}

// Run loads the module and applies every selected analyzer to every
// selected package, returning the surviving findings sorted by
// position. Suppressions (//lint:ignore) are applied here; malformed
// and unused directives surface as "lint" findings.
func Run(cfg Config) ([]Diagnostic, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	mod, err := Load(dir, cfg.Tags)
	if err != nil {
		return nil, err
	}

	analyzers, err := selectAnalyzers(cfg)
	if err != nil {
		return nil, err
	}
	// Unused-suppression tracking is only sound when every analyzer a
	// directive could name actually ran.
	fullSuite := len(analyzers) == len(Analyzers())

	var out []Diagnostic
	for _, pkg := range mod.Packages {
		if !matchAny(pkg.Rel, normalizePaths(cfg.Paths)) {
			continue
		}
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			paths := a.Paths
			if override, ok := cfg.Scopes[a.Name]; ok {
				paths = override
			}
			if !matchAny(pkg.Rel, paths) {
				continue
			}
			pass := &Pass{Pkg: pkg, analyzer: a, diags: &pkgDiags}
			a.Run(pass)
		}

		// Apply per-file suppressions; malformed directives report here.
		// Syntax is in sorted-filename order, so the ordered walk over
		// every directive below is deterministic.
		sups := make(map[string]*fileSuppressions, len(pkg.Syntax))
		ordered := make([]*fileSuppressions, 0, len(pkg.Syntax))
		for _, f := range pkg.Syntax {
			name := pkg.Fset.Position(f.Pos()).Filename
			fs := buildSuppressions(pkg.Fset, f, pkg.srcLines[name], func(pos token.Pos, msg string) {
				out = append(out, Diagnostic{Pos: pkg.Fset.Position(pos), Analyzer: "lint", Message: msg})
			})
			sups[name] = fs
			ordered = append(ordered, fs)
		}
		for _, d := range pkgDiags {
			if fs, ok := sups[d.Pos.Filename]; ok && fs.suppress(d) {
				continue
			}
			out = append(out, d)
		}
		if fullSuite {
			for _, fs := range ordered {
				for _, s := range fs.all {
					if !s.used {
						out = append(out, Diagnostic{
							Pos:      pkg.Fset.Position(s.pos),
							Analyzer: "lint",
							Message:  "suppression matches no finding on its target line; delete the stale //lint:ignore",
						})
					}
				}
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// selectAnalyzers applies -enable/-disable to the registry.
func selectAnalyzers(cfg Config) ([]*Analyzer, error) {
	for _, name := range append(append([]string{}, cfg.Enable...), cfg.Disable...) {
		if analyzerByName(name) == nil {
			return nil, fmt.Errorf("lint: unknown analyzer %q (known: %s)", name, analyzerNames())
		}
	}
	for name := range cfg.Scopes {
		if analyzerByName(name) == nil {
			return nil, fmt.Errorf("lint: -scope names unknown analyzer %q (known: %s)", name, analyzerNames())
		}
	}
	disabled := make(map[string]bool, len(cfg.Disable))
	for _, name := range cfg.Disable {
		disabled[name] = true
	}
	enabled := make(map[string]bool, len(cfg.Enable))
	for _, name := range cfg.Enable {
		enabled[name] = true
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if disabled[a.Name] {
			continue
		}
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// normalizePaths cleans CLI path patterns ("./internal/sim/" →
// "internal/sim").
func normalizePaths(paths []string) []string {
	var out []string
	for _, p := range paths {
		p = filepath.ToSlash(filepath.Clean(p))
		if p == "" {
			continue
		}
		out = append(out, p)
	}
	return out
}
