package lpm

// Benchmark harness: one benchmark per table/figure of the paper (see
// DESIGN.md §3), plus ablations of the design decisions DESIGN.md §4
// calls out. The benchmarks attach the reproduced quantities as custom
// metrics (LPMR1, Hsp, stall%, ...) so `go test -bench . -benchmem`
// regenerates the paper's rows alongside runtime cost.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"lpm/internal/core"
	"lpm/internal/explore"
	"lpm/internal/interval"
	"lpm/internal/obs/timeseries"
	"lpm/internal/sched"
	"lpm/internal/sim/cache"
	"lpm/internal/sim/chip"
	"lpm/internal/sim/cpu"
	"lpm/internal/sim/dram"
	"lpm/internal/sim/noc"
	"lpm/internal/trace"
)

// benchScale keeps full-suite bench time reasonable on one core.
func benchScale() Scale { return QuickScale() }

// BenchmarkFig1CAMATDemo regenerates the paper's Fig. 1 worked example
// (C-AMAT = 1.6 vs AMAT = 3.8).
func BenchmarkFig1CAMATDemo(b *testing.B) {
	var p LayerParams
	for i := 0; i < b.N; i++ {
		p = Fig1()
	}
	b.ReportMetric(p.CAMAT(), "C-AMAT")
	b.ReportMetric(p.AMAT(), "AMAT")
	b.ReportMetric(p.CH(), "C_H")
	b.ReportMetric(p.PAMP(), "pAMP")
}

// BenchmarkTable1ConfigurationsAtoE regenerates Table I: the three LPMRs
// and the stall fraction for each configuration A..E on the bwaves-like
// workload.
func BenchmarkTable1ConfigurationsAtoE(b *testing.B) {
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var m Measurement
			for i := 0; i < b.N; i++ {
				ResetSimCaches() // time the simulation, not a memo hit
				tgt := explore.NewHardwareTarget(explore.DefaultSpace(),
					explore.TableConfigs()[name], trace.MustProfile("410.bwaves"))
				tgt.Warmup = benchScale().Warmup
				tgt.Instructions = benchScale().Window
				m = tgt.Measure()
			}
			b.ReportMetric(m.LPMR1(), "LPMR1")
			b.ReportMetric(m.LPMR2(), "LPMR2")
			b.ReportMetric(m.LPMR3(), "LPMR3")
			b.ReportMetric(100*m.MeasuredStall/m.CPIexe, "stall%CPIexe")
		})
	}
}

// BenchmarkCaseStudyIAlgorithm runs the Fig. 3 LPMR-reduction algorithm
// over the million-point design space at both grains, reporting how many
// simulations the guided search needed and the final state.
func BenchmarkCaseStudyIAlgorithm(b *testing.B) {
	for _, g := range []Grain{CoarseGrain, FineGrain} {
		g := g
		b.Run(g.String(), func(b *testing.B) {
			var res CaseStudyIResult
			for i := 0; i < b.N; i++ {
				ResetSimCaches() // time the walk's simulations, not memo hits
				res = CaseStudyI(g, benchScale())
			}
			b.ReportMetric(float64(res.Evaluations), "simulations")
			b.ReportMetric(res.Algorithm.Final.LPMR1(), "finalLPMR1")
			b.ReportMetric(res.Final.Cost(), "hwCost")
			b.ReportMetric(100*res.Algorithm.Final.MeasuredStall/res.Algorithm.Final.CPIexe, "stall%CPIexe")
		})
	}
}

// benchProfiles are the five benchmarks the paper discusses individually
// in Figs. 6 and 7.
var benchProfiles = []string{"401.bzip2", "403.gcc", "429.mcf", "416.gamess", "433.milc"}

// BenchmarkFig6APC1Sweep regenerates Fig. 6: APC1 of each discussed
// application at every NUCA L1 size.
func BenchmarkFig6APC1Sweep(b *testing.B) {
	for _, name := range benchProfiles {
		name := name
		b.Run(name, func(b *testing.B) {
			var tbl *sched.ProfileTable
			for i := 0; i < b.N; i++ {
				ResetSimCaches() // time the profiling runs, not memo hits
				var err error
				tbl, err = sched.BuildProfileTable(context.Background(), []string{name}, chip.NUCAGroupSizes[:],
					sched.ProfileOptions{Instructions: 12000, Warmup: 30000})
				if err != nil {
					b.Fatal(err)
				}
			}
			for si, sz := range tbl.Sizes {
				b.ReportMetric(tbl.APC1[name][si], "APC1@"+sizeLabel(sz))
			}
		})
	}
}

// BenchmarkFig7APC2Sweep regenerates Fig. 7: APC2 (L2 demand) under the
// same sweep.
func BenchmarkFig7APC2Sweep(b *testing.B) {
	for _, name := range benchProfiles {
		name := name
		b.Run(name, func(b *testing.B) {
			var tbl *sched.ProfileTable
			for i := 0; i < b.N; i++ {
				ResetSimCaches() // time the profiling runs, not memo hits
				var err error
				tbl, err = sched.BuildProfileTable(context.Background(), []string{name}, chip.NUCAGroupSizes[:],
					sched.ProfileOptions{Instructions: 12000, Warmup: 30000})
				if err != nil {
					b.Fatal(err)
				}
			}
			for si, sz := range tbl.Sizes {
				b.ReportMetric(tbl.APC2[name][si], "APC2@"+sizeLabel(sz))
			}
		})
	}
}

func sizeLabel(sz uint64) string {
	switch sz {
	case 4 << 10:
		return "4KB"
	case 16 << 10:
		return "16KB"
	case 32 << 10:
		return "32KB"
	case 64 << 10:
		return "64KB"
	default:
		return "other"
	}
}

// fig8Fixtures builds the profiling table and alone-IPC reference shared
// by the Fig. 8 benchmark variants.
func fig8Fixtures(b *testing.B) (*sched.ProfileTable, []float64, []string) {
	b.Helper()
	names := trace.ProfileNames()
	tbl, err := sched.BuildProfileTable(context.Background(), names, chip.NUCAGroupSizes[:],
		sched.ProfileOptions{Instructions: 10000, Warmup: 25000})
	if err != nil {
		b.Fatal(err)
	}
	alone, err := sched.AloneIPCs(context.Background(), names, chip.NUCAGroupSizes[:],
		sched.EvalOptions{WindowCycles: 80000, WarmupCycles: 40000})
	if err != nil {
		b.Fatal(err)
	}
	return tbl, alone, names
}

// BenchmarkFig8SchedulingHsp regenerates Fig. 8: the Hsp of the four
// scheduling policies on the heterogeneous 16-core chip.
func BenchmarkFig8SchedulingHsp(b *testing.B) {
	tbl, alone, names := fig8Fixtures(b)
	opt := sched.EvalOptions{WindowCycles: 80000, WarmupCycles: 40000, AloneIPC: alone}
	for _, policy := range []sched.Scheduler{
		sched.Random{Seed: 1},
		sched.RoundRobin{},
		sched.NUCASA{Table: tbl, TolFrac: 0.10},
		sched.NUCASA{Table: tbl, TolFrac: 0.01},
	} {
		policy := policy
		b.Run(policy.Name(), func(b *testing.B) {
			var hsp float64
			for i := 0; i < b.N; i++ {
				ev, err := sched.Evaluate(context.Background(), policy, names, chip.NUCAGroupSizes[:], opt)
				if err != nil {
					b.Fatal(err)
				}
				hsp = ev.Hsp
			}
			b.ReportMetric(hsp, "Hsp")
		})
	}
}

// BenchmarkIntervalPerception regenerates the interval study: burst
// perception rates at the paper's three sampling scenarios.
func BenchmarkIntervalPerception(b *testing.B) {
	for _, sc := range interval.PaperScenarios() {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			var r interval.SimulateResult
			for i := 0; i < b.N; i++ {
				r = interval.Simulate(interval.DefaultProfile(), sc, 100000, 42)
			}
			b.ReportMetric(r.Rate(), "perceived")
			b.ReportMetric(interval.PerceptionRate(interval.DefaultProfile(), sc), "analytic")
		})
	}
}

// ---------------------------------------------------------------------
// Parallel simulation runner: serial-vs-parallel pairs over the same
// batch, memo-cold on every iteration so the runner's fan-out — not the
// result cache — is what gets measured. On an n-core host the parallel
// variants should approach n× the serial throughput; the determinism
// tests pin that the results themselves are bit-identical.

// benchTable1Batch times one full Table1 batch (five design-point
// simulations) per iteration under the given worker bound.
func benchTable1Batch(b *testing.B, workers int) {
	b.Helper()
	defer func() { SetWorkers(0); ResetSimCaches() }()
	SetWorkers(workers)
	var rows []Table1Row
	for i := 0; i < b.N; i++ {
		ResetSimCaches()
		rows = Table1(QuickScale())
	}
	b.ReportMetric(rows[0].M.LPMR1(), "LPMR1(A)")
	b.ReportMetric(float64(ParallelWorkers()), "workers")
}

// BenchmarkSerialTable1 is the single-worker baseline.
func BenchmarkSerialTable1(b *testing.B) { benchTable1Batch(b, 1) }

// BenchmarkParallelTable1 fans the batch out over GOMAXPROCS workers.
func BenchmarkParallelTable1(b *testing.B) { benchTable1Batch(b, 0) }

// benchAloneIPCs times the sixteen standalone reference runs of the
// scheduler evaluation per iteration under the given worker bound.
func benchAloneIPCs(b *testing.B, workers int) {
	b.Helper()
	defer func() { SetWorkers(0); ResetSimCaches() }()
	SetWorkers(workers)
	names := trace.ProfileNames()
	opt := sched.EvalOptions{WindowCycles: 80000, WarmupCycles: 40000}
	var alone []float64
	for i := 0; i < b.N; i++ {
		ResetSimCaches()
		var err error
		alone, err = sched.AloneIPCs(context.Background(), names, chip.NUCAGroupSizes[:], opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(alone[0], "IPC[0]")
	b.ReportMetric(float64(ParallelWorkers()), "workers")
}

// BenchmarkSerialAloneIPCs is the single-worker baseline.
func BenchmarkSerialAloneIPCs(b *testing.B) { benchAloneIPCs(b, 1) }

// BenchmarkParallelAloneIPCs fans the runs out over GOMAXPROCS workers.
func BenchmarkParallelAloneIPCs(b *testing.B) { benchAloneIPCs(b, 0) }

// BenchmarkMemoisedTable1 times Table1 when every point is already in
// the shared result memo — the cross-driver revisit cost.
func BenchmarkMemoisedTable1(b *testing.B) {
	defer ResetSimCaches()
	ResetSimCaches()
	Table1(QuickScale()) // warm the memo
	b.ResetTimer()
	var rows []Table1Row
	for i := 0; i < b.N; i++ {
		rows = Table1(QuickScale())
	}
	b.ReportMetric(rows[0].M.LPMR1(), "LPMR1(A)")
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §4).

// BenchmarkAblationPureVsConventionalMiss contrasts the stall predictions
// of the concurrency-aware model (Eq. 7, pure misses) and the
// conventional AMAT model (Eq. 6) against the simulator's measured stall:
// the pure-miss distinction is what keeps the model honest.
func BenchmarkAblationPureVsConventionalMiss(b *testing.B) {
	var camatErr, amatErr float64
	for i := 0; i < b.N; i++ {
		cfg := chip.SingleCore("410.bwaves")
		gen := trace.NewSynthetic(trace.MustProfile("410.bwaves"))
		cpiExe := chip.MeasureCPIexe(cfg.Cores[0].CPU, gen, 3, 15000)
		ch := chip.New(cfg)
		ch.RunUntilRetired(benchScale().Warmup, 80_000_000)
		ch.ResetCounters()
		ch.Run(benchScale().Warmup+benchScale().Window, 80_000_000)
		m := ch.Measure(0, cpiExe)
		l1 := ch.Snapshot().Cores[0].L1
		measured := m.MeasuredStall
		if measured == 0 {
			continue
		}
		camat := m.StallEq7()
		amat := m.Fmem * l1.AMAT() // Eq. (6): no concurrency, no overlap
		camatErr = relErr(camat, measured)
		amatErr = relErr(amat, measured)
	}
	b.ReportMetric(100*camatErr, "CAMATmodelErr%")
	b.ReportMetric(100*amatErr, "AMATmodelErr%")
}

func relErr(pred, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	return math.Abs(pred-truth) / truth
}

// BenchmarkAblationCoalescing contrasts MSHR coalescing on/off on a
// streaming workload. The latency paths converge (a waiting secondary
// completes when the primary's fill lands either way), so the cost of
// disabling coalescing is duplicated downstream traffic: secondary
// misses park in the waiting room (MSHRwaits) instead of riding an
// existing MSHR; in this substrate the fill wakes them a cycle later, so
// the timing difference is small — the unit tests pin the traffic dedup.
func BenchmarkAblationCoalescing(b *testing.B) {
	for _, coalesce := range []bool{true, false} {
		coalesce := coalesce
		name := "coalesce"
		if !coalesce {
			name = "no-coalesce"
		}
		b.Run(name, func(b *testing.B) {
			var ipc, fetches float64
			for i := 0; i < b.N; i++ {
				cfg := chip.SingleCore("410.bwaves")
				cfg.Cores[0].L1.Coalesce = coalesce
				ch := chip.New(cfg)
				ch.RunCycles(20000)
				ch.ResetCounters()
				ch.RunCycles(60000)
				r := ch.Snapshot()
				ipc = r.Cores[0].CPU.IPC()
				fetches = float64(r.Cores[0].L1Stats.MSHRWaits)
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(fetches, "MSHRwaits")
		})
	}
}

// reversedTarget flips the optimization order: L2 before L1 — the
// ablation of the paper's "match LPMR1 before LPMR2" rule.
type reversedTarget struct{ *explore.HardwareTarget }

func (r reversedTarget) OptimizeL1() bool { return r.HardwareTarget.OptimizeL2() }
func (r reversedTarget) OptimizeL2() bool { return r.HardwareTarget.OptimizeL1() }

// BenchmarkAblationMatchOrder compares the paper's L1-first matching
// order against an L2-first variant: evaluations spent and final stall.
func BenchmarkAblationMatchOrder(b *testing.B) {
	run := func(reversed bool) (evals int, stallPct float64) {
		ResetSimCaches() // both variants walk overlapping points; keep runs cold
		tgt := explore.NewHardwareTarget(explore.DefaultSpace(),
			explore.TableConfigs()["A"], trace.MustProfile("410.bwaves"))
		tgt.Warmup = benchScale().Warmup
		tgt.Instructions = benchScale().Window
		var t core.Target = tgt
		if reversed {
			t = reversedTarget{tgt}
		}
		res := core.Run(t, core.AlgorithmConfig{Grain: core.CoarseGrain, MaxSteps: 32})
		return tgt.Evaluations(), 100 * res.Final.MeasuredStall / res.Final.CPIexe
	}
	for _, reversed := range []bool{false, true} {
		reversed := reversed
		name := "L1-first(paper)"
		if reversed {
			name = "L2-first(ablation)"
		}
		b.Run(name, func(b *testing.B) {
			var evals int
			var stall float64
			for i := 0; i < b.N; i++ {
				evals, stall = run(reversed)
			}
			b.ReportMetric(float64(evals), "simulations")
			b.ReportMetric(stall, "stall%CPIexe")
		})
	}
}

// BenchmarkAblationSchedulerTwoFold contrasts the full two-fold NUCA-SA
// against a fold-1-only variant whose L2-demand information is erased.
func BenchmarkAblationSchedulerTwoFold(b *testing.B) {
	tbl, alone, names := fig8Fixtures(b)
	// Fold-1-only: zero out APC2 so the L2-contention keys vanish.
	blind := &sched.ProfileTable{
		Sizes: tbl.Sizes, Workloads: tbl.Workloads,
		APC1: tbl.APC1, IPC: tbl.IPC,
		APC2: map[string][]float64{},
	}
	for _, n := range names {
		blind.APC2[n] = make([]float64, len(tbl.Sizes))
	}
	opt := sched.EvalOptions{WindowCycles: 80000, WarmupCycles: 40000, AloneIPC: alone}
	for _, variant := range []struct {
		name string
		tbl  *sched.ProfileTable
	}{
		{"two-fold(paper)", tbl},
		{"fold1-only(ablation)", blind},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			var hsp float64
			for i := 0; i < b.N; i++ {
				ev, err := sched.Evaluate(context.Background(), sched.NUCASA{Table: variant.tbl, TolFrac: 0.01},
					names, chip.NUCAGroupSizes[:], opt)
				if err != nil {
					b.Fatal(err)
				}
				hsp = ev.Hsp
			}
			b.ReportMetric(hsp, "Hsp")
		})
	}
}

// BenchmarkAblationL2Insertion contrasts MRU vs BIP insertion in the
// shared L2 under a reuse + streaming co-run: selective insertion keeps
// the reused working set resident ("selective cache replacement", the
// paper's future work).
func BenchmarkAblationL2Insertion(b *testing.B) {
	for _, ins := range []cache.InsertPolicy{cache.MRUInsert, cache.BIPInsert} {
		ins := ins
		b.Run(ins.String(), func(b *testing.B) {
			var ipcReuse float64
			for i := 0; i < b.N; i++ {
				gens := []trace.Generator{
					trace.NewSynthetic(trace.MustProfile("403.gcc")),  // reuse
					trace.NewSynthetic(trace.MustProfile("433.milc")), // stream
					trace.NewSynthetic(trace.MustProfile("470.lbm")),  // stream
					trace.NewSynthetic(trace.MustProfile("429.mcf")),  // stream-ish
				}
				cfg := chip.NUCA16(gens)
				cfg.L2.Insert = ins
				cfg.L2.Size = 1 * chip.MB // tight LLC: streams can hurt reuse
				ch := chip.New(cfg)
				ch.RunCycles(40000)
				ch.ResetCounters()
				ch.RunCycles(80000)
				ipcReuse = ch.Snapshot().Cores[0].CPU.IPC()
			}
			b.ReportMetric(ipcReuse, "gccIPC")
		})
	}
}

// BenchmarkAblationPrefetch contrasts next-line prefetching degrees on
// the streaming bwaves workload.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, degree := range []int{0, 1, 2, 4} {
		degree := degree
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			var ipc, useful float64
			for i := 0; i < b.N; i++ {
				cfg := chip.SingleCore("410.bwaves")
				cfg.Cores[0].L1.Prefetch = degree
				ch := chip.New(cfg)
				ch.RunCycles(30000)
				ch.ResetCounters()
				ch.RunCycles(60000)
				r := ch.Snapshot()
				ipc = r.Cores[0].CPU.IPC()
				if p := r.Cores[0].L1Stats.Prefetches; p > 0 {
					useful = float64(r.Cores[0].L1Stats.PrefetchUseful) / float64(p)
				}
			}
			b.ReportMetric(ipc, "IPC")
			b.ReportMetric(useful, "usefulFrac")
		})
	}
}

// BenchmarkSMTConcurrency regenerates the §II claim that SMT raises hit
// and miss concurrency: the L1's C_H, C_M and APC for 1 vs 2 hardware
// threads of a pointer-chasing workload on one core.
func BenchmarkSMTConcurrency(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		threads := threads
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var ch, cm, apc float64
			for i := 0; i < b.N; i++ {
				l1 := cache.New(cache.Config{
					Name: "L1", Size: 32 << 10, BlockSize: 64, Assoc: 4,
					HitLatency: 3, Ports: 4, Banks: 8, MSHRs: 16, Coalesce: true,
				})
				lower := &dram.Fixed{Latency: 30}
				l1.SetLower(lower)
				gens := make([]trace.Generator, threads)
				for t := range gens {
					p := trace.MustProfile("429.mcf")
					p.Seed = uint64(t + 1)
					gens[t] = trace.WithOffset(trace.NewSynthetic(p), uint64(t)<<33)
				}
				s := cpu.NewSMT(cpu.Config{Name: "smt", IssueWidth: 4, ROBSize: 48, IWSize: 48, LSQSize: 24}, gens, l1)
				for cy := uint64(1); cy <= 300000 && s.Retired() < 20000; cy++ {
					s.Tick(cy)
					l1.Tick(cy)
					lower.Tick(cy)
				}
				p := l1.Analyzer().Snapshot()
				ch, cm, apc = p.CH(), p.CM(), p.APC()
			}
			b.ReportMetric(ch, "C_H")
			b.ReportMetric(cm, "C_M")
			b.ReportMetric(apc, "APC")
		})
	}
}

// BenchmarkNoCBandwidth sweeps the interconnect bandwidth of the 16-core
// chip: narrowing the fabric inflates queueing and the L2 C-AMAT seen by
// the analyzers — layered mismatch moving into the interconnect.
func BenchmarkNoCBandwidth(b *testing.B) {
	for _, bw := range []int{1, 4, 16} {
		bw := bw
		b.Run(fmt.Sprintf("bw=%d", bw), func(b *testing.B) {
			var camat2, queueing float64
			for i := 0; i < b.N; i++ {
				gens := make([]trace.Generator, 16)
				for t, nme := range trace.ProfileNames() {
					gens[t] = trace.NewSynthetic(trace.MustProfile(nme))
				}
				cfg := chip.NUCA16(gens)
				n := noc.Default(16)
				n.Bandwidth = bw
				cfg.NoC = &n
				ch := chip.New(cfg)
				ch.RunCycles(30000)
				ch.ResetCounters()
				ch.RunCycles(60000)
				camat2 = ch.L2().Analyzer().Snapshot().CAMAT()
				queueing = ch.Router().Stats().AvgQueueing()
			}
			b.ReportMetric(camat2, "C-AMAT2")
			b.ReportMetric(queueing, "nocQueue")
		})
	}
}

// BenchmarkCoherenceSharing sweeps the true-sharing fraction on a
// coherent 4-program chip: invalidation traffic grows and throughput
// falls — the coherence component of data stall time (§III-A).
func BenchmarkCoherenceSharing(b *testing.B) {
	for _, frac := range []float64{0, 0.1, 0.3} {
		frac := frac
		b.Run(fmt.Sprintf("shared=%.0f%%", 100*frac), func(b *testing.B) {
			var instr, inval float64
			for i := 0; i < b.N; i++ {
				gens := make([]trace.Generator, 16)
				for t := 0; t < 4; t++ {
					p := trace.MustProfile("456.hmmer")
					p.Seed = uint64(t + 1)
					gens[t] = trace.WithSharedRegion(trace.NewSynthetic(p),
						trace.GlobalBase, 8*chip.KB, frac, uint64(t+1))
				}
				cfg := chip.NUCA16(gens)
				cfg.Coherent = true
				cfg.CoherenceInvalLatency = 8
				ch := chip.New(cfg)
				ch.RunCycles(30000)
				ch.ResetCounters()
				ch.RunCycles(60000)
				var total uint64
				for t := 0; t < 4; t++ {
					total += ch.Snapshot().Cores[t].CPU.Instructions
				}
				instr = float64(total)
				inval = float64(ch.Directory().Stats().Invalidations)
			}
			b.ReportMetric(instr, "instrs")
			b.ReportMetric(inval, "invalidations")
		})
	}
}

// BenchmarkChipThroughput measures raw simulator speed: simulated cycles
// per second for the 16-core NUCA chip under full load.
func BenchmarkChipThroughput(b *testing.B) {
	names := trace.ProfileNames()
	gens := make([]trace.Generator, 16)
	for i, n := range names {
		gens[i] = trace.NewSynthetic(trace.MustProfile(n))
	}
	ch := chip.New(chip.NUCA16(gens))
	b.ResetTimer()
	ch.RunCycles(uint64(b.N))
}

// BenchmarkSingleCoreChipTick measures one single-core chip cycle.
func BenchmarkSingleCoreChipTick(b *testing.B) {
	ch := chip.New(chip.SingleCore("403.gcc"))
	b.ResetTimer()
	ch.RunCycles(uint64(b.N))
}

// BenchmarkTimeseriesOffPath is the windowed sampler's disabled fast
// path: no sampler attached, so each chip cycle pays exactly one nil
// check over the serial baseline (BenchmarkSingleCoreChipTick). The two
// must stay within 1% of each other — compare with benchstat after any
// change to the Tick tail.
func BenchmarkTimeseriesOffPath(b *testing.B) {
	ch := chip.New(chip.SingleCore("403.gcc"))
	b.ResetTimer()
	ch.RunCycles(uint64(b.N))
}

// BenchmarkTimeseriesAttached is the full on-path cost: per-cycle stall
// classification and occupancy sums, plus a window collection every
// 2048 cycles.
func BenchmarkTimeseriesAttached(b *testing.B) {
	ch := chip.New(chip.SingleCore("403.gcc"))
	s := ch.EnableTimeseries(timeseries.Config{Width: 2048, CPIexe: 0.5})
	b.ResetTimer()
	ch.RunCycles(uint64(b.N))
	b.StopTimer()
	ch.FlushTimeseries()
	b.ReportMetric(float64(s.Windows()), "windows")
}

// BenchmarkDRAMRequest measures the memory controller's per-request cost.
func BenchmarkDRAMRequest(b *testing.B) {
	d := dram.New(dram.DDR3("bench"))
	var cy uint64
	for i := 0; i < b.N; i++ {
		for !d.Request(cy, 0, uint64(i*97), false, func(uint64) {}) {
			cy++
			d.Tick(cy)
		}
		cy++
		d.Tick(cy)
	}
}

// BenchmarkCacheHit measures the cache's steady-state hit path.
func BenchmarkCacheHit(b *testing.B) {
	cfg := cache.Config{
		Name: "bench", Size: 32 << 10, BlockSize: 64, Assoc: 4,
		HitLatency: 3, Ports: 2, Banks: 4, MSHRs: 8, Coalesce: true,
	}
	c := cache.New(cfg)
	low := &dram.Fixed{Latency: 10}
	c.SetLower(low)
	var cy uint64
	// Warm one block.
	c.Access(cy, 0, false, nil)
	for i := 0; i < 50; i++ {
		cy++
		c.Tick(cy)
		low.Tick(cy)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cy++
		c.Access(cy, 0, false, nil)
		c.Tick(cy)
		low.Tick(cy)
	}
}

// BenchmarkChipCycle measures whole-chip per-cycle cost in steady
// state; run with -benchmem — the steady-state engine must not
// allocate.
func BenchmarkChipCycle(b *testing.B) {
	for _, ff := range []bool{false, true} {
		name := "stepped"
		if ff {
			name = "fastforward"
		}
		b.Run(name, func(b *testing.B) {
			ch := NewChip(SingleCore("429.mcf"))
			ch.SetFastForward(ff)
			ch.RunCycles(20000)
			b.ReportAllocs()
			b.ResetTimer()
			ch.RunCycles(uint64(b.N))
		})
	}
}

// TestSteadyStateZeroAlloc pins the allocation profile the per-cycle
// optimisations bought: once warmed, neither the stepped nor the
// fast-forwarding engine allocates per cycle (MSHRs, fill closures and
// analyzer events all come from freelists), and the functional tier
// does not allocate per round.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	for _, tc := range []struct {
		name string
		mk   func() *Chip
		step func(*Chip)
	}{
		{name: "stepped", mk: func() *Chip {
			ch := NewChip(SingleCore("429.mcf"))
			ch.SetFastForward(false)
			ch.RunCycles(20000)
			return ch
		}, step: func(ch *Chip) { ch.RunCycles(100) }},
		{name: "fastforward", mk: func() *Chip {
			ch := NewChip(SingleCore("429.mcf"))
			ch.RunCycles(20000)
			return ch
		}, step: func(ch *Chip) { ch.RunCycles(100) }},
		{name: "functional", mk: func() *Chip {
			ch := NewChip(SingleCore("429.mcf"))
			ch.SetTier(FunctionalTier)
			if err := ch.RunFunctional(20000); err != nil {
				t.Fatal(err)
			}
			return ch
		}, step: func(ch *Chip) { _ = ch.RunFunctional(100) }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ch := tc.mk()
			if avg := testing.AllocsPerRun(20, func() { tc.step(ch) }); avg > 0 {
				t.Fatalf("steady-state %s engine allocates %.2f times per 100 cycles; want 0", tc.name, avg)
			}
		})
	}
}
