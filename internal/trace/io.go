package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic   [8]byte  "LPMTRC01"
//	name    uvarint length + bytes
//	records: one per instruction
//	  tag     byte: low 2 bits = Kind, bit 2 = has Dep, bit 3 = has Lat>1
//	  addr    uvarint (memory instructions only, delta-encoded vs previous)
//	  dep     uvarint (if present)
//	  lat     uvarint (if present)
//
// The format is self-delimiting; a Reader yields io.EOF at end of stream.

var traceMagic = [8]byte{'L', 'P', 'M', 'T', 'R', 'C', '0', '1'}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// Writer records an instruction stream to an io.Writer in the binary
// trace format. Create with NewWriter; call Flush when done.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	buf      []byte
	count    uint64
}

// NewWriter writes the header for a trace named name and returns the
// Writer.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(name)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	return &Writer{w: bw, buf: make([]byte, 0, 4*binary.MaxVarintLen64)}, nil
}

// Write appends one instruction to the trace.
func (tw *Writer) Write(in Instr) error {
	tag := byte(in.Kind) & 0x3
	if in.Dep != 0 {
		tag |= 1 << 2
	}
	if in.Lat > 1 {
		tag |= 1 << 3
	}
	tw.buf = tw.buf[:0]
	tw.buf = append(tw.buf, tag)
	if in.Kind.IsMem() {
		// Zig-zag delta encoding keeps sequential streams tiny.
		delta := int64(in.Addr) - int64(tw.prevAddr)
		tw.buf = binary.AppendVarint(tw.buf, delta)
		tw.prevAddr = in.Addr
	}
	if in.Dep != 0 {
		tw.buf = binary.AppendUvarint(tw.buf, uint64(in.Dep))
	}
	if in.Lat > 1 {
		tw.buf = binary.AppendUvarint(tw.buf, uint64(in.Lat))
	}
	tw.count++
	_, err := tw.w.Write(tw.buf)
	return err
}

// Count returns the number of instructions written.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush flushes buffered output to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader replays a recorded trace. It implements Generator for seekable
// sources when constructed with NewReplayer; the lower-level NewReader
// form reads a stream once.
type Reader struct {
	r        *bufio.Reader
	name     string
	prevAddr uint64
}

// NewReader parses the header and returns a Reader positioned at the
// first instruction.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("%w: unreasonable name length %d", ErrBadTrace, nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return &Reader{r: br, name: string(nameBytes)}, nil
}

// Name returns the recorded workload name.
func (tr *Reader) Name() string { return tr.name }

// Read returns the next instruction, or io.EOF at end of trace.
func (tr *Reader) Read() (Instr, error) {
	tag, err := tr.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Instr{}, io.EOF
		}
		return Instr{}, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	in := Instr{Kind: Kind(tag & 0x3), Lat: 1}
	if in.Kind > Store {
		return Instr{}, fmt.Errorf("%w: bad kind %d", ErrBadTrace, in.Kind)
	}
	if in.Kind.IsMem() {
		delta, err := binary.ReadVarint(tr.r)
		if err != nil {
			return Instr{}, fmt.Errorf("%w: truncated addr", ErrBadTrace)
		}
		in.Addr = uint64(int64(tr.prevAddr) + delta)
		tr.prevAddr = in.Addr
	}
	if tag&(1<<2) != 0 {
		dep, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return Instr{}, fmt.Errorf("%w: truncated dep", ErrBadTrace)
		}
		in.Dep = clampDep(dep)
	}
	if tag&(1<<3) != 0 {
		lat, err := binary.ReadUvarint(tr.r)
		if err != nil || lat == 0 || lat > 255 {
			return Instr{}, fmt.Errorf("%w: bad latency", ErrBadTrace)
		}
		in.Lat = uint8(lat)
	}
	return in, nil
}

// Record captures the next n instructions from g into w.
func Record(w io.Writer, g Generator, n int) error {
	tw, err := NewWriter(w, g.Name())
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := tw.Write(g.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Replayer adapts a fully buffered recorded trace to the Generator
// interface, looping back to the start when the recording is exhausted so
// the simulator can run for any horizon.
type Replayer struct {
	name   string
	instrs []Instr
	pos    int
}

// NewReplayer reads the whole trace from r into memory.
func NewReplayer(r io.Reader) (*Replayer, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	rp := &Replayer{name: tr.Name()}
	for {
		in, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rp.instrs = append(rp.instrs, in)
	}
	if len(rp.instrs) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadTrace)
	}
	return rp, nil
}

// Name implements Generator.
func (rp *Replayer) Name() string { return rp.name }

// Len returns the number of recorded instructions.
func (rp *Replayer) Len() int { return len(rp.instrs) }

// Next implements Generator, looping at end of recording.
func (rp *Replayer) Next() Instr {
	in := rp.instrs[rp.pos]
	rp.pos++
	if rp.pos == len(rp.instrs) {
		rp.pos = 0
	}
	return in
}

// Reset implements Generator.
func (rp *Replayer) Reset() { rp.pos = 0 }
