package fabric

// Chaos suite for the fabric itself: workers killed, hung, or torn
// mid-granule. The recovery contract under test is the tentpole's
// determinism guarantee — whatever the fleet does, every granule
// resolves exactly once with the value a healthy run would have
// produced, because re-issue and duplication only ever re-run pure
// functions. All tests run under `make chaos` (-race).

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"lpm/internal/faultinject"
)

// runChaosBatch pushes n sleepy granules through lf concurrently and
// asserts every one resolves to its correct value.
func runChaosBatch(t *testing.T, lf *LocalFabric, n, sleepMS int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := submitDouble(ctx, t, lf.C, "test.sleep", i, sleepMS)
			if err == nil && got != 2*i {
				err = fmt.Errorf("got %d, want %d", got, 2*i)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("granule %d: %v", i, err)
		}
	}
}

// TestChaosFabricWorkerKillMidGranule kills one of two workers on its
// third granule — connection dropped with work in flight. The orphaned
// granules must be re-issued and the whole batch must still resolve
// correctly.
func TestChaosFabricWorkerKillMidGranule(t *testing.T) {
	defer faultinject.Arm(faultinject.NewPlan(7, faultinject.Rule{
		Point: "fabric.worker.kill", Match: "test.sleep",
		After: 2, Msg: "chaos: worker killed mid-granule",
	}))()

	lf, err := StartLocal(2, Options{InFlight: 2, StraggleAfter: -1}, WorkerOptions{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	runChaosBatch(t, lf, 12, 5)
	st := lf.C.Stats()
	if st.Completed != 12 {
		t.Fatalf("completed=%d, want 12", st.Completed)
	}
	if st.Requeued == 0 {
		t.Fatalf("stats=%+v: the killed worker's granules were never re-queued", st)
	}
	if st.Workers != 1 {
		t.Fatalf("workers=%d, want 1 (one killed)", st.Workers)
	}
}

// TestChaosFabricWorkerHangStragglerReissue wedges one worker's
// execution forever. The straggler pass must duplicate its granules
// onto the healthy worker so the batch still completes; the hung
// worker is only reaped at Close.
func TestChaosFabricWorkerHangStragglerReissue(t *testing.T) {
	defer faultinject.Arm(faultinject.NewPlan(11, faultinject.Rule{
		Point: "fabric.worker.hang", Match: "test.sleep",
		After: 1, Msg: "chaos: worker hung mid-granule",
	}))()

	lf, err := StartLocal(2, Options{InFlight: 2, StraggleAfter: 100 * time.Millisecond}, WorkerOptions{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	runChaosBatch(t, lf, 10, 2)
	st := lf.C.Stats()
	if st.Completed != 10 {
		t.Fatalf("completed=%d, want 10", st.Completed)
	}
	if st.Duplicated == 0 {
		t.Fatalf("stats=%+v: the hung granule was never duplicated to an idle worker", st)
	}
}

// TestChaosFabricTornResultFrame tears a worker's result frame halfway
// through the write — the bytes a kill -9 mid-send leaves on the wire.
// The coordinator must detect the torn frame at the envelope boundary,
// drop the worker, and re-issue; no granule may resolve from a corrupt
// frame.
func TestChaosFabricTornResultFrame(t *testing.T) {
	defer faultinject.Arm(faultinject.NewPlan(13, faultinject.Rule{
		Point: "fabric.frame.write", Match: MsgResult,
		After: 1, Msg: "chaos: torn result frame",
	}))()

	lf, err := StartLocal(2, Options{InFlight: 2, StraggleAfter: -1}, WorkerOptions{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	runChaosBatch(t, lf, 10, 2)
	st := lf.C.Stats()
	if st.Completed != 10 {
		t.Fatalf("completed=%d, want 10", st.Completed)
	}
	if st.Requeued == 0 {
		t.Fatalf("stats=%+v: the torn-frame worker's granules were never re-queued", st)
	}
}

// TestChaosFabricAllWorkersDieThenRejoin kills every worker, then adds
// a fresh one: queued granules must survive the interregnum and drain
// once capacity returns.
func TestChaosFabricAllWorkersDieThenRejoin(t *testing.T) {
	defer faultinject.Arm(faultinject.NewPlan(17, faultinject.Rule{
		Point: "fabric.worker.kill", Match: "test.sleep",
		After: 0, Times: 2, Msg: "chaos: every worker killed",
	}))()

	lf, err := StartLocal(2, Options{InFlight: 2, StraggleAfter: -1}, WorkerOptions{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		runChaosBatch(t, lf, 6, 2)
	}()

	// Wait until the kill rule has consumed both workers, then rejoin.
	deadline := time.Now().Add(30 * time.Second)
	for lf.C.Stats().Workers > 0 || faultinject.Hits("fabric.worker.kill") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never died: stats=%+v", lf.C.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	lf.AddWorker(WorkerOptions{Slots: 2})
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("batch never drained after rejoin: stats=%+v", lf.C.Stats())
	}
	if st := lf.C.Stats(); st.Completed != 6 {
		t.Fatalf("completed=%d, want 6", st.Completed)
	}
}
