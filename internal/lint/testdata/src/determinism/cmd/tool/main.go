// Command tool sits outside the determinism scope: wall clocks are fine
// in the CLIs, which report real elapsed time to humans.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
}
