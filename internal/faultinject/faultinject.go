// Package faultinject is the repository's deterministic fault-injection
// harness: a process-global failpoint registry the chaos tests arm to
// make production code fail on demand — a worker panicking at the Nth
// task, a checkpoint write that dies mid-rename, a simulation that
// livelocks for one workload and one workload only.
//
// Production code marks an injectable site with
//
//	if err := faultinject.Hit("explore.evaluate", profileName); err != nil { ... }
//
// With no plan armed (the production state) Hit is a single atomic load
// and returns nil. A test arms a Plan of rules; each rule names a point,
// optionally restricts it to details containing a substring, and fires
// after a configurable number of matching hits — either returning an
// error (wrapping ErrInjected) or panicking with it. Rules fire on hit
// *counts*, and an optional probability draws from a seeded PRNG, so a
// plan replays identically for a given seed and hit order.
package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the sentinel every injected fault wraps; recovery code
// and tests distinguish injected faults with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultinject: injected fault")

// Kind selects what a firing rule does.
type Kind uint8

const (
	// KindError makes Hit return the injected error.
	KindError Kind = iota
	// KindPanic makes Hit panic with the injected error, simulating a
	// crashing worker or a kill -9 at the injection point.
	KindPanic
)

// Rule describes one injected fault.
type Rule struct {
	// Point names the injection site, e.g. "explore.evaluate".
	Point string
	// Match restricts the rule to hits whose detail string contains this
	// substring; empty matches every detail.
	Match string
	// After is the number of matching hits to let pass before firing:
	// After == 2 fires on the third matching hit.
	After int
	// Times bounds how often the rule fires; 0 means once.
	Times int
	// Prob, when in (0,1), gates each would-be firing on a draw from the
	// plan's seeded PRNG; 0 (or >= 1) fires unconditionally.
	Prob float64
	// Kind selects error-return or panic.
	Kind Kind
	// Msg is included in the injected error text.
	Msg string
}

// ruleState is a rule plus its firing counters.
type ruleState struct {
	Rule
	hits  int
	fired int
}

// Plan is an armed set of rules with the seeded PRNG behind Prob rules.
// One Plan serialises all Hit calls through its mutex, which keeps
// counting (and therefore firing) deterministic even when the points sit
// on concurrent worker goroutines — the serialisation is the harness's
// determinism guarantee and its cost is paid only while a test has the
// plan armed.
type Plan struct {
	mu    sync.Mutex
	rng   uint64
	rules []*ruleState
}

// NewPlan builds a plan from rules; seed drives the Prob draws.
func NewPlan(seed int64, rules ...Rule) *Plan {
	p := &Plan{rng: uint64(seed)*2862933555777941757 + 3037000493}
	for _, r := range rules {
		p.rules = append(p.rules, &ruleState{Rule: r})
	}
	return p
}

// next64 is a splitmix64 step — deterministic, seedable, stdlib-free.
func (p *Plan) next64() uint64 {
	p.rng += 0x9e3779b97f4a7c15
	z := p.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// armed holds the active plan; nil in production.
var armed atomic.Pointer[Plan]

// Arm installs p as the process-wide plan and returns a restore func
// that re-installs the previous plan (tests defer it). Arming is meant
// for tests only; concurrent Arm calls race by design of "last wins".
func Arm(p *Plan) (restore func()) {
	prev := armed.Swap(p)
	return func() { armed.Store(prev) }
}

// Hits returns how many times the named point was hit on the armed
// plan's rules (max across rules matching the point), for test
// assertions. Returns 0 when nothing is armed.
func Hits(point string) int {
	p := armed.Load()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, r := range p.rules {
		if r.Point == point && r.hits > n {
			n = r.hits
		}
	}
	return n
}

// Hit marks one execution of the named injection point. It returns nil
// (or panics / returns an injected error) according to the armed plan;
// with no plan armed it is a single atomic load.
func Hit(point, detail string) error {
	p := armed.Load()
	if p == nil {
		return nil
	}
	return p.hit(point, detail)
}

func (p *Plan) hit(point, detail string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.rules {
		if r.Point != point {
			continue
		}
		if r.Match != "" && !strings.Contains(detail, r.Match) {
			continue
		}
		r.hits++
		times := r.Times
		if times == 0 {
			times = 1
		}
		if r.hits <= r.After || r.fired >= times {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 {
			draw := float64(p.next64()>>11) / float64(1<<53)
			if draw >= r.Prob {
				continue
			}
		}
		r.fired++
		err := fmt.Errorf("%w: %s(%s): %s", ErrInjected, point, detail, r.Msg)
		if r.Kind == KindPanic {
			panic(err)
		}
		return err
	}
	return nil
}
