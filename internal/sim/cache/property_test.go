package cache

import (
	"testing"
	"testing/quick"

	"lpm/internal/sim/dram"
)

// propConfig derives a small but varied configuration from fuzz bytes.
type propConfig struct {
	SizeKB   uint8
	Assoc    uint8
	Ports    uint8
	Banks    uint8
	MSHRs    uint8
	HitLat   uint8
	Coalesce bool
	Repl     uint8
	Insert   uint8
	Prefetch uint8
}

func (p propConfig) build() Config {
	size := uint64(p.SizeKB%8+1) * 1024
	assoc := int(p.Assoc%4 + 1)
	if size/(64*uint64(assoc)) == 0 {
		assoc = 1
	}
	return Config{
		Name:       "prop",
		Size:       size,
		BlockSize:  64,
		Assoc:      assoc,
		HitLatency: int(p.HitLat%5 + 1),
		Ports:      int(p.Ports%4 + 1),
		Banks:      int(p.Banks%8 + 1),
		MSHRs:      int(p.MSHRs%8 + 1),
		Coalesce:   p.Coalesce,
		Repl:       ReplPolicy(p.Repl % 3),
		Insert:     InsertPolicy(p.Insert % 3),
		Prefetch:   int(p.Prefetch % 3),
	}
}

// TestPropertyCacheInvariants fuzzes cache geometry and access patterns
// and asserts the bookkeeping invariants that every configuration must
// preserve: no access is lost, hit/miss partition completions, the
// analyzer drains, and primary misses never exceed misses.
func TestPropertyCacheInvariants(t *testing.T) {
	f := func(pc propConfig, addrSeed []uint16, writes []bool) bool {
		if len(addrSeed) == 0 {
			return true
		}
		if len(addrSeed) > 120 {
			addrSeed = addrSeed[:120]
		}
		cfg := pc.build()
		if cfg.Validate() != nil {
			return false // build must always produce a valid config
		}
		c := New(cfg)
		lower := &dram.Fixed{Latency: uint64(pc.HitLat%17 + 1)}
		c.SetLower(lower)

		completed := 0
		var now uint64
		for i, a := range addrSeed {
			addr := uint64(a) * 8
			w := i < len(writes) && writes[i]
			for !c.Access(now+1, addr, w, func(uint64) { completed++ }) {
				now++
				c.Tick(now)
				lower.Tick(now)
			}
			now++
			c.Tick(now)
			lower.Tick(now)
		}
		for i := 0; i < 10000 && (c.Busy() || lower.Busy()); i++ {
			now++
			c.Tick(now)
			lower.Tick(now)
		}
		if c.Busy() {
			return false // drain must terminate
		}
		st := c.Stats()
		p := c.Analyzer().Snapshot()
		switch {
		case completed != len(addrSeed):
			return false
		case st.Hits+st.Misses != p.Completed:
			return false
		case p.Accesses != p.Completed:
			return false
		case st.PrimaryMisses > st.Misses:
			return false
		case p.PureMisses > p.Misses:
			return false
		case p.ActiveCycles != p.HitActiveCycles+p.PureCycles:
			return false
		case st.PrefetchUseful > st.Prefetches:
			return false
		}
		// Eq. (3) exactly, on the drained layer.
		if p.ActiveCycles > 0 {
			if d := p.CAMAT() - 1/p.APC(); d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
