// Package coherence implements a directory-based MSI-style protocol over
// the repository's caches, the substrate a multicore with genuinely
// shared data needs (the paper's data stall time definition explicitly
// includes "in multi-thread cases, the latency due to cache coherency
// and consistency", §III-A).
//
// The Directory interposes between the private L1s and the shared L2: it
// tracks, per block, which L1s hold a copy and whether one holds it
// modified. Read fetches register the requestor as a sharer; write
// fetches (and upgrades) invalidate every other copy first, turning the
// victims' dirty data into writebacks. State is block-granular and
// invalidation takes effect between cycles — the standard
// timing-simulator abstraction that charges the *misses and traffic* of
// coherence without modelling data values.
package coherence

import (
	"fmt"

	"lpm/internal/sim/cache"
)

// Invalidator is the upper-cache surface the directory drives; implemented
// by *cache.Cache.
type Invalidator interface {
	Invalidate(blockAddr uint64) (present, dirty bool)
}

// entry is one tracked block's directory state.
type entry struct {
	sharers uint64 // bitmask of L1s holding the block
	owner   int    // index holding it modified; -1 when unowned
}

// Stats counts protocol events.
type Stats struct {
	// ReadFetches and WriteFetches count forwarded demand fetches.
	ReadFetches, WriteFetches uint64
	// Invalidations counts copies killed by write fetches.
	Invalidations uint64
	// DirtyForwards counts invalidations that flushed modified data
	// (owner -> memory -> requestor in a real machine; charged here as a
	// writeback plus the normal fetch).
	DirtyForwards uint64
	// Downgrades counts modified copies demoted to shared by a read.
	Downgrades uint64
	// TrackedBlocks is the current directory occupancy.
	TrackedBlocks int
}

// Directory is the coherence controller. It implements cache.Lower
// toward the L1s and forwards to the real lower layer (the shared L2 or
// a NoC router).
type Directory struct {
	lower  cache.Lower
	upper  []Invalidator
	blocks map[uint64]*entry
	st     Stats
	// InvalidationLatency is charged (in cycles) to a write fetch that
	// had to kill remote copies, by delaying its forward; 0 disables.
	InvalidationLatency uint64

	delayed []delayedReq
}

// delayedReq is a write fetch waiting out its invalidation latency.
type delayedReq struct {
	src   int
	block uint64
	write bool
	done  func(uint64)
	at    uint64
}

// New builds a directory over the given upper caches (indexed by their
// SrcID) and lower layer.
func New(upper []Invalidator, lower cache.Lower) *Directory {
	return &Directory{
		lower:  lower,
		upper:  upper,
		blocks: make(map[uint64]*entry),
	}
}

// Stats returns the event counters (TrackedBlocks refreshed).
func (d *Directory) Stats() Stats {
	st := d.st
	st.TrackedBlocks = len(d.blocks)
	return st
}

// ResetCounters zeroes the counters, keeping directory state.
func (d *Directory) ResetCounters() { d.st = Stats{} }

// Busy reports whether delayed fetches are pending.
func (d *Directory) Busy() bool { return len(d.delayed) > 0 }

// entryFor returns (allocating) the state of a block.
func (d *Directory) entryFor(block uint64) *entry {
	e, ok := d.blocks[block]
	if !ok {
		//lint:ignore hotpathalloc directory entry interning: one allocation per unique block, none once the footprint is warm
		e = &entry{owner: -1}
		d.blocks[block] = e
	}
	return e
}

// Request implements cache.Lower.
func (d *Directory) Request(cycle uint64, src int, block uint64, write bool, done func(cycle uint64)) bool {
	if done == nil {
		// Writeback: the source no longer holds the block.
		d.release(src, block)
		return d.lower.Request(cycle, src, block, true, nil)
	}
	if write {
		delay := d.prepareWrite(cycle, src, block)
		if delay > 0 {
			d.delayed = append(d.delayed, delayedReq{
				src: src, block: block, write: true, done: done, at: cycle + delay,
			})
			return true
		}
		d.st.WriteFetches++
		return d.lower.Request(cycle, src, block, true, done)
	}
	// Read fetch: register the sharer; a modified owner is downgraded
	// (its dirty data flushed as a writeback).
	e := d.entryFor(block)
	if e.owner >= 0 && e.owner != src {
		if _, dirty := d.invalidateAt(e.owner, block); dirty {
			d.st.DirtyForwards++
			d.lower.Request(cycle, e.owner, block, true, nil)
		}
		e.sharers &^= 1 << uint(e.owner)
		d.st.Downgrades++
		e.owner = -1
	}
	if src >= 0 && src < 64 {
		e.sharers |= 1 << uint(src)
	}
	d.st.ReadFetches++
	return d.lower.Request(cycle, src, block, false, done)
}

// prepareWrite invalidates every remote copy of block and returns the
// invalidation delay to charge (0 when no copies existed).
func (d *Directory) prepareWrite(cycle uint64, src int, block uint64) uint64 {
	e := d.entryFor(block)
	killed := false
	for s := 0; s < len(d.upper) && s < 64; s++ {
		if s == src || e.sharers&(1<<uint(s)) == 0 {
			continue
		}
		present, dirty := d.invalidateAt(s, block)
		if present {
			killed = true
			d.st.Invalidations++
			if dirty {
				d.st.DirtyForwards++
				d.lower.Request(cycle, s, block, true, nil)
			}
		}
		e.sharers &^= 1 << uint(s)
	}
	e.owner = src
	if src >= 0 && src < 64 {
		e.sharers = 1 << uint(src)
	} else {
		e.sharers = 0
	}
	if killed {
		return d.InvalidationLatency
	}
	return 0
}

// invalidateAt kills the copy at upper cache s.
func (d *Directory) invalidateAt(s int, block uint64) (present, dirty bool) {
	if s < 0 || s >= len(d.upper) || d.upper[s] == nil {
		return false, false
	}
	return d.upper[s].Invalidate(block)
}

// release clears src's sharer/owner state for block.
func (d *Directory) release(src int, block uint64) {
	e, ok := d.blocks[block]
	if !ok {
		return
	}
	if src >= 0 && src < 64 {
		e.sharers &^= 1 << uint(src)
	}
	if e.owner == src {
		e.owner = -1
	}
	if e.sharers == 0 && e.owner == -1 {
		delete(d.blocks, block)
	}
}

// Tick forwards delayed write fetches whose invalidation latency
// expired. Call it once per cycle, between the L1s and the lower layer.
func (d *Directory) Tick(cycle uint64) {
	if len(d.delayed) == 0 {
		return
	}
	keep := d.delayed[:0]
	for _, r := range d.delayed {
		if r.at > cycle {
			keep = append(keep, r)
			continue
		}
		d.st.WriteFetches++
		if !d.lower.Request(cycle, r.src, r.block, r.write, r.done) {
			rr := r
			rr.at = cycle + 1
			keep = append(keep, rr)
		}
	}
	d.delayed = keep
}

// String summarises the protocol counters.
func (d *Directory) String() string {
	st := d.Stats()
	return fmt.Sprintf("coherence{reads=%d writes=%d inval=%d dirtyFwd=%d downgrades=%d tracked=%d}",
		st.ReadFetches, st.WriteFetches, st.Invalidations, st.DirtyForwards, st.Downgrades, st.TrackedBlocks)
}
